#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using explain::Explanation;

class StrongTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto ontology = workload::CitiesOntology();
    ASSERT_TRUE(ontology.ok());
    ontology_ = std::move(ontology).value();
  }

  /// A variant of the Figure 2 instance with one extra train connection.
  Result<rel::Instance> InstanceWithExtraEdge(const std::string& from,
                                              const std::string& to) {
    WHYNOT_ASSIGN_OR_RETURN(rel::Instance instance,
                            workload::CitiesInstance(&schema_));
    WHYNOT_RETURN_IF_ERROR(instance.AddFact("Train-Connections", {from, to}));
    return instance;
  }

  rel::Schema schema_;
  std::unique_ptr<onto::ExplicitOntology> ontology_;
};

TEST_F(StrongTest, RefutedByAlternativeInstance) {
  // (European-City, US-City) explains why-not (Amsterdam, New York) on the
  // Figure 2 instance, but it is NOT strong: adding Berlin -> New York
  // makes (Amsterdam, New York) itself an answer inside the product.
  ASSERT_OK_AND_ASSIGN(rel::Instance original,
                       workload::CitiesInstance(&schema_));
  ASSERT_OK_AND_ASSIGN(rel::Instance extended,
                       InstanceWithExtraEdge("Berlin", "New York"));
  Explanation e = {ontology_->FindConcept("European-City"),
                   ontology_->FindConcept("US-City")};
  ASSERT_OK_AND_ASSIGN(
      explain::StrongCheckResult result,
      explain::CheckStrongExplanation(*ontology_,
                                      workload::ConnectedViaQuery(), e,
                                      {&original, &extended}));
  EXPECT_TRUE(result.refuted);
  EXPECT_EQ(result.instances_checked, 2u);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST_F(StrongTest, NotRefutedWithinFamily) {
  // A family of instances that never connects Europe to the US keeps the
  // explanation unrefuted (a semi-decision, as documented).
  ASSERT_OK_AND_ASSIGN(rel::Instance original,
                       workload::CitiesInstance(&schema_));
  ASSERT_OK_AND_ASSIGN(rel::Instance asia_edge,
                       InstanceWithExtraEdge("Kyoto", "Tokyo"));
  ASSERT_OK_AND_ASSIGN(rel::Instance europe_edge,
                       InstanceWithExtraEdge("Rome", "Amsterdam"));
  Explanation e = {ontology_->FindConcept("European-City"),
                   ontology_->FindConcept("US-City")};
  ASSERT_OK_AND_ASSIGN(
      explain::StrongCheckResult result,
      explain::CheckStrongExplanation(
          *ontology_, workload::ConnectedViaQuery(), e,
          {&original, &asia_edge, &europe_edge}));
  EXPECT_FALSE(result.refuted);
  EXPECT_EQ(result.instances_checked, 3u);
}

TEST_F(StrongTest, InconsistentInstancesAreSkipped) {
  // The Figure 3 ontology has fixed extensions, so every instance is
  // consistent with it; use a function-extension ontology where an
  // instance can break consistency.
  onto::ExplicitOntology o;
  o.AddSubsumption("Sub", "Super");
  o.SetExtensionFn("Sub", [](const rel::Instance& i) {
    std::vector<Value> out;
    for (const Tuple& t : i.Relation("U")) out.push_back(t[0]);
    return out;
  });
  o.SetExtension("Super", {Value(1)});
  ASSERT_OK(o.Finalize());

  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance consistent(&schema);
  ASSERT_OK(consistent.AddFact("U", {Value(1)}));
  rel::Instance inconsistent(&schema);
  ASSERT_OK(inconsistent.AddFact("U", {Value(2)}));  // Sub ⊄ Super

  rel::ConjunctiveQuery q;
  q.head = {"x"};
  q.atoms = {testutil::A("U", {testutil::V("x")})};
  Explanation e = {o.FindConcept("Super")};
  ASSERT_OK_AND_ASSIGN(
      explain::StrongCheckResult result,
      explain::CheckStrongExplanation(o, testutil::Q1(q), e,
                                      {&consistent, &inconsistent}));
  // Only the consistent instance is in the quantifier's range; it refutes
  // (Super's extension {1} meets the answer {1}).
  EXPECT_EQ(result.instances_checked, 1u);
  EXPECT_TRUE(result.refuted);
}

}  // namespace
}  // namespace whynot
