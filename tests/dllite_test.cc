#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using dl::BasicConcept;
using dl::Role;

TEST(DlLiteTest, AtomicSubsumptionClosure) {
  dl::TBox t;
  t.AddAtomicInclusion("A", "B");
  t.AddAtomicInclusion("B", "C");
  dl::Reasoner r(&t);
  EXPECT_TRUE(r.Subsumed(BasicConcept::Atomic("A"), BasicConcept::Atomic("C")));
  EXPECT_TRUE(r.Subsumed(BasicConcept::Atomic("A"), BasicConcept::Atomic("A")));
  EXPECT_FALSE(
      r.Subsumed(BasicConcept::Atomic("C"), BasicConcept::Atomic("A")));
}

TEST(DlLiteTest, ExistentialOnRhs) {
  // A ⊑ ∃P, ∃P ⊑ B  ⟹  A ⊑ B.
  dl::TBox t;
  t.AddConceptAxiom(BasicConcept::Atomic("A"),
                    {BasicConcept::Exists(Role{"P", false}), false});
  t.AddConceptAxiom(BasicConcept::Exists(Role{"P", false}),
                    {BasicConcept::Atomic("B"), false});
  dl::Reasoner r(&t);
  EXPECT_TRUE(r.Subsumed(BasicConcept::Atomic("A"), BasicConcept::Atomic("B")));
}

TEST(DlLiteTest, ExistentialInverseDoesNotLeakToSubject) {
  // A ⊑ ∃P, ∃P⁻ ⊑ B does NOT entail A ⊑ B (only P-successors get B).
  dl::TBox t;
  t.AddConceptAxiom(BasicConcept::Atomic("A"),
                    {BasicConcept::Exists(Role{"P", false}), false});
  t.AddConceptAxiom(BasicConcept::Exists(Role{"P", true}),
                    {BasicConcept::Atomic("B"), false});
  dl::Reasoner r(&t);
  EXPECT_FALSE(
      r.Subsumed(BasicConcept::Atomic("A"), BasicConcept::Atomic("B")));
}

TEST(DlLiteTest, RoleInclusionInducesExistsSubsumption) {
  // P ⊑ Q  ⟹  ∃P ⊑ ∃Q and ∃P⁻ ⊑ ∃Q⁻.
  dl::TBox t;
  t.AddRoleAxiom(Role{"P", false}, {Role{"Q", false}, false});
  dl::Reasoner r(&t);
  EXPECT_TRUE(r.RoleSubsumed(Role{"P", false}, Role{"Q", false}));
  EXPECT_TRUE(r.RoleSubsumed(Role{"P", true}, Role{"Q", true}));
  EXPECT_TRUE(r.Subsumed(BasicConcept::Exists(Role{"P", false}),
                         BasicConcept::Exists(Role{"Q", false})));
  EXPECT_TRUE(r.Subsumed(BasicConcept::Exists(Role{"P", true}),
                         BasicConcept::Exists(Role{"Q", true})));
  EXPECT_FALSE(r.Subsumed(BasicConcept::Exists(Role{"P", false}),
                          BasicConcept::Exists(Role{"Q", true})));
}

TEST(DlLiteTest, RoleInclusionWithInverseOnRhs) {
  // P ⊑ Q⁻  ⟹  ∃P ⊑ ∃Q⁻ and ∃P⁻ ⊑ ∃Q.
  dl::TBox t;
  t.AddRoleAxiom(Role{"P", false}, {Role{"Q", true}, false});
  dl::Reasoner r(&t);
  EXPECT_TRUE(r.Subsumed(BasicConcept::Exists(Role{"P", false}),
                         BasicConcept::Exists(Role{"Q", true})));
  EXPECT_TRUE(r.Subsumed(BasicConcept::Exists(Role{"P", true}),
                         BasicConcept::Exists(Role{"Q", false})));
}

TEST(DlLiteTest, RoleInclusionChains) {
  dl::TBox t;
  t.AddRoleAxiom(Role{"P", false}, {Role{"Q", true}, false});
  t.AddRoleAxiom(Role{"Q", false}, {Role{"S", false}, false});
  dl::Reasoner r(&t);
  // P ⊑ Q⁻ and Q ⊑ S give Q⁻ ⊑ S⁻, hence P ⊑ S⁻.
  EXPECT_TRUE(r.RoleSubsumed(Role{"P", false}, Role{"S", true}));
}

TEST(DlLiteTest, DisjointnessAndUnsatisfiability) {
  // A ⊑ B, A ⊑ C, B ⊑ ¬C  ⟹  A unsatisfiable ⟹ A ⊑ anything.
  dl::TBox t;
  t.AddAtomicInclusion("A", "B");
  t.AddAtomicInclusion("A", "C");
  t.AddAtomicDisjointness("B", "C");
  dl::Reasoner r(&t);
  EXPECT_TRUE(r.Disjoint(BasicConcept::Atomic("B"), BasicConcept::Atomic("C")));
  EXPECT_TRUE(r.Unsatisfiable(BasicConcept::Atomic("A")));
  EXPECT_TRUE(r.Subsumed(BasicConcept::Atomic("A"), BasicConcept::Atomic("D")));
  EXPECT_FALSE(r.Unsatisfiable(BasicConcept::Atomic("B")));
}

TEST(DlLiteTest, DisjointnessInheritsDownward) {
  // A1 ⊑ A, B1 ⊑ B, A ⊑ ¬B  ⟹  A1 ⊑ ¬B1.
  dl::TBox t;
  t.AddAtomicInclusion("A1", "A");
  t.AddAtomicInclusion("B1", "B");
  t.AddAtomicDisjointness("A", "B");
  dl::Reasoner r(&t);
  EXPECT_TRUE(
      r.Disjoint(BasicConcept::Atomic("A1"), BasicConcept::Atomic("B1")));
  EXPECT_FALSE(
      r.Disjoint(BasicConcept::Atomic("A"), BasicConcept::Atomic("A1")));
}

TEST(DlLiteTest, RoleDisjointnessMakesRoleUnsatisfiable) {
  // P ⊑ Q, P ⊑ ¬Q  ⟹  P unsatisfiable, hence ∃P unsatisfiable.
  dl::TBox t;
  t.AddRoleAxiom(Role{"P", false}, {Role{"Q", false}, false});
  t.AddRoleAxiom(Role{"P", false}, {Role{"Q", false}, true});
  dl::Reasoner r(&t);
  EXPECT_TRUE(r.RoleUnsatisfiable(Role{"P", false}));
  EXPECT_TRUE(r.Unsatisfiable(BasicConcept::Exists(Role{"P", false})));
  EXPECT_TRUE(r.Unsatisfiable(BasicConcept::Exists(Role{"P", true})));
  EXPECT_FALSE(r.RoleUnsatisfiable(Role{"Q", false}));
}

TEST(DlLiteTest, Figure4TBox) {
  dl::TBox t = workload::CitiesTBox();
  dl::Reasoner r(&t);
  EXPECT_TRUE(r.Subsumed(BasicConcept::Atomic("Dutch-City"),
                         BasicConcept::Atomic("City")));
  EXPECT_TRUE(r.Subsumed(BasicConcept::Atomic("US-City"),
                         BasicConcept::Atomic("City")));
  EXPECT_TRUE(r.Disjoint(BasicConcept::Atomic("Dutch-City"),
                         BasicConcept::Atomic("US-City")));
  // City ⊑ ∃hasCountry.
  EXPECT_TRUE(r.Subsumed(BasicConcept::Atomic("City"),
                         BasicConcept::Exists(Role{"hasCountry", false})));
  // ∃hasCountry⁻ ⊑ Country ⊑ ∃hasContinent.
  EXPECT_TRUE(r.Subsumed(BasicConcept::Exists(Role{"hasCountry", true}),
                         BasicConcept::Exists(Role{"hasContinent", false})));
  EXPECT_FALSE(r.Unsatisfiable(BasicConcept::Atomic("City")));
}

TEST(DlLiteTest, InterpretationSatisfaction) {
  dl::TBox t;
  t.AddAtomicInclusion("A", "B");
  dl::Interpretation good;
  good.AddConceptMember("A", Value(1));
  good.AddConceptMember("B", Value(1));
  good.AddConceptMember("B", Value(2));
  EXPECT_TRUE(good.Satisfies(t));
  dl::Interpretation bad;
  bad.AddConceptMember("A", Value(1));
  EXPECT_FALSE(bad.Satisfies(t));
}

TEST(DlLiteTest, InterpretationEvalExists) {
  dl::Interpretation i;
  i.AddRolePair("P", Value(1), Value(2));
  std::set<Value> fwd = i.Eval(BasicConcept::Exists(Role{"P", false}));
  std::set<Value> bwd = i.Eval(BasicConcept::Exists(Role{"P", true}));
  EXPECT_EQ(fwd, std::set<Value>{Value(1)});
  EXPECT_EQ(bwd, std::set<Value>{Value(2)});
}

/// Soundness sweep: whenever the reasoner derives B1 ⊑ B2, every random
/// finite interpretation satisfying the TBox must witness I(B1) ⊆ I(B2).
class ReasonerSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReasonerSoundnessTest, DerivedSubsumptionsHoldInModels) {
  uint64_t seed = GetParam();
  dl::TBox t = workload::RandomTBox(4, 2, 6, seed, /*negative_percent=*/10);
  dl::Reasoner r(&t);
  int models_found = 0;
  for (uint64_t model_seed = 1; model_seed <= 60; ++model_seed) {
    dl::Interpretation interp =
        workload::RandomInterpretation(t, 5, 10, seed * 1000 + model_seed);
    if (!interp.Satisfies(t)) continue;
    ++models_found;
    for (const BasicConcept& b1 : r.Universe()) {
      for (const BasicConcept& b2 : r.Universe()) {
        if (!r.Subsumed(b1, b2)) continue;
        std::set<Value> e1 = interp.Eval(b1);
        std::set<Value> e2 = interp.Eval(b2);
        for (const Value& v : e1) {
          ASSERT_TRUE(e2.count(v) > 0)
              << b1.ToString() << " ⊑ " << b2.ToString()
              << " derived but violated in a model (seed " << seed << "/"
              << model_seed << ")";
        }
      }
    }
  }
  // Most seeds yield at least a few satisfying interpretations; if not,
  // the test is vacuous for that seed but still meaningful across the sweep.
  SUCCEED() << models_found << " models checked";
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReasonerSoundnessTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace whynot
