// Unit tests for the execution-control primitives (common/exec_control.h):
// deadlines, cancel tokens, fault injectors, stop→status mapping, and the
// certificate helpers — plus the Result<T> moved-from contract and full
// StatusCodeName coverage they rely on.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "test_util.h"

namespace whynot {
namespace {

TEST(DeadlineTest, DefaultNeverExpires) {
  exec::Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(exec::Deadline::Infinite().infinite());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  exec::Deadline d = exec::Deadline::After(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, FutureDeadlineExpiresAfterSleep) {
  exec::Deadline d = exec::Deadline::After(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.Expired());
}

TEST(CancelTokenTest, CopiesShareOneFlag) {
  exec::CancelToken a;
  exec::CancelToken b = a;
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  b.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  // A fresh token is independent of the cancelled pair.
  exec::CancelToken c;
  EXPECT_FALSE(c.cancelled());
}

TEST(NamesTest, StopReasonNames) {
  EXPECT_STREQ(exec::StopReasonName(exec::StopReason::kNone), "NONE");
  EXPECT_STREQ(exec::StopReasonName(exec::StopReason::kDeadline), "DEADLINE");
  EXPECT_STREQ(exec::StopReasonName(exec::StopReason::kCancelled),
               "CANCELLED");
  EXPECT_STREQ(exec::StopReasonName(exec::StopReason::kBudget), "BUDGET");
}

TEST(NamesTest, QualityNames) {
  EXPECT_STREQ(exec::QualityName(exec::Quality::kExact), "EXACT");
  EXPECT_STREQ(exec::QualityName(exec::Quality::kLowerBound), "LOWER_BOUND");
  EXPECT_STREQ(exec::QualityName(exec::Quality::kHeuristic), "HEURISTIC");
}

TEST(NamesTest, StatusCodeNamesCoverEveryCode) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
}

TEST(StatusTest, DeadlineAndCancelledFactories) {
  Status d = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.ToString(), "DeadlineExceeded: too slow");
  Status c = Status::Cancelled("stopped");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  EXPECT_EQ(c.ToString(), "Cancelled: stopped");
}

TEST(StatusTest, ResultConsumedByMoveIsNoLongerOk) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
  // The moved-from Result must not keep claiming ok(): its status reports
  // the consumption instead of silently staying OK over a gutted value.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(StopStatusTest, MapsEveryReasonToItsCode) {
  Status d = exec::StopStatus({exec::StopReason::kDeadline, 7}, "search");
  EXPECT_EQ(d.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(d.message().find("probe 7"), std::string::npos);
  Status c = exec::StopStatus({exec::StopReason::kCancelled, 3}, "search");
  EXPECT_EQ(c.code(), StatusCode::kCancelled);
  Status b = exec::StopStatus({exec::StopReason::kBudget, 11}, "search");
  EXPECT_EQ(b.code(), StatusCode::kResourceExhausted);
}

TEST(CertificateTest, FillTagsCompleteRunsExact) {
  exec::Certificate cert;
  exec::FillCertificate(&cert, exec::Stop{}, exec::Progress{42, 0, 0}, 5);
  EXPECT_TRUE(cert.complete());
  EXPECT_EQ(cert.quality, exec::Quality::kExact);
  EXPECT_EQ(cert.progress.tested, 42u);
  EXPECT_EQ(cert.progress.best_so_far, 5u);
}

TEST(CertificateTest, FillTagsStoppedRunsWithPartialQuality) {
  exec::Certificate cert;
  exec::FillCertificate(&cert, {exec::StopReason::kDeadline, 10},
                        exec::Progress{10, 90, 0}, 2);
  EXPECT_FALSE(cert.complete());
  EXPECT_EQ(cert.quality, exec::Quality::kLowerBound);
  EXPECT_EQ(cert.stop, exec::StopReason::kDeadline);
  EXPECT_EQ(cert.progress.remaining, 90u);

  exec::FillCertificate(&cert, {exec::StopReason::kCancelled, 4},
                        exec::Progress{4, 0, 0}, 1,
                        exec::Quality::kHeuristic);
  EXPECT_EQ(cert.quality, exec::Quality::kHeuristic);

  // Null certificate: the call must be a no-op, not a crash.
  exec::FillCertificate(nullptr, exec::Stop{}, exec::Progress{}, 0);
}

TEST(ExecContextTest, DefaultContextNeverStops) {
  exec::ExecContext ctx;
  for (size_t probe = 0; probe < 1000; ++probe) {
    EXPECT_FALSE(ctx.Check(probe).has_value());
  }
  EXPECT_FALSE(ctx.ShouldAbandon());
}

TEST(ExecContextTest, NullContextHelpersAreNoOps) {
  EXPECT_FALSE(exec::Check(nullptr, 0).has_value());
  EXPECT_FALSE(exec::ShouldAbandon(nullptr));
}

TEST(ExecContextTest, PreCancelledContextStopsAtFirstCheck) {
  exec::ExecContext ctx;
  ctx.cancel.Cancel();
  // The poll stride starts one short, so the very first merge-point check
  // observes the cancellation instead of waiting out a stride.
  std::optional<exec::Stop> stop = ctx.Check(0);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->reason, exec::StopReason::kCancelled);
  EXPECT_TRUE(ctx.ShouldAbandon());
}

TEST(ExecContextTest, ExpiredDeadlineStops) {
  exec::ExecContext ctx;
  ctx.deadline = exec::Deadline::After(0);
  std::optional<exec::Stop> stop = ctx.Check(17);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->reason, exec::StopReason::kDeadline);
  EXPECT_EQ(stop->at, 17u);
  EXPECT_TRUE(ctx.ShouldAbandon());
  // PollNow resolves an abandoned region without stride effects.
  ASSERT_TRUE(ctx.PollNow(23).has_value());
  EXPECT_EQ(ctx.PollNow(23)->at, 23u);
}

TEST(ExecContextTest, CancellationWinsOverDeadlineInPollOrder) {
  exec::ExecContext ctx;
  ctx.cancel.Cancel();
  ctx.deadline = exec::Deadline::After(0);
  std::optional<exec::Stop> stop = ctx.Check(0);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->reason, exec::StopReason::kCancelled);
}

TEST(FaultInjectorTest, FiresOnProbeValueNotCallCount) {
  test::FaultInjector inj = test::FaultInjector::CancelAt(5);
  exec::ExecContext ctx;
  ctx.fault = &inj;
  // Probes below the trigger never fire, regardless of how many there are.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(ctx.Check(i).has_value()) << i;
    EXPECT_FALSE(ctx.Check(i).has_value()) << i;  // repeated ordinal
  }
  // A probe that jumps past the trigger (wave-granular checks) still
  // reports at = trigger, keeping certificates thread-invariant.
  std::optional<exec::Stop> stop = ctx.Check(9);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->reason, exec::StopReason::kCancelled);
  EXPECT_EQ(stop->at, 5u);
  EXPECT_EQ(inj.trigger(), 5u);
  EXPECT_GT(inj.observations(), 0u);
}

TEST(FaultInjectorTest, DeadlineInjectionReportsDeadline) {
  test::FaultInjector inj = test::FaultInjector::DeadlineAt(0);
  exec::ExecContext ctx;
  ctx.fault = &inj;
  std::optional<exec::Stop> stop = ctx.Check(0);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->reason, exec::StopReason::kDeadline);
  EXPECT_EQ(stop->at, 0u);
}

TEST(FaultInjectorTest, DefaultInjectorIsACarrierThatNeverFires) {
  test::FaultInjector inj;
  exec::ExecContext ctx;
  ctx.fault = &inj;
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_FALSE(ctx.Check(i).has_value());
  }
  EXPECT_EQ(inj.observations(), 200u);
  // ShouldAbandon never consults the injector: abandoning chunks on
  // injected stops would perturb the merged output.
  test::FaultInjector firing = test::FaultInjector::CancelAt(0);
  exec::ExecContext ctx2;
  ctx2.fault = &firing;
  EXPECT_FALSE(ctx2.ShouldAbandon());
}

}  // namespace
}  // namespace whynot
