// Fault-injection matrix for engine-wide execution control (PR 8): every
// explanation search must honor deadlines, cooperative cancellation, and
// budgets *identically at every thread count*. A test::FaultInjector rides
// in the ExecContext and fires at a configured probe ordinal; because all
// searches observe their context only at serial merge points with
// thread-invariant probe ordinals, the interrupted run's partial prefix and
// quality certificate must be bit-identical at WHYNOT_THREADS ∈ {1, 2, 8}
// for every injection point — the PR 4 determinism gate extended to
// interrupted executions.

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "test_util.h"

namespace whynot {
namespace {

using explain::Explanation;

constexpr int kThreadCounts[] = {1, 2, 8};
// Injection points per search per stop reason (ISSUE 8 demands >= 20).
constexpr size_t kInjectionPoints = 24;

struct Fixture {
  rel::Schema schema;
  std::unique_ptr<rel::Instance> instance;
  std::unique_ptr<onto::ExplicitOntology> ontology;
  std::unique_ptr<onto::BoundOntology> bound;
  std::unique_ptr<explain::WhyNotInstance> wni;
  std::unique_ptr<explain::WhyInstance> wi;
};

Fixture MakeFixture() {
  Fixture f;
  auto schema = workload::CitiesDataSchema();
  EXPECT_TRUE(schema.ok());
  f.schema = std::move(schema).value();
  auto instance = workload::CitiesInstance(&f.schema);
  EXPECT_TRUE(instance.ok());
  f.instance = std::make_unique<rel::Instance>(std::move(instance).value());
  auto ontology = workload::CitiesOntology();
  EXPECT_TRUE(ontology.ok());
  f.ontology = std::move(ontology).value();
  f.bound =
      std::make_unique<onto::BoundOntology>(f.ontology.get(), f.instance.get());
  auto wni = explain::MakeWhyNotInstance(f.instance.get(),
                                         workload::ConnectedViaQuery(),
                                         {"Amsterdam", "New York"});
  EXPECT_TRUE(wni.ok()) << wni.status().ToString();
  f.wni = std::make_unique<explain::WhyNotInstance>(std::move(wni).value());
  auto wi = explain::MakeWhyInstance(f.instance.get(),
                                     workload::ConnectedViaQuery(),
                                     {Value("New York"), Value("Santa Cruz")});
  EXPECT_TRUE(wi.ok()) << wi.status().ToString();
  f.wi = std::make_unique<explain::WhyInstance>(std::move(wi).value());
  return f;
}

/// One run's full observable outcome: status code, rendered partial
/// results, and the certificate. Two runs are "bit-identical" iff all of
/// it matches.
struct Outcome {
  StatusCode code = StatusCode::kOk;
  std::vector<std::string> items;
  exec::Quality quality = exec::Quality::kExact;
  exec::StopReason stop = exec::StopReason::kNone;
  exec::Progress progress;

  bool operator==(const Outcome& o) const {
    return code == o.code && items == o.items && quality == o.quality &&
           stop == o.stop && progress.tested == o.progress.tested &&
           progress.remaining == o.progress.remaining &&
           progress.best_so_far == o.progress.best_so_far;
  }

  std::string ToString() const {
    std::string out = std::string(StatusCodeName(code)) + " " +
                      exec::QualityName(quality) + "/" +
                      exec::StopReasonName(stop) + " tested=" +
                      std::to_string(progress.tested) + " remaining=" +
                      std::to_string(progress.remaining) + " best=" +
                      std::to_string(progress.best_so_far) + " [";
    for (const std::string& s : items) out += s + "; ";
    return out + "]";
  }
};

void TakeCert(Outcome* out, const exec::Certificate& cert) {
  out->quality = cert.quality;
  out->stop = cert.stop;
  out->progress = cert.progress;
}

using Runner = std::function<Outcome(Fixture&, const exec::ExecContext*,
                                     exec::Certificate*)>;

struct SearchCase {
  const char* name;
  Runner run;
};

/// The six searches of the matrix. Exhaustive is pinned to the odometer
/// and Pruned to the lattice frontier so both probe schemes (per-candidate
/// ordinals, per-wave product counts) are exercised; CardMaximal, Exists,
/// WhyMges, and Enumerate cover the branch-and-bound, backtracking,
/// dual-antichain, and branch-tree families.
std::vector<SearchCase> AllSearches() {
  std::vector<SearchCase> cases;
  cases.push_back(
      {"exhaustive-odometer",
       [](Fixture& f, const exec::ExecContext* exec, exec::Certificate* cert) {
         explain::ExhaustiveOptions o;
         o.strategy = explain::SearchStrategy::kOdometer;
         o.exec = exec;
         o.cert = cert;
         Outcome out;
         auto r = explain::ExhaustiveSearchAllMge(f.bound.get(), *f.wni, o);
         out.code = r.status().code();
         if (r.ok()) {
           for (const Explanation& e : r.value()) {
             out.items.push_back(explain::ExplanationToString(*f.bound, e));
           }
         }
         if (cert != nullptr) TakeCert(&out, *cert);
         return out;
       }});
  cases.push_back(
      {"pruned-lattice",
       [](Fixture& f, const exec::ExecContext* exec, exec::Certificate* cert) {
         explain::ExhaustiveOptions o;
         o.strategy = explain::SearchStrategy::kLattice;
         o.exec = exec;
         o.cert = cert;
         Outcome out;
         auto r = explain::PrunedSearchAllMge(f.bound.get(), *f.wni, o);
         out.code = r.status().code();
         if (r.ok()) {
           for (const Explanation& e : r.value()) {
             out.items.push_back(explain::ExplanationToString(*f.bound, e));
           }
         }
         if (cert != nullptr) TakeCert(&out, *cert);
         return out;
       }});
  cases.push_back(
      {"card-maximal",
       [](Fixture& f, const exec::ExecContext* exec, exec::Certificate* cert) {
         explain::ExhaustiveOptions o;
         o.strategy = explain::SearchStrategy::kOdometer;
         o.exec = exec;
         o.cert = cert;
         Outcome out;
         auto r = explain::ExactCardMaximal(f.bound.get(), *f.wni, o);
         out.code = r.status().code();
         if (r.ok() && r.value().has_value()) {
           out.items.push_back(
               explain::ExplanationToString(*f.bound, r.value()->explanation) +
               " degree=" + r.value()->degree.ToString());
         }
         if (cert != nullptr) TakeCert(&out, *cert);
         return out;
       }});
  cases.push_back(
      {"exists",
       [](Fixture& f, const exec::ExecContext* exec, exec::Certificate* cert) {
         explain::ExistenceOptions o;
         o.exec = exec;
         o.cert = cert;
         Explanation witness;
         Outcome out;
         auto r = explain::ExistsExplanation(f.bound.get(), *f.wni, &witness, o);
         out.code = r.status().code();
         if (r.ok()) {
           out.items.push_back(
               r.value()
                   ? "yes: " + explain::ExplanationToString(*f.bound, witness)
                   : "no");
         }
         if (cert != nullptr) TakeCert(&out, *cert);
         return out;
       }});
  cases.push_back(
      {"why-mges",
       [](Fixture& f, const exec::ExecContext* exec, exec::Certificate* cert) {
         Outcome out;
         auto r = explain::AllMostGeneralWhyExplanations(
             f.bound.get(), *f.wi, /*max_candidates=*/20000000,
             /*covers=*/nullptr, explain::SearchStrategy::kOdometer,
             /*lattice=*/nullptr, /*prune_stats=*/nullptr, exec, cert);
         out.code = r.status().code();
         if (r.ok()) {
           for (const Explanation& e : r.value()) {
             out.items.push_back(explain::ExplanationToString(*f.bound, e));
           }
         }
         if (cert != nullptr) TakeCert(&out, *cert);
         return out;
       }});
  cases.push_back(
      {"enumerate",
       [](Fixture& f, const exec::ExecContext* exec, exec::Certificate* cert) {
         explain::EnumerateOptions o;
         o.exec = exec;
         o.cert = cert;
         explain::EnumerateStats stats;
         Outcome out;
         auto r = explain::EnumerateAllMges(*f.wni, o, &stats);
         out.code = r.status().code();
         if (r.ok()) {
           for (const explain::LsExplanation& e : r.value()) {
             out.items.push_back(
                 explain::LsExplanationToString(f.schema, e));
           }
           out.items.push_back("nodes=" + std::to_string(stats.nodes_expanded));
         }
         if (cert != nullptr) TakeCert(&out, *cert);
         return out;
       }});
  return cases;
}

test::FaultInjector MakeInjector(exec::StopReason reason, size_t trigger) {
  return reason == exec::StopReason::kCancelled
             ? test::FaultInjector::CancelAt(trigger)
             : test::FaultInjector::DeadlineAt(trigger);
}

// --- The matrix ------------------------------------------------------------

// Certified interruption at every injection point: the partial prefix and
// certificate of each search must be bit-identical at every thread count.
TEST(FaultInjectionMatrix, CertifiedPartialsAreBitIdenticalAcrossThreads) {
  for (const SearchCase& sc : AllSearches()) {
    for (exec::StopReason reason :
         {exec::StopReason::kCancelled, exec::StopReason::kDeadline}) {
      for (size_t trigger = 0; trigger < kInjectionPoints; ++trigger) {
        std::optional<Outcome> reference;
        for (int threads : kThreadCounts) {
          par::SetNumThreads(threads);
          Fixture f = MakeFixture();
          test::FaultInjector inj = MakeInjector(reason, trigger);
          exec::ExecContext ctx;
          ctx.fault = &inj;
          exec::Certificate cert;
          Outcome got = sc.run(f, &ctx, &cert);
          // Certified stops never surface as errors.
          ASSERT_EQ(got.code, StatusCode::kOk)
              << sc.name << " trigger=" << trigger
              << " threads=" << threads << ": " << got.ToString();
          if (got.stop != exec::StopReason::kNone) {
            EXPECT_EQ(got.stop, reason)
                << sc.name << " trigger=" << trigger;
          }
          if (!reference.has_value()) {
            reference = std::move(got);
          } else {
            EXPECT_TRUE(got == *reference)
                << sc.name << " (" << exec::StopReasonName(reason)
                << " at " << trigger << ") diverged at WHYNOT_THREADS="
                << threads << "\n  threads=1: " << reference->ToString()
                << "\n  threads=" << threads << ": " << got.ToString();
          }
        }
      }
    }
  }
  par::SetNumThreads(0);
}

// An immediate injected stop (trigger 0) fires for every search, so small
// triggers genuinely interrupt: the certificate must record the stop and
// downgrade the quality.
TEST(FaultInjectionMatrix, EarlyTriggersActuallyInterrupt) {
  par::SetNumThreads(1);
  for (const SearchCase& sc : AllSearches()) {
    Fixture f = MakeFixture();
    test::FaultInjector inj = test::FaultInjector::CancelAt(0);
    exec::ExecContext ctx;
    ctx.fault = &inj;
    exec::Certificate cert;
    Outcome got = sc.run(f, &ctx, &cert);
    ASSERT_EQ(got.code, StatusCode::kOk) << sc.name;
    EXPECT_EQ(got.stop, exec::StopReason::kCancelled) << sc.name;
    EXPECT_NE(got.quality, exec::Quality::kExact) << sc.name;
    EXPECT_GT(inj.observations(), 0u) << sc.name;
  }
  par::SetNumThreads(0);
}

// Without a certificate, stops surface as the matching error status — at
// every thread count.
TEST(FaultInjectionMatrix, UncertifiedStopsAreErrors) {
  for (const SearchCase& sc : AllSearches()) {
    for (int threads : kThreadCounts) {
      par::SetNumThreads(threads);
      Fixture f = MakeFixture();
      {
        test::FaultInjector inj = test::FaultInjector::CancelAt(0);
        exec::ExecContext ctx;
        ctx.fault = &inj;
        Outcome got = sc.run(f, &ctx, nullptr);
        EXPECT_EQ(got.code, StatusCode::kCancelled)
            << sc.name << " threads=" << threads;
      }
      {
        test::FaultInjector inj = test::FaultInjector::DeadlineAt(0);
        exec::ExecContext ctx;
        ctx.fault = &inj;
        Outcome got = sc.run(f, &ctx, nullptr);
        EXPECT_EQ(got.code, StatusCode::kDeadlineExceeded)
            << sc.name << " threads=" << threads;
      }
    }
  }
  par::SetNumThreads(0);
}

// A real (wall-clock) expired deadline stops every search with the right
// code; the stop ordinal is timing-dependent, so only the code is checked.
TEST(FaultInjectionMatrix, RealExpiredDeadlineStopsEverySearch) {
  par::SetNumThreads(2);
  for (const SearchCase& sc : AllSearches()) {
    Fixture f = MakeFixture();
    exec::ExecContext ctx;
    ctx.deadline = exec::Deadline::After(0);
    Outcome got = sc.run(f, &ctx, nullptr);
    EXPECT_EQ(got.code, StatusCode::kDeadlineExceeded) << sc.name;
  }
  par::SetNumThreads(0);
}

// Budgets through the certificate path become kBudget stops with
// bit-identical truncated prefixes; without a certificate they keep the
// historical ResourceExhausted error.
TEST(FaultInjectionMatrix, BudgetStopsCertifyIdenticallyAcrossThreads) {
  std::optional<Outcome> ex_ref;
  std::optional<Outcome> en_ref;
  for (int threads : kThreadCounts) {
    par::SetNumThreads(threads);
    Fixture f = MakeFixture();
    {
      explain::ExhaustiveOptions o;
      o.strategy = explain::SearchStrategy::kOdometer;
      o.max_candidates = 3;
      exec::Certificate cert;
      o.cert = &cert;
      Outcome out;
      auto r = explain::ExhaustiveSearchAllMge(f.bound.get(), *f.wni, o);
      out.code = r.status().code();
      ASSERT_EQ(out.code, StatusCode::kOk) << "threads=" << threads;
      for (const Explanation& e : r.value()) {
        out.items.push_back(explain::ExplanationToString(*f.bound, e));
      }
      TakeCert(&out, cert);
      EXPECT_EQ(out.stop, exec::StopReason::kBudget);
      EXPECT_EQ(out.progress.tested, 3u);
      if (!ex_ref.has_value()) {
        ex_ref = out;
      } else {
        EXPECT_TRUE(out == *ex_ref)
            << "exhaustive budget diverged at WHYNOT_THREADS=" << threads
            << "\n  " << ex_ref->ToString() << "\n  " << out.ToString();
      }
    }
    {
      explain::EnumerateOptions o;
      o.max_nodes = 2;
      exec::Certificate cert;
      o.cert = &cert;
      Outcome out;
      auto r = explain::EnumerateAllMges(*f.wni, o);
      out.code = r.status().code();
      ASSERT_EQ(out.code, StatusCode::kOk) << "threads=" << threads;
      for (const explain::LsExplanation& e : r.value()) {
        out.items.push_back(explain::LsExplanationToString(f.schema, e));
      }
      TakeCert(&out, cert);
      EXPECT_EQ(out.stop, exec::StopReason::kBudget);
      if (!en_ref.has_value()) {
        en_ref = out;
      } else {
        EXPECT_TRUE(out == *en_ref)
            << "enumerate budget diverged at WHYNOT_THREADS=" << threads
            << "\n  " << en_ref->ToString() << "\n  " << out.ToString();
      }
    }
    {
      // Historical (uncertified) budget report is untouched.
      explain::EnumerateOptions o;
      o.max_nodes = 2;
      auto r = explain::EnumerateAllMges(*f.wni, o);
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    }
  }
  par::SetNumThreads(0);
}

// --- Warm-up faults --------------------------------------------------------

TEST(WarmFaultTest, InjectedWarmFailureIsRetryable) {
  Fixture f = MakeFixture();
  test::FaultInjector inj;
  inj.fail_warm = true;
  exec::ExecContext ctx;
  ctx.fault = &inj;
  Status failed = f.bound->WarmExtensions(&ctx);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);
  // The injected fault fired before any mutation: a retry without the
  // fault warms everything.
  ASSERT_OK(f.bound->WarmExtensions());
  ASSERT_OK(f.bound->WarmExtensions(&ctx));  // fully warm: nothing to fail
}

TEST(WarmFaultTest, CancelledWarmUpResumesFromCachedConcepts) {
  for (int threads : kThreadCounts) {
    par::SetNumThreads(threads);
    Fixture f = MakeFixture();
    exec::ExecContext ctx;
    ctx.cancel.Cancel();
    Status stopped = f.bound->WarmExtensions(&ctx);
    ASSERT_FALSE(stopped.ok());
    EXPECT_EQ(stopped.code(), StatusCode::kCancelled);
    // Already-warmed concepts stay cached; a later uncancelled call
    // finishes the job.
    ASSERT_OK(f.bound->WarmExtensions());
  }
  par::SetNumThreads(0);
}

// --- Session-level control -------------------------------------------------

TEST(SessionExecTest, CancelFailsRequestsUntilReset) {
  Fixture f = MakeFixture();
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession session,
      explain::ExplainSession::Bind(f.instance.get(),
                                    workload::ConnectedViaQuery(),
                                    f.ontology.get()));
  Tuple missing = {Value("Amsterdam"), Value("New York")};
  ASSERT_TRUE(session.ExhaustiveMges(missing).ok());
  session.Cancel();
  Result<std::vector<Explanation>> cancelled = session.ExhaustiveMges(missing);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);
  Result<explain::LsExplanation> derived = session.WhyNot(missing);
  ASSERT_FALSE(derived.ok());
  EXPECT_EQ(derived.status().code(), StatusCode::kCancelled);
  session.ResetCancel();
  EXPECT_TRUE(session.ExhaustiveMges(missing).ok());
  EXPECT_TRUE(session.WhyNot(missing).ok());
}

TEST(SessionExecTest, ExplicitContextControlsOneRequest) {
  Fixture f = MakeFixture();
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession session,
      explain::ExplainSession::Bind(f.instance.get(),
                                    workload::ConnectedViaQuery(),
                                    f.ontology.get()));
  Tuple missing = {Value("Amsterdam"), Value("New York")};
  test::FaultInjector inj = test::FaultInjector::DeadlineAt(1);
  exec::ExecContext ctx;
  ctx.fault = &inj;
  Result<std::vector<Explanation>> r = session.PrunedMges(missing, &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  // The explicit context died with its request; the session is fine.
  EXPECT_TRUE(session.PrunedMges(missing).ok());
}

TEST(SessionExecTest, RewarmUnderInjectedWarmFaultFailsThenRecovers) {
  Fixture f = MakeFixture();
  rel::Instance instance(*f.instance);
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession session,
      explain::ExplainSession::Bind(&instance, workload::ConnectedViaQuery(),
                                    f.ontology.get()));
  Tuple missing = {Value("Amsterdam"), Value("New York")};
  // Invalidate the warm state with a genuinely new fact (duplicates are
  // version no-ops), then ask the next request to rewarm under an
  // injected warm failure. Rome→Kyoto keeps {Amsterdam, New York} missing.
  ASSERT_OK(instance.AddFact("Train-Connections",
                             {Value("Rome"), Value("Kyoto")}));
  test::FaultInjector inj;
  inj.fail_warm = true;
  exec::ExecContext ctx;
  ctx.fault = &inj;
  Result<std::vector<Explanation>> r = session.ExhaustiveMges(missing, &ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // Without the fault the rewarm completes and the request serves the
  // mutated instance.
  EXPECT_TRUE(session.ExhaustiveMges(missing).ok());
}

TEST(SessionExecTest, DegradationLadderExactWhenUninterrupted) {
  Fixture f = MakeFixture();
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession session,
      explain::ExplainSession::Bind(f.instance.get(),
                                    workload::ConnectedViaQuery(),
                                    f.ontology.get()));
  Tuple missing = {Value("Amsterdam"), Value("New York")};
  ASSERT_OK_AND_ASSIGN(explain::GradedMges graded,
                       session.MgesWithDegradation(missing));
  EXPECT_EQ(graded.certificate.quality, exec::Quality::kExact);
  EXPECT_TRUE(graded.certificate.complete());
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> want,
                       session.PrunedMges(missing));
  EXPECT_EQ(graded.explanations, want);
}

TEST(SessionExecTest, DegradationLadderFallsBackToGreedyOnDeadline) {
  Fixture f = MakeFixture();
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession session,
      explain::ExplainSession::Bind(f.instance.get(),
                                    workload::ConnectedViaQuery(),
                                    f.ontology.get()));
  Tuple missing = {Value("Amsterdam"), Value("New York")};
  // A deadline at probe 0 leaves the exact search empty-handed; the
  // ladder's last rung still produces one sound greedy explanation.
  test::FaultInjector inj = test::FaultInjector::DeadlineAt(0);
  exec::ExecContext ctx;
  ctx.fault = &inj;
  ASSERT_OK_AND_ASSIGN(explain::GradedMges graded,
                       session.MgesWithDegradation(missing, &ctx));
  EXPECT_EQ(graded.certificate.stop, exec::StopReason::kDeadline);
  EXPECT_EQ(graded.certificate.quality, exec::Quality::kHeuristic);
  ASSERT_EQ(graded.explanations.size(), 1u);
  ASSERT_OK_AND_ASSIGN(
      bool sound, explain::IsExplanation(f.bound.get(), *f.wni,
                                         graded.explanations.front()));
  EXPECT_TRUE(sound);
}

TEST(SessionExecTest, DegradationLadderRespectsCancellation) {
  Fixture f = MakeFixture();
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession session,
      explain::ExplainSession::Bind(f.instance.get(),
                                    workload::ConnectedViaQuery(),
                                    f.ontology.get()));
  Tuple missing = {Value("Amsterdam"), Value("New York")};
  // A cancelled caller asked for no further work: no greedy rung.
  test::FaultInjector inj = test::FaultInjector::CancelAt(0);
  exec::ExecContext ctx;
  ctx.fault = &inj;
  ASSERT_OK_AND_ASSIGN(explain::GradedMges graded,
                       session.MgesWithDegradation(missing, &ctx));
  EXPECT_EQ(graded.certificate.stop, exec::StopReason::kCancelled);
  EXPECT_TRUE(graded.explanations.empty());
  EXPECT_NE(graded.certificate.quality, exec::Quality::kExact);
}

TEST(SessionExecTest, TruncatedPrefixKeepsLowerBoundQuality) {
  Fixture f = MakeFixture();
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession session,
      explain::ExplainSession::Bind(f.instance.get(),
                                    workload::ConnectedViaQuery(),
                                    f.ontology.get()));
  Tuple missing = {Value("Amsterdam"), Value("New York")};
  // Find a trigger where the interrupted exact search already holds part
  // of the antichain: that prefix must come back as kLowerBound, each
  // entry a genuine explanation.
  for (size_t trigger = 1; trigger < kInjectionPoints; ++trigger) {
    test::FaultInjector inj = test::FaultInjector::DeadlineAt(trigger);
    exec::ExecContext ctx;
    ctx.fault = &inj;
    ASSERT_OK_AND_ASSIGN(explain::GradedMges graded,
                         session.MgesWithDegradation(missing, &ctx));
    if (graded.certificate.complete() ||
        graded.certificate.quality != exec::Quality::kLowerBound) {
      continue;
    }
    ASSERT_FALSE(graded.explanations.empty());
    for (const Explanation& e : graded.explanations) {
      ASSERT_OK_AND_ASSIGN(bool sound,
                           explain::IsExplanation(f.bound.get(), *f.wni, e));
      EXPECT_TRUE(sound);
    }
    return;  // found and verified a kLowerBound rung
  }
  GTEST_SKIP() << "no trigger produced a non-empty truncated prefix";
}

TEST(SessionExecTest, RequestDeadlineOptionIsHarmlessWhenGenerous) {
  Fixture f = MakeFixture();
  explain::ExplainSessionOptions options;
  options.request_deadline_ms = 60000;
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession session,
      explain::ExplainSession::Bind(f.instance.get(),
                                    workload::ConnectedViaQuery(),
                                    f.ontology.get(), options));
  Tuple missing = {Value("Amsterdam"), Value("New York")};
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> with_deadline,
                       session.ExhaustiveMges(missing));
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession plain,
      explain::ExplainSession::Bind(f.instance.get(),
                                    workload::ConnectedViaQuery(),
                                    f.ontology.get()));
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> without,
                       plain.ExhaustiveMges(missing));
  EXPECT_EQ(with_deadline, without);
}

}  // namespace
}  // namespace whynot
