// ExplainSession equivalence gate: every session-served request must be
// bit-identical — results, enumeration order, and stats — to the
// standalone one-shot entry point, at WHYNOT_THREADS ∈ {1, 2, 8}, across
// repeated requests over the same warm state, and after interleaved
// AddFact invalidation (the version counter must rebuild the warm caches
// deterministically rather than serve stale extensions).

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "test_util.h"
#include "whynot/common/algorithm.h"

namespace whynot {
namespace {

using workload::Rng;

constexpr int kThreadCounts[] = {1, 2, 8};

// --- External-ontology equivalence ----------------------------------------

struct ExternalFixture {
  rel::Schema schema;
  std::unique_ptr<rel::Instance> instance;
  std::unique_ptr<onto::ExplicitOntology> ontology;
  std::vector<Tuple> answers;
  std::vector<Tuple> missing;  // request tuples, all ∉ answers
};

ExternalFixture MakeExternalFixture(uint64_t seed) {
  ExternalFixture f;
  auto schema = workload::RandomSchema(2, {2, 2});
  EXPECT_TRUE(schema.ok());
  f.schema = std::move(schema).value();
  auto instance = workload::RandomInstance(&f.schema, /*rows_per_relation=*/30,
                                           /*domain=*/12, seed);
  EXPECT_TRUE(instance.ok());
  f.instance = std::make_unique<rel::Instance>(std::move(instance).value());

  const std::vector<Value>& adom = f.instance->ActiveDomain();
  auto ontology = workload::RandomTreeOntology(adom, /*num_concepts=*/40,
                                               seed ^ 0x9e3779b9ull);
  EXPECT_TRUE(ontology.ok());
  f.ontology = std::move(ontology).value();

  Rng rng(seed ^ 0x51ull);
  for (int a = 0; a < 14; ++a) {
    Tuple t = {adom[rng.Below(adom.size())], adom[rng.Below(adom.size())]};
    f.answers.push_back(std::move(t));
  }
  SortUnique(&f.answers);
  while (f.missing.size() < 4) {
    Tuple t = {adom[rng.Below(adom.size())], adom[rng.Below(adom.size())]};
    if (!std::binary_search(f.answers.begin(), f.answers.end(), t)) {
      f.missing.push_back(std::move(t));
    }
  }
  return f;
}

explain::WhyNotInstance OneShotWni(const ExternalFixture& f,
                                   const Tuple& missing) {
  auto wni = explain::MakeWhyNotInstanceFromAnswers(f.instance.get(),
                                                    f.answers, missing);
  EXPECT_TRUE(wni.ok());
  return std::move(wni).value();
}

TEST(SessionExternalTest, RepeatedRequestsMatchOneShot) {
  ExternalFixture f = MakeExternalFixture(7);
  for (int threads : kThreadCounts) {
    par::SetNumThreads(threads);
    ASSERT_OK_AND_ASSIGN(
        explain::ExplainSession session,
        explain::ExplainSession::BindWithAnswers(f.instance.get(), f.answers,
                                                 f.ontology.get()));
    // Several requests against the same warm state: the session's shared
    // covers must never change a result relative to cold one-shot calls.
    for (const Tuple& missing : f.missing) {
      explain::WhyNotInstance wni = OneShotWni(f, missing);
      onto::BoundOntology bound(f.ontology.get(), f.instance.get());

      ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> want_all,
                           explain::ExhaustiveSearchAllMge(&bound, wni));
      ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> got_all,
                           session.ExhaustiveMges(missing));
      EXPECT_EQ(got_all, want_all);

      ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> want_pruned,
                           explain::PrunedSearchAllMge(&bound, wni));
      ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> got_pruned,
                           session.PrunedMges(missing));
      EXPECT_EQ(got_pruned, want_pruned);

      explain::Explanation want_witness, got_witness;
      ASSERT_OK_AND_ASSIGN(bool want_exists,
                           explain::ExistsExplanation(&bound, wni,
                                                      &want_witness));
      ASSERT_OK_AND_ASSIGN(bool got_exists,
                           session.Exists(missing, &got_witness));
      EXPECT_EQ(got_exists, want_exists);
      EXPECT_EQ(got_witness, want_witness);

      ASSERT_OK_AND_ASSIGN(auto want_card,
                           explain::ExactCardMaximal(&bound, wni));
      ASSERT_OK_AND_ASSIGN(auto got_card, session.CardMaximal(missing));
      ASSERT_EQ(got_card.has_value(), want_card.has_value());
      if (want_card.has_value()) {
        EXPECT_EQ(got_card->explanation, want_card->explanation);
        EXPECT_TRUE(got_card->degree == want_card->degree);
      }

      ASSERT_OK_AND_ASSIGN(auto want_greedy,
                           explain::GreedyCardinalityClimb(&bound, wni));
      ASSERT_OK_AND_ASSIGN(auto got_greedy, session.GreedyCard(missing));
      ASSERT_EQ(got_greedy.has_value(), want_greedy.has_value());
      if (want_greedy.has_value()) {
        EXPECT_EQ(got_greedy->explanation, want_greedy->explanation);
        EXPECT_TRUE(got_greedy->degree == want_greedy->degree);
      }

      if (!want_all.empty()) {
        ASSERT_OK_AND_ASSIGN(
            bool want_mge,
            explain::CheckMgeExternal(&bound, wni, want_all.front()));
        ASSERT_OK_AND_ASSIGN(bool got_mge,
                             session.CheckMge(missing, want_all.front()));
        EXPECT_EQ(got_mge, want_mge);
        EXPECT_TRUE(want_mge);
      }
    }

    // The external why dual against a present tuple.
    if (!f.answers.empty()) {
      const Tuple& present = f.answers.front();
      explain::WhyInstance wi;
      wi.instance = f.instance.get();
      wi.answers = f.answers;
      wi.present = present;
      onto::BoundOntology bound(f.ontology.get(), f.instance.get());
      ASSERT_OK_AND_ASSIGN(
          std::vector<explain::Explanation> want_why,
          explain::AllMostGeneralWhyExplanations(&bound, wi));
      ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> got_why,
                           session.WhyMges(present));
      EXPECT_EQ(got_why, want_why);
    }
  }
  par::SetNumThreads(0);
}

TEST(SessionExternalTest, RequestValidationMatchesOneShotContracts) {
  ExternalFixture f = MakeExternalFixture(11);
  ASSERT_OK_AND_ASSIGN(
      explain::ExplainSession session,
      explain::ExplainSession::BindWithAnswers(f.instance.get(), f.answers,
                                               f.ontology.get()));
  // A tuple inside Ans cannot be a why-not question, and vice versa.
  EXPECT_FALSE(session.ExhaustiveMges(f.answers.front()).ok());
  EXPECT_FALSE(session.WhyMges(f.missing.front()).ok());
  // Derived requests work without an ontology; external ones refuse.
  ASSERT_OK_AND_ASSIGN(explain::ExplainSession derived_only,
                       explain::ExplainSession::BindWithAnswers(
                           f.instance.get(), f.answers, nullptr));
  EXPECT_FALSE(derived_only.ExhaustiveMges(f.missing.front()).ok());
  EXPECT_TRUE(derived_only.WhyNot(f.missing.front()).ok());
}

// --- Derived-ontology (OI) equivalence over a real query --------------------

struct DerivedFixture {
  rel::Schema schema;
  std::unique_ptr<rel::Instance> instance;
  rel::UnionQuery query;
};

DerivedFixture MakeCitiesFixture() {
  DerivedFixture f;
  auto schema = workload::CitiesDataSchema();
  EXPECT_TRUE(schema.ok());
  f.schema = std::move(schema).value();
  auto instance = workload::CitiesInstance(&f.schema);
  EXPECT_TRUE(instance.ok());
  f.instance = std::make_unique<rel::Instance>(std::move(instance).value());
  f.query = workload::ConnectedViaQuery();
  return f;
}

TEST(SessionDerivedTest, RepeatedRequestsMatchOneShot) {
  DerivedFixture f = MakeCitiesFixture();
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> answers,
                       rel::Evaluate(f.query, *f.instance));
  ASSERT_FALSE(answers.empty());
  const std::vector<Value>& adom = f.instance->ActiveDomain();
  std::vector<Tuple> missing;
  for (const Value& a : adom) {
    for (const Value& b : adom) {
      Tuple t = {a, b};
      if (!std::binary_search(answers.begin(), answers.end(), t)) {
        missing.push_back(std::move(t));
      }
      if (missing.size() >= 3) break;
    }
    if (missing.size() >= 3) break;
  }
  ASSERT_EQ(missing.size(), 3u);

  for (int threads : kThreadCounts) {
    par::SetNumThreads(threads);
    ASSERT_OK_AND_ASSIGN(
        explain::ExplainSession session,
        explain::ExplainSession::Bind(f.instance.get(), f.query));
    EXPECT_EQ(session.answers(), answers);

    for (const Tuple& m : missing) {
      ASSERT_OK_AND_ASSIGN(
          explain::WhyNotInstance wni,
          explain::MakeWhyNotInstance(f.instance.get(), f.query, m));

      ASSERT_OK_AND_ASSIGN(explain::LsExplanation want_inc,
                           explain::IncrementalSearch(wni, {}));
      ASSERT_OK_AND_ASSIGN(explain::LsExplanation got_inc, session.WhyNot(m));
      EXPECT_EQ(got_inc, want_inc);

      explain::EnumerateStats want_stats, got_stats;
      ASSERT_OK_AND_ASSIGN(
          std::vector<explain::LsExplanation> want_enum,
          explain::EnumerateAllMges(wni, {}, &want_stats));
      ASSERT_OK_AND_ASSIGN(std::vector<explain::LsExplanation> got_enum,
                           session.EnumerateMges(m, &got_stats));
      EXPECT_EQ(got_enum, want_enum);
      EXPECT_EQ(got_stats.nodes_expanded, want_stats.nodes_expanded);
      EXPECT_EQ(got_stats.duplicate_outputs, want_stats.duplicate_outputs);
      EXPECT_EQ(got_stats.visited_hits, want_stats.visited_hits);
      EXPECT_EQ(got_stats.max_delay, want_stats.max_delay);

      ls::LubContext lub(f.instance.get());
      ASSERT_OK_AND_ASSIGN(
          bool want_mge,
          explain::CheckMgeDerived(wni, want_inc, /*with_selections=*/false,
                                   &lub));
      ASSERT_OK_AND_ASSIGN(bool got_mge,
                           session.CheckMgeDerived(m, want_inc));
      EXPECT_EQ(got_mge, want_mge);
      EXPECT_TRUE(want_mge);
    }

    // The dual question over every answer tuple.
    for (const Tuple& present : answers) {
      ASSERT_OK_AND_ASSIGN(
          explain::WhyInstance wi,
          explain::MakeWhyInstance(f.instance.get(), f.query, present));
      ASSERT_OK_AND_ASSIGN(explain::LsExplanation want_why,
                           explain::IncrementalWhySearch(wi));
      ASSERT_OK_AND_ASSIGN(explain::LsExplanation got_why,
                           session.Why(present));
      EXPECT_EQ(got_why, want_why);
    }
  }
  par::SetNumThreads(0);
}

// --- Invalidation ----------------------------------------------------------

TEST(SessionInvalidationTest, AddFactRebuildsDeterministically) {
  DerivedFixture f = MakeCitiesFixture();
  Tuple missing = {Value("Amsterdam"), Value("New York")};
  for (int threads : kThreadCounts) {
    par::SetNumThreads(threads);
    // Fresh per-thread-count copy so the mutation sequence is identical.
    rel::Instance instance(*f.instance);
    ASSERT_OK_AND_ASSIGN(explain::ExplainSession session,
                         explain::ExplainSession::Bind(&instance, f.query));
    uint64_t v0 = session.warmed_version();
    ASSERT_OK_AND_ASSIGN(explain::LsExplanation before, session.WhyNot(missing));
    (void)before;

    // Mutate: a new city and new connections change both adom(I) and q(I).
    ASSERT_OK(instance.AddFact(
        "Cities",
        {Value("Utrecht"), Value(358454), Value("Netherlands"),
         Value("Europe")}));
    ASSERT_OK(instance.AddFact("Train-Connections",
                               {Value("Utrecht"), Value("Amsterdam")}));
    ASSERT_OK(instance.AddFact("Train-Connections",
                               {Value("Amsterdam"), Value("Berlin")}));
    uint64_t mutated_version = instance.version();
    ASSERT_NE(mutated_version, v0);

    // The next request must serve against the mutated instance, exactly
    // like a cold one-shot call on it.
    ASSERT_OK_AND_ASSIGN(
        explain::WhyNotInstance wni,
        explain::MakeWhyNotInstance(&instance, f.query, missing));
    ASSERT_OK_AND_ASSIGN(explain::LsExplanation want,
                         explain::IncrementalSearch(wni, {}));
    ASSERT_OK_AND_ASSIGN(explain::LsExplanation got, session.WhyNot(missing));
    EXPECT_EQ(got, want);
    EXPECT_NE(session.warmed_version(), v0);
    EXPECT_EQ(session.answers(), wni.answers);

    // A duplicate AddFact is a no-op: the version must not move, so the
    // warm state survives the next request untouched.
    EXPECT_EQ(session.warmed_version(), mutated_version);
    ASSERT_OK(instance.AddFact("Train-Connections",
                               {Value("Amsterdam"), Value("Berlin")}));
    EXPECT_EQ(instance.version(), mutated_version);
    ASSERT_OK_AND_ASSIGN(explain::LsExplanation again, session.WhyNot(missing));
    EXPECT_EQ(again, want);
    EXPECT_EQ(session.warmed_version(), mutated_version);
  }
  par::SetNumThreads(0);
}

}  // namespace
}  // namespace whynot
