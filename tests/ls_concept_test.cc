#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using ls::Conjunct;
using ls::LsConcept;
using ls::Selection;
using rel::CmpOp;

class LsConceptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesSchema();
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok()) << instance.status().ToString();
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
  }

  LsConcept Parse(const std::string& text) {
    auto c = ls::ParseConcept(text, schema_);
    EXPECT_TRUE(c.ok()) << text << ": " << c.status().ToString();
    return c.ok() ? c.value() : LsConcept::Top();
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
};

TEST_F(LsConceptTest, CanonicalizationSortsAndDedupes) {
  LsConcept a({Conjunct::Projection("Cities", 0),
               Conjunct::Nominal(Value("x")),
               Conjunct::Projection("Cities", 0)});
  EXPECT_EQ(a.conjuncts().size(), 2u);
  LsConcept b({Conjunct::Nominal(Value("x")),
               Conjunct::Projection("Cities", 0)});
  EXPECT_EQ(a, b);
}

TEST_F(LsConceptTest, TopIsEmptyIntersection) {
  EXPECT_TRUE(LsConcept::Top().IsTop());
  LsConcept with_top({Conjunct::Top(), Conjunct::Projection("Cities", 0)});
  EXPECT_EQ(with_top.conjuncts().size(), 1u);  // ⊤ conjuncts dropped
  EXPECT_TRUE(LsConcept({Conjunct::Top()}).IsTop());
}

TEST_F(LsConceptTest, IntersectMergesCanonically) {
  LsConcept a = LsConcept::Projection("Cities", 0);
  LsConcept b = LsConcept::Nominal(Value("Amsterdam"));
  LsConcept ab = a.Intersect(b);
  EXPECT_EQ(ab.conjuncts().size(), 2u);
  EXPECT_EQ(ab, b.Intersect(a));
  EXPECT_EQ(a.Intersect(a), a);
  EXPECT_EQ(a.Intersect(LsConcept::Top()), a);
}

TEST_F(LsConceptTest, FragmentPredicates) {
  EXPECT_TRUE(LsConcept::Top().IsMinimal());
  EXPECT_TRUE(LsConcept::Projection("Cities", 0).IsMinimal());
  LsConcept sel = LsConcept::Projection(
      "Cities", 0, {Selection{3, CmpOp::kEq, Value("Europe")}});
  EXPECT_FALSE(sel.IsMinimal());
  EXPECT_FALSE(sel.selection_free());
  LsConcept inter = LsConcept::Projection("Cities", 0)
                        .Intersect(LsConcept::Nominal(Value("x")));
  EXPECT_FALSE(inter.IsMinimal());
  EXPECT_TRUE(inter.selection_free());
}

TEST_F(LsConceptTest, EvalSemantics) {
  // ⟦⊤⟧ = Const.
  EXPECT_TRUE(ls::Eval(LsConcept::Top(), *instance_).all);
  // ⟦{c}⟧ = {c} even when c is not in the active domain.
  ls::Extension nom = ls::Eval(LsConcept::Nominal(Value("Mars")), *instance_);
  EXPECT_EQ(nom.values(), std::vector<Value>{Value("Mars")});
  // ⟦π_name(σ_continent=Europe(Cities))⟧ = {Amsterdam, Berlin, Rome}.
  ls::Extension eu = ls::Eval(
      Parse("pi[name](sigma[continent = Europe](Cities))"), *instance_);
  EXPECT_EQ(eu.values(), (std::vector<Value>{Value("Amsterdam"), Value("Berlin"),
                                           Value("Rome")}));
  // Intersection evaluates to set intersection.
  ls::Extension meet = ls::Eval(
      Parse("pi[name](sigma[continent = Europe](Cities)) & "
            "pi[name](sigma[population > 1000000](Cities))"),
      *instance_);
  EXPECT_EQ(meet.values(),
            (std::vector<Value>{Value("Berlin"), Value("Rome")}));
}

TEST_F(LsConceptTest, EvalMultipleSelectionsSameAttribute) {
  ls::Extension mid = ls::Eval(
      Parse("pi[name](sigma[population > 1000000, population < "
            "3000000](Cities))"),
      *instance_);
  EXPECT_EQ(mid.values(), (std::vector<Value>{Value("Kyoto"), Value("Rome")}));
}

TEST_F(LsConceptTest, EvalOverViews) {
  ls::Extension big = ls::Eval(Parse("pi[name](BigCity)"), *instance_);
  EXPECT_EQ(big.values(),
            (std::vector<Value>{Value("New York"), Value("Tokyo")}));
  ls::Extension reach = ls::Eval(
      Parse("pi[city_to](sigma[city_from = Amsterdam](Reachable))"),
      *instance_);
  EXPECT_EQ(reach.values(),
            (std::vector<Value>{Value("Amsterdam"), Value("Berlin"),
                                Value("Rome")}));
}

TEST_F(LsConceptTest, SubsumptionI) {
  LsConcept eu = Parse("pi[name](sigma[continent = Europe](Cities))");
  LsConcept all = Parse("pi[name](Cities)");
  EXPECT_TRUE(ls::SubsumedI(eu, all, *instance_));
  EXPECT_FALSE(ls::SubsumedI(all, eu, *instance_));
  EXPECT_TRUE(ls::StrictlySubsumedI(eu, all, *instance_));
  EXPECT_TRUE(ls::SubsumedI(all, LsConcept::Top(), *instance_));
  EXPECT_FALSE(ls::SubsumedI(LsConcept::Top(), all, *instance_));
  EXPECT_TRUE(ls::EquivalentI(eu, eu, *instance_));
  // Example 4.9: reachable-from-Amsterdam ⊑_I reachable-from-Berlin.
  EXPECT_TRUE(ls::SubsumedI(
      Parse("pi[city_to](sigma[city_from = Amsterdam](Reachable))"),
      Parse("pi[city_to](sigma[city_from = Berlin](Reachable))"),
      *instance_));
}

TEST_F(LsConceptTest, LengthMeasure) {
  EXPECT_EQ(LsConcept::Top().Length(), 1u);
  EXPECT_EQ(LsConcept::Nominal(Value("x")).Length(), 1u);
  EXPECT_EQ(LsConcept::Projection("Cities", 0).Length(), 2u);
  LsConcept sel = Parse("pi[name](sigma[continent = Europe](Cities))");
  EXPECT_EQ(sel.Length(), 5u);  // relation + attr + one (attr op const)
}

TEST_F(LsConceptTest, ConstantsCollected) {
  LsConcept c = Parse("{Amsterdam} & pi[name](sigma[population > "
                      "5000000](Cities))");
  std::vector<Value> constants = c.Constants();
  ASSERT_EQ(constants.size(), 2u);
}

TEST_F(LsConceptTest, SqlRendering) {
  EXPECT_EQ(Parse("pi[name](Cities)").ToSql(schema_), "name from Cities");
  EXPECT_EQ(Parse("pi[name](sigma[continent = Europe](Cities))").ToSql(schema_),
            "name from Cities where continent=\"Europe\"");
  EXPECT_EQ(Parse("{'Santa Cruz'}").ToSql(schema_), "\"Santa Cruz\"");
  EXPECT_EQ(LsConcept::Top().ToSql(schema_), "any constant");
}

/// Parser round-trips: parse(ToString(parse(text))) == parse(text), and
/// extensions agree — swept over the Figure 5 concepts and more.
class ParserRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRoundTripTest, RoundTrip) {
  auto schema = workload::CitiesSchema();
  ASSERT_TRUE(schema.ok());
  auto instance = workload::CitiesInstance(&schema.value());
  ASSERT_TRUE(instance.ok());
  auto first = ls::ParseConcept(GetParam(), schema.value());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = first->ToString(&schema.value());
  auto second = ls::ParseConcept(printed, schema.value());
  ASSERT_TRUE(second.ok()) << printed << ": " << second.status().ToString();
  EXPECT_EQ(first.value(), second.value()) << printed;
  EXPECT_EQ(ls::Eval(first.value(), instance.value()),
            ls::Eval(second.value(), instance.value()));
}

INSTANTIATE_TEST_SUITE_P(
    Figure5AndMore, ParserRoundTripTest,
    ::testing::Values(
        "top", "{Amsterdam}", "{42}", "{3.5}", "pi[name](Cities)",
        "pi[0](Cities)", "pi[name](sigma[continent = Europe](Cities))",
        "pi[name](sigma[continent = 'N.America'](Cities))",
        "pi[name](sigma[population > 1000000](Cities))",
        "pi[name](sigma[population >= 1000000, population <= "
        "9000000](Cities))",
        "pi[name](BigCity)", "{'Santa Cruz'}",
        "pi[name](sigma[population < 1000000](Cities)) & "
        "pi[city_to](sigma[city_from = Amsterdam](Reachable))",
        "pi[city_from](Train-Connections) & pi[city_to](Train-Connections)",
        "top & pi[name](Cities)"));

TEST_F(LsConceptTest, ParserErrors) {
  EXPECT_FALSE(ls::ParseConcept("", schema_).ok());
  EXPECT_FALSE(ls::ParseConcept("pi[name](Nowhere)", schema_).ok());
  EXPECT_FALSE(ls::ParseConcept("pi[bogus](Cities)", schema_).ok());
  EXPECT_FALSE(ls::ParseConcept("pi[name](Cities) &", schema_).ok());
  EXPECT_FALSE(ls::ParseConcept("pi[name](Cities) junk", schema_).ok());
  EXPECT_FALSE(ls::ParseConcept("{unterminated", schema_).ok());
  EXPECT_FALSE(
      ls::ParseConcept("pi[name](sigma[continent ~ X](Cities))", schema_)
          .ok());
}

}  // namespace
}  // namespace whynot
