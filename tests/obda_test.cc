#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using dl::BasicConcept;
using dl::Role;

class ObdaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
    spec_ = std::make_unique<obda::ObdaSpec>(
        workload::CitiesTBox(), &schema_, workload::CitiesMappings());
    ASSERT_OK(spec_->Validate());
  }

  std::set<Value> Members(const obda::Saturation& sat, const char* name) {
    return sat.Members(BasicConcept::Atomic(name));
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<obda::ObdaSpec> spec_;
};

TEST_F(ObdaTest, Example45CertainExtensions) {
  ASSERT_OK_AND_ASSIGN(obda::Saturation sat, spec_->Saturate(*instance_));
  // ext_OB(EU-City, I) = {Amsterdam, Berlin, Rome}.
  EXPECT_EQ(Members(sat, "EU-City"),
            (std::set<Value>{Value("Amsterdam"), Value("Berlin"),
                             Value("Rome")}));
  // ext_OB(N.A.-City, I) = {New York, San Francisco, Santa Cruz}.
  EXPECT_EQ(Members(sat, "N.A.-City"),
            (std::set<Value>{Value("New York"), Value("San Francisco"),
                             Value("Santa Cruz")}));
  // ext_OB(City, I): all eight cities (via the positive closure).
  EXPECT_EQ(Members(sat, "City").size(), 8u);
  EXPECT_TRUE(Members(sat, "City").count(Value("Kyoto")) > 0);
  // ext_OB(∃hasCountry⁻, I) = the five countries (Example 4.5).
  std::set<Value> countries =
      sat.Members(BasicConcept::Exists(Role{"hasCountry", true}));
  EXPECT_EQ(countries,
            (std::set<Value>{Value("Netherlands"), Value("Germany"),
                             Value("Italy"), Value("USA"), Value("Japan")}));
  // ∃connected: every city with an outgoing train connection whose both
  // endpoints are cities. (The paper's Example 4.5 prints a truncated
  // listing; the definition yields these five.)
  std::set<Value> connected =
      sat.Members(BasicConcept::Exists(Role{"connected", false}));
  EXPECT_EQ(connected,
            (std::set<Value>{Value("Amsterdam"), Value("Berlin"),
                             Value("New York"), Value("San Francisco"),
                             Value("Tokyo")}));
}

TEST_F(ObdaTest, UnaryClosurePropagatesUpward) {
  ASSERT_OK_AND_ASSIGN(obda::Saturation sat, spec_->Saturate(*instance_));
  // Dutch-City ⊑ EU-City: Amsterdam must be certain in both.
  EXPECT_EQ(Members(sat, "Dutch-City"), std::set<Value>{Value("Amsterdam")});
  EXPECT_TRUE(Members(sat, "EU-City").count(Value("Amsterdam")) > 0);
  // City ⊑ ∃hasCountry: every city is certainly in ∃hasCountry even though
  // the witness may be anonymous.
  std::set<Value> has_country =
      sat.Members(BasicConcept::Exists(Role{"hasCountry", false}));
  EXPECT_EQ(has_country.size(), 8u);
}

TEST_F(ObdaTest, ConsistencyHoldsOnFigure2) {
  EXPECT_OK(spec_->CheckConsistent(*instance_));
}

TEST_F(ObdaTest, InconsistencyDetected) {
  // A city recorded both in Europe and N.America violates
  // EU-City ⊑ ¬N.A.-City once both mappings fire.
  rel::Instance bad(&schema_);
  ASSERT_OK(bad.AddFact("Cities",
                        {Value("Atlantis"), Value(1), Value("X"),
                         Value("Europe")}));
  ASSERT_OK(bad.AddFact("Cities",
                        {Value("Atlantis"), Value(2), Value("Y"),
                         Value("N.America")}));
  EXPECT_FALSE(spec_->CheckConsistent(bad).ok());
}

TEST_F(ObdaTest, InducedOntologyConceptsAndSubsumption) {
  obda::ObdaInducedOntology ontology(spec_.get());
  // All basic concepts occurring in the Figure 4 TBox (Example 4.5 lists
  // 13 of them).
  EXPECT_EQ(ontology.NumConcepts(), 13);
  onto::ConceptId dutch =
      ontology.FindConcept(BasicConcept::Atomic("Dutch-City"));
  onto::ConceptId city = ontology.FindConcept(BasicConcept::Atomic("City"));
  ASSERT_GE(dutch, 0);
  ASSERT_GE(city, 0);
  EXPECT_TRUE(ontology.Subsumes(dutch, city));
  EXPECT_FALSE(ontology.Subsumes(city, dutch));
}

TEST_F(ObdaTest, InducedOntologyConsistentWithInstance) {
  obda::ObdaInducedOntology ontology(spec_.get());
  onto::BoundOntology bound(&ontology, instance_.get());
  EXPECT_OK(bound.CheckConsistent());
}

TEST_F(ObdaTest, RoleInclusionClosureInSaturation) {
  // A spec where mapping-derived role facts propagate through a role
  // inclusion P ⊑ Q⁻.
  rel::Schema schema = testutil::SimpleSchema();
  dl::TBox t;
  t.AddRoleAxiom(Role{"P", false}, {Role{"Q", true}, false});
  std::vector<obda::GavMapping> mappings;
  mappings.push_back({{testutil::A("R", {testutil::V("x"), testutil::V("y")})},
                      {},
                      obda::MappingHead::RolePair("P", "x", "y")});
  obda::ObdaSpec spec(std::move(t), &schema, std::move(mappings));
  rel::Instance i(&schema);
  ASSERT_OK(i.AddFact("R", {Value("a"), Value("b")}));
  ASSERT_OK_AND_ASSIGN(obda::Saturation sat, spec.Saturate(i));
  // Q must contain the flipped pair (b, a).
  ASSERT_EQ(sat.role_pairs.count("Q"), 1u);
  EXPECT_TRUE(sat.role_pairs.at("Q").count({Value("b"), Value("a")}) > 0);
  // ∃Q therefore certainly contains b.
  EXPECT_TRUE(sat.Members(BasicConcept::Exists(Role{"Q", false}))
                  .count(Value("b")) > 0);
}

TEST_F(ObdaTest, MappingValidationCatchesBadBodies) {
  rel::Schema schema = testutil::SimpleSchema();
  std::vector<obda::GavMapping> mappings;
  mappings.push_back({{testutil::A("Nope", {testutil::V("x")})},
                      {},
                      obda::MappingHead::Concept("A", "x")});
  obda::ObdaSpec spec(dl::TBox(), &schema, std::move(mappings));
  EXPECT_FALSE(spec.Validate().ok());
}

}  // namespace
}  // namespace whynot
