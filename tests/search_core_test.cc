// Tests for the shared explain search core (search_core.h): the chunked
// candidate filter's order/abort semantics — including the prefix-chunked
// odometer fallback for spaces whose linearized product overflows
// uint64_t — the lex-min outcome sweep, the greedy prefix/suffix AND
// cache, and the CandidateSpace odometer arithmetic they build on. Every
// parallel path is compared against the 1-thread serial reference.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "whynot/common/parallel.h"
#include "whynot/explain/search_core.h"

namespace whynot::explain {
namespace {

/// Candidate lists of the given sizes; the concept ids themselves are
/// irrelevant to the odometer machinery.
std::vector<std::vector<onto::ConceptId>> ListsOfSizes(
    const std::vector<size_t>& sizes) {
  std::vector<std::vector<onto::ConceptId>> lists(sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    for (size_t j = 0; j < sizes[i]; ++j) {
      lists[i].push_back(static_cast<onto::ConceptId>(j));
    }
  }
  return lists;
}

/// Deterministic pseudo-random predicate of the odometer position.
bool HashPred(const std::vector<size_t>& idx) {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  for (size_t v : idx) h = (h ^ v) * 0x2545f4914f6cdd1dull;
  return (h >> 13) % 3 == 0;
}

TEST(CandidateSpaceTest, AdvanceByMatchesRepeatedAdvance) {
  auto lists = ListsOfSizes({3, 4, 2, 5});
  CandidateSpace space(lists);
  ASSERT_FALSE(space.overflow());
  ASSERT_EQ(space.total(), 120u);
  for (size_t start : {size_t{0}, size_t{7}, size_t{59}, size_t{119}}) {
    for (size_t steps : {size_t{0}, size_t{1}, size_t{13}, size_t{60}}) {
      if (start + steps >= space.total()) continue;
      std::vector<size_t> a;
      space.Decode(start, &a);
      std::vector<size_t> b = a;
      space.AdvanceBy(&a, steps);
      for (size_t k = 0; k < steps; ++k) ASSERT_TRUE(space.Advance(&b));
      EXPECT_EQ(a, b) << "start=" << start << " steps=" << steps;
    }
  }
}

TEST(CandidateSpaceTest, RemainingFromMatchesLinearDistance) {
  auto lists = ListsOfSizes({3, 4, 2, 5});
  CandidateSpace space(lists);
  for (size_t linear : {size_t{0}, size_t{1}, size_t{60}, size_t{119}}) {
    std::vector<size_t> idx;
    space.Decode(linear, &idx);
    EXPECT_EQ(space.RemainingFrom(idx), space.total() - linear);
  }
}

TEST(CandidateSpaceTest, WideProductOverflowsWithoutWrapping) {
  // 16 positions × 16 candidates = 16^16 = 2^64: one past SIZE_MAX.
  auto lists = ListsOfSizes(std::vector<size_t>(16, 16));
  CandidateSpace space(lists);
  EXPECT_TRUE(space.overflow());
  // The odometer arithmetic stays exact: remaining saturates, AdvanceBy
  // still lands where repeated Advance does.
  std::vector<size_t> idx(16, 0);
  EXPECT_EQ(space.RemainingFrom(idx), SIZE_MAX);
  std::vector<size_t> a = idx, b = idx;
  space.AdvanceBy(&a, 100000);
  for (int k = 0; k < 100000; ++k) ASSERT_TRUE(space.Advance(&b));
  EXPECT_EQ(a, b);
  // Near the very end the saturation resolves to the exact distance.
  std::vector<size_t> tail(16, 15);
  EXPECT_EQ(space.RemainingFrom(tail), 1u);
  tail[0] = 10;
  EXPECT_EQ(space.RemainingFrom(tail), 6u);
}

TEST(ParallelFilterTest, SurvivorOrderMatchesSerialAtEveryThreadCount) {
  // 70 × 70 × 41 = 200900 candidates: three full chunks plus a partial
  // one, so the chunk loop, the block merge, and the final partial chunk
  // all execute.
  auto lists = ListsOfSizes({70, 70, 41});
  CandidateSpace space(lists);
  ASSERT_EQ(space.total(), 200900u);

  std::vector<std::vector<size_t>> reference;
  par::SetNumThreads(1);
  ASSERT_TRUE(ParallelFilterSpace(space, HashPred,
                                  [&](const std::vector<size_t>& idx) {
                                    reference.push_back(idx);
                                    return true;
                                  })
                  .ok());
  EXPECT_GT(reference.size(), 0u);

  for (int threads : {2, 8}) {
    par::SetNumThreads(threads);
    std::vector<std::vector<size_t>> got;
    ASSERT_TRUE(ParallelFilterSpace(space, HashPred,
                                    [&](const std::vector<size_t>& idx) {
                                      got.push_back(idx);
                                      return true;
                                    })
                    .ok());
    EXPECT_EQ(got, reference) << "threads=" << threads;
  }
  par::SetNumThreads(0);
}

TEST(ParallelFilterTest, ConsumeAbortStopsEnumeration) {
  auto lists = ListsOfSizes({70, 70, 41});
  CandidateSpace space(lists);
  for (int threads : {1, 8}) {
    par::SetNumThreads(threads);
    size_t seen = 0;
    ASSERT_TRUE(ParallelFilterSpace(space,
                                    [](const std::vector<size_t>&) {
                                      return true;
                                    },
                                    [&](const std::vector<size_t>&) {
                                      return ++seen < 1000;
                                    })
                    .ok());
    EXPECT_EQ(seen, 1000u) << "threads=" << threads;
  }
  par::SetNumThreads(0);
}

TEST(ParallelFilterTest, OverflowingSpaceFallsBackToOdometerIteration) {
  // The synthetic wide space: the product (2^64) cannot be linearized, so
  // the filter must take the prefix-chunked odometer route. Enumerate the
  // first 150000 survivors (more than two chunks' worth) and compare the
  // parallel runs against the serial reference.
  auto lists = ListsOfSizes(std::vector<size_t>(16, 16));
  CandidateSpace space(lists);
  ASSERT_TRUE(space.overflow());

  auto collect = [&](int threads, size_t limit) {
    par::SetNumThreads(threads);
    std::vector<std::vector<size_t>> out;
    EXPECT_TRUE(ParallelFilterSpace(space, HashPred,
                                    [&](const std::vector<size_t>& idx) {
                                      out.push_back(idx);
                                      return out.size() < limit;
                                    })
                    .ok());
    return out;
  };
  std::vector<std::vector<size_t>> reference = collect(1, 150000);
  ASSERT_EQ(reference.size(), 150000u);
  // Spot-check the reference against a hand-advanced odometer.
  std::vector<size_t> idx(16, 0);
  std::vector<std::vector<size_t>> manual;
  while (manual.size() < 5) {
    if (HashPred(idx)) manual.push_back(idx);
    ASSERT_TRUE(space.Advance(&idx));
  }
  for (size_t i = 0; i < manual.size(); ++i) EXPECT_EQ(reference[i], manual[i]);

  for (int threads : {2, 8}) {
    EXPECT_EQ(collect(threads, 150000), reference) << "threads=" << threads;
  }
  par::SetNumThreads(0);
}

TEST(LexMinSweepTest, SmallestOutcomeWinsAtEveryThreadCount) {
  // Outcomes at deterministic positions; the sweep must return the
  // smallest one, like a serial loop returning at its first outcome.
  struct Worker {
    int probes = 0;
  };
  auto run = [&](int threads, size_t n, size_t first_outcome) {
    par::SetNumThreads(threads);
    std::vector<std::unique_ptr<Worker>> workers(
        static_cast<size_t>(par::MaxWorkers()));
    std::optional<size_t> got = LexMinSweep<Worker, size_t>(
        n, 4, &workers, [] { return std::make_unique<Worker>(); },
        [&](Worker& w, size_t i) -> std::optional<size_t> {
          ++w.probes;
          if (i >= first_outcome && i % 3 == first_outcome % 3) return i;
          return std::nullopt;
        });
    par::SetNumThreads(0);
    return got;
  };
  for (size_t n : {size_t{0}, size_t{5}, size_t{100}, size_t{1000}}) {
    for (size_t first : {size_t{0}, size_t{7}, size_t{502}, size_t{5000}}) {
      std::optional<size_t> want =
          first < n ? std::optional<size_t>(first) : std::nullopt;
      for (int threads : {1, 2, 8}) {
        EXPECT_EQ(run(threads, n, first), want)
            << "n=" << n << " first=" << first << " threads=" << threads;
      }
    }
  }
}

TEST(GreedyAndCacheTest, RestMatchesNaiveProductAnd) {
  // Random covers over a few positions; Rest(j) must equal the AND of the
  // *current* covers below j and the *initial* covers above j, with
  // position j excluded — including after mid-sweep cover swaps.
  constexpr size_t kWords = 5;
  constexpr size_t kPositions = 4;
  uint64_t full_words[kWords];
  for (size_t w = 0; w < kWords; ++w) full_words[w] = ~uint64_t{0};

  auto word_at = [](size_t pos, size_t gen, size_t w) {
    uint64_t h = (pos + 1) * 0x9e3779b97f4a7c15ull + gen * 0x2545f4914f6cdd1dull +
                 w * 0xbf58476d1ce4e5b9ull;
    h ^= h >> 29;
    return h | (h << 17);
  };
  // covers[pos] regenerated when the sweep "accepts" a swap at pos.
  std::vector<size_t> generation(kPositions, 0);
  std::vector<std::vector<uint64_t>> covers(kPositions,
                                            std::vector<uint64_t>(kWords));
  auto fill = [&](size_t pos) {
    for (size_t w = 0; w < kWords; ++w) {
      covers[pos][w] = word_at(pos, generation[pos], w);
    }
  };
  for (size_t p = 0; p < kPositions; ++p) fill(p);
  std::vector<std::vector<uint64_t>> initial = covers;

  GreedyAndCache cache;
  auto cover_at = [&](size_t k) { return covers[k].data(); };
  cache.Reset(kPositions, kWords, full_words, cover_at);

  for (size_t j = 0; j < kPositions; ++j) {
    const std::vector<uint64_t>& rest = cache.Rest(j, cover_at);
    for (size_t w = 0; w < kWords; ++w) {
      uint64_t want = full_words[w];
      for (size_t k = 0; k < j; ++k) want &= covers[k][w];      // current
      for (size_t k = j + 1; k < kPositions; ++k) want &= initial[k][w];
      EXPECT_EQ(rest[w], want) << "j=" << j << " w=" << w;
    }
    // Accept a swap at j: the final cover differs from the initial one
    // and must be what the prefix absorbs when Rest moves past j.
    generation[j] = j + 1;
    fill(j);
  }
}

}  // namespace
}  // namespace whynot::explain
