#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using explain::Degree;
using explain::Explanation;

TEST(DegreeTest, ComparisonSemantics) {
  Degree small{false, 3};
  Degree big{false, 10};
  Degree inf{true, 0};
  EXPECT_TRUE(big > small);
  EXPECT_FALSE(small > big);
  EXPECT_TRUE(inf > big);
  EXPECT_FALSE(big > inf);
  EXPECT_TRUE(Degree({true, 5}) == inf);
  EXPECT_EQ(inf.ToString(), "inf");
  EXPECT_EQ(big.ToString(), "10");
}

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
    auto ontology = workload::CitiesOntology();
    ASSERT_TRUE(ontology.ok());
    ontology_ = std::move(ontology).value();
    bound_ = std::make_unique<onto::BoundOntology>(ontology_.get(),
                                                   instance_.get());
    auto wni = explain::MakeWhyNotInstance(instance_.get(),
                                           workload::ConnectedViaQuery(),
                                           {"Amsterdam", "New York"});
    ASSERT_TRUE(wni.ok());
    wni_ = std::make_unique<explain::WhyNotInstance>(std::move(wni).value());
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<onto::ExplicitOntology> ontology_;
  std::unique_ptr<onto::BoundOntology> bound_;
  std::unique_ptr<explain::WhyNotInstance> wni_;
};

TEST_F(CardinalityTest, ExactMaximumOnExample34) {
  ASSERT_OK_AND_ASSIGN(auto exact,
                       explain::ExactCardMaximal(bound_.get(), *wni_));
  ASSERT_TRUE(exact.has_value());
  // (City, East-Coast-City) has degree 8 + 1 = 9;
  // (European-City, US-City) has degree 3 + 3 = 6. The exact maximum is 9.
  EXPECT_EQ(exact->degree.ToString(), "9");
  ASSERT_OK_AND_ASSIGN(
      bool valid,
      explain::IsExplanation(bound_.get(), *wni_, exact->explanation));
  EXPECT_TRUE(valid);
}

TEST_F(CardinalityTest, GreedyReturnsValidExplanation) {
  ASSERT_OK_AND_ASSIGN(auto greedy,
                       explain::GreedyCardinalityClimb(bound_.get(), *wni_));
  ASSERT_TRUE(greedy.has_value());
  ASSERT_OK_AND_ASSIGN(
      bool valid,
      explain::IsExplanation(bound_.get(), *wni_, greedy->explanation));
  EXPECT_TRUE(valid);
  ASSERT_OK_AND_ASSIGN(auto exact,
                       explain::ExactCardMaximal(bound_.get(), *wni_));
  // Greedy never exceeds the exact optimum.
  EXPECT_FALSE(greedy->degree > exact->degree);
}

TEST_F(CardinalityTest, NoExplanationMeansNullopt) {
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(instance_.get(),
                                  workload::ConnectedViaQuery(),
                                  {"Mars", "New York"}));
  ASSERT_OK_AND_ASSIGN(auto exact,
                       explain::ExactCardMaximal(bound_.get(), wni));
  EXPECT_FALSE(exact.has_value());
  ASSERT_OK_AND_ASSIGN(auto greedy,
                       explain::GreedyCardinalityClimb(bound_.get(), wni));
  EXPECT_FALSE(greedy.has_value());
}

/// Sweep: greedy ≤ exact on random instances (Proposition 6.4's gap shows
/// up as strict inequality on some seeds; validity always holds).
class CardinalitySweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CardinalitySweepTest, GreedyNeverBeatsExact) {
  uint64_t seed = GetParam();
  workload::Rng rng(seed * 3 + 2);
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  std::vector<Value> domain;
  for (int i = 0; i < 8; ++i) domain.push_back(Value(i));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<onto::ExplicitOntology> ontology,
                       workload::RandomTreeOntology(domain, 8, seed));
  onto::BoundOntology bound(ontology.get(), &instance);
  std::vector<Tuple> answers;
  for (int i = 0; i < 6; ++i) {
    answers.push_back({domain[rng.Below(domain.size())],
                       domain[rng.Below(domain.size())]});
  }
  Tuple missing = {domain[rng.Below(domain.size())],
                   domain[rng.Below(domain.size())]};
  auto wni_or =
      explain::MakeWhyNotInstanceFromAnswers(&instance, answers, missing);
  if (!wni_or.ok()) return;
  ASSERT_OK_AND_ASSIGN(auto exact,
                       explain::ExactCardMaximal(&bound, wni_or.value()));
  ASSERT_OK_AND_ASSIGN(
      auto greedy, explain::GreedyCardinalityClimb(&bound, wni_or.value()));
  EXPECT_EQ(exact.has_value(), greedy.has_value());
  if (exact.has_value() && greedy.has_value()) {
    EXPECT_FALSE(greedy->degree > exact->degree) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CardinalitySweepTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace whynot
