#include "whynot/explain/enumerate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "test_util.h"

namespace whynot {
namespace {

using explain::EnumerateAllMges;
using explain::EnumerateOptions;
using explain::EnumerateStats;
using explain::LsExplanation;
using explain::WhyNotInstance;
using testutil::A;
using testutil::Q1;
using testutil::V;

// Canonical key of an explanation: the tuple of extensions on I.
std::vector<std::pair<bool, std::vector<Value>>> ExtKey(
    const LsExplanation& e, const rel::Instance& instance) {
  std::vector<std::pair<bool, std::vector<Value>>> key;
  for (const ls::LsConcept& c : e) {
    ls::Extension ext = ls::Eval(c, instance);
    key.emplace_back(ext.all, ext.values());
  }
  return key;
}

// The Figures 1-2 travel world with the two-hop query and the paper's
// why-not pair (Amsterdam, New York).
class EnumerateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, workload::CitiesDataSchema());
    ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                         workload::CitiesInstance(&schema_));
    instance_ = std::make_unique<rel::Instance>(std::move(instance));
    ASSERT_OK_AND_ASSIGN(
        WhyNotInstance wni,
        explain::MakeWhyNotInstance(instance_.get(),
                                    workload::ConnectedViaQuery(),
                                    {"Amsterdam", "New York"}));
    wni_ = std::make_unique<WhyNotInstance>(std::move(wni));
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<WhyNotInstance> wni_;
};

TEST_F(EnumerateTest, EveryOutputIsAnExplanation) {
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       EnumerateAllMges(*wni_));
  ASSERT_FALSE(mges.empty());
  for (const LsExplanation& e : mges) {
    EXPECT_TRUE(explain::IsLsExplanation(*wni_, e))
        << explain::LsExplanationToString(schema_, e);
  }
}

TEST_F(EnumerateTest, EveryOutputPassesCheckMge) {
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       EnumerateAllMges(*wni_));
  ls::LubContext ctx(instance_.get());
  for (const LsExplanation& e : mges) {
    ASSERT_OK_AND_ASSIGN(
        bool is_mge,
        explain::CheckMgeDerived(*wni_, e, /*with_selections=*/false, &ctx));
    EXPECT_TRUE(is_mge) << explain::LsExplanationToString(schema_, e);
  }
}

TEST_F(EnumerateTest, OutputsArePairwiseIncomparable) {
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       EnumerateAllMges(*wni_));
  for (size_t i = 0; i < mges.size(); ++i) {
    for (size_t j = 0; j < mges.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(explain::StrictlyLessGeneralI(*instance_, mges[i], mges[j]))
          << "output " << i << " strictly below output " << j;
    }
  }
}

TEST_F(EnumerateTest, OutputsAreDistinctModuloEquivalence) {
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       EnumerateAllMges(*wni_));
  std::set<std::vector<std::pair<bool, std::vector<Value>>>> keys;
  for (const LsExplanation& e : mges) {
    EXPECT_TRUE(keys.insert(ExtKey(e, *instance_)).second)
        << "duplicate: " << explain::LsExplanationToString(schema_, e);
  }
}

TEST_F(EnumerateTest, ContainsIncrementalSearchOutput) {
  ASSERT_OK_AND_ASSIGN(LsExplanation one, explain::IncrementalSearch(*wni_));
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> all,
                       EnumerateAllMges(*wni_));
  auto one_key = ExtKey(one, *instance_);
  bool found = false;
  for (const LsExplanation& e : all) {
    if (ExtKey(e, *instance_) == one_key) found = true;
  }
  EXPECT_TRUE(found) << "Algorithm 2's MGE missing from the enumeration";
}

TEST_F(EnumerateTest, PaperLiteralModeStillYieldsValidExplanations) {
  // generalize_to_top = false follows Algorithm 2's pseudocode to the
  // letter (generalization only over adom constants; ⊤ can still appear
  // when lub finds no qualifying conjunct). Outputs must remain
  // explanations and pairwise incomparable.
  EnumerateOptions options;
  options.generalize_to_top = false;
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       EnumerateAllMges(*wni_, options));
  ASSERT_FALSE(mges.empty());
  for (const LsExplanation& e : mges) {
    EXPECT_TRUE(explain::IsLsExplanation(*wni_, e));
  }
  for (size_t i = 0; i < mges.size(); ++i) {
    for (size_t j = 0; j < mges.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(explain::StrictlyLessGeneralI(*instance_, mges[i], mges[j]));
    }
  }
}

TEST_F(EnumerateTest, WithSelectionsOutputsPassSelectionAwareCheckMge) {
  EnumerateOptions options;
  options.with_selections = true;
  options.max_results = 50;
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       EnumerateAllMges(*wni_, options));
  ASSERT_FALSE(mges.empty());
  ls::LubContext ctx(instance_.get());
  for (const LsExplanation& e : mges) {
    ASSERT_OK_AND_ASSIGN(
        bool is_mge,
        explain::CheckMgeDerived(*wni_, e, /*with_selections=*/true, &ctx));
    EXPECT_TRUE(is_mge) << explain::LsExplanationToString(schema_, e);
  }
}

TEST_F(EnumerateTest, MaxResultsCapRespected) {
  EnumerateOptions options;
  options.max_results = 1;
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       EnumerateAllMges(*wni_, options));
  EXPECT_EQ(mges.size(), 1u);
}

TEST_F(EnumerateTest, MaxNodesCapReturnsResourceExhausted) {
  EnumerateOptions options;
  options.max_nodes = 0;
  auto result = EnumerateAllMges(*wni_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(EnumerateTest, StatsArePopulated) {
  EnumerateStats stats;
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       EnumerateAllMges(*wni_, {}, &stats));
  EXPECT_GE(stats.nodes_expanded, mges.size());
  EXPECT_GE(stats.max_delay, 1u);
}

TEST(EnumerateEdgeTest, EmptyAnswersYieldSingleAllTopMge) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("R", {1, 2}));
  // q(x, y) :- R(x, y), R(y, x): no symmetric pair exists, so Ans = ∅.
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {A("R", {V("x"), V("y")}), A("R", {V("y"), V("x")})};
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(&instance, Q1(cq), {Value(7), Value(8)}));
  ASSERT_TRUE(wni.answers.empty());
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       EnumerateAllMges(wni));
  ASSERT_EQ(mges.size(), 1u);
  for (const ls::LsConcept& c : mges[0]) {
    EXPECT_TRUE(ls::Eval(c, instance).all)
        << "with Ans = ∅ the unique MGE is (⊤, ..., ⊤)";
  }
}

// --- Completeness sweep: enumeration output == brute force over the
// --- materialized selection-free OI[K] fed to Algorithm 1.
class EnumerateCompletenessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnumerateCompletenessTest, MatchesExhaustiveOverMaterializedOntology) {
  uint64_t seed = GetParam();
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::RandomSchema(2, {2, 1}));
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::RandomInstance(&schema, 6, 5, seed));

  // Query: q(x, y) :- R0(x, y). Prefer a missing tuple inside adom × adom
  // (so both positions explore the full concept lattice); fall back to a
  // fresh pair when R0 happens to be complete over the domain.
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {A("R0", {V("x"), V("y")})};
  Tuple missing = {Value(91), Value(92)};
  for (int64_t x = 0; x < 5 && missing[0] == Value(91); ++x) {
    for (int64_t y = 0; y < 5; ++y) {
      if (!instance.Contains("R0", {Value(x), Value(y)})) {
        missing = {Value(x), Value(y)};
        break;
      }
    }
  }
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(&instance, Q1(cq), missing));

  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> enumerated,
                       EnumerateAllMges(wni));

  // Brute force: materialize the selection-free fragment over
  // K = adom ∪ {91, 92} (includes ⊤ and all conjunct intersections modulo
  // extension equivalence) and run Algorithm 1 for all MGEs.
  ls::MaterializeOptions mat;
  mat.fragment = ls::Fragment::kSelectionFree;
  mat.mode = ls::SubsumptionMode::kInstance;
  mat.max_concepts = 8192;
  ASSERT_OK_AND_ASSIGN(
      auto ontology,
      ls::LsOntology::Materialize(&instance, {missing[0], missing[1]}, mat));
  onto::BoundOntology bound(ontology.get(), &instance);
  ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> brute,
                       explain::ExhaustiveSearchAllMge(&bound, wni));

  std::set<std::vector<std::pair<bool, std::vector<Value>>>> enum_keys;
  for (const LsExplanation& e : enumerated) {
    enum_keys.insert(ExtKey(e, instance));
  }
  std::set<std::vector<std::pair<bool, std::vector<Value>>>> brute_keys;
  for (const explain::Explanation& e : brute) {
    LsExplanation ls_e;
    for (onto::ConceptId id : e) ls_e.push_back(ontology->Concept(id));
    brute_keys.insert(ExtKey(ls_e, instance));
  }
  EXPECT_EQ(enum_keys, brute_keys)
      << "seed " << seed << ": enumerated " << enum_keys.size()
      << " classes, brute force " << brute_keys.size();
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnumerateCompletenessTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace whynot
