#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using testutil::A;
using testutil::C;
using testutil::Q1;
using testutil::V;

TEST(ViewsTest, Figure1SchemaProperties) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesSchema());
  EXPECT_TRUE(schema.HasViews());
  EXPECT_TRUE(schema.HasFds());
  EXPECT_TRUE(schema.HasIds());
  EXPECT_TRUE(schema.ViewsAreLinear());
  EXPECT_TRUE(schema.ViewsAreFlat());  // no view references another view
  EXPECT_OK(schema.CheckViewsAcyclic());
}

TEST(ViewsTest, Figure2Materialization) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesSchema());
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::CitiesInstance(&schema));
  // BigCity = {New York, Tokyo} (population >= 5,000,000).
  EXPECT_EQ(instance.Relation("BigCity").size(), 2u);
  EXPECT_TRUE(instance.Contains("BigCity", {Value("New York")}));
  EXPECT_TRUE(instance.Contains("BigCity", {Value("Tokyo")}));
  // EuropeanCountry = {Netherlands, Germany, Italy}.
  EXPECT_EQ(instance.Relation("EuropeanCountry").size(), 3u);
  EXPECT_TRUE(instance.Contains("EuropeanCountry", {Value("Netherlands")}));
  // Reachable = 6 direct + {A->Rome, A->A, B->B, NY->SC} = 10 pairs
  // (Figure 2).
  EXPECT_EQ(instance.Relation("Reachable").size(), 10u);
  EXPECT_TRUE(
      instance.Contains("Reachable", {Value("Amsterdam"), Value("Rome")}));
  EXPECT_TRUE(instance.Contains("Reachable",
                                {Value("Amsterdam"), Value("Amsterdam")}));
  EXPECT_TRUE(
      instance.Contains("Reachable", {Value("Berlin"), Value("Berlin")}));
  EXPECT_TRUE(instance.Contains("Reachable",
                                {Value("New York"), Value("Santa Cruz")}));
  // The instance satisfies all Figure 1 constraints.
  EXPECT_OK(instance.SatisfiesConstraints());
}

TEST(ViewsTest, NestedViewTopologicalOrder) {
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("Base", {"x"}));
  rel::ConjunctiveQuery v1_def;
  v1_def.head = {"x"};
  v1_def.atoms = {A("Base", {V("x")})};
  ASSERT_OK(schema.AddView("V1", {"x"}, Q1(v1_def)));
  rel::ConjunctiveQuery v2_def;
  v2_def.head = {"x"};
  v2_def.atoms = {A("V1", {V("x")})};
  ASSERT_OK(schema.AddView("V2", {"x"}, Q1(v2_def)));
  EXPECT_FALSE(schema.ViewsAreFlat());
  EXPECT_TRUE(schema.ViewsAreLinear());
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> order,
                       rel::ViewTopologicalOrder(schema));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "V1");
  EXPECT_EQ(order[1], "V2");

  rel::Instance i(&schema);
  ASSERT_OK(i.AddFact("Base", {Value(7)}));
  ASSERT_OK(rel::MaterializeViews(&i));
  EXPECT_TRUE(i.Contains("V2", {Value(7)}));
}

TEST(ViewsTest, CyclicViewsRejected) {
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("Base", {"x"}));
  rel::ConjunctiveQuery v1_def;
  v1_def.head = {"x"};
  v1_def.atoms = {A("V2", {V("x")})};
  // AddView does not yet see V2, so build both and validate.
  rel::ConjunctiveQuery v2_def;
  v2_def.head = {"x"};
  v2_def.atoms = {A("V1", {V("x")})};
  ASSERT_OK(schema.AddView("V1", {"x"}, Q1(v1_def)));
  ASSERT_OK(schema.AddView("V2", {"x"}, Q1(v2_def)));
  EXPECT_FALSE(schema.CheckViewsAcyclic().ok());
  EXPECT_FALSE(rel::ViewTopologicalOrder(schema).ok());
}

TEST(ViewsTest, NonLinearNestingDetected) {
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("Base", {"x", "y"}));
  rel::ConjunctiveQuery v1_def;
  v1_def.head = {"x", "y"};
  v1_def.atoms = {A("Base", {V("x"), V("y")})};
  ASSERT_OK(schema.AddView("V1", {"x", "y"}, Q1(v1_def)));
  // V2 joins V1 with itself: two view atoms in one disjunct.
  rel::ConjunctiveQuery v2_def;
  v2_def.head = {"x", "z"};
  v2_def.atoms = {A("V1", {V("x"), V("y")}), A("V1", {V("y"), V("z")})};
  ASSERT_OK(schema.AddView("V2", {"x", "z"}, Q1(v2_def)));
  EXPECT_FALSE(schema.ViewsAreLinear());
}

TEST(ViewsTest, ExpansionFlattensToBaseAtoms) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesSchema());
  rel::ConjunctiveQuery q;
  q.head = {"x"};
  q.atoms = {A("BigCity", {V("x")})};
  ASSERT_OK_AND_ASSIGN(rel::UnionQuery expanded,
                       rel::ExpandViews(q, schema));
  ASSERT_EQ(expanded.disjuncts.size(), 1u);
  EXPECT_EQ(expanded.disjuncts[0].atoms.size(), 1u);
  EXPECT_EQ(expanded.disjuncts[0].atoms[0].relation, "Cities");
  EXPECT_EQ(expanded.disjuncts[0].comparisons.size(), 1u);
}

TEST(ViewsTest, ExpansionMultipliesDisjuncts) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesSchema());
  // Reachable has 2 disjuncts; joining two Reachable atoms gives 4.
  rel::ConjunctiveQuery q;
  q.head = {"x"};
  q.atoms = {A("Reachable", {V("x"), V("y")}),
             A("Reachable", {V("y"), V("z")})};
  ASSERT_OK_AND_ASSIGN(rel::UnionQuery expanded,
                       rel::ExpandViews(q, schema));
  EXPECT_EQ(expanded.disjuncts.size(), 4u);
  for (const rel::ConjunctiveQuery& d : expanded.disjuncts) {
    for (const rel::Atom& atom : d.atoms) {
      EXPECT_EQ(atom.relation, "Train-Connections");
    }
  }
}

TEST(ViewsTest, ExpansionDropsUnsatisfiableDisjuncts) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesSchema());
  // BigCity("x") with the head bound to a constant whose comparison fails:
  // q() :- BigCity(c) where the expansion instantiates y >= 5000000 on the
  // constant column. Build q(x) :- BigCity(x), then substitute via constant
  // atom arg.
  rel::ConjunctiveQuery q;
  q.head = {"z"};
  q.atoms = {A("BigCity", {C(Value("nowhere"))}),
             A("Cities", {V("z"), V("p"), V("c"), V("k")})};
  ASSERT_OK_AND_ASSIGN(rel::UnionQuery expanded,
                       rel::ExpandViews(q, schema));
  // The view body's comparison y >= 5000000 lands on a fresh variable (the
  // population of "nowhere"), so the disjunct survives.
  EXPECT_EQ(expanded.disjuncts.size(), 1u);
}

TEST(ViewsTest, ExpansionCapReported) {
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("B", {"x"}));
  // Chain of views each with 3 disjuncts over the previous one: the
  // expansion is 3^depth — the CONEXPTIME row of Table 1.
  std::string prev = "B";
  for (int depth = 0; depth < 8; ++depth) {
    rel::UnionQuery def;
    for (int d = 0; d < 3; ++d) {
      rel::ConjunctiveQuery cq;
      cq.head = {"x"};
      cq.atoms = {A(prev, {V("x")})};
      if (d > 0) cq.atoms.push_back(A(prev, {V("y" + std::to_string(d))}));
      def.disjuncts.push_back(std::move(cq));
    }
    std::string name = "V" + std::to_string(depth);
    ASSERT_OK(schema.AddView(name, {"x"}, std::move(def)));
    prev = name;
  }
  rel::ConjunctiveQuery q;
  q.head = {"x"};
  q.atoms = {A("V7", {V("x")})};
  Result<rel::UnionQuery> expanded =
      rel::ExpandViews(q, schema, /*max_disjuncts=*/100, /*max_atoms=*/1000);
  ASSERT_FALSE(expanded.ok());
  EXPECT_EQ(expanded.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace whynot
