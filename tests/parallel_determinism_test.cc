// Determinism gate for the parallel execution layer (PR 4): every
// explanation search must produce bit-identical results — including
// enumeration order, witnesses, stats, and error outcomes — at
// WHYNOT_THREADS ∈ {1, 2, 8}. The 1-thread run takes the serial code
// paths verbatim and serves as the reference; the multi-thread runs
// exercise the sharded warm-up, the candidate fan-outs, and the
// deterministic index-ordered merges.

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "test_util.h"
#include "whynot/common/algorithm.h"

namespace whynot {
namespace {

using workload::Rng;

constexpr int kThreadCounts[] = {1, 2, 8};

/// Runs `fn` at each thread count and asserts every result equals the
/// 1-thread reference. `fn` must rebuild all per-run state itself.
template <typename T>
void ExpectSameAtAllThreadCounts(const std::function<T()>& fn,
                                 const std::string& what) {
  std::optional<T> reference;
  for (int threads : kThreadCounts) {
    par::SetNumThreads(threads);
    T got = fn();
    if (!reference.has_value()) {
      reference = std::move(got);
    } else {
      EXPECT_TRUE(got == *reference)
          << what << " diverged at WHYNOT_THREADS=" << threads;
    }
  }
  par::SetNumThreads(0);  // back to the environment / hardware default
}

struct ExternalFixture {
  rel::Schema schema;
  std::unique_ptr<rel::Instance> instance;
  std::unique_ptr<onto::ExplicitOntology> ontology;
  explain::WhyNotInstance wni;
};

ExternalFixture MakeExternalFixture(uint64_t seed) {
  ExternalFixture f;
  auto schema = workload::RandomSchema(2, {2, 2});
  EXPECT_TRUE(schema.ok());
  f.schema = std::move(schema).value();
  auto instance =
      workload::RandomInstance(&f.schema, /*rows_per_relation=*/30,
                               /*domain=*/12, seed);
  EXPECT_TRUE(instance.ok());
  f.instance = std::make_unique<rel::Instance>(std::move(instance).value());

  const std::vector<Value>& adom = f.instance->ActiveDomain();
  auto ontology = workload::RandomTreeOntology(adom, /*num_concepts=*/40,
                                               seed ^ 0x9e3779b9ull);
  EXPECT_TRUE(ontology.ok());
  f.ontology = std::move(ontology).value();

  Rng rng(seed ^ 0x51ull);
  f.wni.instance = f.instance.get();
  size_t m = 2;
  f.wni.missing = {adom[rng.Below(adom.size())], adom[rng.Below(adom.size())]};
  for (int a = 0; a < 14; ++a) {
    Tuple t;
    for (size_t j = 0; j < m; ++j) t.push_back(adom[rng.Below(adom.size())]);
    if (t != f.wni.missing) f.wni.answers.push_back(std::move(t));
  }
  SortUnique(&f.wni.answers);
  return f;
}

class ParallelDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminismTest, WarmupAndConceptsContaining) {
  ExternalFixture f = MakeExternalFixture(GetParam());
  ExpectSameAtAllThreadCounts<std::vector<std::string>>(
      [&] {
        onto::BoundOntology bound(f.ontology.get(), f.instance.get());
        bound.WarmExtensions();
        // Serialize pool-dependent state: every extension as ids plus the
        // concepts containing each missing-tuple constant. Byte-identical
        // warm-up means identical pool ids, so the id vectors must match.
        std::vector<std::string> out;
        for (onto::ConceptId c = 0; c < bound.NumConcepts(); ++c) {
          const onto::ExtSet& e = bound.Ext(c);
          std::string s = e.is_all() ? "all" : "";
          if (!e.is_all()) {
            for (ValueId id : e.ids()) s += std::to_string(id) + ",";
          }
          out.push_back(std::move(s));
        }
        for (const Value& v : f.wni.missing) {
          std::string s;
          ValueId id = bound.pool().Intern(v);
          for (onto::ConceptId c : bound.ConceptsContaining(id)) {
            s += std::to_string(c) + ",";
          }
          out.push_back(std::move(s));
        }
        out.push_back(bound.CheckConsistent().ToString());
        return out;
      },
      "warm-up / ConceptsContaining / CheckConsistent");
}

TEST_P(ParallelDeterminismTest, ExternalSearches) {
  ExternalFixture f = MakeExternalFixture(GetParam());
  ExpectSameAtAllThreadCounts<bool>(
      [&] {
        onto::BoundOntology bound(f.ontology.get(), f.instance.get());
        explain::Explanation witness;
        auto r = explain::ExistsExplanation(&bound, f.wni, &witness);
        EXPECT_TRUE(r.ok());
        return r.ok() && r.value();
      },
      "ExistsExplanation");
  ExpectSameAtAllThreadCounts<std::vector<explain::Explanation>>(
      [&] {
        onto::BoundOntology bound(f.ontology.get(), f.instance.get());
        auto r = explain::ExhaustiveSearchAllMge(&bound, f.wni);
        EXPECT_TRUE(r.ok());
        return r.ok() ? r.value() : std::vector<explain::Explanation>{};
      },
      "ExhaustiveSearchAllMge");
  ExpectSameAtAllThreadCounts<std::vector<explain::Explanation>>(
      [&] {
        onto::BoundOntology bound(f.ontology.get(), f.instance.get());
        auto r = explain::PrunedSearchAllMge(&bound, f.wni);
        EXPECT_TRUE(r.ok());
        return r.ok() ? r.value() : std::vector<explain::Explanation>{};
      },
      "PrunedSearchAllMge");
  ExpectSameAtAllThreadCounts<std::string>(
      [&] {
        onto::BoundOntology bound(f.ontology.get(), f.instance.get());
        auto r = explain::ExactCardMaximal(&bound, f.wni);
        EXPECT_TRUE(r.ok());
        if (!r.ok() || !r.value().has_value()) return std::string("none");
        std::string s = r.value()->degree.ToString() + ":";
        for (onto::ConceptId c : r.value()->explanation) {
          s += std::to_string(c) + ",";
        }
        return s;
      },
      "ExactCardMaximal");
  ExpectSameAtAllThreadCounts<std::string>(
      [&] {
        onto::BoundOntology bound(f.ontology.get(), f.instance.get());
        auto r = explain::GreedyCardinalityClimb(&bound, f.wni);
        EXPECT_TRUE(r.ok());
        if (!r.ok() || !r.value().has_value()) return std::string("none");
        std::string s = r.value()->degree.ToString() + ":";
        for (onto::ConceptId c : r.value()->explanation) {
          s += std::to_string(c) + ",";
        }
        return s;
      },
      "GreedyCardinalityClimb");
}

TEST_P(ParallelDeterminismTest, CheckMgeAndWhyExternal) {
  ExternalFixture f = MakeExternalFixture(GetParam());
  // Candidates: the serial exhaustive MGEs plus arbitrary tuples.
  par::SetNumThreads(1);
  std::vector<explain::Explanation> candidates;
  {
    onto::BoundOntology bound(f.ontology.get(), f.instance.get());
    auto r = explain::ExhaustiveSearchAllMge(&bound, f.wni);
    ASSERT_TRUE(r.ok());
    candidates = r.value();
  }
  Rng rng(GetParam() ^ 0xc0ffeeull);
  int n = 40;
  for (int i = 0; i < 6; ++i) {
    candidates.push_back(
        {static_cast<onto::ConceptId>(rng.Below(static_cast<uint64_t>(n))),
         static_cast<onto::ConceptId>(rng.Below(static_cast<uint64_t>(n)))});
  }
  ExpectSameAtAllThreadCounts<std::vector<int>>(
      [&] {
        std::vector<int> verdicts;
        for (const explain::Explanation& e : candidates) {
          onto::BoundOntology bound(f.ontology.get(), f.instance.get());
          auto r = explain::CheckMgeExternal(&bound, f.wni, e);
          EXPECT_TRUE(r.ok());
          verdicts.push_back(r.ok() && r.value() ? 1 : 0);
        }
        return verdicts;
      },
      "CheckMgeExternal");

  // Why-instance over the same world: explain a *present* tuple.
  ASSERT_FALSE(f.wni.answers.empty());
  explain::WhyInstance wi;
  wi.instance = f.instance.get();
  wi.answers = f.wni.answers;
  wi.present = f.wni.answers.front();
  ExpectSameAtAllThreadCounts<std::vector<explain::Explanation>>(
      [&] {
        onto::BoundOntology bound(f.ontology.get(), f.instance.get());
        auto r = explain::AllMostGeneralWhyExplanations(&bound, wi, 2000000);
        EXPECT_TRUE(r.ok());
        return r.ok() ? r.value() : std::vector<explain::Explanation>{};
      },
      "AllMostGeneralWhyExplanations");
}

struct DerivedFixture {
  rel::Schema schema;
  std::unique_ptr<rel::Instance> instance;
  explain::WhyNotInstance wni;
  explain::WhyInstance wi;
};

DerivedFixture MakeDerivedFixture(uint64_t seed) {
  DerivedFixture f;
  auto schema = workload::RandomSchema(3, {2, 2, 1});
  EXPECT_TRUE(schema.ok());
  f.schema = std::move(schema).value();
  auto instance = workload::RandomInstance(&f.schema, /*rows_per_relation=*/14,
                                           /*domain=*/8, seed);
  EXPECT_TRUE(instance.ok());
  f.instance = std::make_unique<rel::Instance>(std::move(instance).value());

  Rng rng(seed ^ 0x77ull);
  const std::vector<Value>& adom = f.instance->ActiveDomain();
  f.wni.instance = f.instance.get();
  f.wni.missing = {adom[rng.Below(adom.size())], adom[rng.Below(adom.size())]};
  for (int a = 0; a < 10; ++a) {
    Tuple t = {adom[rng.Below(adom.size())], adom[rng.Below(adom.size())]};
    if (t != f.wni.missing) f.wni.answers.push_back(std::move(t));
  }
  SortUnique(&f.wni.answers);

  f.wi.instance = f.instance.get();
  f.wi.answers = f.wni.answers;
  f.wi.present = f.wni.answers.front();
  return f;
}

TEST_P(ParallelDeterminismTest, DerivedSearches) {
  DerivedFixture f = MakeDerivedFixture(GetParam());
  // EnumerateAllMges: outputs *and* stats (node accounting, delays) must
  // replay identically through the wave-parallel frontier.
  ExpectSameAtAllThreadCounts<std::string>(
      [&] {
        explain::EnumerateStats stats;
        auto r = explain::EnumerateAllMges(f.wni, {}, &stats);
        EXPECT_TRUE(r.ok());
        std::string s;
        if (r.ok()) {
          for (const explain::LsExplanation& e : r.value()) {
            for (const ls::LsConcept& c : e) s += c.ToString() + "|";
            s += ";";
          }
        }
        s += "#" + std::to_string(stats.nodes_expanded) + "/" +
             std::to_string(stats.duplicate_outputs) + "/" +
             std::to_string(stats.visited_hits) + "/" +
             std::to_string(stats.max_delay);
        return s;
      },
      "EnumerateAllMges");

  // CheckMgeDerived over the enumeration's outputs (all true) and some
  // deliberately non-maximal candidates (nominal-pinned tuples).
  par::SetNumThreads(1);
  std::vector<explain::LsExplanation> candidates;
  {
    auto r = explain::EnumerateAllMges(f.wni, {});
    ASSERT_TRUE(r.ok());
    candidates = r.value();
  }
  candidates.push_back(explain::LsExplanation{
      ls::LsConcept::Nominal(f.wni.missing[0]),
      ls::LsConcept::Nominal(f.wni.missing[1])});
  ExpectSameAtAllThreadCounts<std::vector<int>>(
      [&] {
        std::vector<int> verdicts;
        ls::LubContext ctx(f.instance.get());
        for (const explain::LsExplanation& e : candidates) {
          auto r = explain::CheckMgeDerived(f.wni, e, false, &ctx);
          EXPECT_TRUE(r.ok());
          verdicts.push_back(r.ok() && r.value() ? 1 : 0);
        }
        return verdicts;
      },
      "CheckMgeDerived");

  // Why duals: incremental search stays serial, the MGE check fans out.
  ExpectSameAtAllThreadCounts<std::string>(
      [&] {
        auto r = explain::IncrementalWhySearch(f.wi, false);
        EXPECT_TRUE(r.ok());
        std::string s;
        if (r.ok()) {
          for (const ls::LsConcept& c : r.value()) s += c.ToString() + "|";
        }
        return s;
      },
      "IncrementalWhySearch");
  std::vector<explain::LsExplanation> why_candidates;
  {
    par::SetNumThreads(1);
    auto mge = explain::IncrementalWhySearch(f.wi, false);
    ASSERT_TRUE(mge.ok());
    why_candidates.push_back(mge.value());
  }
  why_candidates.push_back(explain::LsExplanation{
      ls::LsConcept::Nominal(f.wi.present[0]),
      ls::LsConcept::Nominal(f.wi.present[1])});
  ExpectSameAtAllThreadCounts<std::vector<int>>(
      [&] {
        std::vector<int> verdicts;
        ls::LubContext ctx(f.instance.get());
        for (const explain::LsExplanation& e : why_candidates) {
          auto r = explain::CheckWhyMgeDerived(f.wi, e, false, &ctx);
          EXPECT_TRUE(r.ok());
          verdicts.push_back(r.ok() && r.value() ? 1 : 0);
        }
        return verdicts;
      },
      "CheckWhyMgeDerived");
}

TEST_P(ParallelDeterminismTest, MaterializeAndClosure) {
  DerivedFixture f = MakeDerivedFixture(GetParam() ^ 0xabcdull);
  // Materialized OI[K]: concept list, extensions, and the subsumption
  // matrix exercise the parallel dedup rounds, the sharded instance-mode
  // matrix build, and the row-parallel Warshall closure.
  ExpectSameAtAllThreadCounts<std::vector<std::string>>(
      [&] {
        ls::MaterializeOptions options;
        options.fragment = ls::Fragment::kSelectionFree;
        options.max_concepts = 4000;
        auto r = ls::LsOntology::Materialize(f.instance.get(), {}, options);
        EXPECT_TRUE(r.ok());
        std::vector<std::string> out;
        if (!r.ok()) return out;
        const ls::LsOntology& onto = *r.value();
        for (onto::ConceptId c = 0; c < onto.NumConcepts(); ++c) {
          std::string row = onto.ConceptName(c) + "=";
          for (onto::ConceptId d = 0; d < onto.NumConcepts(); ++d) {
            row += onto.Subsumes(c, d) ? '1' : '0';
          }
          out.push_back(std::move(row));
        }
        return out;
      },
      "LsOntology::Materialize");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismTest,
                         ::testing::Values(11ull, 137ull, 9001ull));

}  // namespace
}  // namespace whynot
