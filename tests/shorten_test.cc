#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using ls::LsConcept;

class ShortenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
  }

  LsConcept Parse(const std::string& text) {
    auto c = ls::ParseConcept(text, schema_);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    return c.ok() ? c.value() : LsConcept::Top();
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
};

TEST_F(ShortenTest, DropsRedundantConjuncts) {
  // π_name(σ_continent=Europe) ⊓ π_name(Cities): the second conjunct is
  // redundant on I.
  LsConcept c = Parse(
      "pi[name](sigma[continent = Europe](Cities)) & pi[name](Cities)");
  LsConcept shortened = explain::MakeIrredundant(c, *instance_);
  EXPECT_EQ(shortened.conjuncts().size(), 1u);
  EXPECT_TRUE(ls::EquivalentI(c, shortened, *instance_));
}

TEST_F(ShortenTest, KeepsNecessaryConjuncts) {
  // Europe-cities ∩ population>1M = {Berlin, Rome}: both conjuncts needed.
  LsConcept c = Parse(
      "pi[name](sigma[continent = Europe](Cities)) & "
      "pi[name](sigma[population > 1000000](Cities))");
  LsConcept shortened = explain::MakeIrredundant(c, *instance_);
  EXPECT_EQ(shortened.conjuncts().size(), 2u);
  EXPECT_TRUE(ls::EquivalentI(c, shortened, *instance_));
}

TEST_F(ShortenTest, IrredundancyProperty) {
  // After shortening, removing any single conjunct changes the extension.
  std::vector<LsConcept> inputs = {
      Parse("pi[name](Cities) & pi[city_from](Train-Connections) & "
            "pi[city_to](Train-Connections)"),
      Parse("{Amsterdam} & pi[name](Cities)"),
      Parse("pi[name](sigma[population > 1000000](Cities)) & "
            "pi[name](sigma[population > 2000000](Cities))"),
  };
  for (const LsConcept& input : inputs) {
    LsConcept shortened = explain::MakeIrredundant(input, *instance_);
    EXPECT_TRUE(ls::EquivalentI(input, shortened, *instance_));
    ls::Extension target = ls::Eval(shortened, *instance_);
    for (size_t i = 0; i < shortened.conjuncts().size(); ++i) {
      std::vector<ls::Conjunct> without = shortened.conjuncts();
      without.erase(without.begin() + static_cast<long>(i));
      EXPECT_FALSE(ls::Eval(LsConcept(without), *instance_) == target)
          << "conjunct " << i << " of "
          << shortened.ToString(&schema_) << " is removable";
    }
  }
}

TEST_F(ShortenTest, ExplanationWideningPreservesEachPosition) {
  auto wni_or = explain::MakeWhyNotInstance(instance_.get(),
                                            workload::ConnectedViaQuery(),
                                            {"Amsterdam", "New York"});
  ASSERT_TRUE(wni_or.ok());
  explain::IncrementalOptions options;
  ASSERT_OK_AND_ASSIGN(explain::LsExplanation e,
                       explain::IncrementalSearch(wni_or.value(), options));
  explain::LsExplanation shortened =
      explain::MakeIrredundant(e, *instance_);
  ASSERT_EQ(shortened.size(), e.size());
  for (size_t i = 0; i < e.size(); ++i) {
    EXPECT_TRUE(ls::EquivalentI(e[i], shortened[i], *instance_));
    EXPECT_LE(shortened[i].Length(), e[i].Length());
  }
  EXPECT_TRUE(explain::IsLsExplanation(wni_or.value(), shortened));
}

TEST_F(ShortenTest, MinimizeFindsShorterEquivalent) {
  // Proposition 6.3's irredundant-but-not-minimized example: C2 ⊓ C3 can be
  // irredundant while a single equivalent concept C1 is shorter. Here:
  // Europe-cities ∩ >1M = {Berlin, Rome} has the shorter equivalent
  // "population in [2753000, 3502000]" — a single canonical box — but in
  // *selection-free* LS no shorter equivalent exists, so MinimizeEquivalent
  // with selections must win over the irredundant form.
  LsConcept c = Parse(
      "pi[name](sigma[continent = Europe](Cities)) & "
      "pi[name](sigma[population > 1000000](Cities))");
  explain::MinimizeOptions options;
  options.with_selections = true;
  ASSERT_OK_AND_ASSIGN(LsConcept minimized,
                       explain::MinimizeEquivalent(c, *instance_, options));
  EXPECT_TRUE(ls::EquivalentI(c, minimized, *instance_));
  EXPECT_LE(minimized.Length(), explain::MakeIrredundant(c, *instance_)
                                    .Length());
}

TEST_F(ShortenTest, MinimizeNominalStaysNominal) {
  LsConcept c = Parse("{Amsterdam} & pi[name](Cities)");
  ASSERT_OK_AND_ASSIGN(LsConcept minimized,
                       explain::MinimizeEquivalent(c, *instance_));
  EXPECT_TRUE(ls::EquivalentI(c, minimized, *instance_));
  EXPECT_EQ(minimized.Length(), 1u);  // the nominal alone
}

TEST_F(ShortenTest, MinimizeTopIsTop) {
  ASSERT_OK_AND_ASSIGN(LsConcept minimized,
                       explain::MinimizeEquivalent(LsConcept::Top(),
                                                   *instance_));
  EXPECT_TRUE(minimized.IsTop());
}

}  // namespace
}  // namespace whynot
