// Property tests for the columnar interned instance store (PR 2): the
// id-space CQ evaluator, the id-space constraint checks, and the interning
// machinery must agree exactly with a boxed-tuple reference implementation
// on random instances, and the pool's order index must preserve the Value
// total order across int / double / string.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "test_util.h"

namespace whynot {
namespace {

using rel::CmpOp;
using rel::ConjunctiveQuery;
using testutil::A;
using testutil::C;
using testutil::V;
using workload::Rng;

// --- Boxed-tuple reference implementations. --------------------------------

/// Naive nested-loop CQ evaluation over the Tuple compatibility view —
/// the pre-columnar semantics the id-space join must reproduce bit for bit.
class ReferenceEvaluator {
 public:
  ReferenceEvaluator(const ConjunctiveQuery& query,
                     const rel::Instance& instance)
      : query_(query), instance_(instance) {}

  std::vector<Tuple> Evaluate() {
    out_.clear();
    Descend(0);
    std::sort(out_.begin(), out_.end());
    out_.erase(std::unique(out_.begin(), out_.end()), out_.end());
    return out_;
  }

 private:
  void Descend(size_t atom_idx) {
    if (atom_idx == query_.atoms.size()) {
      for (const rel::Comparison& cmp : query_.comparisons) {
        if (!rel::EvalCmp(binding_.at(cmp.var), cmp.op, cmp.constant)) return;
      }
      Tuple head;
      for (const std::string& v : query_.head) head.push_back(binding_.at(v));
      out_.push_back(std::move(head));
      return;
    }
    const rel::Atom& atom = query_.atoms[atom_idx];
    for (const Tuple& tuple : instance_.Relation(atom.relation)) {
      std::vector<std::string> bound_here;
      bool match = true;
      for (size_t i = 0; i < atom.args.size() && match; ++i) {
        const rel::Term& term = atom.args[i];
        if (!term.is_var()) {
          match = term.constant() == tuple[i];
        } else if (binding_.count(term.var()) > 0) {
          match = binding_.at(term.var()) == tuple[i];
        } else {
          binding_.emplace(term.var(), tuple[i]);
          bound_here.push_back(term.var());
        }
      }
      if (match) Descend(atom_idx + 1);
      for (const std::string& v : bound_here) binding_.erase(v);
    }
  }

  const ConjunctiveQuery& query_;
  const rel::Instance& instance_;
  std::map<std::string, Value> binding_;
  std::vector<Tuple> out_;
};

bool ReferenceSatisfiesFd(const rel::Instance& instance,
                          const rel::FunctionalDependency& fd) {
  std::map<Tuple, Tuple> seen;
  for (const Tuple& t : instance.Relation(fd.relation)) {
    Tuple key, val;
    for (int a : fd.lhs) key.push_back(t[static_cast<size_t>(a)]);
    for (int a : fd.rhs) val.push_back(t[static_cast<size_t>(a)]);
    auto [it, inserted] = seen.emplace(std::move(key), val);
    if (!inserted && it->second != val) return false;
  }
  return true;
}

bool ReferenceSatisfiesId(const rel::Instance& instance,
                          const rel::InclusionDependency& id) {
  std::set<Tuple> rhs;
  for (const Tuple& t : instance.Relation(id.rhs_relation)) {
    Tuple key;
    for (int a : id.rhs_attrs) key.push_back(t[static_cast<size_t>(a)]);
    rhs.insert(std::move(key));
  }
  for (const Tuple& t : instance.Relation(id.lhs_relation)) {
    Tuple key;
    for (int a : id.lhs_attrs) key.push_back(t[static_cast<size_t>(a)]);
    if (rhs.count(key) == 0) return false;
  }
  return true;
}

// --- Random data with all three value kinds. -------------------------------

Value RandomValue(Rng* rng, int domain) {
  uint64_t k = rng->Below(static_cast<uint64_t>(domain));
  switch (rng->Below(4)) {
    case 0:
      return Value(static_cast<int64_t>(k));
    case 1:
      return Value(static_cast<double>(k) + 0.5);
    case 2:
      return Value("s" + std::to_string(k));
    default:  // int/double aliasing: 2 and 2.0 must intern identically
      return Value(static_cast<double>(k));
  }
}

rel::Schema TwoRelationSchema() {
  rel::Schema schema;
  EXPECT_TRUE(schema.AddRelation("R", {"a", "b"}).ok());
  EXPECT_TRUE(schema.AddRelation("S", {"a", "b", "c"}).ok());
  return schema;
}

rel::Instance RandomMixedInstance(const rel::Schema* schema, Rng* rng,
                                  int rows, int domain) {
  rel::Instance instance(schema);
  for (const rel::RelationDef& def : schema->relations()) {
    for (int i = 0; i < rows; ++i) {
      Tuple t;
      for (size_t a = 0; a < def.arity(); ++a) {
        t.push_back(RandomValue(rng, domain));
      }
      EXPECT_TRUE(instance.AddFact(def.name(), std::move(t)).ok());
    }
  }
  return instance;
}

ConjunctiveQuery RandomQuery(Rng* rng, int domain) {
  // 1-3 atoms over {R/2, S/3}, variables drawn from a pool of 4 so joins
  // and repeated variables occur, plus occasional constants/comparisons.
  const std::vector<std::string> vars = {"x", "y", "z", "w"};
  ConjunctiveQuery q;
  size_t num_atoms = 1 + rng->Below(3);
  std::vector<std::string> used;
  for (size_t i = 0; i < num_atoms; ++i) {
    bool ternary = rng->Chance(1, 3);
    rel::Atom atom;
    atom.relation = ternary ? "S" : "R";
    size_t arity = ternary ? 3 : 2;
    for (size_t a = 0; a < arity; ++a) {
      if (rng->Chance(1, 6)) {
        atom.args.push_back(C(RandomValue(rng, domain)));
      } else {
        const std::string& v = vars[rng->Below(vars.size())];
        atom.args.push_back(V(v));
        used.push_back(v);
      }
    }
    q.atoms.push_back(std::move(atom));
  }
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  if (used.empty()) return q;  // Boolean query over constants only
  for (const std::string& v : used) {
    if (rng->Chance(1, 2)) q.head.push_back(v);
  }
  if (rng->Chance(1, 2)) {
    static const CmpOp kOps[] = {CmpOp::kEq, CmpOp::kLt, CmpOp::kGt,
                                 CmpOp::kLe, CmpOp::kGe};
    q.comparisons.push_back({used[rng->Below(used.size())],
                             kOps[rng->Below(5)], RandomValue(rng, domain)});
  }
  return q;
}

// --- Id-space evaluation vs boxed reference. -------------------------------

class ColumnarAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnarAgreementTest, EvaluateMatchesReferenceEvaluator) {
  Rng rng(GetParam());
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance =
      RandomMixedInstance(&schema, &rng, /*rows=*/20, /*domain=*/8);
  for (int qi = 0; qi < 25; ++qi) {
    ConjunctiveQuery q = RandomQuery(&rng, 8);
    if (!q.Validate(schema).ok()) continue;
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> got, Evaluate(q, instance));
    std::vector<Tuple> want = ReferenceEvaluator(q, instance).Evaluate();
    EXPECT_EQ(got, want) << "seed " << GetParam() << " query " << q.ToString();
  }
}

TEST_P(ColumnarAgreementTest, HasMatchAgreesWithEvaluate) {
  Rng rng(GetParam() ^ 0xabcdefull);
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance =
      RandomMixedInstance(&schema, &rng, /*rows=*/15, /*domain=*/6);
  for (int qi = 0; qi < 25; ++qi) {
    ConjunctiveQuery q = RandomQuery(&rng, 6);
    if (!q.Validate(schema).ok()) continue;
    ASSERT_OK_AND_ASSIGN(bool match, HasMatch(q, instance));
    std::vector<Tuple> want = ReferenceEvaluator(q, instance).Evaluate();
    EXPECT_EQ(match, !want.empty())
        << "seed " << GetParam() << " query " << q.ToString();
  }
}

TEST_P(ColumnarAgreementTest, EvaluateIdsRoundTripsThroughPool) {
  Rng rng(GetParam() ^ 0x5eedull);
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance =
      RandomMixedInstance(&schema, &rng, /*rows=*/12, /*domain=*/5);
  for (int qi = 0; qi < 10; ++qi) {
    ConjunctiveQuery q = RandomQuery(&rng, 5);
    if (!q.Validate(schema).ok() || q.head.empty()) continue;
    ASSERT_OK_AND_ASSIGN(std::vector<std::vector<ValueId>> id_rows,
                         EvaluateIds(q, instance));
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tuples, Evaluate(q, instance));
    ASSERT_EQ(id_rows.size(), tuples.size());
    for (size_t i = 0; i < id_rows.size(); ++i) {
      for (size_t j = 0; j < id_rows[i].size(); ++j) {
        EXPECT_EQ(instance.pool().Get(id_rows[i][j]), tuples[i][j]);
      }
    }
  }
}

TEST_P(ColumnarAgreementTest, ConstraintChecksMatchReference) {
  Rng rng(GetParam() ^ 0xc0ffeeull);
  rel::Schema schema = TwoRelationSchema();
  // Small domain: FD/ID violations actually occur.
  for (int round = 0; round < 8; ++round) {
    rel::Instance instance =
        RandomMixedInstance(&schema, &rng, /*rows=*/8, /*domain=*/3);
    rel::FunctionalDependency fd{"R", {0}, {1}};
    rel::InclusionDependency unary{"R", {0}, "S", {1}};
    rel::InclusionDependency binary{"R", {0, 1}, "S", {0, 2}};
    EXPECT_EQ(SatisfiesFd(instance, fd, nullptr),
              ReferenceSatisfiesFd(instance, fd));
    EXPECT_EQ(SatisfiesId(instance, unary, nullptr),
              ReferenceSatisfiesId(instance, unary));
    EXPECT_EQ(SatisfiesId(instance, binary, nullptr),
              ReferenceSatisfiesId(instance, binary));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ColumnarAgreementTest,
                         ::testing::Range<uint64_t>(1, 16));

// --- Interning round-trips and the order-preserving index. ------------------

TEST(ValuePoolOrderTest, RankPreservesValueOrderAcrossKinds) {
  ValuePool pool;
  std::vector<Value> values = {Value(3),       Value("b"),  Value(1.5),
                               Value(-7),      Value("a"),  Value(2),
                               Value(1000000), Value(""),   Value(0.25),
                               Value("aa")};
  std::vector<ValueId> ids;
  for (const Value& v : values) ids.push_back(pool.Intern(v));

  // Rank comparisons must match Value comparisons pairwise.
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(pool.Rank(ids[i]) < pool.Rank(ids[j]),
                values[i] < values[j]);
    }
  }

  // SortedIds renders exactly std::sort of the values.
  std::vector<Value> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::vector<ValueId>& by_order = pool.SortedIds();
  ASSERT_EQ(by_order.size(), values.size());
  for (size_t i = 0; i < by_order.size(); ++i) {
    EXPECT_EQ(pool.Get(by_order[i]), sorted[i]);
  }
}

TEST(ValuePoolOrderTest, NumericAliasesInternToOneId) {
  ValuePool pool;
  ValueId as_int = pool.Intern(Value(2));
  ValueId as_double = pool.Intern(Value(2.0));
  EXPECT_EQ(as_int, as_double);
  EXPECT_EQ(pool.size(), 1);
}

TEST(ValuePoolOrderTest, BoundRanksResolveComparisons) {
  ValuePool pool;
  for (int i = 0; i < 10; i += 2) pool.Intern(Value(i));  // 0 2 4 6 8
  // Interior, present, and out-of-range probes.
  EXPECT_EQ(pool.LowerBoundRank(Value(4)), 2);
  EXPECT_EQ(pool.UpperBoundRank(Value(4)), 3);
  EXPECT_EQ(pool.LowerBoundRank(Value(5)), 3);
  EXPECT_EQ(pool.UpperBoundRank(Value(5)), 3);
  EXPECT_EQ(pool.LowerBoundRank(Value(-1)), 0);
  EXPECT_EQ(pool.UpperBoundRank(Value(100)), 5);
  EXPECT_EQ(pool.LowerBoundRank(Value("zzz")), 5);  // strings after numbers

  // The order index survives further interning (lazy rebuild).
  pool.Intern(Value(3));
  EXPECT_EQ(pool.LowerBoundRank(Value(4)), 3);
}

TEST(ColumnarInstanceTest, ActiveDomainIsIncrementalAndExact) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("R", {Value("b"), Value(3)}));
  ASSERT_OK(instance.AddFact("U", {Value("a")}));

  std::vector<Value> adom = instance.ActiveDomain();
  EXPECT_EQ(adom, (std::vector<Value>{Value(3), Value("a"), Value("b")}));

  // Ids mirror the values, ascending in Value order.
  const std::vector<ValueId>& ids = instance.ActiveDomainIds();
  ASSERT_EQ(ids.size(), adom.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(instance.pool().Get(ids[i]), adom[i]);
  }

  // Duplicate occurrences don't change the domain; clearing a relation
  // removes exactly the values that no longer occur anywhere.
  ASSERT_OK(instance.AddFact("U", {Value("b")}));
  EXPECT_EQ(instance.ActiveDomain().size(), 3u);
  instance.ClearRelation("R");
  EXPECT_EQ(instance.ActiveDomain(),
            (std::vector<Value>{Value("a"), Value("b")}));
  instance.ClearRelation("U");
  EXPECT_TRUE(instance.ActiveDomain().empty());
}

TEST(ColumnarInstanceTest, TupleViewMatchesColumns) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("R", {Value(1), Value("x")}));
  ASSERT_OK(instance.AddFact("R", {Value(2.5), Value(1)}));
  ASSERT_OK(instance.AddFact("R", {Value(1), Value("x")}));  // dup

  const std::vector<Tuple>& view = instance.Relation("R");
  ASSERT_EQ(view.size(), 2u);
  const rel::StoredRelation* rel = instance.Find("R");
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->num_rows(), 2u);
  for (size_t r = 0; r < rel->num_rows(); ++r) {
    for (size_t a = 0; a < rel->arity(); ++a) {
      EXPECT_EQ(instance.pool().Get(rel->At(r, a)), view[r][a]);
    }
  }

  // The view extends in place as rows are appended after a first read.
  ASSERT_OK(instance.AddFact("R", {Value("y"), Value("z")}));
  EXPECT_EQ(instance.Relation("R").size(), 3u);
  EXPECT_EQ(instance.Relation("R")[2], (Tuple{Value("y"), Value("z")}));
}

TEST(ColumnarInstanceTest, PostingListsAndBitmapsIndexEveryRow) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("R", {Value(1), Value(2)}));
  ASSERT_OK(instance.AddFact("R", {Value(1), Value(3)}));
  ASSERT_OK(instance.AddFact("R", {Value(2), Value(3)}));

  const rel::StoredRelation* rel = instance.Find("R");
  ASSERT_NE(rel, nullptr);
  const rel::StoredRelation::ColumnIndex& ix = rel->Index(0);
  EXPECT_EQ(ix.keys.size(), 2u);
  EXPECT_EQ(ix.rows.size(), 3u);

  ValueId one = instance.LookupId(Value(1));
  auto [begin, end] = rel->RowsEqual(0, one);
  EXPECT_EQ(end - begin, 2);
  EXPECT_TRUE(ix.distinct.Test(one));
  EXPECT_FALSE(ix.distinct.Test(instance.LookupId(Value(3))));

  // Mutation invalidates: new value appears in the rebuilt index.
  ASSERT_OK(instance.AddFact("R", {Value(9), Value(9)}));
  EXPECT_TRUE(rel->Index(0).distinct.Test(instance.LookupId(Value(9))));
}

TEST(ColumnarInstanceTest, AddFactIdsMatchesAddFact) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("U", {Value("k")}));
  ValueId k = instance.LookupId(Value("k"));
  ASSERT_GE(k, 0);
  ASSERT_OK(instance.AddFactIds("R", {k, k}));
  EXPECT_TRUE(instance.Contains("R", {Value("k"), Value("k")}));
  ASSERT_OK(instance.AddFactIds("R", {k, k}));  // dup ignored
  EXPECT_EQ(instance.Relation("R").size(), 1u);
  EXPECT_FALSE(instance.AddFactIds("R", {k}).ok());         // arity
  EXPECT_FALSE(instance.AddFactIds("R", {k, 9999}).ok());   // bad id
  EXPECT_FALSE(instance.AddFactIds("Z", {k}).ok());         // unknown
}

TEST(ColumnarInstanceTest, CopySharesNothing) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance a(&schema);
  ASSERT_OK(a.AddFact("U", {Value(1)}));
  rel::Instance b = a;
  ASSERT_OK(b.AddFact("U", {Value(2)}));
  EXPECT_EQ(a.NumFacts(), 1u);
  EXPECT_EQ(b.NumFacts(), 2u);
  EXPECT_EQ(a.ActiveDomain(), (std::vector<Value>{Value(1)}));
  EXPECT_EQ(b.ActiveDomain(), (std::vector<Value>{Value(1), Value(2)}));
}

TEST(EvalCacheTest, ProjectionCacheAgreesWithDirectEval) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("R", {Value(1), Value(2)}));
  ASSERT_OK(instance.AddFact("R", {Value(3), Value(2)}));
  ls::EvalCache cache(&instance);
  const ls::Extension& proj = cache.Projection("R", 0);
  EXPECT_EQ(proj.values(), (std::vector<Value>{Value(1), Value(3)}));
  // Selection-free projection conjuncts share the (relation, attr) entry.
  EXPECT_EQ(&cache.EvalConjunct(ls::Conjunct::Projection("R", 0)), &proj);
  // Concept-level memoization returns the identical extension object.
  ls::LsConcept c = ls::LsConcept::Projection("R", 0);
  EXPECT_EQ(&cache.Eval(c), &cache.Eval(c));
}

}  // namespace
}  // namespace whynot
