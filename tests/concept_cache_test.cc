// Cache-equivalence gate for the shared concept-evaluation cache (the
// lub+eval memo the derived searches publish into): a session serving
// repeated requests through its shared ConceptCache must produce
// bit-identical outputs, deterministic stats, and errors as the one-shot
// entry points running on per-call-local caches — at every thread count.
// The cache counters themselves are observability only (the shared/local
// hit split is thread-dependent) and are deliberately NOT compared.

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "test_util.h"
#include "whynot/common/algorithm.h"

namespace whynot {
namespace {

using workload::Rng;

constexpr int kThreadCounts[] = {1, 2, 8};

struct Fixture {
  rel::Schema schema;
  std::unique_ptr<rel::Instance> instance;
  explain::WhyNotInstance wni;
  explain::WhyInstance wi;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  auto schema = workload::RandomSchema(3, {2, 2, 1});
  EXPECT_TRUE(schema.ok());
  f.schema = std::move(schema).value();
  auto instance = workload::RandomInstance(&f.schema, /*rows_per_relation=*/14,
                                           /*domain=*/8, seed);
  EXPECT_TRUE(instance.ok());
  f.instance = std::make_unique<rel::Instance>(std::move(instance).value());

  Rng rng(seed ^ 0x5ca1eull);
  const std::vector<Value>& adom = f.instance->ActiveDomain();
  f.wni.instance = f.instance.get();
  f.wni.missing = {adom[rng.Below(adom.size())], adom[rng.Below(adom.size())]};
  for (int a = 0; a < 10; ++a) {
    Tuple t = {adom[rng.Below(adom.size())], adom[rng.Below(adom.size())]};
    if (t != f.wni.missing) f.wni.answers.push_back(std::move(t));
  }
  SortUnique(&f.wni.answers);
  f.wi.instance = f.instance.get();
  f.wi.answers = f.wni.answers;
  f.wi.present = f.wni.answers.front();
  return f;
}

std::string Serialize(const explain::LsExplanation& e) {
  std::string s;
  for (const ls::LsConcept& c : e) s += c.ToString() + "|";
  return s;
}

/// Runs the full derived request mix — enumerate (twice, for cross-request
/// reuse), incremental why-not, CHECK-MGE on the enumerated antichain,
/// incremental why, why CHECK-MGE — and serializes every output plus the
/// four deterministic EnumerateStats fields.
std::string RunRequestMix(const Fixture& f, bool with_selections,
                          bool through_session) {
  std::string out;
  auto append_stats = [&](const explain::EnumerateStats& stats) {
    out += "#" + std::to_string(stats.nodes_expanded) + "/" +
           std::to_string(stats.duplicate_outputs) + "/" +
           std::to_string(stats.visited_hits) + "/" +
           std::to_string(stats.max_delay) + ";";
  };
  std::vector<explain::LsExplanation> mges;
  if (through_session) {
    explain::ExplainSessionOptions options;
    options.incremental.with_selections = with_selections;
    options.enumerate.with_selections = with_selections;
    auto session = explain::ExplainSession::BindWithAnswers(
        f.instance.get(), f.wni.answers, nullptr, options);
    EXPECT_TRUE(session.ok());
    if (!session.ok()) return "bind failed";
    explain::ExplainSession s = std::move(session).value();
    for (int round = 0; round < 2; ++round) {
      explain::EnumerateStats stats;
      auto r = s.EnumerateMges(f.wni.missing, &stats);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (!r.ok()) return "enumerate failed";
      mges = r.value();
      for (const explain::LsExplanation& e : mges) out += Serialize(e) + ";";
      append_stats(stats);
    }
    auto incr = s.WhyNot(f.wni.missing);
    EXPECT_TRUE(incr.ok());
    if (incr.ok()) out += "I:" + Serialize(incr.value()) + ";";
    for (const explain::LsExplanation& e : mges) {
      auto chk = s.CheckMgeDerived(f.wni.missing, e);
      EXPECT_TRUE(chk.ok());
      out += chk.ok() && chk.value() ? "1" : "0";
    }
    out += ";";
    auto why = s.Why(f.wi.present);
    EXPECT_TRUE(why.ok());
    if (why.ok()) out += "W:" + Serialize(why.value()) + ";";
  } else {
    explain::EnumerateOptions eopts;
    eopts.with_selections = with_selections;
    for (int round = 0; round < 2; ++round) {
      explain::EnumerateStats stats;
      auto r = explain::EnumerateAllMges(f.wni, eopts, &stats);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (!r.ok()) return "enumerate failed";
      mges = r.value();
      for (const explain::LsExplanation& e : mges) out += Serialize(e) + ";";
      append_stats(stats);
    }
    explain::IncrementalOptions iopts;
    iopts.with_selections = with_selections;
    auto incr = explain::IncrementalSearch(f.wni, iopts);
    EXPECT_TRUE(incr.ok());
    if (incr.ok()) out += "I:" + Serialize(incr.value()) + ";";
    ls::LubContext ctx(f.instance.get());
    for (const explain::LsExplanation& e : mges) {
      auto chk = explain::CheckMgeDerived(f.wni, e, with_selections, &ctx);
      EXPECT_TRUE(chk.ok());
      out += chk.ok() && chk.value() ? "1" : "0";
    }
    out += ";";
    auto why = explain::IncrementalWhySearch(f.wi, with_selections);
    EXPECT_TRUE(why.ok());
    if (why.ok()) out += "W:" + Serialize(why.value()) + ";";
  }
  return out;
}

class ConceptCacheEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ConceptCacheEquivalenceTest, SessionSharedCacheMatchesOneShot) {
  Fixture f = MakeFixture(GetParam());
  // Both lub flavors get exercised across the seed range.
  const bool with_selections = (GetParam() % 2) == 1;
  std::optional<std::string> reference;
  for (int threads : kThreadCounts) {
    par::SetNumThreads(threads);
    for (bool through_session : {false, true}) {
      std::string got = RunRequestMix(f, with_selections, through_session);
      if (!reference.has_value()) {
        reference = got;
      } else {
        EXPECT_EQ(got, *reference)
            << (through_session ? "session" : "one-shot")
            << " diverged at WHYNOT_THREADS=" << threads;
      }
    }
  }
  par::SetNumThreads(0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConceptCacheEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 27));

// --- ConceptCache / overlay unit tests ------------------------------------

struct UnitFixture {
  rel::Schema schema;
  std::unique_ptr<rel::Instance> instance;
};

UnitFixture MakeUnitFixture() {
  UnitFixture f;
  f.schema = testutil::SimpleSchema();
  rel::Instance instance(&f.schema);
  for (int i = 0; i < 12; ++i) {
    EXPECT_OK(instance.AddFact(
        "R", {Value(i % 4), Value(i % 3)}));
    EXPECT_OK(instance.AddFact("U", {Value(i % 5)}));
  }
  f.instance = std::make_unique<rel::Instance>(std::move(instance));
  return f;
}

TEST(ConceptCacheTest, MissThenLocalHitThenPublishedHit) {
  UnitFixture f = MakeUnitFixture();
  ls::ConceptCache cache(f.instance.get());
  ls::LubContext lub(f.instance.get());
  std::vector<Value> x = {Value(1), Value(2)};

  ls::ConceptCacheOverlay a(&cache, /*with_selections=*/false, &lub);
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* first, a.LubAndEval(x));
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* again, a.LubAndEval(x));
  EXPECT_EQ(first, again);  // one address per key per overlay
  EXPECT_GT(a.pending(), 0u);
  cache.Publish(&a);
  EXPECT_EQ(a.pending(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().local_hits, 1u);
  EXPECT_GT(cache.stats().publishes, 0u);
  EXPECT_GT(cache.size(), 0u);

  // A fresh overlay sees the published entry.
  ls::ConceptCacheOverlay b(&cache, /*with_selections=*/false, &lub);
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* hit, b.LubAndEval(x));
  cache.Publish(&b);
  EXPECT_EQ(cache.stats().shared_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(hit->concept.ToString(), first->concept.ToString());
  EXPECT_EQ(hit->ext->values(), first->ext->values());
}

TEST(ConceptCacheTest, TransientProbesServeTiersWithoutRecording) {
  UnitFixture f = MakeUnitFixture();
  ls::ConceptCache cache(f.instance.get());
  ls::LubContext lub(f.instance.get());
  std::vector<Value> x = {Value(1), Value(2)};

  // Cold transient probe: computes the lub and records only the
  // concept-keyed eval tier — never a support entry.
  ls::ConceptCacheOverlay a(&cache, /*with_selections=*/false, &lub);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const ls::Extension> cold,
                       a.LubExtTransient(x));
  size_t pending_after_first = a.pending();
  EXPECT_GT(pending_after_first, 0u);  // the eval-tier record
  // Repeating the probe recomputes the lub but lands on the same memoized
  // extension object — address-stable for the overlay's lifetime, which
  // the cover-bitmap identity keying requires.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const ls::Extension> again,
                       a.LubExtTransient(x));
  EXPECT_EQ(cold.get(), again.get());
  EXPECT_EQ(a.pending(), pending_after_first);  // nothing new recorded
  cache.Publish(&a);
  EXPECT_EQ(cache.FindSupport(false, x), nullptr);  // no support entry
  EXPECT_EQ(cache.stats().misses, 2u);

  // A full LubAndEval of the same key shares the published evaluation
  // (same extension object), and once it publishes the support entry a
  // fresh overlay's transient probe serves it from the published tier.
  ls::ConceptCacheOverlay b(&cache, /*with_selections=*/false, &lub);
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* entry, b.LubAndEval(x));
  EXPECT_EQ(entry->ext.get(), cold.get());
  cache.Publish(&b);
  ls::ConceptCacheOverlay c(&cache, /*with_selections=*/false, &lub);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const ls::Extension> warm,
                       c.LubExtTransient(x));
  EXPECT_EQ(warm.get(), entry->ext.get());
  cache.Publish(&c);
  EXPECT_GT(cache.stats().shared_hits, 0u);
}

TEST(ConceptCacheTest, PromoteLastProbeMatchesLubAndEval) {
  UnitFixture f = MakeUnitFixture();
  ls::ConceptCache cache(f.instance.get());
  ls::LubContext lub(f.instance.get());
  std::vector<Value> x = {Value(1), Value(2)};

  // Promoting a cold probe records the support entry without recomputing:
  // the entry's extension is the very object the probe returned, and its
  // concept equals what an independent LubAndEval derives.
  ls::ConceptCacheOverlay a(&cache, /*with_selections=*/false, &lub);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const ls::Extension> probed,
                       a.LubExtTransient(x));
  const ls::ConceptCache::Entry* promoted = a.PromoteLastProbe();
  ASSERT_NE(promoted, nullptr);
  EXPECT_EQ(promoted->ext.get(), probed.get());
  cache.Publish(&a);
  const ls::ConceptCache::Entry* published = cache.FindSupport(false, x);
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published, promoted);

  ls::LubContext lub_b(f.instance.get());
  ls::ConceptCacheOverlay b(&cache, /*with_selections=*/false, &lub_b);
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* independent,
                       b.LubAndEval(x));
  EXPECT_EQ(independent, promoted);  // served from the published tier
  EXPECT_EQ(independent->concept, promoted->concept);

  // Promoting a probe served from the published tier memoizes that entry
  // locally (same address — identity keying unaffected) and records no
  // duplicate publish.
  ls::LubContext lub_c(f.instance.get());
  ls::ConceptCacheOverlay c(&cache, /*with_selections=*/false, &lub_c);
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const ls::Extension> warm,
                       c.LubExtTransient(x));
  EXPECT_EQ(warm.get(), promoted->ext.get());
  EXPECT_EQ(c.PromoteLastProbe(), promoted);
  EXPECT_EQ(c.pending(), 0u);

  // Promoting a probe that hit the local support map is a no-op returning
  // the same entry.
  ASSERT_OK_AND_ASSIGN(std::shared_ptr<const ls::Extension> local_hit,
                       c.LubExtTransient(x));
  EXPECT_EQ(local_hit.get(), promoted->ext.get());
  EXPECT_EQ(c.PromoteLastProbe(), promoted);
  cache.Publish(&b);
  cache.Publish(&c);
}

TEST(ConceptCacheTest, FirstPublishWins) {
  UnitFixture f = MakeUnitFixture();
  ls::ConceptCache cache(f.instance.get());
  ls::LubContext lub_a(f.instance.get());
  ls::LubContext lub_b(f.instance.get());
  std::vector<Value> x = {Value(0), Value(3)};

  // Two overlays miss on the same key during one "wave"; the first one
  // published in slot order wins, the second is dropped (not an eviction —
  // the key is already present).
  ls::ConceptCacheOverlay a(&cache, false, &lub_a);
  ls::ConceptCacheOverlay b(&cache, false, &lub_b);
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* ea, a.LubAndEval(x));
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* eb, b.LubAndEval(x));
  EXPECT_NE(ea, eb);
  EXPECT_EQ(cache.stats().misses, 0u);  // folded only at publish
  cache.Publish(&a);
  cache.Publish(&b);
  EXPECT_EQ(cache.stats().misses, 2u);
  const ls::ConceptCache::Entry* published = cache.FindSupport(false, x);
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published, ea);  // a's entry, published first, is canonical
  // b's pointer remains valid and value-identical for b's lifetime.
  EXPECT_EQ(eb->ext->values(), ea->ext->values());
}

TEST(ConceptCacheTest, SelectionFlavorsAreDistinctTiers) {
  UnitFixture f = MakeUnitFixture();
  ls::ConceptCache cache(f.instance.get());
  ls::LubContext lub(f.instance.get());
  std::vector<Value> x = {Value(1), Value(2)};

  ls::ConceptCacheOverlay free_overlay(&cache, false, &lub);
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* e_free,
                       free_overlay.LubAndEval(x));
  cache.Publish(&free_overlay);
  // The with-selections tier must not serve the selection-free entry.
  EXPECT_EQ(cache.FindSupport(true, x), nullptr);
  EXPECT_EQ(cache.FindSupport(false, x), e_free);
}

TEST(ConceptCacheTest, CapacityRejectionCountsEvictions) {
  UnitFixture f = MakeUnitFixture();
  ls::ConceptCacheOptions options;
  options.max_bytes = 1;  // everything rejected (call-local covers only)
  ls::ConceptCache cache(f.instance.get(), options);
  ls::LubContext lub(f.instance.get());
  ls::ConceptCacheOverlay a(&cache, false, &lub);
  std::vector<Value> x = {Value(0), Value(1)};
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* entry, a.LubAndEval(x));
  cache.Publish(&a);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.FindSupport(false, x), nullptr);
  // The rejected entry stays owned (and served) by the overlay.
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* again, a.LubAndEval(x));
  EXPECT_EQ(entry, again);
}

TEST(ConceptCacheTest, ClearDropsEntriesKeepsCounters) {
  UnitFixture f = MakeUnitFixture();
  ls::ConceptCache cache(f.instance.get());
  ls::LubContext lub(f.instance.get());
  ls::ConceptCacheOverlay a(&cache, false, &lub);
  std::vector<Value> x = {Value(2), Value(3)};
  ASSERT_OK_AND_ASSIGN(const ls::ConceptCache::Entry* entry, a.LubAndEval(x));
  (void)entry;
  cache.Publish(&a);
  size_t published = cache.size();
  EXPECT_GT(published, 0u);
  EXPECT_GT(cache.MemoryBytes(), 0u);
  size_t misses_before = cache.stats().misses;
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, misses_before);
  EXPECT_GE(cache.stats().evictions, published);
  EXPECT_EQ(cache.FindSupport(false, x), nullptr);
}

TEST(ConceptCacheTest, MemoryBytesGrowsWithPublishedEntries) {
  UnitFixture f = MakeUnitFixture();
  ls::ConceptCache cache(f.instance.get());
  ls::LubContext lub(f.instance.get());
  size_t empty_bytes = cache.MemoryBytes();
  ls::ConceptCacheOverlay a(&cache, false, &lub);
  for (int v = 0; v < 4; ++v) {
    std::vector<Value> x = {Value(v), Value((v + 1) % 4)};
    ASSERT_TRUE(a.LubAndEval(x).ok());
  }
  cache.Publish(&a);
  EXPECT_GT(cache.MemoryBytes(), empty_bytes);
}

TEST(ConceptCacheTest, SessionAccumulatesSharedHitsAcrossRequests) {
  Fixture f = MakeFixture(4242);
  ASSERT_OK_AND_ASSIGN(explain::ExplainSession session,
                       explain::ExplainSession::BindWithAnswers(
                           f.instance.get(), f.wni.answers));
  ASSERT_TRUE(session.EnumerateMges(f.wni.missing).ok());
  ls::ConceptCacheStats first = session.CacheStats();
  EXPECT_GT(first.publishes, 0u);
  // The repeat request replays the same support sets against the
  // published tier: every lub the first request computed is now a hit.
  ASSERT_TRUE(session.EnumerateMges(f.wni.missing).ok());
  ls::ConceptCacheStats second = session.CacheStats();
  EXPECT_GT(second.shared_hits, first.shared_hits);
  EXPECT_EQ(second.misses, first.misses);  // nothing recomputed
  EXPECT_GT(session.MemoryUsage().shared_cache_bytes, 0u);
}

TEST(ConceptCacheTest, SharedHitsAtEightThreads) {
  Fixture f = MakeFixture(1337);
  par::SetNumThreads(8);
  ASSERT_OK_AND_ASSIGN(explain::ExplainSession session,
                       explain::ExplainSession::BindWithAnswers(
                           f.instance.get(), f.wni.answers));
  ASSERT_TRUE(session.EnumerateMges(f.wni.missing).ok());
  ASSERT_TRUE(session.EnumerateMges(f.wni.missing).ok());
  ls::ConceptCacheStats stats = session.CacheStats();
  EXPECT_GT(stats.shared_hits, 0u);
  par::SetNumThreads(0);
}

TEST(ConceptCacheTest, EnumerateStatsReportCacheTraffic) {
  Fixture f = MakeFixture(99);
  par::SetNumThreads(1);
  explain::EnumerateStats stats;
  ASSERT_TRUE(explain::EnumerateAllMges(f.wni, {}, &stats).ok());
  // A run-local cache still counts misses/publishes; with one overlay and
  // one wave structure every repeated support set is a local or shared hit.
  EXPECT_GT(stats.cache_misses, 0u);
  EXPECT_GT(stats.cache_publishes, 0u);
  par::SetNumThreads(0);
}

TEST(ConceptCacheTest, RewarmClearsEntriesButKeepsCounters) {
  Fixture f = MakeFixture(7);
  ASSERT_OK_AND_ASSIGN(explain::ExplainSession session,
                       explain::ExplainSession::BindWithAnswers(
                           f.instance.get(), f.wni.answers));
  ASSERT_TRUE(session.EnumerateMges(f.wni.missing).ok());
  ls::ConceptCacheStats before = session.CacheStats();
  EXPECT_GT(before.publishes, 0u);
  // Mutate the instance: the next request rebuilds the warm state and the
  // cache must not serve extensions of the stale contents.
  const std::vector<Value>& adom = f.instance->ActiveDomain();
  ASSERT_OK(f.instance->AddFact("R0", {adom[0], adom[1]}));
  auto r = session.EnumerateMges(f.wni.missing);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ls::ConceptCacheStats after = session.CacheStats();
  EXPECT_GE(after.evictions, before.publishes);  // rewarm dropped them
  EXPECT_GE(after.misses, before.misses);
}

}  // namespace
}  // namespace whynot
