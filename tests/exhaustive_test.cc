#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using explain::Explanation;

class ExhaustiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
    auto ontology = workload::CitiesOntology();
    ASSERT_TRUE(ontology.ok());
    ontology_ = std::move(ontology).value();
    bound_ = std::make_unique<onto::BoundOntology>(ontology_.get(),
                                                   instance_.get());
    auto wni = explain::MakeWhyNotInstance(instance_.get(),
                                           workload::ConnectedViaQuery(),
                                           {"Amsterdam", "New York"});
    ASSERT_TRUE(wni.ok()) << wni.status().ToString();
    wni_ = std::make_unique<explain::WhyNotInstance>(std::move(wni).value());
  }

  std::string Name(const Explanation& e) {
    return explain::ExplanationToString(*bound_, e);
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<onto::ExplicitOntology> ontology_;
  std::unique_ptr<onto::BoundOntology> bound_;
  std::unique_ptr<explain::WhyNotInstance> wni_;
};

TEST_F(ExhaustiveTest, Example34MostGeneralExplanations) {
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> mges,
                       explain::ExhaustiveSearchAllMge(bound_.get(), *wni_));
  // The paper's E4 = (European-City, US-City) must be among the MGEs; the
  // data additionally admits (City, East-Coast-City) — no answer tuple ends
  // in New York — which Definition 3.3 also makes maximal.
  std::set<std::string> names;
  for (const Explanation& e : mges) names.insert(Name(e));
  EXPECT_TRUE(names.count("(European-City, US-City)") > 0)
      << "MGEs: " << Join(std::vector<std::string>(names.begin(),
                                                   names.end()),
                          " | ");
  EXPECT_TRUE(names.count("(City, East-Coast-City)") > 0);
  EXPECT_EQ(mges.size(), 2u);
}

TEST_F(ExhaustiveTest, PaperExplanationChainE1ToE4) {
  // E1-E4 of Example 3.4 are all explanations, with E4 the most general.
  auto id = [&](const char* name) { return ontology_->FindConcept(name); };
  Explanation e1 = {id("Dutch-City"), id("East-Coast-City")};
  Explanation e2 = {id("Dutch-City"), id("US-City")};
  Explanation e3 = {id("European-City"), id("East-Coast-City")};
  Explanation e4 = {id("European-City"), id("US-City")};
  for (const Explanation& e : {e1, e2, e3, e4}) {
    ASSERT_OK_AND_ASSIGN(bool is_expl,
                         explain::IsExplanation(bound_.get(), *wni_, e));
    EXPECT_TRUE(is_expl) << Name(e);
  }
  // E4 > E2 > E1 and E4 > E3 > E1 (Example 3.4).
  EXPECT_TRUE(explain::StrictlyLessGeneral(*bound_, e2, e4));
  EXPECT_TRUE(explain::StrictlyLessGeneral(*bound_, e1, e2));
  EXPECT_TRUE(explain::StrictlyLessGeneral(*bound_, e3, e4));
  EXPECT_TRUE(explain::StrictlyLessGeneral(*bound_, e1, e3));
  EXPECT_FALSE(explain::LessGeneral(*bound_, e4, e1));
}

TEST_F(ExhaustiveTest, NonExplanationsRejected) {
  auto id = [&](const char* name) { return ontology_->FindConcept(name); };
  // (City, US-City) contains the answer (New York, Santa Cruz).
  ASSERT_OK_AND_ASSIGN(
      bool a, explain::IsExplanation(bound_.get(), *wni_,
                                     {id("City"), id("US-City")}));
  EXPECT_FALSE(a);
  // (US-City, US-City) does not contain the missing tuple (Amsterdam ∉).
  ASSERT_OK_AND_ASSIGN(
      bool b, explain::IsExplanation(bound_.get(), *wni_,
                                     {id("US-City"), id("US-City")}));
  EXPECT_FALSE(b);
}

TEST_F(ExhaustiveTest, OutputsAreExplanationsAndAntichain) {
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> mges,
                       explain::ExhaustiveSearchAllMge(bound_.get(), *wni_));
  for (const Explanation& e : mges) {
    ASSERT_OK_AND_ASSIGN(bool is_expl,
                         explain::IsExplanation(bound_.get(), *wni_, e));
    EXPECT_TRUE(is_expl);
  }
  for (size_t i = 0; i < mges.size(); ++i) {
    for (size_t j = 0; j < mges.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(explain::StrictlyLessGeneral(*bound_, mges[i], mges[j]));
    }
  }
}

TEST_F(ExhaustiveTest, CandidateCapReported) {
  explain::ExhaustiveOptions options;
  options.max_candidates = 3;
  // Pin the odometer: this test is about the raw-product budget check
  // (kAuto would escalate an over-budget space to the frontier instead).
  options.strategy = explain::SearchStrategy::kOdometer;
  Result<std::vector<Explanation>> r =
      explain::ExhaustiveSearchAllMge(bound_.get(), *wni_, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ExhaustiveTest, NoCandidateConceptMeansNoExplanation) {
  // A missing tuple whose first component is in no concept's extension.
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(instance_.get(),
                                  workload::ConnectedViaQuery(),
                                  {"Mars", "New York"}));
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> mges,
                       explain::ExhaustiveSearchAllMge(bound_.get(), wni));
  EXPECT_TRUE(mges.empty());
}

/// Property sweep: on random tree ontologies and random answer sets, the
/// pruned variant returns exactly the Algorithm 1 result, every output is a
/// maximal explanation, and every explanation is below some output.
class ExhaustiveSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExhaustiveSweepTest, PrunedMatchesExhaustiveAndIsComplete) {
  uint64_t seed = GetParam();
  workload::Rng rng(seed);
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  std::vector<Value> domain;
  for (int i = 0; i < 8; ++i) domain.push_back(Value(i));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<onto::ExplicitOntology> ontology,
                       workload::RandomTreeOntology(domain, 9, seed));
  onto::BoundOntology bound(ontology.get(), &instance);

  // Random binary answer set over the domain and a random missing tuple.
  std::vector<Tuple> answers;
  for (int i = 0; i < 6; ++i) {
    answers.push_back({domain[rng.Below(domain.size())],
                       domain[rng.Below(domain.size())]});
  }
  Tuple missing = {domain[rng.Below(domain.size())],
                   domain[rng.Below(domain.size())]};
  auto wni_or = explain::MakeWhyNotInstanceFromAnswers(&instance, answers,
                                                       missing);
  if (!wni_or.ok()) return;  // missing happened to be an answer: skip seed
  const explain::WhyNotInstance& wni = wni_or.value();

  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> exhaustive,
                       explain::ExhaustiveSearchAllMge(&bound, wni));
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> pruned,
                       explain::PrunedSearchAllMge(&bound, wni));
  EXPECT_EQ(exhaustive, pruned);

  // Completeness: every explanation is ≤ some returned MGE.
  for (onto::ConceptId c1 = 0; c1 < bound.NumConcepts(); ++c1) {
    for (onto::ConceptId c2 = 0; c2 < bound.NumConcepts(); ++c2) {
      Explanation e = {c1, c2};
      ASSERT_OK_AND_ASSIGN(bool is_expl,
                           explain::IsExplanation(&bound, wni, e));
      if (!is_expl) continue;
      bool dominated = false;
      for (const Explanation& mge : exhaustive) {
        if (explain::LessGeneral(bound, e, mge)) dominated = true;
      }
      EXPECT_TRUE(dominated) << "uncovered explanation at seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExhaustiveSweepTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace whynot
