#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using explain::Explanation;

class WhyExplanationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
    auto ontology = workload::CitiesOntology();
    ASSERT_TRUE(ontology.ok());
    ontology_ = std::move(ontology).value();
    bound_ = std::make_unique<onto::BoundOntology>(ontology_.get(),
                                                   instance_.get());
  }

  onto::ConceptId Id(const char* name) {
    return ontology_->FindConcept(name);
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<onto::ExplicitOntology> ontology_;
  std::unique_ptr<onto::BoundOntology> bound_;
};

TEST_F(WhyExplanationTest, RejectsNonAnswers) {
  Result<explain::WhyInstance> bad = explain::MakeWhyInstance(
      instance_.get(), workload::ConnectedViaQuery(),
      {Value("Amsterdam"), Value("New York")});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WhyExplanationTest, SingletonConceptsExplainAnAnswer) {
  // (New York, Santa Cruz) ∈ q(I); (East-Coast-City, West-Coast-City) has
  // product {NY} × {SC, SF} — but (NY, SF) is NOT an answer, so it is not
  // a why-explanation; the dual condition demands the whole product inside.
  ASSERT_OK_AND_ASSIGN(
      explain::WhyInstance wi,
      explain::MakeWhyInstance(instance_.get(),
                               workload::ConnectedViaQuery(),
                               {Value("New York"), Value("Santa Cruz")}));
  Explanation not_inside = {Id("East-Coast-City"), Id("West-Coast-City")};
  ASSERT_OK_AND_ASSIGN(bool a,
                       explain::IsWhyExplanation(bound_.get(), wi,
                                                 not_inside));
  EXPECT_FALSE(a);
  // A concept pair whose product is exactly {(NY, SC)}... the Figure 3
  // ontology has no Santa-Cruz-only concept, so the most informative valid
  // pair uses East-Coast-City × West-Coast-City only if both products are
  // answers — they are not. No why-explanation exists here.
  ASSERT_OK_AND_ASSIGN(
      std::vector<Explanation> all,
      explain::AllMostGeneralWhyExplanations(bound_.get(), wi));
  EXPECT_TRUE(all.empty());
}

TEST_F(WhyExplanationTest, ProductFullyInsideAnswers) {
  // Custom ontology with tight concepts so a product is fully inside:
  // answers {(a,b), (a,c)}; concepts A={a}, BC={b,c}: product ⊆ answers.
  onto::ExplicitOntology o;
  o.AddConcept("A");
  o.SetExtension("A", {Value("a")});
  o.AddConcept("BC");
  o.SetExtension("BC", {Value("b"), Value("c")});
  o.AddConcept("B");
  o.SetExtension("B", {Value("b")});
  o.AddSubsumption("B", "BC");
  ASSERT_OK(o.Finalize());
  rel::Instance instance(&schema_);
  onto::BoundOntology bound(&o, &instance);

  explain::WhyInstance wi;
  wi.instance = &instance;
  wi.answers = {{Value("a"), Value("b")}, {Value("a"), Value("c")}};
  wi.present = {Value("a"), Value("b")};

  Explanation wide = {o.FindConcept("A"), o.FindConcept("BC")};
  ASSERT_OK_AND_ASSIGN(bool inside,
                       explain::IsWhyExplanation(&bound, wi, wide));
  EXPECT_TRUE(inside);

  ASSERT_OK_AND_ASSIGN(
      std::vector<Explanation> all,
      explain::AllMostGeneralWhyExplanations(&bound, wi));
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], wide);  // (A, BC) dominates (A, B)
}

TEST_F(WhyExplanationTest, DuplicateAnswersInHandBuiltInstance) {
  // WhyInstance is a plain struct; a hand-built one may carry duplicate
  // answers. The counting-based product check must dedup defensively:
  // with answers [(a,b), (a,b)] and product {a}×{b,c}, the duplicate must
  // not be counted twice (false positive), and with product {a}×{b} the
  // double count must not be compared against product size 1 (false
  // negative).
  onto::ExplicitOntology o;
  o.AddConcept("A");
  o.SetExtension("A", {Value("a")});
  o.AddConcept("B");
  o.SetExtension("B", {Value("b")});
  o.AddConcept("BC");
  o.SetExtension("BC", {Value("b"), Value("c")});
  ASSERT_OK(o.Finalize());
  rel::Instance instance(&schema_);
  onto::BoundOntology bound(&o, &instance);

  explain::WhyInstance wi;
  wi.instance = &instance;
  wi.answers = {{Value("a"), Value("b")}, {Value("a"), Value("b")}};
  wi.present = {Value("a"), Value("b")};

  Explanation exact = {o.FindConcept("A"), o.FindConcept("B")};
  ASSERT_OK_AND_ASSIGN(bool inside,
                       explain::IsWhyExplanation(&bound, wi, exact));
  EXPECT_TRUE(inside);  // product {(a,b)} ⊆ {(a,b)}

  Explanation wide = {o.FindConcept("A"), o.FindConcept("BC")};
  ASSERT_OK_AND_ASSIGN(bool too_wide,
                       explain::IsWhyExplanation(&bound, wi, wide));
  EXPECT_FALSE(too_wide);  // (a, c) is not an answer
}

TEST_F(WhyExplanationTest, TopNeverQualifies) {
  // ⊤-like concepts (is_all extensions) can never be inside a finite
  // answer set.
  onto::ExplicitOntology o;
  o.AddConcept("A");
  o.SetExtension("A", {Value("a")});
  ASSERT_OK(o.Finalize());
  rel::Instance instance(&schema_);

  // Use an LS ontology with ⊤ via materialization instead: simpler — check
  // ProductInsideAnswers indirectly through IsWhyExplanation with an
  // extension function returning nothing is finite; skip the All case here
  // (covered by ext_set tests) and assert the finite path.
  onto::BoundOntology bound(&o, &instance);
  explain::WhyInstance wi;
  wi.instance = &instance;
  wi.answers = {{Value("a")}};
  wi.present = {Value("a")};
  Explanation e = {o.FindConcept("A")};
  ASSERT_OK_AND_ASSIGN(bool inside, explain::IsWhyExplanation(&bound, wi, e));
  EXPECT_TRUE(inside);
}

// --- Why-explanations w.r.t. OI (the derived-ontology dual) -----------------

class WhyDerivedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(schema_, workload::CitiesDataSchema());
    ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                         workload::CitiesInstance(&schema_));
    instance_ = std::make_unique<rel::Instance>(std::move(instance));
    ASSERT_OK_AND_ASSIGN(
        explain::WhyInstance wi,
        explain::MakeWhyInstance(instance_.get(),
                                 workload::ConnectedViaQuery(),
                                 {Value("Amsterdam"), Value("Rome")}));
    wi_ = std::make_unique<explain::WhyInstance>(std::move(wi));
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<explain::WhyInstance> wi_;
};

TEST_F(WhyDerivedTest, NominalTupleIsAWhyExplanation) {
  explain::LsExplanation nominals = {
      ls::LsConcept::Nominal(Value("Amsterdam")),
      ls::LsConcept::Nominal(Value("Rome"))};
  EXPECT_TRUE(explain::IsLsWhyExplanation(*wi_, nominals));
}

TEST_F(WhyDerivedTest, TopNeverQualifies) {
  explain::LsExplanation with_top = {ls::LsConcept::Top(),
                                     ls::LsConcept::Nominal(Value("Rome"))};
  EXPECT_FALSE(explain::IsLsWhyExplanation(*wi_, with_top));
}

TEST_F(WhyDerivedTest, ProductOutsideAnswersRejected) {
  // π_name(σ_continent=Europe(Cities)) × {Rome} covers (Berlin, Rome) ∉ Ans.
  explain::LsExplanation e = {
      ls::LsConcept::Projection("Cities", 0,
                                {{3, rel::CmpOp::kEq, Value("Europe")}}),
      ls::LsConcept::Nominal(Value("Rome"))};
  EXPECT_FALSE(explain::IsLsWhyExplanation(*wi_, e));
}

TEST_F(WhyDerivedTest, IncrementalWhySearchOutputIsWhyExplanationAndMge) {
  for (bool with_selections : {false, true}) {
    ASSERT_OK_AND_ASSIGN(explain::LsExplanation e,
                         explain::IncrementalWhySearch(*wi_, with_selections));
    EXPECT_TRUE(explain::IsLsWhyExplanation(*wi_, e));
    ls::LubContext ctx(instance_.get());
    ASSERT_OK_AND_ASSIGN(
        bool mge, explain::CheckWhyMgeDerived(*wi_, e, with_selections, &ctx));
    EXPECT_TRUE(mge) << explain::LsExplanationToString(schema_, e);
  }
}

TEST_F(WhyDerivedTest, CheckWhyMgeRejectsTheNominalStartWhenGrowable) {
  // Ans contains (Amsterdam, Amsterdam) and (Amsterdam, Rome): position 2
  // can grow beyond the nominal, so the nominal tuple is not most general.
  explain::LsExplanation nominals = {
      ls::LsConcept::Nominal(Value("Amsterdam")),
      ls::LsConcept::Nominal(Value("Rome"))};
  ls::LubContext ctx(instance_.get());
  ASSERT_OK_AND_ASSIGN(
      bool mge,
      explain::CheckWhyMgeDerived(*wi_, nominals, /*with_selections=*/true,
                                  &ctx));
  EXPECT_FALSE(mge);
}

// Cross-check: the greedy output lands in the brute-force most-general
// antichain over the materialized selection-free OI[K].
class WhyDerivedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WhyDerivedSweepTest, GreedyOutputInBruteForceAntichain) {
  uint64_t seed = GetParam();
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::RandomSchema(2, {2, 1}));
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::RandomInstance(&schema, 6, 4, seed));
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {testutil::A("R0", {testutil::V("x"), testutil::V("y")})};
  rel::UnionQuery q = testutil::Q1(cq);
  if (instance.Relation("R0").empty()) GTEST_SKIP();
  Tuple present = instance.Relation("R0").front();
  ASSERT_OK_AND_ASSIGN(explain::WhyInstance wi,
                       explain::MakeWhyInstance(&instance, q, present));

  ASSERT_OK_AND_ASSIGN(explain::LsExplanation greedy,
                       explain::IncrementalWhySearch(wi));

  ls::MaterializeOptions mat;
  mat.fragment = ls::Fragment::kSelectionFree;
  mat.mode = ls::SubsumptionMode::kInstance;
  mat.max_concepts = 8192;
  ASSERT_OK_AND_ASSIGN(auto ontology,
                       ls::LsOntology::Materialize(&instance, {}, mat));
  onto::BoundOntology bound(ontology.get(), &instance);
  ASSERT_OK_AND_ASSIGN(
      std::vector<Explanation> brute,
      explain::AllMostGeneralWhyExplanations(&bound, wi));

  // The greedy extension tuple must match one of the brute-force MGEs.
  std::vector<std::pair<bool, std::vector<Value>>> greedy_key;
  for (const ls::LsConcept& c : greedy) {
    ls::Extension ext = ls::Eval(c, instance);
    greedy_key.emplace_back(ext.all, ext.values());
  }
  bool found = false;
  for (const Explanation& e : brute) {
    std::vector<std::pair<bool, std::vector<Value>>> key;
    for (onto::ConceptId id : e) {
      ls::Extension ext = ls::Eval(ontology->Concept(id), instance);
      key.emplace_back(ext.all, ext.values());
    }
    if (key == greedy_key) found = true;
  }
  EXPECT_TRUE(found) << "seed " << seed
                     << ": greedy why-MGE missing from brute force ("
                     << brute.size() << " brute MGEs)";
}

INSTANTIATE_TEST_SUITE_P(Sweep, WhyDerivedSweepTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace whynot
