// Property suite for the chunked hybrid containers: HybridBitmap must
// agree with DenseBitmap (the flat reference kernel) on Contains,
// SubsetOf, Intersect, Count, and the fused AndCount across the densities
// that exercise every per-chunk representation — empty, one element,
// either side of the per-chunk dense crossover, full, and alternating —
// including universes whose tail word is partial at both SIMD lane widths
// (the dispatch threshold sits at kSimdMinWords words).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "test_util.h"
#include "whynot/common/hybrid_bitmap.h"

namespace whynot {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  uint64_t Below(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t state_;
};

std::vector<ValueId> SortedUniqueIds(Rng* rng, int32_t universe,
                                     size_t count) {
  std::vector<ValueId> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ids.push_back(static_cast<ValueId>(
        rng->Below(static_cast<uint64_t>(universe))));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// Id patterns per 2^16-bit chunk sweeping the container crossover. The
/// per-chunk rule is dense iff card > 4 * words; a full chunk flips at
/// 4096 elements, so 4095/4097 pin threshold±1.
std::vector<std::vector<ValueId>> ChunkPatterns(Rng* rng, int32_t universe) {
  std::vector<std::vector<ValueId>> out;
  out.push_back({});                                   // empty
  out.push_back({static_cast<ValueId>(rng->Below(
      static_cast<uint64_t>(universe)))});             // singleton
  size_t full_words = (static_cast<size_t>(universe) + 63) / 64;
  size_t crossover = 4 * std::min<size_t>(full_words, 1024);
  out.push_back(SortedUniqueIds(rng, universe, crossover - 1));
  out.push_back(SortedUniqueIds(rng, universe, crossover + 1));
  std::vector<ValueId> alternating;                    // every other bit
  for (int32_t id = 0; id < universe; id += 2) alternating.push_back(id);
  out.push_back(std::move(alternating));
  std::vector<ValueId> full(static_cast<size_t>(universe));
  for (int32_t id = 0; id < universe; ++id) {
    full[static_cast<size_t>(id)] = id;
  }
  out.push_back(std::move(full));
  return out;
}

TEST(HybridBitmapTest, AgreesWithDenseBitmapAcrossDensities) {
  Rng rng(0x9e3779b97f4a7c15ULL);
  // Universes straddle the chunk boundary (65536 bits) and exercise tail
  // words on both sides of the kSimdMinWords dispatch threshold:
  // 130 bits = 3 words (scalar tail), 530 = 9 words (SIMD with partial
  // tail), 65536+77 spans two chunks with a ragged second chunk.
  for (int32_t universe : {130, 530, 4096, 65536 + 77, 3 * 65536 + 1}) {
    SCOPED_TRACE(universe);
    std::vector<std::vector<ValueId>> patterns = ChunkPatterns(&rng, universe);
    for (size_t pi = 0; pi < patterns.size(); ++pi) {
      for (size_t pj = 0; pj < patterns.size(); ++pj) {
        const std::vector<ValueId>& a_ids = patterns[pi];
        const std::vector<ValueId>& b_ids = patterns[pj];
        SCOPED_TRACE(pi);
        SCOPED_TRACE(pj);
        DenseBitmap da(a_ids, universe);
        DenseBitmap db(b_ids, universe);
        HybridBitmap ha = HybridBitmap::FromSorted(a_ids, universe);
        HybridBitmap hb = HybridBitmap::FromSorted(b_ids, universe);

        ASSERT_EQ(ha.Count(), a_ids.size());
        ASSERT_EQ(ha.ToIds(), a_ids);

        // Membership: every 97th id plus both patterns' own elements.
        for (int32_t id = 0; id < universe; id += 97) {
          ASSERT_EQ(ha.Test(id), da.Test(id)) << id;
        }
        for (ValueId id : b_ids) {
          if (rng.Below(16) == 0) ASSERT_EQ(ha.Test(id), da.Test(id)) << id;
        }

        EXPECT_EQ(ha.SubsetOf(hb), da.SubsetOf(db));
        EXPECT_EQ(HybridBitmap::AndCount(ha, hb),
                  DenseBitmap::AndCountWords(da.words().data(),
                                             db.words().data(),
                                             da.num_words()));
        EXPECT_EQ(HybridBitmap::AnyAnd(ha, hb),
                  HybridBitmap::AndCount(ha, hb) != 0);
        HybridBitmap hi = HybridBitmap::Intersect(ha, hb);
        DenseBitmap di = DenseBitmap::Intersect(da, db);
        EXPECT_EQ(hi.ToIds(), di.ToIds());

        // Mixed hybrid × raw-word kernels against the flat operand.
        EXPECT_EQ(ha.AndCountWith(db.words().data(), db.num_words()),
                  HybridBitmap::AndCount(ha, hb));
        EXPECT_EQ(ha.AnyAndWith(db.words().data(), db.num_words()),
                  HybridBitmap::AnyAnd(ha, hb));
        std::vector<uint64_t> acc(db.words());
        ha.AndWith(acc.data(), acc.data(), acc.size());  // aliased in/out
        EXPECT_EQ(acc, di.words());

        std::vector<uint64_t> decoded(da.num_words(), ~uint64_t{0});
        ha.DecodeTo(decoded.data(), decoded.size());
        EXPECT_EQ(decoded, da.words());
      }
    }
  }
}

TEST(HybridBitmapTest, SubsetOfMatchesReferenceOnRandomPairs) {
  Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    int32_t universe = 1 + static_cast<int32_t>(rng.Below(200000));
    std::vector<ValueId> b_ids =
        SortedUniqueIds(&rng, universe, rng.Below(2000));
    // Bias toward genuine subsets: sample a from b half the time.
    std::vector<ValueId> a_ids;
    if (rng.Below(2) == 0) {
      for (ValueId id : b_ids) {
        if (rng.Below(3) != 0) a_ids.push_back(id);
      }
    } else {
      a_ids = SortedUniqueIds(&rng, universe, rng.Below(200));
    }
    HybridBitmap ha = HybridBitmap::FromSorted(a_ids, universe);
    HybridBitmap hb = HybridBitmap::FromSorted(b_ids, universe);
    bool want = std::includes(b_ids.begin(), b_ids.end(), a_ids.begin(),
                              a_ids.end());
    ASSERT_EQ(ha.SubsetOf(hb), want) << "round " << round;
  }
}

TEST(HybridBitmapTest, FromWordsRoundTripsAndTracksMemory) {
  Rng rng(99);
  for (size_t nwords : {0ul, 1ul, 7ul, 8ul, 9ul, 1024ul, 1030ul}) {
    std::vector<uint64_t> words(nwords);
    for (uint64_t& w : words) {
      // Sparse-ish fill so both container kinds appear across sizes.
      w = rng.Next() & rng.Next() & rng.Next();
    }
    HybridBitmap h = HybridBitmap::FromWords(words.data(), nwords);
    EXPECT_EQ(h.Count(), DenseBitmap::PopcountWords(words.data(), nwords));
    std::vector<uint64_t> back(nwords, ~uint64_t{0});
    h.DecodeTo(back.data(), nwords);
    EXPECT_EQ(back, words);
    EXPECT_GE(h.MemoryBytes(), sizeof(HybridBitmap));
  }
  // A genuinely sparse large set must be far below its dense equivalent
  // (the point of the freeze): 100 elements over 2^20 bits.
  std::vector<ValueId> sparse;
  for (int i = 0; i < 100; ++i) sparse.push_back(i * 10007);
  HybridBitmap h = HybridBitmap::FromSorted(sparse, 1 << 20);
  EXPECT_LT(h.MemoryBytes() * 3, h.DenseEquivalentBytes());
  EXPECT_EQ(h.NumDenseContainers(), 0u);
}

TEST(HybridBitmapTest, ChooseHybridRepFollowsDensityRule) {
  ASSERT_EQ(GetSetRepPolicy(), SetRepPolicy::kAdaptive);
  // At or below kDenseMirrorMinWords words the dense form always wins.
  EXPECT_FALSE(ChooseHybridRep(1, kDenseMirrorMinWords));
  EXPECT_FALSE(ChooseHybridRep(0, kDenseMirrorMinWords));
  // Past it, hybrid iff the universe exceeds the per-element budget.
  EXPECT_TRUE(ChooseHybridRep(1, kDenseMirrorMinWords + 1));
  EXPECT_FALSE(ChooseHybridRep(1000, 1000));
  EXPECT_TRUE(
      ChooseHybridRep(100, 100 * kDenseMirrorMaxWordsPerElement + 1));
  EXPECT_FALSE(ChooseHybridRep(100, 100 * kDenseMirrorMaxWordsPerElement));

  // Force modes override the rule (the representation-equivalence sweep).
  SetSetRepPolicy(SetRepPolicy::kForceHybrid);
  EXPECT_TRUE(ChooseHybridRep(1000, 1));
  SetSetRepPolicy(SetRepPolicy::kForceDense);
  EXPECT_FALSE(ChooseHybridRep(1, 1 << 20));
  SetSetRepPolicy(SetRepPolicy::kAdaptive);
}

}  // namespace
}  // namespace whynot
