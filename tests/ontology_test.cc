#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

TEST(ExtSetTest, FiniteOperations) {
  onto::ExtSet a = onto::ExtSet::Finite({3, 1, 2, 2});
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.Contains(1));
  EXPECT_FALSE(a.Contains(4));
  onto::ExtSet b = onto::ExtSet::Finite({1, 2});
  EXPECT_TRUE(b.SubsetOf(a));
  EXPECT_FALSE(a.SubsetOf(b));
  EXPECT_EQ(a.Intersect(b), b);
  EXPECT_TRUE(onto::ExtSet().empty());
}

TEST(ExtSetTest, AllSemantics) {
  onto::ExtSet all = onto::ExtSet::All();
  onto::ExtSet fin = onto::ExtSet::Finite({1});
  EXPECT_TRUE(all.is_all());
  EXPECT_TRUE(all.Contains(12345));
  EXPECT_TRUE(fin.SubsetOf(all));
  EXPECT_FALSE(all.SubsetOf(fin));
  EXPECT_TRUE(all.SubsetOf(all));
  EXPECT_EQ(all.Intersect(fin), fin);
  EXPECT_EQ(fin.Intersect(all), fin);
}

TEST(PreorderTest, TransitiveClosure) {
  onto::BoolMatrix m(3);
  m.Set(0, 1);
  m.Set(1, 2);
  onto::ReflexiveTransitiveClosure(&m);
  EXPECT_TRUE(m.Get(0, 2));
  EXPECT_TRUE(m.Get(0, 0));
  EXPECT_FALSE(m.Get(2, 0));
}

TEST(PreorderTest, HasseSkipsTransitiveEdges) {
  onto::BoolMatrix m(3);
  m.Set(0, 1);
  m.Set(1, 2);
  m.Set(0, 2);  // transitive, should not appear in the Hasse diagram
  onto::ReflexiveTransitiveClosure(&m);
  auto edges = onto::HasseEdges(m);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(0, 1));
  EXPECT_EQ(edges[1], std::make_pair(1, 2));
}

TEST(PreorderTest, MaximalElements) {
  onto::BoolMatrix m(4);
  m.Set(0, 1);
  m.Set(2, 1);
  onto::ReflexiveTransitiveClosure(&m);
  std::vector<int32_t> maximal = onto::MaximalElements(m);
  EXPECT_EQ(maximal, (std::vector<int32_t>{1, 3}));
}

TEST(ExplicitOntologyTest, SubsumptionClosure) {
  onto::ExplicitOntology o;
  o.AddSubsumption("Dutch-City", "European-City");
  o.AddSubsumption("European-City", "City");
  ASSERT_OK(o.Finalize());
  onto::ConceptId dutch = o.FindConcept("Dutch-City");
  onto::ConceptId city = o.FindConcept("City");
  onto::ConceptId eu = o.FindConcept("European-City");
  ASSERT_GE(dutch, 0);
  EXPECT_TRUE(o.Subsumes(dutch, city));    // transitivity
  EXPECT_TRUE(o.Subsumes(dutch, dutch));   // reflexivity
  EXPECT_FALSE(o.Subsumes(city, eu));
  EXPECT_EQ(o.FindConcept("nope"), -1);
}

TEST(ExplicitOntologyTest, FixedAndFunctionExtensions) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("U", {Value("x")}));

  onto::ExplicitOntology o;
  o.AddConcept("Fixed");
  o.SetExtension("Fixed", {Value("a"), Value("b")});
  o.AddConcept("FromInstance");
  o.SetExtensionFn("FromInstance", [](const rel::Instance& i) {
    std::vector<Value> out;
    for (const Tuple& t : i.Relation("U")) out.push_back(t[0]);
    return out;
  });
  ASSERT_OK(o.Finalize());

  ValuePool pool;
  onto::ExtSet fixed = o.ComputeExt(o.FindConcept("Fixed"), instance, &pool);
  EXPECT_EQ(fixed.size(), 2u);
  onto::ExtSet dynamic =
      o.ComputeExt(o.FindConcept("FromInstance"), instance, &pool);
  ASSERT_EQ(dynamic.size(), 1u);
  EXPECT_TRUE(dynamic.Contains(pool.Lookup(Value("x"))));
}

TEST(BoundOntologyTest, ConsistencyCheck) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);

  onto::ExplicitOntology good;
  good.AddSubsumption("Sub", "Super");
  good.SetExtension("Sub", {Value(1)});
  good.SetExtension("Super", {Value(1), Value(2)});
  ASSERT_OK(good.Finalize());
  onto::BoundOntology bound_good(&good, &instance);
  EXPECT_OK(bound_good.CheckConsistent());

  onto::ExplicitOntology bad;
  bad.AddSubsumption("Sub", "Super");
  bad.SetExtension("Sub", {Value(1), Value(3)});
  bad.SetExtension("Super", {Value(1)});
  ASSERT_OK(bad.Finalize());
  onto::BoundOntology bound_bad(&bad, &instance);
  EXPECT_FALSE(bound_bad.CheckConsistent().ok());
}

TEST(BoundOntologyTest, Figure3OntologyIsConsistent) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesDataSchema());
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::CitiesInstance(&schema));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<onto::ExplicitOntology> o,
                       workload::CitiesOntology());
  onto::BoundOntology bound(o.get(), &instance);
  EXPECT_OK(bound.CheckConsistent());
  // ext caching returns identical objects.
  onto::ConceptId city = o->FindConcept("City");
  const onto::ExtSet& e1 = bound.Ext(city);
  const onto::ExtSet& e2 = bound.Ext(city);
  EXPECT_EQ(&e1, &e2);
  EXPECT_EQ(e1.size(), 8u);
}

TEST(RandomTreeOntologyTest, AlwaysConsistent) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  std::vector<Value> domain;
  for (int i = 0; i < 12; ++i) domain.push_back(Value(i));
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<onto::ExplicitOntology> o,
                         workload::RandomTreeOntology(domain, 15, seed));
    onto::BoundOntology bound(o.get(), &instance);
    EXPECT_OK(bound.CheckConsistent());
  }
}

}  // namespace
}  // namespace whynot
