#include <gtest/gtest.h>

#include <set>

#include "test_util.h"
#include "whynot/common/status.h"
#include "whynot/common/strings.h"
#include "whynot/common/value.h"

namespace whynot {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  Value i(42);
  Value d(3.5);
  Value s("hello");
  EXPECT_EQ(i.kind(), Value::Kind::kInt);
  EXPECT_EQ(d.kind(), Value::Kind::kDouble);
  EXPECT_EQ(s.kind(), Value::Kind::kString);
  EXPECT_TRUE(i.is_number());
  EXPECT_TRUE(d.is_number());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_DOUBLE_EQ(d.AsNumber(), 3.5);
  EXPECT_EQ(s.AsString(), "hello");
}

TEST(ValueTest, NumericEqualityAcrossKinds) {
  EXPECT_EQ(Value(5), Value(5.0));
  EXPECT_NE(Value(5), Value(5.5));
  EXPECT_EQ(Value(5).Hash(), Value(5.0).Hash());
}

TEST(ValueTest, TotalOrderNumbersBeforeStrings) {
  EXPECT_LT(Value(10), Value(2.5e10));
  EXPECT_LT(Value(1000000), Value("a"));
  EXPECT_LT(Value(-5.0), Value("0"));  // the *string* "0"
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("abc"), Value("abca"));
}

TEST(ValueTest, OrderIsConsistent) {
  std::vector<Value> vals = {Value("b"), Value(3), Value("a"), Value(2.5),
                             Value(-1), Value("a0")};
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(vals[0], Value(-1));
  EXPECT_EQ(vals[1], Value(2.5));
  EXPECT_EQ(vals[2], Value(3));
  EXPECT_EQ(vals[3], Value("a"));
  EXPECT_EQ(vals[4], Value("a0"));
  EXPECT_EQ(vals[5], Value("b"));
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(5000000.0).ToString(), "5000000");
  EXPECT_EQ(Value("x").ToString(), "x");
  EXPECT_EQ(Value("x").ToLiteral(), "\"x\"");
  EXPECT_EQ(Value(7).ToLiteral(), "7");
}

TEST(ValueTest, DensityBetweenNumbers) {
  // The dense-order substitution documented in DESIGN.md: between any two
  // numbers there is another number.
  Value a(1);
  Value b(2);
  Value mid(1.5);
  EXPECT_LT(a, mid);
  EXPECT_LT(mid, b);
}

TEST(ValuePoolTest, InternIsIdempotent) {
  ValuePool pool;
  ValueId a = pool.Intern(Value("x"));
  ValueId b = pool.Intern(Value("y"));
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern(Value("x")), a);
  EXPECT_EQ(pool.size(), 2);
  EXPECT_EQ(pool.Get(a), Value("x"));
  EXPECT_EQ(pool.Lookup(Value("y")), b);
  EXPECT_EQ(pool.Lookup(Value("z")), -1);
}

TEST(ValuePoolTest, NumericAliasesShareIds) {
  ValuePool pool;
  EXPECT_EQ(pool.Intern(Value(5)), pool.Intern(Value(5.0)));
}

TEST(TupleTest, ToStringAndHash) {
  Tuple t = {Value("a"), Value(1)};
  EXPECT_EQ(TupleToString(t), "(a, 1)");
  Tuple u = {Value("a"), Value(1)};
  EXPECT_EQ(TupleHash()(t), TupleHash()(u));
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(*ok, 7);
  Result<int> err(Status::NotFound("gone"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto f = [](bool fail) -> Result<int> {
    if (fail) return Status::InvalidArgument("fail");
    return 5;
  };
  auto g = [&](bool fail) -> Result<int> {
    WHYNOT_ASSIGN_OR_RETURN(int v, f(fail));
    return v + 1;
  };
  EXPECT_EQ(g(false).value(), 6);
  EXPECT_FALSE(g(true).ok());
}

TEST(StringsTest, JoinSplitTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

}  // namespace
}  // namespace whynot
