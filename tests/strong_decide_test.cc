#include "whynot/explain/strong_decide.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_util.h"

namespace whynot {
namespace {

using explain::DecideStrongExplanation;
using explain::LsExplanation;
using explain::StrongDecideOptions;
using explain::StrongDecision;
using explain::StrongVerdict;
using testutil::A;
using testutil::C;
using testutil::Q1;
using testutil::V;

// q(x, y) :- R(x, y) over the two-relation test schema.
rel::UnionQuery EdgeQuery() {
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {A("R", {V("x"), V("y")})};
  return Q1(cq);
}

TEST(StrongDecideTest, TopTupleIsNotStrongForSatisfiableQuery) {
  rel::Schema schema = testutil::SimpleSchema();
  LsExplanation top = {ls::LsConcept::Top(), ls::LsConcept::Top()};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, EdgeQuery(), top));
  EXPECT_EQ(d.verdict, StrongVerdict::kNotStrong);
  ASSERT_TRUE(d.counterexample.has_value());
  // The verified witness is a query answer inside the concept product.
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> answers,
                       rel::Evaluate(EdgeQuery(), *d.counterexample));
  EXPECT_TRUE(std::binary_search(answers.begin(), answers.end(), d.witness));
}

TEST(StrongDecideTest, DisjointNominalsAreStrong) {
  // (({1}), ({2})) can never intersect q(x,y) :- R(x,y), x = y... the
  // nominals pin x=1 and y=2; adding the comparison x=2 to the query makes
  // the combined pattern unsatisfiable.
  rel::Schema schema = testutil::SimpleSchema();
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {A("R", {V("x"), V("y")})};
  cq.comparisons = {{"x", rel::CmpOp::kEq, Value(2)}};
  LsExplanation nominal1 = {ls::LsConcept::Nominal(Value(1)),
                            ls::LsConcept::Top()};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, Q1(cq), nominal1));
  EXPECT_EQ(d.verdict, StrongVerdict::kStrong) << d.detail;
}

TEST(StrongDecideTest, NominalMatchingComparisonIsNotStrong) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {A("R", {V("x"), V("y")})};
  cq.comparisons = {{"x", rel::CmpOp::kEq, Value(2)}};
  LsExplanation nominal2 = {ls::LsConcept::Nominal(Value(2)),
                            ls::LsConcept::Top()};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, Q1(cq), nominal2));
  EXPECT_EQ(d.verdict, StrongVerdict::kNotStrong);
  EXPECT_EQ(d.witness[0], Value(2));
}

TEST(StrongDecideTest, ContradictorySelectionsAreStrong) {
  // C1 = π_a(σ_{b < 5}(R)), and the query requires y > 10 on the joined
  // attribute: x ∈ C1 via R(x, z), z < 5 can never be an answer of
  // q(x) :- R(x, y), y > 10 when the query's own R-atom must be the
  // *same*... it need not be the same atom, so this is NOT strong:
  // an instance with R(1, 3) and R(1, 11) refutes. The decision procedure
  // must find it.
  rel::Schema schema = testutil::SimpleSchema();
  rel::ConjunctiveQuery cq;
  cq.head = {"x"};
  cq.atoms = {A("R", {V("x"), V("y")})};
  cq.comparisons = {{"y", rel::CmpOp::kGt, Value(10)}};
  LsExplanation c = {ls::LsConcept::Projection(
      "R", 0, {{1, rel::CmpOp::kLt, Value(5)}})};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, Q1(cq), c));
  EXPECT_EQ(d.verdict, StrongVerdict::kNotStrong);
  ASSERT_TRUE(d.counterexample.has_value());
  EXPECT_GE(d.counterexample->Relation("R").size(), 2u);
}

TEST(StrongDecideTest, FdMakesSelectionConflictStrong) {
  // Same shape, but with the FD R: a → b the two R-atoms for x collapse,
  // and z < 5 contradicts z > 10: strong.
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("R", {"a", "b"}));
  ASSERT_OK(schema.AddFd({"R", {0}, {1}}));
  rel::ConjunctiveQuery cq;
  cq.head = {"x"};
  cq.atoms = {A("R", {V("x"), V("y")})};
  cq.comparisons = {{"y", rel::CmpOp::kGt, Value(10)}};
  LsExplanation c = {ls::LsConcept::Projection(
      "R", 0, {{1, rel::CmpOp::kLt, Value(5)}})};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, Q1(cq), c));
  EXPECT_EQ(d.verdict, StrongVerdict::kStrong) << d.detail;
}

TEST(StrongDecideTest, FdChaseCounterexampleRespectsFd) {
  // FD present but not conflicting: the counterexample must satisfy it.
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("R", {"a", "b"}));
  ASSERT_OK(schema.AddFd({"R", {0}, {1}}));
  rel::ConjunctiveQuery cq;
  cq.head = {"x"};
  cq.atoms = {A("R", {V("x"), V("y")})};
  LsExplanation c = {ls::LsConcept::Projection(
      "R", 0, {{1, rel::CmpOp::kGt, Value(3)}})};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, Q1(cq), c));
  EXPECT_EQ(d.verdict, StrongVerdict::kNotStrong);
  ASSERT_TRUE(d.counterexample.has_value());
  EXPECT_OK(d.counterexample->SatisfiesConstraints());
}

TEST(StrongDecideTest, IdChaseCompletesCounterexample) {
  // R[a] ⊆ U[a]: the counterexample must contain the U-completion.
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("R", {"a", "b"}));
  ASSERT_OK(schema.AddRelation("U", {"a"}));
  ASSERT_OK(schema.AddId({"R", {0}, "U", {0}}));
  LsExplanation top = {ls::LsConcept::Top(), ls::LsConcept::Top()};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, EdgeQuery(), top));
  EXPECT_EQ(d.verdict, StrongVerdict::kNotStrong);
  ASSERT_TRUE(d.counterexample.has_value());
  EXPECT_OK(d.counterexample->SatisfiesConstraints());
  EXPECT_FALSE(d.counterexample->Relation("U").empty());
}

TEST(StrongDecideTest, EmptyConceptExtensionIsVacuouslyStrong) {
  // σ with an empty interval (b < 1 ∧ b > 2) denotes ∅ in every instance.
  rel::Schema schema = testutil::SimpleSchema();
  LsExplanation c = {ls::LsConcept::Projection(
                         "R", 0,
                         {{1, rel::CmpOp::kLt, Value(1)},
                          {1, rel::CmpOp::kGt, Value(2)}}),
                     ls::LsConcept::Top()};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, EdgeQuery(), c));
  EXPECT_EQ(d.verdict, StrongVerdict::kStrong) << d.detail;
}

TEST(StrongDecideTest, ViewConceptsAreExpanded) {
  // View Big(a) ↔ R(a, b), b ≥ 100. Concept π_0(Big) at position 0 of
  // q(x,y) :- R(x,y): refutable (R(1, 200) gives Big(1) and answer (1,200)).
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("R", {"a", "b"}));
  rel::ConjunctiveQuery def;
  def.head = {"a"};
  def.atoms = {A("R", {V("a"), V("b")})};
  def.comparisons = {{"b", rel::CmpOp::kGe, Value(100)}};
  ASSERT_OK(schema.AddView("Big", {"a"}, Q1(def)));
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {A("R", {V("x"), V("y")})};
  LsExplanation c = {ls::LsConcept::Projection("Big", 0),
                     ls::LsConcept::Top()};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, Q1(cq), c));
  EXPECT_EQ(d.verdict, StrongVerdict::kNotStrong);
  ASSERT_TRUE(d.counterexample.has_value());
  // The witness's first coordinate must be a Big-member in the
  // counterexample (views materialized).
  ls::Extension big = ls::Eval(ls::LsConcept::Projection("Big", 0),
                               *d.counterexample);
  EXPECT_TRUE(big.Contains(d.witness[0]));
}

TEST(StrongDecideTest, ViewQueryAgainstDisjointSelectionIsStrong) {
  // View Big(a) ↔ R(a,b), b ≥ 100; query q(x) :- Big(x).
  // Concept π_a(σ_{b < 50}(R)) with FD a → b: strong (the FD forces the
  // two R-atoms to agree, and b < 50 contradicts b ≥ 100).
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("R", {"a", "b"}));
  ASSERT_OK(schema.AddFd({"R", {0}, {1}}));
  rel::ConjunctiveQuery def;
  def.head = {"a"};
  def.atoms = {A("R", {V("a"), V("b")})};
  def.comparisons = {{"b", rel::CmpOp::kGe, Value(100)}};
  ASSERT_OK(schema.AddView("Big", {"a"}, Q1(def)));
  rel::ConjunctiveQuery cq;
  cq.head = {"x"};
  cq.atoms = {A("Big", {V("x")})};
  LsExplanation c = {ls::LsConcept::Projection(
      "R", 0, {{1, rel::CmpOp::kLt, Value(50)}})};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, Q1(cq), c));
  EXPECT_EQ(d.verdict, StrongVerdict::kStrong) << d.detail;
}

TEST(StrongDecideTest, CitiesWorldExplanationIsNotStrongWithoutConstraints) {
  // The paper's MGE (European-City, US-City) explains why Amsterdam and
  // New York are not 2-hop connected *in the given instance*; it is not
  // strong — nothing in the (constraint-free) schema prevents a train from
  // Amsterdam via somewhere to New York.
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesDataSchema());
  LsExplanation e = {
      ls::LsConcept::Projection("Cities", 0,
                                {{3, rel::CmpOp::kEq, Value("Europe")}}),
      ls::LsConcept::Projection("Cities", 0,
                                {{3, rel::CmpOp::kEq, Value("N.America")}})};
  ASSERT_OK_AND_ASSIGN(
      StrongDecision d,
      DecideStrongExplanation(schema, workload::ConnectedViaQuery(), e));
  EXPECT_EQ(d.verdict, StrongVerdict::kNotStrong);
  ASSERT_TRUE(d.counterexample.has_value());
  // The counterexample is a world where a European city reaches a North
  // American city in two hops.
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> answers,
      rel::Evaluate(workload::ConnectedViaQuery(), *d.counterexample));
  EXPECT_TRUE(std::binary_search(answers.begin(), answers.end(), d.witness));
}

TEST(StrongDecideTest, IsStrongExplanationRejectsNonExplanations) {
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("R", {1, 2}));
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(&instance, EdgeQuery(), {Value(3), Value(4)}));
  // (⊤, ⊤) contains the answer (1, 2): not an explanation at all.
  LsExplanation top = {ls::LsConcept::Top(), ls::LsConcept::Top()};
  auto result = explain::IsStrongExplanation(wni, top);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(StrongDecideTest, StrongImpliesExplanationOnEveryInstance) {
  // The defining property, spot-checked: a strong explanation's product
  // avoids q on arbitrary instances.
  rel::Schema schema = testutil::SimpleSchema();
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {A("R", {V("x"), V("y")})};
  cq.comparisons = {{"x", rel::CmpOp::kGe, Value(10)}};
  LsExplanation e = {ls::LsConcept::Projection(
                         "R", 0, {{0, rel::CmpOp::kLt, Value(10)}}),
                     ls::LsConcept::Top()};
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, Q1(cq), e));
  ASSERT_EQ(d.verdict, StrongVerdict::kStrong) << d.detail;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ASSERT_OK_AND_ASSIGN(rel::Instance random,
                         workload::RandomInstance(&schema, 12, 15, seed));
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> answers,
                         rel::Evaluate(Q1(cq), random));
    ls::Extension e0 = ls::Eval(e[0], random);
    for (const Tuple& t : answers) {
      EXPECT_FALSE(e0.Contains(t[0]))
          << "seed " << seed << ": strong explanation violated";
    }
  }
}

TEST(StrongDecideTest, BranchCapYieldsUnknown) {
  rel::Schema schema = testutil::SimpleSchema();
  LsExplanation top = {ls::LsConcept::Projection("R", 0),
                       ls::LsConcept::Top()};
  StrongDecideOptions options;
  options.max_branches = 0;
  ASSERT_OK_AND_ASSIGN(StrongDecision d, DecideStrongExplanation(
                                             schema, EdgeQuery(), top, options));
  EXPECT_EQ(d.verdict, StrongVerdict::kUnknown);
}

// --- Property sweep: the decision agrees with a random-instance refutation
// --- search. kNotStrong ⇒ verified counterexample (checked inside the
// --- procedure); kStrong ⇒ no random instance refutes.
class StrongDecideSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrongDecideSweepTest, VerdictConsistentWithRandomSearch) {
  uint64_t seed = GetParam();
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::RandomSchema(2, {2, 1}));
  // Random query: q(x, y) :- R0(x, y) [, x op c].
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {A("R0", {V("x"), V("y")})};
  if (seed % 3 == 0) {
    cq.comparisons = {{"x", rel::CmpOp::kGe, Value(static_cast<int64_t>(
                                                 seed % 7))}};
  }
  // Random candidate: one selection concept and one projection/nominal.
  LsExplanation e;
  e.push_back(ls::LsConcept::Projection(
      "R0", 0,
      {{1, seed % 2 == 0 ? rel::CmpOp::kLt : rel::CmpOp::kGe,
        Value(static_cast<int64_t>(seed % 9))}}));
  if (seed % 4 == 0) {
    e.push_back(ls::LsConcept::Nominal(Value(static_cast<int64_t>(seed % 5))));
  } else {
    e.push_back(ls::LsConcept::Projection("R1", 0));
  }
  ASSERT_OK_AND_ASSIGN(StrongDecision d,
                       DecideStrongExplanation(schema, Q1(cq), e));
  ASSERT_NE(d.verdict, StrongVerdict::kUnknown) << d.detail;
  bool refuted_by_random = false;
  for (uint64_t s = 1; s <= 25 && !refuted_by_random; ++s) {
    ASSERT_OK_AND_ASSIGN(rel::Instance random,
                         workload::RandomInstance(&schema, 10, 6, seed * 100 + s));
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> answers,
                         rel::Evaluate(Q1(cq), random));
    ls::Extension e0 = ls::Eval(e[0], random);
    ls::Extension e1 = ls::Eval(e[1], random);
    for (const Tuple& t : answers) {
      if (e0.Contains(t[0]) && e1.Contains(t[1])) refuted_by_random = true;
    }
  }
  if (refuted_by_random) {
    EXPECT_EQ(d.verdict, StrongVerdict::kNotStrong)
        << "seed " << seed << ": random search refuted but decision said "
        << StrongVerdictName(d.verdict);
  }
  // (kNotStrong with no random refutation is fine: the procedure's
  // counterexamples are more targeted than random sampling.)
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrongDecideSweepTest,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace whynot
