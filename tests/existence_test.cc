#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using explain::Explanation;
using explain::SetCoverInstance;

TEST(SetCoverTest, BruteForceBasics) {
  SetCoverInstance yes{3, {{0, 1}, {1, 2}, {2}}, 2};
  EXPECT_TRUE(explain::BruteForceSetCover(yes));
  SetCoverInstance no{3, {{0}, {1}, {2}}, 2};
  EXPECT_FALSE(explain::BruteForceSetCover(no));
  SetCoverInstance trivial{0, {}, 1};
  EXPECT_TRUE(explain::BruteForceSetCover(trivial));
  SetCoverInstance one_set{4, {{0, 1, 2, 3}}, 1};
  EXPECT_TRUE(explain::BruteForceSetCover(one_set));
}

TEST(ReductionTest, PositiveInstance) {
  SetCoverInstance sc{3, {{0, 1}, {1, 2}}, 2};
  ASSERT_TRUE(explain::BruteForceSetCover(sc));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<explain::SetCoverWhyNot> reduction,
                       explain::ReduceSetCoverToWhyNot(sc));
  onto::BoundOntology bound(reduction->ontology.get(),
                            reduction->instance.get());
  Explanation witness;
  ASSERT_OK_AND_ASSIGN(
      bool exists,
      explain::ExistsExplanation(&bound, reduction->wni, &witness));
  EXPECT_TRUE(exists);
  ASSERT_OK_AND_ASSIGN(
      bool valid, explain::IsExplanation(&bound, reduction->wni, witness));
  EXPECT_TRUE(valid);
}

TEST(ReductionTest, NegativeInstance) {
  SetCoverInstance sc{4, {{0}, {1}, {2, 3}}, 2};
  ASSERT_FALSE(explain::BruteForceSetCover(sc));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<explain::SetCoverWhyNot> reduction,
                       explain::ReduceSetCoverToWhyNot(sc));
  onto::BoundOntology bound(reduction->ontology.get(),
                            reduction->instance.get());
  ASSERT_OK_AND_ASSIGN(bool exists,
                       explain::ExistsExplanation(&bound, reduction->wni));
  EXPECT_FALSE(exists);
}

TEST(ReductionTest, ZeroBoundRejected) {
  SetCoverInstance sc{2, {{0, 1}}, 0};
  EXPECT_FALSE(explain::ReduceSetCoverToWhyNot(sc).ok());
}

TEST(ExistenceTest, NodeCapReported) {
  SetCoverInstance sc =
      explain::RandomSetCover(12, 10, 3, 5, /*seed=*/7);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<explain::SetCoverWhyNot> reduction,
                       explain::ReduceSetCoverToWhyNot(sc));
  onto::BoundOntology bound(reduction->ontology.get(),
                            reduction->instance.get());
  explain::ExistenceOptions options;
  options.max_nodes = 2;
  Result<bool> r =
      explain::ExistsExplanation(&bound, reduction->wni, nullptr, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

/// Theorem 5.1.2 cross-check: the reduction preserves the SET COVER answer
/// on random instances.
class ReductionSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReductionSweepTest, AgreesWithBruteForce) {
  uint64_t seed = GetParam();
  workload::Rng rng(seed);
  size_t universe = 3 + rng.Below(4);   // 3..6
  size_t num_sets = 2 + rng.Below(4);   // 2..5
  size_t set_size = 1 + rng.Below(3);   // 1..3
  size_t bound_k = 1 + rng.Below(3);    // 1..3
  SetCoverInstance sc = explain::RandomSetCover(universe, num_sets, set_size,
                                                bound_k, seed * 31);
  bool expected = explain::BruteForceSetCover(sc);
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<explain::SetCoverWhyNot> reduction,
                       explain::ReduceSetCoverToWhyNot(sc));
  onto::BoundOntology bound(reduction->ontology.get(),
                            reduction->instance.get());
  Explanation witness;
  ASSERT_OK_AND_ASSIGN(
      bool exists,
      explain::ExistsExplanation(&bound, reduction->wni, &witness));
  EXPECT_EQ(exists, expected)
      << "universe=" << universe << " sets=" << num_sets
      << " bound=" << bound_k << " seed=" << seed;
  if (exists) {
    ASSERT_OK_AND_ASSIGN(
        bool valid, explain::IsExplanation(&bound, reduction->wni, witness));
    EXPECT_TRUE(valid);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReductionSweepTest,
                         ::testing::Range<uint64_t>(1, 41));

/// Existence must also agree with "Algorithm 1 returns a non-empty set".
class ExistenceVsExhaustiveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExistenceVsExhaustiveTest, Agree) {
  uint64_t seed = GetParam();
  workload::Rng rng(seed + 100);
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  std::vector<Value> domain;
  for (int i = 0; i < 7; ++i) domain.push_back(Value(i));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<onto::ExplicitOntology> ontology,
                       workload::RandomTreeOntology(domain, 7, seed));
  onto::BoundOntology bound(ontology.get(), &instance);
  std::vector<Tuple> answers;
  for (int i = 0; i < 8; ++i) {
    answers.push_back({domain[rng.Below(domain.size())],
                       domain[rng.Below(domain.size())]});
  }
  Tuple missing = {domain[rng.Below(domain.size())],
                   domain[rng.Below(domain.size())]};
  auto wni_or =
      explain::MakeWhyNotInstanceFromAnswers(&instance, answers, missing);
  if (!wni_or.ok()) return;
  ASSERT_OK_AND_ASSIGN(bool exists,
                       explain::ExistsExplanation(&bound, wni_or.value()));
  ASSERT_OK_AND_ASSIGN(
      std::vector<Explanation> mges,
      explain::ExhaustiveSearchAllMge(&bound, wni_or.value()));
  EXPECT_EQ(exists, !mges.empty()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExistenceVsExhaustiveTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace whynot
