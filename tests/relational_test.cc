#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using rel::CmpOp;
using rel::ConjunctiveQuery;
using testutil::A;
using testutil::C;
using testutil::V;

TEST(SchemaTest, AddAndFind) {
  rel::Schema s = testutil::SimpleSchema();
  ASSERT_NE(s.Find("R"), nullptr);
  EXPECT_EQ(s.Find("R")->arity(), 2u);
  EXPECT_EQ(s.Find("R")->AttrIndex("b"), 1);
  EXPECT_EQ(s.Find("R")->AttrIndex("zzz"), -1);
  EXPECT_EQ(s.Find("nope"), nullptr);
  EXPECT_FALSE(s.AddRelation("R", {"x"}).ok());   // duplicate
  EXPECT_FALSE(s.AddRelation("E", {}).ok());      // arity 0
}

TEST(SchemaTest, ConstraintValidation) {
  rel::Schema s = testutil::SimpleSchema();
  EXPECT_OK(s.AddFd({"R", {0}, {1}}));
  EXPECT_FALSE(s.AddFd({"R", {0}, {5}}).ok());
  EXPECT_FALSE(s.AddFd({"Z", {0}, {1}}).ok());
  EXPECT_OK(s.AddId({"R", {0}, "U", {0}}));
  EXPECT_FALSE(s.AddId({"R", {0, 1}, "U", {0}}).ok());  // length mismatch
}

TEST(InstanceTest, AddFactsSetSemantics) {
  rel::Schema s = testutil::SimpleSchema();
  rel::Instance i(&s);
  ASSERT_OK(i.AddFact("R", {Value(1), Value(2)}));
  ASSERT_OK(i.AddFact("R", {Value(1), Value(2)}));  // duplicate ignored
  EXPECT_EQ(i.Relation("R").size(), 1u);
  EXPECT_TRUE(i.Contains("R", {Value(1), Value(2)}));
  EXPECT_FALSE(i.Contains("R", {Value(2), Value(1)}));
  EXPECT_FALSE(i.AddFact("R", {Value(1)}).ok());       // arity
  EXPECT_FALSE(i.AddFact("Z", {Value(1)}).ok());       // unknown
  EXPECT_EQ(i.NumFacts(), 1u);
}

TEST(InstanceTest, ActiveDomainSortedDistinct) {
  rel::Schema s = testutil::SimpleSchema();
  rel::Instance i(&s);
  ASSERT_OK(i.AddFact("R", {Value("b"), Value(3)}));
  ASSERT_OK(i.AddFact("U", {Value("b")}));
  ASSERT_OK(i.AddFact("U", {Value("a")}));
  std::vector<Value> adom = i.ActiveDomain();
  ASSERT_EQ(adom.size(), 3u);
  EXPECT_EQ(adom[0], Value(3));
  EXPECT_EQ(adom[1], Value("a"));
  EXPECT_EQ(adom[2], Value("b"));
}

TEST(ConstraintsTest, FdSatisfaction) {
  rel::Schema s = testutil::SimpleSchema();
  rel::FunctionalDependency fd{"R", {0}, {1}};
  rel::Instance good(&s);
  ASSERT_OK(good.AddFact("R", {Value(1), Value(2)}));
  ASSERT_OK(good.AddFact("R", {Value(2), Value(2)}));
  EXPECT_TRUE(SatisfiesFd(good, fd, nullptr));

  rel::Instance bad(&s);
  ASSERT_OK(bad.AddFact("R", {Value(1), Value(2)}));
  ASSERT_OK(bad.AddFact("R", {Value(1), Value(3)}));
  std::string why;
  EXPECT_FALSE(SatisfiesFd(bad, fd, &why));
  EXPECT_FALSE(why.empty());
}

TEST(ConstraintsTest, IdSatisfaction) {
  rel::Schema s = testutil::SimpleSchema();
  rel::InclusionDependency id{"R", {0}, "U", {0}};
  rel::Instance good(&s);
  ASSERT_OK(good.AddFact("R", {Value(1), Value(2)}));
  ASSERT_OK(good.AddFact("U", {Value(1)}));
  EXPECT_TRUE(SatisfiesId(good, id, nullptr));

  rel::Instance bad(&s);
  ASSERT_OK(bad.AddFact("R", {Value(1), Value(2)}));
  std::string why;
  EXPECT_FALSE(SatisfiesId(bad, id, &why));
  EXPECT_FALSE(why.empty());
}

TEST(ConstraintsTest, InstanceSatisfiesConstraints) {
  rel::Schema s = testutil::SimpleSchema();
  ASSERT_OK(s.AddFd({"R", {0}, {1}}));
  ASSERT_OK(s.AddId({"R", {1}, "U", {0}}));
  rel::Instance i(&s);
  ASSERT_OK(i.AddFact("R", {Value(1), Value(2)}));
  ASSERT_OK(i.AddFact("U", {Value(2)}));
  EXPECT_OK(i.SatisfiesConstraints());
  ASSERT_OK(i.AddFact("R", {Value(1), Value(3)}));  // violates the FD
  EXPECT_FALSE(i.SatisfiesConstraints().ok());
}

TEST(CmpTest, AllOperators) {
  EXPECT_TRUE(rel::EvalCmp(Value(1), CmpOp::kLt, Value(2)));
  EXPECT_TRUE(rel::EvalCmp(Value(2), CmpOp::kLe, Value(2)));
  EXPECT_TRUE(rel::EvalCmp(Value(3), CmpOp::kGt, Value(2)));
  EXPECT_TRUE(rel::EvalCmp(Value(2), CmpOp::kGe, Value(2)));
  EXPECT_TRUE(rel::EvalCmp(Value("a"), CmpOp::kEq, Value("a")));
  EXPECT_FALSE(rel::EvalCmp(Value("a"), CmpOp::kGt, Value("b")));
}

class CqEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = testutil::SimpleSchema();
    instance_ = std::make_unique<rel::Instance>(&schema_);
    // R = {(1,2), (2,3), (3,1), (2,2)}; U = {2, 3}.
    ASSERT_OK(instance_->AddFact("R", {Value(1), Value(2)}));
    ASSERT_OK(instance_->AddFact("R", {Value(2), Value(3)}));
    ASSERT_OK(instance_->AddFact("R", {Value(3), Value(1)}));
    ASSERT_OK(instance_->AddFact("R", {Value(2), Value(2)}));
    ASSERT_OK(instance_->AddFact("U", {Value(2)}));
    ASSERT_OK(instance_->AddFact("U", {Value(3)}));
  }
  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
};

TEST_F(CqEvalTest, SingleAtomProjection) {
  ConjunctiveQuery q;
  q.head = {"x"};
  q.atoms = {A("R", {V("x"), V("y")})};
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> ans, Evaluate(q, *instance_));
  EXPECT_EQ(ans, (std::vector<Tuple>{{Value(1)}, {Value(2)}, {Value(3)}}));
}

TEST_F(CqEvalTest, JoinViaSharedVariable) {
  // q(x, z) :- R(x, y), R(y, z).
  ConjunctiveQuery q;
  q.head = {"x", "z"};
  q.atoms = {A("R", {V("x"), V("y")}), A("R", {V("y"), V("z")})};
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> ans, Evaluate(q, *instance_));
  // (1,2)->(2,3),(2,2); (2,3)->(3,1); (3,1)->(1,2); (2,2)->(2,3),(2,2).
  std::vector<Tuple> expected = {{Value(1), Value(2)}, {Value(1), Value(3)},
                                 {Value(2), Value(1)}, {Value(2), Value(2)},
                                 {Value(2), Value(3)}, {Value(3), Value(2)}};
  EXPECT_EQ(ans, expected);
}

TEST_F(CqEvalTest, ComparisonsFilter) {
  // q(x) :- R(x, y), y >= 2, x < 3.
  ConjunctiveQuery q;
  q.head = {"x"};
  q.atoms = {A("R", {V("x"), V("y")})};
  q.comparisons = {{"y", CmpOp::kGe, Value(2)}, {"x", CmpOp::kLt, Value(3)}};
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> ans, Evaluate(q, *instance_));
  EXPECT_EQ(ans, (std::vector<Tuple>{{Value(1)}, {Value(2)}}));
}

TEST_F(CqEvalTest, ConstantsInAtoms) {
  // q(y) :- R(2, y).
  ConjunctiveQuery q;
  q.head = {"y"};
  q.atoms = {A("R", {C(Value(2)), V("y")})};
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> ans, Evaluate(q, *instance_));
  EXPECT_EQ(ans, (std::vector<Tuple>{{Value(2)}, {Value(3)}}));
}

TEST_F(CqEvalTest, RepeatedVariableInAtom) {
  // q(x) :- R(x, x).
  ConjunctiveQuery q;
  q.head = {"x"};
  q.atoms = {A("R", {V("x"), V("x")})};
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> ans, Evaluate(q, *instance_));
  EXPECT_EQ(ans, (std::vector<Tuple>{{Value(2)}}));
}

TEST_F(CqEvalTest, CrossJoinAndBooleanMatch) {
  ConjunctiveQuery q;
  q.head = {};
  q.atoms = {A("U", {V("x")}), A("R", {V("x"), V("x")})};
  ASSERT_OK_AND_ASSIGN(bool match, HasMatch(q, *instance_));
  EXPECT_TRUE(match);  // x = 2

  ConjunctiveQuery q2;
  q2.head = {};
  q2.atoms = {A("R", {V("x"), V("x")})};
  q2.comparisons = {{"x", CmpOp::kGt, Value(5)}};
  ASSERT_OK_AND_ASSIGN(bool match2, HasMatch(q2, *instance_));
  EXPECT_FALSE(match2);
}

TEST_F(CqEvalTest, UnionQueryDeduplicates) {
  ConjunctiveQuery q1;
  q1.head = {"x"};
  q1.atoms = {A("U", {V("x")})};
  ConjunctiveQuery q2;
  q2.head = {"x"};
  q2.atoms = {A("R", {V("x"), V("y")})};
  rel::UnionQuery u;
  u.disjuncts = {q1, q2};
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> ans, Evaluate(u, *instance_));
  EXPECT_EQ(ans, (std::vector<Tuple>{{Value(1)}, {Value(2)}, {Value(3)}}));
}

TEST_F(CqEvalTest, ValidationErrors) {
  ConjunctiveQuery q;
  q.head = {"w"};  // not in any atom
  q.atoms = {A("R", {V("x"), V("y")})};
  EXPECT_FALSE(Evaluate(q, *instance_).ok());

  ConjunctiveQuery q2;
  q2.head = {"x"};
  q2.atoms = {A("R", {V("x")})};  // wrong arity
  EXPECT_FALSE(Evaluate(q2, *instance_).ok());

  ConjunctiveQuery q3;
  q3.head = {"x"};
  q3.atoms = {A("Z", {V("x")})};  // unknown relation
  EXPECT_FALSE(Evaluate(q3, *instance_).ok());
}

TEST(CqToStringTest, ReadableRendering) {
  ConjunctiveQuery q;
  q.head = {"x"};
  q.atoms = {A("R", {V("x"), C(Value("c"))})};
  q.comparisons = {{"x", CmpOp::kGe, Value(5)}};
  EXPECT_EQ(q.ToString(), "q(x) :- R(x, \"c\"), x >= 5");
}

}  // namespace
}  // namespace whynot
