#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using ls::LsConcept;
using ls::Verdict;
using testutil::A;
using testutil::Q1;
using testutil::V;

LsConcept Parse(const std::string& text, const rel::Schema& schema) {
  auto c = ls::ParseConcept(text, schema);
  EXPECT_TRUE(c.ok()) << text << ": " << c.status().ToString();
  return c.ok() ? c.value() : LsConcept::Top();
}

// --- No constraints -------------------------------------------------------

class NoConstraintsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(schema_.AddRelation("Cities",
                                  {"name", "population", "country"}));
    ASSERT_OK(schema_.AddRelation("TC", {"from", "to"}));
  }
  rel::Schema schema_;
};

TEST_F(NoConstraintsTest, SelectionWeakeningHolds) {
  // π_name(σ_pop>5) ⊑S π_name(σ_pop>2) ⊑S π_name(Cities).
  EXPECT_TRUE(*ls::SubsumedSNoConstraints(
      Parse("pi[name](sigma[population > 5](Cities))", schema_),
      Parse("pi[name](sigma[population > 2](Cities))", schema_), schema_));
  EXPECT_TRUE(*ls::SubsumedSNoConstraints(
      Parse("pi[name](sigma[population > 5](Cities))", schema_),
      Parse("pi[name](Cities)", schema_), schema_));
  EXPECT_FALSE(*ls::SubsumedSNoConstraints(
      Parse("pi[name](sigma[population > 2](Cities))", schema_),
      Parse("pi[name](sigma[population > 5](Cities))", schema_), schema_));
}

TEST_F(NoConstraintsTest, BoundaryOperatorsExact) {
  // x >= 5 ⊑ x > 4 over a dense order, but x >= 5 ⋢ x > 5.
  EXPECT_TRUE(*ls::SubsumedSNoConstraints(
      Parse("pi[name](sigma[population >= 5](Cities))", schema_),
      Parse("pi[name](sigma[population > 4](Cities))", schema_), schema_));
  EXPECT_FALSE(*ls::SubsumedSNoConstraints(
      Parse("pi[name](sigma[population >= 5](Cities))", schema_),
      Parse("pi[name](sigma[population > 5](Cities))", schema_), schema_));
  EXPECT_TRUE(*ls::SubsumedSNoConstraints(
      Parse("pi[name](sigma[population = 5](Cities))", schema_),
      Parse("pi[name](sigma[population >= 5, population <= 5](Cities))",
            schema_),
      schema_));
}

TEST_F(NoConstraintsTest, DifferentColumnsIncomparable) {
  EXPECT_FALSE(*ls::SubsumedSNoConstraints(
      Parse("pi[name](Cities)", schema_), Parse("pi[from](TC)", schema_),
      schema_));
  EXPECT_FALSE(*ls::SubsumedSNoConstraints(
      Parse("pi[name](Cities)", schema_), Parse("pi[country](Cities)",
                                                schema_),
      schema_));
}

TEST_F(NoConstraintsTest, TopAndNominals) {
  EXPECT_TRUE(*ls::SubsumedSNoConstraints(
      Parse("pi[name](Cities)", schema_), LsConcept::Top(), schema_));
  EXPECT_FALSE(*ls::SubsumedSNoConstraints(
      LsConcept::Top(), Parse("pi[name](Cities)", schema_), schema_));
  EXPECT_TRUE(*ls::SubsumedSNoConstraints(LsConcept::Nominal(Value("x")),
                                          LsConcept::Nominal(Value("x")),
                                          schema_));
  EXPECT_FALSE(*ls::SubsumedSNoConstraints(LsConcept::Nominal(Value("x")),
                                           LsConcept::Nominal(Value("y")),
                                           schema_));
  // {x} ⊓ {y} is empty in every instance, hence subsumed by anything.
  EXPECT_TRUE(*ls::SubsumedSNoConstraints(
      LsConcept::Nominal(Value("x")).Intersect(LsConcept::Nominal(Value("y"))),
      Parse("pi[name](Cities)", schema_), schema_));
  // A nominal is not schema-subsumed by a projection (empty instances).
  EXPECT_FALSE(*ls::SubsumedSNoConstraints(
      LsConcept::Nominal(Value("x")), Parse("pi[name](Cities)", schema_),
      schema_));
}

TEST_F(NoConstraintsTest, IntersectionOnLhsHelps) {
  // C1 = π_name(σ_pop>5) ⊓ π_name(σ_country=X) is contained in both parts.
  LsConcept c1 = Parse(
      "pi[name](sigma[population > 5](Cities)) & "
      "pi[name](sigma[country = X](Cities))",
      schema_);
  EXPECT_TRUE(*ls::SubsumedSNoConstraints(
      c1, Parse("pi[name](sigma[population > 5](Cities))", schema_),
      schema_));
  EXPECT_TRUE(*ls::SubsumedSNoConstraints(
      c1, Parse("pi[name](sigma[country = X](Cities))", schema_), schema_));
  // But not in an unrelated selection.
  EXPECT_FALSE(*ls::SubsumedSNoConstraints(
      c1, Parse("pi[name](sigma[country = Y](Cities))", schema_), schema_));
}

TEST_F(NoConstraintsTest, SubsumedSImpliesSubsumedIOnRandomInstances) {
  // ⊑_S implies ⊑_I on every instance (Section 4.2).
  std::vector<std::pair<LsConcept, LsConcept>> pairs = {
      {Parse("pi[name](sigma[population > 5](Cities))", schema_),
       Parse("pi[name](sigma[population > 2](Cities))", schema_)},
      {Parse("pi[from](TC)", schema_), Parse("pi[from](TC)", schema_)},
  };
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                         workload::RandomInstance(&schema_, 12, 9, seed));
    for (const auto& [c1, c2] : pairs) {
      ASSERT_OK_AND_ASSIGN(bool schema_sub,
                           ls::SubsumedSNoConstraints(c1, c2, schema_));
      if (schema_sub) {
        EXPECT_TRUE(ls::SubsumedI(c1, c2, instance)) << "seed " << seed;
      }
    }
  }
}

// --- FDs (Table 1 row 5, PTIME) -------------------------------------------

class FdSubsumptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(schema_.AddRelation("Cities",
                                  {"name", "population", "country",
                                   "continent"}));
    // country → continent.
    ASSERT_OK(schema_.AddFd({"Cities", {2}, {3}}));
    // name → population, country, continent (name is a key).
    ASSERT_OK(schema_.AddFd({"Cities", {0}, {1, 2, 3}}));
  }
  rel::Schema schema_;
};

TEST_F(FdSubsumptionTest, KeyMergesConjuncts) {
  // C1 = π_name(σ_country=NL) ⊓ π_name(σ_pop>5): both atoms share the key
  // (the output), so the FD chase unifies them; the merged atom has
  // country = NL and population > 5, entailing π_name(σ_country=NL ∧ pop>0).
  LsConcept c1 = Parse(
      "pi[name](sigma[country = NL](Cities)) & "
      "pi[name](sigma[population > 5](Cities))",
      schema_);
  LsConcept c2 = Parse(
      "pi[name](sigma[country = NL, population > 0](Cities))", schema_);
  ASSERT_OK_AND_ASSIGN(bool sub, ls::SubsumedSFds(c1, c2, schema_));
  EXPECT_TRUE(sub);
  // Without the key FD this fails: the two atoms need not be the same row.
  rel::Schema no_key;
  ASSERT_OK(no_key.AddRelation("Cities",
                               {"name", "population", "country",
                                "continent"}));
  ASSERT_OK_AND_ASSIGN(bool sub2, ls::SubsumedSFds(
                                      Parse("pi[name](sigma[country = "
                                            "NL](Cities)) & "
                                            "pi[name](sigma[population > "
                                            "5](Cities))",
                                            no_key),
                                      Parse("pi[name](sigma[country = NL, "
                                            "population > 0](Cities))",
                                            no_key),
                                      no_key));
  EXPECT_FALSE(sub2);
}

TEST_F(FdSubsumptionTest, ContradictoryMergeMeansEmpty) {
  // name → country: the same name cannot have two countries, so C1 is
  // empty in every legal instance and subsumed by anything.
  LsConcept c1 = Parse(
      "pi[name](sigma[country = NL](Cities)) & "
      "pi[name](sigma[country = DE](Cities))",
      schema_);
  ASSERT_OK_AND_ASSIGN(
      bool sub,
      ls::SubsumedSFds(c1, Parse("pi[population](Cities)", schema_), schema_));
  EXPECT_TRUE(sub);
}

TEST_F(FdSubsumptionTest, RejectsWrongConstraintClass) {
  rel::Schema with_id;
  ASSERT_OK(with_id.AddRelation("R", {"a"}));
  ASSERT_OK(with_id.AddRelation("S", {"a"}));
  ASSERT_OK(with_id.AddId({"R", {0}, "S", {0}}));
  EXPECT_FALSE(ls::SubsumedSFds(LsConcept::Top(), LsConcept::Top(), with_id)
                   .ok());
}

// --- IDs, selection-free (Table 1 row 6) ----------------------------------

class IdSubsumptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(schema_.AddRelation("BigCity", {"name"}));
    ASSERT_OK(schema_.AddRelation("TC", {"from", "to"}));
    ASSERT_OK(schema_.AddRelation("Cities", {"name", "pop"}));
    ASSERT_OK(schema_.AddId({"BigCity", {0}, "TC", {0}}));
    ASSERT_OK(schema_.AddId({"TC", {0}, "Cities", {0}}));
    ASSERT_OK(schema_.AddId({"TC", {1}, "Cities", {0}}));
  }
  rel::Schema schema_;
};

TEST_F(IdSubsumptionTest, DirectAndTransitiveReachability) {
  EXPECT_TRUE(*ls::SubsumedSIdsSelectionFree(
      Parse("pi[name](BigCity)", schema_), Parse("pi[from](TC)", schema_),
      schema_));
  // Transitive: BigCity[name] ⊆ TC[from] ⊆ Cities[name].
  EXPECT_TRUE(*ls::SubsumedSIdsSelectionFree(
      Parse("pi[name](BigCity)", schema_), Parse("pi[name](Cities)", schema_),
      schema_));
  EXPECT_FALSE(*ls::SubsumedSIdsSelectionFree(
      Parse("pi[from](TC)", schema_), Parse("pi[name](BigCity)", schema_),
      schema_));
  EXPECT_FALSE(*ls::SubsumedSIdsSelectionFree(
      Parse("pi[name](BigCity)", schema_), Parse("pi[pop](Cities)", schema_),
      schema_));
}

TEST_F(IdSubsumptionTest, ConjunctionsAndNominals) {
  // Any conjunct reaching the target suffices.
  EXPECT_TRUE(*ls::SubsumedSIdsSelectionFree(
      Parse("pi[name](BigCity) & pi[pop](Cities)", schema_),
      Parse("pi[name](Cities)", schema_), schema_));
  // Two distinct nominals: empty everywhere.
  EXPECT_TRUE(*ls::SubsumedSIdsSelectionFree(
      LsConcept::Nominal(Value("x")).Intersect(LsConcept::Nominal(Value("y"))),
      Parse("pi[pop](Cities)", schema_), schema_));
  // A nominal target requires the same nominal on the left.
  EXPECT_TRUE(*ls::SubsumedSIdsSelectionFree(
      LsConcept::Nominal(Value("x")).Intersect(
          Parse("pi[name](BigCity)", schema_)),
      LsConcept::Nominal(Value("x")), schema_));
  EXPECT_FALSE(*ls::SubsumedSIdsSelectionFree(
      Parse("pi[name](BigCity)", schema_), LsConcept::Nominal(Value("x")),
      schema_));
}

TEST_F(IdSubsumptionTest, SelectionsRejectedAsOpen) {
  Result<bool> r = ls::SubsumedSIdsSelectionFree(
      Parse("pi[name](BigCity)", schema_),
      Parse("pi[name](sigma[pop > 5](Cities))", schema_), schema_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

// --- Views (Table 1 rows 1-4) ----------------------------------------------

class ViewSubsumptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK(schema_.AddRelation("Cities",
                                  {"name", "population", "continent"}));
    // BigCity(x) <-> Cities(x, y, w) ∧ y >= 5000000.
    rel::ConjunctiveQuery big;
    big.head = {"x"};
    big.atoms = {A("Cities", {V("x"), V("y"), V("w")})};
    big.comparisons = {{"y", rel::CmpOp::kGe, Value(5000000)}};
    ASSERT_OK(schema_.AddView("BigCity", {"name"}, Q1(big)));
    // AnyCity(x) <-> Cities(x, y, w).
    rel::ConjunctiveQuery any;
    any.head = {"x"};
    any.atoms = {A("Cities", {V("x"), V("y"), V("w")})};
    ASSERT_OK(schema_.AddView("AnyCity", {"name"}, Q1(any)));
  }
  rel::Schema schema_;
};

TEST_F(ViewSubsumptionTest, ViewUnfoldingDecides) {
  // From the definitions: σ_pop>7M cities are BigCities; BigCities are
  // cities (Example 4.9, first two subsumptions adapted).
  EXPECT_TRUE(*ls::SubsumedSViews(
      Parse("pi[name](sigma[population > 7000000](Cities))", schema_),
      Parse("pi[name](BigCity)", schema_), schema_));
  EXPECT_TRUE(*ls::SubsumedSViews(Parse("pi[name](BigCity)", schema_),
                                  Parse("pi[name](Cities)", schema_),
                                  schema_));
  EXPECT_TRUE(*ls::SubsumedSViews(Parse("pi[name](BigCity)", schema_),
                                  Parse("pi[name](AnyCity)", schema_),
                                  schema_));
  EXPECT_FALSE(*ls::SubsumedSViews(
      Parse("pi[name](sigma[population > 1000000](Cities))", schema_),
      Parse("pi[name](BigCity)", schema_), schema_));
  EXPECT_FALSE(*ls::SubsumedSViews(Parse("pi[name](AnyCity)", schema_),
                                   Parse("pi[name](BigCity)", schema_),
                                   schema_));
}

TEST_F(ViewSubsumptionTest, UnionViewsNeedAllDisjunctsContained) {
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("P", {"a"}));
  ASSERT_OK(schema.AddRelation("Q", {"a"}));
  rel::ConjunctiveQuery from_p;
  from_p.head = {"x"};
  from_p.atoms = {A("P", {V("x")})};
  rel::ConjunctiveQuery from_q;
  from_q.head = {"x"};
  from_q.atoms = {A("Q", {V("x")})};
  rel::UnionQuery both;
  both.disjuncts = {from_p, from_q};
  ASSERT_OK(schema.AddView("Either", {"a"}, std::move(both)));
  // P ⊑ Either, but Either ⋢ P.
  EXPECT_TRUE(*ls::SubsumedSViews(Parse("pi[a](P)", schema),
                                  Parse("pi[a](Either)", schema), schema));
  EXPECT_FALSE(*ls::SubsumedSViews(Parse("pi[a](Either)", schema),
                                   Parse("pi[a](P)", schema), schema));
}

// --- Dispatcher and undecidable mixtures -----------------------------------

TEST(SubsumedSDispatcherTest, RoutesByConstraintClass) {
  rel::Schema plain;
  ASSERT_OK(plain.AddRelation("R", {"a", "b"}));
  EXPECT_TRUE(ls::SubsumedS(LsConcept::Projection("R", 0),
                            LsConcept::Top(), plain)
                  .ok());

  rel::Schema fds = plain;
  ASSERT_OK(fds.AddFd({"R", {0}, {1}}));
  EXPECT_TRUE(
      ls::SubsumedS(LsConcept::Projection("R", 0), LsConcept::Top(), fds)
          .ok());

  rel::Schema mixed = fds;
  ASSERT_OK(mixed.AddId({"R", {0}, "R", {1}}));
  Result<bool> r =
      ls::SubsumedS(LsConcept::Projection("R", 0), LsConcept::Top(), mixed);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(BestEffortTest, Example49SubsumptionsProved) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesSchema());
  struct Case {
    const char* sub;
    const char* super;
  };
  const Case cases[] = {
      {"pi[name](sigma[continent = Europe](Cities))", "pi[name](Cities)"},
      {"pi[name](sigma[population > 7000000](Cities))", "pi[name](BigCity)"},
      {"pi[name](BigCity)", "pi[name](Cities)"},
      // Via the ID BigCity[name] ⊆ TC[city_from].
      {"pi[name](BigCity)", "pi[city_from](Train-Connections)"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(ls::SubsumedSBestEffort(Parse(c.sub, schema),
                                      Parse(c.super, schema), schema),
              Verdict::kYes)
        << c.sub << " ⊑S " << c.super;
  }
  // Not schema-derivable: reachable-from-Amsterdam vs reachable-from-Berlin.
  EXPECT_EQ(ls::SubsumedSBestEffort(
                Parse("pi[city_to](sigma[city_from = Amsterdam](Reachable))",
                      schema),
                Parse("pi[city_to](sigma[city_from = Berlin](Reachable))",
                      schema),
                schema),
            Verdict::kUnknown);
}

TEST(BestEffortTest, CompleteClassesGetExactVerdicts) {
  rel::Schema plain;
  ASSERT_OK(plain.AddRelation("R", {"a", "b"}));
  EXPECT_EQ(ls::SubsumedSBestEffort(LsConcept::Projection("R", 0),
                                    LsConcept::Top(), plain),
            Verdict::kYes);
  EXPECT_EQ(ls::SubsumedSBestEffort(LsConcept::Top(),
                                    LsConcept::Projection("R", 0), plain),
            Verdict::kNo);
}

}  // namespace
}  // namespace whynot
