#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using ls::LsConcept;
using ls::LubContext;

class LubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
    ctx_ = std::make_unique<LubContext>(instance_.get());
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<LubContext> ctx_;
};

TEST_F(LubTest, SingletonLubIsNominalPinned) {
  LsConcept lub = ctx_->LubSelectionFree({Value("Amsterdam")});
  ls::Extension ext = ls::Eval(lub, *instance_);
  // The nominal conjunct pins the extension to exactly {Amsterdam}.
  EXPECT_EQ(ext.values(), std::vector<Value>{Value("Amsterdam")});
}

TEST_F(LubTest, LubContainsItsInput) {
  std::vector<Value> x = {Value("Amsterdam"), Value("Berlin"),
                          Value("Tokyo")};
  LsConcept lub = ctx_->LubSelectionFree(x);
  ls::Extension ext = ls::Eval(lub, *instance_);
  for (const Value& v : x) EXPECT_TRUE(ext.Contains(v));
}

TEST_F(LubTest, CityNamesLubIsNameColumnIntersection) {
  // {Amsterdam, Kyoto} appear in Cities.name and in TC columns partially;
  // the lub must be the intersection of all covering columns.
  LsConcept lub = ctx_->LubSelectionFree({Value("Amsterdam"), Value("Kyoto")});
  ls::Extension ext = ls::Eval(lub, *instance_);
  // Cities.name covers both; TC.city_to covers both (Berlin<-, Kyoto<-...):
  // Amsterdam and Kyoto are both train destinations. TC.city_from does not
  // cover Kyoto. So ext = name-column ∩ city_to-column.
  EXPECT_TRUE(ext.Contains(Value("Amsterdam")));
  EXPECT_TRUE(ext.Contains(Value("Kyoto")));
  EXPECT_FALSE(ext.Contains(Value("Tokyo")));  // Tokyo is never a city_to
  EXPECT_FALSE(ext.Contains(Value("New York")));
}

TEST_F(LubTest, OutOfDomainSetFallsBackToTop) {
  LsConcept lub =
      ctx_->LubSelectionFree({Value("Mars"), Value("Venus")});
  EXPECT_TRUE(lub.IsTop());
}

TEST_F(LubTest, MixedTypeSetFallsBackToTop) {
  // No column contains both a city name and a population number.
  LsConcept lub =
      ctx_->LubSelectionFree({Value("Amsterdam"), Value(779808)});
  EXPECT_TRUE(lub.IsTop());
}

/// Lemma 5.1 minimality: no selection-free concept has a strictly smaller
/// extension while still containing X. Verified by brute force over all
/// selection-free conjunct intersections (the extension lattice) on the
/// small Figure 2 instance.
TEST_F(LubTest, SelectionFreeMinimalityBruteForce) {
  std::vector<std::vector<Value>> inputs = {
      {Value("Amsterdam")},
      {Value("Amsterdam"), Value("Berlin")},
      {Value("New York"), Value("Tokyo")},
      {Value("USA"), Value("Japan")},
      {Value(779808), Value(59946)},
  };
  // All selection-free conjuncts.
  std::vector<LsConcept> conjuncts;
  for (const rel::RelationDef& def : schema_.relations()) {
    for (size_t a = 0; a < def.arity(); ++a) {
      conjuncts.push_back(
          LsConcept::Projection(def.name(), static_cast<int>(a)));
    }
  }
  for (const std::vector<Value>& x : inputs) {
    LsConcept lub = ctx_->LubSelectionFree(x);
    ls::Extension lub_ext = ls::Eval(lub, *instance_);
    for (const Value& v : x) ASSERT_TRUE(lub_ext.Contains(v));
    // The brute-force smallest extension: intersect every conjunct that
    // contains X (plus the nominal when |X| = 1).
    ls::Extension best = ls::Extension::All();
    for (const LsConcept& c : conjuncts) {
      ls::Extension e = ls::Eval(c, *instance_);
      bool covers = true;
      for (const Value& v : x) covers &= e.Contains(v);
      if (covers) best = best.Intersect(e);
    }
    if (x.size() == 1) {
      best = best.Intersect(ls::Eval(LsConcept::Nominal(x[0]), *instance_));
    }
    EXPECT_EQ(lub_ext, best) << "X = " << TupleToString(x);
  }
}

TEST_F(LubTest, LubWithSelectionsIsAtLeastAsSpecific) {
  std::vector<Value> x = {Value("Amsterdam"), Value("Berlin")};
  LsConcept free_lub = ctx_->LubSelectionFree(x);
  ASSERT_OK_AND_ASSIGN(LsConcept sel_lub, ctx_->LubWithSelections(x));
  ls::Extension free_ext = ls::Eval(free_lub, *instance_);
  ls::Extension sel_ext = ls::Eval(sel_lub, *instance_);
  EXPECT_TRUE(sel_ext.SubsetOf(free_ext));
  for (const Value& v : x) EXPECT_TRUE(sel_ext.Contains(v));
  // With selections, {Amsterdam, Berlin} is pinned exactly: the canonical
  // box name ∈ [Amsterdam..Berlin] selects precisely those rows.
  EXPECT_EQ(sel_ext.values(),
            (std::vector<Value>{Value("Amsterdam"), Value("Berlin")}));
}

/// Lemma 5.2 minimality against the canonical-box concept space.
TEST_F(LubTest, WithSelectionsMinimalityBruteForce) {
  std::vector<std::vector<Value>> inputs = {
      {Value("Amsterdam"), Value("Rome")},
      {Value("New York"), Value("San Francisco")},
      {Value(3502000), Value(2753000)},
  };
  // The full single-conjunct concept pool.
  std::vector<LsConcept> pool;
  for (const rel::RelationDef& def : schema_.relations()) {
    ASSERT_OK_AND_ASSIGN(std::vector<LsConcept> sel,
                         ctx_->CanonicalSelectionConcepts(def.name()));
    pool.insert(pool.end(), sel.begin(), sel.end());
  }
  for (const std::vector<Value>& x : inputs) {
    ASSERT_OK_AND_ASSIGN(LsConcept lub, ctx_->LubWithSelections(x));
    ls::Extension lub_ext = ls::Eval(lub, *instance_);
    ls::Extension best = ls::Extension::All();
    for (const LsConcept& c : pool) {
      ls::Extension e = ls::Eval(c, *instance_);
      bool covers = true;
      for (const Value& v : x) covers &= e.Contains(v);
      if (covers) best = best.Intersect(e);
    }
    EXPECT_EQ(lub_ext, best) << "X = " << TupleToString(x);
  }
}

TEST_F(LubTest, BoxCountsReported) {
  ASSERT_OK(ctx_->LubWithSelections({Value("Amsterdam")}).status().ok()
                ? Status::OK()
                : Status::OK());
  EXPECT_GT(ctx_->NumBoxes("Train-Connections"), 0u);
  EXPECT_GT(ctx_->NumBoxes("Cities"), ctx_->NumBoxes("Train-Connections"));
}

TEST_F(LubTest, BoxCapReportsResourceExhausted) {
  ls::LubOptions options;
  options.max_boxes_per_relation = 10;
  LubContext tight(instance_.get(), options);
  Result<LsConcept> lub = tight.LubWithSelections({Value("Amsterdam")});
  ASSERT_FALSE(lub.ok());
  EXPECT_EQ(lub.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace whynot
