#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "test_util.h"
#include "whynot/common/algorithm.h"

namespace whynot {
namespace {

using ls::LsConcept;
using ls::LubContext;

class LubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
    ctx_ = std::make_unique<LubContext>(instance_.get());
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<LubContext> ctx_;
};

TEST_F(LubTest, SingletonLubIsNominalPinned) {
  LsConcept lub = ctx_->LubSelectionFree({Value("Amsterdam")});
  ls::Extension ext = ls::Eval(lub, *instance_);
  // The nominal conjunct pins the extension to exactly {Amsterdam}.
  EXPECT_EQ(ext.values(), std::vector<Value>{Value("Amsterdam")});
}

TEST_F(LubTest, LubContainsItsInput) {
  std::vector<Value> x = {Value("Amsterdam"), Value("Berlin"),
                          Value("Tokyo")};
  LsConcept lub = ctx_->LubSelectionFree(x);
  ls::Extension ext = ls::Eval(lub, *instance_);
  for (const Value& v : x) EXPECT_TRUE(ext.Contains(v));
}

TEST_F(LubTest, CityNamesLubIsNameColumnIntersection) {
  // {Amsterdam, Kyoto} appear in Cities.name and in TC columns partially;
  // the lub must be the intersection of all covering columns.
  LsConcept lub = ctx_->LubSelectionFree({Value("Amsterdam"), Value("Kyoto")});
  ls::Extension ext = ls::Eval(lub, *instance_);
  // Cities.name covers both; TC.city_to covers both (Berlin<-, Kyoto<-...):
  // Amsterdam and Kyoto are both train destinations. TC.city_from does not
  // cover Kyoto. So ext = name-column ∩ city_to-column.
  EXPECT_TRUE(ext.Contains(Value("Amsterdam")));
  EXPECT_TRUE(ext.Contains(Value("Kyoto")));
  EXPECT_FALSE(ext.Contains(Value("Tokyo")));  // Tokyo is never a city_to
  EXPECT_FALSE(ext.Contains(Value("New York")));
}

TEST_F(LubTest, OutOfDomainSetFallsBackToTop) {
  LsConcept lub =
      ctx_->LubSelectionFree({Value("Mars"), Value("Venus")});
  EXPECT_TRUE(lub.IsTop());
}

TEST_F(LubTest, MixedTypeSetFallsBackToTop) {
  // No column contains both a city name and a population number.
  LsConcept lub =
      ctx_->LubSelectionFree({Value("Amsterdam"), Value(779808)});
  EXPECT_TRUE(lub.IsTop());
}

/// Lemma 5.1 minimality: no selection-free concept has a strictly smaller
/// extension while still containing X. Verified by brute force over all
/// selection-free conjunct intersections (the extension lattice) on the
/// small Figure 2 instance.
TEST_F(LubTest, SelectionFreeMinimalityBruteForce) {
  std::vector<std::vector<Value>> inputs = {
      {Value("Amsterdam")},
      {Value("Amsterdam"), Value("Berlin")},
      {Value("New York"), Value("Tokyo")},
      {Value("USA"), Value("Japan")},
      {Value(779808), Value(59946)},
  };
  // All selection-free conjuncts.
  std::vector<LsConcept> conjuncts;
  for (const rel::RelationDef& def : schema_.relations()) {
    for (size_t a = 0; a < def.arity(); ++a) {
      conjuncts.push_back(
          LsConcept::Projection(def.name(), static_cast<int>(a)));
    }
  }
  for (const std::vector<Value>& x : inputs) {
    LsConcept lub = ctx_->LubSelectionFree(x);
    ls::Extension lub_ext = ls::Eval(lub, *instance_);
    for (const Value& v : x) ASSERT_TRUE(lub_ext.Contains(v));
    // The brute-force smallest extension: intersect every conjunct that
    // contains X (plus the nominal when |X| = 1).
    ls::Extension best = ls::Extension::All();
    for (const LsConcept& c : conjuncts) {
      ls::Extension e = ls::Eval(c, *instance_);
      bool covers = true;
      for (const Value& v : x) covers &= e.Contains(v);
      if (covers) best = best.Intersect(e);
    }
    if (x.size() == 1) {
      best = best.Intersect(ls::Eval(LsConcept::Nominal(x[0]), *instance_));
    }
    EXPECT_EQ(lub_ext, best) << "X = " << TupleToString(x);
  }
}

TEST_F(LubTest, LubWithSelectionsIsAtLeastAsSpecific) {
  std::vector<Value> x = {Value("Amsterdam"), Value("Berlin")};
  LsConcept free_lub = ctx_->LubSelectionFree(x);
  ASSERT_OK_AND_ASSIGN(LsConcept sel_lub, ctx_->LubWithSelections(x));
  ls::Extension free_ext = ls::Eval(free_lub, *instance_);
  ls::Extension sel_ext = ls::Eval(sel_lub, *instance_);
  EXPECT_TRUE(sel_ext.SubsetOf(free_ext));
  for (const Value& v : x) EXPECT_TRUE(sel_ext.Contains(v));
  // With selections, {Amsterdam, Berlin} is pinned exactly: the canonical
  // box name ∈ [Amsterdam..Berlin] selects precisely those rows.
  EXPECT_EQ(sel_ext.values(),
            (std::vector<Value>{Value("Amsterdam"), Value("Berlin")}));
}

/// Lemma 5.2 minimality against the canonical-box concept space.
TEST_F(LubTest, WithSelectionsMinimalityBruteForce) {
  std::vector<std::vector<Value>> inputs = {
      {Value("Amsterdam"), Value("Rome")},
      {Value("New York"), Value("San Francisco")},
      {Value(3502000), Value(2753000)},
  };
  // The full single-conjunct concept pool.
  std::vector<LsConcept> pool;
  for (const rel::RelationDef& def : schema_.relations()) {
    ASSERT_OK_AND_ASSIGN(std::vector<LsConcept> sel,
                         ctx_->CanonicalSelectionConcepts(def.name()));
    pool.insert(pool.end(), sel.begin(), sel.end());
  }
  for (const std::vector<Value>& x : inputs) {
    ASSERT_OK_AND_ASSIGN(LsConcept lub, ctx_->LubWithSelections(x));
    ls::Extension lub_ext = ls::Eval(lub, *instance_);
    ls::Extension best = ls::Extension::All();
    for (const LsConcept& c : pool) {
      ls::Extension e = ls::Eval(c, *instance_);
      bool covers = true;
      for (const Value& v : x) covers &= e.Contains(v);
      if (covers) best = best.Intersect(e);
    }
    EXPECT_EQ(lub_ext, best) << "X = " << TupleToString(x);
  }
}

TEST_F(LubTest, BoxCountsReported) {
  ASSERT_OK(ctx_->LubWithSelections({Value("Amsterdam")}).status().ok()
                ? Status::OK()
                : Status::OK());
  EXPECT_GT(ctx_->NumBoxes("Train-Connections"), 0u);
  EXPECT_GT(ctx_->NumBoxes("Cities"), ctx_->NumBoxes("Train-Connections"));
}

TEST_F(LubTest, BoxCapReportsResourceExhausted) {
  ls::LubOptions options;
  options.max_boxes_per_relation = 10;
  LubContext tight(instance_.get(), options);
  Result<LsConcept> lub = tight.LubWithSelections({Value("Amsterdam")});
  ASSERT_FALSE(lub.ok());
  EXPECT_EQ(lub.status().code(), StatusCode::kResourceExhausted);
}

// --- Run-length vs. per-tuple trace-walk oracle ----------------------------

/// The reference formulation of the canonical-box decomposition: the
/// per-tuple trace walk. `selected` is a sorted tuple-index vector,
/// narrowing to a run [a..b] copies the matching indices one by one, and
/// boxes canonicalize by their trace with the first enumeration winning
/// (fewest selections — the unconstrained option recurses first). The
/// production BuildBoxes computes the same enumeration columnar over
/// run-length bitmaps; box count, order, and selections must agree.
struct OracleBox {
  std::vector<ls::Selection> selections;
  std::vector<uint32_t> tuples;
};

std::vector<OracleBox> TraceWalkBoxes(const std::vector<Tuple>& rows,
                                      size_t arity) {
  size_t n = rows.size();
  std::vector<std::vector<Value>> distinct(arity);
  for (size_t j = 0; j < arity; ++j) {
    for (const Tuple& t : rows) distinct[j].push_back(t[j]);
    SortUnique(&distinct[j]);
  }
  std::vector<std::vector<int>> vi(arity, std::vector<int>(n, 0));
  for (size_t j = 0; j < arity; ++j) {
    for (size_t i = 0; i < n; ++i) {
      vi[j][i] = static_cast<int>(
          std::lower_bound(distinct[j].begin(), distinct[j].end(),
                           rows[i][j]) -
          distinct[j].begin());
    }
  }
  std::map<std::vector<uint32_t>, size_t> seen;
  std::vector<OracleBox> boxes;
  std::vector<ls::Selection> current;
  auto recurse = [&](auto&& self, size_t j,
                     const std::vector<uint32_t>& selected) -> void {
    if (selected.empty()) return;
    if (j == arity) {
      if (seen.emplace(selected, boxes.size()).second) {
        boxes.push_back(OracleBox{current, selected});
      }
      return;
    }
    self(self, j + 1, selected);
    int k = static_cast<int>(distinct[j].size());
    for (int a = 0; a < k; ++a) {
      for (int b = a; b < k; ++b) {
        if (a == 0 && b == k - 1) continue;
        std::vector<uint32_t> narrowed;
        for (uint32_t i : selected) {
          if (vi[j][i] >= a && vi[j][i] <= b) narrowed.push_back(i);
        }
        if (narrowed.empty()) continue;
        size_t mark = current.size();
        int ja = static_cast<int>(j);
        if (a == b) {
          current.push_back({ja, rel::CmpOp::kEq, distinct[j][a]});
        } else {
          if (a > 0) {
            current.push_back({ja, rel::CmpOp::kGe, distinct[j][a]});
          }
          if (b < k - 1) {
            current.push_back({ja, rel::CmpOp::kLe, distinct[j][b]});
          }
        }
        self(self, j + 1, narrowed);
        current.resize(mark);
      }
    }
  };
  std::vector<uint32_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
  recurse(recurse, 0, all);
  return boxes;
}

class RunLengthOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RunLengthOracleTest, BoxesMatchTraceWalkOnDuplicateHeavyColumns) {
  // Duplicate-heavy: 40 rows over a 4-value domain gives runs that cover
  // many tuples each — the regime the run-length formulation accelerates —
  // while the near-unique Cities columns below exercise the scalar
  // fallback.
  ASSERT_OK_AND_ASSIGN(rel::Schema schema,
                       workload::RandomSchema(2, {2, 3}));
  ASSERT_OK_AND_ASSIGN(
      rel::Instance instance,
      workload::RandomInstance(&schema, /*rows_per_relation=*/40,
                               /*domain=*/4, GetParam()));
  LubContext ctx(&instance);
  for (const rel::RelationDef& def : schema.relations()) {
    const std::vector<Tuple>& rows = instance.Relation(def.name());
    std::vector<OracleBox> oracle = TraceWalkBoxes(rows, def.arity());
    EXPECT_EQ(ctx.NumBoxes(def.name()), oracle.size()) << def.name();
    // Box order and selections must both match: CanonicalSelectionConcepts
    // emits one concept per (box, attribute) in first-enumeration order.
    ASSERT_OK_AND_ASSIGN(std::vector<LsConcept> got,
                         ctx.CanonicalSelectionConcepts(def.name()));
    std::vector<std::string> want;
    for (const OracleBox& box : oracle) {
      for (size_t a = 0; a < def.arity(); ++a) {
        want.push_back(LsConcept::Projection(def.name(), static_cast<int>(a),
                                             box.selections)
                           .ToString());
      }
    }
    ASSERT_EQ(got.size(), want.size()) << def.name();
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].ToString(), want[i]) << def.name() << " box " << i;
    }
  }
}

TEST_P(RunLengthOracleTest, LubWithSelectionsMatchesBruteForceMinimality) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema,
                       workload::RandomSchema(2, {2, 2}));
  ASSERT_OK_AND_ASSIGN(
      rel::Instance instance,
      workload::RandomInstance(&schema, /*rows_per_relation=*/40,
                               /*domain=*/4, GetParam() ^ 0xb0b0ull));
  LubContext ctx(&instance);
  std::vector<LsConcept> pool;
  for (const rel::RelationDef& def : schema.relations()) {
    ASSERT_OK_AND_ASSIGN(std::vector<LsConcept> sel,
                         ctx.CanonicalSelectionConcepts(def.name()));
    pool.insert(pool.end(), sel.begin(), sel.end());
  }
  const std::vector<Value>& adom = instance.ActiveDomain();
  ASSERT_GE(adom.size(), 2u);
  workload::Rng rng(GetParam() ^ 0xd1ceull);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Value> x = {adom[rng.Below(adom.size())],
                            adom[rng.Below(adom.size())]};
    SortUnique(&x);
    ASSERT_OK_AND_ASSIGN(LsConcept lub, ctx.LubWithSelections(x));
    ls::Extension lub_ext = ls::Eval(lub, instance);
    ls::Extension best = ls::Extension::All();
    for (const LsConcept& c : pool) {
      ls::Extension e = ls::Eval(c, instance);
      bool covers = true;
      for (const Value& v : x) covers &= e.Contains(v);
      if (covers) best = best.Intersect(e);
    }
    if (x.size() == 1) {
      best = best.Intersect(ls::Eval(LsConcept::Nominal(x[0]), instance));
    }
    EXPECT_EQ(lub_ext, best) << "X = " << TupleToString(x);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunLengthOracleTest,
                         ::testing::Values(3ull, 71ull, 512ull, 8191ull));

// The Cities instance has near-unique columns (every name distinct), which
// drives BuildBoxes into its scalar set-bit fallback; the oracle must
// still agree there.
TEST_F(LubTest, RunLengthMatchesTraceWalkOnNearUniqueColumns) {
  for (const rel::RelationDef& def : schema_.relations()) {
    const std::vector<Tuple>& rows = instance_->Relation(def.name());
    std::vector<OracleBox> oracle = TraceWalkBoxes(rows, def.arity());
    EXPECT_EQ(ctx_->NumBoxes(def.name()), oracle.size()) << def.name();
  }
}

}  // namespace
}  // namespace whynot
