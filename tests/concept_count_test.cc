#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

TEST(ConceptCountTest, MinimalCountMatchesEnumeration) {
  // Proposition 4.2: |LminS[K]| = 1 + |K| + Σ arity(R) — and the
  // enumerator must produce exactly that many concepts.
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesDataSchema());
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::CitiesInstance(&schema));
  std::vector<Value> constants;
  for (int i = 0; i < 5; ++i) constants.push_back(Value(i));
  ls::ConceptCounts counts = ls::CountConcepts(schema, constants.size());
  // Cities arity 4 + TC arity 2 = 6 positions; 1 + 5 + 6 = 12.
  EXPECT_FALSE(counts.minimal.overflow);
  EXPECT_EQ(counts.minimal.exact, 12u);
  ASSERT_OK_AND_ASSIGN(
      std::vector<ls::LsConcept> enumerated,
      ls::EnumerateConjunctConcepts(instance, constants,
                                    ls::Fragment::kMinimal, 10000));
  EXPECT_EQ(enumerated.size(), counts.minimal.exact);
}

TEST(ConceptCountTest, GrowthOrdersMatchProposition42) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesDataSchema());
  ls::ConceptCounts small = ls::CountConcepts(schema, 4);
  ls::ConceptCounts big = ls::CountConcepts(schema, 8);
  // Minimal: polynomial (linear in |K|).
  EXPECT_EQ(big.minimal.exact - small.minimal.exact, 4u);
  // Selection-free: single exponential — log2 grows linearly with |K|.
  EXPECT_NEAR(big.selection_free.log2 - small.selection_free.log2, 4.0, 1e-6);
  // Full LS[K]: double exponential — log2 itself grows exponentially.
  EXPECT_GT(big.full.log2, small.full.log2 * 4);
  EXPECT_TRUE(big.full.overflow);
  EXPECT_FALSE(big.full.ToString().empty());
}

TEST(ConceptCountTest, IntersectionFreeSingleExponential) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesDataSchema());
  ls::ConceptCounts a = ls::CountConcepts(schema, 2);
  ls::ConceptCounts b = ls::CountConcepts(schema, 4);
  ls::ConceptCounts c = ls::CountConcepts(schema, 8);
  // Each attribute contributes a factor polynomial in |K|; with arity 4 the
  // count is a polynomial of degree 8 in |K| — "single exponential in the
  // size of the schema", growing steeply but far below the full fragment.
  EXPECT_GT(b.intersection_free.log2, a.intersection_free.log2);
  EXPECT_GT(c.intersection_free.log2, b.intersection_free.log2);
  EXPECT_LT(c.intersection_free.log2, c.full.log2);
}

TEST(ConceptCountTest, FullFragmentEnumerationMatchesBoxes) {
  // On a tiny instance, the full-fragment enumerator's size equals
  // nominals + Top + plain projections + Σ_R boxes(R) × arity(R).
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("R", {Value(1), Value(2)}));
  ASSERT_OK(instance.AddFact("R", {Value(2), Value(3)}));
  ASSERT_OK(instance.AddFact("U", {Value(1)}));
  std::vector<Value> constants = instance.ActiveDomain();
  ASSERT_OK_AND_ASSIGN(
      std::vector<ls::LsConcept> enumerated,
      ls::EnumerateConjunctConcepts(instance, constants, ls::Fragment::kFull,
                                    100000));
  ls::LubContext ctx(&instance);
  size_t expected = 1 + constants.size() + 3;  // Top + nominals + projections
  expected += ctx.NumBoxes("R") * 2 + ctx.NumBoxes("U") * 1;
  EXPECT_EQ(enumerated.size(), expected);
}

}  // namespace
}  // namespace whynot
