// PR 6: the dominance-pruned frontier enumeration (explain/lattice.h,
// LatticeFilterSpace) must be *observationally identical* to the odometer
// on consistent bindings: same explanations, same enumeration order, same
// cardinality witness — and, like every search in the engine, identical
// at WHYNOT_THREADS ∈ {1, 2, 8}, including its pruning stats. The sweeps
// below drive random tree ontologies and random deep multi-parent lattice
// ontologies through every rebased entry point under both strategies.

#include <gtest/gtest.h>

#include <optional>
#include <tuple>
#include <vector>

#include "test_util.h"

namespace whynot {
namespace {

using workload::Rng;

constexpr int kThreadCounts[] = {1, 2, 8};

struct Fixture {
  rel::Schema schema;
  std::unique_ptr<rel::Instance> instance;
  std::unique_ptr<onto::ExplicitOntology> ontology;
  std::unique_ptr<onto::BoundOntology> bound;
  explain::WhyNotInstance wni;
  explain::WhyInstance wi;
  bool ok = false;
};

/// Random fixture over either generator family. `deep` picks the layered
/// multi-parent lattice (whose per-position candidate lists are the whole
/// concept set, thanks to pinning); otherwise the tree family.
Fixture MakeFixture(uint64_t seed, bool deep) {
  Fixture f;
  f.schema = testutil::SimpleSchema();
  f.instance = std::make_unique<rel::Instance>(&f.schema);
  std::vector<Value> domain;
  for (int i = 0; i < 10; ++i) domain.push_back(Value(i));
  Rng rng(seed * 77 + (deep ? 13 : 0));
  Tuple missing = {domain[rng.Below(domain.size())],
                   domain[rng.Below(domain.size())]};
  if (deep) {
    workload::LatticeOntologyOptions opts;
    opts.depth = 5;
    opts.width = 4;
    opts.keep_num = 3;
    opts.keep_den = 4;
    auto onto_or =
        workload::RandomLatticeOntology(domain, missing, opts, seed);
    EXPECT_TRUE(onto_or.ok());
    f.ontology = std::move(onto_or).value();
  } else {
    auto onto_or = workload::RandomTreeOntology(domain, 12, seed);
    EXPECT_TRUE(onto_or.ok());
    f.ontology = std::move(onto_or).value();
  }
  f.bound = std::make_unique<onto::BoundOntology>(f.ontology.get(),
                                                  f.instance.get());
  std::vector<Tuple> answers;
  for (int a = 0; a < 10; ++a) {
    Tuple t = {domain[rng.Below(domain.size())],
               domain[rng.Below(domain.size())]};
    if (t != missing) answers.push_back(std::move(t));
  }
  if (answers.empty()) return f;
  auto wni_or =
      explain::MakeWhyNotInstanceFromAnswers(f.instance.get(), answers,
                                             missing);
  if (!wni_or.ok()) return f;  // missing collided with an answer
  f.wni = std::move(wni_or).value();
  f.wi.instance = f.instance.get();
  f.wi.answers = f.wni.answers;
  f.wi.present = f.wi.answers[rng.Below(f.wi.answers.size())];
  f.ok = true;
  return f;
}

/// Both generator families are consistent by construction (declared
/// subsumption always comes with extension inclusion), which is what
/// makes the frontier results bit-identical — assert it so a generator
/// regression fails loudly here instead of as a mystery divergence.
TEST(LatticePrune, GeneratorsAreConsistent) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    for (bool deep : {false, true}) {
      Fixture f = MakeFixture(seed, deep);
      if (!f.ok) continue;
      explain::ConceptLattice lattice(f.bound.get());
      EXPECT_TRUE(lattice.consistent()) << "seed " << seed << " deep " << deep;
      EXPECT_GT(lattice.depth(), 1u);
    }
  }
}

class LatticeEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

/// The core equivalence: every rebased search returns the same value
/// under kOdometer and kLattice, and the kLattice value (with its stats)
/// is identical at every thread count.
TEST_P(LatticeEquivalenceTest, FrontierMatchesOdometerEverywhere) {
  uint64_t seed = GetParam();
  for (bool deep : {false, true}) {
    Fixture f = MakeFixture(seed, deep);
    if (!f.ok) continue;

    explain::ExhaustiveOptions odo;
    odo.strategy = explain::SearchStrategy::kOdometer;
    ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> ref_exhaustive,
                         explain::ExhaustiveSearchAllMge(f.bound.get(), f.wni,
                                                         odo));
    ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> ref_pruned,
                         explain::PrunedSearchAllMge(f.bound.get(), f.wni,
                                                     odo));
    ASSERT_OK_AND_ASSIGN(std::optional<explain::CardinalityResult> ref_card,
                         explain::ExactCardMaximal(f.bound.get(), f.wni, odo));
    ASSERT_OK_AND_ASSIGN(
        std::vector<explain::Explanation> ref_why,
        explain::AllMostGeneralWhyExplanations(
            f.bound.get(), f.wi, 20000000, nullptr,
            explain::SearchStrategy::kOdometer));

    std::optional<std::tuple<size_t, size_t, size_t, size_t>> ref_stats;
    for (int threads : kThreadCounts) {
      par::SetNumThreads(threads);
      explain::LatticeHandle lattice(f.bound.get());
      explain::ExhaustiveOptions lat;
      lat.strategy = explain::SearchStrategy::kLattice;
      explain::PruneStats stats;
      lat.prune_stats = &stats;

      ASSERT_OK_AND_ASSIGN(
          std::vector<explain::Explanation> got_exhaustive,
          explain::ExhaustiveSearchAllMge(f.bound.get(), f.wni, lat, nullptr,
                                          &lattice));
      EXPECT_EQ(got_exhaustive, ref_exhaustive)
          << "seed " << seed << " deep " << deep << " threads " << threads;
      ASSERT_OK_AND_ASSIGN(
          std::vector<explain::Explanation> got_pruned,
          explain::PrunedSearchAllMge(f.bound.get(), f.wni, lat, nullptr,
                                      &lattice));
      EXPECT_EQ(got_pruned, ref_pruned)
          << "seed " << seed << " deep " << deep << " threads " << threads;

      ASSERT_OK_AND_ASSIGN(
          std::optional<explain::CardinalityResult> got_card,
          explain::ExactCardMaximal(f.bound.get(), f.wni, lat, nullptr,
                                    &lattice));
      ASSERT_EQ(got_card.has_value(), ref_card.has_value());
      if (got_card.has_value()) {
        EXPECT_EQ(got_card->explanation, ref_card->explanation)
            << "seed " << seed << " deep " << deep << " threads " << threads;
        EXPECT_TRUE(got_card->degree == ref_card->degree);
      }

      ASSERT_OK_AND_ASSIGN(
          std::vector<explain::Explanation> got_why,
          explain::AllMostGeneralWhyExplanations(
              f.bound.get(), f.wi, 20000000, nullptr,
              explain::SearchStrategy::kLattice, &lattice, &stats));
      EXPECT_EQ(got_why, ref_why)
          << "seed " << seed << " deep " << deep << " threads " << threads;

      // The stats are part of the deterministic contract: waves, tested
      // products, and dominance skips must not depend on the pool width.
      auto stat_tuple = std::make_tuple(stats.products_enumerated,
                                        stats.products_skipped,
                                        stats.downset_hits, stats.waves);
      if (!ref_stats.has_value()) {
        ref_stats = stat_tuple;
      } else {
        EXPECT_TRUE(stat_tuple == *ref_stats)
            << "prune stats diverged at threads=" << threads << " seed "
            << seed;
      }
    }
    par::SetNumThreads(0);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LatticeEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 26));

/// kAuto escalation: an over-budget space on a consistent binding must
/// silently escalate to the frontier and return the odometer's answer
/// (computed here with a generous odometer budget as the reference).
TEST(LatticePrune, AutoEscalatesPastBudget) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Fixture f = MakeFixture(seed, /*deep=*/true);
    if (!f.ok) continue;
    explain::ExhaustiveOptions odo;
    odo.strategy = explain::SearchStrategy::kOdometer;
    ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> ref,
                         explain::PrunedSearchAllMge(f.bound.get(), f.wni,
                                                     odo));
    explain::ExhaustiveOptions tight;  // kAuto
    tight.max_candidates = 50;         // far below the raw product
    explain::PruneStats stats;
    tight.prune_stats = &stats;
    auto got = explain::PrunedSearchAllMge(f.bound.get(), f.wni, tight);
    // The frontier may legitimately exhaust the *tested* budget too; what
    // it must never do is return a wrong antichain.
    if (got.ok()) {
      EXPECT_EQ(got.value(), ref) << "seed " << seed;
      EXPECT_GT(stats.products_enumerated, 0u);
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);
    }
  }
}

/// The frontier budget is on products *tested*: a kLattice run whose
/// frontier stays tiny completes even when the raw product is far past
/// max_candidates, and reports the skipped mass in its stats.
TEST(LatticePrune, BudgetCountsTestedProductsOnly) {
  Fixture f = MakeFixture(3, /*deep=*/true);
  ASSERT_TRUE(f.ok);
  explain::ExhaustiveOptions lat;
  lat.strategy = explain::SearchStrategy::kLattice;
  lat.max_candidates = 100000;
  explain::PruneStats stats;
  lat.prune_stats = &stats;
  ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> got,
                       explain::PrunedSearchAllMge(f.bound.get(), f.wni, lat));
  (void)got;
  EXPECT_LE(stats.products_enumerated, lat.max_candidates);
  EXPECT_GT(stats.products_skipped + stats.products_enumerated,
            stats.products_enumerated);  // some mass was actually skipped
}

/// Existence under kLattice restricts candidates to ≼-minimal concepts —
/// the boolean must agree with the unrestricted backtracker, and any
/// witness it produces must be a genuine explanation.
TEST(LatticePrune, ExistenceMinimalRestrictionAgrees) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    for (bool deep : {false, true}) {
      Fixture f = MakeFixture(seed, deep);
      if (!f.ok) continue;
      ASSERT_OK_AND_ASSIGN(bool ref,
                           explain::ExistsExplanation(f.bound.get(), f.wni));
      explain::ExistenceOptions opts;
      opts.strategy = explain::SearchStrategy::kLattice;
      explain::Explanation witness;
      ASSERT_OK_AND_ASSIGN(bool got,
                           explain::ExistsExplanation(f.bound.get(), f.wni,
                                                      &witness, opts));
      EXPECT_EQ(got, ref) << "seed " << seed << " deep " << deep;
      if (got) {
        ASSERT_OK_AND_ASSIGN(
            bool valid, explain::IsExplanation(f.bound.get(), f.wni, witness));
        EXPECT_TRUE(valid);
      }
    }
  }
}

/// Scalar reference for the Hasse reduction, kept verbatim from the
/// pre-word-parallel implementation: O(n) intermediate scan per pair.
std::vector<std::pair<int32_t, int32_t>> ScalarHasseEdges(
    const onto::BoolMatrix& closure) {
  int32_t n = closure.size();
  std::vector<int32_t> rep = onto::EquivalenceClassReps(closure);
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < n; ++i) {
    if (rep[static_cast<size_t>(i)] != i) continue;
    for (int32_t j = 0; j < n; ++j) {
      if (i == j || rep[static_cast<size_t>(j)] != j) continue;
      if (!closure.Get(i, j) || closure.Get(j, i)) continue;
      bool covered = true;
      for (int32_t k = 0; k < n; ++k) {
        if (k == i || k == j || rep[static_cast<size_t>(k)] != k) continue;
        bool i_below_k = closure.Get(i, k) && !closure.Get(k, i);
        bool k_below_j = closure.Get(k, j) && !closure.Get(j, k);
        if (i_below_k && k_below_j) {
          covered = false;
          break;
        }
      }
      if (covered) edges.emplace_back(i, j);
    }
  }
  return edges;
}

/// The word-parallel HasseEdges must reproduce the scalar reference —
/// edges *and* their order — on random pre-orders with equivalence
/// classes (random 2-cycles force non-trivial class grouping).
TEST(LatticePrune, WordParallelHasseMatchesScalarReference) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed);
    int32_t n = 5 + static_cast<int32_t>(rng.Below(80));
    onto::BoolMatrix m(n);
    for (int32_t e = 0; e < 3 * n; ++e) {
      int32_t a = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(n)));
      int32_t b = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(n)));
      m.Set(a, b);
      if (rng.Chance(1, 8)) m.Set(b, a);  // occasional equivalence
    }
    onto::ReflexiveTransitiveClosure(&m);
    EXPECT_EQ(onto::HasseEdges(m), ScalarHasseEdges(m)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace whynot
