#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using explain::IncrementalOptions;
using explain::LsExplanation;

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
    auto wni = explain::MakeWhyNotInstance(instance_.get(),
                                           workload::ConnectedViaQuery(),
                                           {"Amsterdam", "New York"});
    ASSERT_TRUE(wni.ok());
    wni_ = std::make_unique<explain::WhyNotInstance>(std::move(wni).value());
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<explain::WhyNotInstance> wni_;
};

TEST_F(IncrementalTest, SelectionFreeOutputIsExplanationAndMge) {
  IncrementalOptions options;
  options.with_selections = false;
  ASSERT_OK_AND_ASSIGN(LsExplanation e,
                       explain::IncrementalSearch(*wni_, options));
  EXPECT_TRUE(explain::IsLsExplanation(*wni_, e));
  ls::LubContext ctx(instance_.get());
  ASSERT_OK_AND_ASSIGN(
      bool mge,
      explain::CheckMgeDerived(*wni_, e, /*with_selections=*/false, &ctx));
  EXPECT_TRUE(mge);
}

TEST_F(IncrementalTest, WithSelectionsOutputIsExplanationAndMge) {
  IncrementalOptions options;
  options.with_selections = true;
  ASSERT_OK_AND_ASSIGN(LsExplanation e,
                       explain::IncrementalSearch(*wni_, options));
  EXPECT_TRUE(explain::IsLsExplanation(*wni_, e));
  ls::LubContext ctx(instance_.get());
  ASSERT_OK_AND_ASSIGN(
      bool mge,
      explain::CheckMgeDerived(*wni_, e, /*with_selections=*/true, &ctx));
  EXPECT_TRUE(mge);
}

TEST_F(IncrementalTest, TrivialExplanationWhenAnswersBlockEverything) {
  // A why-not question whose missing tuple repeats an answer column-wise:
  // the nominal-pinned start must still be an explanation (Section 5.2).
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(instance_.get(),
                                  workload::ConnectedViaQuery(),
                                  {"Amsterdam", "Berlin"}));
  IncrementalOptions options;
  ASSERT_OK_AND_ASSIGN(LsExplanation e,
                       explain::IncrementalSearch(wni, options));
  EXPECT_TRUE(explain::IsLsExplanation(wni, e));
}

TEST_F(IncrementalTest, MissingConstantsOutsideActiveDomain) {
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(instance_.get(),
                                  workload::ConnectedViaQuery(),
                                  {"Atlantis", "El Dorado"}));
  IncrementalOptions options;
  ASSERT_OK_AND_ASSIGN(LsExplanation e,
                       explain::IncrementalSearch(wni, options));
  EXPECT_TRUE(explain::IsLsExplanation(wni, e));
  // Both positions cannot be ⊤ at once (the product would then contain
  // every answer tuple), so at least one position must stay below ⊤.
  bool some_non_top = false;
  for (const ls::LsConcept& c : e) some_non_top |= !c.IsTop();
  EXPECT_TRUE(some_non_top);
}

TEST_F(IncrementalTest, PaperPseudocodeModeStillYieldsExplanation) {
  IncrementalOptions options;
  options.generalize_to_top = false;
  options.with_selections = true;
  ASSERT_OK_AND_ASSIGN(LsExplanation e,
                       explain::IncrementalSearch(*wni_, options));
  EXPECT_TRUE(explain::IsLsExplanation(*wni_, e));
}

/// Theorem 5.3 cross-check: the incremental output is equivalent (same
/// per-position extensions) to some most-general explanation of the
/// materialized OI[K] restricted to selection-free LS.
class IncrementalVsMaterializedTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalVsMaterializedTest, OutputMatchesSomeMaterializedMge) {
  uint64_t seed = GetParam();
  workload::Rng rng(seed * 13);
  ASSERT_OK_AND_ASSIGN(rel::Schema schema,
                       workload::RandomSchema(2, {2, 1}));
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::RandomInstance(&schema, 5, 6, seed));
  std::vector<Value> adom = instance.ActiveDomain();
  if (adom.size() < 2) return;
  std::vector<Tuple> answers;
  for (int i = 0; i < 4; ++i) {
    answers.push_back({adom[rng.Below(adom.size())],
                       adom[rng.Below(adom.size())]});
  }
  Tuple missing = {adom[rng.Below(adom.size())],
                   adom[rng.Below(adom.size())]};
  auto wni_or =
      explain::MakeWhyNotInstanceFromAnswers(&instance, answers, missing);
  if (!wni_or.ok()) return;
  const explain::WhyNotInstance& wni = wni_or.value();

  IncrementalOptions options;
  options.with_selections = false;
  ASSERT_OK_AND_ASSIGN(LsExplanation incremental,
                       explain::IncrementalSearch(wni, options));
  ASSERT_TRUE(explain::IsLsExplanation(wni, incremental));

  explain::DerivedMgeOptions derived;
  derived.fragment = ls::Fragment::kSelectionFree;
  derived.mode = ls::SubsumptionMode::kInstance;
  auto all_or = explain::ComputeAllMgeDerived(wni, derived);
  if (!all_or.ok()) return;  // closure too large for this seed: skip
  bool matched = false;
  for (const LsExplanation& mge : all_or.value()) {
    bool equal = true;
    for (size_t i = 0; i < mge.size() && equal; ++i) {
      equal = ls::Eval(mge[i], instance) == ls::Eval(incremental[i], instance);
    }
    if (equal) matched = true;
  }
  EXPECT_TRUE(matched) << "seed " << seed << ": incremental output "
                       << explain::LsExplanationToString(schema, incremental)
                       << " not among the materialized MGEs";
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalVsMaterializedTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace whynot
