// Cross-cutting property sweeps: each suite checks a module against an
// independent reference implementation (naive evaluator, definitional
// constraint check, expansion semantics) on seeded random inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "test_util.h"
#include "whynot/relational/interval.h"
#include "whynot/text/parsers.h"

namespace whynot {
namespace {

using testutil::A;
using testutil::Q1;
using testutil::V;
using workload::Rng;

// --- Reference CQ evaluator: enumerate all assignments over adom. ----------

std::vector<Tuple> NaiveEvaluate(const rel::ConjunctiveQuery& cq,
                                 const rel::Instance& instance) {
  std::vector<std::string> vars = cq.Variables();
  std::vector<Value> adom = instance.ActiveDomain();
  std::set<Tuple> out;
  if (adom.empty()) return {};
  std::vector<size_t> odo(vars.size(), 0);
  while (true) {
    std::map<std::string, Value> binding;
    for (size_t i = 0; i < vars.size(); ++i) binding[vars[i]] = adom[odo[i]];
    bool ok = true;
    for (const rel::Atom& atom : cq.atoms) {
      Tuple t;
      for (const rel::Term& term : atom.args) {
        t.push_back(term.is_var() ? binding[term.var()] : term.constant());
      }
      if (!instance.Contains(atom.relation, t)) {
        ok = false;
        break;
      }
    }
    for (const rel::Comparison& cmp : cq.comparisons) {
      if (!ok) break;
      if (!rel::EvalCmp(binding[cmp.var], cmp.op, cmp.constant)) ok = false;
    }
    if (ok) {
      Tuple head;
      for (const std::string& h : cq.head) head.push_back(binding[h]);
      out.insert(std::move(head));
    }
    size_t k = 0;
    while (k < odo.size() && ++odo[k] == adom.size()) odo[k++] = 0;
    if (k == odo.size()) break;
    if (odo.empty()) break;
  }
  return std::vector<Tuple>(out.begin(), out.end());
}

class CqEvalReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CqEvalReferenceTest, BacktrackingJoinMatchesNaiveEnumeration) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::RandomSchema(2, {2, 1}));
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::RandomInstance(&schema, 8, 5, seed));

  // Random query shape over at most three variables.
  rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {A("R0", {V("x"), V("y")})};
  if (rng.Chance(1, 2)) cq.atoms.push_back(A("R0", {V("y"), V("z")}));
  if (rng.Chance(1, 2)) cq.atoms.push_back(A("R1", {V("x")}));
  if (rng.Chance(1, 2)) {
    cq.comparisons.push_back(
        {"y", rng.Chance(1, 2) ? rel::CmpOp::kGe : rel::CmpOp::kLt,
         Value(static_cast<int64_t>(rng.Below(5)))});
  }
  if (rng.Chance(1, 3)) {
    cq.atoms.push_back(
        A("R0", {V("x"), rel::Term::Const(
                             Value(static_cast<int64_t>(rng.Below(5))))}));
  }
  ASSERT_OK(cq.Validate(schema));

  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> fast,
                       rel::Evaluate(cq, instance));
  std::vector<Tuple> naive = NaiveEvaluate(cq, instance);
  EXPECT_EQ(fast, naive) << "seed " << seed << ", query " << cq.ToString();
}

INSTANTIATE_TEST_SUITE_P(Sweep, CqEvalReferenceTest,
                         ::testing::Range<uint64_t>(1, 41));

// --- Views: materialization == expansion semantics. ------------------------

class ViewSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ViewSemanticsTest, MaterializationMatchesExpansion) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("R", {"a", "b"}));
  ASSERT_OK(schema.AddRelation("S", {"a"}));

  // V1: a random UCQ over the data relations.
  rel::UnionQuery v1;
  {
    rel::ConjunctiveQuery d1;
    d1.head = {"x"};
    d1.atoms = {A("R", {V("x"), V("y")})};
    if (rng.Chance(1, 2)) {
      d1.comparisons.push_back(
          {"y", rel::CmpOp::kGe, Value(static_cast<int64_t>(rng.Below(4)))});
    }
    v1.disjuncts.push_back(d1);
    if (rng.Chance(1, 2)) {
      rel::ConjunctiveQuery d2;
      d2.head = {"x"};
      d2.atoms = {A("S", {V("x")})};
      v1.disjuncts.push_back(d2);
    }
  }
  ASSERT_OK(schema.AddView("V1", {"v"}, v1));

  // V2: nested — joins V1 with R.
  rel::UnionQuery v2;
  {
    rel::ConjunctiveQuery d;
    d.head = {"x", "y"};
    d.atoms = {A("V1", {V("x")}), A("R", {V("x"), V("y")})};
    v2.disjuncts.push_back(d);
  }
  ASSERT_OK(schema.AddView("V2", {"v", "w"}, v2));
  ASSERT_OK(schema.Validate());

  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::RandomInstance(&schema, 10, 5, seed));
  ASSERT_OK(rel::MaterializeViews(&instance));

  for (const std::string& view : {std::string("V1"), std::string("V2")}) {
    const rel::RelationDef& def = schema.Get(view);
    rel::ConjunctiveQuery probe;
    rel::Atom atom;
    atom.relation = view;
    for (size_t i = 0; i < def.arity(); ++i) {
      probe.head.push_back("h" + std::to_string(i));
      atom.args.push_back(V("h" + std::to_string(i)));
    }
    probe.atoms.push_back(atom);
    ASSERT_OK_AND_ASSIGN(rel::UnionQuery expanded,
                         rel::ExpandViews(probe, schema));
    for (const rel::ConjunctiveQuery& d : expanded.disjuncts) {
      for (const rel::Atom& a : d.atoms) {
        ASSERT_FALSE(schema.Get(a.relation).is_view())
            << "expansion left a view atom";
      }
    }
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> via_expansion,
                         rel::Evaluate(expanded, instance));
    std::vector<Tuple> materialized = instance.Relation(view);
    std::sort(materialized.begin(), materialized.end());
    EXPECT_EQ(materialized, via_expansion) << "seed " << seed << ", " << view;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ViewSemanticsTest,
                         ::testing::Range<uint64_t>(1, 31));

// --- Constraint checking vs. the definition. --------------------------------

class ConstraintReferenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConstraintReferenceTest, FdCheckMatchesDefinition) {
  uint64_t seed = GetParam();
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("R", {"a", "b", "c"}));
  rel::FunctionalDependency fd{"R", {0}, {1}};
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::RandomInstance(&schema, 12, 3, seed));
  bool reference = true;
  const std::vector<Tuple>& rows = instance.Relation("R");
  for (const Tuple& t1 : rows) {
    for (const Tuple& t2 : rows) {
      if (t1[0] == t2[0] && !(t1[1] == t2[1])) reference = false;
    }
  }
  EXPECT_EQ(rel::SatisfiesFd(instance, fd, nullptr), reference)
      << "seed " << seed;
}

TEST_P(ConstraintReferenceTest, IdCheckMatchesDefinition) {
  uint64_t seed = GetParam();
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("R", {"a", "b", "c"}));
  ASSERT_OK(schema.AddRelation("S", {"a", "b"}));
  rel::InclusionDependency id{"R", {1, 0}, "S", {0, 1}};
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::RandomInstance(&schema, 9, 3, seed));
  bool reference = true;
  for (const Tuple& t : instance.Relation("R")) {
    bool found = false;
    for (const Tuple& s : instance.Relation("S")) {
      if (t[1] == s[0] && t[0] == s[1]) found = true;
    }
    if (!found) reference = false;
  }
  EXPECT_EQ(rel::SatisfiesId(instance, id, nullptr), reference)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConstraintReferenceTest,
                         ::testing::Range<uint64_t>(1, 31));

// --- OBDA saturation is monotone in the instance. ---------------------------

class SaturationMonotoneTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SaturationMonotoneTest, CertainMembersGrowWithFacts) {
  uint64_t seed = GetParam();
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::RandomSchema(2, {2, 1}));
  dl::TBox tbox = workload::RandomTBox(3, 2, 5, seed, /*negative_percent=*/0);

  // Mappings: R0 rows feed a role and its source concept, R1 rows a concept.
  std::vector<obda::GavMapping> mappings;
  {
    obda::GavMapping m;
    m.atoms = {A("R0", {V("x"), V("y")})};
    m.head = obda::MappingHead::RolePair("P0", "x", "y");
    mappings.push_back(m);
  }
  {
    obda::GavMapping m;
    m.atoms = {A("R1", {V("x")})};
    m.head = obda::MappingHead::Concept("A0", "x");
    mappings.push_back(m);
  }
  obda::ObdaSpec spec(std::move(tbox), &schema, std::move(mappings));
  ASSERT_OK(spec.Validate());

  ASSERT_OK_AND_ASSIGN(rel::Instance small,
                       workload::RandomInstance(&schema, 5, 4, seed));
  rel::Instance big = small;
  ASSERT_OK(big.AddFact("R0", {Value(7), Value(8)}));
  ASSERT_OK(big.AddFact("R1", {Value(9)}));

  ASSERT_OK_AND_ASSIGN(obda::Saturation sat_small, spec.Saturate(small));
  ASSERT_OK_AND_ASSIGN(obda::Saturation sat_big, spec.Saturate(big));
  for (const auto& [concept_expr, members] : sat_small.concept_members) {
    const std::set<Value>& bigger = sat_big.Members(concept_expr);
    for (const Value& v : members) {
      EXPECT_TRUE(bigger.count(v) > 0)
          << "seed " << seed << ": certain member " << v.ToString() << " of "
          << concept_expr.ToString() << " lost when facts were added";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SaturationMonotoneTest,
                         ::testing::Range<uint64_t>(1, 21));

// --- Interval witnesses. -----------------------------------------------------

class IntervalWitnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalWitnessTest, WitnessAdmittedAndFresh) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  rel::IntervalConstraint interval;
  auto random_value = [&]() -> Value {
    if (rng.Chance(1, 3)) return Value("s" + std::to_string(rng.Below(4)));
    return Value(static_cast<int64_t>(rng.Below(10)));
  };
  int narrows = static_cast<int>(rng.Below(3)) + 1;
  for (int i = 0; i < narrows; ++i) {
    rel::CmpOp ops[] = {rel::CmpOp::kEq, rel::CmpOp::kLt, rel::CmpOp::kGt,
                        rel::CmpOp::kLe, rel::CmpOp::kGe};
    interval.Narrow(ops[rng.Below(5)], random_value());
  }
  std::set<Value> used;
  for (int round = 0; round < 5; ++round) {
    std::optional<Value> w = rel::PickWitness(interval, used);
    if (!w.has_value()) {
      // Either genuinely empty or a non-dense corner; when empty, verify no
      // obvious member exists.
      if (interval.empty) SUCCEED();
      break;
    }
    EXPECT_TRUE(interval.Admits(*w)) << "seed " << seed;
    EXPECT_EQ(used.count(*w), 0u) << "seed " << seed;
    used.insert(*w);
    if (interval.eq.has_value()) break;  // point intervals have one witness
  }
}

TEST_P(IntervalWitnessTest, EntailsIsSoundOnWitnesses) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  rel::IntervalConstraint interval;
  interval.Narrow(rel::CmpOp::kGe,
                  Value(static_cast<int64_t>(rng.Below(5))));
  interval.Narrow(rel::CmpOp::kLt,
                  Value(static_cast<int64_t>(rng.Below(5)) + 6));
  rel::CmpOp probe_ops[] = {rel::CmpOp::kLt, rel::CmpOp::kLe, rel::CmpOp::kGt,
                            rel::CmpOp::kGe, rel::CmpOp::kEq};
  for (rel::CmpOp op : probe_ops) {
    Value c(static_cast<int64_t>(rng.Below(12)));
    if (!interval.Entails(op, c)) continue;
    // Every witness must satisfy an entailed comparison.
    std::set<Value> used;
    for (int round = 0; round < 4; ++round) {
      std::optional<Value> w = rel::PickWitness(interval, used);
      if (!w.has_value()) break;
      EXPECT_TRUE(rel::EvalCmp(*w, op, c))
          << "seed " << seed << ": witness " << w->ToString()
          << " violates entailed " << rel::CmpOpName(op) << " "
          << c.ToString();
      used.insert(*w);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalWitnessTest,
                         ::testing::Range<uint64_t>(1, 41));

// --- Strong decisions under FDs: consistency with random refutation. --------

class StrongDecideFdSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrongDecideFdSweepTest, FdVerdictConsistentWithRandomSearch) {
  uint64_t seed = GetParam();
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("R", {"a", "b"}));
  ASSERT_OK(schema.AddFd({"R", {0}, {1}}));
  rel::ConjunctiveQuery cq;
  cq.head = {"x"};
  cq.atoms = {A("R", {V("x"), V("y")})};
  cq.comparisons = {{"y", rel::CmpOp::kGe,
                     Value(static_cast<int64_t>(seed % 6 + 3))}};
  explain::LsExplanation e = {ls::LsConcept::Projection(
      "R", 0,
      {{1, rel::CmpOp::kLt, Value(static_cast<int64_t>(seed % 8))}})};
  ASSERT_OK_AND_ASSIGN(
      explain::StrongDecision d,
      explain::DecideStrongExplanation(schema, Q1(cq), e));
  ASSERT_NE(d.verdict, explain::StrongVerdict::kUnknown) << d.detail;
  // The exact FD answer: lt-bound <= ge-bound means the same row cannot
  // satisfy both, and the FD forces one row per key — strong iff
  // (seed % 8) <= (seed % 6 + 3).
  bool expect_strong =
      static_cast<int64_t>(seed % 8) <= static_cast<int64_t>(seed % 6 + 3);
  EXPECT_EQ(d.verdict == explain::StrongVerdict::kStrong, expect_strong)
      << "seed " << seed;
  if (d.verdict == explain::StrongVerdict::kStrong) {
    // No random FD-satisfying instance may refute.
    for (uint64_t s = 1; s <= 10; ++s) {
      ASSERT_OK_AND_ASSIGN(rel::Instance random,
                           workload::RandomInstance(&schema, 8, 6, s));
      if (!random.SatisfiesConstraints().ok()) continue;
      ASSERT_OK_AND_ASSIGN(std::vector<Tuple> answers,
                           rel::Evaluate(Q1(cq), random));
      ls::Extension e0 = ls::Eval(e[0], random);
      for (const Tuple& t : answers) {
        EXPECT_FALSE(e0.Contains(t[0])) << "seed " << seed << "/" << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrongDecideFdSweepTest,
                         ::testing::Range<uint64_t>(1, 31));

// --- LS printer/parser round trip on random concepts. ------------------------

class LsRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LsRoundTripTest, PrintedConceptParsesBackEqual) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::RandomSchema(2, {3, 2}));
  std::vector<ls::Conjunct> conjuncts;
  int n = static_cast<int>(rng.Below(3)) + 1;
  for (int i = 0; i < n; ++i) {
    switch (rng.Below(3)) {
      case 0:
        conjuncts.push_back(ls::Conjunct::Nominal(
            rng.Chance(1, 2)
                ? Value(static_cast<int64_t>(rng.Below(50)))
                : Value("w" + std::to_string(rng.Below(9)))));
        break;
      case 1:
        conjuncts.push_back(ls::Conjunct::Projection(
            rng.Chance(1, 2) ? "R0" : "R1",
            static_cast<int>(rng.Below(2))));
        break;
      default: {
        std::vector<ls::Selection> sels;
        int k = static_cast<int>(rng.Below(2)) + 1;
        rel::CmpOp ops[] = {rel::CmpOp::kEq, rel::CmpOp::kLt, rel::CmpOp::kGt,
                            rel::CmpOp::kLe, rel::CmpOp::kGe};
        for (int s = 0; s < k; ++s) {
          sels.push_back({static_cast<int>(rng.Below(2)), ops[rng.Below(5)],
                          Value(static_cast<int64_t>(rng.Below(100)))});
        }
        conjuncts.push_back(
            ls::Conjunct::Projection("R0", static_cast<int>(rng.Below(3)),
                                     std::move(sels)));
      }
    }
  }
  ls::LsConcept original(std::move(conjuncts));
  std::string printed = original.ToString(&schema);
  ASSERT_OK_AND_ASSIGN(ls::LsConcept reparsed,
                       ls::ParseConcept(printed, schema));
  EXPECT_EQ(original, reparsed)
      << "seed " << seed << ": '" << printed << "' reparsed as '"
      << reparsed.ToString(&schema) << "'";
}

INSTANTIATE_TEST_SUITE_P(Sweep, LsRoundTripTest,
                         ::testing::Range<uint64_t>(1, 41));

// --- Text parsers: mutated documents error out cleanly (never crash). -------

class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, MutatedDocumentsFailGracefully) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  const std::string base =
      "relation R(a, b)\n"
      "view V(x) := R(x, y), y >= 3\n"
      "fd R: a -> b\n"
      "id V[x] <= R[a]\n";
  // Apply a few random single-character mutations.
  std::string mutated = base;
  int edits = static_cast<int>(rng.Below(4)) + 1;
  for (int i = 0; i < edits; ++i) {
    size_t pos = rng.Below(mutated.size());
    switch (rng.Below(3)) {
      case 0:
        mutated[pos] = static_cast<char>('!' + rng.Below(90));
        break;
      case 1:
        mutated.erase(pos, 1);
        break;
      default:
        mutated.insert(pos, 1, static_cast<char>('!' + rng.Below(90)));
    }
  }
  // Must either parse (mutation was harmless) or return a Status; the
  // sweep's value is that no input crashes or hangs.
  auto schema = text::ParseSchema(mutated);
  if (schema.ok()) {
    rel::Instance instance(&schema.value());
    auto st = text::ParseFactsInto("R(1, 2)\nR(bad", &instance);
    EXPECT_FALSE(st.ok());  // the fact document is malformed regardless
  }
  // The same document fed to the wrong parsers must error, not crash.
  EXPECT_FALSE(text::ParseTBox(mutated).ok() &&
               text::ParseAbox(mutated).ok());
  auto tuple = text::ParseTuple(mutated.substr(0, rng.Below(20) + 1));
  (void)tuple;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParserRobustnessTest,
                         ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace whynot
