#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using explain::Explanation;

class CheckMgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = workload::CitiesDataSchema();
    ASSERT_TRUE(schema.ok());
    schema_ = std::move(schema).value();
    auto instance = workload::CitiesInstance(&schema_);
    ASSERT_TRUE(instance.ok());
    instance_ = std::make_unique<rel::Instance>(std::move(instance).value());
    auto ontology = workload::CitiesOntology();
    ASSERT_TRUE(ontology.ok());
    ontology_ = std::move(ontology).value();
    bound_ = std::make_unique<onto::BoundOntology>(ontology_.get(),
                                                   instance_.get());
    auto wni = explain::MakeWhyNotInstance(instance_.get(),
                                           workload::ConnectedViaQuery(),
                                           {"Amsterdam", "New York"});
    ASSERT_TRUE(wni.ok());
    wni_ = std::make_unique<explain::WhyNotInstance>(std::move(wni).value());
  }

  onto::ConceptId Id(const char* name) {
    return ontology_->FindConcept(name);
  }

  rel::Schema schema_;
  std::unique_ptr<rel::Instance> instance_;
  std::unique_ptr<onto::ExplicitOntology> ontology_;
  std::unique_ptr<onto::BoundOntology> bound_;
  std::unique_ptr<explain::WhyNotInstance> wni_;
};

TEST_F(CheckMgeTest, ConfirmsE4RejectsE1E2E3) {
  Explanation e4 = {Id("European-City"), Id("US-City")};
  ASSERT_OK_AND_ASSIGN(bool e4_mge,
                       explain::CheckMgeExternal(bound_.get(), *wni_, e4));
  EXPECT_TRUE(e4_mge);
  for (Explanation e :
       {Explanation{Id("Dutch-City"), Id("East-Coast-City")},
        Explanation{Id("Dutch-City"), Id("US-City")},
        Explanation{Id("European-City"), Id("East-Coast-City")}}) {
    ASSERT_OK_AND_ASSIGN(bool mge,
                         explain::CheckMgeExternal(bound_.get(), *wni_, e));
    EXPECT_FALSE(mge) << explain::ExplanationToString(*bound_, e);
  }
}

TEST_F(CheckMgeTest, NonExplanationIsNotMge) {
  Explanation not_expl = {Id("City"), Id("US-City")};
  ASSERT_OK_AND_ASSIGN(
      bool mge, explain::CheckMgeExternal(bound_.get(), *wni_, not_expl));
  EXPECT_FALSE(mge);
}

TEST_F(CheckMgeTest, EveryAlgorithm1OutputPassesCheckMge) {
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> mges,
                       explain::ExhaustiveSearchAllMge(bound_.get(), *wni_));
  ASSERT_FALSE(mges.empty());
  for (const Explanation& e : mges) {
    ASSERT_OK_AND_ASSIGN(bool ok,
                         explain::CheckMgeExternal(bound_.get(), *wni_, e));
    EXPECT_TRUE(ok) << explain::ExplanationToString(*bound_, e);
  }
}

TEST_F(CheckMgeTest, ArityMismatchRejected) {
  Explanation wrong_arity = {Id("City")};
  EXPECT_FALSE(
      explain::CheckMgeExternal(bound_.get(), *wni_, wrong_arity).ok());
}

/// Sweep: CheckMgeExternal agrees with membership in the Algorithm 1 output
/// (up to equivalence) on random ontologies.
class CheckMgeSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckMgeSweepTest, AgreesWithExhaustiveSearch) {
  uint64_t seed = GetParam();
  workload::Rng rng(seed * 7 + 1);
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance instance(&schema);
  std::vector<Value> domain;
  for (int i = 0; i < 7; ++i) domain.push_back(Value(i));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<onto::ExplicitOntology> ontology,
                       workload::RandomTreeOntology(domain, 8, seed));
  onto::BoundOntology bound(ontology.get(), &instance);
  std::vector<Tuple> answers;
  for (int i = 0; i < 5; ++i) {
    answers.push_back({domain[rng.Below(domain.size())],
                       domain[rng.Below(domain.size())]});
  }
  Tuple missing = {domain[rng.Below(domain.size())],
                   domain[rng.Below(domain.size())]};
  auto wni_or =
      explain::MakeWhyNotInstanceFromAnswers(&instance, answers, missing);
  if (!wni_or.ok()) return;
  ASSERT_OK_AND_ASSIGN(
      std::vector<Explanation> mges,
      explain::ExhaustiveSearchAllMge(&bound, wni_or.value()));
  for (onto::ConceptId c1 = 0; c1 < bound.NumConcepts(); ++c1) {
    for (onto::ConceptId c2 = 0; c2 < bound.NumConcepts(); ++c2) {
      Explanation e = {c1, c2};
      ASSERT_OK_AND_ASSIGN(
          bool check, explain::CheckMgeExternal(&bound, wni_or.value(), e));
      bool in_output = false;
      for (const Explanation& mge : mges) {
        if (explain::LessGeneral(bound, e, mge) &&
            explain::LessGeneral(bound, mge, e)) {
          in_output = true;  // equivalent to a returned MGE
        }
      }
      EXPECT_EQ(check, in_output) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CheckMgeSweepTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace whynot
