#ifndef WHYNOT_TESTS_TEST_UTIL_H_
#define WHYNOT_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "whynot/whynot.h"

#define ASSERT_OK(expr)                                 \
  do {                                                  \
    const ::whynot::Status _st = (expr);                \
    ASSERT_TRUE(_st.ok()) << _st.ToString();            \
  } while (false)

#define EXPECT_OK(expr)                                 \
  do {                                                  \
    const ::whynot::Status _st = (expr);                \
    EXPECT_TRUE(_st.ok()) << _st.ToString();            \
  } while (false)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)       \
  auto tmp = (expr);                                    \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();     \
  lhs = std::move(tmp).value()

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                          \
  ASSERT_OK_AND_ASSIGN_IMPL(                                     \
      WHYNOT_ASSIGN_OR_RETURN_NAME(_test_result_, __LINE__), lhs, expr)

namespace whynot::testutil {

/// A schema with one binary relation R(a, b) and one unary relation U(a).
inline rel::Schema SimpleSchema() {
  rel::Schema schema;
  EXPECT_TRUE(schema.AddRelation("R", {"a", "b"}).ok());
  EXPECT_TRUE(schema.AddRelation("U", {"a"}).ok());
  return schema;
}

/// Shorthand atom builder.
inline rel::Atom A(const std::string& relation,
                   const std::vector<rel::Term>& args) {
  rel::Atom atom;
  atom.relation = relation;
  atom.args = args;
  return atom;
}

inline rel::Term V(const std::string& name) { return rel::Term::Var(name); }
inline rel::Term C(const Value& v) { return rel::Term::Const(v); }

/// One-disjunct union query.
inline rel::UnionQuery Q1(rel::ConjunctiveQuery cq) {
  rel::UnionQuery q;
  q.disjuncts.push_back(std::move(cq));
  return q;
}

/// Extension values of an LS concept as a plain vector (empty if All).
inline std::vector<Value> ExtValues(const ls::LsConcept& c,
                                    const rel::Instance& i) {
  return ls::Eval(c, i).values();
}

}  // namespace whynot::testutil

#endif  // WHYNOT_TESTS_TEST_UTIL_H_
