// Property tests for the word-parallel kernel: the DenseBitmap-backed
// ExtSet operations must agree with the sorted-vector reference semantics
// on randomized pools, and the blocked (64-bit-row) Warshall closure must
// match the per-bit reference algorithm on random preorders.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "test_util.h"

namespace whynot {
namespace {

/// Deterministic LCG so failures reproduce without a seed report.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }
  /// Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t state_;
};

std::vector<ValueId> RandomIds(Rng* rng, int32_t universe, size_t count) {
  std::vector<ValueId> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ids.push_back(static_cast<ValueId>(rng->Below(
        static_cast<uint64_t>(universe))));
  }
  return ids;
}

// --- scalar reference implementations ------------------------------------

bool RefContains(const std::vector<ValueId>& sorted, ValueId id) {
  return std::binary_search(sorted.begin(), sorted.end(), id);
}

bool RefSubsetOf(const std::vector<ValueId>& a, const std::vector<ValueId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

std::vector<ValueId> RefIntersect(const std::vector<ValueId>& a,
                                  const std::vector<ValueId>& b) {
  std::vector<ValueId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

TEST(KernelPropertyTest, BitmapExtSetMatchesSortedVectorReference) {
  Rng rng(0xC0FFEE);
  // Sweep universes across the density switch: tiny (always bitmap),
  // medium, and sparse-in-large (vector-only unless forced).
  const int32_t universes[] = {8, 64, 200, 1024, 5000, 100000};
  for (int32_t universe : universes) {
    for (int round = 0; round < 20; ++round) {
      size_t na = rng.Below(static_cast<uint64_t>(universe) / 2 + 2);
      size_t nb = rng.Below(static_cast<uint64_t>(universe) / 2 + 2);
      onto::ExtSet a = onto::ExtSet::Finite(RandomIds(&rng, universe, na));
      onto::ExtSet b = onto::ExtSet::Finite(RandomIds(&rng, universe, nb));
      // Occasionally force bitmaps the way BoundOntology's extension table
      // does, so the word-parallel paths are exercised even when sparse.
      if (round % 3 == 0) {
        a.EnsureBitmap(universe);
        b.EnsureBitmap(universe);
      }
      // Also test subset relationships that actually hold, not just
      // random pairs (which are almost never subsets).
      onto::ExtSet sub = a.Intersect(b);

      for (int probe = 0; probe < 50; ++probe) {
        ValueId id = static_cast<ValueId>(
            rng.Below(static_cast<uint64_t>(universe) + 64));
        EXPECT_EQ(a.Contains(id), RefContains(a.ids(), id))
            << "universe=" << universe << " id=" << id;
      }
      EXPECT_EQ(a.SubsetOf(b), RefSubsetOf(a.ids(), b.ids()));
      EXPECT_EQ(b.SubsetOf(a), RefSubsetOf(b.ids(), a.ids()));
      EXPECT_TRUE(sub.SubsetOf(a));
      EXPECT_TRUE(sub.SubsetOf(b));
      EXPECT_EQ(a.Intersect(b).ids(), RefIntersect(a.ids(), b.ids()));
      EXPECT_EQ(a.SubsetOf(a), true);
      EXPECT_EQ(a.Intersect(a), a);
    }
  }
}

TEST(KernelPropertyTest, MixedRepresentationPairsAgree) {
  // One side bitmap-backed, the other sparse vector-only: operations must
  // still agree with the reference (they fall back to the scalar path).
  Rng rng(0xBEEF);
  const int32_t universe = 1 << 20;  // large enough that sparse sets skip
                                     // the bitmap
  for (int round = 0; round < 30; ++round) {
    onto::ExtSet sparse =
        onto::ExtSet::Finite(RandomIds(&rng, universe, 5));
    ASSERT_FALSE(sparse.has_bitmap());
    onto::ExtSet dense = sparse;
    dense.EnsureBitmap(universe);
    ASSERT_TRUE(dense.has_bitmap());
    onto::ExtSet other = onto::ExtSet::Finite(RandomIds(&rng, universe, 5));

    EXPECT_EQ(dense.SubsetOf(other), RefSubsetOf(dense.ids(), other.ids()));
    EXPECT_EQ(other.SubsetOf(dense), RefSubsetOf(other.ids(), dense.ids()));
    EXPECT_TRUE(sparse.SubsetOf(dense));
    EXPECT_TRUE(dense.SubsetOf(sparse));
    EXPECT_EQ(dense.Intersect(other).ids(),
              RefIntersect(dense.ids(), other.ids()));
  }
}

TEST(KernelPropertyTest, AllSemanticsUnchangedByBitmaps) {
  onto::ExtSet all = onto::ExtSet::All();
  onto::ExtSet fin = onto::ExtSet::Finite({1, 2, 3});
  fin.EnsureBitmap(64);
  EXPECT_TRUE(fin.SubsetOf(all));
  EXPECT_FALSE(all.SubsetOf(fin));
  EXPECT_EQ(all.Intersect(fin), fin);
  EXPECT_EQ(fin.Intersect(all), fin);
  EXPECT_TRUE(all.Contains(1 << 30));
}

TEST(KernelPropertyTest, DensitySwitchBuildsBitmapOnlyWhenDense) {
  // Dense set in a small universe: bitmap mirror present.
  std::vector<ValueId> dense_ids;
  for (ValueId i = 0; i < 100; ++i) dense_ids.push_back(i * 3);
  onto::ExtSet dense = onto::ExtSet::Finite(dense_ids);
  EXPECT_TRUE(dense.has_bitmap());

  // A handful of ids spread over a huge universe: vector-only.
  onto::ExtSet sparse = onto::ExtSet::Finite({0, 1 << 28, 1 << 29});
  EXPECT_FALSE(sparse.has_bitmap());
  // Correctness is unaffected.
  EXPECT_TRUE(sparse.Contains(1 << 28));
  EXPECT_FALSE(sparse.Contains(7));
}

// --- Warshall closure ------------------------------------------------------

/// Per-bit reference Warshall over a vector<vector<bool>> adjacency.
std::vector<std::vector<bool>> RefClosure(std::vector<std::vector<bool>> m) {
  size_t n = m.size();
  for (size_t i = 0; i < n; ++i) m[i][i] = true;
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!m[i][k]) continue;
      for (size_t j = 0; j < n; ++j) {
        if (m[k][j]) m[i][j] = true;
      }
    }
  }
  return m;
}

TEST(KernelPropertyTest, BlockedClosureMatchesPerBitWarshall) {
  Rng rng(0xD1CE);
  // Sizes straddling the 64-bit word boundary: 1 word, exactly 1 word,
  // just over, several words.
  const int32_t sizes[] = {1, 3, 17, 63, 64, 65, 130, 257};
  for (int32_t n : sizes) {
    for (int round = 0; round < 5; ++round) {
      // Random edge density between ~2% and ~30%.
      uint64_t denom = 3 + rng.Below(47);
      onto::BoolMatrix m(n);
      std::vector<std::vector<bool>> ref(
          static_cast<size_t>(n), std::vector<bool>(static_cast<size_t>(n)));
      for (int32_t i = 0; i < n; ++i) {
        for (int32_t j = 0; j < n; ++j) {
          if (rng.Below(denom) == 0) {
            m.Set(i, j);
            ref[static_cast<size_t>(i)][static_cast<size_t>(j)] = true;
          }
        }
      }
      onto::ReflexiveTransitiveClosure(&m);
      std::vector<std::vector<bool>> expected = RefClosure(std::move(ref));
      for (int32_t i = 0; i < n; ++i) {
        for (int32_t j = 0; j < n; ++j) {
          ASSERT_EQ(m.Get(i, j),
                    expected[static_cast<size_t>(i)][static_cast<size_t>(j)])
              << "n=" << n << " round=" << round << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST(KernelPropertyTest, RowOpsMatchCellOps) {
  Rng rng(0xFEED);
  onto::BoolMatrix m(130);
  for (int32_t i = 0; i < 130; ++i) {
    for (int32_t j = 0; j < 130; ++j) {
      if (rng.Below(4) == 0) m.Set(i, j);
    }
  }
  for (int32_t i = 0; i < 130; ++i) {
    int32_t count = 0;
    for (int32_t j = 0; j < 130; ++j) count += m.Get(i, j) ? 1 : 0;
    EXPECT_EQ(m.RowCount(i), count);
    for (int32_t other = 0; other < 130; other += 17) {
      bool subset = true;
      for (int32_t j = 0; j < 130 && subset; ++j) {
        if (m.Get(i, j) && !m.Get(other, j)) subset = false;
      }
      EXPECT_EQ(m.RowSubsetOf(i, other), subset);
    }
  }
  // RowOr equals cellwise OR.
  onto::BoolMatrix before = m;
  m.RowOr(3, 7);
  for (int32_t j = 0; j < 130; ++j) {
    EXPECT_EQ(m.Get(3, j), before.Get(3, j) || before.Get(7, j));
  }
}

}  // namespace
}  // namespace whynot
