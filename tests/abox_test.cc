#include "whynot/dllite/abox.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_util.h"

namespace whynot {
namespace {

using dl::ABox;
using dl::AboxOntology;
using dl::BasicConcept;
using dl::CertainMembers;
using dl::CertainRolePairs;
using dl::CheckAboxConsistency;
using dl::DerivedConcepts;
using dl::Reasoner;
using dl::Role;
using dl::TBox;

// The Figure 4 travel ABox: a few cities with their classes and
// connections.
ABox TravelAbox() {
  ABox abox;
  abox.AddConceptAssertion("Dutch-City", "Amsterdam");
  abox.AddConceptAssertion("EU-City", "Berlin");
  abox.AddConceptAssertion("US-City", "New York");
  abox.AddRoleAssertion("connected", "Amsterdam", "Berlin");
  abox.AddRoleAssertion("hasCountry", "Amsterdam", "Netherlands");
  return abox;
}

TEST(AboxTest, IndividualsAreSortedAndDeduplicated) {
  ABox abox = TravelAbox();
  std::vector<Value> ind = abox.Individuals();
  EXPECT_TRUE(std::is_sorted(ind.begin(), ind.end()));
  EXPECT_EQ(std::adjacent_find(ind.begin(), ind.end()), ind.end());
  EXPECT_EQ(ind.size(), 4u);  // Amsterdam, Berlin, Netherlands, New York
}

TEST(AboxTest, DerivedConceptsFollowTheHierarchy) {
  TBox tbox = workload::CitiesTBox();
  Reasoner reasoner(&tbox);
  ABox abox = TravelAbox();
  std::vector<BasicConcept> derived =
      DerivedConcepts(reasoner, abox, Value("Amsterdam"));
  auto has = [&](const BasicConcept& b) {
    return std::find(derived.begin(), derived.end(), b) != derived.end();
  };
  EXPECT_TRUE(has(BasicConcept::Atomic("Dutch-City")));
  EXPECT_TRUE(has(BasicConcept::Atomic("EU-City")));   // Dutch ⊑ EU
  EXPECT_TRUE(has(BasicConcept::Atomic("City")));      // EU ⊑ City
  EXPECT_TRUE(has(BasicConcept::Exists(Role{"connected", false})));
  EXPECT_TRUE(has(BasicConcept::Exists(Role{"hasCountry", false})));
  EXPECT_FALSE(has(BasicConcept::Atomic("US-City")));
}

TEST(AboxTest, CertainMembersLiftAlongSubsumption) {
  TBox tbox = workload::CitiesTBox();
  Reasoner reasoner(&tbox);
  ABox abox = TravelAbox();
  std::vector<Value> cities =
      CertainMembers(reasoner, abox, BasicConcept::Atomic("City"));
  // Amsterdam (Dutch ⊑ EU ⊑ City), Berlin (EU ⊑ City), New York
  // (US ⊑ N.A. ⊑ City), plus both connected-endpoints are Cities by the
  // ∃connected ⊑ City / ∃connected⁻ ⊑ City axioms.
  EXPECT_TRUE(std::binary_search(cities.begin(), cities.end(),
                                 Value("Amsterdam")));
  EXPECT_TRUE(std::binary_search(cities.begin(), cities.end(),
                                 Value("Berlin")));
  EXPECT_TRUE(std::binary_search(cities.begin(), cities.end(),
                                 Value("New York")));
  EXPECT_FALSE(std::binary_search(cities.begin(), cities.end(),
                                  Value("Netherlands")));
}

TEST(AboxTest, ExistentialMembershipFromRoleAssertions) {
  TBox tbox = workload::CitiesTBox();
  Reasoner reasoner(&tbox);
  ABox abox = TravelAbox();
  std::vector<Value> has_country = CertainMembers(
      reasoner, abox, BasicConcept::Exists(Role{"hasCountry", false}));
  // Amsterdam directly; Berlin and New York via City ⊑ ∃hasCountry (every
  // certain city certainly has a country).
  EXPECT_EQ(has_country,
            (std::vector<Value>{Value("Amsterdam"), Value("Berlin"),
                                Value("New York")}));
  std::vector<Value> countries = CertainMembers(
      reasoner, abox, BasicConcept::Atomic("Country"));
  // ∃hasCountry⁻ ⊑ Country.
  EXPECT_EQ(countries, std::vector<Value>{Value("Netherlands")});
}

TEST(AboxTest, CertainRolePairsRespectInverses) {
  TBox tbox = workload::CitiesTBox();
  Reasoner reasoner(&tbox);
  ABox abox = TravelAbox();
  auto forward =
      CertainRolePairs(reasoner, abox, Role{"connected", false});
  ASSERT_EQ(forward.size(), 1u);
  EXPECT_EQ(forward[0].first, Value("Amsterdam"));
  auto backward = CertainRolePairs(reasoner, abox, Role{"connected", true});
  ASSERT_EQ(backward.size(), 1u);
  EXPECT_EQ(backward[0].first, Value("Berlin"));
}

TEST(AboxTest, ConsistencyAcceptsTravelAbox) {
  TBox tbox = workload::CitiesTBox();
  Reasoner reasoner(&tbox);
  EXPECT_OK(CheckAboxConsistency(reasoner, TravelAbox()));
}

TEST(AboxTest, ConsistencyRejectsDisjointMembership) {
  TBox tbox = workload::CitiesTBox();  // EU-City ⊑ ¬N.A.-City
  Reasoner reasoner(&tbox);
  ABox abox;
  abox.AddConceptAssertion("EU-City", "Springfield");
  abox.AddConceptAssertion("US-City", "Springfield");  // US ⊑ N.A.
  Status st = CheckAboxConsistency(reasoner, abox);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(AboxTest, ConsistencyRejectsDisjointRoles) {
  TBox tbox;
  tbox.AddRoleAxiom(Role{"P", false}, {Role{"Q", false}, /*negated=*/true});
  Reasoner reasoner(&tbox);
  ABox abox;
  abox.AddRoleAssertion("P", 1, 2);
  abox.AddRoleAssertion("Q", 1, 2);
  Status st = CheckAboxConsistency(reasoner, abox);
  ASSERT_FALSE(st.ok());
}

TEST(AboxTest, ConsistencyChecksInverseRoleDisjointness) {
  TBox tbox;
  tbox.AddRoleAxiom(Role{"P", false}, {Role{"Q", true}, /*negated=*/true});
  Reasoner reasoner(&tbox);
  ABox abox;
  abox.AddRoleAssertion("P", 1, 2);
  abox.AddRoleAssertion("Q", 2, 1);  // Q(2,1) means Q⁻(1,2): conflict
  Status st = CheckAboxConsistency(reasoner, abox);
  ASSERT_FALSE(st.ok());
}

TEST(AboxOntologyTest, MakeRejectsInconsistentAbox) {
  TBox tbox = workload::CitiesTBox();
  ABox abox;
  abox.AddConceptAssertion("EU-City", "X");
  abox.AddConceptAssertion("N.A.-City", "X");
  auto result = AboxOntology::Make(&tbox, std::move(abox));
  ASSERT_FALSE(result.ok());
}

TEST(AboxOntologyTest, WorksAsExternalOntologyForWhyNot) {
  // The ABox route end-to-end: the Example 3.4 why-not question answered
  // with an ABox-backed external ontology instead of mappings.
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesDataSchema());
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::CitiesInstance(&schema));
  TBox tbox = workload::CitiesTBox();
  ABox abox;
  abox.AddConceptAssertion("Dutch-City", "Amsterdam");
  abox.AddConceptAssertion("EU-City", "Berlin");
  abox.AddConceptAssertion("EU-City", "Rome");
  abox.AddConceptAssertion("US-City", "New York");
  abox.AddConceptAssertion("US-City", "San Francisco");
  abox.AddConceptAssertion("US-City", "Santa Cruz");
  ASSERT_OK_AND_ASSIGN(auto ontology, AboxOntology::Make(&tbox, abox));

  onto::BoundOntology bound(ontology.get(), &instance);
  ASSERT_OK(bound.CheckConsistent());
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(&instance, workload::ConnectedViaQuery(),
                                  {"Amsterdam", "New York"}));
  ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> mges,
                       explain::ExhaustiveSearchAllMge(&bound, wni));
  ASSERT_FALSE(mges.empty());
  // The paper's MGE (EU-City, N.A.-City) must be among the outputs.
  bool found = false;
  for (const explain::Explanation& e : mges) {
    if (bound.ConceptName(e[0]) == "EU-City" &&
        bound.ConceptName(e[1]) == "N.A.-City") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AboxOntologyTest, ExtIsInstanceIndependent) {
  TBox tbox = workload::CitiesTBox();
  ASSERT_OK_AND_ASSIGN(auto ontology, AboxOntology::Make(&tbox, TravelAbox()));
  rel::Schema schema = testutil::SimpleSchema();
  rel::Instance empty(&schema);
  rel::Instance nonempty(&schema);
  ASSERT_OK(nonempty.AddFact("U", {Value("Amsterdam")}));
  ValuePool pool;
  for (onto::ConceptId id = 0; id < ontology->NumConcepts(); ++id) {
    onto::ExtSet a = ontology->ComputeExt(id, empty, &pool);
    onto::ExtSet b = ontology->ComputeExt(id, nonempty, &pool);
    EXPECT_TRUE(a.SubsetOf(b) && b.SubsetOf(a));
  }
}

// Soundness sweep: every derived membership holds in every model of the
// TBox that extends the ABox (spot-checked on random satisfying
// interpretations built from the assertions).
class AboxSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AboxSoundnessTest, DerivedMembershipsHoldInExtendingModels) {
  uint64_t seed = GetParam();
  dl::TBox tbox = workload::RandomTBox(4, 2, 6, seed, /*negative_percent=*/0);
  Reasoner reasoner(&tbox);
  // Random ABox over a small individual pool.
  workload::Rng rng(seed * 17 + 3);
  ABox abox;
  const std::set<std::string> concept_set = tbox.AtomicConcepts();
  const std::set<std::string> role_set = tbox.AtomicRoles();
  std::vector<std::string> concepts(concept_set.begin(), concept_set.end());
  std::vector<std::string> roles(role_set.begin(), role_set.end());
  for (int i = 0; i < 8; ++i) {
    if (!roles.empty() && rng.Chance(1, 2)) {
      abox.AddRoleAssertion(
          roles[rng.Below(roles.size())],
          Value(static_cast<int64_t>(rng.Below(4))),
          Value(static_cast<int64_t>(rng.Below(4))));
    } else if (!concepts.empty()) {
      abox.AddConceptAssertion(concepts[rng.Below(concepts.size())],
                               Value(static_cast<int64_t>(rng.Below(4))));
    }
  }
  if (!CheckAboxConsistency(reasoner, abox).ok()) {
    GTEST_SKIP() << "inconsistent random ABox";
  }
  // Build a model: start from the assertions, then saturate under the
  // positive closure by adding memberships/fillers until fixpoint.
  dl::Interpretation interp;
  for (const auto& [name, members] : abox.concept_assertions()) {
    for (const Value& c : members) interp.AddConceptMember(name, c);
  }
  for (const auto& [name, pairs] : abox.role_assertions()) {
    for (const auto& [c, d] : pairs) interp.AddRolePair(name, c, d);
  }
  int64_t fresh = 100;
  for (int round = 0; round < 20 && !interp.Satisfies(tbox); ++round) {
    for (const dl::ConceptAxiom& ax : tbox.concept_axioms()) {
      if (ax.rhs.negated) continue;
      for (const Value& v : interp.Eval(ax.lhs)) {
        if (ax.rhs.basic.kind == dl::BasicConcept::Kind::kAtomic) {
          interp.AddConceptMember(ax.rhs.basic.atomic, v);
        } else if (interp.Eval(ax.rhs.basic).count(v) == 0) {
          dl::Role r = ax.rhs.basic.role;
          Value filler(fresh++);
          if (r.inverse) {
            interp.AddRolePair(r.name, filler, v);
          } else {
            interp.AddRolePair(r.name, v, filler);
          }
        }
      }
    }
    for (const dl::RoleAxiom& ax : tbox.role_axioms()) {
      if (ax.rhs.negated) continue;
      for (const auto& [x, y] : interp.EvalRole(ax.lhs)) {
        if (ax.rhs.role.inverse) {
          interp.AddRolePair(ax.rhs.role.name, y, x);
        } else {
          interp.AddRolePair(ax.rhs.role.name, x, y);
        }
      }
    }
  }
  if (!interp.Satisfies(tbox)) GTEST_SKIP() << "saturation did not converge";
  // Every certain membership must hold in this model.
  for (const dl::BasicConcept& b : reasoner.Universe()) {
    std::set<Value> model_ext = interp.Eval(b);
    for (const Value& c : CertainMembers(reasoner, abox, b)) {
      EXPECT_TRUE(model_ext.count(c) > 0)
          << "seed " << seed << ": certain " << b.ToString() << "("
          << c.ToString() << ") missing from a model";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AboxSoundnessTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace whynot
