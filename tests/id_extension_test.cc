// Property tests for the id-space ls::Extension and the answer-cover
// kernel (PR 3): the bitmap-backed Eval / Contains / SubsetOf / Intersect
// and both product-vs-answers forms must agree exactly with a boxed
// reference implementation on random instances, the SIMD word kernels must
// match the scalar definitions, and incremental column-index maintenance
// must produce the same index as a cold full rebuild.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "test_util.h"
#include "whynot/common/algorithm.h"

namespace whynot {
namespace {

using explain::LsAnswerCovers;
using ls::Conjunct;
using ls::LsConcept;
using testutil::ExtValues;
using workload::Rng;

// --- Boxed reference semantics (the pre-PR-3 representation). --------------

struct RefExtension {
  bool all = false;
  std::vector<Value> values;  // sorted, deduplicated
};

RefExtension RefEvalConjunct(const Conjunct& c, const rel::Instance& inst) {
  RefExtension out;
  switch (c.kind) {
    case Conjunct::Kind::kTop:
      out.all = true;
      return out;
    case Conjunct::Kind::kNominal:
      out.values = {c.nominal};
      return out;
    case Conjunct::Kind::kProjection: {
      for (const Tuple& t : inst.Relation(c.relation)) {
        bool pass = true;
        for (const ls::Selection& s : c.selections) {
          if (!rel::EvalCmp(t[static_cast<size_t>(s.attr)], s.op,
                            s.constant)) {
            pass = false;
            break;
          }
        }
        if (pass) out.values.push_back(t[static_cast<size_t>(c.attr)]);
      }
      std::sort(out.values.begin(), out.values.end());
      out.values.erase(std::unique(out.values.begin(), out.values.end()),
                       out.values.end());
      return out;
    }
  }
  return out;
}

RefExtension RefEval(const LsConcept& concept_expr,
                     const rel::Instance& inst) {
  RefExtension ext;
  ext.all = true;
  for (const Conjunct& c : concept_expr.conjuncts()) {
    RefExtension e = RefEvalConjunct(c, inst);
    if (e.all) continue;
    if (ext.all) {
      ext = std::move(e);
      continue;
    }
    std::vector<Value> both;
    std::set_intersection(ext.values.begin(), ext.values.end(),
                          e.values.begin(), e.values.end(),
                          std::back_inserter(both));
    ext.values = std::move(both);
  }
  return ext;
}

bool RefContains(const RefExtension& e, const Value& v) {
  if (e.all) return true;
  return std::binary_search(e.values.begin(), e.values.end(), v);
}

// --- Random instances and concepts. ----------------------------------------

Value RandomValue(Rng* rng, int domain) {
  uint64_t k = rng->Below(static_cast<uint64_t>(domain));
  switch (rng->Below(4)) {
    case 0:
      return Value(static_cast<int64_t>(k));
    case 1:
      return Value(static_cast<double>(k) + 0.5);
    case 2:
      return Value("s" + std::to_string(k));
    default:
      return Value(static_cast<double>(k));
  }
}

rel::Schema TwoRelationSchema() {
  rel::Schema schema;
  EXPECT_TRUE(schema.AddRelation("R", {"a", "b"}).ok());
  EXPECT_TRUE(schema.AddRelation("S", {"a", "b", "c"}).ok());
  return schema;
}

rel::Instance RandomInstance(const rel::Schema* schema, Rng* rng, int rows,
                             int domain) {
  rel::Instance instance(schema);
  for (const rel::RelationDef& def : schema->relations()) {
    for (int i = 0; i < rows; ++i) {
      Tuple t;
      for (size_t a = 0; a < def.arity(); ++a) {
        t.push_back(RandomValue(rng, domain));
      }
      EXPECT_TRUE(instance.AddFact(def.name(), std::move(t)).ok());
    }
  }
  return instance;
}

Conjunct RandomConjunct(Rng* rng, int domain) {
  switch (rng->Below(6)) {
    case 0:
      return Conjunct::Top();
    case 1:
      // Out-of-instance nominal with high probability: exercises the
      // extras (non-pool) representation.
      return Conjunct::Nominal(Value("extra" + std::to_string(rng->Below(4))));
    case 2:
      return Conjunct::Nominal(RandomValue(rng, domain));
    default: {
      bool ternary = rng->Chance(1, 3);
      std::string relation = ternary ? "S" : "R";
      int arity = ternary ? 3 : 2;
      int attr = static_cast<int>(rng->Below(static_cast<uint64_t>(arity)));
      std::vector<ls::Selection> sels;
      static const rel::CmpOp kOps[] = {rel::CmpOp::kEq, rel::CmpOp::kLt,
                                        rel::CmpOp::kGt, rel::CmpOp::kLe,
                                        rel::CmpOp::kGe};
      while (rng->Chance(1, 3) && sels.size() < 2) {
        sels.push_back(
            {static_cast<int>(rng->Below(static_cast<uint64_t>(arity))),
             kOps[rng->Below(5)], RandomValue(rng, domain)});
      }
      return Conjunct::Projection(relation, attr, std::move(sels));
    }
  }
}

LsConcept RandomConcept(Rng* rng, int domain) {
  std::vector<Conjunct> conjuncts;
  size_t n = 1 + rng->Below(3);
  for (size_t i = 0; i < n; ++i) {
    conjuncts.push_back(RandomConjunct(rng, domain));
  }
  return LsConcept(std::move(conjuncts));
}

// --- Eval / set-op agreement. ----------------------------------------------

class IdExtensionAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IdExtensionAgreementTest, EvalMatchesBoxedReference) {
  Rng rng(GetParam());
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance = RandomInstance(&schema, &rng, 20, 8);
  for (int i = 0; i < 40; ++i) {
    LsConcept c = RandomConcept(&rng, 8);
    ls::Extension got = ls::Eval(c, instance);
    RefExtension want = RefEval(c, instance);
    EXPECT_EQ(got.all, want.all) << c.ToString();
    if (!want.all) {
      EXPECT_EQ(got.values(), want.values) << c.ToString();
      EXPECT_EQ(got.CardinalityOrInfinite(), want.values.size());
    }
  }
}

TEST_P(IdExtensionAgreementTest, ContainsMatchesBoxedReference) {
  Rng rng(GetParam() ^ 0x11ull);
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance = RandomInstance(&schema, &rng, 15, 6);
  const ValuePool& pool = instance.pool();
  for (int i = 0; i < 20; ++i) {
    LsConcept c = RandomConcept(&rng, 6);
    ls::Extension got = ls::Eval(c, instance);
    RefExtension want = RefEval(c, instance);
    for (int p = 0; p < 20; ++p) {
      Value v = p % 3 == 0 ? Value("extra" + std::to_string(rng.Below(4)))
                           : RandomValue(&rng, 6);
      EXPECT_EQ(got.Contains(v), RefContains(want, v)) << c.ToString();
      EXPECT_EQ(got.ContainsInterned(pool.Lookup(v), v),
                RefContains(want, v))
          << c.ToString();
    }
    // Every id probe agrees with the boxed probe over the whole pool.
    for (ValueId id = 0; id < pool.size(); ++id) {
      EXPECT_EQ(got.ContainsId(id), RefContains(want, pool.Get(id)));
    }
  }
}

TEST_P(IdExtensionAgreementTest, SetOpsMatchBoxedReference) {
  Rng rng(GetParam() ^ 0x22ull);
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance = RandomInstance(&schema, &rng, 15, 6);
  for (int i = 0; i < 30; ++i) {
    LsConcept c1 = RandomConcept(&rng, 6);
    LsConcept c2 = RandomConcept(&rng, 6);
    ls::Extension e1 = ls::Eval(c1, instance);
    ls::Extension e2 = ls::Eval(c2, instance);
    RefExtension r1 = RefEval(c1, instance);
    RefExtension r2 = RefEval(c2, instance);

    bool want_subset =
        r2.all ||
        (!r1.all && std::includes(r2.values.begin(), r2.values.end(),
                                  r1.values.begin(), r1.values.end()));
    EXPECT_EQ(e1.SubsetOf(e2), want_subset)
        << c1.ToString() << " vs " << c2.ToString();
    // Exercise the word-parallel branch too (both bitmaps forced).
    if (!e1.all && !e2.all) {
      e1.bits();
      e2.bits();
      EXPECT_EQ(e1.SubsetOf(e2), want_subset);
    }

    ls::Extension meet = e1.Intersect(e2);
    if (r1.all && r2.all) {
      EXPECT_TRUE(meet.all);
    } else {
      std::vector<Value> want;
      if (r1.all) {
        want = r2.values;
      } else if (r2.all) {
        want = r1.values;
      } else {
        std::set_intersection(r1.values.begin(), r1.values.end(),
                              r2.values.begin(), r2.values.end(),
                              std::back_inserter(want));
      }
      EXPECT_EQ(meet.values(), want);
    }

    bool want_eq = r1.all == r2.all &&
                   (r1.all || r1.values == r2.values);
    EXPECT_EQ(e1 == e2, want_eq);
  }
}

TEST_P(IdExtensionAgreementTest, MixedPoolOpsFallBackToBoxed) {
  Rng rng(GetParam() ^ 0x33ull);
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance = RandomInstance(&schema, &rng, 10, 5);
  for (int i = 0; i < 20; ++i) {
    LsConcept c = RandomConcept(&rng, 5);
    ls::Extension pooled = ls::Eval(c, instance);
    if (pooled.all) continue;
    // A pool-less copy with the same members must behave identically.
    ls::Extension boxed = ls::Extension::Of(pooled.values());
    EXPECT_TRUE(pooled.SubsetOf(boxed));
    EXPECT_TRUE(boxed.SubsetOf(pooled));
    EXPECT_TRUE(pooled == boxed);
    EXPECT_EQ(pooled.Intersect(boxed).values(), pooled.values());
    for (const Value& v : pooled.values()) {
      EXPECT_TRUE(boxed.Contains(v));
    }
  }
}

// --- Product-vs-answers agreement (the answer-cover kernel). ---------------

TEST_P(IdExtensionAgreementTest, AnswerCoversMatchScalarReference) {
  Rng rng(GetParam() ^ 0x44ull);
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance = RandomInstance(&schema, &rng, 15, 6);
  size_t m = 2 + rng.Below(2);

  // Random answer set over the active domain plus a few foreign values.
  std::vector<Tuple> answers;
  const std::vector<Value>& adom = instance.ActiveDomain();
  for (int a = 0; a < 12; ++a) {
    Tuple t;
    for (size_t j = 0; j < m; ++j) {
      t.push_back(rng.Chance(1, 8)
                      ? Value("extra" + std::to_string(rng.Below(4)))
                      : adom[rng.Below(adom.size())]);
    }
    answers.push_back(std::move(t));
  }
  SortUnique(&answers);

  LsAnswerCovers covers(&instance, &answers);
  // Stable storage for extensions (identity-keyed cover cache).
  std::deque<ls::Extension> store;
  std::deque<RefExtension> ref_store;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<const ls::Extension*> exts;
    std::vector<const RefExtension*> refs;
    for (size_t j = 0; j < m; ++j) {
      LsConcept c = RandomConcept(&rng, 6);
      store.push_back(ls::Eval(c, instance));
      ref_store.push_back(RefEval(c, instance));
      exts.push_back(&store.back());
      refs.push_back(&ref_store.back());
    }
    bool want_intersects = false;
    size_t want_covered = 0;
    for (const Tuple& ans : answers) {
      bool inside = true;
      for (size_t j = 0; j < m && inside; ++j) {
        inside = RefContains(*refs[j], ans[j]);
      }
      if (inside) {
        want_intersects = true;
        ++want_covered;
      }
    }
    EXPECT_EQ(covers.ProductIntersects(exts), want_intersects);
    EXPECT_EQ(covers.CountCovered(exts), want_covered);
    // Swap form agrees with the copy-free probe convention.
    for (size_t j = 0; j < m; ++j) {
      std::vector<const ls::Extension*> swapped = exts;
      std::rotate(swapped.begin(), swapped.begin() + 1, swapped.end());
      EXPECT_EQ(covers.ProductIntersects(exts, j, swapped[j]),
                [&] {
                  std::vector<const ls::Extension*> probe = exts;
                  probe[j] = swapped[j];
                  return covers.ProductIntersects(probe);
                }());
    }
  }
}

TEST_P(IdExtensionAgreementTest, IsLsExplanationMatchesScalarReference) {
  Rng rng(GetParam() ^ 0x55ull);
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance = RandomInstance(&schema, &rng, 12, 5);
  const std::vector<Value>& adom = instance.ActiveDomain();
  size_t m = 2;

  explain::WhyNotInstance wni;
  wni.instance = &instance;
  for (int a = 0; a < 10; ++a) {
    Tuple t;
    for (size_t j = 0; j < m; ++j) t.push_back(adom[rng.Below(adom.size())]);
    wni.answers.push_back(std::move(t));
  }
  SortUnique(&wni.answers);
  wni.missing = Tuple{Value("extra0"), adom[rng.Below(adom.size())]};
  // Keep missing ∉ Ans (first component is foreign).

  for (int trial = 0; trial < 25; ++trial) {
    explain::LsExplanation e;
    for (size_t j = 0; j < m; ++j) e.push_back(RandomConcept(&rng, 5));

    bool want = true;
    std::vector<RefExtension> refs;
    for (size_t j = 0; j < m; ++j) {
      refs.push_back(RefEval(e[j], instance));
      if (!RefContains(refs[j], wni.missing[j])) want = false;
    }
    if (want) {
      for (const Tuple& ans : wni.answers) {
        bool inside = true;
        for (size_t j = 0; j < m && inside; ++j) {
          inside = RefContains(refs[j], ans[j]);
        }
        if (inside) {
          want = false;
          break;
        }
      }
    }
    EXPECT_EQ(explain::IsLsExplanation(wni, e), want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IdExtensionAgreementTest,
                         ::testing::Values(7ull, 23ull, 101ull, 555ull,
                                           90210ull));

// --- SIMD word kernels vs scalar definitions. ------------------------------

class BitmapKernelTest : public ::testing::TestWithParam<uint64_t> {};

std::vector<ValueId> RandomIds(Rng* rng, int32_t universe, size_t count) {
  std::set<ValueId> ids;
  for (size_t i = 0; i < count; ++i) {
    ids.insert(static_cast<ValueId>(rng->Below(
        static_cast<uint64_t>(universe))));
  }
  return std::vector<ValueId>(ids.begin(), ids.end());
}

TEST_P(BitmapKernelTest, KernelsMatchScalarDefinitions) {
  Rng rng(GetParam());
  // Sizes straddling the SIMD minimum (8 words = 512 bits) exercise
  // whichever lane the runtime shim dispatches to — AVX2 on x86-64, NEON
  // on aarch64 — against the scalar definitions, including the scalar
  // fallback below the threshold. 640/704/770 give word counts of
  // 10/11/13, whose remainders mod the 4-word (AVX2) and 2-word (NEON
  // popcount) strides land in every tail class of both lanes.
  for (int32_t universe : {40, 130, 500, 513, 640, 704, 770, 2048, 4096}) {
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<ValueId> a_ids =
          RandomIds(&rng, universe, static_cast<size_t>(universe) / 3 + 1);
      std::vector<ValueId> b_ids =
          RandomIds(&rng, universe, static_cast<size_t>(universe) / 3 + 1);
      DenseBitmap a(a_ids, universe);
      DenseBitmap b(b_ids, universe);

      bool want_subset = std::includes(b_ids.begin(), b_ids.end(),
                                       a_ids.begin(), a_ids.end());
      EXPECT_EQ(a.SubsetOf(b), want_subset);
      EXPECT_TRUE(a.SubsetOf(a));

      // A genuine subset must pass (random pairs almost never do).
      std::vector<ValueId> half;
      for (size_t i = 0; i < a_ids.size(); i += 2) half.push_back(a_ids[i]);
      EXPECT_TRUE(DenseBitmap(half, universe).SubsetOf(a));

      std::vector<ValueId> want_meet;
      std::set_intersection(a_ids.begin(), a_ids.end(), b_ids.begin(),
                            b_ids.end(), std::back_inserter(want_meet));
      EXPECT_EQ(DenseBitmap::Intersect(a, b).ToIds(), want_meet);

      EXPECT_EQ(a.Count(), a_ids.size());
      EXPECT_EQ(b.Count(), b_ids.size());
    }
  }
}

TEST_P(BitmapKernelTest, FusedAndCountMatchesScalarReference) {
  Rng rng(GetParam() ^ 0xabcdull);
  // Word counts straddling the 8-word SIMD threshold plus every remainder
  // class of the 4-word (AVX2) and 2-word (NEON) strides: below 8 the
  // dispatch takes the scalar loop, above it the SIMD lane with each
  // possible scalar tail length.
  for (size_t nwords : {size_t{0}, size_t{1}, size_t{3}, size_t{7},
                        size_t{8}, size_t{9}, size_t{10}, size_t{11},
                        size_t{12}, size_t{13}, size_t{31}, size_t{64}}) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<uint64_t> a(nwords), b(nwords);
      for (size_t w = 0; w < nwords; ++w) {
        a[w] = rng.Below(~uint64_t{0});
        b[w] = rng.Below(~uint64_t{0});
      }
      size_t want = 0;
      for (size_t w = 0; w < nwords; ++w) {
        want += static_cast<size_t>(__builtin_popcountll(a[w] & b[w]));
      }
      EXPECT_EQ(DenseBitmap::AndCountWords(a.data(), b.data(), nwords), want)
          << "nwords=" << nwords;
      size_t want_pop = 0;
      for (size_t w = 0; w < nwords; ++w) {
        want_pop += static_cast<size_t>(__builtin_popcountll(a[w]));
      }
      EXPECT_EQ(DenseBitmap::PopcountWords(a.data(), nwords), want_pop);
    }
  }
}

TEST_P(BitmapKernelTest, AllSetAndSetBehave) {
  Rng rng(GetParam() ^ 0x77ull);
  for (int32_t n : {0, 1, 63, 64, 65, 600}) {
    DenseBitmap full = DenseBitmap::AllSet(n);
    EXPECT_EQ(full.Count(), static_cast<size_t>(n));
    EXPECT_EQ(full.Any(), n > 0);
    if (n > 0) {
      EXPECT_TRUE(full.Test(0));
      EXPECT_TRUE(full.Test(n - 1));
      EXPECT_FALSE(full.Test(n));
    }
  }
  DenseBitmap grow;
  std::set<ValueId> want;
  for (int i = 0; i < 100; ++i) {
    ValueId id = static_cast<ValueId>(rng.Below(1000));
    grow.Set(id);
    want.insert(id);
  }
  EXPECT_EQ(grow.ToIds(), std::vector<ValueId>(want.begin(), want.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitmapKernelTest,
                         ::testing::Values(3ull, 17ull, 4242ull));

// --- Incremental column-index maintenance. ---------------------------------

class IncrementalIndexTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalIndexTest, MergedIndexMatchesColdRebuild) {
  Rng rng(GetParam());
  rel::Schema schema = TwoRelationSchema();
  rel::Instance instance = RandomInstance(&schema, &rng, 40, 10);

  // Warm every index, then interleave appends with accesses.
  for (const rel::RelationDef& def : schema.relations()) {
    const rel::StoredRelation* rel = instance.Find(def.name());
    ASSERT_NE(rel, nullptr);
    for (size_t a = 0; a < def.arity(); ++a) rel->Index(a);
  }
  for (int round = 0; round < 5; ++round) {
    for (const rel::RelationDef& def : schema.relations()) {
      for (int i = 0; i < 7; ++i) {
        Tuple t;
        for (size_t a = 0; a < def.arity(); ++a) {
          t.push_back(RandomValue(&rng, 10 + round));
        }
        ASSERT_OK(instance.AddFact(def.name(), std::move(t)));
      }
    }
    // A copy restarts its lazy caches cold: its Index() is a full rebuild
    // over identical rows, so merged and rebuilt indexes must agree.
    rel::Instance cold(instance);
    for (const rel::RelationDef& def : schema.relations()) {
      const rel::StoredRelation* warm_rel = instance.Find(def.name());
      const rel::StoredRelation* cold_rel = cold.Find(def.name());
      for (size_t a = 0; a < def.arity(); ++a) {
        const auto& warm = warm_rel->Index(a);
        const auto& rebuilt = cold_rel->Index(a);
        EXPECT_EQ(warm.keys, rebuilt.keys);
        EXPECT_EQ(warm.offsets, rebuilt.offsets);
        EXPECT_EQ(warm.rows, rebuilt.rows);
        EXPECT_EQ(warm.distinct.ToIds(), rebuilt.distinct.ToIds());
        // RowsEqual probes agree for every key (and a miss).
        for (ValueId key : warm.keys) {
          auto [wb, we] = warm_rel->RowsEqual(a, key);
          auto [cb, ce] = cold_rel->RowsEqual(a, key);
          EXPECT_EQ(std::vector<uint32_t>(wb, we),
                    std::vector<uint32_t>(cb, ce));
        }
        EXPECT_EQ(warm_rel->RowsEqual(a, instance.pool().size() + 5).first,
                  nullptr);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalIndexTest,
                         ::testing::Values(11ull, 77ull, 1234ull));

}  // namespace
}  // namespace whynot
