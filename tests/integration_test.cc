#include <gtest/gtest.h>

#include "test_util.h"

namespace whynot {
namespace {

using explain::Explanation;
using explain::LsExplanation;

/// End-to-end reproduction of the paper's running example across all three
/// ontology sources (external Figure 3, OBDA-induced Figure 4, derived OI).
TEST(IntegrationTest, RunningExampleAcrossAllOntologySources) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesDataSchema());
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::CitiesInstance(&schema));
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(&instance, workload::ConnectedViaQuery(),
                                  {"Amsterdam", "New York"}));
  // Example 3.4: q(I) = the four pairs of Figure 2.
  std::vector<Tuple> expected = {
      {Value("Amsterdam"), Value("Amsterdam")},
      {Value("Amsterdam"), Value("Rome")},
      {Value("Berlin"), Value("Berlin")},
      {Value("New York"), Value("Santa Cruz")}};
  EXPECT_EQ(wni.answers, expected);

  // External ontology (Figure 3): E4 among the MGEs.
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<onto::ExplicitOntology> fig3,
                       workload::CitiesOntology());
  onto::BoundOntology bound3(fig3.get(), &instance);
  ASSERT_OK(bound3.CheckConsistent());
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> mges3,
                       explain::ExhaustiveSearchAllMge(&bound3, wni));
  bool found_e4 = false;
  for (const Explanation& e : mges3) {
    if (explain::ExplanationToString(bound3, e) ==
        "(European-City, US-City)") {
      found_e4 = true;
    }
  }
  EXPECT_TRUE(found_e4);

  // OBDA-induced ontology (Figure 4 / Example 4.5): E1 among the MGEs.
  obda::ObdaSpec spec(workload::CitiesTBox(), &schema,
                      workload::CitiesMappings());
  ASSERT_OK(spec.Validate());
  ASSERT_OK(spec.CheckConsistent(instance));
  obda::ObdaInducedOntology induced(&spec);
  onto::BoundOntology bound4(&induced, &instance);
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> mges4,
                       explain::ExhaustiveSearchAllMge(&bound4, wni));
  bool found_e1 = false;
  for (const Explanation& e : mges4) {
    if (explain::ExplanationToString(bound4, e) == "(EU-City, N.A.-City)") {
      found_e1 = true;
    }
  }
  EXPECT_TRUE(found_e1);

  // Derived ontology OI (Section 4.2 / Algorithm 2).
  explain::IncrementalOptions options;
  ASSERT_OK_AND_ASSIGN(LsExplanation derived,
                       explain::IncrementalSearch(wni, options));
  EXPECT_TRUE(explain::IsLsExplanation(wni, derived));
}

TEST(IntegrationTest, RetailScenarioHeadlineResult) {
  ASSERT_OK_AND_ASSIGN(workload::RetailScenario s,
                       workload::MakeRetailScenario());
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(s.instance.get(), s.stock_query,
                                  s.missing));
  onto::BoundOntology bound(s.ontology.get(), s.instance.get());
  ASSERT_OK(bound.CheckConsistent());
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> mges,
                       explain::ExhaustiveSearchAllMge(&bound, wni));
  ASSERT_EQ(mges.size(), 1u);
  EXPECT_EQ(explain::ExplanationToString(bound, mges[0]),
            "(Bluetooth-Headset, California-Store)");
}

TEST(IntegrationTest, RetailScales) {
  ASSERT_OK_AND_ASSIGN(workload::RetailScenario s,
                       workload::MakeRetailScenario(8, 6));
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(s.instance.get(), s.stock_query,
                                  s.missing));
  onto::BoundOntology bound(s.ontology.get(), s.instance.get());
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> mges,
                       explain::ExhaustiveSearchAllMge(&bound, wni));
  ASSERT_EQ(mges.size(), 1u);
  EXPECT_EQ(explain::ExplanationToString(bound, mges[0]),
            "(Bluetooth-Headset, California-Store)");
}

TEST(IntegrationTest, ScaledWorldExplanations) {
  ASSERT_OK_AND_ASSIGN(workload::ScaledWorld world,
                       workload::MakeScaledWorld(3, 2, 4));
  onto::BoundOntology bound(world.ontology.get(), world.instance.get());
  ASSERT_OK(bound.CheckConsistent());
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(world.instance.get(),
                                  workload::ConnectedViaQuery(),
                                  world.missing_pair));
  ASSERT_OK_AND_ASSIGN(std::vector<Explanation> mges,
                       explain::ExhaustiveSearchAllMge(&bound, wni));
  ASSERT_FALSE(mges.empty());
  for (const Explanation& e : mges) {
    ASSERT_OK_AND_ASSIGN(bool check,
                         explain::CheckMgeExternal(&bound, wni, e));
    EXPECT_TRUE(check);
  }
}

TEST(IntegrationTest, Proposition43ExplanationsTransferBetweenOiAndOs) {
  // Prop 4.3(i): E is an explanation w.r.t. OS iff w.r.t. OI — both use the
  // same ext on the given instance. We verify the underlying invariant: the
  // explanation check depends only on extensions over I.
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesSchema());
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::CitiesInstance(&schema));
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(&instance, workload::ConnectedViaQuery(),
                                  {"Amsterdam", "New York"}));
  ASSERT_OK_AND_ASSIGN(
      ls::LsConcept eu,
      ls::ParseConcept("pi[name](sigma[continent = Europe](Cities))",
                       schema));
  ASSERT_OK_AND_ASSIGN(
      ls::LsConcept na,
      ls::ParseConcept("pi[name](sigma[continent = 'N.America'](Cities))",
                       schema));
  LsExplanation e2 = {eu, na};
  EXPECT_TRUE(explain::IsLsExplanation(wni, e2));
  // The same check is what both OS- and OI-relative explanations use;
  // most-generality may differ (Prop 4.3(ii)), demonstrated in
  // examples/derived_ontology.cpp.
}

TEST(IntegrationTest, DerivedSchemaOntologyMgeOnPureViewSchema) {
  // Proposition 5.3 route: materialize OS[K] for LminS over a views-only
  // schema and compute MGEs via Algorithm 1.
  rel::Schema schema;
  ASSERT_OK(schema.AddRelation("Cities", {"name", "population"}));
  rel::ConjunctiveQuery big;
  big.head = {"x"};
  big.atoms = {testutil::A("Cities", {testutil::V("x"), testutil::V("y")})};
  big.comparisons = {{"y", rel::CmpOp::kGe, Value(100)}};
  ASSERT_OK(schema.AddView("Big", {"name"}, testutil::Q1(big)));
  rel::Instance instance(&schema);
  ASSERT_OK(instance.AddFact("Cities", {Value("a"), Value(50)}));
  ASSERT_OK(instance.AddFact("Cities", {Value("b"), Value(150)}));
  ASSERT_OK(rel::MaterializeViews(&instance));

  // Query: big cities. Why is "a" missing?
  rel::ConjunctiveQuery q;
  q.head = {"x"};
  q.atoms = {testutil::A("Big", {testutil::V("x")})};
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(&instance, testutil::Q1(q), {Value("a")}));

  explain::DerivedMgeOptions options;
  options.fragment = ls::Fragment::kMinimal;
  options.mode = ls::SubsumptionMode::kSchema;
  ASSERT_OK_AND_ASSIGN(std::vector<LsExplanation> mges,
                       explain::ComputeAllMgeDerived(wni, options));
  ASSERT_FALSE(mges.empty());
  for (const LsExplanation& e : mges) {
    EXPECT_TRUE(explain::IsLsExplanation(wni, e));
  }
}

TEST(IntegrationTest, WhyNotValidation) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesDataSchema());
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::CitiesInstance(&schema));
  // A tuple that IS an answer cannot be asked about.
  Result<explain::WhyNotInstance> bad = explain::MakeWhyNotInstance(
      &instance, workload::ConnectedViaQuery(),
      {"Amsterdam", "Rome"});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // Arity mismatches are rejected.
  Result<explain::WhyNotInstance> wrong = explain::MakeWhyNotInstance(
      &instance, workload::ConnectedViaQuery(), {"Amsterdam"});
  EXPECT_FALSE(wrong.ok());
}

}  // namespace
}  // namespace whynot
