#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <vector>

#include "test_util.h"
#include "whynot/text/dot_export.h"
#include "whynot/text/parsers.h"
#include "whynot/text/text_util.h"

namespace whynot {
namespace {

using text::LogicalLines;
using text::ParseAbox;
using text::ParseFactsInto;
using text::ParseMappings;
using text::ParseQuery;
using text::ParseSchema;
using text::ParseTBox;
using text::ParseTuple;
using text::ParseValueLiteral;
using text::SplitOnce;
using text::SplitTopLevel;

// The Figure 1 schema as a document.
constexpr char kTravelSchema[] = R"(
# Figure 1
relation Cities(name, population, country, continent)
relation Train-Connections(city_from, city_to)
view BigCity(name) := Cities(name, y, z, w), y >= 5000000
view EuropeanCountry(name) := Cities(x, y, name, w), w = "Europe"
view Reachable(a, b) := Train-Connections(a, b) | Train-Connections(a, z), Train-Connections(z, b)
fd Cities: country -> continent
id Train-Connections[city_from] <= Cities[name]
)";

constexpr char kTravelFacts[] = R"(
Cities(Amsterdam, 779808, Netherlands, Europe)
Cities(Berlin, 3502000, Germany, Europe)
Cities("New York", 8337000, USA, N.America)
Train-Connections(Amsterdam, Berlin)
Train-Connections(Berlin, Amsterdam)
)";

// --- text_util -------------------------------------------------------------

TEST(TextUtilTest, SplitTopLevelRespectsNesting) {
  std::vector<std::string> parts =
      SplitTopLevel("R(a, b), x >= 5, S(c, \"x,y\")", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "R(a, b)");
  EXPECT_EQ(parts[1], "x >= 5");
  EXPECT_EQ(parts[2], "S(c, \"x,y\")");
}

TEST(TextUtilTest, SplitOnceRequiresExactlyOne) {
  EXPECT_TRUE(SplitOnce("a := b", ":=").ok());
  EXPECT_FALSE(SplitOnce("a := b := c", ":=").ok());
  EXPECT_FALSE(SplitOnce("a b", ":=").ok());
}

TEST(TextUtilTest, SplitOnceIgnoresNestedSeparators) {
  ASSERT_OK_AND_ASSIGN(auto parts, SplitOnce("V(x) := R(x), x >= 1", ":="));
  EXPECT_EQ(parts.first, "V(x)");
}

TEST(TextUtilTest, ValueLiterals) {
  EXPECT_EQ(ParseValueLiteral("42").value(), Value(42));
  EXPECT_EQ(ParseValueLiteral("-7").value(), Value(-7));
  EXPECT_EQ(ParseValueLiteral("2.5").value(), Value(2.5));
  EXPECT_EQ(ParseValueLiteral("word").value(), Value("word"));
  EXPECT_EQ(ParseValueLiteral("\"two words\"").value(), Value("two words"));
  EXPECT_EQ(ParseValueLiteral("\"esc \\\" ok\"").value(), Value("esc \" ok"));
  EXPECT_FALSE(ParseValueLiteral("").ok());
  EXPECT_FALSE(ParseValueLiteral("\"open").ok());
}

TEST(TextUtilTest, LogicalLinesStripCommentsAndBlanks) {
  auto lines = LogicalLines("a\n\n# comment\n b # trailing\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], std::make_pair(1, std::string("a")));
  EXPECT_EQ(lines[1], std::make_pair(4, std::string("b")));
}

// --- schema / facts ----------------------------------------------------------

TEST(SchemaParserTest, ParsesTravelSchema) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  EXPECT_EQ(schema.relations().size(), 5u);
  EXPECT_TRUE(schema.Get("BigCity").is_view());
  EXPECT_FALSE(schema.Get("Cities").is_view());
  EXPECT_EQ(schema.fds().size(), 1u);
  EXPECT_EQ(schema.ids().size(), 1u);
  const rel::ViewDef* reachable = schema.FindView("Reachable");
  ASSERT_NE(reachable, nullptr);
  EXPECT_EQ(reachable->definition.disjuncts.size(), 2u);
}

TEST(SchemaParserTest, FdAttributesByNameOrIndex) {
  ASSERT_OK_AND_ASSIGN(rel::Schema by_name,
                       ParseSchema("relation R(a, b)\nfd R: a -> b"));
  ASSERT_OK_AND_ASSIGN(rel::Schema by_index,
                       ParseSchema("relation R(a, b)\nfd R: 0 -> 1"));
  EXPECT_EQ(by_name.fds()[0].lhs, by_index.fds()[0].lhs);
  EXPECT_EQ(by_name.fds()[0].rhs, by_index.fds()[0].rhs);
}

TEST(SchemaParserTest, ErrorsCarryLineNumbers) {
  auto result = ParseSchema("relation R(a, b)\nnonsense here");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(SchemaParserTest, RejectsUnknownRelationInFd) {
  EXPECT_FALSE(ParseSchema("fd R: a -> b").ok());
}

TEST(FactsParserTest, ParsesAndMaterializes) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  rel::Instance instance(&schema);
  ASSERT_OK(ParseFactsInto(kTravelFacts, &instance));
  EXPECT_EQ(instance.Relation("Cities").size(), 3u);
  EXPECT_TRUE(instance.Contains("Cities",
                                {Value("New York"), Value(8337000),
                                 Value("USA"), Value("N.America")}));
  ASSERT_OK(rel::MaterializeViews(&instance));
  EXPECT_TRUE(instance.Contains("BigCity", {Value("New York")}));
  EXPECT_FALSE(instance.Contains("BigCity", {Value("Amsterdam")}));
}

TEST(FactsParserTest, RejectsViewFacts) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  rel::Instance instance(&schema);
  Status st = ParseFactsInto("BigCity(Tokyo)", &instance);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("view"), std::string::npos);
}

TEST(FactsParserTest, RejectsArityMismatch) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  rel::Instance instance(&schema);
  EXPECT_FALSE(ParseFactsInto("Cities(Amsterdam)", &instance).ok());
}

// --- queries -----------------------------------------------------------------

TEST(QueryParserTest, ParsesTwoHopQuery) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  ASSERT_OK_AND_ASSIGN(
      rel::UnionQuery q,
      ParseQuery("q(x, y) := Train-Connections(x, z), Train-Connections(z, y)",
                 schema));
  ASSERT_EQ(q.disjuncts.size(), 1u);
  EXPECT_EQ(q.arity(), 2u);
  EXPECT_EQ(q.disjuncts[0].atoms.size(), 2u);

  // The parsed query evaluates like the programmatic one.
  rel::Instance instance(&schema);
  ASSERT_OK(ParseFactsInto(kTravelFacts, &instance));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> answers,
                       rel::Evaluate(q, instance));
  EXPECT_TRUE(std::binary_search(answers.begin(), answers.end(),
                                 Tuple{Value("Amsterdam"), Value("Rome")}) ==
              false);
  EXPECT_TRUE(std::binary_search(answers.begin(), answers.end(),
                                 Tuple{Value("Amsterdam"), Value("Amsterdam")}));
}

TEST(QueryParserTest, UnionAndComparisons) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  ASSERT_OK_AND_ASSIGN(
      rel::UnionQuery q,
      ParseQuery("q(x) := Cities(x, p, c, k), p >= 1000000 | BigCity(x)",
                 schema));
  EXPECT_EQ(q.disjuncts.size(), 2u);
  EXPECT_EQ(q.disjuncts[0].comparisons.size(), 1u);
}

TEST(QueryParserTest, QuotedConstantsInAtoms) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  ASSERT_OK_AND_ASSIGN(
      rel::UnionQuery q,
      ParseQuery("q(x) := Cities(x, p, \"USA\", k)", schema));
  EXPECT_FALSE(q.disjuncts[0].atoms[0].args[2].is_var());
  EXPECT_EQ(q.disjuncts[0].atoms[0].args[2].constant(), Value("USA"));
}

TEST(QueryParserTest, RejectsUnknownRelation) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  EXPECT_FALSE(ParseQuery("q(x) := NoSuch(x)", schema).ok());
}

// --- TBox / mappings / ABox --------------------------------------------------

TEST(TBoxParserTest, ParsesFigure4TBox) {
  ASSERT_OK_AND_ASSIGN(dl::TBox tbox, ParseTBox(R"(
concept EU-City <= City
Dutch-City <= EU-City            # keyword optional
concept EU-City <= not N.A.-City
concept City <= exists hasCountry
concept exists hasCountry^- <= Country
role connected <= travels
role P <= not Q^-
)"));
  EXPECT_EQ(tbox.concept_axioms().size(), 5u);
  EXPECT_EQ(tbox.role_axioms().size(), 2u);
  dl::Reasoner reasoner(&tbox);
  EXPECT_TRUE(reasoner.Subsumed(dl::BasicConcept::Atomic("Dutch-City"),
                                dl::BasicConcept::Atomic("City")));
  EXPECT_TRUE(reasoner.Disjoint(dl::BasicConcept::Atomic("Dutch-City"),
                                dl::BasicConcept::Atomic("N.A.-City")));
  EXPECT_TRUE(reasoner.RoleSubsumed(dl::Role{"connected", false},
                                    dl::Role{"travels", false}));
  EXPECT_TRUE(
      reasoner.RoleDisjoint(dl::Role{"P", false}, dl::Role{"Q", true}));
}

TEST(TBoxParserTest, InverseOnLeftSide) {
  ASSERT_OK_AND_ASSIGN(dl::TBox tbox,
                       ParseTBox("concept exists P^- <= A"));
  ASSERT_EQ(tbox.concept_axioms().size(), 1u);
  EXPECT_EQ(tbox.concept_axioms()[0].lhs.role.inverse, true);
}

TEST(MappingParserTest, ParsesFigure4Mappings) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  ASSERT_OK_AND_ASSIGN(auto mappings, ParseMappings(R"(
Cities(x, z, w, "Europe") -> EU-City(x)
Cities(x, k, y, w) -> hasCountry(x, y)
)",
                                                    schema));
  ASSERT_EQ(mappings.size(), 2u);
  EXPECT_EQ(mappings[0].head.kind, obda::MappingHead::Kind::kConcept);
  EXPECT_EQ(mappings[1].head.kind, obda::MappingHead::Kind::kRole);
  EXPECT_EQ(mappings[0].atoms[0].args[3].constant(), Value("Europe"));
}

TEST(MappingParserTest, RejectsHeadVariableNotInBody) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  EXPECT_FALSE(ParseMappings("Cities(x, y, z, w) -> EU-City(q)", schema).ok());
}

TEST(AboxParserTest, ParsesAssertions) {
  ASSERT_OK_AND_ASSIGN(dl::ABox abox, ParseAbox(R"(
EU-City(Amsterdam)
connected(Amsterdam, Berlin)
connected("New York", "San Francisco")
)"));
  EXPECT_EQ(abox.NumAssertions(), 3u);
  EXPECT_EQ(abox.Individuals().size(), 4u);
}

TEST(TupleParserTest, WithAndWithoutParens) {
  ASSERT_OK_AND_ASSIGN(Tuple a, ParseTuple("(Amsterdam, \"New York\")"));
  ASSERT_OK_AND_ASSIGN(Tuple b, ParseTuple("Amsterdam, \"New York\""));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[1], Value("New York"));
  ASSERT_OK_AND_ASSIGN(Tuple c, ParseTuple("(42)"));
  EXPECT_EQ(c, Tuple{Value(42)});
}

// --- end-to-end: parsed artifacts reproduce Example 4.5 ----------------------

TEST(TextIntegrationTest, ParsedObdaPipelineReproducesExample45) {
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, ParseSchema(kTravelSchema));
  rel::Instance instance(&schema);
  ASSERT_OK(ParseFactsInto(R"(
Cities(Amsterdam, 779808, Netherlands, Europe)
Cities(Berlin, 3502000, Germany, Europe)
Cities(Rome, 2753000, Italy, Europe)
Cities("New York", 8337000, USA, N.America)
Cities("San Francisco", 837442, USA, N.America)
Cities("Santa Cruz", 59946, USA, N.America)
Cities(Tokyo, 13185000, Japan, Asia)
Cities(Kyoto, 1400000, Japan, Asia)
Train-Connections(Amsterdam, Berlin)
Train-Connections(Berlin, Rome)
Train-Connections(Berlin, Amsterdam)
Train-Connections("New York", "San Francisco")
Train-Connections("San Francisco", "Santa Cruz")
Train-Connections(Tokyo, Kyoto)
)",
                           &instance));
  ASSERT_OK(rel::MaterializeViews(&instance));
  ASSERT_OK_AND_ASSIGN(dl::TBox tbox, ParseTBox(R"(
concept EU-City <= City
concept Dutch-City <= EU-City
concept N.A.-City <= City
concept EU-City <= not N.A.-City
concept US-City <= N.A.-City
)"));
  ASSERT_OK_AND_ASSIGN(auto mappings, ParseMappings(R"(
Cities(x, z, w, "Europe") -> EU-City(x)
Cities(x, z, "Netherlands", w) -> Dutch-City(x)
Cities(x, z, w, "N.America") -> N.A.-City(x)
Cities(x, z, "USA", w) -> US-City(x)
)",
                                                    schema));
  obda::ObdaSpec spec(std::move(tbox), &schema, std::move(mappings));
  ASSERT_OK(spec.Validate());
  obda::ObdaInducedOntology ontology(&spec);
  onto::BoundOntology bound(&ontology, &instance);
  ASSERT_OK_AND_ASSIGN(
      rel::UnionQuery q,
      ParseQuery("q(x, y) := Train-Connections(x, z), Train-Connections(z, y)",
                 schema));
  ASSERT_OK_AND_ASSIGN(
      explain::WhyNotInstance wni,
      explain::MakeWhyNotInstance(&instance, q, {"Amsterdam", "New York"}));
  ASSERT_OK_AND_ASSIGN(std::vector<explain::Explanation> mges,
                       explain::ExhaustiveSearchAllMge(&bound, wni));
  std::set<std::string> rendered;
  for (const explain::Explanation& e : mges) {
    rendered.insert(explain::ExplanationToString(bound, e));
  }
  EXPECT_TRUE(rendered.count("(EU-City, N.A.-City)") > 0)
      << "Example 4.5's most-general explanation missing";
}

// --- DOT export ---------------------------------------------------------------

TEST(DotExportTest, RendersHasseDiagramWithHighlights) {
  ASSERT_OK_AND_ASSIGN(auto ontology, workload::CitiesOntology());
  ASSERT_OK_AND_ASSIGN(rel::Schema schema, workload::CitiesDataSchema());
  ASSERT_OK_AND_ASSIGN(rel::Instance instance,
                       workload::CitiesInstance(&schema));
  onto::BoundOntology bound(ontology.get(), &instance);
  text::DotOptions options;
  options.highlight = {0};
  std::string dot = text::OntologyToDot(&bound, options);
  EXPECT_NE(dot.find("digraph ontology"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=BT"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Balanced braces, one node per concept class at most.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExportTest, EscapesQuotes) {
  EXPECT_EQ(text::DotEscape("a\"b\\c"), "a\\\"b\\\\c");
}

}  // namespace
}  // namespace whynot
