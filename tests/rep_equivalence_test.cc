// Representation-equivalence gate for the hybrid containers: the whole
// engine must produce bit-identical search output — results, enumeration
// order, witnesses, and stats — under SetRepPolicy kForceDense,
// kForceHybrid, and kAdaptive, each at WHYNOT_THREADS ∈ {1, 2, 8}. The
// force modes bypass the density guards, so even the small fixtures here
// run every frozen set (ExtSet mirrors, answer-cover rows, extension
// universe bitmaps, column distinct filters) through the chunked
// containers; the dense runs take the flat word paths verbatim.

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "test_util.h"
#include "whynot/common/algorithm.h"
#include "whynot/common/hybrid_bitmap.h"

namespace whynot {
namespace {

using workload::Rng;

constexpr int kThreadCounts[] = {1, 2, 8};
constexpr SetRepPolicy kPolicies[] = {SetRepPolicy::kForceDense,
                                      SetRepPolicy::kForceHybrid,
                                      SetRepPolicy::kAdaptive};

const char* PolicyName(SetRepPolicy p) {
  switch (p) {
    case SetRepPolicy::kForceDense:
      return "force-dense";
    case SetRepPolicy::kForceHybrid:
      return "force-hybrid";
    case SetRepPolicy::kAdaptive:
      return "adaptive";
  }
  return "?";
}

/// Restores the ambient policy and thread count however a test exits.
struct PolicyGuard {
  ~PolicyGuard() {
    SetSetRepPolicy(SetRepPolicy::kAdaptive);
    par::SetNumThreads(0);
  }
};

/// Runs `fn` under every (policy, thread-count) pair and asserts all nine
/// serialized outputs match the force-dense 1-thread reference. `fn` must
/// rebuild all per-run state itself — representation choices freeze into
/// warm caches, so state built under one policy must never leak into the
/// next run.
void ExpectSameUnderAllReps(
    const std::function<std::vector<std::string>()>& fn,
    const std::string& what) {
  PolicyGuard guard;
  std::optional<std::vector<std::string>> reference;
  for (SetRepPolicy policy : kPolicies) {
    for (int threads : kThreadCounts) {
      SetSetRepPolicy(policy);
      par::SetNumThreads(threads);
      std::vector<std::string> got = fn();
      if (!reference.has_value()) {
        reference = std::move(got);
      } else {
        EXPECT_TRUE(got == *reference)
            << what << " diverged under " << PolicyName(policy)
            << " at WHYNOT_THREADS=" << threads;
      }
    }
  }
}

struct Fixture {
  rel::Schema schema;
  std::unique_ptr<rel::Instance> instance;
  std::unique_ptr<onto::ExplicitOntology> ontology;
  explain::WhyNotInstance wni;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  auto schema = workload::RandomSchema(2, {2, 2});
  EXPECT_TRUE(schema.ok());
  f.schema = std::move(schema).value();
  auto instance = workload::RandomInstance(&f.schema, /*rows_per_relation=*/30,
                                           /*domain=*/12, seed);
  EXPECT_TRUE(instance.ok());
  f.instance = std::make_unique<rel::Instance>(std::move(instance).value());

  const std::vector<Value>& adom = f.instance->ActiveDomain();
  auto ontology = workload::RandomTreeOntology(adom, /*num_concepts=*/40,
                                               seed ^ 0x9e3779b9ull);
  EXPECT_TRUE(ontology.ok());
  f.ontology = std::move(ontology).value();

  Rng rng(seed ^ 0x51ull);
  f.wni.instance = f.instance.get();
  f.wni.missing = {adom[rng.Below(adom.size())], adom[rng.Below(adom.size())]};
  for (int a = 0; a < 14; ++a) {
    Tuple t = {adom[rng.Below(adom.size())], adom[rng.Below(adom.size())]};
    if (t != f.wni.missing) f.wni.answers.push_back(std::move(t));
  }
  SortUnique(&f.wni.answers);
  return f;
}

std::string Render(const std::vector<explain::Explanation>& mges) {
  std::string s;
  for (const explain::Explanation& e : mges) {
    for (onto::ConceptId c : e) s += std::to_string(c) + ",";
    s += ";";
  }
  return s;
}

std::string Render(const explain::LsExplanation& e) {
  std::string s;
  for (const ls::LsConcept& c : e) s += c.ToString() + "|";
  return s;
}

class RepEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepEquivalenceTest, ExternalSearches) {
  Fixture f = MakeFixture(GetParam());
  ExpectSameUnderAllReps(
      [&] {
        std::vector<std::string> out;
        onto::BoundOntology bound(f.ontology.get(), f.instance.get());
        explain::Explanation witness;
        auto exists = explain::ExistsExplanation(&bound, f.wni, &witness);
        EXPECT_TRUE(exists.ok());
        out.push_back(exists.ok() && exists.value() ? "yes:" + Render({witness})
                                                    : "no");
        auto all = explain::ExhaustiveSearchAllMge(&bound, f.wni);
        EXPECT_TRUE(all.ok());
        out.push_back(all.ok() ? Render(all.value()) : "ERR");
        auto pruned = explain::PrunedSearchAllMge(&bound, f.wni);
        EXPECT_TRUE(pruned.ok());
        out.push_back(pruned.ok() ? Render(pruned.value()) : "ERR");
        auto card = explain::ExactCardMaximal(&bound, f.wni);
        EXPECT_TRUE(card.ok());
        if (card.ok() && card.value().has_value()) {
          out.push_back(card.value()->degree.ToString() + ":" +
                        Render({card.value()->explanation}));
        } else {
          out.push_back("none");
        }
        return out;
      },
      "external searches");
}

TEST_P(RepEquivalenceTest, DerivedSearches) {
  Fixture f = MakeFixture(GetParam() ^ 0xabcdull);
  ExpectSameUnderAllReps(
      [&] {
        std::vector<std::string> out;
        explain::EnumerateStats stats;
        auto r = explain::EnumerateAllMges(f.wni, {}, &stats);
        EXPECT_TRUE(r.ok());
        std::string s;
        if (r.ok()) {
          for (const explain::LsExplanation& e : r.value()) {
            s += Render(e) + ";";
          }
        }
        s += "#" + std::to_string(stats.nodes_expanded) + "/" +
             std::to_string(stats.duplicate_outputs) + "/" +
             std::to_string(stats.visited_hits) + "/" +
             std::to_string(stats.max_delay);
        out.push_back(std::move(s));
        return out;
      },
      "EnumerateAllMges");
}

TEST_P(RepEquivalenceTest, SessionServedRequests) {
  // The session path additionally exercises WarmForConcurrentReads (the
  // column-index freeze), the shared answer-cover tables, and repeated
  // requests over one warm state.
  Fixture f = MakeFixture(GetParam() ^ 0x5e55ull);
  ExpectSameUnderAllReps(
      [&] {
        std::vector<std::string> out;
        auto session = explain::ExplainSession::BindWithAnswers(
            f.instance.get(), f.wni.answers, f.ontology.get());
        EXPECT_TRUE(session.ok());
        if (!session.ok()) return out;
        explain::ExplainSession& s = session.value();
        auto whynot = s.WhyNot(f.wni.missing);
        out.push_back(whynot.ok() ? Render(whynot.value()) : "ERR");
        auto mges = s.EnumerateMges(f.wni.missing);
        EXPECT_TRUE(mges.ok());
        std::string all;
        if (mges.ok()) {
          for (const explain::LsExplanation& e : mges.value()) {
            all += Render(e) + ";";
          }
        }
        out.push_back(std::move(all));
        auto ext = s.ExhaustiveMges(f.wni.missing);
        EXPECT_TRUE(ext.ok());
        out.push_back(ext.ok() ? Render(ext.value()) : "ERR");
        auto greedy = s.GreedyCard(f.wni.missing);
        EXPECT_TRUE(greedy.ok());
        if (greedy.ok() && greedy.value().has_value()) {
          out.push_back(greedy.value()->degree.ToString() + ":" +
                        Render({greedy.value()->explanation}));
        } else {
          out.push_back("none");
        }
        return out;
      },
      "session requests");
}

TEST_P(RepEquivalenceTest, MemoryAccountingTracksPolicy) {
  // Not an output-equivalence check: the session's memory stats must
  // reflect the forced representation, and the counterfactual ratio must
  // never be understated (hybrid bytes <= dense-equivalent bytes).
  Fixture f = MakeFixture(GetParam() ^ 0x11ull);
  PolicyGuard guard;
  par::SetNumThreads(1);

  SetSetRepPolicy(SetRepPolicy::kForceDense);
  auto dense_session = explain::ExplainSession::BindWithAnswers(
      f.instance.get(), f.wni.answers, f.ontology.get());
  ASSERT_TRUE(dense_session.ok());
  (void)dense_session.value().WhyNot(f.wni.missing);
  auto dense_stats = dense_session.value().MemoryUsage();
  EXPECT_EQ(dense_stats.hybrid_ext_sets, 0u);
  EXPECT_GT(dense_stats.total_bytes, 0u);

  SetSetRepPolicy(SetRepPolicy::kForceHybrid);
  auto hybrid_session = explain::ExplainSession::BindWithAnswers(
      f.instance.get(), f.wni.answers, f.ontology.get());
  ASSERT_TRUE(hybrid_session.ok());
  (void)hybrid_session.value().WhyNot(f.wni.missing);
  auto hybrid_stats = hybrid_session.value().MemoryUsage();
  EXPECT_GT(hybrid_stats.hybrid_ext_sets, 0u);
  EXPECT_GT(hybrid_stats.total_bytes, 0u);
  EXPECT_GT(hybrid_stats.dense_equivalent_total_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepEquivalenceTest,
                         ::testing::Values(11ull, 137ull, 9001ull));

}  // namespace
}  // namespace whynot
