#include "whynot/workload/cities.h"

#include "whynot/relational/views.h"

namespace whynot::workload {

namespace {

using rel::Atom;
using rel::CmpOp;
using rel::ConjunctiveQuery;
using rel::Term;

Atom MakeAtom(const std::string& relation,
              const std::vector<Term>& args) {
  Atom a;
  a.relation = relation;
  a.args = args;
  return a;
}

Status AddDataRelations(rel::Schema* schema) {
  WHYNOT_RETURN_IF_ERROR(schema->AddRelation(
      "Cities", {"name", "population", "country", "continent"}));
  WHYNOT_RETURN_IF_ERROR(schema->AddRelation("Train-Connections",
                                             {"city_from", "city_to"}));
  return Status::OK();
}

}  // namespace

Result<rel::Schema> CitiesDataSchema() {
  rel::Schema schema;
  WHYNOT_RETURN_IF_ERROR(AddDataRelations(&schema));
  return schema;
}

Result<rel::Schema> CitiesSchema() {
  rel::Schema schema;
  WHYNOT_RETURN_IF_ERROR(AddDataRelations(&schema));

  // BigCity(x) <-> Cities(x, y, z, w) ∧ y >= 5000000.
  {
    ConjunctiveQuery cq;
    cq.head = {"x"};
    cq.atoms = {MakeAtom("Cities", {Term::Var("x"), Term::Var("y"),
                                    Term::Var("z"), Term::Var("w")})};
    cq.comparisons = {{"y", CmpOp::kGe, Value(5000000)}};
    rel::UnionQuery def;
    def.disjuncts.push_back(std::move(cq));
    WHYNOT_RETURN_IF_ERROR(schema.AddView("BigCity", {"name"}, std::move(def)));
  }
  // EuropeanCountry(z) <-> Cities(x, y, z, w) ∧ w = Europe.
  {
    ConjunctiveQuery cq;
    cq.head = {"z"};
    cq.atoms = {MakeAtom("Cities", {Term::Var("x"), Term::Var("y"),
                                    Term::Var("z"), Term::Var("w")})};
    cq.comparisons = {{"w", CmpOp::kEq, Value("Europe")}};
    rel::UnionQuery def;
    def.disjuncts.push_back(std::move(cq));
    WHYNOT_RETURN_IF_ERROR(
        schema.AddView("EuropeanCountry", {"name"}, std::move(def)));
  }
  // Reachable(x, y) <-> TC(x, y) ∨ (TC(x, z) ∧ TC(z, y)).
  {
    ConjunctiveQuery direct;
    direct.head = {"x", "y"};
    direct.atoms = {
        MakeAtom("Train-Connections", {Term::Var("x"), Term::Var("y")})};
    ConjunctiveQuery via;
    via.head = {"x", "y"};
    via.atoms = {
        MakeAtom("Train-Connections", {Term::Var("x"), Term::Var("z")}),
        MakeAtom("Train-Connections", {Term::Var("z"), Term::Var("y")})};
    rel::UnionQuery def;
    def.disjuncts.push_back(std::move(direct));
    def.disjuncts.push_back(std::move(via));
    WHYNOT_RETURN_IF_ERROR(schema.AddView(
        "Reachable", {"city_from", "city_to"}, std::move(def)));
  }

  // country → continent on Cities (0-based attrs: 2 → 3).
  WHYNOT_RETURN_IF_ERROR(schema.AddFd({"Cities", {2}, {3}}));
  // BigCity[name] ⊆ Train-Connections[city_from].
  WHYNOT_RETURN_IF_ERROR(
      schema.AddId({"BigCity", {0}, "Train-Connections", {0}}));
  // Train-Connections[city_from] ⊆ Cities[name].
  WHYNOT_RETURN_IF_ERROR(
      schema.AddId({"Train-Connections", {0}, "Cities", {0}}));
  // Train-Connections[city_to] ⊆ Cities[name].
  WHYNOT_RETURN_IF_ERROR(
      schema.AddId({"Train-Connections", {1}, "Cities", {0}}));
  WHYNOT_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

Result<rel::Instance> CitiesInstance(const rel::Schema* schema) {
  rel::Instance instance(schema);
  struct CityRow {
    const char* name;
    int64_t population;
    const char* country;
    const char* continent;
  };
  const CityRow rows[] = {
      {"Amsterdam", 779808, "Netherlands", "Europe"},
      {"Berlin", 3502000, "Germany", "Europe"},
      {"Rome", 2753000, "Italy", "Europe"},
      {"New York", 8337000, "USA", "N.America"},
      {"San Francisco", 837442, "USA", "N.America"},
      {"Santa Cruz", 59946, "USA", "N.America"},
      {"Tokyo", 13185000, "Japan", "Asia"},
      {"Kyoto", 1400000, "Japan", "Asia"},
  };
  for (const CityRow& r : rows) {
    WHYNOT_RETURN_IF_ERROR(instance.AddFact(
        "Cities", {r.name, r.population, r.country, r.continent}));
  }
  const std::pair<const char*, const char*> connections[] = {
      {"Amsterdam", "Berlin"},     {"Berlin", "Rome"},
      {"Berlin", "Amsterdam"},     {"New York", "San Francisco"},
      {"San Francisco", "Santa Cruz"}, {"Tokyo", "Kyoto"},
  };
  for (const auto& [from, to] : connections) {
    WHYNOT_RETURN_IF_ERROR(instance.AddFact("Train-Connections", {from, to}));
  }
  if (schema->HasViews()) {
    WHYNOT_RETURN_IF_ERROR(rel::MaterializeViews(&instance));
  }
  return instance;
}

Result<std::unique_ptr<onto::ExplicitOntology>> CitiesOntology() {
  auto o = std::make_unique<onto::ExplicitOntology>();
  o->AddSubsumption("European-City", "City");
  o->AddSubsumption("US-City", "City");
  o->AddSubsumption("Dutch-City", "European-City");
  o->AddSubsumption("East-Coast-City", "US-City");
  o->AddSubsumption("West-Coast-City", "US-City");
  o->SetExtension("City",
                  {"Amsterdam", "Berlin", "Rome", "New York", "San Francisco",
                   "Santa Cruz", "Tokyo", "Kyoto"});
  o->SetExtension("European-City", {"Amsterdam", "Berlin", "Rome"});
  o->SetExtension("Dutch-City", {"Amsterdam"});
  o->SetExtension("US-City", {"New York", "San Francisco", "Santa Cruz"});
  o->SetExtension("East-Coast-City", {"New York"});
  o->SetExtension("West-Coast-City", {"Santa Cruz", "San Francisco"});
  WHYNOT_RETURN_IF_ERROR(o->Finalize());
  return o;
}

dl::TBox CitiesTBox() {
  using dl::BasicConcept;
  using dl::ConceptExpr;
  using dl::Role;
  using dl::RoleExpr;
  dl::TBox t;
  t.AddAtomicInclusion("EU-City", "City");
  t.AddAtomicInclusion("Dutch-City", "EU-City");
  t.AddAtomicInclusion("N.A.-City", "City");
  t.AddAtomicDisjointness("EU-City", "N.A.-City");
  t.AddAtomicInclusion("US-City", "N.A.-City");
  t.AddConceptAxiom(BasicConcept::Atomic("City"),
                    {BasicConcept::Exists(Role{"hasCountry", false}), false});
  t.AddConceptAxiom(BasicConcept::Atomic("Country"),
                    {BasicConcept::Exists(Role{"hasContinent", false}), false});
  t.AddConceptAxiom(BasicConcept::Exists(Role{"hasCountry", true}),
                    {BasicConcept::Atomic("Country"), false});
  t.AddConceptAxiom(BasicConcept::Exists(Role{"hasContinent", true}),
                    {BasicConcept::Atomic("Continent"), false});
  t.AddConceptAxiom(BasicConcept::Exists(Role{"connected", false}),
                    {BasicConcept::Atomic("City"), false});
  t.AddConceptAxiom(BasicConcept::Exists(Role{"connected", true}),
                    {BasicConcept::Atomic("City"), false});
  return t;
}

std::vector<obda::GavMapping> CitiesMappings() {
  using obda::GavMapping;
  using obda::MappingHead;
  std::vector<GavMapping> ms;
  auto cities = [](const Term& a, const Term& b, const Term& c,
                   const Term& d) {
    return MakeAtom("Cities", {a, b, c, d});
  };
  // Cities(x, z, w, "Europe") → EU-City(x).
  ms.push_back({{cities(Term::Var("x"), Term::Var("z"), Term::Var("w"),
                        Term::Const(Value("Europe")))},
                {},
                MappingHead::Concept("EU-City", "x")});
  // Cities(x, z, "Netherlands", w) → Dutch-City(x).
  ms.push_back({{cities(Term::Var("x"), Term::Var("z"),
                        Term::Const(Value("Netherlands")), Term::Var("w"))},
                {},
                MappingHead::Concept("Dutch-City", "x")});
  // Cities(x, z, w, "N.America") → N.A.-City(x).
  ms.push_back({{cities(Term::Var("x"), Term::Var("z"), Term::Var("w"),
                        Term::Const(Value("N.America")))},
                {},
                MappingHead::Concept("N.A.-City", "x")});
  // Cities(x, z, "USA", w) → US-City(x).
  ms.push_back({{cities(Term::Var("x"), Term::Var("z"),
                        Term::Const(Value("USA")), Term::Var("w"))},
                {},
                MappingHead::Concept("US-City", "x")});
  // Cities(x, y, z, w) → Continent(w).
  ms.push_back({{cities(Term::Var("x"), Term::Var("y"), Term::Var("z"),
                        Term::Var("w"))},
                {},
                MappingHead::Concept("Continent", "w")});
  // Cities(x, k, y, w) → hasCountry(x, y).
  ms.push_back({{cities(Term::Var("x"), Term::Var("k"), Term::Var("y"),
                        Term::Var("w"))},
                {},
                MappingHead::RolePair("hasCountry", "x", "y")});
  // Cities(x, k, w, y) → hasContinent(x, y).
  ms.push_back({{cities(Term::Var("x"), Term::Var("k"), Term::Var("w"),
                        Term::Var("y"))},
                {},
                MappingHead::RolePair("hasContinent", "x", "y")});
  // TC(x, y), Cities(x, ...), Cities(y, ...) → connected(x, y).
  ms.push_back(
      {{MakeAtom("Train-Connections", {Term::Var("x"), Term::Var("y")}),
        cities(Term::Var("x"), Term::Var("x1"), Term::Var("x2"),
               Term::Var("x3")),
        cities(Term::Var("y"), Term::Var("y1"), Term::Var("y2"),
               Term::Var("y3"))},
       {},
       MappingHead::RolePair("connected", "x", "y")});
  return ms;
}

rel::UnionQuery ConnectedViaQuery() {
  ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  cq.atoms = {
      MakeAtom("Train-Connections", {Term::Var("x"), Term::Var("z")}),
      MakeAtom("Train-Connections", {Term::Var("z"), Term::Var("y")})};
  rel::UnionQuery q;
  q.disjuncts.push_back(std::move(cq));
  return q;
}

Result<ScaledWorld> MakeScaledWorld(int continents,
                                    int countries_per_continent,
                                    int cities_per_country) {
  ScaledWorld world;
  world.schema = std::make_unique<rel::Schema>();
  WHYNOT_RETURN_IF_ERROR(AddDataRelations(world.schema.get()));
  world.instance = std::make_unique<rel::Instance>(world.schema.get());
  world.ontology = std::make_unique<onto::ExplicitOntology>();
  world.ontology->AddConcept("City");

  std::vector<Value> all_cities;
  for (int c = 0; c < continents; ++c) {
    std::string continent = "continent" + std::to_string(c);
    std::string cont_concept = "Cities-of-" + continent;
    world.ontology->AddSubsumption(cont_concept, "City");
    std::vector<Value> continent_cities;
    for (int k = 0; k < countries_per_continent; ++k) {
      std::string country = continent + "-country" + std::to_string(k);
      std::string country_concept = "Cities-of-" + country;
      world.ontology->AddSubsumption(country_concept, cont_concept);
      std::vector<Value> country_cities;
      std::string prev;
      for (int i = 0; i < cities_per_country; ++i) {
        std::string city = country + "-city" + std::to_string(i);
        int64_t population = 10000 + 977 * i + 131 * k + 17 * c;
        WHYNOT_RETURN_IF_ERROR(world.instance->AddFact(
            "Cities", {city, population, country, continent}));
        if (!prev.empty()) {
          WHYNOT_RETURN_IF_ERROR(
              world.instance->AddFact("Train-Connections", {prev, city}));
        }
        prev = city;
        country_cities.emplace_back(city);
        continent_cities.emplace_back(city);
        all_cities.emplace_back(city);
      }
      world.ontology->SetExtension(country_concept, country_cities);
    }
    world.ontology->SetExtension(cont_concept, continent_cities);
  }
  world.ontology->SetExtension("City", all_cities);
  WHYNOT_RETURN_IF_ERROR(world.ontology->Finalize());
  if (continents >= 2) {
    world.missing_pair = {Value("continent0-country0-city0"),
                          Value("continent1-country0-city0")};
  } else {
    world.missing_pair = {all_cities.front(), all_cities.back()};
  }
  return world;
}

}  // namespace whynot::workload
