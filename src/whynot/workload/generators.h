#ifndef WHYNOT_WORKLOAD_GENERATORS_H_
#define WHYNOT_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/dllite/reasoner.h"
#include "whynot/dllite/tbox.h"
#include "whynot/ontology/explicit_ontology.h"
#include "whynot/relational/instance.h"
#include "whynot/relational/schema.h"

namespace whynot::workload {

/// Deterministic xorshift64* generator: all randomized tests and benchmarks
/// are reproducible from their seeds.
class Rng {
 public:
  explicit Rng(uint64_t seed)
      : state_(seed * 6364136223846793005ull + 1442695040888963407ull) {
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ull;
  }

  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

/// A schema with `num_relations` data relations of arities cycling through
/// `arities`, no constraints. Relation names are "R0", "R1", ...
Result<rel::Schema> RandomSchema(int num_relations,
                                 const std::vector<int>& arities);

/// Fills every relation of `schema` with `rows_per_relation` random tuples
/// over an integer domain {0..domain-1}.
Result<rel::Instance> RandomInstance(const rel::Schema* schema,
                                     int rows_per_relation, int domain,
                                     uint64_t seed);

/// A random tree-shaped external ontology over the given domain values:
/// concept 0 is a root containing everything; each further concept picks a
/// random parent and a random subset of the parent's extension, so the
/// subsumption order is consistent with every instance by construction.
Result<std::unique_ptr<onto::ExplicitOntology>> RandomTreeOntology(
    const std::vector<Value>& domain, int num_concepts, uint64_t seed);

/// Shape of a RandomLatticeOntology: a layered DAG `depth` levels deep
/// below an all-containing root, `width` concepts per level, each drawing
/// `parents` subsumers from the level above (multi-parent, so the Hasse
/// diagram is a genuine lattice-like DAG, not a tree). A child's extension
/// is the intersection of its parents' extensions thinned value-wise with
/// probability keep_num/keep_den — the shrink rate that controls how fast
/// extensions (and with them explanation opportunities) decay with depth.
struct LatticeOntologyOptions {
  int depth = 16;
  int width = 8;
  int parents = 2;
  uint64_t keep_num = 9;
  uint64_t keep_den = 10;
};

/// A random deep layered ontology over `domain`, consistent with every
/// instance by construction (declared subsumptions always come with
/// extension inclusion). Values in `pinned` are exempt from thinning, so
/// every concept of the lattice contains them: a why-not tuple over
/// pinned values gets the *entire* lattice as its per-position candidate
/// list, which is exactly the deep-and-wide candidate product the
/// dominance-pruned frontier benchmarks need. Concept names are
/// "D<level>_<index>" with root "D0_0".
Result<std::unique_ptr<onto::ExplicitOntology>> RandomLatticeOntology(
    const std::vector<Value>& domain, const std::vector<Value>& pinned,
    const LatticeOntologyOptions& options, uint64_t seed);

/// A random DL-LiteR TBox over `num_concepts` atomic concepts and
/// `num_roles` atomic roles with `num_axioms` axioms; a fraction of the
/// axioms are negative inclusions.
dl::TBox RandomTBox(int num_concepts, int num_roles, int num_axioms,
                    uint64_t seed, int negative_percent = 15);

/// A random finite interpretation over the TBox's signature (for testing
/// the reasoner's soundness against model semantics).
dl::Interpretation RandomInterpretation(const dl::TBox& tbox, int domain,
                                        int facts, uint64_t seed);

}  // namespace whynot::workload

#endif  // WHYNOT_WORKLOAD_GENERATORS_H_
