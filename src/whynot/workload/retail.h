#ifndef WHYNOT_WORKLOAD_RETAIL_H_
#define WHYNOT_WORKLOAD_RETAIL_H_

#include <memory>

#include "whynot/common/status.h"
#include "whynot/ontology/explicit_ontology.h"
#include "whynot/relational/cq.h"
#include "whynot/relational/instance.h"
#include "whynot/relational/schema.h"

namespace whynot::workload {

/// The retail scenario from the paper's introduction: a query asks for all
/// (product, store) pairs in stock; the user asks why (P0034, S012) —
/// a bluetooth headset and a San Francisco store — is missing; the
/// most-general explanation should come out as "no store in San Francisco
/// (indeed, in California) has any bluetooth headset in stock".
struct RetailScenario {
  std::unique_ptr<rel::Schema> schema;
  std::unique_ptr<rel::Instance> instance;
  std::unique_ptr<onto::ExplicitOntology> ontology;
  rel::UnionQuery stock_query;  // q(pid, sid) :- Stock(pid, sid)
  Tuple missing;                // (P0034, S012)
};

/// Builds the scenario deterministically. `num_products` per category and
/// `num_stores` per city scale it for benchmarks; the defaults match the
/// worked example. Guarantees that no California store stocks any bluetooth
/// headset, while every other (category, region) combination intersects the
/// stock table.
Result<RetailScenario> MakeRetailScenario(int num_products = 4,
                                          int num_stores = 3);

}  // namespace whynot::workload

#endif  // WHYNOT_WORKLOAD_RETAIL_H_
