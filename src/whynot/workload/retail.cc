#include "whynot/workload/retail.h"

#include <map>

namespace whynot::workload {

Result<RetailScenario> MakeRetailScenario(int num_products, int num_stores) {
  RetailScenario s;
  s.schema = std::make_unique<rel::Schema>();
  WHYNOT_RETURN_IF_ERROR(s.schema->AddRelation("Products", {"pid", "category"}));
  WHYNOT_RETURN_IF_ERROR(
      s.schema->AddRelation("Stores", {"sid", "city", "region"}));
  WHYNOT_RETURN_IF_ERROR(s.schema->AddRelation("Stock", {"pid", "sid"}));
  s.instance = std::make_unique<rel::Instance>(s.schema.get());
  s.ontology = std::make_unique<onto::ExplicitOntology>();

  struct Category {
    const char* name;
    const char* concept_name;
    const char* parent;
  };
  const Category categories[] = {
      {"bluetooth-headset", "Bluetooth-Headset", "Audio-Product"},
      {"speaker", "Speaker", "Audio-Product"},
      {"laptop", "Laptop", "Computing-Product"},
  };
  s.ontology->AddSubsumption("Audio-Product", "Product");
  s.ontology->AddSubsumption("Computing-Product", "Product");

  struct City {
    const char* name;
    const char* concept_name;
    const char* region_concept;
  };
  const City cities[] = {
      {"San Francisco", "SF-Store", "California-Store"},
      {"Oakland", "Oakland-Store", "California-Store"},
      {"Seattle", "Seattle-Store", "Washington-Store"},
  };
  s.ontology->AddSubsumption("California-Store", "Store");
  s.ontology->AddSubsumption("Washington-Store", "Store");

  std::map<std::string, std::vector<Value>> concept_ext;
  std::vector<std::pair<Value, std::string>> products;  // (pid, category)
  std::vector<std::pair<Value, std::string>> stores;    // (sid, region concept)

  for (const Category& cat : categories) {
    s.ontology->AddSubsumption(cat.concept_name, cat.parent);
    for (int i = 0; i < num_products; ++i) {
      // The worked example's P0034 is the first bluetooth headset.
      std::string pid = (std::string(cat.name) == "bluetooth-headset" && i == 0)
                            ? "P0034"
                            : "P-" + std::string(cat.name) + "-" +
                                  std::to_string(i);
      WHYNOT_RETURN_IF_ERROR(
          s.instance->AddFact("Products", {pid, cat.name}));
      concept_ext[cat.concept_name].emplace_back(pid);
      concept_ext[cat.parent].emplace_back(pid);
      concept_ext["Product"].emplace_back(pid);
      products.emplace_back(Value(pid), cat.name);
    }
  }
  for (const City& city : cities) {
    for (int i = 0; i < num_stores; ++i) {
      std::string sid =
          (std::string(city.name) == "San Francisco" && i == 0)
              ? "S012"
              : "S-" + std::string(city.concept_name) + "-" + std::to_string(i);
      WHYNOT_RETURN_IF_ERROR(
          s.instance->AddFact("Stores", {sid, city.name, city.region_concept}));
      s.ontology->AddSubsumption(city.concept_name, city.region_concept);
      concept_ext[city.concept_name].emplace_back(sid);
      concept_ext[city.region_concept].emplace_back(sid);
      concept_ext["Store"].emplace_back(sid);
      stores.emplace_back(Value(sid), city.region_concept);
    }
  }
  for (auto& [name, ext] : concept_ext) {
    s.ontology->SetExtension(name, ext);
  }
  WHYNOT_RETURN_IF_ERROR(s.ontology->Finalize());

  // Stock: everything except bluetooth headsets in California stores.
  for (const auto& [pid, category] : products) {
    for (const auto& [sid, region] : stores) {
      if (category == "bluetooth-headset" && region == "California-Store") {
        continue;
      }
      WHYNOT_RETURN_IF_ERROR(s.instance->AddFact("Stock", {pid, sid}));
    }
  }

  rel::ConjunctiveQuery cq;
  cq.head = {"p", "s"};
  rel::Atom stock;
  stock.relation = "Stock";
  stock.args = {rel::Term::Var("p"), rel::Term::Var("s")};
  cq.atoms.push_back(std::move(stock));
  s.stock_query.disjuncts.push_back(std::move(cq));
  s.missing = {Value("P0034"), Value("S012")};
  return s;
}

}  // namespace whynot::workload
