#ifndef WHYNOT_WORKLOAD_CITIES_H_
#define WHYNOT_WORKLOAD_CITIES_H_

#include <memory>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/dllite/tbox.h"
#include "whynot/obda/mapping.h"
#include "whynot/ontology/explicit_ontology.h"
#include "whynot/relational/instance.h"
#include "whynot/relational/schema.h"

namespace whynot::workload {

/// The travel schema of Figure 1: data relations Cities(name, population,
/// country, continent) and Train-Connections(city_from, city_to); views
/// BigCity, EuropeanCountry, Reachable; the FD country → continent on
/// Cities; and the three inclusion dependencies.
Result<rel::Schema> CitiesSchema();

/// Figure 1 without the view definitions and dependencies (used by the
/// Table 1 per-class deciders, which require pure constraint classes).
Result<rel::Schema> CitiesDataSchema();

/// The instance of Figure 2 over `schema`, with view extensions
/// materialized.
Result<rel::Instance> CitiesInstance(const rel::Schema* schema);

/// The external S-ontology of Figure 3 (fixed extensions; the Hasse diagram
/// City ⊒ {European-City ⊒ Dutch-City, US-City ⊒ {East-Coast-City,
/// West-Coast-City}}).
Result<std::unique_ptr<onto::ExplicitOntology>> CitiesOntology();

/// The DL-LiteR TBox of Figure 4.
dl::TBox CitiesTBox();

/// The GAV mapping assertions of Figure 4.
std::vector<obda::GavMapping> CitiesMappings();

/// q(x, y) = ∃z. Train-Connections(x, z) ∧ Train-Connections(z, y)
/// (Examples 3.4, 4.5, 4.9).
rel::UnionQuery ConnectedViaQuery();

/// A deterministically scaled version of the travel world for benchmarks:
/// `continents` × `countries_per_continent` × `cities_per_country` cities,
/// train connections chaining the cities of each country, and a layered
/// external ontology (one concept per country and continent plus a root).
struct ScaledWorld {
  std::unique_ptr<rel::Schema> schema;
  std::unique_ptr<rel::Instance> instance;
  std::unique_ptr<onto::ExplicitOntology> ontology;
  /// Two cities on different continents (never connected): a natural
  /// why-not pair.
  Tuple missing_pair;
};

Result<ScaledWorld> MakeScaledWorld(int continents,
                                    int countries_per_continent,
                                    int cities_per_country);

}  // namespace whynot::workload

#endif  // WHYNOT_WORKLOAD_CITIES_H_
