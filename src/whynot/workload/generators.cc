#include "whynot/workload/generators.h"

#include <algorithm>

namespace whynot::workload {

Result<rel::Schema> RandomSchema(int num_relations,
                                 const std::vector<int>& arities) {
  rel::Schema schema;
  for (int r = 0; r < num_relations; ++r) {
    int arity = arities[static_cast<size_t>(r) % arities.size()];
    std::vector<std::string> attrs;
    for (int a = 0; a < arity; ++a) attrs.push_back("a" + std::to_string(a));
    WHYNOT_RETURN_IF_ERROR(schema.AddRelation("R" + std::to_string(r), attrs));
  }
  return schema;
}

Result<rel::Instance> RandomInstance(const rel::Schema* schema,
                                     int rows_per_relation, int domain,
                                     uint64_t seed) {
  Rng rng(seed);
  rel::Instance instance(schema);
  for (const rel::RelationDef& def : schema->relations()) {
    if (def.is_view()) continue;
    instance.Reserve(def.name(), static_cast<size_t>(rows_per_relation));
    for (int row = 0; row < rows_per_relation; ++row) {
      Tuple t;
      t.reserve(def.arity());
      for (size_t a = 0; a < def.arity(); ++a) {
        t.push_back(
            Value(static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)))));
      }
      WHYNOT_RETURN_IF_ERROR(instance.AddFact(def.name(), std::move(t)));
    }
  }
  return instance;
}

Result<std::unique_ptr<onto::ExplicitOntology>> RandomTreeOntology(
    const std::vector<Value>& domain, int num_concepts, uint64_t seed) {
  Rng rng(seed);
  auto onto = std::make_unique<onto::ExplicitOntology>();
  std::vector<std::vector<Value>> extensions;
  onto->AddConcept("K0");
  onto->SetExtension("K0", domain);
  extensions.push_back(domain);
  for (int c = 1; c < num_concepts; ++c) {
    int parent = static_cast<int>(rng.Below(static_cast<uint64_t>(c)));
    std::vector<Value> ext;
    for (const Value& v : extensions[static_cast<size_t>(parent)]) {
      if (rng.Chance(2, 3)) ext.push_back(v);
    }
    std::string name = "K" + std::to_string(c);
    onto->AddSubsumption(name, "K" + std::to_string(parent));
    onto->SetExtension(name, ext);
    extensions.push_back(std::move(ext));
  }
  WHYNOT_RETURN_IF_ERROR(onto->Finalize());
  return onto;
}

Result<std::unique_ptr<onto::ExplicitOntology>> RandomLatticeOntology(
    const std::vector<Value>& domain, const std::vector<Value>& pinned,
    const LatticeOntologyOptions& options, uint64_t seed) {
  Rng rng(seed);
  auto onto = std::make_unique<onto::ExplicitOntology>();
  auto is_pinned = [&](const Value& v) {
    return std::find(pinned.begin(), pinned.end(), v) != pinned.end();
  };

  // Level 0: the all-containing root. previous/current hold one level of
  // extensions; indices are level-local.
  onto->AddConcept("D0_0");
  onto->SetExtension("D0_0", domain);
  std::vector<std::vector<Value>> previous = {domain};
  std::vector<std::string> previous_names = {"D0_0"};

  for (int level = 1; level <= options.depth; ++level) {
    std::vector<std::vector<Value>> current;
    std::vector<std::string> current_names;
    for (int i = 0; i < options.width; ++i) {
      // Distinct parents from the level above (all of it, when the level
      // is narrower than the requested fan-in).
      std::vector<size_t> parent_idx;
      while (parent_idx.size() <
             std::min(static_cast<size_t>(options.parents), previous.size())) {
        size_t p = rng.Below(previous.size());
        if (std::find(parent_idx.begin(), parent_idx.end(), p) ==
            parent_idx.end()) {
          parent_idx.push_back(p);
        }
      }
      // Extension: the parents' intersection, thinned value-wise. Pinned
      // values survive unconditionally — inductively they are in every
      // parent, so inclusion in each parent's extension (what makes the
      // declared subsumptions consistent) is preserved.
      std::vector<Value> ext;
      for (const Value& v : previous[parent_idx[0]]) {
        bool in_all = true;
        for (size_t k = 1; k < parent_idx.size(); ++k) {
          const std::vector<Value>& other = previous[parent_idx[k]];
          if (std::find(other.begin(), other.end(), v) == other.end()) {
            in_all = false;
            break;
          }
        }
        if (!in_all) continue;
        if (is_pinned(v) || rng.Chance(options.keep_num, options.keep_den)) {
          ext.push_back(v);
        }
      }
      std::string name =
          "D" + std::to_string(level) + "_" + std::to_string(i);
      onto->AddConcept(name);
      for (size_t p : parent_idx) {
        onto->AddSubsumption(name, previous_names[p]);
      }
      onto->SetExtension(name, ext);
      current.push_back(std::move(ext));
      current_names.push_back(std::move(name));
    }
    previous = std::move(current);
    previous_names = std::move(current_names);
  }
  WHYNOT_RETURN_IF_ERROR(onto->Finalize());
  return onto;
}

dl::TBox RandomTBox(int num_concepts, int num_roles, int num_axioms,
                    uint64_t seed, int negative_percent) {
  Rng rng(seed);
  dl::TBox tbox;
  auto random_basic = [&]() {
    if (num_roles > 0 && rng.Chance(1, 3)) {
      dl::Role role{"P" + std::to_string(rng.Below(
                               static_cast<uint64_t>(num_roles))),
                    rng.Chance(1, 2)};
      return dl::BasicConcept::Exists(role);
    }
    return dl::BasicConcept::Atomic(
        "A" + std::to_string(rng.Below(static_cast<uint64_t>(num_concepts))));
  };
  for (int i = 0; i < num_axioms; ++i) {
    if (num_roles > 0 && rng.Chance(1, 4)) {
      dl::Role lhs{"P" + std::to_string(
                            rng.Below(static_cast<uint64_t>(num_roles))),
                   rng.Chance(1, 2)};
      dl::Role rhs{"P" + std::to_string(
                            rng.Below(static_cast<uint64_t>(num_roles))),
                   rng.Chance(1, 2)};
      tbox.AddRoleAxiom(
          lhs, {rhs, rng.Chance(static_cast<uint64_t>(negative_percent), 100)});
    } else {
      tbox.AddConceptAxiom(
          random_basic(),
          {random_basic(),
           rng.Chance(static_cast<uint64_t>(negative_percent), 100)});
    }
  }
  return tbox;
}

dl::Interpretation RandomInterpretation(const dl::TBox& tbox, int domain,
                                        int facts, uint64_t seed) {
  Rng rng(seed);
  dl::Interpretation interp;
  const std::set<std::string> concept_set = tbox.AtomicConcepts();
  const std::set<std::string> role_set = tbox.AtomicRoles();
  std::vector<std::string> concepts(concept_set.begin(), concept_set.end());
  std::vector<std::string> roles(role_set.begin(), role_set.end());
  for (int i = 0; i < facts; ++i) {
    if (!roles.empty() && rng.Chance(1, 2)) {
      interp.AddRolePair(
          roles[rng.Below(roles.size())],
          Value(static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)))),
          Value(static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)))));
    } else if (!concepts.empty()) {
      interp.AddConceptMember(
          concepts[rng.Below(concepts.size())],
          Value(static_cast<int64_t>(rng.Below(static_cast<uint64_t>(domain)))));
    }
  }
  return interp;
}

}  // namespace whynot::workload
