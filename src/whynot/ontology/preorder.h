#ifndef WHYNOT_ONTOLOGY_PREORDER_H_
#define WHYNOT_ONTOLOGY_PREORDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace whynot::onto {

/// A dense boolean relation over {0..n-1}, used for subsumption matrices.
///
/// Rows are packed into 64-bit words, so row-wise operations (the inner
/// loop of Warshall closure, subset tests between rows) run word-parallel:
/// 64 matrix cells per machine instruction instead of one.
class BoolMatrix {
 public:
  explicit BoolMatrix(int32_t n)
      : n_(n),
        words_per_row_((static_cast<size_t>(n) + 63) / 64),
        words_(static_cast<size_t>(n) * words_per_row_) {}

  int32_t size() const { return n_; }
  size_t words_per_row() const { return words_per_row_; }

  bool Get(int32_t i, int32_t j) const {
    return (words_[RowOffset(i) + static_cast<size_t>(j) / 64] >>
            (static_cast<size_t>(j) % 64)) &
           1u;
  }
  void Set(int32_t i, int32_t j, bool v = true) {
    uint64_t& w = words_[RowOffset(i) + static_cast<size_t>(j) / 64];
    uint64_t mask = uint64_t{1} << (static_cast<size_t>(j) % 64);
    if (v) {
      w |= mask;
    } else {
      w &= ~mask;
    }
  }

  /// Word-parallel row OR: row dst |= row src (the Warshall inner loop).
  void RowOr(int32_t dst, int32_t src) {
    uint64_t* d = &words_[RowOffset(dst)];
    const uint64_t* s = &words_[RowOffset(src)];
    for (size_t w = 0; w < words_per_row_; ++w) d[w] |= s[w];
  }

  /// Word-parallel row containment: row sub ⊆ row super (every column set
  /// in `sub` is set in `super`).
  bool RowSubsetOf(int32_t sub, int32_t super) const {
    const uint64_t* a = &words_[RowOffset(sub)];
    const uint64_t* b = &words_[RowOffset(super)];
    for (size_t w = 0; w < words_per_row_; ++w) {
      if (a[w] & ~b[w]) return false;
    }
    return true;
  }

  /// Number of set cells in row i (popcount over the row words).
  int32_t RowCount(int32_t i) const;

  const uint64_t* RowWords(int32_t i) const { return &words_[RowOffset(i)]; }

 private:
  size_t RowOffset(int32_t i) const {
    return static_cast<size_t>(i) * words_per_row_;
  }

  int32_t n_;
  size_t words_per_row_;
  std::vector<uint64_t> words_;
};

/// In-place reflexive-transitive closure: blocked Warshall over 64-bit row
/// words. For each pivot k, every row i with (i, k) set absorbs row k in
/// one word-parallel RowOr — O(n² · n/64) word operations versus the n³
/// cell operations of the scalar algorithm.
void ReflexiveTransitiveClosure(BoolMatrix* m);

/// Representative (smallest id) of every element's equivalence class
/// under ⊑∩⊒. Shared by the Hasse reduction and the DOT export so both
/// agree on which member names a class.
std::vector<int32_t> EquivalenceClassReps(const BoolMatrix& closure);

/// The Hasse reduction of a *partial order* closure: edges (i, j) with
/// i ⊑ j, i ≠ j, and no k ∉ {i, j} with i ⊑ k ⊑ j. For pre-orders,
/// equivalent elements are first grouped; edges are between class
/// representatives (smallest id). Runs word-parallel: the strict relation
/// is materialized as row/column bitmaps once, after which each cover
/// test is a single AND-any between a strict-upset and a strict-downset
/// row instead of an O(n) scalar scan per candidate pair.
std::vector<std::pair<int32_t, int32_t>> HasseEdges(const BoolMatrix& closure);

/// Indices that are maximal in the pre-order: no j with i ⊑ j and not j ⊑ i.
std::vector<int32_t> MaximalElements(const BoolMatrix& closure);

/// Renders the Hasse diagram as "child -> parent" lines using `names`.
std::string HasseToString(const BoolMatrix& closure,
                          const std::vector<std::string>& names);

}  // namespace whynot::onto

#endif  // WHYNOT_ONTOLOGY_PREORDER_H_
