#ifndef WHYNOT_ONTOLOGY_PREORDER_H_
#define WHYNOT_ONTOLOGY_PREORDER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace whynot::onto {

/// A dense boolean relation over {0..n-1}, used for subsumption matrices.
class BoolMatrix {
 public:
  explicit BoolMatrix(int32_t n) : n_(n), bits_(static_cast<size_t>(n) * n) {}

  int32_t size() const { return n_; }
  bool Get(int32_t i, int32_t j) const {
    return bits_[static_cast<size_t>(i) * n_ + j];
  }
  void Set(int32_t i, int32_t j, bool v = true) {
    bits_[static_cast<size_t>(i) * n_ + j] = v;
  }

 private:
  int32_t n_;
  std::vector<bool> bits_;
};

/// In-place reflexive-transitive closure (Warshall).
void ReflexiveTransitiveClosure(BoolMatrix* m);

/// The Hasse reduction of a *partial order* closure: edges (i, j) with
/// i ⊑ j, i ≠ j, and no k ∉ {i, j} with i ⊑ k ⊑ j. For pre-orders,
/// equivalent elements are first grouped; edges are between class
/// representatives (smallest id).
std::vector<std::pair<int32_t, int32_t>> HasseEdges(const BoolMatrix& closure);

/// Indices that are maximal in the pre-order: no j with i ⊑ j and not j ⊑ i.
std::vector<int32_t> MaximalElements(const BoolMatrix& closure);

/// Renders the Hasse diagram as "child -> parent" lines using `names`.
std::string HasseToString(const BoolMatrix& closure,
                          const std::vector<std::string>& names);

}  // namespace whynot::onto

#endif  // WHYNOT_ONTOLOGY_PREORDER_H_
