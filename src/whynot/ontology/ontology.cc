#include "whynot/ontology/ontology.h"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>

#include "whynot/common/parallel.h"

namespace whynot::onto {

namespace {

/// Below this many uncached concepts the per-shard pools plus the merge
/// pass cost more than the serial loop.
constexpr size_t kMinConceptsToShard = 4;

}  // namespace

BoundOntology::BoundOntology(const FiniteOntology* ontology,
                             const rel::Instance* instance)
    : ontology_(ontology), instance_(instance) {
  cache_.resize(static_cast<size_t>(ontology->NumConcepts()));
  cached_.resize(static_cast<size_t>(ontology->NumConcepts()), false);
}

const ExtSet& BoundOntology::ExtSlow(ConceptId id) {
  size_t idx = static_cast<size_t>(id);
  cache_[idx] = ontology_->ComputeExt(id, *instance_, &pool_);
  cache_[idx].Freeze(pool_.size());
  cached_[idx] = true;
  return cache_[idx];
}

Status BoundOntology::WarmExtensions(const exec::ExecContext* exec) {
  int32_t n = NumConcepts();
  std::vector<ConceptId> todo;
  for (ConceptId c = 0; c < n; ++c) {
    if (!cached_[static_cast<size_t>(c)]) todo.push_back(c);
  }
  if (todo.empty()) return Status::OK();
  // Injected warm failure: an allocation-failure stand-in fired before any
  // mutation, so the cache is untouched and the call is safely retryable.
  if (exec != nullptr && exec->fault != nullptr && exec->fault->fail_warm) {
    return Status::ResourceExhausted(
        "extension warm-up failed (injected fault)");
  }
  if (par::NumThreads() <= 1 || todo.size() < kMinConceptsToShard) {
    for (size_t k = 0; k < todo.size(); ++k) {
      if (std::optional<exec::Stop> s = exec::Check(exec, k)) {
        return exec::StopStatus(*s, "extension warm-up");
      }
      Ext(todo[k]);
    }
    return Status::OK();
  }
  // Serially compute the first concept through the normal path: any
  // once-per-ontology lazy state a ComputeExt keeps (e.g. the OBDA induced
  // ontology's saturation cache) is built here on the calling thread,
  // making the sharded calls below read-only on the ontology side.
  if (std::optional<exec::Stop> s = exec::Check(exec, 0)) {
    return exec::StopStatus(*s, "extension warm-up");
  }
  Ext(todo.front());
  todo.erase(todo.begin());
  if (todo.empty()) return Status::OK();

  // Sharded warm-up. ComputeExt interns into the bound pool, which is
  // single-threaded, so each shard computes into a concept-local pool and
  // a serial merge replays the interning in concept order afterwards. The
  // replay assigns exactly the ids the serial loop would: within one
  // concept the local pool's id order *is* the first-intern order of the
  // computation, and Intern is idempotent across concepts. The instance's
  // lazy caches are forced up front so the parallel ComputeExt calls are
  // genuinely read-only.
  instance_->WarmForConcurrentReads();
  struct Shard {
    ExtSet ext;
    ValuePool pool;
  };
  std::vector<Shard> shards(todo.size());
  const FiniteOntology* ontology = ontology_;
  const rel::Instance* instance = instance_;
  // An abandoned compute wave has holes, so it is discarded whole below —
  // already-warmed concepts stay cached and a later call resumes.
  std::atomic<bool> abandon{false};
  par::ParallelFor(todo.size(), 1, &abandon, [&](size_t begin, size_t end) {
    if (exec::ShouldAbandon(exec)) {
      abandon.store(true, std::memory_order_relaxed);
      return;
    }
    for (size_t k = begin; k < end; ++k) {
      shards[k].ext = ontology->ComputeExt(todo[k], *instance, &shards[k].pool);
    }
  });
  if (abandon.load(std::memory_order_relaxed)) {
    exec::Stop s = exec->PollNow(1).value_or(
        exec::Stop{exec::StopReason::kCancelled, 1});
    return exec::StopStatus(s, "extension warm-up");
  }
  std::vector<ValueId> remap;
  std::vector<ValueId> ids;
  for (size_t k = 0; k < todo.size(); ++k) {
    // Merge-order probe: ordinal k+1 continues the serial loop's count
    // (the first un-warmed concept consumed ordinal 0 above).
    if (std::optional<exec::Stop> s = exec::Check(exec, k + 1)) {
      return exec::StopStatus(*s, "extension warm-up");
    }
    size_t idx = static_cast<size_t>(todo[k]);
    ExtSet& ext = shards[k].ext;
    if (ext.is_all()) {
      cache_[idx] = ExtSet::All();
    } else {
      const ValuePool& local = shards[k].pool;
      remap.resize(static_cast<size_t>(local.size()));
      for (ValueId lid = 0; lid < local.size(); ++lid) {
        remap[static_cast<size_t>(lid)] = pool_.Intern(local.Get(lid));
      }
      ids.clear();
      ids.reserve(ext.ids().size());
      for (ValueId lid : ext.ids()) ids.push_back(remap[static_cast<size_t>(lid)]);
      cache_[idx] = ExtSet::Finite(std::move(ids));
    }
    // Representation universe = pool size right after this concept's
    // interning, exactly as the serial ExtSlow would have sized it.
    cache_[idx].Freeze(pool_.size());
    cached_[idx] = true;
  }
  return Status::OK();
}

std::vector<ConceptId> BoundOntology::ConceptsContaining(ValueId id) {
  WarmExtensions();
  int32_t n = NumConcepts();
  std::vector<ConceptId> out;
  if (par::NumThreads() <= 1 || n < 1024) {
    for (ConceptId c = 0; c < n; ++c) {
      if (cache_[static_cast<size_t>(c)].Contains(id)) out.push_back(c);
    }
    return out;
  }
  // Warm extensions are immutable; scan concept-id ranges in parallel and
  // concatenate the per-block hits in range order (ids stay ascending).
  std::vector<std::pair<size_t, std::vector<ConceptId>>> found;
  std::mutex mutex;
  par::ParallelFor(static_cast<size_t>(n), 256, [&](size_t begin, size_t end) {
    std::vector<ConceptId> local;
    for (size_t c = begin; c < end; ++c) {
      if (cache_[c].Contains(id)) local.push_back(static_cast<ConceptId>(c));
    }
    std::lock_guard<std::mutex> lock(mutex);
    found.emplace_back(begin, std::move(local));
  });
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [begin, part] : found) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Status BoundOntology::CheckConsistent() {
  int32_t n = NumConcepts();
  if (par::NumThreads() > 1 && n >= 8) {
    // Warm first (parallel), then the pairwise scan is read-only. Blocks
    // report their first offending pair; the merge keeps the (c1, c2)-lex
    // smallest so the error matches the serial scan's.
    WarmExtensions();
    std::optional<std::pair<ConceptId, ConceptId>> first;
    std::mutex mutex;
    par::ParallelFor(static_cast<size_t>(n), 1, [&](size_t begin, size_t end) {
      for (size_t c1 = begin; c1 < end; ++c1) {
        for (int32_t c2 = 0; c2 < n; ++c2) {
          ConceptId a = static_cast<ConceptId>(c1);
          if (a == c2 || !Subsumes(a, c2)) continue;
          if (!cache_[c1].SubsetOf(cache_[static_cast<size_t>(c2)])) {
            std::lock_guard<std::mutex> lock(mutex);
            if (!first.has_value() || std::make_pair(a, c2) < *first) {
              first = std::make_pair(a, c2);
            }
            return;  // later pairs in this block are lex-greater
          }
        }
      }
    });
    if (!first.has_value()) return Status::OK();
    auto [c1, c2] = *first;
    return Status::InvalidArgument(
        "instance inconsistent with ontology: " + ConceptName(c1) + " ⊑ " +
        ConceptName(c2) + " but ext(" + ConceptName(c1) + ") ⊄ ext(" +
        ConceptName(c2) + ")");
  }
  for (ConceptId c1 = 0; c1 < n; ++c1) {
    for (ConceptId c2 = 0; c2 < n; ++c2) {
      if (c1 == c2 || !Subsumes(c1, c2)) continue;
      if (!Ext(c1).SubsetOf(Ext(c2))) {
        return Status::InvalidArgument(
            "instance inconsistent with ontology: " + ConceptName(c1) +
            " ⊑ " + ConceptName(c2) + " but ext(" + ConceptName(c1) +
            ") ⊄ ext(" + ConceptName(c2) + ")");
      }
    }
  }
  return Status::OK();
}

BoundOntology::MemoryStats BoundOntology::ExtMemoryStats() const {
  MemoryStats s;
  size_t pool_words = (static_cast<size_t>(pool_.size()) + 63) / 64;
  for (size_t i = 0; i < cache_.size(); ++i) {
    if (!cached_[i]) continue;
    const ExtSet& e = cache_[i];
    if (e.is_all()) continue;
    s.ext_bytes += e.MemoryBytes();
    s.dense_equivalent_bytes += sizeof(ExtSet) +
                                e.ids().capacity() * sizeof(ValueId) +
                                pool_words * sizeof(uint64_t);
    if (e.has_bitmap()) {
      ++s.dense_sets;
    } else if (e.has_hybrid()) {
      ++s.hybrid_sets;
    } else {
      ++s.flat_sets;
    }
  }
  return s;
}

}  // namespace whynot::onto
