#include "whynot/ontology/ontology.h"

namespace whynot::onto {

BoundOntology::BoundOntology(const FiniteOntology* ontology,
                             const rel::Instance* instance)
    : ontology_(ontology), instance_(instance) {
  cache_.resize(static_cast<size_t>(ontology->NumConcepts()));
  cached_.resize(static_cast<size_t>(ontology->NumConcepts()), false);
}

const ExtSet& BoundOntology::Ext(ConceptId id) {
  size_t idx = static_cast<size_t>(id);
  if (!cached_[idx]) {
    cache_[idx] = ontology_->ComputeExt(id, *instance_, &pool_);
    cached_[idx] = true;
  }
  return cache_[idx];
}

Status BoundOntology::CheckConsistent() {
  int32_t n = NumConcepts();
  for (ConceptId c1 = 0; c1 < n; ++c1) {
    for (ConceptId c2 = 0; c2 < n; ++c2) {
      if (c1 == c2 || !Subsumes(c1, c2)) continue;
      if (!Ext(c1).SubsetOf(Ext(c2))) {
        return Status::InvalidArgument(
            "instance inconsistent with ontology: " + ConceptName(c1) +
            " ⊑ " + ConceptName(c2) + " but ext(" + ConceptName(c1) +
            ") ⊄ ext(" + ConceptName(c2) + ")");
      }
    }
  }
  return Status::OK();
}

}  // namespace whynot::onto
