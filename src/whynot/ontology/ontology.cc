#include "whynot/ontology/ontology.h"

namespace whynot::onto {

BoundOntology::BoundOntology(const FiniteOntology* ontology,
                             const rel::Instance* instance)
    : ontology_(ontology), instance_(instance) {
  cache_.resize(static_cast<size_t>(ontology->NumConcepts()));
  cached_.resize(static_cast<size_t>(ontology->NumConcepts()), false);
}

const ExtSet& BoundOntology::ExtSlow(ConceptId id) {
  size_t idx = static_cast<size_t>(id);
  cache_[idx] = ontology_->ComputeExt(id, *instance_, &pool_);
  cache_[idx].EnsureBitmap(pool_.size());
  cached_[idx] = true;
  return cache_[idx];
}

void BoundOntology::WarmExtensions() {
  int32_t n = NumConcepts();
  for (ConceptId c = 0; c < n; ++c) Ext(c);
}

std::vector<ConceptId> BoundOntology::ConceptsContaining(ValueId id) {
  WarmExtensions();
  std::vector<ConceptId> out;
  int32_t n = NumConcepts();
  for (ConceptId c = 0; c < n; ++c) {
    if (cache_[static_cast<size_t>(c)].Contains(id)) out.push_back(c);
  }
  return out;
}

Status BoundOntology::CheckConsistent() {
  int32_t n = NumConcepts();
  for (ConceptId c1 = 0; c1 < n; ++c1) {
    for (ConceptId c2 = 0; c2 < n; ++c2) {
      if (c1 == c2 || !Subsumes(c1, c2)) continue;
      if (!Ext(c1).SubsetOf(Ext(c2))) {
        return Status::InvalidArgument(
            "instance inconsistent with ontology: " + ConceptName(c1) +
            " ⊑ " + ConceptName(c2) + " but ext(" + ConceptName(c1) +
            ") ⊄ ext(" + ConceptName(c2) + ")");
      }
    }
  }
  return Status::OK();
}

}  // namespace whynot::onto
