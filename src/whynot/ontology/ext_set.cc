#include "whynot/ontology/ext_set.h"

#include <algorithm>
#include <cassert>

#include "whynot/common/algorithm.h"
#include "whynot/common/strings.h"

namespace whynot::onto {

namespace {

size_t WordsFor(int32_t universe) {
  return (static_cast<size_t>(universe) + 63) / 64;
}

/// The density switch: mirror `ids` as a bitmap iff the bitmap costs at
/// most kMaxWordsPerElement words per element, or is trivially small.
bool DenseEnough(size_t num_ids, size_t num_words) {
  if (num_ids == 0) return false;
  return num_words <= ExtSet::kMinWords ||
         num_words <= ExtSet::kMaxWordsPerElement * num_ids;
}

}  // namespace

ExtSet ExtSet::Finite(std::vector<ValueId> ids) {
  SortUnique(&ids);
  ExtSet s;
  s.ids_ = std::move(ids);
  if (!s.ids_.empty() &&
      DenseEnough(s.ids_.size(), WordsFor(s.ids_.back() + 1))) {
    s.bits_ = DenseBitmap(s.ids_);
  }
  return s;
}

ExtSet ExtSet::All() {
  ExtSet s;
  s.all_ = true;
  return s;
}

void ExtSet::EnsureBitmap(int32_t universe) {
  if (all_ || has_bitmap() || ids_.empty()) return;
  bits_ = DenseBitmap(ids_, universe);
  hyb_ = HybridBitmap();
}

void ExtSet::Freeze(int32_t universe) {
  if (all_ || ids_.empty() || has_hybrid()) return;
  // Finite() may already have built a dense mirror over the small id-local
  // universe; the force-hybrid sweep still converts it so every engine path
  // runs on chunked containers, otherwise an existing mirror stands.
  bool force_hybrid = GetSetRepPolicy() == SetRepPolicy::kForceHybrid;
  if (has_bitmap() && !force_hybrid) return;
  if (ChooseHybridRep(ids_.size(), WordsFor(universe))) {
    hyb_ = HybridBitmap::FromSorted(ids_, universe);
    bits_ = DenseBitmap();
  } else if (!has_bitmap()) {
    bits_ = DenseBitmap(ids_, universe);
  }
}

size_t ExtSet::MemoryBytes() const {
  return sizeof(*this) + ids_.capacity() * sizeof(ValueId) +
         (bits_.MemoryBytes() - sizeof(DenseBitmap)) +
         (hyb_.MemoryBytes() - sizeof(HybridBitmap));
}

bool ExtSet::ContainsSlow(ValueId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool ExtSet::SubsetOf(const ExtSet& other) const {
  if (other.all_) return true;
  if (all_) return false;
  if (has_bitmap() && other.has_bitmap()) {
    return bits_.SubsetOf(other.bits_);
  }
  if (has_hybrid() && other.has_hybrid()) {
    return hyb_.SubsetOf(other.hyb_);
  }
  if (other.has_bitmap() || other.has_hybrid()) {
    // Mixed representations: probe our (sorted, usually small) id list
    // against the other side's O(1)/O(log) membership.
    for (ValueId id : ids_) {
      if (!other.Contains(id)) return false;
    }
    return true;
  }
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

ExtSet ExtSet::Intersect(const ExtSet& other) const {
  if (all_) return other;
  if (other.all_) return *this;
  if (has_bitmap() && other.has_bitmap()) {
    ExtSet out;
    out.bits_ = DenseBitmap::Intersect(bits_, other.bits_);
    out.ids_ = out.bits_.ToIds();
    if (out.ids_.empty()) out.bits_ = DenseBitmap();
    return out;
  }
  if (has_hybrid() || other.has_hybrid()) {
    // Probe the smaller side's ids against the bigger side's membership —
    // never materializes a universe-sized temporary.
    const ExtSet* small = ids_.size() <= other.ids_.size() ? this : &other;
    const ExtSet* big = small == this ? &other : this;
    std::vector<ValueId> ids;
    for (ValueId id : small->ids_) {
      if (big->Contains(id)) ids.push_back(id);
    }
    return Finite(std::move(ids));
  }
  std::vector<ValueId> ids;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(ids));
  return Finite(std::move(ids));
}

std::string ExtSet::ToString(const ValuePool& pool) const {
  if (all_) return "Const";
  std::vector<std::string> parts;
  parts.reserve(ids_.size());
  for (ValueId id : ids_) parts.push_back(pool.Get(id).ToString());
  return "{" + Join(parts, ", ") + "}";
}

ExtSet InternValues(const std::vector<Value>& values, ValuePool* pool) {
  std::vector<ValueId> ids;
  ids.reserve(values.size());
  for (const Value& v : values) ids.push_back(pool->Intern(v));
  return ExtSet::Finite(std::move(ids));
}

}  // namespace whynot::onto
