#include "whynot/ontology/ext_set.h"

#include <algorithm>
#include <cassert>

#include "whynot/common/strings.h"

namespace whynot::onto {

ExtSet ExtSet::Finite(std::vector<ValueId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  ExtSet s;
  s.ids_ = std::move(ids);
  return s;
}

ExtSet ExtSet::All() {
  ExtSet s;
  s.all_ = true;
  return s;
}

bool ExtSet::Contains(ValueId id) const {
  if (all_) return true;
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool ExtSet::SubsetOf(const ExtSet& other) const {
  if (other.all_) return true;
  if (all_) return false;
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

ExtSet ExtSet::Intersect(const ExtSet& other) const {
  if (all_) return other;
  if (other.all_) return *this;
  ExtSet out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

std::string ExtSet::ToString(const ValuePool& pool) const {
  if (all_) return "Const";
  std::vector<std::string> parts;
  parts.reserve(ids_.size());
  for (ValueId id : ids_) parts.push_back(pool.Get(id).ToString());
  return "{" + Join(parts, ", ") + "}";
}

ExtSet InternValues(const std::vector<Value>& values, ValuePool* pool) {
  std::vector<ValueId> ids;
  ids.reserve(values.size());
  for (const Value& v : values) ids.push_back(pool->Intern(v));
  return ExtSet::Finite(std::move(ids));
}

}  // namespace whynot::onto
