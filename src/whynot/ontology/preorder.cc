#include "whynot/ontology/preorder.h"

#include "whynot/common/parallel.h"

namespace whynot::onto {

int32_t BoolMatrix::RowCount(int32_t i) const {
  const uint64_t* row = RowWords(i);
  int32_t count = 0;
  for (size_t w = 0; w < words_per_row_; ++w) {
    count += static_cast<int32_t>(__builtin_popcountll(row[w]));
  }
  return count;
}

void ReflexiveTransitiveClosure(BoolMatrix* m) {
  int32_t n = m->size();
  for (int32_t i = 0; i < n; ++i) m->Set(i, i);
  // For each pivot the row updates are independent — every row i != k only
  // reads the (unchanging) pivot row k and ORs into its own words — so the
  // inner sweep shards by row blocks. The result is bit-identical for any
  // thread count. Matrices below the cutoff keep the plain loop: the
  // per-pivot dispatch would dominate the handful of word-ops per row
  // (the Table-1 ontologies are tens of concepts).
  if (par::NumThreads() > 1 && n >= 256) {
    for (int32_t k = 0; k < n; ++k) {
      par::ParallelFor(static_cast<size_t>(n), 128,
                       [&](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                           int32_t row = static_cast<int32_t>(i);
                           if (row != k && m->Get(row, k)) m->RowOr(row, k);
                         }
                       });
    }
    return;
  }
  for (int32_t k = 0; k < n; ++k) {
    for (int32_t i = 0; i < n; ++i) {
      if (i != k && m->Get(i, k)) m->RowOr(i, k);
    }
  }
}

namespace {

/// Calls `fn(j)` for every set column j of row i, in increasing order,
/// until fn returns false. Iterates set bits word-by-word, skipping the
/// zero words a sparse closure row mostly consists of.
template <typename Fn>
void ForEachInRow(const BoolMatrix& m, int32_t i, Fn fn) {
  const uint64_t* row = m.RowWords(i);
  for (size_t w = 0; w < m.words_per_row(); ++w) {
    uint64_t word = row[w];
    while (word != 0) {
      int bit = __builtin_ctzll(word);
      if (!fn(static_cast<int32_t>(w * 64 + static_cast<size_t>(bit)))) {
        return;
      }
      word &= word - 1;
    }
  }
}

/// Representative (smallest id) of i's equivalence class under ⊑∩⊒.
int32_t ClassRep(const BoolMatrix& closure, int32_t i) {
  int32_t rep = i;
  ForEachInRow(closure, i, [&](int32_t j) {
    if (closure.Get(j, i)) {
      rep = j;  // smallest such j: bits come in increasing order
      return false;
    }
    return true;
  });
  return rep;
}

/// Any set bit in rows a AND b.
bool AnyRowAnd(const uint64_t* a, const uint64_t* b, size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) {
    if (a[w] & b[w]) return true;
  }
  return false;
}

}  // namespace

std::vector<int32_t> EquivalenceClassReps(const BoolMatrix& closure) {
  int32_t n = closure.size();
  std::vector<int32_t> rep(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    rep[static_cast<size_t>(i)] = ClassRep(closure, i);
  }
  return rep;
}

std::vector<std::pair<int32_t, int32_t>> HasseEdges(const BoolMatrix& closure) {
  int32_t n = closure.size();
  std::vector<int32_t> rep = EquivalenceClassReps(closure);
  // Materialize the strict order as row bitmaps in both directions: row i
  // of `strict_up` is {k : i ⊏ k}, row j of `strict_down` is {k : k ⊏ j}.
  // A strict pair (i, j) is then a cover edge iff strict_up(i) and
  // strict_down(j) share no element — one word-parallel AND-any instead
  // of the scalar k-scan, and intermediates that are non-representatives
  // witness exactly when their representative does, so no rep filtering
  // is needed inside the test.
  BoolMatrix strict_up(n), strict_down(n);
  for (int32_t i = 0; i < n; ++i) {
    ForEachInRow(closure, i, [&](int32_t j) {
      if (i != j && !closure.Get(j, i)) {
        strict_up.Set(i, j);
        strict_down.Set(j, i);
      }
      return true;
    });
  }
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < n; ++i) {
    if (rep[static_cast<size_t>(i)] != i) continue;
    ForEachInRow(strict_up, i, [&](int32_t j) {
      if (rep[static_cast<size_t>(j)] != j) return true;
      if (!AnyRowAnd(strict_up.RowWords(i), strict_down.RowWords(j),
                     closure.words_per_row())) {
        edges.emplace_back(i, j);
      }
      return true;
    });
  }
  return edges;
}

std::vector<int32_t> MaximalElements(const BoolMatrix& closure) {
  int32_t n = closure.size();
  std::vector<int32_t> out;
  for (int32_t i = 0; i < n; ++i) {
    bool maximal = true;
    // i is maximal iff every j above it (a set bit of row i) is also
    // below it; only the set bits need visiting.
    ForEachInRow(closure, i, [&](int32_t j) {
      if (i != j && !closure.Get(j, i)) {
        maximal = false;
        return false;
      }
      return true;
    });
    if (maximal) out.push_back(i);
  }
  return out;
}

std::string HasseToString(const BoolMatrix& closure,
                          const std::vector<std::string>& names) {
  std::string out;
  for (const auto& [child, parent] : HasseEdges(closure)) {
    out += names[static_cast<size_t>(child)] + " -> " +
           names[static_cast<size_t>(parent)] + "\n";
  }
  return out;
}

}  // namespace whynot::onto
