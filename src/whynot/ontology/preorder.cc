#include "whynot/ontology/preorder.h"

namespace whynot::onto {

void ReflexiveTransitiveClosure(BoolMatrix* m) {
  int32_t n = m->size();
  for (int32_t i = 0; i < n; ++i) m->Set(i, i);
  for (int32_t k = 0; k < n; ++k) {
    for (int32_t i = 0; i < n; ++i) {
      if (!m->Get(i, k)) continue;
      for (int32_t j = 0; j < n; ++j) {
        if (m->Get(k, j)) m->Set(i, j);
      }
    }
  }
}

namespace {

/// Representative (smallest id) of i's equivalence class under ⊑∩⊒.
int32_t ClassRep(const BoolMatrix& closure, int32_t i) {
  for (int32_t j = 0; j < closure.size(); ++j) {
    if (closure.Get(i, j) && closure.Get(j, i)) return j;  // smallest such j
  }
  return i;
}

}  // namespace

std::vector<std::pair<int32_t, int32_t>> HasseEdges(const BoolMatrix& closure) {
  int32_t n = closure.size();
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < n; ++i) {
    if (ClassRep(closure, i) != i) continue;
    for (int32_t j = 0; j < n; ++j) {
      if (i == j || ClassRep(closure, j) != j) continue;
      if (!closure.Get(i, j) || closure.Get(j, i)) continue;
      // Check there is no intermediate class strictly between i and j.
      bool covered = true;
      for (int32_t k = 0; k < n; ++k) {
        if (k == i || k == j || ClassRep(closure, k) != k) continue;
        bool i_below_k = closure.Get(i, k) && !closure.Get(k, i);
        bool k_below_j = closure.Get(k, j) && !closure.Get(j, k);
        if (i_below_k && k_below_j) {
          covered = false;
          break;
        }
      }
      if (covered) edges.emplace_back(i, j);
    }
  }
  return edges;
}

std::vector<int32_t> MaximalElements(const BoolMatrix& closure) {
  int32_t n = closure.size();
  std::vector<int32_t> out;
  for (int32_t i = 0; i < n; ++i) {
    bool maximal = true;
    for (int32_t j = 0; j < n && maximal; ++j) {
      if (i != j && closure.Get(i, j) && !closure.Get(j, i)) maximal = false;
    }
    if (maximal) out.push_back(i);
  }
  return out;
}

std::string HasseToString(const BoolMatrix& closure,
                          const std::vector<std::string>& names) {
  std::string out;
  for (const auto& [child, parent] : HasseEdges(closure)) {
    out += names[static_cast<size_t>(child)] + " -> " +
           names[static_cast<size_t>(parent)] + "\n";
  }
  return out;
}

}  // namespace whynot::onto
