#ifndef WHYNOT_ONTOLOGY_ONTOLOGY_H_
#define WHYNOT_ONTOLOGY_ONTOLOGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "whynot/common/exec_control.h"
#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/ontology/ext_set.h"
#include "whynot/relational/instance.h"

namespace whynot::onto {

/// Dense handle for a concept inside one ontology object.
using ConceptId = int32_t;

/// A *finite* S-ontology (C, ⊑, ext) in the sense of Definition 3.1.
///
/// `C` is finite here; the infinite instance/schema-derived ontologies OI
/// and OS of Section 4.2 are deliberately *not* materialized (the paper's
/// Algorithm 2 works against them directly via `lub`), but their finite
/// restrictions OI[K] / OS[K] can be materialized into this interface
/// (concepts/materialize.h), which is what Propositions 5.1 and 5.3 exploit.
class FiniteOntology {
 public:
  virtual ~FiniteOntology() = default;

  virtual int32_t NumConcepts() const = 0;
  virtual std::string ConceptName(ConceptId id) const = 0;

  /// The subsumption pre-order: true iff `sub` ⊑ `super`. Must be reflexive
  /// and transitive.
  virtual bool Subsumes(ConceptId sub, ConceptId super) const = 0;

  /// ext(C, I): the extension of concept `id` in `instance`, with constants
  /// interned into `pool`. Must be polynomial-time computable
  /// (Definition 3.1).
  ///
  /// Threading contract (sharded warm-up): after one serial call against
  /// an instance, further calls against the *same* instance may run
  /// concurrently (each with its own pool) and must not mutate shared
  /// state. Once-per-ontology lazy caches are therefore fine — they build
  /// during the serial first call — and the bound instance's lazy caches
  /// are pre-warmed by the caller (Instance::WarmForConcurrentReads).
  virtual ExtSet ComputeExt(ConceptId id, const rel::Instance& instance,
                            ValuePool* pool) const = 0;
};

/// A finite ontology bound to one instance: caches extensions, owns the
/// value pool, and checks consistency (Definition 3.1: I is consistent with
/// O iff C1 ⊑ C2 implies ext(C1, I) ⊆ ext(C2, I)).
///
/// All explanation algorithms over external ontologies operate on a
/// BoundOntology.
class BoundOntology {
 public:
  BoundOntology(const FiniteOntology* ontology, const rel::Instance* instance);

  const FiniteOntology& ontology() const { return *ontology_; }
  const rel::Instance& instance() const { return *instance_; }
  ValuePool& pool() { return pool_; }
  const ValuePool& pool() const { return pool_; }

  int32_t NumConcepts() const { return ontology_->NumConcepts(); }
  bool Subsumes(ConceptId sub, ConceptId super) const {
    return ontology_->Subsumes(sub, super);
  }
  std::string ConceptName(ConceptId id) const {
    return ontology_->ConceptName(id);
  }

  /// Cached ext(C, I). The cached ExtSet carries a DenseBitmap mirror sized
  /// by the value pool, so repeated membership probes are O(1) word tests.
  /// Inline fast path: one flag test once the extension is cached.
  const ExtSet& Ext(ConceptId id) {
    size_t idx = static_cast<size_t>(id);
    if (cached_[idx]) return cache_[idx];
    return ExtSlow(id);
  }

  /// Computes (and bitmaps) every concept extension up front. Called
  /// implicitly by ConceptsContaining; cheap to call again. With more than
  /// one pool thread the construction is *sharded* by concept range: each
  /// shard computes into a concept-local ValuePool and a serial merge
  /// replays the interning in concept order, so the resulting pool ids,
  /// extensions, and bitmaps are byte-identical to the serial warm-up.
  ///
  /// `exec` (optional) is observed once per un-warmed concept at the
  /// serial points (the serial warm loop / the sharded path's merge), so a
  /// stop ordinal is thread-invariant. A stop — or an injected warm
  /// failure (test::FaultInjector::fail_warm) — returns the matching error
  /// status; concepts already warmed stay cached (warm-up is idempotent
  /// and resumable), and there is no partial warm table to certify.
  Status WarmExtensions(const exec::ExecContext* exec = nullptr);

  /// C(a): all concepts whose extension contains `id` (line 1 of
  /// Algorithm 1). One word-parallel pass over the precomputed extension
  /// table; shared by the exhaustive, existence, cardinality, and why
  /// explanation searches.
  std::vector<ConceptId> ConceptsContaining(ValueId id);

  /// Checks Definition 3.1 consistency of the bound instance with the
  /// ontology. Returns InvalidArgument naming the offending pair otherwise.
  Status CheckConsistent();

  /// Memory accounting for the warm extension table. `ext_bytes` is the
  /// actual residency across representations; `dense_equivalent_bytes` is
  /// the counterfactual cost had every finite extension force-built a
  /// pool-universe dense mirror (the pre-hybrid behavior) — the pair is
  /// what the BENCH memory column reports residency reduction against.
  struct MemoryStats {
    size_t ext_bytes = 0;
    size_t dense_equivalent_bytes = 0;
    size_t dense_sets = 0;   // froze to a flat dense mirror
    size_t hybrid_sets = 0;  // froze to chunked hybrid containers
    size_t flat_sets = 0;    // id vector only
  };
  MemoryStats ExtMemoryStats() const;

 private:
  const ExtSet& ExtSlow(ConceptId id);

  const FiniteOntology* ontology_;
  const rel::Instance* instance_;
  ValuePool pool_;
  std::vector<ExtSet> cache_;
  std::vector<bool> cached_;
};

}  // namespace whynot::onto

#endif  // WHYNOT_ONTOLOGY_ONTOLOGY_H_
