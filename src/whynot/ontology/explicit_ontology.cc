#include "whynot/ontology/explicit_ontology.h"

namespace whynot::onto {

ConceptId ExplicitOntology::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  ConceptId id = static_cast<ConceptId>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  fixed_ext_.emplace_back();
  ext_fns_.emplace_back();
  return id;
}

ConceptId ExplicitOntology::AddConcept(const std::string& name) {
  return Intern(name);
}

void ExplicitOntology::AddSubsumption(const std::string& sub,
                                      const std::string& super) {
  edges_.emplace_back(Intern(sub), Intern(super));
}

void ExplicitOntology::SetExtension(const std::string& concept_name,
                                    std::vector<Value> values) {
  fixed_ext_[static_cast<size_t>(Intern(concept_name))] = std::move(values);
}

void ExplicitOntology::SetExtensionFn(const std::string& concept_name, ExtFn fn) {
  ext_fns_[static_cast<size_t>(Intern(concept_name))] = std::move(fn);
}

Status ExplicitOntology::Finalize() {
  closure_ = std::make_unique<BoolMatrix>(NumConcepts());
  for (const auto& [sub, super] : edges_) closure_->Set(sub, super);
  ReflexiveTransitiveClosure(closure_.get());
  return Status::OK();
}

ConceptId ExplicitOntology::FindConcept(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

bool ExplicitOntology::Subsumes(ConceptId sub, ConceptId super) const {
  return closure_->Get(sub, super);
}

ExtSet ExplicitOntology::ComputeExt(ConceptId id,
                                    const rel::Instance& instance,
                                    ValuePool* pool) const {
  size_t idx = static_cast<size_t>(id);
  if (ext_fns_[idx]) {
    return InternValues(ext_fns_[idx](instance), pool);
  }
  return InternValues(fixed_ext_[idx], pool);
}

std::string ExplicitOntology::SubsumptionToString() const {
  return HasseToString(*closure_, names_);
}

}  // namespace whynot::onto
