#ifndef WHYNOT_ONTOLOGY_EXT_SET_H_
#define WHYNOT_ONTOLOGY_EXT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "whynot/common/dense_bitmap.h"
#include "whynot/common/hybrid_bitmap.h"
#include "whynot/common/value.h"

namespace whynot::onto {

/// The word-parallel bitmap kernel now lives in common/ (the relational
/// column indexes share it); the alias keeps onto::DenseBitmap spelling.
using whynot::DenseBitmap;

/// The extension of a concept with respect to an instance: either a finite
/// set of interned constants, or symbolically *all* of Const (the extension
/// of ⊤ and of any concept equivalent to it).
///
/// Ids refer to a ValuePool owned by the surrounding BoundOntology /
/// algorithm context. Finite sets keep a sorted, deduplicated id vector
/// (the canonical representation: iteration, equality, printing) and — when
/// the set is dense enough in its id universe — a DenseBitmap mirror that
/// makes Contains O(1) and SubsetOf/Intersect word-parallel. The density
/// switch builds the bitmap iff it costs at most kMaxWordsPerElement words
/// per element (or the universe is trivially small), capping bitmap memory
/// at 64 bytes per stored id.
class ExtSet {
 public:
  /// Bitmap representation threshold: build iff
  ///   words(universe) <= max(kMinWords, kMaxWordsPerElement * |S|).
  /// (Aliases of the shared constants in common/dense_bitmap.h — every
  /// sparse/dense choice in the engine uses the same measured numbers.)
  static constexpr size_t kMaxWordsPerElement =
      whynot::kDenseMirrorMaxWordsPerElement;
  static constexpr size_t kMinWords = whynot::kDenseMirrorMinWords;

  /// The empty extension.
  ExtSet() = default;

  /// A finite extension; `ids` need not be sorted. Builds the bitmap
  /// mirror automatically when the density heuristic allows.
  static ExtSet Finite(std::vector<ValueId> ids);

  /// The extension Const (countably infinite).
  static ExtSet All();

  bool is_all() const { return all_; }
  bool empty() const { return !all_ && ids_.empty(); }

  /// Number of elements; meaningless if is_all() (asserts in debug).
  size_t size() const { return ids_.size(); }

  /// Sorted ids; requires !is_all().
  const std::vector<ValueId>& ids() const { return ids_; }

  /// Inline: one bitmap word test on the (warm) extension-table path, a
  /// chunked probe when the set froze hybrid, binary search otherwise.
  bool Contains(ValueId id) const {
    if (all_) return true;
    if (!bits_.empty()) return bits_.Test(id);
    if (!hyb_.empty()) return hyb_.Test(id);
    return ContainsSlow(id);
  }

  /// Set containment: *this ⊆ other (All ⊆ only All).
  bool SubsetOf(const ExtSet& other) const;

  /// Set intersection.
  ExtSet Intersect(const ExtSet& other) const;

  bool operator==(const ExtSet& other) const {
    return all_ == other.all_ && ids_ == other.ids_;
  }

  /// Force-builds the bitmap mirror sized for `universe` ids (e.g. the
  /// owning ValuePool's size), bypassing the density heuristic. Used by
  /// tests and callers that explicitly want the flat dense form. No-op for
  /// All or if already built.
  void EnsureBitmap(int32_t universe);

  /// Freeze-time representation selection for a long-lived read-mostly set
  /// (BoundOntology's warm extension table): builds a dense mirror when the
  /// set is dense in the `universe`, a chunked HybridBitmap otherwise —
  /// O(cardinality) bytes instead of O(universe). Mutation-phase code never
  /// calls this; the flat ids_ vector stays canonical either way.
  void Freeze(int32_t universe);

  /// Whether the bitmap mirror is present (exposed for tests/benchmarks).
  bool has_bitmap() const { return !bits_.empty(); }

  /// Whether the frozen hybrid representation is present.
  bool has_hybrid() const { return !hyb_.empty(); }

  /// Heap + object bytes this set occupies across all representations.
  size_t MemoryBytes() const;

  /// "{a, b, c}" or "Const" using the pool for names.
  std::string ToString(const ValuePool& pool) const;

 private:
  bool ContainsSlow(ValueId id) const;

  bool all_ = false;
  std::vector<ValueId> ids_;
  DenseBitmap bits_;   // empty unless the density switch (or EnsureBitmap)
                       // materialized it; always mirrors ids_ when present
  HybridBitmap hyb_;   // empty unless Freeze chose the hybrid form; mutually
                       // exclusive with bits_, always mirrors ids_
};

/// Interns a list of values into the pool and returns their ExtSet.
ExtSet InternValues(const std::vector<Value>& values, ValuePool* pool);

}  // namespace whynot::onto

#endif  // WHYNOT_ONTOLOGY_EXT_SET_H_
