#ifndef WHYNOT_ONTOLOGY_EXT_SET_H_
#define WHYNOT_ONTOLOGY_EXT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "whynot/common/value.h"

namespace whynot::onto {

/// The extension of a concept with respect to an instance: either a finite
/// set of interned constants, or symbolically *all* of Const (the extension
/// of ⊤ and of any concept equivalent to it).
///
/// Ids refer to a ValuePool owned by the surrounding BoundOntology /
/// algorithm context. Finite sets are kept sorted and deduplicated.
class ExtSet {
 public:
  /// The empty extension.
  ExtSet() = default;

  /// A finite extension; `ids` need not be sorted.
  static ExtSet Finite(std::vector<ValueId> ids);

  /// The extension Const (countably infinite).
  static ExtSet All();

  bool is_all() const { return all_; }
  bool empty() const { return !all_ && ids_.empty(); }

  /// Number of elements; meaningless if is_all() (asserts in debug).
  size_t size() const { return ids_.size(); }

  /// Sorted ids; requires !is_all().
  const std::vector<ValueId>& ids() const { return ids_; }

  bool Contains(ValueId id) const;

  /// Set containment: *this ⊆ other (All ⊆ only All).
  bool SubsetOf(const ExtSet& other) const;

  /// Set intersection.
  ExtSet Intersect(const ExtSet& other) const;

  bool operator==(const ExtSet& other) const {
    return all_ == other.all_ && ids_ == other.ids_;
  }

  /// "{a, b, c}" or "Const" using the pool for names.
  std::string ToString(const ValuePool& pool) const;

 private:
  bool all_ = false;
  std::vector<ValueId> ids_;
};

/// Interns a list of values into the pool and returns their ExtSet.
ExtSet InternValues(const std::vector<Value>& values, ValuePool* pool);

}  // namespace whynot::onto

#endif  // WHYNOT_ONTOLOGY_EXT_SET_H_
