#ifndef WHYNOT_ONTOLOGY_EXPLICIT_ONTOLOGY_H_
#define WHYNOT_ONTOLOGY_EXPLICIT_ONTOLOGY_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/ontology/ontology.h"
#include "whynot/ontology/preorder.h"

namespace whynot::onto {

/// A hand-specified finite S-ontology: named concepts, explicit subsumption
/// edges (closed reflexively and transitively on Finalize), and per-concept
/// extensions given either as fixed constant sets (instance-independent,
/// like Figure 3 of the paper) or as functions of the instance.
///
/// Usage:
///   ExplicitOntology o;
///   o.AddConcept("City");
///   o.AddConcept("European-City");
///   o.AddSubsumption("European-City", "City");
///   o.SetExtension("City", {"Amsterdam", "Berlin", ...});
///   WHYNOT_RETURN_IF_ERROR(o.Finalize());
class ExplicitOntology : public FiniteOntology {
 public:
  using ExtFn = std::function<std::vector<Value>(const rel::Instance&)>;

  /// Adds a concept; returns its id. Duplicate names are rejected at
  /// Finalize time.
  ConceptId AddConcept(const std::string& name);

  /// Declares `sub` ⊑ `super` (by name; concepts are added implicitly).
  void AddSubsumption(const std::string& sub, const std::string& super);

  /// Fixed, instance-independent extension (Figure 3 style).
  void SetExtension(const std::string& concept_name, std::vector<Value> values);

  /// Instance-dependent extension.
  void SetExtensionFn(const std::string& concept_name, ExtFn fn);

  /// Computes the reflexive-transitive closure of the subsumption edges.
  /// Must be called before use as a FiniteOntology.
  Status Finalize();

  /// Id of a named concept, or -1.
  ConceptId FindConcept(const std::string& name) const;

  // FiniteOntology:
  int32_t NumConcepts() const override {
    return static_cast<int32_t>(names_.size());
  }
  std::string ConceptName(ConceptId id) const override {
    return names_[static_cast<size_t>(id)];
  }
  bool Subsumes(ConceptId sub, ConceptId super) const override;
  ExtSet ComputeExt(ConceptId id, const rel::Instance& instance,
                    ValuePool* pool) const override;

  /// Hasse-diagram rendering of the subsumption order (for examples).
  std::string SubsumptionToString() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, ConceptId> index_;
  std::vector<std::pair<ConceptId, ConceptId>> edges_;
  std::vector<std::vector<Value>> fixed_ext_;
  std::vector<ExtFn> ext_fns_;
  std::unique_ptr<BoolMatrix> closure_;

  ConceptId Intern(const std::string& name);
};

}  // namespace whynot::onto

#endif  // WHYNOT_ONTOLOGY_EXPLICIT_ONTOLOGY_H_
