#include "whynot/concepts/schema_subsumption.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "whynot/relational/cq_eval.h"
#include "whynot/relational/interval.h"
#include "whynot/relational/instance.h"
#include "whynot/relational/views.h"
#include "whynot/ontology/preorder.h"

namespace whynot::ls {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kYes:
      return "yes";
    case Verdict::kNo:
      return "no";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

constexpr char kOutVar[] = "__out";

// ---------------------------------------------------------------------------
// Dense-order helpers: construct fresh representatives strictly above,
// below, or between constants. Doubles give density among numbers; for
// strings we use controlled extensions (s + "\x00"^k + "\x01" forms a
// strictly decreasing chain of values just above s), falling back to
// kUnsupported in the rare case no strict intermediate can be realized.
// ---------------------------------------------------------------------------

Value ValueAbove(const Value& a, int ordinal) {
  if (a.is_number()) return Value(a.AsNumber() + 1.0 + ordinal);
  return Value(a.AsString() +
               std::string(static_cast<size_t>(ordinal) + 1, '~'));
}

Value ValueBelow(const Value& a, int ordinal) {
  if (a.is_number()) return Value(a.AsNumber() - 1.0 - ordinal);
  return Value(-1000.0 - ordinal);  // numbers sort below all strings
}

Result<Value> ValueBetween(const Value& a, const Value& b, int ordinal) {
  if (a.is_number() && b.is_number()) {
    double mid =
        a.AsNumber() + (b.AsNumber() - a.AsNumber()) / (2.0 + ordinal);
    Value v(mid);
    if (a < v && v < b) return v;
    return Status::Unsupported(
        "cannot realize distinct numeric value between " + a.ToString() +
        " and " + b.ToString());
  }
  if (a.is_number() && b.is_string()) {
    return Value(a.AsNumber() + 1.0 + ordinal);  // numbers < strings
  }
  if (a.is_string() && b.is_string()) {
    const std::string& s = a.AsString();
    for (int k = ordinal; k < ordinal + 9; ++k) {
      Value candidate(s + std::string(static_cast<size_t>(k), '\x00') +
                      "\x01");
      if (a < candidate && candidate < b) return candidate;
    }
    return Status::Unsupported("cannot realize string value between '" +
                               a.ToString() + "' and '" + b.ToString() + "'");
  }
  return Status::Unsupported("no value between " + a.ToString() + " and " +
                             b.ToString());
}

// Interval constraints live in whynot/relational/interval.h (shared with
// the strong-explanation decision procedure).
using rel::IntervalConstraint;

// ---------------------------------------------------------------------------
// ConceptQuery: one disjunct of a concept's query after (optional) view
// expansion. The distinguished output variable is kOutVar; a nominal pins
// it to out_const (substituted into the atoms before containment checks).
// ---------------------------------------------------------------------------

struct ConceptQuery {
  bool unsat = false;  // extension is empty in every instance
  std::optional<Value> out_const;
  std::vector<rel::Atom> atoms;
  std::vector<rel::Comparison> comparisons;

  bool IsTop() const {
    return !unsat && atoms.empty() && !out_const.has_value();
  }
  bool IsNominalOnly() const {
    return !unsat && atoms.empty() && out_const.has_value();
  }
};

/// Substitutes a pinned output constant into the atoms and evaluates any
/// comparisons on the output variable.
void SubstituteOutConst(ConceptQuery* q) {
  if (!q->out_const.has_value()) return;
  for (rel::Atom& atom : q->atoms) {
    for (rel::Term& t : atom.args) {
      if (t.is_var() && t.var() == kOutVar) {
        t = rel::Term::Const(*q->out_const);
      }
    }
  }
  std::vector<rel::Comparison> kept;
  for (rel::Comparison& cmp : q->comparisons) {
    if (cmp.var == kOutVar) {
      if (!rel::EvalCmp(*q->out_const, cmp.op, cmp.constant)) q->unsat = true;
    } else {
      kept.push_back(std::move(cmp));
    }
  }
  q->comparisons = std::move(kept);
}

/// Translates a concept into its raw query (atoms may reference views).
Result<ConceptQuery> ConceptToQuery(const LsConcept& c,
                                    const rel::Schema& schema, int* fresh) {
  ConceptQuery q;
  for (const Conjunct& conj : c.conjuncts()) {
    switch (conj.kind) {
      case Conjunct::Kind::kTop:
        break;
      case Conjunct::Kind::kNominal:
        if (q.out_const.has_value() && !(*q.out_const == conj.nominal)) {
          q.unsat = true;
        }
        q.out_const = conj.nominal;
        break;
      case Conjunct::Kind::kProjection: {
        const rel::RelationDef* def = schema.Find(conj.relation);
        if (def == nullptr) {
          return Status::NotFound("concept references unknown relation '" +
                                  conj.relation + "'");
        }
        rel::Atom atom;
        atom.relation = conj.relation;
        std::vector<std::string> slot_vars(def->arity());
        for (size_t j = 0; j < def->arity(); ++j) {
          slot_vars[j] = static_cast<int>(j) == conj.attr
                             ? kOutVar
                             : "_c" + std::to_string((*fresh)++);
          atom.args.push_back(rel::Term::Var(slot_vars[j]));
        }
        for (const Selection& s : conj.selections) {
          if (s.attr < 0 || static_cast<size_t>(s.attr) >= def->arity()) {
            return Status::InvalidArgument("selection attribute out of range");
          }
          q.comparisons.push_back(
              {slot_vars[static_cast<size_t>(s.attr)], s.op, s.constant});
        }
        q.atoms.push_back(std::move(atom));
        break;
      }
    }
  }
  return q;
}

/// Expands a concept into the union of its view-free disjunct queries.
Result<std::vector<ConceptQuery>> ExpandConcept(
    const LsConcept& c, const rel::Schema& schema,
    const SchemaSubsumptionOptions& options, int* fresh) {
  WHYNOT_ASSIGN_OR_RETURN(ConceptQuery raw, ConceptToQuery(c, schema, fresh));
  bool has_view_atom = false;
  for (const rel::Atom& atom : raw.atoms) {
    const rel::RelationDef* def = schema.Find(atom.relation);
    if (def != nullptr && def->is_view()) has_view_atom = true;
  }
  std::vector<ConceptQuery> out;
  if (!has_view_atom) {
    SubstituteOutConst(&raw);
    out.push_back(std::move(raw));
    return out;
  }
  rel::ConjunctiveQuery cq;
  cq.head.push_back(kOutVar);
  cq.atoms = raw.atoms;
  cq.comparisons = raw.comparisons;
  WHYNOT_ASSIGN_OR_RETURN(
      rel::UnionQuery expanded,
      rel::ExpandViews(cq, schema, options.max_expansion_disjuncts,
                       options.max_expansion_atoms));
  for (rel::ConjunctiveQuery& d : expanded.disjuncts) {
    ConceptQuery q;
    q.out_const = raw.out_const;
    q.atoms = std::move(d.atoms);
    q.comparisons = std::move(d.comparisons);
    SubstituteOutConst(&q);
    out.push_back(std::move(q));
  }
  if (out.empty()) {
    // Every disjunct was unsatisfiable.
    ConceptQuery q;
    q.unsat = true;
    out.push_back(q);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Region-enumeration containment: q1 ⊆ ∪ q2s over all instances of a
// constraint-free schema. Sound and complete for CQs whose only
// comparisons are against constants (the paper's dialect).
// ---------------------------------------------------------------------------

struct Region {
  enum class Kind { kPoint, kBelow, kBetween, kAbove, kFresh };
  Kind kind;
  Value lo;  // kPoint: the value; kAbove: lower end; kBetween: lower end
  Value hi;  // kBelow: upper end; kBetween: upper end

  Result<Value> Rep(int ordinal) const {
    switch (kind) {
      case Kind::kPoint:
        return lo;
      case Kind::kBelow:
        return ValueBelow(hi, ordinal);
      case Kind::kAbove:
        return ValueAbove(lo, ordinal);
      case Kind::kBetween:
        return ValueBetween(lo, hi, ordinal);
      case Kind::kFresh:
        return Value(1.0e9 + ordinal);
    }
    return Status::Internal("bad region kind");
  }
};

/// Collects every constant appearing in the queries (atom arguments,
/// comparison bounds, pinned outputs).
std::vector<Value> CriticalConstants(const ConceptQuery& q1,
                                     const std::vector<ConceptQuery>& q2s) {
  std::set<Value> set;
  auto collect = [&set](const ConceptQuery& q) {
    for (const rel::Atom& atom : q.atoms) {
      for (const rel::Term& t : atom.args) {
        if (!t.is_var()) set.insert(t.constant());
      }
    }
    for (const rel::Comparison& cmp : q.comparisons) set.insert(cmp.constant);
    if (q.out_const.has_value()) set.insert(*q.out_const);
  };
  collect(q1);
  for (const ConceptQuery& q : q2s) collect(q);
  return std::vector<Value>(set.begin(), set.end());
}

/// Whether a value of q1-variable `var` could influence rhs matching:
/// it has a comparison in q1, or occupies a position (relation, attr) where
/// some rhs disjunct has a comparison, a constant, or a repeated variable.
std::set<std::string> SensitiveVars(const ConceptQuery& q1,
                                    const std::vector<ConceptQuery>& q2s) {
  std::set<std::string> sensitive;
  for (const rel::Comparison& cmp : q1.comparisons) sensitive.insert(cmp.var);

  // Sensitive positions induced by the rhs.
  std::set<std::pair<std::string, size_t>> positions;
  for (const ConceptQuery& q2 : q2s) {
    // Variables with comparisons, repeated variables, and the output var
    // (whose image is pinned) are "constraining".
    std::map<std::string, int> occurrences;
    std::set<std::string> constrained;
    for (const rel::Comparison& cmp : q2.comparisons) {
      constrained.insert(cmp.var);
    }
    for (const rel::Atom& atom : q2.atoms) {
      for (const rel::Term& t : atom.args) {
        if (t.is_var()) occurrences[t.var()]++;
      }
    }
    for (const auto& [var, count] : occurrences) {
      if (count > 1 || var == kOutVar) constrained.insert(var);
    }
    for (const rel::Atom& atom : q2.atoms) {
      for (size_t j = 0; j < atom.args.size(); ++j) {
        const rel::Term& t = atom.args[j];
        if (!t.is_var() || constrained.count(t.var()) > 0) {
          positions.emplace(atom.relation, j);
        }
      }
    }
  }
  for (const rel::Atom& atom : q1.atoms) {
    for (size_t j = 0; j < atom.args.size(); ++j) {
      const rel::Term& t = atom.args[j];
      if (t.is_var() && positions.count({atom.relation, j}) > 0) {
        sensitive.insert(t.var());
      }
    }
  }
  // The lhs output variable is always sensitive: its image is compared
  // against rhs outputs.
  sensitive.insert(kOutVar);
  return sensitive;
}

/// One rhs disjunct pre-lowered to a Boolean query, built once per
/// containment check instead of once per canonical-instance combination.
/// When the disjunct's output variable is free, covering `out_val` is the
/// Boolean match of the body with the extra comparison `x0 = out_val`
/// (appended per probe) — an early-exit HasMatch instead of enumerating
/// and searching the full answer set.
struct RhsQuery {
  const ConceptQuery* q2;
  rel::ConjunctiveQuery boolean;  // empty head; body atoms + comparisons
  bool uses_out = false;
};

std::vector<RhsQuery> CompileRhs(const std::vector<ConceptQuery>& q2s) {
  std::vector<RhsQuery> out;
  out.reserve(q2s.size());
  for (const ConceptQuery& q2 : q2s) {
    RhsQuery rq;
    rq.q2 = &q2;
    rq.boolean.atoms = q2.atoms;
    rq.boolean.comparisons = q2.comparisons;
    for (const rel::Atom& atom : q2.atoms) {
      for (const rel::Term& t : atom.args) {
        if (t.is_var() && t.var() == kOutVar) rq.uses_out = true;
      }
    }
    out.push_back(std::move(rq));
  }
  return out;
}

/// Checks whether the instantiated canonical instance satisfies some rhs
/// disjunct with output value `out_val`.
Result<bool> RhsCovers(std::vector<RhsQuery>* q2s,
                       const rel::Instance& canonical, const Value& out_val) {
  for (RhsQuery& rq : *q2s) {
    const ConceptQuery& q2 = *rq.q2;
    if (q2.unsat) continue;
    if (q2.IsTop()) return true;
    if (q2.out_const.has_value() && !(*q2.out_const == out_val)) continue;
    if (q2.atoms.empty()) return true;  // nominal-only and equal
    if (rq.uses_out && !q2.out_const.has_value()) {
      rq.boolean.comparisons.push_back({kOutVar, rel::CmpOp::kEq, out_val});
      Result<bool> match = rel::HasMatch(rq.boolean, canonical);
      rq.boolean.comparisons.pop_back();
      WHYNOT_RETURN_IF_ERROR(match.status());
      if (match.value()) return true;
    } else {
      // Output pinned by constant (already substituted) or absent: a
      // Boolean match suffices.
      WHYNOT_ASSIGN_OR_RETURN(bool match,
                              rel::HasMatch(rq.boolean, canonical));
      if (match) return true;
    }
  }
  return false;
}

/// A canonical instance reused across region combinations and lhs
/// disjuncts: clearing and refilling a few relations is far cheaper than
/// re-constructing the columnar store (pool, fact index) for every one of
/// the exponentially many instantiations the Table 1 view rows enumerate.
struct CanonicalScratch {
  explicit CanonicalScratch(const rel::Schema* schema) : instance(schema) {}

  void Reset() {
    for (const std::string& name : filled) instance.ClearRelation(name);
    filled.clear();
  }

  rel::Instance instance;
  std::vector<std::string> filled;
};

Result<bool> ContainedInUnion(const ConceptQuery& q1,
                              const std::vector<ConceptQuery>& q2s,
                              const rel::Schema& schema,
                              const SchemaSubsumptionOptions& options,
                              CanonicalScratch* scratch) {
  if (q1.unsat) return true;
  if (q1.IsTop()) {
    for (const ConceptQuery& q2 : q2s) {
      if (q2.IsTop()) return true;
    }
    return false;
  }
  if (q1.IsNominalOnly()) {
    for (const ConceptQuery& q2 : q2s) {
      if (q2.IsTop()) return true;
      if (q2.IsNominalOnly() && *q2.out_const == *q1.out_const) return true;
    }
    return false;
  }

  // Variables and their q1 interval constraints.
  std::vector<std::string> vars;
  std::map<std::string, IntervalConstraint> constraints;
  for (const rel::Atom& atom : q1.atoms) {
    for (const rel::Term& t : atom.args) {
      if (t.is_var() && constraints.count(t.var()) == 0) {
        vars.push_back(t.var());
        constraints[t.var()] = IntervalConstraint();
      }
    }
  }
  for (const rel::Comparison& cmp : q1.comparisons) {
    auto it = constraints.find(cmp.var);
    if (it == constraints.end()) {
      // Comparison on a variable not in any atom: treat as satisfiable but
      // irrelevant (cannot arise from well-formed concepts).
      continue;
    }
    it->second.Narrow(cmp.op, cmp.constant);
    if (it->second.empty) return true;  // q1 unsatisfiable
  }

  std::vector<Value> criticals = CriticalConstants(q1, q2s);
  std::set<std::string> sensitive = SensitiveVars(q1, q2s);

  // Candidate regions per sensitive variable.
  std::map<std::string, std::vector<Region>> var_regions;
  for (const std::string& v : vars) {
    const IntervalConstraint& ic = constraints[v];
    std::vector<Region> regions;
    if (sensitive.count(v) == 0 || criticals.empty()) {
      // One generic fresh value suffices.
      if (ic.eq.has_value()) {
        regions.push_back({Region::Kind::kPoint, *ic.eq, *ic.eq});
      } else if (ic.lo.has_value() || ic.hi.has_value()) {
        // Constrained but insensitive: pick any admissible value via the
        // sensitive machinery below by treating it as sensitive.
      } else {
        regions.push_back({Region::Kind::kFresh, Value(), Value()});
      }
    }
    if (regions.empty()) {
      // Full region decomposition against the critical constants.
      for (size_t i = 0; i < criticals.size(); ++i) {
        if (ic.Admits(criticals[i])) {
          regions.push_back(
              {Region::Kind::kPoint, criticals[i], criticals[i]});
        }
      }
      if (criticals.empty()) {
        regions.push_back({Region::Kind::kFresh, Value(), Value()});
      } else {
        Region below{Region::Kind::kBelow, Value(), criticals.front()};
        Result<Value> rep = below.Rep(0);
        if (rep.ok() && ic.Admits(rep.value())) regions.push_back(below);
        for (size_t i = 0; i + 1 < criticals.size(); ++i) {
          Region between{Region::Kind::kBetween, criticals[i],
                         criticals[i + 1]};
          Result<Value> mid = between.Rep(0);
          if (mid.ok() && ic.Admits(mid.value())) regions.push_back(between);
        }
        Region above{Region::Kind::kAbove, criticals.back(), Value()};
        Result<Value> arep = above.Rep(0);
        if (arep.ok() && ic.Admits(arep.value())) regions.push_back(above);
      }
    }
    if (regions.empty()) return true;  // q1 unsatisfiable for this variable
    var_regions[v] = std::move(regions);
  }

  // Enumerate region combinations (distinct representatives per variable).
  size_t combinations = 1;
  for (const std::string& v : vars) {
    combinations *= var_regions[v].size();
    if (combinations > options.max_region_combinations) {
      return Status::ResourceExhausted(
          "region enumeration exceeded max_region_combinations (the "
          "comparison-aware containment check is exponential; Table 1 "
          "UCQ-view rows)");
    }
  }

  std::map<std::string, Value> assignment;
  Status inner_status = Status::OK();
  bool contained = true;

  std::vector<RhsQuery> rhs_queries = CompileRhs(q2s);
  auto instantiate_and_check = [&]() -> Result<bool> {
    scratch->Reset();
    rel::Instance& canonical = scratch->instance;
    for (const rel::Atom& atom : q1.atoms) {
      Tuple t;
      t.reserve(atom.args.size());
      for (const rel::Term& term : atom.args) {
        t.push_back(term.is_var() ? assignment.at(term.var())
                                  : term.constant());
      }
      scratch->filled.push_back(atom.relation);
      WHYNOT_RETURN_IF_ERROR(canonical.AddFact(atom.relation, std::move(t)));
    }
    Value out_val = q1.out_const.has_value() ? *q1.out_const
                                             : assignment.at(kOutVar);
    return RhsCovers(&rhs_queries, canonical, out_val);
  };

  auto recurse = [&](auto&& self, size_t vi) -> void {
    if (!inner_status.ok() || !contained) return;
    if (vi == vars.size()) {
      Result<bool> covered = instantiate_and_check();
      if (!covered.ok()) {
        inner_status = covered.status();
        return;
      }
      if (!covered.value()) contained = false;
      return;
    }
    const std::string& v = vars[vi];
    for (const Region& region : var_regions[v]) {
      Result<Value> rep = region.Rep(static_cast<int>(vi));
      if (!rep.ok()) {
        inner_status = rep.status();
        return;
      }
      assignment[v] = rep.value();
      self(self, vi + 1);
      if (!inner_status.ok() || !contained) return;
    }
  };
  recurse(recurse, 0);
  WHYNOT_RETURN_IF_ERROR(inner_status);
  return contained;
}

Result<bool> UnionContained(const std::vector<ConceptQuery>& q1s,
                            const std::vector<ConceptQuery>& q2s,
                            const rel::Schema& schema,
                            const SchemaSubsumptionOptions& options) {
  CanonicalScratch scratch(&schema);
  for (const ConceptQuery& q1 : q1s) {
    WHYNOT_ASSIGN_OR_RETURN(
        bool ok, ContainedInUnion(q1, q2s, schema, options, &scratch));
    if (!ok) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Symbolic database with union-find term classes: shared by the FD chase
// and the best-effort combined engine.
// ---------------------------------------------------------------------------

class SymbolicDb {
 public:
  struct SymAtom {
    std::string relation;
    std::vector<int> nodes;
  };

  explicit SymbolicDb(const rel::Schema* schema) : schema_(schema) {}

  bool unsat() const { return unsat_; }
  const std::vector<SymAtom>& atoms() const { return atoms_; }

  int NewNode() {
    parent_.push_back(static_cast<int>(parent_.size()));
    constraints_.emplace_back();
    constants_.emplace_back();
    return static_cast<int>(parent_.size()) - 1;
  }

  int Find(int a) const {
    while (parent_[static_cast<size_t>(a)] != a) {
      a = parent_[static_cast<size_t>(a)];
    }
    return a;
  }

  void SetConstant(int node, const Value& v) {
    node = Find(node);
    auto& c = constants_[static_cast<size_t>(node)];
    if (c.has_value() && !(*c == v)) {
      unsat_ = true;
      return;
    }
    c = v;
    auto& ic = constraints_[static_cast<size_t>(node)];
    if (!ic.Admits(v)) unsat_ = true;
  }

  void Constrain(int node, rel::CmpOp op, const Value& c) {
    node = Find(node);
    auto& ic = constraints_[static_cast<size_t>(node)];
    ic.Narrow(op, c);
    const auto& k = constants_[static_cast<size_t>(node)];
    if (k.has_value() && !rel::EvalCmp(*k, op, c)) unsat_ = true;
    if (ic.empty) unsat_ = true;
  }

  /// Merges the classes of a and b; returns true if anything changed.
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[static_cast<size_t>(b)] = a;
    auto& ca = constants_[static_cast<size_t>(a)];
    const auto& cb = constants_[static_cast<size_t>(b)];
    if (cb.has_value()) {
      if (ca.has_value() && !(*ca == *cb)) unsat_ = true;
      ca = cb;
    }
    constraints_[static_cast<size_t>(a)].Merge(
        constraints_[static_cast<size_t>(b)]);
    if (constraints_[static_cast<size_t>(a)].empty) unsat_ = true;
    if (ca.has_value() &&
        !constraints_[static_cast<size_t>(a)].Admits(*ca)) {
      unsat_ = true;
    }
    return true;
  }

  /// Terms are necessarily equal: same class, or both pinned to equal
  /// constants.
  bool MustEqual(int a, int b) const {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    const auto& ca = constants_[static_cast<size_t>(a)];
    const auto& cb = constants_[static_cast<size_t>(b)];
    return ca.has_value() && cb.has_value() && *ca == *cb;
  }

  const std::optional<Value>& ConstantOf(int node) const {
    return constants_[static_cast<size_t>(Find(node))];
  }
  const IntervalConstraint& ConstraintOf(int node) const {
    return constraints_[static_cast<size_t>(Find(node))];
  }

  /// Every value of the class necessarily satisfies `op c`.
  bool NodeEntails(int node, rel::CmpOp op, const Value& c) const {
    node = Find(node);
    const auto& k = constants_[static_cast<size_t>(node)];
    if (k.has_value()) return rel::EvalCmp(*k, op, c);
    return constraints_[static_cast<size_t>(node)].Entails(op, c);
  }

  void AddAtom(std::string relation, std::vector<int> nodes) {
    atoms_.push_back({std::move(relation), std::move(nodes)});
  }

  /// Loads a ConceptQuery: one node per variable (interval constraints
  /// attached) and one node per constant occurrence.
  /// Returns the node of the output term.
  int Load(const ConceptQuery& q) {
    std::map<std::string, int> var_nodes;
    auto node_for = [&](const rel::Term& t) {
      if (t.is_var()) {
        auto it = var_nodes.find(t.var());
        if (it != var_nodes.end()) return it->second;
        int n = NewNode();
        var_nodes.emplace(t.var(), n);
        return n;
      }
      int n = NewNode();
      SetConstant(n, t.constant());
      return n;
    };
    for (const rel::Atom& atom : q.atoms) {
      std::vector<int> nodes;
      nodes.reserve(atom.args.size());
      for (const rel::Term& t : atom.args) nodes.push_back(node_for(t));
      AddAtom(atom.relation, std::move(nodes));
    }
    for (const rel::Comparison& cmp : q.comparisons) {
      auto it = var_nodes.find(cmp.var);
      if (it != var_nodes.end()) Constrain(it->second, cmp.op, cmp.constant);
    }
    int out;
    auto it = var_nodes.find(kOutVar);
    if (it != var_nodes.end()) {
      out = it->second;
      if (q.out_const.has_value()) SetConstant(out, *q.out_const);
    } else {
      out = NewNode();
      if (q.out_const.has_value()) SetConstant(out, *q.out_const);
    }
    if (q.unsat) unsat_ = true;
    return out;
  }

  /// FD chase to fixpoint (polynomial): fires every FD on every atom pair
  /// whose LHS positions must be equal.
  void ChaseFds() {
    bool changed = true;
    while (changed && !unsat_) {
      changed = false;
      for (const rel::FunctionalDependency& fd : schema_->fds()) {
        for (size_t i = 0; i < atoms_.size(); ++i) {
          if (atoms_[i].relation != fd.relation) continue;
          for (size_t j = i + 1; j < atoms_.size(); ++j) {
            if (atoms_[j].relation != fd.relation) continue;
            bool agree = true;
            for (int a : fd.lhs) {
              if (!MustEqual(atoms_[i].nodes[static_cast<size_t>(a)],
                             atoms_[j].nodes[static_cast<size_t>(a)])) {
                agree = false;
                break;
              }
            }
            if (!agree) continue;
            for (int a : fd.rhs) {
              int na = atoms_[i].nodes[static_cast<size_t>(a)];
              int nb = atoms_[j].nodes[static_cast<size_t>(a)];
              if (!MustEqual(na, nb)) {
                Union(na, nb);
                changed = true;
              }
            }
            if (unsat_) return;
          }
        }
      }
    }
  }

  /// One round of ID tuple-generation: for every ID and every LHS atom
  /// without a matching RHS atom, adds one. Returns true if atoms were
  /// added.
  bool ChaseIdsOnce() {
    bool added = false;
    for (const rel::InclusionDependency& id : schema_->ids()) {
      size_t count = atoms_.size();  // only iterate pre-existing atoms
      for (size_t i = 0; i < count; ++i) {
        if (atoms_[i].relation != id.lhs_relation) continue;
        bool satisfied = false;
        for (size_t j = 0; j < atoms_.size() && !satisfied; ++j) {
          if (atoms_[j].relation != id.rhs_relation) continue;
          bool match = true;
          for (size_t k = 0; k < id.lhs_attrs.size(); ++k) {
            if (!MustEqual(
                    atoms_[i].nodes[static_cast<size_t>(id.lhs_attrs[k])],
                    atoms_[j].nodes[static_cast<size_t>(id.rhs_attrs[k])])) {
              match = false;
              break;
            }
          }
          if (match) satisfied = true;
        }
        if (satisfied) continue;
        const rel::RelationDef* def = schema_->Find(id.rhs_relation);
        if (def == nullptr) continue;
        std::vector<int> nodes(def->arity(), -1);
        for (size_t k = 0; k < id.rhs_attrs.size(); ++k) {
          nodes[static_cast<size_t>(id.rhs_attrs[k])] =
              atoms_[i].nodes[static_cast<size_t>(id.lhs_attrs[k])];
        }
        for (int& n : nodes) {
          if (n < 0) n = NewNode();
        }
        AddAtom(id.rhs_relation, std::move(nodes));
        added = true;
      }
    }
    return added;
  }

  /// One round of view repopulation: for every view definition disjunct
  /// ϕi → P, adds P-atoms for every entailed match of ϕi. Returns true if
  /// atoms were added.
  bool ChaseViewsOnce() {
    bool added = false;
    for (const rel::ViewDef& view : schema_->views()) {
      for (const rel::ConjunctiveQuery& body : view.definition.disjuncts) {
        std::map<std::string, int> binding;
        added |= MatchBody(view, body, 0, &binding);
      }
    }
    return added;
  }

 private:
  /// Backtracking match of `body` atoms against the symbolic atoms with
  /// entailed equality/comparison semantics; on full matches, adds the view
  /// head atom (if new). Returns true if any atom was added.
  bool MatchBody(const rel::ViewDef& view, const rel::ConjunctiveQuery& body,
                 size_t atom_idx, std::map<std::string, int>* binding) {
    if (atom_idx == body.atoms.size()) {
      // Comparisons must be entailed.
      for (const rel::Comparison& cmp : body.comparisons) {
        auto it = binding->find(cmp.var);
        if (it == binding->end() ||
            !NodeEntails(it->second, cmp.op, cmp.constant)) {
          return false;
        }
      }
      std::vector<int> head_nodes;
      head_nodes.reserve(body.head.size());
      for (const std::string& hv : body.head) {
        auto it = binding->find(hv);
        if (it == binding->end()) return false;
        head_nodes.push_back(Find(it->second));
      }
      // Deduplicate.
      for (const SymAtom& atom : atoms_) {
        if (atom.relation != view.name) continue;
        bool same = true;
        for (size_t k = 0; k < head_nodes.size(); ++k) {
          if (!MustEqual(atom.nodes[k], head_nodes[k])) {
            same = false;
            break;
          }
        }
        if (same) return false;
      }
      AddAtom(view.name, std::move(head_nodes));
      return true;
    }
    bool added = false;
    const rel::Atom& pattern = body.atoms[atom_idx];
    size_t count = atoms_.size();  // only match against pre-existing atoms
    for (size_t i = 0; i < count; ++i) {
      if (atoms_[i].relation != pattern.relation) continue;
      if (atoms_[i].nodes.size() != pattern.args.size()) continue;
      std::vector<std::string> bound_here;
      bool match = true;
      for (size_t j = 0; j < pattern.args.size() && match; ++j) {
        const rel::Term& t = pattern.args[j];
        int node = atoms_[i].nodes[j];
        if (!t.is_var()) {
          const std::optional<Value>& k = ConstantOf(node);
          match = k.has_value() && *k == t.constant();
          continue;
        }
        auto it = binding->find(t.var());
        if (it != binding->end()) {
          match = MustEqual(it->second, node);
        } else {
          binding->emplace(t.var(), node);
          bound_here.push_back(t.var());
        }
      }
      if (match) added |= MatchBody(view, body, atom_idx + 1, binding);
      for (const std::string& v : bound_here) binding->erase(v);
    }
    return added;
  }

  const rel::Schema* schema_;
  std::vector<int> parent_;
  std::vector<IntervalConstraint> constraints_;
  std::vector<std::optional<Value>> constants_;
  std::vector<SymAtom> atoms_;
  bool unsat_ = false;
};

/// Checks that the chased symbolic database entails one conjunct of C2 for
/// the given output node.
bool EntailsConjunct(const SymbolicDb& db, const Conjunct& conjunct,
                     int out_node) {
  switch (conjunct.kind) {
    case Conjunct::Kind::kTop:
      return true;
    case Conjunct::Kind::kNominal: {
      const std::optional<Value>& k = db.ConstantOf(out_node);
      return k.has_value() && *k == conjunct.nominal;
    }
    case Conjunct::Kind::kProjection: {
      for (const SymbolicDb::SymAtom& atom : db.atoms()) {
        if (atom.relation != conjunct.relation) continue;
        if (static_cast<size_t>(conjunct.attr) >= atom.nodes.size()) continue;
        if (!db.MustEqual(atom.nodes[static_cast<size_t>(conjunct.attr)],
                          out_node)) {
          continue;
        }
        bool all = true;
        for (const Selection& s : conjunct.selections) {
          if (static_cast<size_t>(s.attr) >= atom.nodes.size() ||
              !db.NodeEntails(atom.nodes[static_cast<size_t>(s.attr)], s.op,
                              s.constant)) {
            all = false;
            break;
          }
        }
        if (all) return true;
      }
      return false;
    }
  }
  return false;
}

Status CheckConceptRelations(const LsConcept& c, const rel::Schema& schema) {
  for (const Conjunct& conj : c.conjuncts()) {
    if (conj.kind != Conjunct::Kind::kProjection) continue;
    const rel::RelationDef* def = schema.Find(conj.relation);
    if (def == nullptr) {
      return Status::NotFound("concept references unknown relation '" +
                              conj.relation + "'");
    }
    if (conj.attr < 0 || static_cast<size_t>(conj.attr) >= def->arity()) {
      return Status::InvalidArgument("projection attribute out of range for " +
                                     conj.relation);
    }
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public deciders.
// ---------------------------------------------------------------------------

Result<bool> SubsumedSNoConstraints(const LsConcept& c1, const LsConcept& c2,
                                    const rel::Schema& schema,
                                    const SchemaSubsumptionOptions& options) {
  if (schema.HasViews() || schema.HasFds() || schema.HasIds()) {
    return Status::InvalidArgument(
        "SubsumedSNoConstraints requires a constraint-free schema");
  }
  WHYNOT_RETURN_IF_ERROR(CheckConceptRelations(c1, schema));
  WHYNOT_RETURN_IF_ERROR(CheckConceptRelations(c2, schema));
  int fresh = 0;
  WHYNOT_ASSIGN_OR_RETURN(std::vector<ConceptQuery> lhs,
                          ExpandConcept(c1, schema, options, &fresh));
  // Per C2 conjunct: [[C1]] ⊆ [[d]] must hold for every conjunct d.
  if (c2.IsTop()) return true;
  for (const Conjunct& d : c2.conjuncts()) {
    WHYNOT_ASSIGN_OR_RETURN(
        std::vector<ConceptQuery> rhs,
        ExpandConcept(LsConcept({d}), schema, options, &fresh));
    WHYNOT_ASSIGN_OR_RETURN(bool ok,
                            UnionContained(lhs, rhs, schema, options));
    if (!ok) return false;
  }
  return true;
}

Result<bool> SubsumedSViews(const LsConcept& c1, const LsConcept& c2,
                            const rel::Schema& schema,
                            const SchemaSubsumptionOptions& options) {
  if (schema.HasFds() || schema.HasIds()) {
    return Status::InvalidArgument(
        "SubsumedSViews requires a schema whose only constraints are "
        "UCQ-view definitions; use SubsumedSBestEffort for mixtures");
  }
  WHYNOT_RETURN_IF_ERROR(CheckConceptRelations(c1, schema));
  WHYNOT_RETURN_IF_ERROR(CheckConceptRelations(c2, schema));
  int fresh = 0;
  WHYNOT_ASSIGN_OR_RETURN(std::vector<ConceptQuery> lhs,
                          ExpandConcept(c1, schema, options, &fresh));
  if (c2.IsTop()) return true;
  for (const Conjunct& d : c2.conjuncts()) {
    WHYNOT_ASSIGN_OR_RETURN(
        std::vector<ConceptQuery> rhs,
        ExpandConcept(LsConcept({d}), schema, options, &fresh));
    WHYNOT_ASSIGN_OR_RETURN(bool ok,
                            UnionContained(lhs, rhs, schema, options));
    if (!ok) return false;
  }
  return true;
}

Result<bool> SubsumedSFds(const LsConcept& c1, const LsConcept& c2,
                          const rel::Schema& schema,
                          const SchemaSubsumptionOptions& options) {
  (void)options;
  if (schema.HasViews() || schema.HasIds()) {
    return Status::InvalidArgument(
        "SubsumedSFds requires a schema whose only constraints are FDs");
  }
  WHYNOT_RETURN_IF_ERROR(CheckConceptRelations(c1, schema));
  WHYNOT_RETURN_IF_ERROR(CheckConceptRelations(c2, schema));
  int fresh = 0;
  WHYNOT_ASSIGN_OR_RETURN(ConceptQuery q1, ConceptToQuery(c1, schema, &fresh));
  // Keep the output variable symbolic (no substitution): the chase tracks
  // constants through classes.
  SymbolicDb db(&schema);
  int out = db.Load(q1);
  if (db.unsat()) return true;
  if (q1.atoms.empty()) {
    // ⊤ or a bare nominal.
    if (!q1.out_const.has_value()) return c2.IsTop();
    for (const Conjunct& d : c2.conjuncts()) {
      bool ok = d.kind == Conjunct::Kind::kTop ||
                (d.kind == Conjunct::Kind::kNominal &&
                 d.nominal == *q1.out_const);
      if (!ok) return false;
    }
    return true;
  }
  db.ChaseFds();
  if (db.unsat()) return true;
  for (const Conjunct& d : c2.conjuncts()) {
    if (!EntailsConjunct(db, d, out)) return false;
  }
  return true;
}

Result<bool> SubsumedSIdsSelectionFree(
    const LsConcept& c1, const LsConcept& c2, const rel::Schema& schema,
    const SchemaSubsumptionOptions& options) {
  (void)options;
  if (schema.HasViews() || schema.HasFds()) {
    return Status::InvalidArgument(
        "SubsumedSIdsSelectionFree requires a schema whose only constraints "
        "are IDs");
  }
  if (!c1.selection_free() || !c2.selection_free()) {
    return Status::Unsupported(
        "⊑_S under IDs is only implemented for selection-free LS (the "
        "general case is open in the paper, Table 1); use "
        "SubsumedSBestEffort for a sound partial answer");
  }
  WHYNOT_RETURN_IF_ERROR(CheckConceptRelations(c1, schema));
  WHYNOT_RETURN_IF_ERROR(CheckConceptRelations(c2, schema));

  // Position graph: (relation, attr) nodes; ID edges; reachability.
  std::map<std::pair<std::string, int>, int> index;
  std::vector<std::pair<std::string, int>> nodes;
  for (const rel::RelationDef& def : schema.relations()) {
    for (size_t a = 0; a < def.arity(); ++a) {
      index[{def.name(), static_cast<int>(a)}] =
          static_cast<int>(nodes.size());
      nodes.emplace_back(def.name(), static_cast<int>(a));
    }
  }
  onto::BoolMatrix reach(static_cast<int32_t>(nodes.size()));
  for (const rel::InclusionDependency& id : schema.ids()) {
    for (size_t k = 0; k < id.lhs_attrs.size(); ++k) {
      reach.Set(index.at({id.lhs_relation, id.lhs_attrs[k]}),
                index.at({id.rhs_relation, id.rhs_attrs[k]}));
    }
  }
  onto::ReflexiveTransitiveClosure(&reach);

  // C1 with two distinct nominals is empty in every instance.
  std::set<Value> nominals;
  std::vector<std::pair<std::string, int>> c1_positions;
  for (const Conjunct& conj : c1.conjuncts()) {
    if (conj.kind == Conjunct::Kind::kNominal) nominals.insert(conj.nominal);
    if (conj.kind == Conjunct::Kind::kProjection) {
      c1_positions.emplace_back(conj.relation, conj.attr);
    }
  }
  if (nominals.size() >= 2) return true;

  for (const Conjunct& d : c2.conjuncts()) {
    switch (d.kind) {
      case Conjunct::Kind::kTop:
        break;
      case Conjunct::Kind::kNominal:
        if (nominals.count(d.nominal) == 0) return false;
        break;
      case Conjunct::Kind::kProjection: {
        int target = index.at({d.relation, d.attr});
        bool reachable = false;
        for (const auto& pos : c1_positions) {
          if (reach.Get(index.at(pos), target)) {
            reachable = true;
            break;
          }
        }
        if (!reachable) return false;
        break;
      }
    }
  }
  return true;
}

Result<bool> SubsumedS(const LsConcept& c1, const LsConcept& c2,
                       const rel::Schema& schema,
                       const SchemaSubsumptionOptions& options) {
  bool v = schema.HasViews();
  bool f = schema.HasFds();
  bool i = schema.HasIds();
  if (f && i) {
    return Status::Unsupported(
        "⊑_S is undecidable for schemas with both FDs and IDs (Table 1); "
        "use SubsumedSBestEffort for a sound partial answer");
  }
  if (v && (f || i)) {
    return Status::Unsupported(
        "⊑_S for schemas mixing views with FDs/IDs is not in a Table 1 "
        "class; use SubsumedSBestEffort for a sound partial answer");
  }
  if (v) return SubsumedSViews(c1, c2, schema, options);
  if (f) return SubsumedSFds(c1, c2, schema, options);
  if (i) return SubsumedSIdsSelectionFree(c1, c2, schema, options);
  return SubsumedSNoConstraints(c1, c2, schema, options);
}

Verdict SubsumedSBestEffort(const LsConcept& c1, const LsConcept& c2,
                            const rel::Schema& schema,
                            const SchemaSubsumptionOptions& options) {
  // If the schema is in a complete class, defer to the exact decider.
  {
    Result<bool> exact = SubsumedS(c1, c2, schema, options);
    if (exact.ok()) return exact.value() ? Verdict::kYes : Verdict::kNo;
  }
  if (!CheckConceptRelations(c1, schema).ok() ||
      !CheckConceptRelations(c2, schema).ok()) {
    return Verdict::kUnknown;
  }
  int fresh = 0;
  Result<std::vector<ConceptQuery>> lhs =
      ExpandConcept(c1, schema, options, &fresh);
  if (!lhs.ok()) return Verdict::kUnknown;

  for (const ConceptQuery& q1 : lhs.value()) {
    SymbolicDb db(&schema);
    int out = db.Load(q1);
    if (db.unsat()) continue;
    if (q1.atoms.empty()) {
      // ⊤ or bare nominal: only trivially subsumed.
      bool all = true;
      for (const Conjunct& d : c2.conjuncts()) {
        all &= d.kind == Conjunct::Kind::kTop ||
               (d.kind == Conjunct::Kind::kNominal &&
                q1.out_const.has_value() && d.nominal == *q1.out_const);
      }
      if (!all) return Verdict::kUnknown;
      continue;
    }
    for (int round = 0; round < options.max_chase_rounds; ++round) {
      db.ChaseFds();
      if (db.unsat()) break;
      bool grew = db.ChaseViewsOnce();
      grew |= db.ChaseIdsOnce();
      if (!grew) break;
    }
    if (db.unsat()) continue;
    for (const Conjunct& d : c2.conjuncts()) {
      if (!EntailsConjunct(db, d, out)) return Verdict::kUnknown;
    }
  }
  return Verdict::kYes;
}

}  // namespace whynot::ls
