#ifndef WHYNOT_CONCEPTS_SCHEMA_SUBSUMPTION_H_
#define WHYNOT_CONCEPTS_SCHEMA_SUBSUMPTION_H_

#include <string>

#include "whynot/common/status.h"
#include "whynot/concepts/ls_concept.h"
#include "whynot/relational/schema.h"

namespace whynot::ls {

/// Three-valued answer for the sound-but-incomplete combined engine.
enum class Verdict { kYes, kNo, kUnknown };
const char* VerdictName(Verdict v);

/// Resource limits for the ⊑_S deciders. The defaults are generous for
/// test-scale inputs; the benchmarks tighten or sweep them to exhibit the
/// Table 1 growth shapes.
struct SchemaSubsumptionOptions {
  /// View expansion caps (nested UCQ views blow up exponentially —
  /// the CONEXPTIME row of Table 1).
  size_t max_expansion_disjuncts = 20000;
  size_t max_expansion_atoms = 20000;
  /// Cap on region-assignment combinations in the comparison-aware
  /// containment check (the ΠP2 row).
  size_t max_region_combinations = 2000000;
  /// Chase rounds for the sound-but-incomplete best-effort engine.
  int max_chase_rounds = 6;
};

/// C1 ⊑_S C2 for a schema *without* integrity constraints: plain
/// containment of the concepts' queries, decided by canonical-instance
/// enumeration over comparison regions. PTIME without comparisons (the
/// concepts' queries are single-atom conjunctions sharing one variable);
/// exponential only in the number of comparison-relevant variables.
Result<bool> SubsumedSNoConstraints(const LsConcept& c1, const LsConcept& c2,
                                    const rel::Schema& schema,
                                    const SchemaSubsumptionOptions& options = {});

/// C1 ⊑_S C2 for a schema whose only constraints are functional
/// dependencies (Table 1 "FDs" row, PTIME): symbolic FD chase of C1's
/// canonical pattern followed by per-conjunct entailment of C2.
///
/// Completeness caveat: entailment of a C2 selection is checked per chased
/// atom; adversarial interval-cover corner cases (a class whose interval is
/// covered by the union of selection regions across two candidate atoms
/// without being contained in either) are reported as non-subsumed. No
/// such schema arises in this repository's tests or benchmarks.
Result<bool> SubsumedSFds(const LsConcept& c1, const LsConcept& c2,
                          const rel::Schema& schema,
                          const SchemaSubsumptionOptions& options = {});

/// C1 ⊑_S C2 for a schema whose only constraints are inclusion
/// dependencies and selection-free concepts (Table 1 "IDs" row, PTIME):
/// reachability in the position graph induced by the IDs. Concepts with
/// selections are rejected with kUnsupported (the general IDs case is open
/// in the paper).
Result<bool> SubsumedSIdsSelectionFree(
    const LsConcept& c1, const LsConcept& c2, const rel::Schema& schema,
    const SchemaSubsumptionOptions& options = {});

/// C1 ⊑_S C2 for a schema whose only constraints are (possibly nested)
/// UCQ-view definitions (Table 1 rows "UCQ-view def." through "nested
/// UCQ-view def."): views are expanded away (exponential for nested
/// definitions) and containment is decided per C2-conjunct against the
/// expansion union with the region-enumeration engine.
Result<bool> SubsumedSViews(const LsConcept& c1, const LsConcept& c2,
                            const rel::Schema& schema,
                            const SchemaSubsumptionOptions& options = {});

/// Dispatcher over the constraint classes of Table 1. Schemas mixing FDs
/// with IDs are rejected with kUnsupported — their ⊑_S is undecidable
/// (Table 1 last row) — as are mixtures of views with FDs/IDs; use
/// SubsumedSBestEffort for a sound partial answer on such schemas.
Result<bool> SubsumedS(const LsConcept& c1, const LsConcept& c2,
                       const rel::Schema& schema,
                       const SchemaSubsumptionOptions& options = {});

/// Sound-but-incomplete ⊑_S for arbitrary schemas (views + FDs + IDs
/// together, e.g. Figure 1): expands C1 over the views, then runs a bounded
/// chase with FD equality-generating rules, ID tuple-generating rules, and
/// view-repopulation rules (ϕi → P from each view definition), and finally
/// checks C2 conjunct entailment. Returns kYes only on a proof; kUnknown
/// otherwise (never an unsound kNo: a kNo is returned only when the
/// schema happens to be in a complete class, in which case the dispatcher
/// is consulted).
Verdict SubsumedSBestEffort(const LsConcept& c1, const LsConcept& c2,
                            const rel::Schema& schema,
                            const SchemaSubsumptionOptions& options = {});

}  // namespace whynot::ls

#endif  // WHYNOT_CONCEPTS_SCHEMA_SUBSUMPTION_H_
