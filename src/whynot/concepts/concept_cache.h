#ifndef WHYNOT_CONCEPTS_CONCEPT_CACHE_H_
#define WHYNOT_CONCEPTS_CONCEPT_CACHE_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "whynot/common/sharded_cache.h"
#include "whynot/common/status.h"
#include "whynot/concepts/ls_eval.h"
#include "whynot/concepts/lub.h"

namespace whynot::ls {

/// Limits of one shared concept cache.
struct ConceptCacheOptions {
  /// Hash stripes of each published tier.
  size_t shards = 16;
  /// Approximate byte budget across all published entries; once reached,
  /// new publishes are *rejected* (counted as evictions) — entries are
  /// never removed, because the answer-cover kernel keys bitmaps by
  /// extension address. 0 means unlimited.
  ///
  /// A rejected entry stays owned by the overlay that computed it, so its
  /// address dies with that overlay. Callers that key a *longer-lived*
  /// LsAnswerCovers by these addresses (an ExplainSession sharing its
  /// covers across requests) must leave this at 0; bounded caches are for
  /// call-local covers, where every identity consumer dies with the
  /// overlay.
  size_t max_bytes = 0;
};

/// Cumulative traffic counters. NOTE: these are observability only, NOT
/// part of the engine's bit-identical stats contract — how many lookups
/// hit the published tier versus a worker-local overlay depends on the
/// wave structure and therefore on the thread count, even though the
/// *values* served are identical everywhere.
struct ConceptCacheStats {
  size_t shared_hits = 0;  // served from the published read-only tier
  size_t local_hits = 0;   // served from a worker overlay's private map
  size_t misses = 0;       // lub + eval computed fresh
  size_t publishes = 0;    // entries merged into the published tier
  size_t evictions = 0;    // publishes rejected by max_bytes, plus Clear()
};

class ConceptCacheOverlay;

struct SupportKeyHash {
  size_t operator()(const std::vector<Value>& key) const;
};

struct ConceptHash {
  size_t operator()(const LsConcept& concept_expr) const;
};

/// The shared concept-evaluation cache: memoizes lub(X) together with its
/// evaluated extension across workers, waves, searches, and — held by an
/// ExplainSession — across requests.
///
/// Two tiers, both publish-after-wave (see ShardedPublishCache for the
/// protocol):
///
///  * the *support* tier maps a sort-deduplicated support set X to
///    (lub(X), ⟦lub(X)⟧ᴵ), one instance per lub flavor (selection-free /
///    with-selections) so keys stay plain value vectors;
///  * the *eval* tier maps an LsConcept to its extension, shared by every
///    support key whose lub lands on the same concept — distinct support
///    sets of one lub class reuse one Extension object.
///
/// Determinism: every entry is a pure function of (key, instance), so
/// cache warmth can only change timing and pointer identities — never
/// outputs, deterministic stats, or errors. During a wave the published
/// tiers are frozen and published extensions are *frozen* too
/// (Extension::Freeze at publish time), so concurrent membership probes
/// never race on the lazy representation build.
///
/// Threading contract: Find* from many workers concurrently during a
/// wave; Publish / Clear / stats mutation only at serial points. The
/// instance must not change while the cache holds entries (same contract
/// as EvalCache); an ExplainSession Clear()s on rewarm.
class ConceptCache {
 public:
  /// One published entry: the canonical lub concept and its extension.
  /// Entries are handed out by address (stable until Clear) — the
  /// answer-cover kernel keys cover bitmaps by `ext.get()`.
  struct Entry {
    LsConcept concept;
    std::shared_ptr<const Extension> ext;
  };

  explicit ConceptCache(const rel::Instance* instance,
                        ConceptCacheOptions options = {});

  const rel::Instance& instance() const { return *instance_; }
  const ConceptCacheOptions& options() const { return options_; }

  /// Published support-tier lookup (wave-safe). Null on miss.
  const Entry* FindSupport(bool with_selections,
                           const std::vector<Value>& sorted_key) const;

  /// Published eval-tier lookup (wave-safe; the refcount bump is atomic).
  std::shared_ptr<const Extension> FindEval(
      const LsConcept& concept_expr) const;

  /// Serial point: merges the overlay's pending entries in its insertion
  /// order (first publish of a key wins; the byte budget rejects the
  /// rest), freezes every published extension for concurrent reads, folds
  /// the overlay's traffic counters into stats(), and clears the pending
  /// lists. The overlay's private maps stay valid — workers keep their
  /// entry pointers across waves.
  void Publish(ConceptCacheOverlay* overlay);

  /// Serial-only full reset (session rewarm): drops every entry, counted
  /// as evictions. Traffic counters survive.
  void Clear();

  /// Published entries across all tiers.
  size_t size() const;

  /// Approximate residency: published extensions + concepts + keys + map
  /// structure. Feeds ExplainSession::MemoryUsage().
  size_t MemoryBytes() const;

  const ConceptCacheStats& stats() const { return stats_; }

 private:
  friend class ConceptCacheOverlay;

  using SupportTier = ShardedPublishCache<std::vector<Value>, Entry,
                                          SupportKeyHash>;

  SupportTier& tier(bool with_selections) {
    return with_selections ? support_sel_ : support_free_;
  }
  const SupportTier& tier(bool with_selections) const {
    return with_selections ? support_sel_ : support_free_;
  }

  const rel::Instance* instance_;
  ConceptCacheOptions options_;
  SupportTier support_free_;
  SupportTier support_sel_;
  ShardedPublishCache<LsConcept, Extension, ConceptHash> evals_;
  ConceptCacheStats stats_;
  size_t bytes_ = 0;  // approximate, counted at publish
};

/// One worker's (or one serial search's) private view over a shared
/// ConceptCache. Lookups go local map → published tier → compute; misses
/// are recorded in insertion order for the wave-end Publish. The overlay
/// owns its entries via shared_ptr, so a pointer returned here stays
/// valid for the overlay's lifetime even if another overlay wins the
/// publish race for the same key — and local entries keep *one* address
/// per key per overlay, which the cover-bitmap identity keying relies on.
///
/// Strictly single-threaded (like the LubContext and EvalCache it
/// drives): one overlay per worker, one per serial search.
class ConceptCacheOverlay {
 public:
  /// `lub` computes misses (flavor fixed by `with_selections`);
  /// `conjunct_eval`, when non-null, supplies conjunct-level extensions
  /// (a session's warm EvalCache — concepts share conjuncts heavily), and
  /// an overlay-owned EvalCache is used otherwise. Both must be
  /// single-threaded-owned by the same worker as this overlay.
  ConceptCacheOverlay(ConceptCache* shared, bool with_selections,
                      LubContext* lub, EvalCache* conjunct_eval = nullptr);

  /// Memoized lub + evaluation of a support set. The returned entry is
  /// valid for the overlay's lifetime (or the shared cache's, for
  /// published hits). Lub errors (box-cap ResourceExhausted) pass through
  /// uncached.
  Result<const ConceptCache::Entry*> LubAndEval(const std::vector<Value>& x);

  /// Probe-only variant for generalization sweeps whose candidate keys
  /// are looked up exactly once (the greedy sweeps test support ∪ {b} for
  /// every b and keep almost none): serves from the local / published
  /// tiers when they could hit, otherwise computes the lub fresh —
  /// memoizing only the concept-keyed eval tier. No support-tier record
  /// is created, so a rejected candidate leaves no allocation behind and
  /// never bloats the published tier with probe-once keys. The returned
  /// extension is overlay-lifetime-stable (owned by an eval tier), which
  /// the cover-bitmap identity keying requires; callers that *accept* a
  /// candidate promote it with PromoteLastProbe().
  Result<std::shared_ptr<const Extension>> LubExtTransient(
      const std::vector<Value>& x);

  /// Records the candidate probed by the immediately preceding
  /// *successful* LubExtTransient in the support tier, reusing the lub
  /// and extension that probe already computed (the sweeps accept a
  /// candidate right after probing it, and recomputing the lub on accept
  /// is measurable on small instances). Returns the same entry LubAndEval
  /// would: identical concept value, identical extension address. Must
  /// not be called after a failed probe or any intervening overlay call.
  const ConceptCache::Entry* PromoteLastProbe();

  bool with_selections() const { return with_selections_; }
  /// Entries computed since the last Publish (tests).
  size_t pending() const {
    return pending_support_.size() + pending_evals_.size();
  }

 private:
  friend class ConceptCache;

  using LocalSupportMap =
      std::unordered_map<std::vector<Value>,
                         std::shared_ptr<const ConceptCache::Entry>,
                         SupportKeyHash>;
  using LocalEvalMap =
      std::unordered_map<LsConcept, std::shared_ptr<const Extension>,
                        ConceptHash>;

  /// The lub of a canonical (sorted, deduplicated) key, flavor fixed at
  /// construction.
  Result<LsConcept> LubOfSorted(const std::vector<Value>& sorted_key);

  /// Overlay-lifetime-stable extension of `concept_expr` through the
  /// local and published eval tiers, computing + recording on miss.
  /// Returns the local eval-map node (key: the canonical concept, value:
  /// the stable extension) so callers can reuse both without copies.
  const LocalEvalMap::value_type* EvalThroughTiers(
      const LsConcept& concept_expr);

  ConceptCache* shared_;
  bool with_selections_;
  LubContext* lub_;
  EvalCache* conjunct_eval_;
  std::optional<EvalCache> own_eval_;
  LocalSupportMap local_;
  LocalEvalMap local_evals_;
  // Reused canonical-key buffer of the transient probe (single-threaded
  // overlay; keeps that path allocation-free).
  std::vector<Value> scratch_key_;
  // Where the last LubExtTransient was served from, for PromoteLastProbe:
  // exactly one is set after a successful probe (local support entry /
  // published support entry / freshly computed eval node + scratch_key_).
  const ConceptCache::Entry* last_local_ = nullptr;
  std::shared_ptr<const ConceptCache::Entry> last_shared_;
  const LocalEvalMap::value_type* last_eval_node_ = nullptr;
  // Pending publishes in insertion order — the linearization the serial
  // merge replays. Stored as pointers into the local maps (node handles
  // are stable under rehash), so the miss path never copies a key.
  std::vector<const LocalSupportMap::value_type*> pending_support_;
  std::vector<const LocalEvalMap::value_type*> pending_evals_;
  ConceptCacheStats stats_;  // folded into the shared cache at Publish
};

/// Publishes an overlay on scope exit — the serial searches' way of
/// guaranteeing the merge happens on every return path (including
/// errors; entries are pure, so publishing them is always sound).
class ScopedPublish {
 public:
  ScopedPublish(ConceptCache* cache, ConceptCacheOverlay* overlay)
      : cache_(cache), overlay_(overlay) {}
  ~ScopedPublish() { cache_->Publish(overlay_); }
  ScopedPublish(const ScopedPublish&) = delete;
  ScopedPublish& operator=(const ScopedPublish&) = delete;

 private:
  ConceptCache* cache_;
  ConceptCacheOverlay* overlay_;
};

}  // namespace whynot::ls

#endif  // WHYNOT_CONCEPTS_CONCEPT_CACHE_H_
