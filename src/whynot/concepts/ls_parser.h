#ifndef WHYNOT_CONCEPTS_LS_PARSER_H_
#define WHYNOT_CONCEPTS_LS_PARSER_H_

#include <string>

#include "whynot/common/status.h"
#include "whynot/concepts/ls_concept.h"
#include "whynot/relational/schema.h"

namespace whynot::ls {

/// Parses the textual concept syntax produced by LsConcept::ToString:
///
///   concept  := conj (" & " conj)*
///   conj     := "top"
///             | "{" literal "}"
///             | "pi" "[" attr "]" "(" inner ")"
///   inner    := relation
///             | "sigma" "[" cond ("," cond)* "]" "(" relation ")"
///   cond     := attr op literal
///   op       := "=" | "<" | ">" | "<=" | ">="
///   literal  := integer | double | "quoted string" | bare-word
///
/// Attributes may be written by name (resolved against `schema`) or as
/// 0-based indices. Bare-word literals are treated as strings, so
/// `continent = Europe` and `continent = "Europe"` are equivalent.
Result<LsConcept> ParseConcept(const std::string& text,
                               const rel::Schema& schema);

}  // namespace whynot::ls

#endif  // WHYNOT_CONCEPTS_LS_PARSER_H_
