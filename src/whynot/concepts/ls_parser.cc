#include "whynot/concepts/ls_parser.h"

#include <cctype>

namespace whynot::ls {

namespace {

/// A tiny recursive-descent parser over the concept grammar.
class Parser {
 public:
  Parser(const std::string& text, const rel::Schema& schema)
      : text_(text), schema_(schema) {}

  Result<LsConcept> Parse() {
    std::vector<Conjunct> conjuncts;
    while (true) {
      WHYNOT_ASSIGN_OR_RETURN(Conjunct c, ParseConjunct());
      conjuncts.push_back(std::move(c));
      SkipSpace();
      if (!Eat('&')) break;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing input at offset " +
                                     std::to_string(pos_) + " in concept '" +
                                     text_ + "'");
    }
    return LsConcept(std::move(conjuncts));
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Eat(c)) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos_) +
                                     " in concept '" + text_ + "'");
    }
    return Status::OK();
  }

  std::string Word() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == '.')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  Result<Value> ParseLiteral() {
    SkipSpace();
    if (pos_ < text_.size() && (text_[pos_] == '"' || text_[pos_] == '\'')) {
      char quote = text_[pos_++];
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ == text_.size()) {
        return Status::InvalidArgument("unterminated string literal");
      }
      std::string s = text_.substr(start, pos_ - start);
      ++pos_;  // closing quote
      return Value(std::move(s));
    }
    std::string w = Word();
    if (w.empty()) {
      return Status::InvalidArgument("expected literal at offset " +
                                     std::to_string(pos_));
    }
    // Numeric if it looks numeric; otherwise a bare-word string.
    bool numeric = true;
    bool has_dot = false;
    for (size_t i = 0; i < w.size(); ++i) {
      char c = w[i];
      if (c == '.') {
        has_dot = true;
      } else if (!std::isdigit(static_cast<unsigned char>(c)) &&
                 !(i == 0 && (c == '-' || c == '+'))) {
        numeric = false;
        break;
      }
    }
    if (numeric && w != "-" && w != "+" && w != ".") {
      if (has_dot) return Value(std::stod(w));
      return Value(static_cast<int64_t>(std::stoll(w)));
    }
    return Value(std::move(w));
  }

  Result<rel::CmpOp> ParseOp() {
    SkipSpace();
    if (Eat('<')) return Eat('=') ? rel::CmpOp::kLe : rel::CmpOp::kLt;
    if (Eat('>')) return Eat('=') ? rel::CmpOp::kGe : rel::CmpOp::kGt;
    if (Eat('=')) return rel::CmpOp::kEq;
    return Status::InvalidArgument("expected comparison operator at offset " +
                                   std::to_string(pos_));
  }

  Result<int> ResolveAttr(const std::string& word,
                          const std::string& relation) {
    const rel::RelationDef* def = schema_.Find(relation);
    if (def == nullptr) {
      return Status::NotFound("unknown relation '" + relation + "'");
    }
    int idx = def->AttrIndex(word);
    if (idx >= 0) return idx;
    // Allow a 0-based numeric index.
    bool numeric = !word.empty();
    for (char c : word) {
      if (!std::isdigit(static_cast<unsigned char>(c))) numeric = false;
    }
    if (numeric) {
      idx = std::stoi(word);
      if (idx >= 0 && static_cast<size_t>(idx) < def->arity()) return idx;
    }
    return Status::NotFound("unknown attribute '" + word + "' of relation '" +
                            relation + "'");
  }

  Result<Conjunct> ParseConjunct() {
    SkipSpace();
    if (Eat('{')) {
      WHYNOT_ASSIGN_OR_RETURN(Value v, ParseLiteral());
      WHYNOT_RETURN_IF_ERROR(Expect('}'));
      return Conjunct::Nominal(std::move(v));
    }
    std::string word = Word();
    if (word == "top") return Conjunct::Top();
    if (word != "pi") {
      return Status::InvalidArgument("expected 'top', 'pi', or '{' at offset " +
                                     std::to_string(pos_) + " in concept '" +
                                     text_ + "'");
    }
    WHYNOT_RETURN_IF_ERROR(Expect('['));
    std::string attr_word = Word();
    WHYNOT_RETURN_IF_ERROR(Expect(']'));
    WHYNOT_RETURN_IF_ERROR(Expect('('));

    SkipSpace();
    size_t mark = pos_;
    std::string inner = Word();
    std::vector<Selection> selections;
    std::string relation;
    if (inner == "sigma") {
      WHYNOT_RETURN_IF_ERROR(Expect('['));
      // Conditions; attribute names resolved after the relation is known,
      // so collect raw pieces first.
      struct RawCond {
        std::string attr;
        rel::CmpOp op;
        Value constant;
      };
      std::vector<RawCond> raw;
      while (true) {
        std::string a = Word();
        WHYNOT_ASSIGN_OR_RETURN(rel::CmpOp op, ParseOp());
        WHYNOT_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        raw.push_back({std::move(a), op, std::move(v)});
        if (!Eat(',')) break;
      }
      WHYNOT_RETURN_IF_ERROR(Expect(']'));
      WHYNOT_RETURN_IF_ERROR(Expect('('));
      relation = Word();
      WHYNOT_RETURN_IF_ERROR(Expect(')'));
      for (RawCond& rc : raw) {
        WHYNOT_ASSIGN_OR_RETURN(int idx, ResolveAttr(rc.attr, relation));
        selections.push_back({idx, rc.op, std::move(rc.constant)});
      }
    } else {
      pos_ = mark;
      relation = Word();
    }
    WHYNOT_RETURN_IF_ERROR(Expect(')'));
    WHYNOT_ASSIGN_OR_RETURN(int attr, ResolveAttr(attr_word, relation));
    return Conjunct::Projection(std::move(relation), attr,
                                std::move(selections));
  }

  const std::string& text_;
  const rel::Schema& schema_;
  size_t pos_ = 0;
};

}  // namespace

Result<LsConcept> ParseConcept(const std::string& text,
                               const rel::Schema& schema) {
  return Parser(text, schema).Parse();
}

}  // namespace whynot::ls
