#ifndef WHYNOT_CONCEPTS_LS_CONCEPT_H_
#define WHYNOT_CONCEPTS_LS_CONCEPT_H_

#include <string>
#include <vector>

#include "whynot/common/value.h"
#include "whynot/relational/cq.h"
#include "whynot/relational/schema.h"

namespace whynot::ls {

/// One selection condition `attr op constant` inside σ (Definition 4.6).
/// `attr` is a 0-based attribute position.
struct Selection {
  int attr;
  rel::CmpOp op;
  Value constant;

  bool operator==(const Selection& o) const;
  bool operator<(const Selection& o) const;
};

/// An intersection-free conjunct of the concept language LS
/// (Definition 4.6): ⊤, a nominal {c}, or a projection π_A(D) where D is a
/// relation or a selection over one.
struct Conjunct {
  enum class Kind { kTop, kNominal, kProjection };

  static Conjunct Top();
  static Conjunct Nominal(Value v);
  static Conjunct Projection(std::string relation, int attr,
                             std::vector<Selection> selections = {});

  Kind kind = Kind::kTop;
  Value nominal;          // kNominal
  std::string relation;   // kProjection
  int attr = 0;           // kProjection
  std::vector<Selection> selections;  // kProjection (empty: selection-free)

  bool selection_free() const { return selections.empty(); }

  bool operator==(const Conjunct& o) const;
  bool operator<(const Conjunct& o) const;

  /// Number of symbols, for the explanation-length measure of Section 6
  /// (1 for ⊤/nominal/relation/attribute, 3 per selection).
  size_t Length() const;

  /// "pi[name](sigma[population >= 5000000](Cities))"; attribute names come
  /// from `schema` when provided, otherwise 0-based indices are printed.
  std::string ToString(const rel::Schema* schema = nullptr) const;
};

/// A concept of LS (Definition 4.6): an intersection C1 ⊓ ... ⊓ Cn of
/// intersection-free conjuncts, kept in canonical (sorted, deduplicated)
/// form. The empty intersection is ⊤.
class LsConcept {
 public:
  /// ⊤ (the empty intersection).
  LsConcept() = default;
  explicit LsConcept(std::vector<Conjunct> conjuncts);

  static LsConcept Top() { return LsConcept(); }
  static LsConcept Nominal(Value v) {
    return LsConcept({Conjunct::Nominal(std::move(v))});
  }
  static LsConcept Projection(std::string relation, int attr,
                              std::vector<Selection> selections = {}) {
    return LsConcept({Conjunct::Projection(std::move(relation), attr,
                                           std::move(selections))});
  }

  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }
  bool IsTop() const { return conjuncts_.empty(); }
  bool selection_free() const;
  /// True iff the concept lies in LminS (no σ and no ⊓: at most one
  /// selection-free conjunct).
  bool IsMinimal() const;

  /// ⊓ of this and `other`, canonicalized.
  LsConcept Intersect(const LsConcept& other) const;

  /// All constants mentioned (nominals and selection constants).
  std::vector<Value> Constants() const;

  /// Total symbol count (Section 6 length measure).
  size_t Length() const;

  bool operator==(const LsConcept& o) const { return conjuncts_ == o.conjuncts_; }
  bool operator!=(const LsConcept& o) const { return !(*this == o); }
  bool operator<(const LsConcept& o) const { return conjuncts_ < o.conjuncts_; }

  /// Algebra rendering: "top", "{Amsterdam}", or conjuncts joined by " & ".
  std::string ToString(const rel::Schema* schema = nullptr) const;

  /// SELECT-FROM-WHERE rendering in the style of Figure 5.
  std::string ToSql(const rel::Schema& schema) const;

 private:
  std::vector<Conjunct> conjuncts_;
};

}  // namespace whynot::ls

#endif  // WHYNOT_CONCEPTS_LS_CONCEPT_H_
