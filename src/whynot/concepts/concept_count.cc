#include "whynot/concepts/concept_count.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace whynot::ls {

namespace {

constexpr double kLog2Max = 63.9;  // stay clear of uint64 overflow

BigCount FromLog2(double lg) {
  BigCount c;
  c.log2 = lg;
  if (lg <= kLog2Max) {
    c.exact = static_cast<uint64_t>(std::llround(std::exp2(lg)));
  } else {
    c.overflow = true;
  }
  return c;
}

BigCount Mul(const BigCount& a, const BigCount& b) {
  BigCount c;
  c.log2 = a.log2 + b.log2;
  if (!a.overflow && !b.overflow && c.log2 <= kLog2Max) {
    c.exact = a.exact * b.exact;
  } else {
    c.overflow = true;
  }
  return c;
}

BigCount Add(const BigCount& a, const BigCount& b) {
  BigCount c;
  if (!a.overflow && !b.overflow &&
      a.exact <= std::numeric_limits<uint64_t>::max() - b.exact) {
    c.exact = a.exact + b.exact;
    c.log2 = std::log2(static_cast<double>(c.exact == 0 ? 1 : c.exact));
  } else {
    c.overflow = true;
    c.log2 = std::max(a.log2, b.log2) + 1.0;  // upper bound
  }
  return c;
}

BigCount Exact(uint64_t v) {
  BigCount c;
  c.exact = v;
  c.log2 = std::log2(static_cast<double>(v == 0 ? 1 : v));
  return c;
}

/// 2^n as a BigCount, n may be huge.
BigCount Pow2(double n) { return FromLog2(n); }

}  // namespace

std::string BigCount::ToString() const {
  if (!overflow) return std::to_string(exact);
  std::ostringstream os;
  os << "~2^" << static_cast<long long>(log2);
  return os.str();
}

ConceptCounts CountConcepts(const rel::Schema& schema, size_t num_constants) {
  ConceptCounts out;
  double k = static_cast<double>(num_constants);

  // LminS[K]: ⊤, |K| nominals, and one projection per (relation, attribute).
  uint64_t positions = 0;
  for (const rel::RelationDef& def : schema.relations()) {
    positions += def.arity();
  }
  out.minimal = Exact(1 + num_constants + positions);

  // Intersection-free LS[K]: ⊤, nominals, and projections with a selection
  // box. Per attribute a selection is (nothing | = c | interval with lower
  // and/or upper bound drawn from K with strict/non-strict ends):
  //   choices(attr) = 1 + |K| + (2|K| + 1)^2 ≈ interval bounds
  // counted as: lower in {-inf} ∪ {>=c, >c : c ∈ K}, upper likewise.
  double per_attr = 1.0 + k + (2.0 * k + 1.0) * (2.0 * k + 1.0);
  BigCount inter_free = Exact(1 + num_constants);
  for (const rel::RelationDef& def : schema.relations()) {
    // Each attribute can be the projection target; the remaining attributes
    // carry selection choices.
    BigCount per_relation = Exact(0);
    for (size_t a = 0; a < def.arity(); ++a) {
      BigCount combo = Exact(1);
      for (size_t j = 0; j < def.arity(); ++j) {
        combo = Mul(combo, FromLog2(std::log2(per_attr)));
      }
      (void)a;
      per_relation = Add(per_relation, combo);
    }
    inter_free = Add(inter_free, per_relation);
  }
  out.intersection_free = inter_free;

  // Selection-free LS[K]: intersections of selection-free conjuncts =
  // subsets of (nominals + positions), i.e. 2^(|K| + positions).
  out.selection_free = Pow2(k + static_cast<double>(positions));

  // Full LS[K]: intersections of intersection-free conjuncts: 2^(count of
  // intersection-free conjuncts) — double exponential in the input size.
  out.full = Pow2(out.intersection_free.overflow
                      ? out.intersection_free.log2
                      : static_cast<double>(out.intersection_free.exact));
  return out;
}

}  // namespace whynot::ls
