#include "whynot/concepts/concept_cache.h"

#include <functional>
#include <string>

#include "whynot/common/algorithm.h"

namespace whynot::ls {
namespace {

inline size_t Mix(size_t h, size_t x) {
  // Boost-style hash combine; good enough for shard striping and bucket
  // placement.
  return h ^ (x + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

// Approximate heap bytes of a support key (the sorted value vector).
size_t KeyBytes(const std::vector<Value>& key) {
  return key.capacity() * sizeof(Value);
}

// Approximate heap bytes of a concept's conjunct list (relation-name and
// selection storage folded into a flat per-conjunct estimate).
size_t ConceptBytes(const LsConcept& c) {
  size_t bytes = sizeof(LsConcept);
  for (const Conjunct& cj : c.conjuncts()) {
    bytes += sizeof(Conjunct) + cj.relation.capacity() +
             cj.selections.capacity() * sizeof(Selection);
  }
  return bytes;
}

// Fixed per-published-entry overhead: the shared_ptr control block and
// the hash-map node the ShardedPublishCache stores it in.
constexpr size_t kNodeOverhead = 4 * sizeof(void*);

}  // namespace

size_t SupportKeyHash::operator()(const std::vector<Value>& key) const {
  size_t h = key.size();
  for (const Value& v : key) h = Mix(h, v.Hash());
  return h;
}

size_t ConceptHash::operator()(const LsConcept& concept_expr) const {
  size_t h = concept_expr.conjuncts().size();
  for (const Conjunct& cj : concept_expr.conjuncts()) {
    h = Mix(h, static_cast<size_t>(cj.kind));
    switch (cj.kind) {
      case Conjunct::Kind::kTop:
        break;
      case Conjunct::Kind::kNominal:
        h = Mix(h, cj.nominal.Hash());
        break;
      case Conjunct::Kind::kProjection:
        h = Mix(h, std::hash<std::string>{}(cj.relation));
        h = Mix(h, static_cast<size_t>(cj.attr));
        for (const Selection& s : cj.selections) {
          h = Mix(h, static_cast<size_t>(s.attr));
          h = Mix(h, static_cast<size_t>(s.op));
          h = Mix(h, s.constant.Hash());
        }
        break;
    }
  }
  return h;
}

ConceptCache::ConceptCache(const rel::Instance* instance,
                           ConceptCacheOptions options)
    : instance_(instance),
      options_(options),
      support_free_(options.shards),
      support_sel_(options.shards),
      evals_(options.shards) {}

const ConceptCache::Entry* ConceptCache::FindSupport(
    bool with_selections, const std::vector<Value>& sorted_key) const {
  return tier(with_selections).Find(sorted_key);
}

std::shared_ptr<const Extension> ConceptCache::FindEval(
    const LsConcept& concept_expr) const {
  return evals_.FindShared(concept_expr);
}

void ConceptCache::Publish(ConceptCacheOverlay* overlay) {
  ConceptCacheStats& os = overlay->stats_;
  stats_.shared_hits += os.shared_hits;
  stats_.local_hits += os.local_hits;
  stats_.misses += os.misses;
  os = ConceptCacheStats{};

  // Eval tier first: its extensions carry the bulk of the bytes, and the
  // support entries below alias them by shared_ptr, so the extension is
  // accounted exactly once.
  for (const auto* node : overlay->pending_evals_) {
    const LsConcept& concept_expr = node->first;
    const std::shared_ptr<const Extension>& ext = node->second;
    ext->Freeze();
    size_t entry_bytes =
        ext->MemoryBytes() + ConceptBytes(concept_expr) + kNodeOverhead;
    if (options_.max_bytes != 0 && bytes_ + entry_bytes > options_.max_bytes) {
      ++stats_.evictions;
      continue;
    }
    if (evals_.Publish(concept_expr, ext)) {
      bytes_ += entry_bytes;
      ++stats_.publishes;
    }
  }
  SupportTier& support = tier(overlay->with_selections_);
  for (const auto* node : overlay->pending_support_) {
    const std::vector<Value>& key = node->first;
    const std::shared_ptr<const Entry>& entry = node->second;
    entry->ext->Freeze();
    size_t entry_bytes = KeyBytes(key) + ConceptBytes(entry->concept) +
                         sizeof(Entry) + kNodeOverhead;
    if (options_.max_bytes != 0 && bytes_ + entry_bytes > options_.max_bytes) {
      ++stats_.evictions;
      continue;
    }
    if (support.Publish(key, entry)) {
      bytes_ += entry_bytes;
      ++stats_.publishes;
    }
  }
  overlay->pending_evals_.clear();
  overlay->pending_support_.clear();
}

void ConceptCache::Clear() {
  stats_.evictions += size();
  support_free_.Clear();
  support_sel_.Clear();
  evals_.Clear();
  bytes_ = 0;
}

size_t ConceptCache::size() const {
  return support_free_.size() + support_sel_.size() + evals_.size();
}

size_t ConceptCache::MemoryBytes() const {
  return bytes_ + support_free_.MemoryBytes() + support_sel_.MemoryBytes() +
         evals_.MemoryBytes();
}

ConceptCacheOverlay::ConceptCacheOverlay(ConceptCache* shared,
                                         bool with_selections, LubContext* lub,
                                         EvalCache* conjunct_eval)
    : shared_(shared),
      with_selections_(with_selections),
      lub_(lub),
      conjunct_eval_(conjunct_eval) {
  if (conjunct_eval_ == nullptr) {
    own_eval_.emplace(&shared->instance());
    conjunct_eval_ = &*own_eval_;
  }
}

Result<LsConcept> ConceptCacheOverlay::LubOfSorted(
    const std::vector<Value>& sorted_key) {
  if (with_selections_) {
    return lub_->LubWithSelectionsSorted(sorted_key);
  }
  return lub_->LubSelectionFreeSorted(sorted_key);
}

const ConceptCacheOverlay::LocalEvalMap::value_type*
ConceptCacheOverlay::EvalThroughTiers(const LsConcept& concept_expr) {
  // The extension tier is keyed by the concept, so distinct support sets
  // in one lub class share a single Extension object. Local map first:
  // within one search most candidate lubs collapse onto concepts this
  // overlay has already evaluated, and either copy of a pure value is
  // interchangeable. One hash: try_emplace both probes and claims the
  // slot, and a published hit is memoized into it so repeat probes stay
  // local.
  auto [it, inserted] = local_evals_.try_emplace(concept_expr);
  if (inserted) {
    if (!shared_->evals_.empty()) {
      it->second = shared_->FindEval(concept_expr);
    }
    if (it->second == nullptr) {
      // Mirrors EvalCache::Eval bit for bit: intersect conjunct extensions
      // in canonical order with the same early-empty break.
      Extension value = Extension::All();
      for (const Conjunct& c : concept_expr.conjuncts()) {
        value = value.Intersect(conjunct_eval_->EvalConjunct(c));
        if (value.empty()) break;
      }
      it->second = std::make_shared<const Extension>(std::move(value));
      pending_evals_.push_back(&*it);
    }
  }
  return &*it;
}

Result<const ConceptCache::Entry*> ConceptCacheOverlay::LubAndEval(
    const std::vector<Value>& x) {
  std::vector<Value> key = x;
  SortUnique(&key);

  // One hash for probe and claim: try_emplace either finds the local
  // entry or inserts the slot the miss path below fills in.
  auto [it, inserted] = local_.try_emplace(std::move(key));
  if (!inserted) {
    ++stats_.local_hits;
    return it->second.get();
  }
  const std::vector<Value>& sorted_key = it->first;
  // The emptiness probe keeps a cold cache's miss path near-free: size_
  // only moves at serial points, so during a wave it reads a constant,
  // and skipping the lookup saves hashing the key against the tier.
  if (!shared_->tier(with_selections_).empty()) {
    if (auto e = shared_->tier(with_selections_).FindShared(sorted_key)) {
      ++stats_.shared_hits;
      // Memoized locally (repeat probes become one-hash local hits); the
      // address handed out stays the published one, so identity keying
      // is unaffected.
      it->second = std::move(e);
      return it->second.get();
    }
  }
  ++stats_.misses;

  Result<LsConcept> lub = LubOfSorted(sorted_key);
  if (!lub.ok()) {
    // Box-cap errors pass through uncached: drop the claimed slot.
    local_.erase(it);
    return lub.status();
  }
  LsConcept concept_expr = std::move(lub).value();
  std::shared_ptr<const Extension> ext =
      EvalThroughTiers(concept_expr)->second;
  it->second = std::make_shared<const ConceptCache::Entry>(
      ConceptCache::Entry{std::move(concept_expr), std::move(ext)});
  pending_support_.push_back(&*it);
  return it->second.get();
}

Result<std::shared_ptr<const Extension>> ConceptCacheOverlay::LubExtTransient(
    const std::vector<Value>& x) {
  // Canonicalizing into the scratch buffer is cost-parity with the
  // defensive copy + sort the general lub entry points would pay anyway
  // (the buffer makes it allocation-free after warm-up), and it leaves
  // the sorted key at hand for PromoteLastProbe. This path runs once per
  // sweep candidate.
  scratch_key_.assign(x.begin(), x.end());
  SortUnique(&scratch_key_);
  last_local_ = nullptr;
  last_shared_ = nullptr;
  last_eval_node_ = nullptr;
  if (!local_.empty()) {
    auto it = local_.find(scratch_key_);
    if (it != local_.end()) {
      ++stats_.local_hits;
      last_local_ = it->second.get();
      return it->second->ext;
    }
  }
  if (!shared_->tier(with_selections_).empty()) {
    if (auto e = shared_->tier(with_selections_).FindShared(scratch_key_)) {
      ++stats_.shared_hits;
      last_shared_ = std::move(e);
      return last_shared_->ext;
    }
  }
  ++stats_.misses;
  Result<LsConcept> lub = LubOfSorted(scratch_key_);
  if (!lub.ok()) return lub.status();
  last_eval_node_ = EvalThroughTiers(std::move(lub).value());
  return last_eval_node_->second;
}

const ConceptCache::Entry* ConceptCacheOverlay::PromoteLastProbe() {
  // Already in the local support map: nothing to record.
  if (last_local_ != nullptr) return last_local_;
  // scratch_key_ still holds the probe's canonical key (no overlay call
  // may intervene, per the contract). The entry value matches what a
  // fresh LubAndEval of the same key would build: same concept value,
  // same eval-tier extension address.
  auto [it, inserted] = local_.try_emplace(scratch_key_);
  if (inserted) {
    if (last_shared_ != nullptr) {
      // Memoize the published entry locally, keeping its address.
      it->second = std::move(last_shared_);
    } else {
      it->second = std::make_shared<const ConceptCache::Entry>(
          ConceptCache::Entry{last_eval_node_->first,
                              last_eval_node_->second});
      pending_support_.push_back(&*it);
    }
  }
  return it->second.get();
}

}  // namespace whynot::ls
