#include "whynot/concepts/materialize.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "whynot/common/parallel.h"
#include "whynot/concepts/ls_eval.h"
#include "whynot/concepts/lub.h"

namespace whynot::ls {

namespace {

/// Key identifying an extension for deduplication. All extensions here are
/// evaluated against one instance, so the (canonical, rank-sorted) pool id
/// vector plus the boxed out-of-pool extras identify the set — integer
/// comparisons instead of boxed Value vectors for the common case.
using ExtKey = std::tuple<bool, std::vector<ValueId>, std::vector<Value>>;

ExtKey KeyOf(const Extension& e) { return {e.all, e.ids(), e.extras()}; }

bool ShorterRepresentative(const LsConcept& a, const LsConcept& b) {
  if (a.Length() != b.Length()) return a.Length() < b.Length();
  return a < b;
}

/// Evaluates `concepts[make(i)]`-style work items in parallel: `eval(i)`
/// must be a pure function of `i` (the instance is pre-warmed by the
/// caller), results land in index-addressed slots. Processing chunks
/// bounds the live Extension storage; the caller consumes each chunk
/// serially *in index order*, so the outcome is identical to the serial
/// evaluation loop for every thread count.
constexpr size_t kEvalChunk = 4096;

}  // namespace

Result<std::vector<LsConcept>> EnumerateConjunctConcepts(
    const rel::Instance& instance, const std::vector<Value>& constants,
    Fragment fragment, size_t max_concepts) {
  std::vector<LsConcept> out;
  out.push_back(LsConcept::Top());
  for (const Value& c : constants) out.push_back(LsConcept::Nominal(c));
  for (const rel::RelationDef& def : instance.schema().relations()) {
    for (size_t a = 0; a < def.arity(); ++a) {
      out.push_back(LsConcept::Projection(def.name(), static_cast<int>(a)));
    }
  }
  if (fragment == Fragment::kFull) {
    LubContext ctx(&instance);
    for (const rel::RelationDef& def : instance.schema().relations()) {
      WHYNOT_ASSIGN_OR_RETURN(std::vector<LsConcept> sel,
                              ctx.CanonicalSelectionConcepts(def.name()));
      for (LsConcept& c : sel) out.push_back(std::move(c));
      if (out.size() > max_concepts * 4) {
        return Status::ResourceExhausted(
            "conjunct enumeration exceeded the concept cap; full LS[K] is "
            "double-exponential (Proposition 4.2)");
      }
    }
  }
  return out;
}

Result<std::unique_ptr<LsOntology>> LsOntology::Materialize(
    const rel::Instance* instance, std::vector<Value> extra_constants,
    const MaterializeOptions& options) {
  std::vector<Value> constants = instance->ActiveDomain();
  for (Value& v : extra_constants) constants.push_back(std::move(v));
  std::sort(constants.begin(), constants.end());
  constants.erase(std::unique(constants.begin(), constants.end()),
                  constants.end());

  WHYNOT_ASSIGN_OR_RETURN(
      std::vector<LsConcept> base,
      EnumerateConjunctConcepts(*instance, constants, options.fragment,
                                options.max_concepts));

  std::vector<LsConcept> concepts;
  if (options.fragment == Fragment::kMinimal) {
    concepts = std::move(base);
  } else if (!options.dedup_by_extension) {
    // Syntactic closure under intersection (needed for ⊑_S ontologies,
    // where extension-equal concepts may differ schema-wise; Example 4.9
    // E7 vs E8). Exponential — capped.
    std::set<LsConcept> all(base.begin(), base.end());
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<LsConcept> snapshot(all.begin(), all.end());
      for (const LsConcept& c : snapshot) {
        for (const LsConcept& b : base) {
          LsConcept meet = c.Intersect(b);
          if (all.insert(meet).second) {
            changed = true;
            if (all.size() > options.max_concepts) {
              return Status::ResourceExhausted(
                  "syntactic closure exceeded max_concepts (selection-free "
                  "LS[K] is single-exponential, Proposition 4.2)");
            }
          }
        }
      }
    }
    concepts.assign(all.begin(), all.end());
  } else {
    // Close the base conjuncts under intersection, deduplicating by
    // extension on I (i.e. modulo ≡_{O_I}) and keeping a shortest
    // representative per class. The closure is the lattice of achievable
    // extensions, which is what Algorithm 1 over OI[K] operates on.
    //
    // The Eval calls — one per (class, base-conjunct) meet and round, the
    // dominant cost — are embarrassingly parallel, so they run chunked
    // across the pool with results in index-addressed slots; the map
    // insertions replay serially in the exact pair order of the serial
    // loop, which makes representatives, the round structure, and the
    // max_concepts cutoff identical for every thread count.
    const bool parallel = par::NumThreads() > 1;
    if (parallel) instance->WarmForConcurrentReads();
    std::map<ExtKey, LsConcept> by_ext;
    if (!parallel) {
      // Serial path: one live (meet, key) at a time — the chunk buffers of
      // the parallel path below cost ~15% in cache traffic at 1 thread.
      for (const LsConcept& c : base) {
        ExtKey key = KeyOf(Eval(c, *instance));
        auto it = by_ext.find(key);
        if (it == by_ext.end()) {
          by_ext.emplace(std::move(key), c);
        } else if (ShorterRepresentative(c, it->second)) {
          it->second = c;
        }
      }
      bool changed = true;
      while (changed) {
        changed = false;
        std::vector<std::pair<ExtKey, LsConcept>> snapshot(by_ext.begin(),
                                                           by_ext.end());
        for (const auto& [key, concept_expr] : snapshot) {
          for (const LsConcept& b : base) {
            LsConcept meet = concept_expr.Intersect(b);
            ExtKey meet_key = KeyOf(Eval(meet, *instance));
            auto it = by_ext.find(meet_key);
            if (it == by_ext.end()) {
              by_ext.emplace(std::move(meet_key), std::move(meet));
              changed = true;
              if (by_ext.size() > options.max_concepts) {
                return Status::ResourceExhausted(
                    "materialized OI[K] exceeded max_concepts; derived "
                    "ontologies are typically infinite and not meant to be "
                    "materialized (Section 4.2)");
              }
            } else if (ShorterRepresentative(meet, it->second)) {
              it->second = std::move(meet);
              // Representative change only; no new extension class.
            }
          }
        }
      }
    } else {
      {
        std::vector<ExtKey> keys(base.size());
        par::ParallelFor(base.size(), 16, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            keys[i] = KeyOf(Eval(base[i], *instance));
          }
        });
        for (size_t i = 0; i < base.size(); ++i) {
          auto it = by_ext.find(keys[i]);
          if (it == by_ext.end()) {
            by_ext.emplace(std::move(keys[i]), base[i]);
          } else if (ShorterRepresentative(base[i], it->second)) {
            it->second = base[i];
          }
        }
      }
      bool changed = true;
      while (changed) {
        changed = false;
        std::vector<std::pair<ExtKey, LsConcept>> snapshot(by_ext.begin(),
                                                           by_ext.end());
        size_t pairs = snapshot.size() * base.size();
        std::vector<LsConcept> meets(std::min(pairs, kEvalChunk));
        std::vector<ExtKey> keys(meets.size());
        for (size_t chunk = 0; chunk < pairs; chunk += kEvalChunk) {
          size_t chunk_end = std::min(pairs, chunk + kEvalChunk);
          par::ParallelFor(
              chunk_end - chunk, 16, [&](size_t begin, size_t end) {
                for (size_t off = begin; off < end; ++off) {
                  size_t p = chunk + off;
                  const LsConcept& concept_expr =
                      snapshot[p / base.size()].second;
                  meets[off] = concept_expr.Intersect(base[p % base.size()]);
                  keys[off] = KeyOf(Eval(meets[off], *instance));
                }
              });
          for (size_t off = 0; off < chunk_end - chunk; ++off) {
            auto it = by_ext.find(keys[off]);
            if (it == by_ext.end()) {
              by_ext.emplace(std::move(keys[off]), std::move(meets[off]));
              changed = true;
              if (by_ext.size() > options.max_concepts) {
                return Status::ResourceExhausted(
                    "materialized OI[K] exceeded max_concepts; derived "
                    "ontologies are typically infinite and not meant to be "
                    "materialized (Section 4.2)");
              }
            } else if (ShorterRepresentative(meets[off], it->second)) {
              it->second = std::move(meets[off]);
              // Representative change only; no new extension class.
            }
          }
        }
      }
    }
    concepts.reserve(by_ext.size());
    for (auto& [key, c] : by_ext) concepts.push_back(std::move(c));
  }
  if (concepts.size() > options.max_concepts) {
    return Status::ResourceExhausted("materialization exceeded max_concepts");
  }
  return FromConcepts(instance, std::move(concepts), options);
}

Result<std::unique_ptr<LsOntology>> LsOntology::FromConcepts(
    const rel::Instance* instance, std::vector<LsConcept> concepts,
    const MaterializeOptions& options) {
  std::sort(concepts.begin(), concepts.end());
  concepts.erase(std::unique(concepts.begin(), concepts.end()),
                 concepts.end());
  std::unique_ptr<LsOntology> onto(
      new LsOntology(instance, std::move(concepts)));
  WHYNOT_RETURN_IF_ERROR(onto->BuildMatrix(options));
  return onto;
}

Status LsOntology::BuildMatrix(const MaterializeOptions& options) {
  int32_t n = NumConcepts();
  matrix_ = onto::BoolMatrix(n);
  if (options.mode == SubsumptionMode::kInstance) {
    // Both phases shard cleanly: the Evals land in index-addressed slots,
    // and each row of the n × n SubsetOf sweep writes only its own matrix
    // words. SubsetOf on fresh Eval results takes the id/rank read-only
    // paths (no lazy bitmap is ever *built* by it), so the pre-warmed
    // instance makes the sweep safe for concurrent readers.
    if (par::NumThreads() > 1) instance_->WarmForConcurrentReads();
    std::vector<Extension> exts(static_cast<size_t>(n));
    par::ParallelFor(static_cast<size_t>(n), 16, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        exts[i] = Eval(concepts_[i], *instance_);
      }
    });
    // A pool-less operand (empty extension of a missing relation) sends
    // SubsetOf through the lazily boxed values() of *both* sides; when one
    // exists, pre-box every finite extension serially so the sweep never
    // materializes a view concurrently.
    bool any_poolless = false;
    for (const Extension& e : exts) {
      if (!e.all && e.pool() == nullptr) any_poolless = true;
    }
    if (any_poolless && par::NumThreads() > 1) {
      for (Extension& e : exts) {
        if (!e.all) e.values();
      }
    }
    par::ParallelFor(static_cast<size_t>(n), 8, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        for (int32_t j = 0; j < n; ++j) {
          if (exts[i].SubsetOf(exts[static_cast<size_t>(j)])) {
            matrix_.Set(static_cast<int32_t>(i), j);
          }
        }
      }
    });
    return Status::OK();
  }
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = 0; j < n; ++j) {
      if (i == j) {
        matrix_.Set(i, j);
        continue;
      }
      WHYNOT_ASSIGN_OR_RETURN(
          bool sub,
          SubsumedS(concepts_[static_cast<size_t>(i)],
                    concepts_[static_cast<size_t>(j)], instance_->schema(),
                    options.schema_options));
      if (sub) matrix_.Set(i, j);
    }
  }
  return Status::OK();
}

std::string LsOntology::ConceptName(onto::ConceptId id) const {
  return concepts_[static_cast<size_t>(id)].ToString(&instance_->schema());
}

bool LsOntology::Subsumes(onto::ConceptId sub, onto::ConceptId super) const {
  return matrix_.Get(sub, super);
}

onto::ExtSet LsOntology::ComputeExt(onto::ConceptId id,
                                    const rel::Instance& instance,
                                    ValuePool* pool) const {
  Extension e = Eval(concepts_[static_cast<size_t>(id)], instance);
  if (e.all) return onto::ExtSet::All();
  // Re-intern from the instance pool ids (plus the boxed extras) into the
  // ontology pool — no intermediate boxed vector.
  const ValuePool& instance_pool = instance.pool();
  std::vector<ValueId> ids;
  ids.reserve(e.ids().size() + e.extras().size());
  for (ValueId vid : e.ids()) ids.push_back(pool->Intern(instance_pool.Get(vid)));
  for (const Value& v : e.extras()) ids.push_back(pool->Intern(v));
  return onto::ExtSet::Finite(std::move(ids));
}

}  // namespace whynot::ls
