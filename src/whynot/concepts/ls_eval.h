#ifndef WHYNOT_CONCEPTS_LS_EVAL_H_
#define WHYNOT_CONCEPTS_LS_EVAL_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "whynot/common/dense_bitmap.h"
#include "whynot/common/hybrid_bitmap.h"
#include "whynot/common/value.h"
#include "whynot/concepts/ls_concept.h"
#include "whynot/relational/instance.h"

namespace whynot::ls {

/// The extension ⟦C⟧ᴵ of an LS concept (Section 4.2): either a finite set
/// of constants or — for ⊤ and concepts equivalent to it — all of Const.
///
/// Finite sets are stored in *id space*: `ids()` are instance-pool
/// `ValueId`s kept in pool *rank* order (ascending in the Value total
/// order), with a lazily built `DenseBitmap` over the pool universe giving
/// O(1) membership and word-parallel SubsetOf/Intersect. Constants that
/// were never interned into the pool (nominals of values outside the
/// instance, pool-less `Of()` extensions) live in `extras()`, a sorted
/// boxed side vector that stays tiny (at most the nominal constants of the
/// concept). The classic boxed `values` vector survives as `values()`, a
/// lazily materialized compatibility view (mirroring the columnar store's
/// tuple view), so cold call sites keep their shape while the explanation
/// searches run on ids end to end.
///
/// NOTE: the lazy mutable caches (bitmap, boxed view) make an Extension
/// single-threaded, const methods included. Copies share the already-built
/// caches (they are immutable once built; the pool must outlive every
/// extension referencing it).
class Extension {
 public:
  /// Extensions equivalent to ⊤ keep this flag set (Const is countably
  /// infinite; no finite enumeration exists). Public by design: the
  /// searches branch on it constantly.
  bool all = false;

  /// The empty extension.
  Extension() = default;

  static Extension All() {
    Extension e;
    e.all = true;
    return e;
  }

  /// Pool-less boxed extension (compatibility constructor: sorts and
  /// dedups). All operations fall back to boxed merges.
  static Extension Of(std::vector<Value> vals);

  /// Finite extension of pool ids (need not be sorted; rank-sorted and
  /// deduplicated here). `pool` must outlive the extension.
  static Extension OfIds(const ValuePool* pool, std::vector<ValueId> ids);

  /// {v} relative to `pool`: an id if `v` is interned, an extra otherwise.
  static Extension Nominal(const ValuePool* pool, const Value& v);

  bool empty() const { return !all && ids_.empty() && extras_.empty(); }

  /// Pool the ids refer to; nullptr for pool-less / All extensions.
  const ValuePool* pool() const { return pool_; }

  /// Interned members as pool ids, ascending in pool rank order (i.e. in
  /// the Value total order). Requires !all.
  const std::vector<ValueId>& ids() const { return ids_; }

  /// Members that are not in the pool, sorted by the Value order.
  const std::vector<Value>& extras() const { return extras_; }

  /// Boxed compatibility view: all members sorted by the Value total
  /// order, materialized on first use and cached.
  const std::vector<Value>& values() const;

  bool Contains(const Value& v) const;

  /// O(1) membership for an id of pool(). Pool-less extensions hold no
  /// ids, so this returns false for them (all but ⊤/All); use
  /// Contains(Value) when the extension may be pool-less.
  bool ContainsId(ValueId id) const {
    if (all) return true;
    if (bits_ != nullptr) return bits_->Test(id);
    if (hyb_ != nullptr) return hyb_->Test(id);
    return ContainsIdSlow(id);
  }

  /// Membership of a value with its pool lookup precomputed (`id` must be
  /// pool()->Lookup(v), -1 if not interned). The hot form for answer and
  /// active-domain probes: one bitmap test for interned values, a
  /// binary search over the (tiny) extras vector otherwise. An id miss
  /// still falls back to the extras — a member recorded as an extra stays
  /// one if the pool interns the value afterwards.
  bool ContainsInterned(ValueId id, const Value& v) const {
    if (all) return true;
    if (pool_ != nullptr && id >= 0 && ContainsId(id)) return true;
    return !extras_.empty() && ContainsBoxedSlow(v);
  }

  bool SubsetOf(const Extension& o) const;
  Extension Intersect(const Extension& o) const;

  bool operator==(const Extension& o) const {
    if (all != o.all) return false;
    if (all) return true;
    if (pool_ == o.pool_) return ids_ == o.ids_ && extras_ == o.extras_;
    return values() == o.values();
  }

  /// |ext|, with All treated as "infinite" (SIZE_MAX); used by the
  /// cardinality-based preference of Section 6.
  size_t CardinalityOrInfinite() const;

  /// The word-parallel mirror of ids() over the pool universe, built on
  /// first use. Requires !all and a pool. Force-dense: callers that need
  /// raw words (tests, DecodeTo-style consumers) get the flat form; the
  /// internal probe paths go through the adaptive representation instead.
  const DenseBitmap& bits() const;
  bool has_bitmap() const { return bits_ != nullptr; }

  /// Whether the lazy representation froze to chunked hybrid containers
  /// (sparse-in-pool extensions: O(cardinality) bytes, not O(universe)).
  bool has_hybrid() const { return hyb_ != nullptr; }
  const HybridBitmap& hybrid() const { return *hyb_; }

  /// Heap + object bytes across ids, extras, and whichever lazy caches are
  /// built (shallow for boxed Values).
  size_t MemoryBytes() const;

  /// Pre-builds the lazy membership representation that ContainsId would
  /// otherwise build on first probe, making subsequent ContainsId /
  /// ContainsInterned calls read-only — the shared concept cache calls
  /// this at publish time (a serial point) so frozen extensions can be
  /// probed from many workers concurrently. Mirrors ContainsIdSlow
  /// exactly: small id sets stay rep-less (their linear scan is already
  /// read-only). The boxed values() view is deliberately NOT built here —
  /// it stays lazy and single-threaded; shared-cache consumers are
  /// id-space end to end.
  void Freeze() const;

  std::string ToString() const;

 private:
  bool ContainsIdSlow(ValueId id) const;
  bool ContainsBoxedSlow(const Value& v) const;
  /// Builds the lazy membership representation if absent: a dense mirror
  /// when the ids are dense in the pool universe, hybrid containers when
  /// sparse (freeze-time selection — an Extension is read-mostly once it
  /// starts answering ContainsId).
  void EnsureRep() const;

  const ValuePool* pool_ = nullptr;
  std::vector<ValueId> ids_;    // rank-sorted pool ids
  std::vector<Value> extras_;   // sorted members outside the pool
  // Lazy caches, shared across copies once built (immutable thereafter).
  // bits_ and hyb_ are mutually exclusive unless bits() forces the dense
  // form next to an existing hybrid.
  mutable std::shared_ptr<const DenseBitmap> bits_;
  mutable std::shared_ptr<const HybridBitmap> hyb_;
  mutable std::shared_ptr<const std::vector<Value>> boxed_;
};

/// ⟦C⟧ᴵ per the inductive semantics of Section 4.2 (polynomial time).
Extension Eval(const LsConcept& concept_expr, const rel::Instance& instance);

/// ⟦D⟧ᴵ of a single conjunct.
Extension Eval(const Conjunct& conjunct, const rel::Instance& instance);

/// Memoizes extensions of one (fixed) instance at three granularities.
/// Concepts are intersections of conjuncts, and the greedy searches
/// (Algorithm 2 and the MGE checks) re-evaluate candidates whose
/// conjuncts — projections of the same few (relation, attr) pairs plus
/// nominals — repeat constantly:
///
///  * per (relation, attr): the selection-free projection π_A(R), shared
///    by every conjunct over that column (it is the instance's cached
///    distinct column re-expressed as an Extension);
///  * per conjunct: selections and nominals, keyed structurally;
///  * per concept: whole intersections, so IncrementalSearch's inner loop
///    (one probe per active-domain constant) does not even re-intersect.
///
/// The instance must not change while the cache is alive. Returned
/// references are stable for the cache's lifetime (node-based maps), which
/// the explain layer's answer-cover kernel relies on for identity-keyed
/// cover bitmaps.
class EvalCache {
 public:
  explicit EvalCache(const rel::Instance* instance) : instance_(instance) {}

  const rel::Instance& instance() const { return *instance_; }

  /// ⟦C⟧ᴵ via cached conjunct extensions, memoized per concept.
  const Extension& Eval(const LsConcept& concept_expr);

  /// ⟦D⟧ᴵ, computed once per distinct conjunct.
  const Extension& EvalConjunct(const Conjunct& conjunct);

  /// ⟦π_attr(relation)⟧ᴵ, computed once per (relation, attr) pair.
  const Extension& Projection(const std::string& relation, int attr);

  /// Approximate residency of the memoized extensions (shallow for the
  /// structural keys).
  size_t MemoryBytes() const;

 private:
  const rel::Instance* instance_;
  std::map<std::pair<std::string, int>, Extension> projection_exts_;
  std::map<Conjunct, Extension> conjunct_exts_;
  std::map<LsConcept, Extension> concept_exts_;
};

/// C1 ⊑_I C2 : ⟦C1⟧ᴵ ⊆ ⟦C2⟧ᴵ (Proposition 4.1, PTIME).
bool SubsumedI(const LsConcept& c1, const LsConcept& c2,
               const rel::Instance& instance);

/// C1 ≡_{O_I} C2 : equal extensions on I (Section 6).
bool EquivalentI(const LsConcept& c1, const LsConcept& c2,
                 const rel::Instance& instance);

/// Strict subsumption: C1 ⊑_I C2 and not C2 ⊑_I C1.
bool StrictlySubsumedI(const LsConcept& c1, const LsConcept& c2,
                       const rel::Instance& instance);

}  // namespace whynot::ls

#endif  // WHYNOT_CONCEPTS_LS_EVAL_H_
