#ifndef WHYNOT_CONCEPTS_LS_EVAL_H_
#define WHYNOT_CONCEPTS_LS_EVAL_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "whynot/common/value.h"
#include "whynot/concepts/ls_concept.h"
#include "whynot/relational/instance.h"

namespace whynot::ls {

/// The extension ⟦C⟧ᴵ of an LS concept (Section 4.2): either a finite
/// sorted set of constants or — for ⊤ and concepts equivalent to it — all
/// of Const.
struct Extension {
  bool all = false;
  std::vector<Value> values;  // sorted, deduplicated; empty if all

  static Extension All() { return Extension{true, {}}; }
  static Extension Of(std::vector<Value> vals);

  bool empty() const { return !all && values.empty(); }
  bool Contains(const Value& v) const;
  bool SubsetOf(const Extension& o) const;
  Extension Intersect(const Extension& o) const;
  bool operator==(const Extension& o) const {
    return all == o.all && values == o.values;
  }

  /// |ext|, with All treated as "infinite" (SIZE_MAX); used by the
  /// cardinality-based preference of Section 6.
  size_t CardinalityOrInfinite() const;

  std::string ToString() const;
};

/// ⟦C⟧ᴵ per the inductive semantics of Section 4.2 (polynomial time).
Extension Eval(const LsConcept& concept_expr, const rel::Instance& instance);

/// ⟦D⟧ᴵ of a single conjunct.
Extension Eval(const Conjunct& conjunct, const rel::Instance& instance);

/// Memoizes extensions of one (fixed) instance at three granularities.
/// Concepts are intersections of conjuncts, and the greedy searches
/// (Algorithm 2 and the MGE checks) re-evaluate candidates whose
/// conjuncts — projections of the same few (relation, attr) pairs plus
/// nominals — repeat constantly:
///
///  * per (relation, attr): the selection-free projection π_A(R), shared
///    by every conjunct over that column (it is the instance's cached
///    distinct column re-expressed as an Extension);
///  * per conjunct: selections and nominals, keyed structurally;
///  * per concept: whole intersections, so IncrementalSearch's inner loop
///    (one probe per active-domain constant) does not even re-intersect.
///
/// The instance must not change while the cache is alive.
class EvalCache {
 public:
  explicit EvalCache(const rel::Instance* instance) : instance_(instance) {}

  const rel::Instance& instance() const { return *instance_; }

  /// ⟦C⟧ᴵ via cached conjunct extensions, memoized per concept.
  const Extension& Eval(const LsConcept& concept_expr);

  /// ⟦D⟧ᴵ, computed once per distinct conjunct.
  const Extension& EvalConjunct(const Conjunct& conjunct);

  /// ⟦π_attr(relation)⟧ᴵ, computed once per (relation, attr) pair.
  const Extension& Projection(const std::string& relation, int attr);

 private:
  const rel::Instance* instance_;
  std::map<std::pair<std::string, int>, Extension> projection_exts_;
  std::map<Conjunct, Extension> conjunct_exts_;
  std::map<LsConcept, Extension> concept_exts_;
};

/// C1 ⊑_I C2 : ⟦C1⟧ᴵ ⊆ ⟦C2⟧ᴵ (Proposition 4.1, PTIME).
bool SubsumedI(const LsConcept& c1, const LsConcept& c2,
               const rel::Instance& instance);

/// C1 ≡_{O_I} C2 : equal extensions on I (Section 6).
bool EquivalentI(const LsConcept& c1, const LsConcept& c2,
                 const rel::Instance& instance);

/// Strict subsumption: C1 ⊑_I C2 and not C2 ⊑_I C1.
bool StrictlySubsumedI(const LsConcept& c1, const LsConcept& c2,
                       const rel::Instance& instance);

}  // namespace whynot::ls

#endif  // WHYNOT_CONCEPTS_LS_EVAL_H_
