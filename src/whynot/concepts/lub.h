#ifndef WHYNOT_CONCEPTS_LUB_H_
#define WHYNOT_CONCEPTS_LUB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "whynot/common/dense_bitmap.h"
#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/concepts/ls_concept.h"
#include "whynot/relational/instance.h"

namespace whynot::ls {

/// Resource limits for lub-with-selections (Lemma 5.2 is EXPTIME in
/// general; the canonical-box enumeration below is exponential in the
/// relation arity and polynomial for bounded arity, exactly matching the
/// lemma).
struct LubOptions {
  /// Maximum number of distinct canonical boxes enumerated per relation.
  size_t max_boxes_per_relation = 2000000;
};

/// Computes least upper bounds of constant sets in the concept language,
/// relative to one instance (Lemmas 5.1 and 5.2). The context caches the
/// per-relation canonical-box decomposition, so repeated lub calls inside
/// INCREMENTAL SEARCH are cheap.
///
/// Canonical boxes: a conjunction of {=,<,>,<=,>=} selections on one
/// attribute traces an interval, and on a finite column only contiguous
/// runs of the sorted distinct column values are distinguishable; a
/// selection over a relation therefore traces a product of per-attribute
/// runs ("box"). lubσ(X) is the intersection of all selection conjuncts
/// whose A-projection contains X; since that family is upward closed in
/// the traced tuple set, it suffices to intersect the inclusion-minimal
/// valid boxes, which is what LubWithSelections returns.
class LubContext {
 public:
  explicit LubContext(const rel::Instance* instance, LubOptions options = {});

  const rel::Instance& instance() const { return *instance_; }
  /// The resource limits this context was built with (per-worker contexts
  /// in the parallel searches clone them).
  const LubOptions& options() const { return options_; }

  /// lub_I(X) in selection-free LS (Lemma 5.1, PTIME): the conjunction of
  /// every selection-free conjunct whose extension contains X (the nominal
  /// {x} when X = {x}, and every π_A(R) whose column contains X). Returns ⊤
  /// when no conjunct qualifies. X must be non-empty.
  LsConcept LubSelectionFree(const std::vector<Value>& x) const;

  /// lubσ_I(X) in full LS (Lemma 5.2): additionally intersects all valid
  /// selection conjuncts via the canonical-box decomposition. EXPTIME in
  /// general, PTIME for bounded schema arity; the box cap turns blowups
  /// into ResourceExhausted.
  Result<LsConcept> LubWithSelections(const std::vector<Value>& x);

  /// Variants for callers that already hold X sort-deduplicated (the
  /// concept cache probes with canonical keys): skips the defensive
  /// copy + sort the general entry points pay. Results are bit-identical
  /// to the unsorted entry points — lub is a function of the set.
  LsConcept LubSelectionFreeSorted(const std::vector<Value>& sorted_x) const;
  Result<LsConcept> LubWithSelectionsSorted(const std::vector<Value>& sorted_x);

  /// Number of canonical boxes enumerated for `relation` (0 before first
  /// use); exposed for the Lemma 5.2 benchmarks.
  size_t NumBoxes(const std::string& relation);

  /// All distinct selection conjuncts of `relation` — one single-conjunct
  /// concept π_A(σ_box(R)) per (attribute, canonical box) pair. Used when
  /// materializing the full-LS fragment of OI[K] (Proposition 4.2's
  /// intersection-free count).
  Result<std::vector<LsConcept>> CanonicalSelectionConcepts(
      const std::string& relation);

 private:
  struct Box {
    std::vector<Selection> selections;
    std::vector<uint32_t> tuple_indices;  // sorted
    // Per-attribute distinct projection as pool ids in rank order, sized
    // by the relation arity; an empty inner vector means "not yet
    // computed" (boxes always select at least one tuple, so real
    // projections are non-empty). Id space: the validity test against X
    // is an integer std::includes, no boxed Values.
    std::vector<std::vector<ValueId>> id_projections;
  };
  struct RelationBoxes {
    bool built = false;
    Status build_status;
    std::vector<Box> boxes;
  };
  /// Id-space mirror of one distinct column: the ids in rank order plus
  /// their membership bitmap (the word-parallel containment probe of
  /// LubSelectionFree).
  struct IdColumn {
    std::vector<ValueId> rank_sorted;
    DenseBitmap distinct;
  };

  /// Dense index of `relation` in the schema's relation list, or SIZE_MAX.
  /// All per-relation caches are vectors over this index — one hash lookup
  /// per call instead of a string-keyed tree walk.
  size_t RelIndex(const std::string& relation) const;

  Status BuildBoxes(size_t rel_idx, RelationBoxes* out) const;
  RelationBoxes& BoxesFor(size_t rel_idx);

  /// Sorted distinct values per attribute of the relation, built once and
  /// cached (mutable: LubSelectionFree is logically const). NOTE: the lazy
  /// mutable caches make a LubContext single-threaded, const methods
  /// included; give each thread its own context.
  const std::vector<std::vector<Value>>& ColumnsFor(size_t rel_idx) const;
  /// Id-space mirror of ColumnsFor, built together with it.
  const std::vector<IdColumn>& IdColumnsFor(size_t rel_idx) const;
  /// Cold path of ColumnsFor: materializes the columns from the store.
  void BuildColumns(size_t rel_idx) const;

  const rel::Instance* instance_;
  LubOptions options_;
  std::unordered_map<std::string, size_t> rel_index_;
  std::vector<RelationBoxes> boxes_;
  mutable std::vector<std::vector<std::vector<Value>>> columns_;
  mutable std::vector<std::vector<IdColumn>> id_columns_;
  mutable std::vector<bool> columns_built_;
};

}  // namespace whynot::ls

#endif  // WHYNOT_CONCEPTS_LUB_H_
