#include "whynot/concepts/lub.h"

#include <algorithm>
#include <map>
#include <set>

#include "whynot/common/algorithm.h"
#include "whynot/concepts/ls_eval.h"

namespace whynot::ls {

LubContext::LubContext(const rel::Instance* instance, LubOptions options)
    : instance_(instance), options_(options) {
  const auto& relations = instance_->schema().relations();
  rel_index_.reserve(relations.size());
  for (size_t i = 0; i < relations.size(); ++i) {
    rel_index_.emplace(relations[i].name(), i);
  }
  boxes_.resize(relations.size());
  columns_.resize(relations.size());
  id_columns_.resize(relations.size());
  columns_built_.resize(relations.size(), false);
}

size_t LubContext::RelIndex(const std::string& relation) const {
  auto it = rel_index_.find(relation);
  return it == rel_index_.end() ? SIZE_MAX : it->second;
}

void LubContext::BuildColumns(size_t rel_idx) const {
  const rel::RelationDef& def = instance_->schema().relations()[rel_idx];
  const rel::StoredRelation* rel = instance_->Find(def.name());
  const ValuePool& pool = instance_->pool();
  std::vector<std::vector<Value>>& cols = columns_[rel_idx];
  std::vector<IdColumn>& id_cols = id_columns_[rel_idx];
  cols.resize(def.arity());
  id_cols.resize(def.arity());
  for (size_t a = 0; a < def.arity(); ++a) {
    cols[a].clear();
    if (rel == nullptr || rel->empty()) continue;
    // The columnar store already keeps the distinct column; re-order it
    // by the pool's rank index instead of rescanning and re-sorting
    // boxed Values. The id mirror (rank order + membership bitmap) is
    // what the lub loops probe; the boxed copy only feeds selection
    // constants.
    std::vector<ValueId> ids = rel->Index(a).keys;
    id_cols[a].distinct = DenseBitmap(ids);
    std::sort(ids.begin(), ids.end(), [&pool](ValueId x, ValueId y) {
      return pool.Rank(x) < pool.Rank(y);
    });
    cols[a].reserve(ids.size());
    for (ValueId id : ids) cols[a].push_back(pool.Get(id));
    id_cols[a].rank_sorted = std::move(ids);
  }
  columns_built_[rel_idx] = true;
}

const std::vector<std::vector<Value>>& LubContext::ColumnsFor(
    size_t rel_idx) const {
  // Kept small so the built-already fast path inlines into the lub loops.
  if (!columns_built_[rel_idx]) BuildColumns(rel_idx);
  return columns_[rel_idx];
}

const std::vector<LubContext::IdColumn>& LubContext::IdColumnsFor(
    size_t rel_idx) const {
  if (!columns_built_[rel_idx]) BuildColumns(rel_idx);
  return id_columns_[rel_idx];
}

LsConcept LubContext::LubSelectionFree(const std::vector<Value>& x) const {
  std::vector<Value> sorted_x = x;
  SortUnique(&sorted_x);

  std::vector<Conjunct> conjuncts;
  if (sorted_x.size() == 1) {
    conjuncts.push_back(Conjunct::Nominal(sorted_x.front()));
  }
  // Id space: a value outside the pool occurs in no column, so only the
  // nominal (if any) can qualify; otherwise every containment probe is an
  // O(1) bitmap test per element of X.
  const ValuePool& pool = instance_->pool();
  std::vector<ValueId> x_ids;
  x_ids.reserve(sorted_x.size());
  bool all_interned = true;
  for (const Value& v : sorted_x) {
    ValueId id = pool.Lookup(v);
    if (id < 0) {
      all_interned = false;
      break;
    }
    x_ids.push_back(id);
  }
  if (all_interned) {
    const auto& relations = instance_->schema().relations();
    for (size_t r = 0; r < relations.size(); ++r) {
      const rel::RelationDef& def = relations[r];
      const std::vector<IdColumn>& cols = IdColumnsFor(r);
      for (size_t a = 0; a < def.arity(); ++a) {
        const DenseBitmap& distinct = cols[a].distinct;
        bool inside = true;
        for (ValueId id : x_ids) {
          if (!distinct.Test(id)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          conjuncts.push_back(
              Conjunct::Projection(def.name(), static_cast<int>(a)));
        }
      }
    }
  }
  return LsConcept(std::move(conjuncts));
}

Status LubContext::BuildBoxes(size_t rel_idx, RelationBoxes* out) const {
  const rel::RelationDef& def = instance_->schema().relations()[rel_idx];
  const std::string& relation = def.name();
  const rel::StoredRelation* rel = instance_->Find(relation);
  const ValuePool& pool = instance_->pool();
  size_t m = def.arity();
  size_t n = rel == nullptr ? 0 : rel->num_rows();
  if (n == 0) return Status::OK();

  // Sorted distinct values per attribute, and each tuple's value index.
  // In id space the per-tuple position comes from the cached rank-sorted
  // distinct column plus one dense array probe per cell — no boxed binary
  // searches, no hashing.
  const std::vector<std::vector<Value>>& distinct = ColumnsFor(rel_idx);
  const std::vector<IdColumn>& id_cols = IdColumnsFor(rel_idx);
  std::vector<std::vector<int>> tuple_value_index(m,
                                                  std::vector<int>(n, 0));
  std::vector<int> pos(static_cast<size_t>(pool.size()), -1);
  for (size_t j = 0; j < m; ++j) {
    const std::vector<ValueId>& ordered = id_cols[j].rank_sorted;
    for (size_t k = 0; k < ordered.size(); ++k) {
      pos[static_cast<size_t>(ordered[k])] = static_cast<int>(k);
    }
    for (size_t i = 0; i < n; ++i) {
      tuple_value_index[j][i] = pos[static_cast<size_t>(rel->At(i, j))];
    }
    for (ValueId id : ordered) pos[static_cast<size_t>(id)] = -1;
  }

  // Recursive enumeration of per-attribute runs. The trace (selected tuple
  // index set) canonicalizes boxes; duplicates keep the first (fewest
  // selections, because the unconstrained option is enumerated first).
  std::map<std::vector<uint32_t>, size_t> seen;
  size_t enumerated = 0;
  std::vector<Selection> current_sel;
  std::vector<uint32_t> current_tuples(n);
  for (size_t i = 0; i < n; ++i) current_tuples[i] = static_cast<uint32_t>(i);

  // Iterative stack-free recursion via std::function-free lambda recursion.
  Status status = Status::OK();
  auto recurse = [&](auto&& self, size_t j,
                     std::vector<uint32_t> selected) -> void {
    if (!status.ok()) return;
    if (selected.empty()) return;
    if (j == m) {
      if (++enumerated > options_.max_boxes_per_relation) {
        status = Status::ResourceExhausted(
            "canonical box enumeration for relation '" + relation +
            "' exceeded max_boxes_per_relation; lub with selections is "
            "exponential in schema arity (Lemma 5.2)");
        return;
      }
      auto [it, inserted] = seen.emplace(selected, out->boxes.size());
      if (inserted) {
        Box box;
        box.selections = current_sel;
        box.tuple_indices = std::move(selected);
        box.id_projections.resize(m);
        out->boxes.push_back(std::move(box));
      }
      return;
    }
    // Option 1: no constraint on attribute j.
    self(self, j + 1, selected);
    // Option 2: every run [a..b] over the distinct values of attribute j.
    int k = static_cast<int>(distinct[j].size());
    for (int a = 0; a < k; ++a) {
      for (int b = a; b < k; ++b) {
        if (a == 0 && b == k - 1) continue;  // same trace as unconstrained
        std::vector<uint32_t> narrowed;
        for (uint32_t idx : selected) {
          int vi = tuple_value_index[j][idx];
          if (vi >= a && vi <= b) narrowed.push_back(idx);
        }
        if (narrowed.empty()) continue;
        size_t sel_mark = current_sel.size();
        int ja = static_cast<int>(j);
        if (a == b) {
          current_sel.push_back({ja, rel::CmpOp::kEq, distinct[j][a]});
        } else {
          if (a > 0) {
            current_sel.push_back({ja, rel::CmpOp::kGe, distinct[j][a]});
          }
          if (b < k - 1) {
            current_sel.push_back({ja, rel::CmpOp::kLe, distinct[j][b]});
          }
        }
        self(self, j + 1, std::move(narrowed));
        current_sel.resize(sel_mark);
        if (!status.ok()) return;
      }
    }
  };
  recurse(recurse, 0, std::move(current_tuples));
  return status;
}

LubContext::RelationBoxes& LubContext::BoxesFor(size_t rel_idx) {
  RelationBoxes& rb = boxes_[rel_idx];
  if (!rb.built) {
    rb.build_status = BuildBoxes(rel_idx, &rb);
    rb.built = true;
  }
  return rb;
}

size_t LubContext::NumBoxes(const std::string& relation) {
  size_t idx = RelIndex(relation);
  if (idx == SIZE_MAX) return 0;
  return BoxesFor(idx).boxes.size();
}

Result<std::vector<LsConcept>> LubContext::CanonicalSelectionConcepts(
    const std::string& relation) {
  size_t idx = RelIndex(relation);
  if (idx == SIZE_MAX) {
    return Status::NotFound("unknown relation " + relation);
  }
  RelationBoxes& rb = BoxesFor(idx);
  if (!rb.build_status.ok()) return rb.build_status;
  const rel::RelationDef& def = instance_->schema().relations()[idx];
  std::vector<LsConcept> out;
  for (const Box& box : rb.boxes) {
    for (size_t a = 0; a < def.arity(); ++a) {
      out.push_back(LsConcept::Projection(relation, static_cast<int>(a),
                                          box.selections));
    }
  }
  return out;
}

Result<LsConcept> LubContext::LubWithSelections(const std::vector<Value>& x) {
  std::vector<Value> sorted_x = x;
  SortUnique(&sorted_x);

  std::vector<Conjunct> conjuncts;
  if (sorted_x.size() == 1) {
    conjuncts.push_back(Conjunct::Nominal(sorted_x.front()));
  }

  // Id space: box projections are rank-sorted pool ids, the validity test
  // an integer std::includes. An X value outside the pool invalidates
  // every box (no fact mentions it), leaving just the nominal.
  const ValuePool& pool = instance_->pool();
  std::vector<ValueId> x_ids;
  x_ids.reserve(sorted_x.size());
  bool all_interned = true;
  for (const Value& v : sorted_x) {
    ValueId id = pool.Lookup(v);
    if (id < 0) {
      all_interned = false;
      break;
    }
    x_ids.push_back(id);
  }
  auto rank_less = [&pool](ValueId l, ValueId r) {
    return pool.Rank(l) < pool.Rank(r);
  };
  std::sort(x_ids.begin(), x_ids.end(), rank_less);

  const auto& relations = instance_->schema().relations();
  for (size_t r = 0; r < relations.size() && all_interned; ++r) {
    const rel::RelationDef& def = relations[r];
    RelationBoxes& rb = BoxesFor(r);
    if (!rb.build_status.ok()) return rb.build_status;
    const rel::StoredRelation* rel = instance_->Find(def.name());
    for (size_t a = 0; a < def.arity(); ++a) {
      int attr = static_cast<int>(a);
      // Valid boxes: A-projection contains X.
      std::vector<Box*> valid;
      for (Box& box : rb.boxes) {
        std::vector<ValueId>& proj = box.id_projections[a];
        if (proj.empty()) {
          proj.reserve(box.tuple_indices.size());
          for (uint32_t idx : box.tuple_indices) {
            proj.push_back(rel->At(idx, a));
          }
          std::sort(proj.begin(), proj.end(), rank_less);
          proj.erase(std::unique(proj.begin(), proj.end()), proj.end());
        }
        if (std::includes(proj.begin(), proj.end(), x_ids.begin(),
                          x_ids.end(), rank_less)) {
          valid.push_back(&box);
        }
      }
      // Keep inclusion-minimal traces: validity is upward closed in the
      // trace, so the intersection over all valid conjuncts equals the
      // intersection over the minimal ones.
      std::sort(valid.begin(), valid.end(), [](const Box* l, const Box* r) {
        return l->tuple_indices.size() < r->tuple_indices.size();
      });
      std::vector<Box*> minimal;
      for (Box* candidate : valid) {
        bool dominated = false;
        for (Box* kept : minimal) {
          if (std::includes(candidate->tuple_indices.begin(),
                            candidate->tuple_indices.end(),
                            kept->tuple_indices.begin(),
                            kept->tuple_indices.end())) {
            dominated = true;
            break;
          }
        }
        if (!dominated) minimal.push_back(candidate);
      }
      for (Box* box : minimal) {
        conjuncts.push_back(
            Conjunct::Projection(def.name(), attr, box->selections));
      }
    }
  }
  return LsConcept(std::move(conjuncts));
}

}  // namespace whynot::ls
