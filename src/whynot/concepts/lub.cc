#include "whynot/concepts/lub.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "whynot/common/algorithm.h"
#include "whynot/concepts/ls_eval.h"

namespace whynot::ls {

LubContext::LubContext(const rel::Instance* instance, LubOptions options)
    : instance_(instance), options_(options) {
  const auto& relations = instance_->schema().relations();
  rel_index_.reserve(relations.size());
  for (size_t i = 0; i < relations.size(); ++i) {
    rel_index_.emplace(relations[i].name(), i);
  }
  boxes_.resize(relations.size());
  columns_.resize(relations.size());
  id_columns_.resize(relations.size());
  columns_built_.resize(relations.size(), false);
}

size_t LubContext::RelIndex(const std::string& relation) const {
  auto it = rel_index_.find(relation);
  return it == rel_index_.end() ? SIZE_MAX : it->second;
}

void LubContext::BuildColumns(size_t rel_idx) const {
  const rel::RelationDef& def = instance_->schema().relations()[rel_idx];
  const rel::StoredRelation* rel = instance_->Find(def.name());
  const ValuePool& pool = instance_->pool();
  std::vector<std::vector<Value>>& cols = columns_[rel_idx];
  std::vector<IdColumn>& id_cols = id_columns_[rel_idx];
  cols.resize(def.arity());
  id_cols.resize(def.arity());
  for (size_t a = 0; a < def.arity(); ++a) {
    cols[a].clear();
    if (rel == nullptr || rel->empty()) continue;
    // The columnar store already keeps the distinct column; re-order it
    // by the pool's rank index instead of rescanning and re-sorting
    // boxed Values. The id mirror (rank order + membership bitmap) is
    // what the lub loops probe; the boxed copy only feeds selection
    // constants.
    std::vector<ValueId> ids = rel->Index(a).keys;
    id_cols[a].distinct = DenseBitmap(ids);
    std::sort(ids.begin(), ids.end(), [&pool](ValueId x, ValueId y) {
      return pool.Rank(x) < pool.Rank(y);
    });
    cols[a].reserve(ids.size());
    for (ValueId id : ids) cols[a].push_back(pool.Get(id));
    id_cols[a].rank_sorted = std::move(ids);
  }
  columns_built_[rel_idx] = true;
}

const std::vector<std::vector<Value>>& LubContext::ColumnsFor(
    size_t rel_idx) const {
  // Kept small so the built-already fast path inlines into the lub loops.
  if (!columns_built_[rel_idx]) BuildColumns(rel_idx);
  return columns_[rel_idx];
}

const std::vector<LubContext::IdColumn>& LubContext::IdColumnsFor(
    size_t rel_idx) const {
  if (!columns_built_[rel_idx]) BuildColumns(rel_idx);
  return id_columns_[rel_idx];
}

LsConcept LubContext::LubSelectionFree(const std::vector<Value>& x) const {
  std::vector<Value> sorted_x = x;
  SortUnique(&sorted_x);
  return LubSelectionFreeSorted(sorted_x);
}

LsConcept LubContext::LubSelectionFreeSorted(
    const std::vector<Value>& sorted_x) const {
  std::vector<Conjunct> conjuncts;
  if (sorted_x.size() == 1) {
    conjuncts.push_back(Conjunct::Nominal(sorted_x.front()));
  }
  // Id space: a value outside the pool occurs in no column, so only the
  // nominal (if any) can qualify; otherwise every containment probe is an
  // O(1) bitmap test per element of X.
  const ValuePool& pool = instance_->pool();
  std::vector<ValueId> x_ids;
  x_ids.reserve(sorted_x.size());
  bool all_interned = true;
  for (const Value& v : sorted_x) {
    ValueId id = pool.Lookup(v);
    if (id < 0) {
      all_interned = false;
      break;
    }
    x_ids.push_back(id);
  }
  if (all_interned) {
    const auto& relations = instance_->schema().relations();
    for (size_t r = 0; r < relations.size(); ++r) {
      const rel::RelationDef& def = relations[r];
      const std::vector<IdColumn>& cols = IdColumnsFor(r);
      for (size_t a = 0; a < def.arity(); ++a) {
        const DenseBitmap& distinct = cols[a].distinct;
        bool inside = true;
        for (ValueId id : x_ids) {
          if (!distinct.Test(id)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          conjuncts.push_back(
              Conjunct::Projection(def.name(), static_cast<int>(a)));
        }
      }
    }
  }
  return LsConcept(std::move(conjuncts));
}

Status LubContext::BuildBoxes(size_t rel_idx, RelationBoxes* out) const {
  const rel::RelationDef& def = instance_->schema().relations()[rel_idx];
  const std::string& relation = def.name();
  const rel::StoredRelation* rel = instance_->Find(relation);
  const ValuePool& pool = instance_->pool();
  size_t m = def.arity();
  size_t n = rel == nullptr ? 0 : rel->num_rows();
  if (n == 0) return Status::OK();

  // Sorted distinct values per attribute, and each tuple's value index.
  // In id space the per-tuple position comes from the cached rank-sorted
  // distinct column plus one dense array probe per cell — no boxed binary
  // searches, no hashing.
  const std::vector<std::vector<Value>>& distinct = ColumnsFor(rel_idx);
  const std::vector<IdColumn>& id_cols = IdColumnsFor(rel_idx);
  std::vector<std::vector<int>> tuple_value_index(m,
                                                  std::vector<int>(n, 0));
  std::vector<int> pos(static_cast<size_t>(pool.size()), -1);
  for (size_t j = 0; j < m; ++j) {
    const std::vector<ValueId>& ordered = id_cols[j].rank_sorted;
    for (size_t k = 0; k < ordered.size(); ++k) {
      pos[static_cast<size_t>(ordered[k])] = static_cast<int>(k);
    }
    for (size_t i = 0; i < n; ++i) {
      tuple_value_index[j][i] = pos[static_cast<size_t>(rel->At(i, j))];
    }
    for (ValueId id : ordered) pos[static_cast<size_t>(id)] = -1;
  }

  // Columnar run-length narrowing state. The selected tuple set lives in a
  // word vector; narrowing to a run [a..b] of attribute j is then one
  // AND-with-mask sweep (prefix mode) or one set-bit walk (scalar mode)
  // instead of the old per-tuple trace copy.
  size_t nwords = (n + 63) / 64;

  // Prefix mode precomputes, per attribute, k+1 prefix bitmaps P[v] with
  // bit i set iff tuple_value_index[j][i] < v, so the run mask for [a..b]
  // is P[b+1] &~ P[a] — O(nwords) per candidate run, independent of how
  // many tuples the run matches. That costs (k+1)*nwords words of memory,
  // which is ~n²/64 on near-unique columns; those fall back to the scalar
  // walk over the selected bits (same O(popcount) as the old trace copy,
  // without the allocation). Both strategies narrow to identical sets, so
  // the choice is invisible in the output.
  std::vector<std::vector<std::vector<uint64_t>>> prefix(m);
  std::vector<bool> use_prefix(m, false);
  for (size_t j = 0; j < m; ++j) {
    size_t k = distinct[j].size();
    if ((k + 1) * nwords > std::max<size_t>(64 * nwords, 8 * n)) continue;
    use_prefix[j] = true;
    std::vector<std::vector<uint64_t>>& P = prefix[j];
    P.assign(k + 1, std::vector<uint64_t>(nwords, 0));
    for (size_t i = 0; i < n; ++i) {
      size_t vi = static_cast<size_t>(tuple_value_index[j][i]);
      P[vi + 1][i >> 6] |= uint64_t{1} << (i & 63);
    }
    for (size_t v = 1; v <= k; ++v) {
      for (size_t w = 0; w < nwords; ++w) P[v][w] |= P[v - 1][w];
    }
  }

  auto none_set = [nwords](const std::vector<uint64_t>& words) {
    for (size_t w = 0; w < nwords; ++w) {
      if (words[w] != 0) return false;
    }
    return true;
  };

  // Recursive enumeration of per-attribute runs. The trace (selected tuple
  // set, as its word vector) canonicalizes boxes; duplicates keep the
  // first (fewest selections, because the unconstrained option is
  // enumerated first).
  std::map<std::vector<uint64_t>, size_t> seen;
  size_t enumerated = 0;
  std::vector<Selection> current_sel;
  std::vector<uint64_t> all_tuples(nwords, 0);
  for (size_t i = 0; i < n; ++i) {
    all_tuples[i >> 6] |= uint64_t{1} << (i & 63);
  }

  // Iterative stack-free recursion via std::function-free lambda recursion.
  Status status = Status::OK();
  auto recurse = [&](auto&& self, size_t j,
                     std::vector<uint64_t> selected) -> void {
    if (!status.ok()) return;
    if (none_set(selected)) return;
    if (j == m) {
      if (++enumerated > options_.max_boxes_per_relation) {
        status = Status::ResourceExhausted(
            "canonical box enumeration for relation '" + relation +
            "' exceeded max_boxes_per_relation; lub with selections is "
            "exponential in schema arity (Lemma 5.2)");
        return;
      }
      auto [it, inserted] = seen.emplace(selected, out->boxes.size());
      if (inserted) {
        Box box;
        box.selections = current_sel;
        // Decode set bits ascending: tuple_indices stays index-sorted,
        // which the projection fill and minimality includes rely on.
        for (size_t w = 0; w < nwords; ++w) {
          uint64_t bits = selected[w];
          while (bits != 0) {
            uint32_t i = static_cast<uint32_t>(
                (w << 6) + static_cast<size_t>(__builtin_ctzll(bits)));
            box.tuple_indices.push_back(i);
            bits &= bits - 1;
          }
        }
        box.id_projections.resize(m);
        out->boxes.push_back(std::move(box));
      }
      return;
    }
    // Option 1: no constraint on attribute j.
    self(self, j + 1, selected);
    // Option 2: every run [a..b] over the distinct values of attribute j.
    int k = static_cast<int>(distinct[j].size());
    std::vector<uint64_t> narrowed(nwords);
    for (int a = 0; a < k; ++a) {
      for (int b = a; b < k; ++b) {
        if (a == 0 && b == k - 1) continue;  // same trace as unconstrained
        bool any = false;
        if (use_prefix[j]) {
          const std::vector<uint64_t>& lo = prefix[j][static_cast<size_t>(a)];
          const std::vector<uint64_t>& hi =
              prefix[j][static_cast<size_t>(b) + 1];
          for (size_t w = 0; w < nwords; ++w) {
            narrowed[w] = selected[w] & hi[w] & ~lo[w];
            any |= narrowed[w] != 0;
          }
        } else {
          std::fill(narrowed.begin(), narrowed.end(), 0);
          for (size_t w = 0; w < nwords; ++w) {
            uint64_t bits = selected[w];
            while (bits != 0) {
              size_t i = (w << 6) + static_cast<size_t>(__builtin_ctzll(bits));
              bits &= bits - 1;
              int vi = tuple_value_index[j][i];
              if (vi >= a && vi <= b) {
                narrowed[w] |= uint64_t{1} << (i & 63);
                any = true;
              }
            }
          }
        }
        if (!any) continue;
        size_t sel_mark = current_sel.size();
        int ja = static_cast<int>(j);
        if (a == b) {
          current_sel.push_back({ja, rel::CmpOp::kEq, distinct[j][a]});
        } else {
          if (a > 0) {
            current_sel.push_back({ja, rel::CmpOp::kGe, distinct[j][a]});
          }
          if (b < k - 1) {
            current_sel.push_back({ja, rel::CmpOp::kLe, distinct[j][b]});
          }
        }
        self(self, j + 1, narrowed);
        current_sel.resize(sel_mark);
        if (!status.ok()) return;
      }
    }
  };
  recurse(recurse, 0, std::move(all_tuples));
  return status;
}

LubContext::RelationBoxes& LubContext::BoxesFor(size_t rel_idx) {
  RelationBoxes& rb = boxes_[rel_idx];
  if (!rb.built) {
    rb.build_status = BuildBoxes(rel_idx, &rb);
    rb.built = true;
  }
  return rb;
}

size_t LubContext::NumBoxes(const std::string& relation) {
  size_t idx = RelIndex(relation);
  if (idx == SIZE_MAX) return 0;
  return BoxesFor(idx).boxes.size();
}

Result<std::vector<LsConcept>> LubContext::CanonicalSelectionConcepts(
    const std::string& relation) {
  size_t idx = RelIndex(relation);
  if (idx == SIZE_MAX) {
    return Status::NotFound("unknown relation " + relation);
  }
  RelationBoxes& rb = BoxesFor(idx);
  if (!rb.build_status.ok()) return rb.build_status;
  const rel::RelationDef& def = instance_->schema().relations()[idx];
  std::vector<LsConcept> out;
  for (const Box& box : rb.boxes) {
    for (size_t a = 0; a < def.arity(); ++a) {
      out.push_back(LsConcept::Projection(relation, static_cast<int>(a),
                                          box.selections));
    }
  }
  return out;
}

Result<LsConcept> LubContext::LubWithSelections(const std::vector<Value>& x) {
  std::vector<Value> sorted_x = x;
  SortUnique(&sorted_x);
  return LubWithSelectionsSorted(sorted_x);
}

Result<LsConcept> LubContext::LubWithSelectionsSorted(
    const std::vector<Value>& sorted_x) {
  std::vector<Conjunct> conjuncts;
  if (sorted_x.size() == 1) {
    conjuncts.push_back(Conjunct::Nominal(sorted_x.front()));
  }

  // Id space: box projections are rank-sorted pool ids, the validity test
  // an integer std::includes. An X value outside the pool invalidates
  // every box (no fact mentions it), leaving just the nominal.
  const ValuePool& pool = instance_->pool();
  std::vector<ValueId> x_ids;
  x_ids.reserve(sorted_x.size());
  bool all_interned = true;
  for (const Value& v : sorted_x) {
    ValueId id = pool.Lookup(v);
    if (id < 0) {
      all_interned = false;
      break;
    }
    x_ids.push_back(id);
  }
  auto rank_less = [&pool](ValueId l, ValueId r) {
    return pool.Rank(l) < pool.Rank(r);
  };
  std::sort(x_ids.begin(), x_ids.end(), rank_less);

  const auto& relations = instance_->schema().relations();
  for (size_t r = 0; r < relations.size() && all_interned; ++r) {
    const rel::RelationDef& def = relations[r];
    RelationBoxes& rb = BoxesFor(r);
    if (!rb.build_status.ok()) return rb.build_status;
    const rel::StoredRelation* rel = instance_->Find(def.name());
    for (size_t a = 0; a < def.arity(); ++a) {
      int attr = static_cast<int>(a);
      // Valid boxes: A-projection contains X.
      std::vector<Box*> valid;
      for (Box& box : rb.boxes) {
        std::vector<ValueId>& proj = box.id_projections[a];
        if (proj.empty()) {
          proj.reserve(box.tuple_indices.size());
          for (uint32_t idx : box.tuple_indices) {
            proj.push_back(rel->At(idx, a));
          }
          std::sort(proj.begin(), proj.end(), rank_less);
          proj.erase(std::unique(proj.begin(), proj.end()), proj.end());
        }
        if (std::includes(proj.begin(), proj.end(), x_ids.begin(),
                          x_ids.end(), rank_less)) {
          valid.push_back(&box);
        }
      }
      // Keep inclusion-minimal traces: validity is upward closed in the
      // trace, so the intersection over all valid conjuncts equals the
      // intersection over the minimal ones.
      std::sort(valid.begin(), valid.end(), [](const Box* l, const Box* r) {
        return l->tuple_indices.size() < r->tuple_indices.size();
      });
      std::vector<Box*> minimal;
      for (Box* candidate : valid) {
        bool dominated = false;
        for (Box* kept : minimal) {
          if (std::includes(candidate->tuple_indices.begin(),
                            candidate->tuple_indices.end(),
                            kept->tuple_indices.begin(),
                            kept->tuple_indices.end())) {
            dominated = true;
            break;
          }
        }
        if (!dominated) minimal.push_back(candidate);
      }
      for (Box* box : minimal) {
        conjuncts.push_back(
            Conjunct::Projection(def.name(), attr, box->selections));
      }
    }
  }
  return LsConcept(std::move(conjuncts));
}

}  // namespace whynot::ls
