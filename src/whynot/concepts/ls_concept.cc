#include "whynot/concepts/ls_concept.h"

#include <algorithm>

#include "whynot/common/strings.h"

namespace whynot::ls {

bool Selection::operator==(const Selection& o) const {
  return attr == o.attr && op == o.op && constant == o.constant;
}

bool Selection::operator<(const Selection& o) const {
  if (attr != o.attr) return attr < o.attr;
  if (op != o.op) return op < o.op;
  return constant < o.constant;
}

Conjunct Conjunct::Top() { return Conjunct{}; }

Conjunct Conjunct::Nominal(Value v) {
  Conjunct c;
  c.kind = Kind::kNominal;
  c.nominal = std::move(v);
  return c;
}

Conjunct Conjunct::Projection(std::string relation, int attr,
                              std::vector<Selection> selections) {
  Conjunct c;
  c.kind = Kind::kProjection;
  c.relation = std::move(relation);
  c.attr = attr;
  std::sort(selections.begin(), selections.end());
  selections.erase(std::unique(selections.begin(), selections.end()),
                   selections.end());
  c.selections = std::move(selections);
  return c;
}

bool Conjunct::operator==(const Conjunct& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case Kind::kTop:
      return true;
    case Kind::kNominal:
      return nominal == o.nominal;
    case Kind::kProjection:
      return relation == o.relation && attr == o.attr &&
             selections == o.selections;
  }
  return false;
}

bool Conjunct::operator<(const Conjunct& o) const {
  if (kind != o.kind) return kind < o.kind;
  switch (kind) {
    case Kind::kTop:
      return false;
    case Kind::kNominal:
      return nominal < o.nominal;
    case Kind::kProjection:
      if (relation != o.relation) return relation < o.relation;
      if (attr != o.attr) return attr < o.attr;
      return std::lexicographical_compare(selections.begin(), selections.end(),
                                          o.selections.begin(),
                                          o.selections.end());
  }
  return false;
}

size_t Conjunct::Length() const {
  switch (kind) {
    case Kind::kTop:
    case Kind::kNominal:
      return 1;
    case Kind::kProjection:
      return 2 + 3 * selections.size();  // relation + attr + (attr op const)*
  }
  return 1;
}

std::string Conjunct::ToString(const rel::Schema* schema) const {
  switch (kind) {
    case Kind::kTop:
      return "top";
    case Kind::kNominal:
      return "{" + nominal.ToLiteral() + "}";
    case Kind::kProjection: {
      const rel::RelationDef* def =
          schema != nullptr ? schema->Find(relation) : nullptr;
      auto attr_name = [&](int a) {
        return def != nullptr ? def->AttrName(a) : std::to_string(a);
      };
      std::string inner = relation;
      if (!selections.empty()) {
        std::vector<std::string> conds;
        conds.reserve(selections.size());
        for (const Selection& s : selections) {
          conds.push_back(attr_name(s.attr) + " " + rel::CmpOpName(s.op) + " " +
                          s.constant.ToLiteral());
        }
        inner = "sigma[" + Join(conds, ", ") + "](" + relation + ")";
      }
      return "pi[" + attr_name(attr) + "](" + inner + ")";
    }
  }
  return "top";
}

LsConcept::LsConcept(std::vector<Conjunct> conjuncts) {
  // Canonical form: drop ⊤ conjuncts (the empty intersection is ⊤), sort,
  // deduplicate.
  for (Conjunct& c : conjuncts) {
    if (c.kind != Conjunct::Kind::kTop) conjuncts_.push_back(std::move(c));
  }
  std::sort(conjuncts_.begin(), conjuncts_.end());
  conjuncts_.erase(std::unique(conjuncts_.begin(), conjuncts_.end()),
                   conjuncts_.end());
}

bool LsConcept::selection_free() const {
  for (const Conjunct& c : conjuncts_) {
    if (!c.selection_free()) return false;
  }
  return true;
}

bool LsConcept::IsMinimal() const {
  return conjuncts_.size() <= 1 && selection_free();
}

LsConcept LsConcept::Intersect(const LsConcept& other) const {
  std::vector<Conjunct> all = conjuncts_;
  all.insert(all.end(), other.conjuncts_.begin(), other.conjuncts_.end());
  return LsConcept(std::move(all));
}

std::vector<Value> LsConcept::Constants() const {
  std::vector<Value> out;
  for (const Conjunct& c : conjuncts_) {
    if (c.kind == Conjunct::Kind::kNominal) out.push_back(c.nominal);
    for (const Selection& s : c.selections) out.push_back(s.constant);
  }
  return out;
}

size_t LsConcept::Length() const {
  if (conjuncts_.empty()) return 1;
  size_t n = 0;
  for (const Conjunct& c : conjuncts_) n += c.Length();
  return n;
}

std::string LsConcept::ToString(const rel::Schema* schema) const {
  if (conjuncts_.empty()) return "top";
  std::vector<std::string> parts;
  parts.reserve(conjuncts_.size());
  for (const Conjunct& c : conjuncts_) parts.push_back(c.ToString(schema));
  return Join(parts, " & ");
}

std::string LsConcept::ToSql(const rel::Schema& schema) const {
  if (conjuncts_.empty()) return "any constant";
  std::vector<std::string> parts;
  for (const Conjunct& c : conjuncts_) {
    switch (c.kind) {
      case Conjunct::Kind::kTop:
        break;
      case Conjunct::Kind::kNominal:
        parts.push_back(c.nominal.ToLiteral());
        break;
      case Conjunct::Kind::kProjection: {
        const rel::RelationDef* def = schema.Find(c.relation);
        auto attr_name = [&](int a) {
          return def != nullptr ? def->AttrName(a) : std::to_string(a);
        };
        std::string sql = attr_name(c.attr) + " from " + c.relation;
        if (!c.selections.empty()) {
          std::vector<std::string> conds;
          for (const Selection& s : c.selections) {
            conds.push_back(attr_name(s.attr) + rel::CmpOpName(s.op) +
                            s.constant.ToLiteral());
          }
          sql += " where " + Join(conds, " AND ");
        }
        parts.push_back(sql);
      }
    }
  }
  return Join(parts, " AND ");
}

}  // namespace whynot::ls
