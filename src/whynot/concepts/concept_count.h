#ifndef WHYNOT_CONCEPTS_CONCEPT_COUNT_H_
#define WHYNOT_CONCEPTS_CONCEPT_COUNT_H_

#include <cstdint>
#include <string>

#include "whynot/relational/schema.h"

namespace whynot::ls {

/// A count that may overflow uint64; log2 is always maintained so that the
/// double-exponential growth of Proposition 4.2 can still be reported.
struct BigCount {
  uint64_t exact = 0;   // valid iff !overflow
  bool overflow = false;
  double log2 = 0.0;    // log2 of the count (approximate when overflowed)

  std::string ToString() const;
};

/// Counts of syntactically distinct concepts per language fragment over a
/// schema and a constant set of size `num_constants` (Proposition 4.2):
///
///  * LminS[K] (no σ, no ⊓): 1 + |K| + Σ_R arity(R)      — polynomial;
///  * intersection-free LS[K]: conjunct choices with selections
///    (per attribute: =, and interval bounds over K)      — single exp;
///  * selection-free LS[K]: subsets of LminS conjuncts    — single exp;
///  * full LS[K]: subsets of intersection-free concepts   — double exp.
///
/// Counts are syntactic upper bounds "modulo trivial normalization"
/// (sorted, deduplicated conjuncts; per-attribute interval form); the
/// proposition's statement is about counts modulo logical equivalence,
/// which these bound from above and match in order of growth.
struct ConceptCounts {
  BigCount minimal;            // LminS[K]
  BigCount intersection_free;  // intersection-free LS[K]
  BigCount selection_free;     // selection-free LS[K]
  BigCount full;               // LS[K]
};

ConceptCounts CountConcepts(const rel::Schema& schema, size_t num_constants);

}  // namespace whynot::ls

#endif  // WHYNOT_CONCEPTS_CONCEPT_COUNT_H_
