#include "whynot/concepts/ls_eval.h"

#include <algorithm>
#include <limits>

#include "whynot/common/strings.h"
#include "whynot/relational/interval.h"

namespace whynot::ls {

namespace {

/// Renders distinct instance-pool ids as an Extension: sorted by the Value
/// total order via the pool's rank index (ids are unique per value, so no
/// further dedup is needed once the ids are distinct).
Extension ExtensionFromDistinctIds(const ValuePool& pool,
                                   std::vector<ValueId> ids) {
  std::sort(ids.begin(), ids.end(), [&pool](ValueId a, ValueId b) {
    return pool.Rank(a) < pool.Rank(b);
  });
  Extension out;
  out.values.reserve(ids.size());
  for (ValueId id : ids) out.values.push_back(pool.Get(id));
  return out;
}

}  // namespace

Extension Extension::Of(std::vector<Value> vals) {
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return Extension{false, std::move(vals)};
}

bool Extension::Contains(const Value& v) const {
  if (all) return true;
  return std::binary_search(values.begin(), values.end(), v);
}

bool Extension::SubsetOf(const Extension& o) const {
  if (o.all) return true;
  if (all) return false;
  return std::includes(o.values.begin(), o.values.end(), values.begin(),
                       values.end());
}

Extension Extension::Intersect(const Extension& o) const {
  if (all) return o;
  if (o.all) return *this;
  Extension out;
  std::set_intersection(values.begin(), values.end(), o.values.begin(),
                        o.values.end(), std::back_inserter(out.values));
  return out;
}

size_t Extension::CardinalityOrInfinite() const {
  return all ? std::numeric_limits<size_t>::max() : values.size();
}

std::string Extension::ToString() const {
  if (all) return "Const";
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const Value& v : values) parts.push_back(v.ToString());
  return "{" + Join(parts, ", ") + "}";
}

Extension Eval(const Conjunct& conjunct, const rel::Instance& instance) {
  switch (conjunct.kind) {
    case Conjunct::Kind::kTop:
      return Extension::All();
    case Conjunct::Kind::kNominal:
      return Extension::Of({conjunct.nominal});
    case Conjunct::Kind::kProjection: {
      const rel::StoredRelation* rel = instance.Find(conjunct.relation);
      if (rel == nullptr || rel->empty()) return Extension();
      const ValuePool& pool = instance.pool();
      size_t attr = static_cast<size_t>(conjunct.attr);

      // Selection-free projection: exactly the distinct column, which the
      // columnar store already keeps as the index keys (for relations big
      // enough to index; small ones dedup a direct column copy).
      if (conjunct.selections.empty()) {
        if (rel->num_rows() >= rel::StoredRelation::kIndexMinRows) {
          return ExtensionFromDistinctIds(pool, rel->Index(attr).keys);
        }
        std::vector<ValueId> ids = rel->Column(attr);
        std::sort(ids.begin(), ids.end());
        ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
        return ExtensionFromDistinctIds(pool, std::move(ids));
      }

      // Pre-resolve every selection to a rank range (values only pass if
      // interned); pick an equality selection's posting list as the driver
      // when one exists, otherwise scan the columns.
      std::vector<rel::RankRange> ranges;
      ranges.reserve(conjunct.selections.size());
      const Selection* eq_driver = nullptr;
      for (const Selection& s : conjunct.selections) {
        rel::RankRange r = rel::ResolveCmpRange(pool, s.op, s.constant);
        if (r.empty()) return Extension();
        ranges.push_back(r);
        if (eq_driver == nullptr && s.op == rel::CmpOp::kEq) eq_driver = &s;
      }

      auto row_passes = [&](size_t row) {
        for (size_t i = 0; i < ranges.size(); ++i) {
          const Selection& s = conjunct.selections[i];
          ValueId id = rel->At(row, static_cast<size_t>(s.attr));
          if (!ranges[i].Contains(pool.Rank(id))) return false;
        }
        return true;
      };

      if (rel->num_rows() < rel::StoredRelation::kIndexMinRows) {
        eq_driver = nullptr;  // scanning a tiny relation beats indexing it
      }
      std::vector<ValueId> out;
      if (eq_driver != nullptr) {
        ValueId id = pool.Lookup(eq_driver->constant);
        if (id < 0) return Extension();
        auto [begin, end] =
            rel->RowsEqual(static_cast<size_t>(eq_driver->attr), id);
        for (const uint32_t* r = begin; r != end; ++r) {
          if (row_passes(*r)) out.push_back(rel->At(*r, attr));
        }
      } else {
        for (size_t row = 0; row < rel->num_rows(); ++row) {
          if (row_passes(row)) out.push_back(rel->At(row, attr));
        }
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return ExtensionFromDistinctIds(pool, std::move(out));
    }
  }
  return Extension::All();
}

Extension Eval(const LsConcept& concept_expr, const rel::Instance& instance) {
  Extension ext = Extension::All();
  for (const Conjunct& c : concept_expr.conjuncts()) {
    ext = ext.Intersect(Eval(c, instance));
    if (ext.empty()) break;
  }
  return ext;
}

const Extension& EvalCache::Projection(const std::string& relation, int attr) {
  auto key = std::make_pair(relation, attr);
  auto it = projection_exts_.find(key);
  if (it == projection_exts_.end()) {
    it = projection_exts_
             .emplace(std::move(key),
                      ls::Eval(Conjunct::Projection(relation, attr),
                               *instance_))
             .first;
  }
  return it->second;
}

const Extension& EvalCache::EvalConjunct(const Conjunct& conjunct) {
  if (conjunct.kind == Conjunct::Kind::kProjection &&
      conjunct.selections.empty()) {
    return Projection(conjunct.relation, conjunct.attr);
  }
  auto it = conjunct_exts_.find(conjunct);
  if (it == conjunct_exts_.end()) {
    it = conjunct_exts_.emplace(conjunct, ls::Eval(conjunct, *instance_))
             .first;
  }
  return it->second;
}

const Extension& EvalCache::Eval(const LsConcept& concept_expr) {
  auto it = concept_exts_.find(concept_expr);
  if (it != concept_exts_.end()) return it->second;
  Extension ext = Extension::All();
  for (const Conjunct& c : concept_expr.conjuncts()) {
    ext = ext.Intersect(EvalConjunct(c));
    if (ext.empty()) break;
  }
  return concept_exts_.emplace(concept_expr, std::move(ext)).first->second;
}

bool SubsumedI(const LsConcept& c1, const LsConcept& c2,
               const rel::Instance& instance) {
  return Eval(c1, instance).SubsetOf(Eval(c2, instance));
}

bool EquivalentI(const LsConcept& c1, const LsConcept& c2,
                 const rel::Instance& instance) {
  return Eval(c1, instance) == Eval(c2, instance);
}

bool StrictlySubsumedI(const LsConcept& c1, const LsConcept& c2,
                       const rel::Instance& instance) {
  Extension e1 = Eval(c1, instance);
  Extension e2 = Eval(c2, instance);
  return e1.SubsetOf(e2) && !(e1 == e2);
}

}  // namespace whynot::ls
