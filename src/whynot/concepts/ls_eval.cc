#include "whynot/concepts/ls_eval.h"

#include <algorithm>
#include <limits>

#include "whynot/common/strings.h"

namespace whynot::ls {

Extension Extension::Of(std::vector<Value> vals) {
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return Extension{false, std::move(vals)};
}

bool Extension::Contains(const Value& v) const {
  if (all) return true;
  return std::binary_search(values.begin(), values.end(), v);
}

bool Extension::SubsetOf(const Extension& o) const {
  if (o.all) return true;
  if (all) return false;
  return std::includes(o.values.begin(), o.values.end(), values.begin(),
                       values.end());
}

Extension Extension::Intersect(const Extension& o) const {
  if (all) return o;
  if (o.all) return *this;
  Extension out;
  std::set_intersection(values.begin(), values.end(), o.values.begin(),
                        o.values.end(), std::back_inserter(out.values));
  return out;
}

size_t Extension::CardinalityOrInfinite() const {
  return all ? std::numeric_limits<size_t>::max() : values.size();
}

std::string Extension::ToString() const {
  if (all) return "Const";
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const Value& v : values) parts.push_back(v.ToString());
  return "{" + Join(parts, ", ") + "}";
}

Extension Eval(const Conjunct& conjunct, const rel::Instance& instance) {
  switch (conjunct.kind) {
    case Conjunct::Kind::kTop:
      return Extension::All();
    case Conjunct::Kind::kNominal:
      return Extension::Of({conjunct.nominal});
    case Conjunct::Kind::kProjection: {
      std::vector<Value> out;
      for (const Tuple& t : instance.Relation(conjunct.relation)) {
        bool pass = true;
        for (const Selection& s : conjunct.selections) {
          if (!rel::EvalCmp(t[static_cast<size_t>(s.attr)], s.op,
                            s.constant)) {
            pass = false;
            break;
          }
        }
        if (pass) out.push_back(t[static_cast<size_t>(conjunct.attr)]);
      }
      return Extension::Of(std::move(out));
    }
  }
  return Extension::All();
}

Extension Eval(const LsConcept& concept_expr, const rel::Instance& instance) {
  Extension ext = Extension::All();
  for (const Conjunct& c : concept_expr.conjuncts()) {
    ext = ext.Intersect(Eval(c, instance));
    if (ext.empty()) break;
  }
  return ext;
}

const Extension& EvalCache::EvalConjunct(const Conjunct& conjunct) {
  auto it = conjunct_exts_.find(conjunct);
  if (it == conjunct_exts_.end()) {
    it = conjunct_exts_.emplace(conjunct, ls::Eval(conjunct, *instance_))
             .first;
  }
  return it->second;
}

Extension EvalCache::Eval(const LsConcept& concept_expr) {
  Extension ext = Extension::All();
  for (const Conjunct& c : concept_expr.conjuncts()) {
    ext = ext.Intersect(EvalConjunct(c));
    if (ext.empty()) break;
  }
  return ext;
}

bool SubsumedI(const LsConcept& c1, const LsConcept& c2,
               const rel::Instance& instance) {
  return Eval(c1, instance).SubsetOf(Eval(c2, instance));
}

bool EquivalentI(const LsConcept& c1, const LsConcept& c2,
                 const rel::Instance& instance) {
  return Eval(c1, instance) == Eval(c2, instance);
}

bool StrictlySubsumedI(const LsConcept& c1, const LsConcept& c2,
                       const rel::Instance& instance) {
  Extension e1 = Eval(c1, instance);
  Extension e2 = Eval(c2, instance);
  return e1.SubsetOf(e2) && !(e1 == e2);
}

}  // namespace whynot::ls
