#include "whynot/concepts/ls_eval.h"

#include <algorithm>
#include <limits>

#include "whynot/common/strings.h"
#include "whynot/relational/interval.h"

namespace whynot::ls {

namespace {

/// Below this many ids a linear scan beats materializing the pool-universe
/// bitmap; probes on nominal-sized extensions stay allocation-free.
constexpr size_t kSmallLinearIds = 8;

}  // namespace

Extension Extension::Of(std::vector<Value> vals) {
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  Extension e;
  e.extras_ = std::move(vals);
  return e;
}

Extension Extension::OfIds(const ValuePool* pool, std::vector<ValueId> ids) {
  auto rank_less = [pool](ValueId a, ValueId b) {
    return pool->Rank(a) < pool->Rank(b);
  };
  if (!std::is_sorted(ids.begin(), ids.end(), rank_less)) {
    std::sort(ids.begin(), ids.end(), rank_less);
  }
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  Extension e;
  e.pool_ = pool;
  e.ids_ = std::move(ids);
  return e;
}

Extension Extension::Nominal(const ValuePool* pool, const Value& v) {
  Extension e;
  e.pool_ = pool;
  ValueId id = pool->Lookup(v);
  if (id >= 0) {
    e.ids_.push_back(id);
  } else {
    e.extras_.push_back(v);
  }
  return e;
}

const std::vector<Value>& Extension::values() const {
  if (boxed_ == nullptr) {
    auto out = std::make_shared<std::vector<Value>>();
    out->reserve(ids_.size() + extras_.size());
    // ids are rank-sorted, so Get() yields them ascending in the Value
    // order; merge with the (disjoint) sorted extras.
    size_t i = 0;
    size_t j = 0;
    while (i < ids_.size() && j < extras_.size()) {
      const Value& a = pool_->Get(ids_[i]);
      if (a < extras_[j]) {
        out->push_back(a);
        ++i;
      } else {
        out->push_back(extras_[j]);
        ++j;
      }
    }
    for (; i < ids_.size(); ++i) out->push_back(pool_->Get(ids_[i]));
    for (; j < extras_.size(); ++j) out->push_back(extras_[j]);
    boxed_ = std::move(out);
  }
  return *boxed_;
}

const DenseBitmap& Extension::bits() const {
  if (bits_ == nullptr) {
    // The bitmap wants ids ascending by *id*; rank order is a permutation.
    std::vector<ValueId> sorted = ids_;
    std::sort(sorted.begin(), sorted.end());
    bits_ = std::make_shared<const DenseBitmap>(
        sorted, pool_ == nullptr ? 0 : pool_->size());
  }
  return *bits_;
}

void Extension::EnsureRep() const {
  if (bits_ != nullptr || hyb_ != nullptr) return;
  std::vector<ValueId> sorted = ids_;
  std::sort(sorted.begin(), sorted.end());
  int32_t universe = pool_ == nullptr ? 0 : pool_->size();
  size_t words = sorted.empty() && universe <= 0
                     ? 0
                     : (static_cast<size_t>(std::max(
                            universe, sorted.empty() ? 0 : sorted.back() + 1)) +
                        63) /
                           64;
  if (ChooseHybridRep(sorted.size(), words)) {
    hyb_ = std::make_shared<const HybridBitmap>(
        HybridBitmap::FromSorted(sorted, universe));
  } else {
    bits_ = std::make_shared<const DenseBitmap>(sorted, universe);
  }
}

void Extension::Freeze() const {
  // Same build condition as ContainsIdSlow: only extensions that would
  // lazily materialize a representation on probe get one built eagerly
  // here. Small id sets answer probes with a read-only linear scan and
  // must not change representation (or memory footprint) by being cached.
  if (all || pool_ == nullptr) return;
  if (ids_.size() > kSmallLinearIds) EnsureRep();
}

bool Extension::ContainsIdSlow(ValueId id) const {
  if (ids_.size() <= kSmallLinearIds) {
    return std::find(ids_.begin(), ids_.end(), id) != ids_.end();
  }
  EnsureRep();
  if (bits_ != nullptr) return bits_->Test(id);
  return hyb_->Test(id);
}

bool Extension::ContainsBoxedSlow(const Value& v) const {
  return std::binary_search(extras_.begin(), extras_.end(), v);
}

bool Extension::Contains(const Value& v) const {
  if (all) return true;
  if (pool_ != nullptr) {
    ValueId id = pool_->Lookup(v);
    if (id >= 0 && ContainsId(id)) return true;
    // Fall through to the extras even when the value is interned: a
    // member recorded as an extra stays one if the pool later interns the
    // value (pools only grow; the id probe cannot see extras).
  }
  return ContainsBoxedSlow(v);
}

bool Extension::SubsetOf(const Extension& o) const {
  if (o.all) return true;
  if (all) return false;
  if (pool_ != nullptr && pool_ == o.pool_) {
    if (!std::includes(o.extras_.begin(), o.extras_.end(), extras_.begin(),
                       extras_.end())) {
      return false;
    }
    if (ids_.empty()) return true;
    if (ids_.size() > o.ids_.size()) return false;
    if (has_bitmap() && o.has_bitmap()) return bits_->SubsetOf(*o.bits_);
    if (has_hybrid() && o.has_hybrid()) return hyb_->SubsetOf(*o.hyb_);
    if (o.has_bitmap() || o.has_hybrid()) {
      // Probe our ids against the superset's O(1)/O(log) membership —
      // representation-agnostic, no universe-sized temporary.
      for (ValueId id : ids_) {
        if (!(o.has_bitmap() ? o.bits_->Test(id) : o.hyb_->Test(id))) {
          return false;
        }
      }
      return true;
    }
    // No bitmap on the superset side: rank-order includes, no allocation
    // (one-shot SubsumedI calls and Eval temporaries land here; cached
    // extensions that have answered a ContainsId keep their bitmap and
    // take the word paths above).
    const ValuePool& pool = *pool_;
    auto rank_less = [&pool](ValueId a, ValueId b) {
      return pool.Rank(a) < pool.Rank(b);
    };
    return std::includes(o.ids_.begin(), o.ids_.end(), ids_.begin(),
                         ids_.end(), rank_less);
  }
  const std::vector<Value>& sub = values();
  const std::vector<Value>& super = o.values();
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

Extension Extension::Intersect(const Extension& o) const {
  if (all) return o;
  if (o.all) return *this;
  if (pool_ != nullptr && pool_ == o.pool_) {
    Extension out;
    out.pool_ = pool_;
    const Extension* small = this;
    const Extension* big = &o;
    if (small->ids_.size() > big->ids_.size()) std::swap(small, big);
    if (!small->ids_.empty()) {
      out.ids_.reserve(small->ids_.size());
      if (big->has_bitmap()) {
        // One O(1) probe per element of the smaller side; iteration order
        // of `small` keeps the result rank-sorted. Only an *existing*
        // representation is used — cached conjunct extensions keep theirs
        // across calls, while one-shot temporaries in an Eval chain never
        // pay a pool-universe allocation.
        const DenseBitmap& bb = big->bits();
        for (ValueId id : small->ids_) {
          if (bb.Test(id)) out.ids_.push_back(id);
        }
      } else if (big->has_hybrid()) {
        const HybridBitmap& bh = big->hybrid();
        for (ValueId id : small->ids_) {
          if (bh.Test(id)) out.ids_.push_back(id);
        }
      } else {
        // Rank-order merge: integer rank loads, no allocation.
        const ValuePool& pool = *pool_;
        auto a = small->ids_.begin();
        auto b = big->ids_.begin();
        while (a != small->ids_.end() && b != big->ids_.end()) {
          int32_t ra = pool.Rank(*a);
          int32_t rb = pool.Rank(*b);
          if (ra < rb) {
            ++a;
          } else if (rb < ra) {
            ++b;
          } else {
            out.ids_.push_back(*a);
            ++a;
            ++b;
          }
        }
      }
    }
    std::set_intersection(extras_.begin(), extras_.end(), o.extras_.begin(),
                          o.extras_.end(), std::back_inserter(out.extras_));
    return out;
  }
  const std::vector<Value>& a = values();
  const std::vector<Value>& b = o.values();
  std::vector<Value> both;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(both));
  return Extension::Of(std::move(both));
}

size_t Extension::MemoryBytes() const {
  size_t bytes = sizeof(*this) + ids_.capacity() * sizeof(ValueId) +
                 extras_.capacity() * sizeof(Value);
  if (bits_ != nullptr) bytes += bits_->MemoryBytes();
  if (hyb_ != nullptr) bytes += hyb_->MemoryBytes();
  if (boxed_ != nullptr) {
    bytes += sizeof(*boxed_) + boxed_->capacity() * sizeof(Value);
  }
  return bytes;
}

size_t Extension::CardinalityOrInfinite() const {
  return all ? std::numeric_limits<size_t>::max()
             : ids_.size() + extras_.size();
}

std::string Extension::ToString() const {
  if (all) return "Const";
  std::vector<std::string> parts;
  parts.reserve(values().size());
  for (const Value& v : values()) parts.push_back(v.ToString());
  return "{" + Join(parts, ", ") + "}";
}

Extension Eval(const Conjunct& conjunct, const rel::Instance& instance) {
  const ValuePool& pool = instance.pool();
  switch (conjunct.kind) {
    case Conjunct::Kind::kTop:
      return Extension::All();
    case Conjunct::Kind::kNominal:
      return Extension::Nominal(&pool, conjunct.nominal);
    case Conjunct::Kind::kProjection: {
      const rel::StoredRelation* rel = instance.Find(conjunct.relation);
      if (rel == nullptr || rel->empty()) return Extension();
      size_t attr = static_cast<size_t>(conjunct.attr);

      // Selection-free projection: exactly the distinct column, which the
      // columnar store already keeps as the index keys (for relations big
      // enough to index; small ones dedup a direct column copy). No Value
      // is ever boxed: the ids go straight into the extension.
      if (conjunct.selections.empty()) {
        if (rel->num_rows() >= rel::StoredRelation::kIndexMinRows) {
          return Extension::OfIds(&pool, rel->Index(attr).keys);
        }
        return Extension::OfIds(&pool, rel->Column(attr));
      }

      // Pre-resolve every selection to a rank range (values only pass if
      // interned); pick an equality selection's posting list as the driver
      // when one exists, otherwise scan the columns.
      std::vector<rel::RankRange> ranges;
      ranges.reserve(conjunct.selections.size());
      const Selection* eq_driver = nullptr;
      for (const Selection& s : conjunct.selections) {
        rel::RankRange r = rel::ResolveCmpRange(pool, s.op, s.constant);
        if (r.empty()) return Extension();
        ranges.push_back(r);
        if (eq_driver == nullptr && s.op == rel::CmpOp::kEq) eq_driver = &s;
      }

      auto row_passes = [&](size_t row) {
        for (size_t i = 0; i < ranges.size(); ++i) {
          const Selection& s = conjunct.selections[i];
          ValueId id = rel->At(row, static_cast<size_t>(s.attr));
          if (!ranges[i].Contains(pool.Rank(id))) return false;
        }
        return true;
      };

      if (rel->num_rows() < rel::StoredRelation::kIndexMinRows) {
        eq_driver = nullptr;  // scanning a tiny relation beats indexing it
      }
      std::vector<ValueId> out;
      if (eq_driver != nullptr) {
        ValueId id = pool.Lookup(eq_driver->constant);
        if (id < 0) return Extension();
        auto [begin, end] =
            rel->RowsEqual(static_cast<size_t>(eq_driver->attr), id);
        for (const uint32_t* r = begin; r != end; ++r) {
          if (row_passes(*r)) out.push_back(rel->At(*r, attr));
        }
      } else {
        for (size_t row = 0; row < rel->num_rows(); ++row) {
          if (row_passes(row)) out.push_back(rel->At(row, attr));
        }
      }
      return Extension::OfIds(&pool, std::move(out));
    }
  }
  return Extension::All();
}

Extension Eval(const LsConcept& concept_expr, const rel::Instance& instance) {
  Extension ext = Extension::All();
  for (const Conjunct& c : concept_expr.conjuncts()) {
    ext = ext.Intersect(Eval(c, instance));
    if (ext.empty()) break;
  }
  return ext;
}

const Extension& EvalCache::Projection(const std::string& relation, int attr) {
  auto key = std::make_pair(relation, attr);
  auto it = projection_exts_.find(key);
  if (it == projection_exts_.end()) {
    it = projection_exts_
             .emplace(std::move(key),
                      ls::Eval(Conjunct::Projection(relation, attr),
                               *instance_))
             .first;
  }
  return it->second;
}

const Extension& EvalCache::EvalConjunct(const Conjunct& conjunct) {
  if (conjunct.kind == Conjunct::Kind::kProjection &&
      conjunct.selections.empty()) {
    return Projection(conjunct.relation, conjunct.attr);
  }
  auto it = conjunct_exts_.find(conjunct);
  if (it == conjunct_exts_.end()) {
    it = conjunct_exts_.emplace(conjunct, ls::Eval(conjunct, *instance_))
             .first;
  }
  return it->second;
}

const Extension& EvalCache::Eval(const LsConcept& concept_expr) {
  auto it = concept_exts_.find(concept_expr);
  if (it != concept_exts_.end()) return it->second;
  Extension ext = Extension::All();
  for (const Conjunct& c : concept_expr.conjuncts()) {
    ext = ext.Intersect(EvalConjunct(c));
    if (ext.empty()) break;
  }
  return concept_exts_.emplace(concept_expr, std::move(ext)).first->second;
}

size_t EvalCache::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, ext] : projection_exts_) bytes += ext.MemoryBytes();
  for (const auto& [key, ext] : conjunct_exts_) bytes += ext.MemoryBytes();
  for (const auto& [key, ext] : concept_exts_) bytes += ext.MemoryBytes();
  return bytes;
}

bool SubsumedI(const LsConcept& c1, const LsConcept& c2,
               const rel::Instance& instance) {
  return Eval(c1, instance).SubsetOf(Eval(c2, instance));
}

bool EquivalentI(const LsConcept& c1, const LsConcept& c2,
                 const rel::Instance& instance) {
  return Eval(c1, instance) == Eval(c2, instance);
}

bool StrictlySubsumedI(const LsConcept& c1, const LsConcept& c2,
                       const rel::Instance& instance) {
  Extension e1 = Eval(c1, instance);
  Extension e2 = Eval(c2, instance);
  return e1.SubsetOf(e2) && !(e1 == e2);
}

}  // namespace whynot::ls
