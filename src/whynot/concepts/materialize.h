#ifndef WHYNOT_CONCEPTS_MATERIALIZE_H_
#define WHYNOT_CONCEPTS_MATERIALIZE_H_

#include <memory>
#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/concepts/ls_concept.h"
#include "whynot/concepts/schema_subsumption.h"
#include "whynot/ontology/ontology.h"
#include "whynot/ontology/preorder.h"
#include "whynot/relational/instance.h"

namespace whynot::ls {

/// Which fragment of LS[K] to enumerate when materializing a derived
/// ontology (Definition 4.6 / Proposition 4.2).
enum class Fragment {
  kMinimal,        // LminS[K]: ⊤, nominals, plain projections — polynomial
  kSelectionFree,  // intersections of LminS conjuncts — single exponential
  kFull,           // with selections (canonical boxes) — double exponential
};

/// Which subsumption pre-order the materialized ontology carries.
enum class SubsumptionMode {
  kInstance,  // ⊑_I  (OI[K], Definition 4.8)
  kSchema,    // ⊑_S  (OS[K]); requires a Table 1 constraint class
};

struct MaterializeOptions {
  Fragment fragment = Fragment::kMinimal;
  SubsumptionMode mode = SubsumptionMode::kInstance;
  /// Hard cap on the number of concepts (after extension deduplication);
  /// exceeding it returns ResourceExhausted — the OI[K] ontologies are
  /// "typically infinite, and not intended to be materialized" (Section 4.2);
  /// materialization exists for Prop. 5.3 and for cross-checking Algorithm 2
  /// against Algorithm 1 on small inputs.
  size_t max_concepts = 4096;
  /// For kSelectionFree / kFull: deduplicate concepts by extension on the
  /// bound instance, keeping a shortest representative per class. This is
  /// exactly "modulo equivalence" w.r.t. OI.
  bool dedup_by_extension = true;
  SchemaSubsumptionOptions schema_options;
};

/// A finite S-ontology whose concepts are LS concept expressions over a
/// constant set K, with ⊑ either instance-level or schema-level. This is
/// the materialized OI[K] / OS[K] of Proposition 5.1 and Section 5.3.
class LsOntology : public onto::FiniteOntology {
 public:
  /// Materializes the fragment over K = adom(I) ∪ extra_constants.
  static Result<std::unique_ptr<LsOntology>> Materialize(
      const rel::Instance* instance, std::vector<Value> extra_constants,
      const MaterializeOptions& options);

  /// Builds an ontology from an explicit concept list (subsumption per
  /// `mode` is computed pairwise).
  static Result<std::unique_ptr<LsOntology>> FromConcepts(
      const rel::Instance* instance, std::vector<LsConcept> concepts,
      const MaterializeOptions& options);

  const LsConcept& Concept(onto::ConceptId id) const {
    return concepts_[static_cast<size_t>(id)];
  }
  const std::vector<LsConcept>& concepts() const { return concepts_; }

  // FiniteOntology:
  int32_t NumConcepts() const override {
    return static_cast<int32_t>(concepts_.size());
  }
  std::string ConceptName(onto::ConceptId id) const override;
  bool Subsumes(onto::ConceptId sub, onto::ConceptId super) const override;
  onto::ExtSet ComputeExt(onto::ConceptId id, const rel::Instance& instance,
                          ValuePool* pool) const override;

 private:
  LsOntology(const rel::Instance* instance, std::vector<LsConcept> concepts)
      : instance_(instance), concepts_(std::move(concepts)), matrix_(0) {}

  Status BuildMatrix(const MaterializeOptions& options);

  const rel::Instance* instance_;
  std::vector<LsConcept> concepts_;
  onto::BoolMatrix matrix_;
};

/// Enumerates the conjuncts of the fragment over K (used by Materialize and
/// by the concept-count benchmarks): nominals over K, plain projections,
/// and — for kFull — the canonical selection boxes of each relation.
Result<std::vector<LsConcept>> EnumerateConjunctConcepts(
    const rel::Instance& instance, const std::vector<Value>& constants,
    Fragment fragment, size_t max_concepts);

}  // namespace whynot::ls

#endif  // WHYNOT_CONCEPTS_MATERIALIZE_H_
