#include "whynot/explain/whynot_instance.h"

#include <algorithm>

#include "whynot/relational/cq_eval.h"

namespace whynot::explain {

std::string WhyNotInstance::ToString() const {
  return "why-not " + TupleToString(missing) + "? Ans has " +
         std::to_string(answers.size()) + " tuples";
}

Result<WhyNotInstance> MakeWhyNotInstance(const rel::Instance* instance,
                                          rel::UnionQuery query,
                                          Tuple missing) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                          rel::Evaluate(query, *instance));
  if (query.arity() != missing.size()) {
    return Status::InvalidArgument(
        "missing tuple arity does not match query arity");
  }
  WhyNotInstance wni;
  wni.instance = instance;
  wni.query = std::move(query);
  wni.answers = std::move(answers);
  wni.missing = std::move(missing);
  if (std::binary_search(wni.answers.begin(), wni.answers.end(),
                         wni.missing)) {
    return Status::InvalidArgument("tuple " + TupleToString(wni.missing) +
                                   " is in the answer set; nothing to "
                                   "explain");
  }
  return wni;
}

Result<WhyNotInstance> MakeWhyNotInstanceFromAnswers(
    const rel::Instance* instance, std::vector<Tuple> answers,
    Tuple missing) {
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  for (const Tuple& t : answers) {
    if (t.size() != missing.size()) {
      return Status::InvalidArgument("answer arity does not match missing "
                                     "tuple arity");
    }
  }
  WhyNotInstance wni;
  wni.instance = instance;
  wni.answers = std::move(answers);
  wni.missing = std::move(missing);
  if (std::binary_search(wni.answers.begin(), wni.answers.end(),
                         wni.missing)) {
    return Status::InvalidArgument("tuple " + TupleToString(wni.missing) +
                                   " is in the answer set; nothing to "
                                   "explain");
  }
  return wni;
}

}  // namespace whynot::explain
