#ifndef WHYNOT_EXPLAIN_SEARCH_CORE_H_
#define WHYNOT_EXPLAIN_SEARCH_CORE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "whynot/common/dense_bitmap.h"
#include "whynot/common/exec_control.h"
#include "whynot/common/parallel.h"
#include "whynot/common/status.h"
#include "whynot/explain/answer_cover.h"
#include "whynot/explain/candidate_space.h"
#include "whynot/explain/lattice.h"
#include "whynot/ontology/ontology.h"

namespace whynot::explain {

/// The shared search core of every explain entry point. Each of the
/// paper's algorithms bottoms out in the same four pieces of scaffolding,
/// which used to be hand-written per file (PR 4) and live exactly once
/// here:
///
///  * ParallelFilterSpace — the chunked candidate-product shard with
///    range-ordered survivor replay (exhaustive / pruned enumeration,
///    exact cardinality, the why antichain);
///  * LexMinSweep — the per-worker first-outcome sweep of the derived MGE
///    checks (CheckMgeDerived / CheckWhyMgeDerived);
///  * CoverTable — pre-resolved cover pointers aligned with per-position
///    candidate lists, plus the extension metadata the counting
///    (containment) form needs;
///  * GreedyAndCache — the prefix/suffix running-AND probe cache of the
///    greedy sweeps (EnumerateAllMges' completion and maximality tests).
///
/// Everything here follows the engine-wide parallel discipline: parallel
/// stages compute pure index-addressed results, stateful consumption
/// replays serially in index order, so outputs are bit-identical for
/// every thread count.

/// Candidates filtered in one parallel round before their survivors are
/// consumed serially; bounds the survivor buffer without a sync per block.
inline constexpr size_t kFilterChunk = 1 << 16;
/// Minimum indices per parallel block inside a chunk.
inline constexpr size_t kFilterGrain = 1024;

/// Enumerates the candidate space in the serial odometer's order, calling
/// `pred` on every position and `consume` on every position where `pred`
/// returned true. `consume` returns false to stop the whole enumeration.
///
/// `pred` must be a pure function of the odometer position over read-only
/// shared state (with more than one pool thread it runs sharded across
/// linear candidate ranges); `consume` always runs serially, in exactly
/// the order a serial odometer loop would reach the survivors, one
/// bounded chunk at a time. The `idx` passed to both aliases internal
/// scratch — copy it to keep it.
///
/// Spaces whose product overflows SIZE_MAX (CandidateSpace::overflow) are
/// enumerated by prefix-chunked odometer iteration — block starts come
/// from advancing a master odometer rather than decoding linear indices —
/// so enumeration stays exact at any width; callers that budget by
/// total() must check overflow() themselves before calling.
///
/// `serial_skip` (optional overload) is a *stateful* pre-filter applied
/// before `pred` on the serial path only: return true to skip a
/// candidate without paying for `pred`. It may read state that `consume`
/// mutates (the why antichain's domination check), which is exactly why
/// the parallel path must ignore it — there `consume` has to reject such
/// survivors itself, so a skipped candidate never changes the output,
/// only the serial work profile.
///
/// A template rather than std::function plumbing: the serial loop runs
/// per candidate and several entry points sit in sub-microsecond
/// benchmark territory, where per-call indirection is measurable.
///
/// Execution control (`exec` may be null): the serial path probes
/// exec::Check at every candidate ordinal; the parallel path probes at
/// chunk starts, before every survivor consume, and — because a trigger
/// can land on a non-survivor ordinal — once more at the chunk's last
/// ordinal after the survivor replay, so it stops inside exactly the
/// chunks whose ordinal range the serial loop would have stopped in.
/// Workers poll ShouldAbandon at block starts (an abandoned chunk is
/// discarded whole, never merged). Under fault injection with trigger N
/// the consumed prefix is therefore exactly the survivors with ordinal
/// < N on both paths — bit-identical at every thread count. `budget` is an ordinal
/// cap checked at the same points (a kBudget stop at exactly `budget`,
/// thread-count-invariant); pass SIZE_MAX for none. On a stop: when
/// `stop` is null the enumeration returns the matching error status;
/// when non-null it records the Stop there and returns OK with the
/// prefix already consumed (`stop->reason == kNone` means it ran to
/// completion).
template <typename Pred, typename Consume, typename SerialSkip>
Status ParallelFilterSpace(const CandidateSpace& space,
                           const exec::ExecContext* exec, exec::Stop* stop,
                           size_t budget, Pred&& pred, Consume&& consume,
                           SerialSkip&& serial_skip) {
  if (stop != nullptr) *stop = exec::Stop{};
  if (!space.overflow() && space.total() == 0) return Status::OK();

  auto halt = [&](const exec::Stop& s) {
    if (stop != nullptr) {
      *stop = s;
      return Status::OK();
    }
    return exec::StopStatus(s, "candidate enumeration");
  };
  auto check_at = [&](size_t ordinal) -> std::optional<exec::Stop> {
    if (ordinal >= budget) {
      return exec::Stop{exec::StopReason::kBudget, budget};
    }
    return exec::Check(exec, ordinal);
  };

  if (par::NumThreads() <= 1) {
    std::vector<size_t> idx(space.arity(), 0);
    size_t ordinal = 0;
    for (;;) {
      if (std::optional<exec::Stop> s = check_at(ordinal)) {
        return halt(*s);
      }
      if (!serial_skip(idx) && pred(idx) && !consume(idx)) {
        return Status::OK();
      }
      ++ordinal;
      if (!space.Advance(&idx)) return Status::OK();
    }
  }

  // Chunked shard with range-ordered survivor replay. Block starts are
  // odometer positions advanced from the chunk start (AdvanceBy), never
  // decoded linear indices, so the same loop serves overflowing spaces;
  // survivors are recorded as offsets within the chunk and replayed by a
  // serial cursor odometer — exactly the serial enumeration order.
  std::vector<size_t> chunk_start(space.arity(), 0);
  size_t chunk_base = 0;  // serial ordinal of chunk_start
  size_t remaining = space.RemainingFrom(chunk_start);
  std::vector<std::pair<size_t, std::vector<uint32_t>>> blocks;
  std::mutex mutex;
  std::vector<size_t> cursor_idx;
  while (remaining > 0) {
    if (std::optional<exec::Stop> s = check_at(chunk_base)) {
      return halt(*s);
    }
    size_t chunk_len = std::min(remaining, kFilterChunk);
    blocks.clear();
    std::atomic<bool> abandon{false};
    par::ParallelFor(
        chunk_len, kFilterGrain, &abandon, [&](size_t begin, size_t end) {
          if (exec::ShouldAbandon(exec)) {
            abandon.store(true, std::memory_order_relaxed);
            return;
          }
          std::vector<uint32_t> survivors;
          std::vector<size_t> idx = chunk_start;
          space.AdvanceBy(&idx, begin);
          for (size_t off = begin; off < end; ++off) {
            if (pred(idx)) survivors.push_back(static_cast<uint32_t>(off));
            space.Advance(&idx);
          }
          if (!survivors.empty()) {
            std::lock_guard<std::mutex> lock(mutex);
            blocks.emplace_back(begin, std::move(survivors));
          }
        });
    if (abandon.load(std::memory_order_relaxed)) {
      // Real cancel/deadline seen by a worker: the chunk is incomplete,
      // so none of it is merged — the consumed prefix ends at the last
      // full chunk, and both abandon conditions are monotone so the
      // resolving poll is engaged.
      exec::Stop s = exec->PollNow(chunk_base).value_or(
          exec::Stop{exec::StopReason::kCancelled, chunk_base});
      return halt(s);
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    cursor_idx = chunk_start;
    size_t cursor = 0;
    for (const auto& [begin, survivors] : blocks) {
      for (uint32_t off : survivors) {
        if (std::optional<exec::Stop> s = check_at(chunk_base + off)) {
          return halt(*s);
        }
        space.AdvanceBy(&cursor_idx, off - cursor);
        cursor = off;
        if (!consume(cursor_idx)) return Status::OK();
      }
    }
    // The serial reference probes every candidate ordinal, so a trigger
    // (or budget) landing on a *non-survivor* ordinal of this chunk must
    // stop here too: probe the chunk's last ordinal once its survivors
    // are merged. Injected stops report at = trigger and budget stops
    // at = budget, both thread-count-invariant.
    if (std::optional<exec::Stop> s = check_at(chunk_base + chunk_len - 1)) {
      return halt(*s);
    }
    if (chunk_len == remaining && remaining != SIZE_MAX) break;
    space.AdvanceBy(&chunk_start, chunk_len);
    chunk_base += chunk_len;
    remaining = remaining == SIZE_MAX ? space.RemainingFrom(chunk_start)
                                      : remaining - chunk_len;
  }
  return Status::OK();
}

template <typename Pred, typename Consume>
Status ParallelFilterSpace(const CandidateSpace& space,
                           const exec::ExecContext* exec, exec::Stop* stop,
                           size_t budget, Pred&& pred, Consume&& consume) {
  return ParallelFilterSpace(space, exec, stop, budget,
                             std::forward<Pred>(pred),
                             std::forward<Consume>(consume),
                             [](const std::vector<size_t>&) { return false; });
}

template <typename Pred, typename Consume, typename SerialSkip>
Status ParallelFilterSpace(const CandidateSpace& space, Pred&& pred,
                           Consume&& consume, SerialSkip&& serial_skip) {
  return ParallelFilterSpace(space, nullptr, nullptr, SIZE_MAX,
                             std::forward<Pred>(pred),
                             std::forward<Consume>(consume),
                             std::forward<SerialSkip>(serial_skip));
}

template <typename Pred, typename Consume>
Status ParallelFilterSpace(const CandidateSpace& space, Pred&& pred,
                           Consume&& consume) {
  return ParallelFilterSpace(space, nullptr, nullptr, SIZE_MAX,
                             std::forward<Pred>(pred),
                             std::forward<Consume>(consume),
                             [](const std::vector<size_t>&) { return false; });
}

/// Hooks of the dominance-pruned frontier enumeration. `pred` and
/// `consume` have exactly the ParallelFilterSpace contract (pure sharded
/// predicate, serial consumption); the optional pair exists for the
/// branch-and-bound form of the cardinality search:
///  * `on_pass(idx)` runs serially, in deterministic wave-merge order, on
///    every candidate the predicate admitted — including ones a kept
///    survivor later dominates — so callers can maintain a running bound
///    over *passing* products;
///  * `expand(idx)` runs on every failing candidate; returning false
///    prunes its entire downset without generating children. Sound only
///    when whatever the caller optimizes is monotone along ≼ (a subtree
///    of a failing product can never beat a bound its root cannot).
///
/// std::function rather than templates: these run once per *frontier
/// node*, not once per raw candidate, and the enumerator's out-of-line
/// implementation keeps this header light.
struct LatticeFrontierHooks {
  std::function<bool(const std::vector<size_t>&)> pred;
  std::function<bool(const std::vector<size_t>&)> consume;
  std::function<void(const std::vector<size_t>&)> on_pass;
  std::function<bool(const std::vector<size_t>&)> expand;
};

/// The dominance-pruned counterpart of ParallelFilterSpace: walks the
/// candidate product most-general-first along the effective order ≼ of
/// `lattice`, one frontier wave at a time. Candidates whose predicate
/// holds (the answer-cover AND came up empty — the tuple IS an
/// explanation, or the why dual's containment holds) are collected into a
/// ≼-maximal antichain and their downsets are never generated — sound
/// because extensions shrink monotonically along ≼, so both conditions
/// are downward closed. Candidates that fail are expanded one
/// componentwise cover-step at a time, which reaches every maximal
/// passing product (failure propagates upward along any cover chain).
///
/// Output protocol: predicate evaluation shards each wave across the
/// pool; wave merge, antichain maintenance, and child generation are
/// serial over the wave in linearization order; the surviving antichain
/// is replayed through `consume` in linearization order
/// (LinearOrderLess) at the end. On a consistent binding ≼ equals ⊑ and
/// the consumed sequence is bit-identical to what ParallelFilterSpace
/// feeds the same consume — at every thread count.
///
/// `max_tested` budgets predicate evaluations (the lattice counterpart of
/// the odometer's raw-product budget); exceeding it returns
/// ResourceExhausted. Counters accumulate into `stats` when non-null.
///
/// Execution control (`exec` may be null): checked at wave starts with
/// probe = products_enumerated so far — a thread-invariant ordinal, since
/// wave contents are serially merged in linearization order. When `stop`
/// is null a stop returns the matching error (budget exhaustion keeps its
/// historical ResourceExhausted, with no consume and no stats — exactly
/// the pre-control behavior); when non-null the *current* ≼-maximal
/// antichain is replayed through `consume` as a sound partial prefix,
/// stats accumulate, the Stop (budget included, as kBudget) is recorded,
/// and the call returns OK.
Status LatticeFilterSpace(const CandidateSpace& space,
                          const ConceptLattice& lattice,
                          const std::vector<std::vector<onto::ConceptId>>& lists,
                          size_t max_tested,
                          const LatticeFrontierHooks& hooks,
                          PruneStats* stats,
                          const exec::ExecContext* exec = nullptr,
                          exec::Stop* stop = nullptr);

/// Sharded first-outcome sweep over [0, n): `body(worker, i)` either
/// returns std::nullopt ("nothing decided at i, keep scanning") or an
/// outcome, and the helper returns the outcome at the *smallest* i —
/// exactly what a serial loop returning at its first outcome produces,
/// independent of thread count or block scheduling.
///
/// Workers hold the per-thread lazily mutating state (lub contexts, eval
/// caches, covers); `workers` is sized par::MaxWorkers() by the caller
/// and filled lazily via `make_worker`, so worker state persists across
/// consecutive sweeps (the per-position loops of the MGE checks). `body`
/// must be a pure function of (worker state, i) — worker caches may
/// memoize but never change results.
///
/// Only the parallel scaffolding lives here: callers keep their serial
/// loops (which reuse the caller's own warm caches) and route through
/// this when the pool is wide enough.
/// `exec` (optional) is polled for abandonment at block starts — callers
/// must re-check their context at the serial point after the sweep and
/// discard the outcome on a stop, since an abandoned sweep may have
/// skipped ranges.
template <typename Worker, typename Outcome>
std::optional<Outcome> LexMinSweep(
    size_t n, size_t grain, std::vector<std::unique_ptr<Worker>>* workers,
    const std::function<std::unique_ptr<Worker>()>& make_worker,
    const std::function<std::optional<Outcome>(Worker&, size_t)>& body,
    const exec::ExecContext* exec = nullptr) {
  std::atomic<size_t> outcome_at{SIZE_MAX};
  std::mutex mutex;
  std::optional<Outcome> best;
  par::ParallelForWorker(n, grain, [&](int w, size_t begin, size_t end) {
    if (exec::ShouldAbandon(exec)) return;
    if (begin > outcome_at.load(std::memory_order_relaxed)) return;
    size_t slot = static_cast<size_t>(w);
    if ((*workers)[slot] == nullptr) (*workers)[slot] = make_worker();
    Worker& worker = *(*workers)[slot];
    for (size_t i = begin; i < end; ++i) {
      if (i > outcome_at.load(std::memory_order_relaxed)) return;
      std::optional<Outcome> outcome = body(worker, i);
      if (!outcome.has_value()) continue;
      std::lock_guard<std::mutex> lock(mutex);
      if (i < outcome_at.load(std::memory_order_relaxed)) {
        outcome_at.store(i, std::memory_order_relaxed);
        best = std::move(outcome);
      }
      return;  // everything past i in this block is dominated
    }
  });
  return best;
}

/// Outcome of one maximality probe of the derived MGE checks, used with
/// LexMinSweep: the probe either *broke* maximality (a strictly more
/// general replacement kept the tuple an explanation) or errored.
struct ProbeOutcome {
  bool broken = false;
  Status error = Status::OK();
};

/// Pre-resolved cover-pointer table aligned with the per-position
/// candidate lists of an enumeration, so the per-candidate product test
/// is one m-way word AND with no cover lookups. Optionally carries the
/// per-candidate extension sizes the counting (containment) form needs
/// (ResolveSizes), turning the why-explanation "product ⊆ Ans" predicate
/// into table-local arithmetic plus one popcount AND.
///
/// Resolution happens serially at construction (covers build lazily);
/// the resolved table is immutable and safe to probe from pool workers.
class CoverTable {
 public:
  CoverTable(ConceptAnswerCovers* covers,
             const std::vector<std::vector<onto::ConceptId>>& lists);

  // The probe-mirror pointers may reference the inline arrays, so the
  // table is address-stable by contract.
  CoverTable(const CoverTable&) = delete;
  CoverTable& operator=(const CoverTable&) = delete;

  /// Resolves |ext| / is-All metadata for every candidate (the counting
  /// form's pre-checks). Must be called before ProductInsideAt.
  void ResolveSizes(onto::BoundOntology* bound,
                    const std::vector<std::vector<onto::ConceptId>>& lists);

  size_t num_answers() const { return num_answers_; }

  /// ⋀_i Cover(lists[i][idx[i]], i) ≠ 0: the candidate product intersects
  /// Ans (the avoidance test of Definition 3.2, negated). When every
  /// resolved row is flat (the common case — covers only go hybrid past
  /// the sparsity crossover) the probe reads the raw-pointer mirror, so
  /// it is the exact pre-hybrid word loop over the pre-hybrid layout.
  bool ProductAnyAt(const std::vector<size_t>& idx) const {
    if (num_answers_ == 0) return false;
    if (!any_hybrid_) {
      return ConceptAnswerCovers::ProductAny(
          table_.size(), nwords_,
          [&](size_t i) { return flat_data_p_[flat_off_p_[i] + idx[i]]; });
    }
    return ConceptAnswerCovers::ProductAnyViews(
        table_.size(), nwords_, [&](size_t i) { return table_[i][idx[i]]; });
  }

  /// popcount(⋀_i Cover(lists[i][idx[i]], i)).
  size_t ProductCountAt(const std::vector<size_t>& idx) const {
    if (num_answers_ == 0) return 0;
    if (!any_hybrid_) {
      return ConceptAnswerCovers::ProductCount(
          table_.size(), nwords_,
          [&](size_t i) { return flat_data_p_[flat_off_p_[i] + idx[i]]; });
    }
    return ConceptAnswerCovers::ProductCountViews(
        table_.size(), nwords_, [&](size_t i) { return table_[i][idx[i]]; });
  }

  /// The why-dual containment test: ext product ⊆ Ans. Mirrors
  /// ProductInsideAnswers over the pre-resolved metadata — empty position
  /// makes the product vacuously inside, an All position (or a product
  /// larger than |Ans|) can never be covered, otherwise the counting AND
  /// decides. Requires ResolveSizes.
  bool ProductInsideAt(const std::vector<size_t>& idx) const {
    size_t m = table_.size();
    for (size_t i = 0; i < m; ++i) {
      if (!is_all_[i][idx[i]] && sizes_[i][idx[i]] == 0) return true;
    }
    size_t product_size = 1;
    for (size_t i = 0; i < m; ++i) {
      if (is_all_[i][idx[i]]) return false;
      if (product_size > num_answers_ / sizes_[i][idx[i]]) return false;
      product_size *= sizes_[i][idx[i]];
    }
    return ProductCountAt(idx) == product_size;
  }

  /// Degree ingredients of the candidate at idx — whether any position's
  /// extension is All and the sum of the finite |ext|s (Section 6's
  /// cardinality preference). Requires ResolveSizes; equals DegreeOf over
  /// the decoded candidate, without per-position extension lookups, so
  /// the serial survivor replay stays cheap even when the avoidance
  /// filter rejects nothing.
  void DegreeAt(const std::vector<size_t>& idx, bool* any_all,
                size_t* finite_sum) const {
    *any_all = false;
    *finite_sum = 0;
    for (size_t i = 0; i < table_.size(); ++i) {
      if (is_all_[i][idx[i]]) *any_all = true;
      *finite_sum += sizes_[i][idx[i]];  // 0 for All positions
    }
  }

  /// Covers of one candidate list at a fixed position (the existence
  /// search's per-node tables, the greedy climb's sweep tables).
  static std::vector<CoverView> ResolveList(
      ConceptAnswerCovers* covers, const std::vector<onto::ConceptId>& list,
      size_t pos);

 private:
  /// Inline mirror capacity: tables at most this many resolved entries
  /// (and at most kInlinePositions positions) stay allocation-free.
  static constexpr size_t kInlineEntries = 64;
  static constexpr size_t kInlinePositions = 16;

  size_t num_answers_;
  size_t nwords_;
  bool any_hybrid_ = false;
  std::vector<std::vector<CoverView>> table_;
  // Raw words-pointer mirror of table_ (built only when no row is
  // hybrid), flattened into one span indexed by per-position offsets:
  // the probe loop then reads 8-byte entries — the pre-hybrid table
  // stride — because the avoidance AND is a few cycles on small |Ans|,
  // so the view struct's doubled stride is measurable on probe-dense
  // searches. Small tables (the per-call covers of tiny searches, where
  // ctor allocations would eat the win) mirror into the inline arrays;
  // flat_data_p_/flat_off_p_ point at whichever storage holds the
  // mirror.
  const uint64_t* const* flat_data_p_ = nullptr;
  const uint32_t* flat_off_p_ = nullptr;
  std::array<const uint64_t*, kInlineEntries> inline_data_;
  std::array<uint32_t, kInlinePositions> inline_off_;
  std::vector<const uint64_t*> flat_data_;
  std::vector<uint32_t> flat_off_;
  std::vector<std::vector<size_t>> sizes_;    // |ext|, 0 for All
  std::vector<std::vector<uint8_t>> is_all_;  // empty until ResolveSizes
};

/// Prefix/suffix running-AND cache for single-position probe sweeps over
/// cover bitmaps: within a sweep the product check "replace position j's
/// cover, AND with all the others" has a loop-invariant rest — the AND of
/// the *current* covers below j and the *initial* covers above j. Reset
/// snapshots the suffix ANDs; Rest(j) lazily folds positions the sweep
/// has passed into the prefix (reading their covers through `cover_at`,
/// which by then returns the sweep's final cover) and returns prefix ∧
/// suffix[j], so each candidate probe collapses from an m-way cover AND
/// to a single AND against the cached rest words. Serves both greedy
/// completion (covers change as positions are accepted) and the
/// maximality test (covers fixed); j must be non-decreasing between
/// Resets.
///
/// `cover_at` is passed to both calls rather than stored: the cache
/// object outlives any one sweep (NodeEvaluator keeps one across all
/// branch-tree nodes), and a stored callback would silently dangle into
/// the previous sweep's stack state. `cover_at(k)` may return either raw
/// cover words (`const uint64_t*`) or a CoverView — hybrid rows fold into
/// the running word accumulators through the mixed kernels.
class GreedyAndCache {
 public:
  /// Rebinds to a sweep over `m` positions of `nwords`-word covers.
  /// `full` (the all-answers-alive words) must outlive the sweep;
  /// `cover_at(k)` must return position k's *current* cover.
  template <typename CoverAt>
  void Reset(size_t m, size_t nwords, const uint64_t* full,
             CoverAt cover_at) {
    nwords_ = nwords;
    absorbed_ = 0;
    rest_j_ = SIZE_MAX;
    prefix_.assign(full, full + nwords);
    suffix_.resize(m);
    if (m == 0) return;
    suffix_[m - 1].assign(full, full + nwords);
    for (size_t j = m - 1; j > 0; --j) {
      suffix_[j - 1] = suffix_[j];
      FoldCover(suffix_[j - 1].data(), cover_at(j), nwords_);
    }
  }

  /// The loop-invariant probe words at position j; `cover_at` must be
  /// the same view of the sweep's current covers that Reset received.
  template <typename CoverAt>
  const std::vector<uint64_t>& Rest(size_t j, CoverAt cover_at) {
    while (absorbed_ < j) {
      FoldCover(prefix_.data(), cover_at(absorbed_), nwords_);
      ++absorbed_;
    }
    if (rest_j_ != j) {
      rest_ = prefix_;
      DenseBitmap::AndWordsInPlace(rest_.data(), suffix_[j].data(), nwords_);
      rest_j_ = j;
    }
    return rest_;
  }

 private:
  static void FoldCover(uint64_t* acc, const uint64_t* cover, size_t n) {
    DenseBitmap::AndWordsInPlace(acc, cover, n);
  }
  static void FoldCover(uint64_t* acc, const CoverView& cover, size_t n) {
    ConceptAnswerCovers::AndViewInPlace(acc, cover, n);
  }

  size_t nwords_ = 0;
  std::vector<std::vector<uint64_t>> suffix_;  // suffix_[j] = ⋀_{k>j} initial
  std::vector<uint64_t> prefix_;               // ⋀_{k<absorbed_} current
  std::vector<uint64_t> rest_;
  size_t absorbed_ = 0;
  size_t rest_j_ = SIZE_MAX;
};

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_SEARCH_CORE_H_
