#ifndef WHYNOT_EXPLAIN_EXISTENCE_H_
#define WHYNOT_EXPLAIN_EXISTENCE_H_

#include <optional>

#include "whynot/common/exec_control.h"
#include "whynot/common/status.h"
#include "whynot/explain/explanation.h"
#include "whynot/explain/lattice.h"

namespace whynot::explain {

struct ExistenceOptions {
  /// Cap on backtracking search nodes (the problem is NP-complete in
  /// general, Theorem 5.1.2).
  size_t max_nodes = 50000000;
  /// kLattice restricts every position's candidate list to its ≼-minimal
  /// concepts before backtracking — sound for the existence *boolean*
  /// (an explanation using any concept dominates one using a ≼-minimal
  /// concept below it, and avoidance is ≼-downward closed), and often an
  /// exponential node-count cut on deep hierarchies. The witness may
  /// differ from the default's, which is why the default (kAuto, equal to
  /// kOdometer here) keeps the plain backtracker: one-shot callers pin
  /// its witness.
  SearchStrategy strategy = SearchStrategy::kAuto;
  /// Optional execution control, observed once per backtracking node (the
  /// traversal is thread-invariant, so node ordinals are too).
  const exec::ExecContext* exec = nullptr;
  /// When non-null, a stop returns OK(false) with the certificate filled
  /// (Quality::kLowerBound — no witness found within the covered nodes;
  /// existence is unresolved). A found witness is always definitive
  /// (kExact). When null, stops return the matching error status and the
  /// node budget keeps its historical ResourceExhausted.
  exec::Certificate* cert = nullptr;
};

/// EXISTENCE-OF-EXPLANATION (Definition 5.2): does any explanation for
/// a ∉ Ans exist w.r.t. the bound ontology? NP-complete in general, even
/// for bounded schema arity (Theorem 5.1.2); decided by backtracking over
/// positions with answer-set pruning and memoization of defeated states.
/// If `witness` is non-null and an explanation exists, one is stored.
/// `covers`, when non-null, must be the answer-cover table of
/// (bound, InternAnswers(bound, wni)) (a prepared ExplainSession's warm
/// table); the traversal, witness, and node counts are identical.
/// `lattice` follows the ExhaustiveSearchAllMge contract and is consulted
/// only under ExistenceOptions::strategy == kLattice.
Result<bool> ExistsExplanation(onto::BoundOntology* bound,
                               const WhyNotInstance& wni,
                               Explanation* witness = nullptr,
                               const ExistenceOptions& options = {},
                               ConceptAnswerCovers* covers = nullptr,
                               LatticeHandle* lattice = nullptr);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_EXISTENCE_H_
