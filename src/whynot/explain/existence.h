#ifndef WHYNOT_EXPLAIN_EXISTENCE_H_
#define WHYNOT_EXPLAIN_EXISTENCE_H_

#include <optional>

#include "whynot/common/status.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

struct ExistenceOptions {
  /// Cap on backtracking search nodes (the problem is NP-complete in
  /// general, Theorem 5.1.2).
  size_t max_nodes = 50000000;
};

/// EXISTENCE-OF-EXPLANATION (Definition 5.2): does any explanation for
/// a ∉ Ans exist w.r.t. the bound ontology? NP-complete in general, even
/// for bounded schema arity (Theorem 5.1.2); decided by backtracking over
/// positions with answer-set pruning and memoization of defeated states.
/// If `witness` is non-null and an explanation exists, one is stored.
/// `covers`, when non-null, must be the answer-cover table of
/// (bound, InternAnswers(bound, wni)) (a prepared ExplainSession's warm
/// table); the traversal, witness, and node counts are identical.
Result<bool> ExistsExplanation(onto::BoundOntology* bound,
                               const WhyNotInstance& wni,
                               Explanation* witness = nullptr,
                               const ExistenceOptions& options = {},
                               ConceptAnswerCovers* covers = nullptr);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_EXISTENCE_H_
