#include "whynot/explain/schema_mge.h"

namespace whynot::explain {

Result<std::vector<LsExplanation>> ComputeAllMgeDerived(
    const WhyNotInstance& wni, const DerivedMgeOptions& options) {
  ls::MaterializeOptions mat;
  mat.fragment = options.fragment;
  mat.mode = options.mode;
  mat.max_concepts = options.max_concepts;
  mat.schema_options = options.schema_options;
  // Deduplication by extension identifies concepts modulo ≡_{O_I}; for
  // ⊑_S-based ontologies, concepts equal on I may still differ under ⊑_S
  // (Example 4.9: E7 vs E8), so representatives must not be merged.
  mat.dedup_by_extension = options.mode == ls::SubsumptionMode::kInstance;

  WHYNOT_ASSIGN_OR_RETURN(
      std::unique_ptr<ls::LsOntology> ontology,
      ls::LsOntology::Materialize(wni.instance, wni.missing, mat));
  onto::BoundOntology bound(ontology.get(), wni.instance);
  WHYNOT_ASSIGN_OR_RETURN(
      std::vector<Explanation> mges,
      ExhaustiveSearchAllMge(&bound, wni, options.exhaustive));
  std::vector<LsExplanation> out;
  out.reserve(mges.size());
  for (const Explanation& e : mges) {
    LsExplanation le;
    le.reserve(e.size());
    for (onto::ConceptId id : e) le.push_back(ontology->Concept(id));
    out.push_back(std::move(le));
  }
  return out;
}

Result<LsExplanation> ComputeOneMgeDerived(const WhyNotInstance& wni,
                                           const DerivedMgeOptions& options) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<LsExplanation> all,
                          ComputeAllMgeDerived(wni, options));
  if (all.empty()) {
    return Status::NotFound(
        "no most-general explanation found (with nominals in the language "
        "this cannot happen; check the materialization fragment)");
  }
  return all.front();
}

}  // namespace whynot::explain
