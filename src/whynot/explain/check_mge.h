#ifndef WHYNOT_EXPLAIN_CHECK_MGE_H_
#define WHYNOT_EXPLAIN_CHECK_MGE_H_

#include "whynot/common/exec_control.h"
#include "whynot/common/status.h"
#include "whynot/concepts/concept_cache.h"
#include "whynot/concepts/lub.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

/// CHECK-MGE (Definition 5.3, Theorem 5.1.1, PTIME): is the candidate a
/// most-general explanation w.r.t. the bound finite ontology?
///
/// Method (as in the paper): first check it is an explanation; then, for
/// each position, try every strictly-more-general replacement concept — if
/// any replacement keeps the tuple an explanation, the candidate is not
/// most general. Single-position replacement is complete because a
/// pointwise-greater explanation stays an explanation when all other
/// positions are shrunk back.
/// `covers`, when non-null, must be the answer-cover table of
/// (bound, InternAnswers(bound, wni)) — a prepared ExplainSession's warm
/// table; results are identical either way. `exec` is observed once per
/// candidate position, at the same serial point on the serial and sharded
/// paths; the boolean verdict admits no meaningful partial result, so a
/// stop always returns the matching error status.
Result<bool> CheckMgeExternal(onto::BoundOntology* bound,
                              const WhyNotInstance& wni,
                              const Explanation& candidate,
                              ConceptAnswerCovers* covers = nullptr,
                              const exec::ExecContext* exec = nullptr);

/// CHECK-MGE W.R.T. OI (Definition 5.7, Proposition 5.2): is the candidate
/// LS-explanation most general w.r.t. the instance-derived ontology OI?
///
/// Method (lines 4-11 of Algorithm 2 in reverse): for each position j and
/// each constant b ∈ adom(I) \ ext(Cj), replace Cj with
/// lub(ext(Cj,I) ∪ {b}); the candidate is an MGE iff no replacement (and no
/// generalization to ⊤) keeps the tuple an explanation. PTIME for
/// selection-free LS and for bounded schema arity, EXPTIME in general.
/// `cache` / `covers`, when non-null, are a prepared session's warm
/// extension memo and answer-cover table over (wni.instance, wni.answers);
/// per-call locals are created otherwise, with identical results.
/// `concept_cache`, when non-null, is the shared lub/eval cache the
/// maximality probes run through (published-tier lookups during a sharded
/// sweep, misses published at its serial end; a session cache carries the
/// entries to later requests). Null uses a call-local cache; verdicts and
/// errors are identical either way.
/// `exec` follows the CheckMgeExternal contract (one probe per position,
/// stops are always errors).
Result<bool> CheckMgeDerived(const WhyNotInstance& wni,
                             const LsExplanation& candidate,
                             bool with_selections,
                             ls::LubContext* lub_context,
                             ls::EvalCache* cache = nullptr,
                             LsAnswerCovers* covers = nullptr,
                             ls::ConceptCache* concept_cache = nullptr,
                             const exec::ExecContext* exec = nullptr);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_CHECK_MGE_H_
