#include "whynot/explain/strong.h"

#include "whynot/relational/cq_eval.h"

namespace whynot::explain {

Result<StrongCheckResult> CheckStrongExplanation(
    const onto::FiniteOntology& ontology, const rel::UnionQuery& query,
    const Explanation& candidate,
    const std::vector<const rel::Instance*>& family) {
  StrongCheckResult result;
  for (const rel::Instance* instance : family) {
    onto::BoundOntology bound(&ontology, instance);
    if (!bound.CheckConsistent().ok()) continue;  // outside the quantifier
    ++result.instances_checked;
    WHYNOT_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                            rel::Evaluate(query, *instance));
    for (const Tuple& ans : answers) {
      bool inside = true;
      for (size_t i = 0; i < candidate.size() && inside; ++i) {
        ValueId id = bound.pool().Intern(ans[i]);
        inside = bound.Ext(candidate[i]).Contains(id);
      }
      if (inside) {
        result.refuted = true;
        result.counterexample =
            "answer " + TupleToString(ans) +
            " lies in the concept product on a consistent instance with " +
            std::to_string(instance->NumFacts()) + " facts";
        return result;
      }
    }
  }
  return result;
}

}  // namespace whynot::explain
