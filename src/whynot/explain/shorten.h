#ifndef WHYNOT_EXPLAIN_SHORTEN_H_
#define WHYNOT_EXPLAIN_SHORTEN_H_

#include "whynot/common/status.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

/// Proposition 6.2 (PTIME): removes conjuncts of `concept_expr` while the
/// result stays ≡_{O_I}-equivalent (equal extension on I). The output is
/// irredundant: no strict subset of its conjuncts is equivalent.
ls::LsConcept MakeIrredundant(const ls::LsConcept& concept_expr,
                              const rel::Instance& instance);

/// Applies MakeIrredundant to every position. Combined with INCREMENTAL
/// SEARCH this computes an irredundant most-general explanation in
/// polynomial time (Section 6).
LsExplanation MakeIrredundant(const LsExplanation& explanation,
                              const rel::Instance& instance);

struct MinimizeOptions {
  /// Search cap: shortest-equivalent search is NP-hard (Propositions 6.1
  /// and 6.3).
  size_t max_nodes = 2000000;
  /// Candidate conjunct pool: selection-free keeps the pool polynomial.
  bool with_selections = false;
};

/// Proposition 6.3: a *minimized* equivalent of `concept_expr` — a shortest
/// concept with the same extension on I, found by exhaustive subset search
/// over the candidate conjunct pool (every irredundant concept is a subset
/// of valid conjuncts, but a minimized one may use conjuncts absent from
/// the input, so the pool is rebuilt from the instance). NP-hard in
/// general; the cap yields ResourceExhausted on blowup.
Result<ls::LsConcept> MinimizeEquivalent(const ls::LsConcept& concept_expr,
                                         const rel::Instance& instance,
                                         const MinimizeOptions& options = {});

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_SHORTEN_H_
