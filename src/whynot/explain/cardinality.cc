#include "whynot/explain/cardinality.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "whynot/common/parallel.h"
#include "whynot/explain/candidate_space.h"
#include "whynot/explain/existence.h"

namespace whynot::explain {

namespace {

/// Candidates per parallel filter round (see exhaustive.cc).
constexpr size_t kFilterChunk = 1 << 16;

}  // namespace

Degree DegreeOf(onto::BoundOntology* bound, const Explanation& e) {
  Degree d;
  for (onto::ConceptId c : e) {
    const onto::ExtSet& ext = bound->Ext(c);
    if (ext.is_all()) {
      d.infinite = true;
    } else {
      d.finite += ext.size();
    }
  }
  return d;
}

Result<std::optional<CardinalityResult>> ExactCardMaximal(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options) {
  // Enumerate the full candidate product (as in Algorithm 1 line 2) and
  // keep the highest-degree explanation.
  std::vector<std::vector<onto::ConceptId>> lists(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) return std::optional<CardinalityResult>();
  }
  ConceptAnswerCovers covers(bound, InternAnswers(bound, wni));
  // Pre-resolve cover pointers aligned with the candidate lists: the
  // enumeration's avoidance test is then an m-way word AND with no
  // per-candidate cover lookups.
  size_t m = wni.arity();
  ConceptAnswerCovers::ListCovers list_covers(&covers, lists);
  CandidateSpace space(lists);
  if (space.overflow() || space.total() > options.max_candidates) {
    return Status::ResourceExhausted(
        "exact >card-maximal enumeration exceeded max_candidates "
        "(Proposition 6.4: no PTIME algorithm exists unless P=NP)");
  }

  std::optional<CardinalityResult> best;
  std::vector<size_t> idx(m, 0);
  Explanation current(m);
  if (par::NumThreads() <= 1) {
    for (size_t linear = 0; linear < space.total(); ++linear) {
      for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
      if (!list_covers.ProductAnyAt(idx)) {
        Degree d = DegreeOf(bound, current);
        if (!best.has_value() || d > best->degree) {
          best = CardinalityResult{current, d};
        }
      }
      space.Advance(&idx);
    }
    return best;
  }

  // Sharded by linear candidate range: blocks keep their own best (strict
  // improvement only, so the *first* candidate of a degree wins within a
  // block) and merge in range order with the same strict comparison — the
  // overall winner is the serial loop's. Everything read in a block
  // (covers table, warm extensions for DegreeOf) is immutable.
  std::vector<std::pair<size_t, CardinalityResult>> block_best;
  std::mutex mutex;
  for (size_t chunk = 0; chunk < space.total(); chunk += kFilterChunk) {
    size_t chunk_end = std::min(space.total(), chunk + kFilterChunk);
    par::ParallelFor(chunk_end - chunk, 1024, [&](size_t begin, size_t end) {
      std::optional<CardinalityResult> local;
      std::vector<size_t> block_idx;
      Explanation cand(m);
      space.Decode(chunk + begin, &block_idx);
      for (size_t off = begin; off < end; ++off) {
        if (!list_covers.ProductAnyAt(block_idx)) {
          for (size_t i = 0; i < m; ++i) cand[i] = lists[i][block_idx[i]];
          Degree d = DegreeOf(bound, cand);
          if (!local.has_value() || d > local->degree) {
            local = CardinalityResult{cand, d};
          }
        }
        space.Advance(&block_idx);
      }
      if (local.has_value()) {
        std::lock_guard<std::mutex> lock(mutex);
        block_best.emplace_back(chunk + begin, std::move(*local));
      }
    });
  }
  std::sort(block_best.begin(), block_best.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [begin, result] : block_best) {
    if (!best.has_value() || result.degree > best->degree) {
      best = std::move(result);
    }
  }
  return best;
}

Result<std::optional<CardinalityResult>> GreedyCardinalityClimb(
    onto::BoundOntology* bound, const WhyNotInstance& wni) {
  Explanation seed;
  WHYNOT_ASSIGN_OR_RETURN(bool exists, ExistsExplanation(bound, wni, &seed));
  if (!exists) return std::optional<CardinalityResult>();
  ConceptAnswerCovers covers(bound, InternAnswers(bound, wni));

  // Per-position candidate lists are loop-invariant; hoist them out of
  // the climb.
  std::vector<std::vector<onto::ConceptId>> candidates(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    candidates[i] =
        bound->ConceptsContaining(bound->pool().Intern(wni.missing[i]));
  }

  Explanation current = seed;
  Degree degree = DegreeOf(bound, current);
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i < current.size(); ++i) {
      // Positions other than i are stable across this candidate sweep
      // (an accepted swap only changes position i), so their covers AND
      // once; each candidate is one word-parallel intersect-any.
      std::vector<uint64_t> base = covers.AndAllExcept(current, i);
      const std::vector<onto::ConceptId>& list = candidates[i];
      if (par::NumThreads() <= 1) {
        for (onto::ConceptId c : list) {
          if (c == current[i]) continue;
          if (ConceptAnswerCovers::AnyAnd(base, covers.Cover(c, i))) continue;
          Explanation probe = current;
          probe[i] = c;
          Degree d = DegreeOf(bound, probe);
          if (d > degree) {
            current = std::move(probe);
            degree = d;
            improved = true;
          }
        }
        continue;
      }
      // The ANDs are the sweep's hot part and independent per candidate,
      // so they shard across the pool into an index-addressed validity
      // mask; the acceptance scan — whose degree threshold ratchets
      // within the sweep — replays serially in candidate order, exactly
      // as the serial loop.
      std::vector<const uint64_t*> cover_at(list.size());
      for (size_t c = 0; c < list.size(); ++c) {
        cover_at[c] = covers.Cover(list[c], i);
      }
      std::vector<uint8_t> valid(list.size(), 0);
      par::ParallelFor(list.size(), 64, [&](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          valid[c] = !ConceptAnswerCovers::AnyAnd(base, cover_at[c]);
        }
      });
      for (size_t c = 0; c < list.size(); ++c) {
        if (list[c] == current[i] || !valid[c]) continue;
        Explanation probe = current;
        probe[i] = list[c];
        Degree d = DegreeOf(bound, probe);
        if (d > degree) {
          current = std::move(probe);
          degree = d;
          improved = true;
        }
      }
    }
  }
  return std::optional<CardinalityResult>(CardinalityResult{current, degree});
}

}  // namespace whynot::explain
