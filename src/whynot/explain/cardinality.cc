#include "whynot/explain/cardinality.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "whynot/explain/existence.h"
#include "whynot/explain/search_core.h"

namespace whynot::explain {

Degree DegreeOf(onto::BoundOntology* bound, const Explanation& e) {
  Degree d;
  for (onto::ConceptId c : e) {
    const onto::ExtSet& ext = bound->Ext(c);
    if (ext.is_all()) {
      d.infinite = true;
    } else {
      d.finite += ext.size();
    }
  }
  return d;
}

Result<std::optional<CardinalityResult>> ExactCardMaximal(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options, ConceptAnswerCovers* covers) {
  // Enumerate the full candidate product (as in Algorithm 1 line 2) and
  // keep the highest-degree explanation.
  std::vector<std::vector<onto::ConceptId>> lists(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) return std::optional<CardinalityResult>();
  }
  std::optional<ConceptAnswerCovers> local;
  if (covers == nullptr) {
    local.emplace(bound, InternAnswers(bound, wni));
    covers = &*local;
  }
  size_t m = wni.arity();
  CandidateSpace space(lists);
  if (space.overflow() || space.total() > options.max_candidates) {
    return Status::ResourceExhausted(
        "exact >card-maximal enumeration exceeded max_candidates "
        "(Proposition 6.4: no PTIME algorithm exists unless P=NP)");
  }
  // Pre-resolved cover table: the avoidance ANDs — the dominant cost —
  // shard through the shared candidate filter, while the degree ratchet
  // (strict improvement only, so the *first* candidate of a degree wins)
  // replays serially over the survivors in the serial odometer's order.
  // On spaces large enough to amortize the setup, degrees come from the
  // table's resolved sizes (a handful of adds per survivor, even when
  // nothing is filtered); tiny spaces keep the direct DegreeOf, whose
  // two warm extension loads per survivor undercut the table build.
  CoverTable table(covers, lists);
  const bool table_degree = space.total() >= 4096;
  if (table_degree) table.ResolveSizes(bound, lists);

  std::optional<CardinalityResult> best;
  Explanation current(m);
  WHYNOT_RETURN_IF_ERROR(ParallelFilterSpace(
      space,
      [&](const std::vector<size_t>& idx) { return !table.ProductAnyAt(idx); },
      [&](const std::vector<size_t>& idx) {
        Degree d;
        if (table_degree) {
          table.DegreeAt(idx, &d.infinite, &d.finite);
        } else {
          for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
          d = DegreeOf(bound, current);
        }
        if (!best.has_value() || d > best->degree) {
          for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
          best = CardinalityResult{current, d};
        }
        return true;
      }));
  return best;
}

Result<std::optional<CardinalityResult>> GreedyCardinalityClimb(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    ConceptAnswerCovers* covers) {
  std::optional<ConceptAnswerCovers> local;
  if (covers == nullptr) {
    local.emplace(bound, InternAnswers(bound, wni));
    covers = &*local;
  }
  Explanation seed;
  WHYNOT_ASSIGN_OR_RETURN(bool exists,
                          ExistsExplanation(bound, wni, &seed, {}, covers));
  if (!exists) return std::optional<CardinalityResult>();

  // Per-position candidate lists are loop-invariant; hoist them out of
  // the climb.
  std::vector<std::vector<onto::ConceptId>> candidates(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    candidates[i] =
        bound->ConceptsContaining(bound->pool().Intern(wni.missing[i]));
  }

  Explanation current = seed;
  Degree degree = DegreeOf(bound, current);
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i < current.size(); ++i) {
      // Positions other than i are stable across this candidate sweep
      // (an accepted swap only changes position i), so their covers AND
      // once; each candidate is one word-parallel intersect-any.
      std::vector<uint64_t> base = covers->AndAllExcept(current, i);
      const std::vector<onto::ConceptId>& list = candidates[i];
      if (par::NumThreads() <= 1) {
        for (onto::ConceptId c : list) {
          if (c == current[i]) continue;
          if (ConceptAnswerCovers::AnyAnd(base, covers->Cover(c, i))) continue;
          Explanation probe = current;
          probe[i] = c;
          Degree d = DegreeOf(bound, probe);
          if (d > degree) {
            current = std::move(probe);
            degree = d;
            improved = true;
          }
        }
        continue;
      }
      // The ANDs are the sweep's hot part and independent per candidate,
      // so they shard across the pool into an index-addressed validity
      // mask; the acceptance scan — whose degree threshold ratchets
      // within the sweep — replays serially in candidate order, exactly
      // as the serial loop.
      std::vector<const uint64_t*> cover_at =
          CoverTable::ResolveList(covers, list, i);
      std::vector<uint8_t> valid(list.size(), 0);
      par::ParallelFor(list.size(), 64, [&](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          valid[c] = !ConceptAnswerCovers::AnyAnd(base, cover_at[c]);
        }
      });
      for (size_t c = 0; c < list.size(); ++c) {
        if (list[c] == current[i] || !valid[c]) continue;
        Explanation probe = current;
        probe[i] = list[c];
        Degree d = DegreeOf(bound, probe);
        if (d > degree) {
          current = std::move(probe);
          degree = d;
          improved = true;
        }
      }
    }
  }
  return std::optional<CardinalityResult>(CardinalityResult{current, degree});
}

}  // namespace whynot::explain
