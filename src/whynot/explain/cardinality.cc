#include "whynot/explain/cardinality.h"

#include "whynot/explain/existence.h"

namespace whynot::explain {

Degree DegreeOf(onto::BoundOntology* bound, const Explanation& e) {
  Degree d;
  for (onto::ConceptId c : e) {
    const onto::ExtSet& ext = bound->Ext(c);
    if (ext.is_all()) {
      d.infinite = true;
    } else {
      d.finite += ext.size();
    }
  }
  return d;
}

Result<std::optional<CardinalityResult>> ExactCardMaximal(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options) {
  // Enumerate the full candidate product (as in Algorithm 1 line 2) and
  // keep the highest-degree explanation.
  std::vector<std::vector<onto::ConceptId>> lists(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) return std::optional<CardinalityResult>();
  }
  ConceptAnswerCovers covers(bound, InternAnswers(bound, wni));
  // Pre-resolve cover pointers aligned with the candidate lists: the
  // enumeration's avoidance test is then an m-way word AND with no
  // per-candidate cover lookups.
  size_t m = wni.arity();
  ConceptAnswerCovers::ListCovers list_covers(&covers, lists);

  std::optional<CardinalityResult> best;
  std::vector<size_t> idx(m, 0);
  std::vector<onto::ConceptId> current(m);
  size_t count = 0;
  while (true) {
    if (++count > options.max_candidates) {
      return Status::ResourceExhausted(
          "exact >card-maximal enumeration exceeded max_candidates "
          "(Proposition 6.4: no PTIME algorithm exists unless P=NP)");
    }
    for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
    if (!list_covers.ProductAnyAt(idx)) {
      Degree d = DegreeOf(bound, current);
      if (!best.has_value() || d > best->degree) {
        best = CardinalityResult{current, d};
      }
    }
    size_t i = 0;
    while (i < m && ++idx[i] == lists[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == m) break;
  }
  return best;
}

Result<std::optional<CardinalityResult>> GreedyCardinalityClimb(
    onto::BoundOntology* bound, const WhyNotInstance& wni) {
  Explanation seed;
  WHYNOT_ASSIGN_OR_RETURN(bool exists, ExistsExplanation(bound, wni, &seed));
  if (!exists) return std::optional<CardinalityResult>();
  ConceptAnswerCovers covers(bound, InternAnswers(bound, wni));

  // Per-position candidate lists are loop-invariant; hoist them out of
  // the climb.
  std::vector<std::vector<onto::ConceptId>> candidates(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    candidates[i] =
        bound->ConceptsContaining(bound->pool().Intern(wni.missing[i]));
  }

  Explanation current = seed;
  Degree degree = DegreeOf(bound, current);
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i < current.size(); ++i) {
      // Positions other than i are stable across this candidate sweep
      // (an accepted swap only changes position i), so their covers AND
      // once; each candidate is one word-parallel intersect-any.
      std::vector<uint64_t> base = covers.AndAllExcept(current, i);
      for (onto::ConceptId c : candidates[i]) {
        if (c == current[i]) continue;
        if (ConceptAnswerCovers::AnyAnd(base, covers.Cover(c, i))) continue;
        Explanation probe = current;
        probe[i] = c;
        Degree d = DegreeOf(bound, probe);
        if (d > degree) {
          current = std::move(probe);
          degree = d;
          improved = true;
        }
      }
    }
  }
  return std::optional<CardinalityResult>(CardinalityResult{current, degree});
}

}  // namespace whynot::explain
