#include "whynot/explain/cardinality.h"

#include "whynot/explain/existence.h"

namespace whynot::explain {

Degree DegreeOf(onto::BoundOntology* bound, const Explanation& e) {
  Degree d;
  for (onto::ConceptId c : e) {
    const onto::ExtSet& ext = bound->Ext(c);
    if (ext.is_all()) {
      d.infinite = true;
    } else {
      d.finite += ext.size();
    }
  }
  return d;
}

Result<std::optional<CardinalityResult>> ExactCardMaximal(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options) {
  // Enumerate the full candidate product (as in Algorithm 1 line 2) and
  // keep the highest-degree explanation.
  std::vector<std::vector<onto::ConceptId>> lists(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) return std::optional<CardinalityResult>();
  }
  std::vector<std::vector<ValueId>> answers = InternAnswers(bound, wni);

  std::optional<CardinalityResult> best;
  size_t m = wni.arity();
  std::vector<size_t> idx(m, 0);
  std::vector<onto::ConceptId> current(m);
  size_t count = 0;
  while (true) {
    if (++count > options.max_candidates) {
      return Status::ResourceExhausted(
          "exact >card-maximal enumeration exceeded max_candidates "
          "(Proposition 6.4: no PTIME algorithm exists unless P=NP)");
    }
    for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
    if (!ProductIntersectsAnswers(bound, current, answers)) {
      Degree d = DegreeOf(bound, current);
      if (!best.has_value() || d > best->degree) {
        best = CardinalityResult{current, d};
      }
    }
    size_t i = 0;
    while (i < m && ++idx[i] == lists[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == m) break;
  }
  return best;
}

Result<std::optional<CardinalityResult>> GreedyCardinalityClimb(
    onto::BoundOntology* bound, const WhyNotInstance& wni) {
  Explanation seed;
  WHYNOT_ASSIGN_OR_RETURN(bool exists, ExistsExplanation(bound, wni, &seed));
  if (!exists) return std::optional<CardinalityResult>();
  std::vector<std::vector<ValueId>> answers = InternAnswers(bound, wni);

  // Per-position candidate lists are loop-invariant; hoist them out of
  // the climb.
  std::vector<std::vector<onto::ConceptId>> candidates(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    candidates[i] =
        bound->ConceptsContaining(bound->pool().Intern(wni.missing[i]));
  }

  Explanation current = seed;
  Degree degree = DegreeOf(bound, current);
  bool improved = true;
  while (improved) {
    improved = false;
    for (size_t i = 0; i < current.size(); ++i) {
      Explanation probe = current;
      for (onto::ConceptId c : candidates[i]) {
        if (c == current[i]) continue;
        probe[i] = c;
        if (ProductIntersectsAnswers(bound, probe, answers)) continue;
        Degree d = DegreeOf(bound, probe);
        if (d > degree) {
          current = probe;
          degree = d;
          improved = true;
        }
        probe[i] = current[i];
      }
    }
  }
  return std::optional<CardinalityResult>(CardinalityResult{current, degree});
}

}  // namespace whynot::explain
