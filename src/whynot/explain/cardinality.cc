#include "whynot/explain/cardinality.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "whynot/explain/existence.h"
#include "whynot/explain/search_core.h"

namespace whynot::explain {

Degree DegreeOf(onto::BoundOntology* bound, const Explanation& e) {
  Degree d;
  for (onto::ConceptId c : e) {
    const onto::ExtSet& ext = bound->Ext(c);
    if (ext.is_all()) {
      d.infinite = true;
    } else {
      d.finite += ext.size();
    }
  }
  return d;
}

Result<std::optional<CardinalityResult>> ExactCardMaximal(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options, ConceptAnswerCovers* covers,
    LatticeHandle* lattice) {
  // Enumerate the full candidate product (as in Algorithm 1 line 2) and
  // keep the highest-degree explanation.
  std::vector<std::vector<onto::ConceptId>> lists(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) {
      exec::FillCertificate(options.cert, exec::Stop{}, exec::Progress{}, 0);
      return std::optional<CardinalityResult>();
    }
  }
  std::optional<ConceptAnswerCovers> local;
  if (covers == nullptr) {
    local.emplace(bound, InternAnswers(bound, wni));
    covers = &*local;
  }
  size_t m = wni.arity();
  CandidateSpace space(lists);

  // The degree objective is ≼-monotone only when every candidate
  // extension is finite: the degree order compares finite parts even
  // between two infinite degrees, so with an All component a *less*
  // general tuple can rank strictly higher. Any All candidate therefore
  // pins the search to the odometer — the frontier would stop at maximal
  // passing products and could miss the degree winner below them.
  bool any_all = false;
  for (const auto& list : lists) {
    for (onto::ConceptId c : list) {
      if (bound->Ext(c).is_all()) {
        any_all = true;
        break;
      }
    }
    if (any_all) break;
  }
  std::unique_ptr<LatticeHandle> local_lattice;
  LatticeChoice choice =
      any_all ? LatticeChoice{}
              : ChooseStrategy(options.strategy, space, options.max_candidates,
                               bound, lattice, &local_lattice);
  if (!choice.use_lattice && options.cert == nullptr &&
      (space.overflow() || space.total() > options.max_candidates)) {
    return Status::ResourceExhausted(
        "exact >card-maximal enumeration exceeded max_candidates "
        "(Proposition 6.4: no PTIME algorithm exists unless P=NP)");
  }
  // Pre-resolved cover table: the avoidance ANDs — the dominant cost —
  // shard through the shared candidate filter, while the degree front
  // replays serially over the survivors in the serial odometer's order.
  // On spaces large enough to amortize the setup, degrees come from the
  // table's resolved sizes (a handful of adds per survivor, even when
  // nothing is filtered); tiny spaces keep the direct DegreeOf, whose
  // two warm extension loads per survivor undercut the table build. The
  // frontier path always resolves sizes: its hooks need degrees with no
  // side effects on the consume scratch.
  CoverTable table(covers, lists);
  const bool table_degree = choice.use_lattice || space.total() >= 4096;
  if (table_degree) table.ResolveSizes(bound, lists);

  // The running winners: every maximum-degree explanation seen so far
  // that no other maximum-degree explanation strictly dominates, in
  // arrival order. The front (rather than a first-wins ratchet) is what
  // makes the two strategies agree on the witness: the frontier only
  // replays ≼-maximal survivors, so the canonical pick has to be the
  // earliest *undominated* witness — which, degree being monotone here,
  // is exactly the earliest maximal one the odometer also keeps.
  std::vector<CardinalityResult> front;
  Explanation current(m);
  auto degree_at = [&](const std::vector<size_t>& idx) {
    Degree d;
    if (table_degree) {
      table.DegreeAt(idx, &d.infinite, &d.finite);
    } else {
      for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
      d = DegreeOf(bound, current);
    }
    return d;
  };
  auto pred = [&](const std::vector<size_t>& idx) {
    return !table.ProductAnyAt(idx);
  };
  auto consume = [&](const std::vector<size_t>& idx) {
    Degree d = degree_at(idx);
    if (!front.empty() && front.front().degree > d) return true;
    for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
    if (front.empty() || d > front.front().degree) {
      front.clear();
      front.push_back(CardinalityResult{current, d});
      return true;
    }
    // Degree tie: keep only witnesses no tying explanation strictly
    // dominates, earliest first.
    for (const CardinalityResult& k : front) {
      if (StrictlyLessGeneral(*bound, current, k.explanation)) return true;
    }
    front.erase(
        std::remove_if(front.begin(), front.end(),
                       [&](const CardinalityResult& k) {
                         return StrictlyLessGeneral(*bound, k.explanation,
                                                    current);
                       }),
        front.end());
    front.push_back(CardinalityResult{current, d});
    return true;
  };

  const bool certified = options.cert != nullptr;
  exec::Stop stop;
  exec::Progress progress;
  exec::Stop* stop_p = certified ? &stop : nullptr;
  if (choice.use_lattice) {
    // Branch and bound on the degree: on_pass tracks the best degree over
    // *passing* products as the wave merge reaches them; a failing
    // product strictly beaten by that bound cannot hold a tying witness
    // anywhere in its downset (degrees only shrink along ≼), so its
    // expansion is cut. Ties must expand — a downset member can still
    // join the front.
    std::optional<Degree> best_degree;
    LatticeFrontierHooks hooks;
    hooks.pred = pred;
    hooks.consume = consume;
    hooks.on_pass = [&](const std::vector<size_t>& idx) {
      Degree d = degree_at(idx);
      if (!best_degree.has_value() || d > *best_degree) best_degree = d;
    };
    hooks.expand = [&](const std::vector<size_t>& idx) {
      return !best_degree.has_value() || !(*best_degree > degree_at(idx));
    };
    PruneStats local_ps;
    PruneStats* ps = certified ? &local_ps : options.prune_stats;
    WHYNOT_RETURN_IF_ERROR(LatticeFilterSpace(space, *choice.lattice, lists,
                                              options.max_candidates, hooks,
                                              ps, options.exec, stop_p));
    if (certified) {
      progress.tested = local_ps.products_enumerated;
      progress.remaining = local_ps.products_skipped;
      if (options.prune_stats != nullptr) {
        AccumulatePruneStats(options.prune_stats, local_ps);
      }
    }
  } else {
    WHYNOT_RETURN_IF_ERROR(ParallelFilterSpace(
        space, options.exec, stop_p,
        certified ? options.max_candidates : SIZE_MAX, pred, consume));
    if (certified) {
      size_t total = space.overflow() ? SIZE_MAX : space.total();
      progress.tested =
          stop.reason != exec::StopReason::kNone ? stop.at : total;
      progress.remaining = total - progress.tested;
    }
  }
  exec::FillCertificate(options.cert, stop, progress,
                        front.empty() ? 0 : front.front().degree.finite);
  if (front.empty()) return std::optional<CardinalityResult>();
  return std::optional<CardinalityResult>(std::move(front.front()));
}

Result<std::optional<CardinalityResult>> GreedyCardinalityClimb(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    ConceptAnswerCovers* covers, const exec::ExecContext* exec,
    exec::Certificate* cert) {
  std::optional<ConceptAnswerCovers> local;
  if (covers == nullptr) {
    local.emplace(bound, InternAnswers(bound, wni));
    covers = &*local;
  }
  // The greedy certificate is filled by hand rather than through
  // FillCertificate: a converged climb is still only a local optimum, so
  // its quality never rises above kHeuristic.
  size_t probes = 0;
  auto fill_cert = [&](const exec::Stop& stop, size_t best) {
    if (cert == nullptr) return;
    cert->quality = exec::Quality::kHeuristic;
    cert->stop = stop.reason;
    cert->progress = exec::Progress{};
    cert->progress.tested = probes;
    cert->progress.best_so_far = best;
  };
  Explanation seed;
  ExistenceOptions eopts;
  eopts.exec = exec;
  exec::Certificate seed_cert;
  if (cert != nullptr) eopts.cert = &seed_cert;
  WHYNOT_ASSIGN_OR_RETURN(bool exists,
                          ExistsExplanation(bound, wni, &seed, eopts, covers));
  if (!exists) {
    // Either no explanation exists or the seed search itself was stopped;
    // the seed certificate's stop distinguishes the two.
    if (cert != nullptr) {
      cert->quality = exec::Quality::kHeuristic;
      cert->stop = seed_cert.stop;
      cert->progress = seed_cert.progress;
    }
    return std::optional<CardinalityResult>();
  }

  // Per-position candidate lists are loop-invariant; hoist them out of
  // the climb.
  std::vector<std::vector<onto::ConceptId>> candidates(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    candidates[i] =
        bound->ConceptsContaining(bound->pool().Intern(wni.missing[i]));
  }

  Explanation current = seed;
  Degree degree = DegreeOf(bound, current);
  // Stops are observed once per candidate examined, always at the serial
  // acceptance point — the parallel path's sharded ANDs are pure and
  // index-addressed, so the climb state at any stop ordinal is identical
  // for every thread count. A stopped climb returns the current (sound)
  // explanation when certified; the certificate's stop records where the
  // climb was cut.
  std::optional<exec::Stop> halted;
  auto check = [&]() -> Status {
    size_t probe = probes++;
    if (std::optional<exec::Stop> s = exec::Check(exec, probe)) {
      if (cert == nullptr) return exec::StopStatus(*s, "greedy climb");
      halted = *s;
    }
    return Status::OK();
  };
  bool improved = true;
  while (improved && !halted.has_value()) {
    improved = false;
    for (size_t i = 0; i < current.size() && !halted.has_value(); ++i) {
      // Positions other than i are stable across this candidate sweep
      // (an accepted swap only changes position i), so their covers AND
      // once; each candidate is one word-parallel intersect-any.
      std::vector<uint64_t> base = covers->AndAllExcept(current, i);
      const std::vector<onto::ConceptId>& list = candidates[i];
      if (par::NumThreads() <= 1) {
        for (onto::ConceptId c : list) {
          WHYNOT_RETURN_IF_ERROR(check());
          if (halted.has_value()) break;
          if (c == current[i]) continue;
          if (ConceptAnswerCovers::AnyAndView(base, covers->Cover(c, i))) {
            continue;
          }
          Explanation probe = current;
          probe[i] = c;
          Degree d = DegreeOf(bound, probe);
          if (d > degree) {
            current = std::move(probe);
            degree = d;
            improved = true;
          }
        }
        continue;
      }
      // The ANDs are the sweep's hot part and independent per candidate,
      // so they shard across the pool into an index-addressed validity
      // mask; the acceptance scan — whose degree threshold ratchets
      // within the sweep — replays serially in candidate order, exactly
      // as the serial loop.
      std::vector<CoverView> cover_at =
          CoverTable::ResolveList(covers, list, i);
      std::vector<uint8_t> valid(list.size(), 0);
      par::ParallelFor(list.size(), 64, [&](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          valid[c] = !ConceptAnswerCovers::AnyAndView(base, cover_at[c]);
        }
      });
      for (size_t c = 0; c < list.size(); ++c) {
        WHYNOT_RETURN_IF_ERROR(check());
        if (halted.has_value()) break;
        if (list[c] == current[i] || !valid[c]) continue;
        Explanation probe = current;
        probe[i] = list[c];
        Degree d = DegreeOf(bound, probe);
        if (d > degree) {
          current = std::move(probe);
          degree = d;
          improved = true;
        }
      }
    }
  }
  fill_cert(halted.value_or(exec::Stop{}), degree.finite);
  return std::optional<CardinalityResult>(CardinalityResult{current, degree});
}

}  // namespace whynot::explain
