#include "whynot/explain/strong_decide.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "whynot/common/strings.h"
#include "whynot/concepts/ls_eval.h"
#include "whynot/relational/cq_eval.h"
#include "whynot/relational/interval.h"
#include "whynot/relational/views.h"

namespace whynot::explain {

const char* StrongVerdictName(StrongVerdict v) {
  switch (v) {
    case StrongVerdict::kStrong:
      return "strong";
    case StrongVerdict::kNotStrong:
      return "not-strong";
    case StrongVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

namespace {

// One way to satisfy "x ∈ ⟦conjunct⟧" in some instance: a set of atoms
// (over data relations), comparisons over their variables, an optional
// equality pin on x (nominals), and the variable to unify with x (empty
// for ⊤ / nominal-only options).
struct MembershipOption {
  std::vector<rel::Atom> atoms;
  std::vector<rel::Comparison> comparisons;
  std::optional<Value> pin;
  std::string out_var;
};

// The canonical pattern under construction: a union-find over term nodes,
// each carrying an interval constraint, plus atoms whose arguments are
// node ids.
class Pattern {
 public:
  int NodeForVar(const std::string& var) {
    auto it = var_node_.find(var);
    if (it != var_node_.end()) return it->second;
    int id = NewNode();
    var_node_.emplace(var, id);
    return id;
  }

  int NodeForConst(const Value& v) {
    int id = NewNode();
    nodes_[static_cast<size_t>(id)].interval.Narrow(rel::CmpOp::kEq, v);
    return id;
  }

  void AddAtom(const std::string& relation, std::vector<int> args) {
    atoms_.push_back({relation, std::move(args)});
  }

  // Adds the atom, allocating nodes for its terms under `rename`.
  void AddAtom(const rel::Atom& atom,
               const std::map<std::string, std::string>& rename) {
    std::vector<int> args;
    args.reserve(atom.args.size());
    for (const rel::Term& t : atom.args) {
      if (t.is_var()) {
        auto it = rename.find(t.var());
        args.push_back(
            NodeForVar(it == rename.end() ? t.var() : it->second));
      } else {
        args.push_back(NodeForConst(t.constant()));
      }
    }
    AddAtom(atom.relation, std::move(args));
  }

  void Narrow(int node, rel::CmpOp op, const Value& c) {
    nodes_[static_cast<size_t>(Find(node))].interval.Narrow(op, c);
  }

  void Unite(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    nodes_[static_cast<size_t>(a)].interval.Merge(
        nodes_[static_cast<size_t>(b)].interval);
    nodes_[static_cast<size_t>(b)].parent = a;
  }

  int Find(int x) const {
    while (nodes_[static_cast<size_t>(x)].parent != x) {
      x = nodes_[static_cast<size_t>(x)].parent;
    }
    return x;
  }

  const rel::IntervalConstraint& IntervalOf(int node) const {
    return nodes_[static_cast<size_t>(Find(node))].interval;
  }

  bool Infeasible() const {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i].parent == static_cast<int>(i) && nodes_[i].interval.empty) {
        return true;
      }
    }
    return false;
  }

  // Chases the functional dependencies: whenever two atoms of R must agree
  // on the FD's lhs attributes (same node class, or classes pinned to equal
  // constants), their rhs attributes are united. Runs to fixpoint; returns
  // false if an interval became empty (no instance can embed the pattern).
  bool ChaseFds(const rel::Schema& schema) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const rel::FunctionalDependency& fd : schema.fds()) {
        std::vector<const PatternAtom*> over;
        for (const PatternAtom& a : atoms_) {
          if (a.relation == fd.relation) over.push_back(&a);
        }
        for (size_t i = 0; i < over.size(); ++i) {
          for (size_t j = i + 1; j < over.size(); ++j) {
            bool lhs_equal = true;
            for (int x : fd.lhs) {
              if (!MustEqual(over[i]->args[static_cast<size_t>(x)],
                             over[j]->args[static_cast<size_t>(x)])) {
                lhs_equal = false;
                break;
              }
            }
            if (!lhs_equal) continue;
            for (int y : fd.rhs) {
              int a = Find(over[i]->args[static_cast<size_t>(y)]);
              int b = Find(over[j]->args[static_cast<size_t>(y)]);
              if (a != b) {
                Unite(a, b);
                changed = true;
              }
            }
          }
        }
      }
      if (Infeasible()) return false;
    }
    return true;
  }

  // Assigns a value to every node class: pinned classes take their pin,
  // the rest take fresh pairwise-distinct witnesses from their intervals.
  // Returns false when a witness cannot be realized (documented non-dense
  // corner of the constant domain).
  bool Instantiate() {
    assignment_.assign(nodes_.size(), Value());
    std::set<Value> used;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (Find(static_cast<int>(i)) != static_cast<int>(i)) continue;
      if (nodes_[i].interval.eq.has_value()) {
        assignment_[i] = *nodes_[i].interval.eq;
        used.insert(assignment_[i]);
      }
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (Find(static_cast<int>(i)) != static_cast<int>(i)) continue;
      if (nodes_[i].interval.eq.has_value()) continue;
      std::optional<Value> w = rel::PickWitness(nodes_[i].interval, used);
      if (!w.has_value()) return false;
      assignment_[i] = *w;
      used.insert(*w);
    }
    return true;
  }

  const Value& ValueOf(int node) const {
    return assignment_[static_cast<size_t>(Find(node))];
  }

  Status PopulateInstance(rel::Instance* instance) const {
    for (const PatternAtom& a : atoms_) {
      Tuple t;
      t.reserve(a.args.size());
      for (int arg : a.args) t.push_back(ValueOf(arg));
      WHYNOT_RETURN_IF_ERROR(instance->AddFact(a.relation, std::move(t)));
    }
    return Status::OK();
  }

 private:
  struct PatternAtom {
    std::string relation;
    std::vector<int> args;
  };
  struct Node {
    int parent;
    rel::IntervalConstraint interval;
  };

  int NewNode() {
    Node n;
    n.parent = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(n));
    return nodes_.back().parent;
  }

  bool MustEqual(int a, int b) const {
    a = Find(a);
    b = Find(b);
    if (a == b) return true;
    const auto& ia = nodes_[static_cast<size_t>(a)].interval;
    const auto& ib = nodes_[static_cast<size_t>(b)].interval;
    return ia.eq.has_value() && ib.eq.has_value() && *ia.eq == *ib.eq;
  }

  std::vector<Node> nodes_;
  std::map<std::string, int> var_node_;
  std::vector<PatternAtom> atoms_;
  std::vector<Value> assignment_;
};

// Builds the membership options of one concept conjunct (see
// MembershipOption). `tag` makes variable names unique per conjunct.
Result<std::vector<MembershipOption>> ConjunctOptions(
    const ls::Conjunct& conjunct, const rel::Schema& schema,
    const std::string& tag, const StrongDecideOptions& options) {
  std::vector<MembershipOption> out;
  switch (conjunct.kind) {
    case ls::Conjunct::Kind::kTop:
      out.push_back({});
      return out;
    case ls::Conjunct::Kind::kNominal: {
      MembershipOption o;
      o.pin = conjunct.nominal;
      out.push_back(std::move(o));
      return out;
    }
    case ls::Conjunct::Kind::kProjection:
      break;
  }
  const rel::RelationDef* def = schema.Find(conjunct.relation);
  if (def == nullptr) {
    return Status::InvalidArgument("unknown relation in concept: " +
                                   conjunct.relation);
  }
  if (!def->is_view()) {
    MembershipOption o;
    rel::Atom atom;
    atom.relation = conjunct.relation;
    for (size_t a = 0; a < def->arity(); ++a) {
      atom.args.push_back(rel::Term::Var(tag + "v" + std::to_string(a)));
    }
    o.out_var = tag + "v" + std::to_string(conjunct.attr);
    for (const ls::Selection& sel : conjunct.selections) {
      o.comparisons.push_back(
          {tag + "v" + std::to_string(sel.attr), sel.op, sel.constant});
    }
    o.atoms.push_back(std::move(atom));
    out.push_back(std::move(o));
    return out;
  }
  // View: expand V(v0..vk-1) into a UCQ over data relations; every
  // expansion disjunct is one membership option.
  rel::ConjunctiveQuery view_cq;
  rel::Atom view_atom;
  view_atom.relation = conjunct.relation;
  for (size_t a = 0; a < def->arity(); ++a) {
    std::string v = tag + "h" + std::to_string(a);
    view_cq.head.push_back(v);
    view_atom.args.push_back(rel::Term::Var(v));
  }
  view_cq.atoms.push_back(std::move(view_atom));
  WHYNOT_ASSIGN_OR_RETURN(
      rel::UnionQuery expanded,
      rel::ExpandViews(view_cq, schema, options.max_expansion_disjuncts,
                       options.max_expansion_atoms));
  int disjunct_index = 0;
  for (const rel::ConjunctiveQuery& psi : expanded.disjuncts) {
    std::string prefix = tag + "d" + std::to_string(disjunct_index++) + "_";
    std::map<std::string, std::string> rename;
    for (const std::string& v : psi.Variables()) rename[v] = prefix + v;
    MembershipOption o;
    for (const rel::Atom& atom : psi.atoms) {
      rel::Atom renamed = atom;
      for (rel::Term& t : renamed.args) {
        if (t.is_var()) t = rel::Term::Var(rename.at(t.var()));
      }
      o.atoms.push_back(std::move(renamed));
    }
    for (const rel::Comparison& cmp : psi.comparisons) {
      o.comparisons.push_back({rename.at(cmp.var), cmp.op, cmp.constant});
    }
    o.out_var =
        rename.at(psi.head[static_cast<size_t>(conjunct.attr)]);
    for (const ls::Selection& sel : conjunct.selections) {
      o.comparisons.push_back(
          {rename.at(psi.head[static_cast<size_t>(sel.attr)]), sel.op,
           sel.constant});
    }
    out.push_back(std::move(o));
  }
  return out;
}

// Completes `instance` under the schema's inclusion dependencies by the
// standard (bounded) chase, materializing views between rounds so that IDs
// whose left side is a view fire as well. Returns true when the chase
// closed; false when the round budget ran out or an ID's right side is a
// view relation (whose extension cannot be grown directly).
Result<bool> ChaseIds(const rel::Schema& schema, int max_rounds,
                      int* fresh_counter, rel::Instance* instance) {
  if (!schema.HasIds()) {
    if (schema.HasViews()) {
      WHYNOT_RETURN_IF_ERROR(rel::MaterializeViews(instance));
    }
    return true;
  }
  for (int round = 0; round < max_rounds; ++round) {
    if (schema.HasViews()) {
      WHYNOT_RETURN_IF_ERROR(rel::MaterializeViews(instance));
    }
    bool added = false;
    for (const rel::InclusionDependency& id : schema.ids()) {
      const rel::RelationDef* rhs = schema.Find(id.rhs_relation);
      if (rhs == nullptr) {
        return Status::InvalidArgument("unknown relation in ID: " +
                                       id.rhs_relation);
      }
      // Collect existing rhs projections.
      std::set<Tuple> rhs_proj;
      for (const Tuple& t : instance->Relation(id.rhs_relation)) {
        Tuple p;
        for (int a : id.rhs_attrs) p.push_back(t[static_cast<size_t>(a)]);
        rhs_proj.insert(std::move(p));
      }
      std::vector<Tuple> to_add;
      for (const Tuple& t : instance->Relation(id.lhs_relation)) {
        Tuple p;
        for (int a : id.lhs_attrs) p.push_back(t[static_cast<size_t>(a)]);
        if (rhs_proj.count(p) > 0) continue;
        if (rhs->is_view()) {
          // Cannot insert into a derived relation.
          return false;
        }
        Tuple fresh(rhs->arity(), Value());
        for (size_t k = 0; k < id.rhs_attrs.size(); ++k) {
          fresh[static_cast<size_t>(id.rhs_attrs[k])] = p[k];
        }
        for (size_t a = 0; a < rhs->arity(); ++a) {
          bool pinned = false;
          for (int ra : id.rhs_attrs) {
            if (static_cast<size_t>(ra) == a) pinned = true;
          }
          if (!pinned) {
            // Labelled nulls are realized as hugely negative numbers:
            // strings sort above all numbers, so a string null would
            // spuriously satisfy every `attr >= c` view/query comparison
            // (and e.g. turn every chased city into a BigCity, making the
            // Figure 1 chase diverge). Far-negative values satisfy almost
            // no realistic comparison; a wrong guess only costs closure
            // (kUnknown), never soundness — counterexamples are verified.
            fresh[a] =
                Value(-1.0e15 - static_cast<double>((*fresh_counter)++));
          }
        }
        rhs_proj.insert(p);
        to_add.push_back(std::move(fresh));
      }
      for (Tuple& t : to_add) {
        WHYNOT_RETURN_IF_ERROR(
            instance->AddFact(id.rhs_relation, std::move(t)));
        added = true;
      }
    }
    if (!added) {
      if (schema.HasViews()) {
        WHYNOT_RETURN_IF_ERROR(rel::MaterializeViews(instance));
      }
      return true;
    }
  }
  return false;
}

}  // namespace

Result<StrongDecision> DecideStrongExplanation(
    const rel::Schema& schema, const rel::UnionQuery& query,
    const LsExplanation& candidate, const StrongDecideOptions& options) {
  WHYNOT_RETURN_IF_ERROR(query.Validate(schema));
  if (query.arity() != candidate.size()) {
    return Status::InvalidArgument(
        "candidate arity " + std::to_string(candidate.size()) +
        " does not match query arity " + std::to_string(query.arity()));
  }

  WHYNOT_ASSIGN_OR_RETURN(
      rel::UnionQuery expanded,
      rel::ExpandViews(query, schema, options.max_expansion_disjuncts,
                       options.max_expansion_atoms));

  // Membership options per (position, conjunct), shared across query
  // disjuncts.
  std::vector<std::vector<std::vector<MembershipOption>>> per_position;
  per_position.resize(candidate.size());
  for (size_t i = 0; i < candidate.size(); ++i) {
    const std::vector<ls::Conjunct>& conjuncts = candidate[i].conjuncts();
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      std::string tag = "m" + std::to_string(i) + "_" + std::to_string(c) + "_";
      WHYNOT_ASSIGN_OR_RETURN(
          std::vector<MembershipOption> opts,
          ConjunctOptions(conjuncts[c], schema, tag, options));
      per_position[i].push_back(std::move(opts));
    }
  }

  StrongDecision decision;
  std::vector<std::string> unknown_details;
  size_t branches = 0;

  for (size_t d = 0; d < expanded.disjuncts.size(); ++d) {
    const rel::ConjunctiveQuery& delta = expanded.disjuncts[d];

    // Odometer over the membership options of all (position, conjunct)
    // slots.
    std::vector<const std::vector<MembershipOption>*> slots;
    for (const auto& conjunct_opts : per_position) {
      for (const auto& opts : conjunct_opts) slots.push_back(&opts);
    }
    bool any_empty_slot = false;
    for (const auto* s : slots) {
      if (s->empty()) any_empty_slot = true;
    }
    if (any_empty_slot) continue;  // some conjunct is unsatisfiable

    std::vector<size_t> odo(slots.size(), 0);
    bool done = slots.empty() && false;
    while (!done) {
      if (++branches > options.max_branches) {
        decision.verdict = StrongVerdict::kUnknown;
        decision.detail = "branch cap exceeded (max_branches = " +
                          std::to_string(options.max_branches) + ")";
        return decision;
      }

      // --- Build the pattern for this combination.
      Pattern pattern;
      std::map<std::string, std::string> qrename;
      for (const std::string& v : delta.Variables()) qrename[v] = "q_" + v;
      for (const rel::Atom& atom : delta.atoms) {
        pattern.AddAtom(atom, qrename);
      }
      for (const rel::Comparison& cmp : delta.comparisons) {
        pattern.Narrow(pattern.NodeForVar("q_" + cmp.var), cmp.op,
                       cmp.constant);
      }
      size_t slot = 0;
      for (size_t i = 0; i < candidate.size(); ++i) {
        int head_node =
            pattern.NodeForVar("q_" + delta.head[i]);
        for (size_t c = 0; c < per_position[i].size(); ++c, ++slot) {
          const MembershipOption& opt = per_position[i][c][odo[slot]];
          if (opt.pin.has_value()) {
            pattern.Narrow(head_node, rel::CmpOp::kEq, *opt.pin);
          }
          for (const rel::Atom& atom : opt.atoms) {
            pattern.AddAtom(atom, {});
          }
          for (const rel::Comparison& cmp : opt.comparisons) {
            pattern.Narrow(pattern.NodeForVar(cmp.var), cmp.op, cmp.constant);
          }
          if (!opt.out_var.empty()) {
            pattern.Unite(pattern.NodeForVar(opt.out_var), head_node);
          }
        }
      }

      // --- Feasibility: FD chase, then interval satisfiability.
      bool feasible = !pattern.Infeasible();
      if (feasible && schema.HasFds()) feasible = pattern.ChaseFds(schema);
      if (feasible && !pattern.Instantiate()) {
        unknown_details.push_back(
            "disjunct " + std::to_string(d) +
            ": witness realization failed (non-dense corner)");
        feasible = false;
      }

      if (feasible) {
        // --- Build, complete, and verify the counterexample.
        rel::Instance counterexample(&schema);
        Status st = pattern.PopulateInstance(&counterexample);
        int fresh = 0;
        bool closed = false;
        if (st.ok()) {
          auto chased = ChaseIds(schema, options.max_chase_rounds, &fresh,
                                 &counterexample);
          if (!chased.ok()) {
            st = chased.status();
          } else {
            closed = chased.value();
          }
        }
        if (st.ok() && !closed) {
          unknown_details.push_back("disjunct " + std::to_string(d) +
                                    ": ID chase did not close");
        } else if (st.ok()) {
          Tuple witness;
          for (size_t i = 0; i < candidate.size(); ++i) {
            witness.push_back(
                pattern.ValueOf(pattern.NodeForVar("q_" + delta.head[i])));
          }
          // Verify against the public evaluators; a verified witness is a
          // definitive refutation.
          bool ok = counterexample.SatisfiesConstraints().ok();
          if (ok) {
            auto answers = rel::Evaluate(query, counterexample);
            ok = answers.ok() &&
                 std::binary_search(answers.value().begin(),
                                    answers.value().end(), witness);
          }
          for (size_t i = 0; ok && i < candidate.size(); ++i) {
            ok = ls::Eval(candidate[i], counterexample).Contains(witness[i]);
          }
          if (ok) {
            decision.verdict = StrongVerdict::kNotStrong;
            decision.counterexample = std::move(counterexample);
            decision.witness = std::move(witness);
            decision.detail =
                "query disjunct " + std::to_string(d) + " refutes";
            return decision;
          }
          unknown_details.push_back(
              "disjunct " + std::to_string(d) +
              ": constructed counterexample failed verification");
        } else {
          unknown_details.push_back("disjunct " + std::to_string(d) + ": " +
                                    st.ToString());
        }
      }

      // --- Advance the odometer.
      done = true;
      for (size_t s = 0; s < slots.size(); ++s) {
        if (++odo[s] < slots[s]->size()) {
          done = false;
          break;
        }
        odo[s] = 0;
      }
      if (slots.empty()) done = true;
    }
  }

  if (!unknown_details.empty()) {
    decision.verdict = StrongVerdict::kUnknown;
    decision.detail = Join(unknown_details, "; ");
  } else {
    decision.verdict = StrongVerdict::kStrong;
  }
  return decision;
}

Result<StrongDecision> IsStrongExplanation(const WhyNotInstance& wni,
                                           const LsExplanation& candidate,
                                           const StrongDecideOptions& options) {
  if (!IsLsExplanation(wni, candidate)) {
    return Status::InvalidArgument(
        "candidate is not an explanation for the given why-not instance "
        "(Definition 3.2); strong explanations are a subclass of "
        "explanations");
  }
  return DecideStrongExplanation(wni.schema(), wni.query, candidate, options);
}

}  // namespace whynot::explain
