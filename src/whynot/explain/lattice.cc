#include "whynot/explain/lattice.h"

#include <algorithm>
#include <numeric>

#include "whynot/common/parallel.h"

namespace whynot::explain {

namespace {

/// Any set bit in `a AND b` over `nwords` words.
bool AnyAndWords(const uint64_t* a, const uint64_t* b, size_t nwords) {
  for (size_t w = 0; w < nwords; ++w) {
    if (a[w] & b[w]) return true;
  }
  return false;
}

}  // namespace

ConceptLattice::ConceptLattice(onto::BoundOntology* bound)
    : n_(bound->NumConcepts()), leq_(n_), strict_up_(n_), strict_down_(n_) {
  // Extensions must be warm before pool workers read them (the lazy Ext
  // cache is not safe to fill concurrently).
  bound->WarmExtensions();
  size_t n = static_cast<size_t>(n_);

  // Pass 1 — the effective order, row-parallel: row c only writes its own
  // packed words. The subsumption probe gates the SubsetOf test, so the
  // word-parallel extension comparisons run once per ⊑ pair, not once per
  // concept pair.
  std::vector<uint8_t> row_consistent(n, 1);
  par::ParallelFor(n, 8, [&](size_t begin, size_t end) {
    for (size_t ci = begin; ci < end; ++ci) {
      onto::ConceptId c = static_cast<onto::ConceptId>(ci);
      const onto::ExtSet& ec = bound->Ext(c);
      for (int32_t d = 0; d < n_; ++d) {
        if (!bound->Subsumes(c, d)) continue;
        if (ec.SubsetOf(bound->Ext(d))) {
          leq_.Set(c, d);
        } else {
          row_consistent[ci] = 0;
        }
      }
    }
  });
  for (uint8_t ok : row_consistent) consistent_ = consistent_ && ok != 0;

  // Pass 2 — strict rows, from the finished leq_ matrix (needs column
  // reads, hence the barrier between the passes).
  par::ParallelFor(n, 8, [&](size_t begin, size_t end) {
    for (size_t ci = begin; ci < end; ++ci) {
      onto::ConceptId c = static_cast<onto::ConceptId>(ci);
      for (int32_t d = 0; d < n_; ++d) {
        bool cd = leq_.Get(c, d);
        bool dc = leq_.Get(d, c);
        if (cd && !dc) strict_up_.Set(c, d);
        if (dc && !cd) strict_down_.Set(c, d);
      }
    }
  });

  // Ranks: the strict relation is transitively closed, so a ≺ b implies
  // |strict-upset(a)| > |strict-upset(b)| and processing concepts by
  // increasing upset size sees every strict ancestor first.
  ranks_.assign(n, 0);
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<int32_t> up_count(n);
  for (int32_t c = 0; c < n_; ++c) {
    up_count[static_cast<size_t>(c)] = strict_up_.RowCount(c);
  }
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    return up_count[static_cast<size_t>(a)] < up_count[static_cast<size_t>(b)];
  });
  for (int32_t c : order) {
    int32_t r = 0;
    const uint64_t* row = strict_up_.RowWords(c);
    for (size_t w = 0; w < strict_up_.words_per_row(); ++w) {
      uint64_t word = row[w];
      while (word != 0) {
        size_t p = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
        r = std::max(r, ranks_[p] + 1);
        word &= word - 1;
      }
    }
    ranks_[static_cast<size_t>(c)] = r;
    depth_ = std::max(depth_, static_cast<size_t>(r) + 1);
  }
}

std::vector<uint32_t> ConceptLattice::MaximalOf(
    const std::vector<onto::ConceptId>& list) const {
  size_t nwords = words_per_row();
  std::vector<uint64_t> members(nwords, 0);
  for (onto::ConceptId c : list) {
    members[static_cast<size_t>(c) / 64] |= uint64_t{1}
                                            << (static_cast<size_t>(c) % 64);
  }
  std::vector<uint32_t> out;
  for (size_t i = 0; i < list.size(); ++i) {
    if (!AnyAndWords(StrictUpWords(list[i]), members.data(), nwords)) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

std::vector<onto::ConceptId> ConceptLattice::MinimalOf(
    const std::vector<onto::ConceptId>& list) const {
  size_t nwords = words_per_row();
  std::vector<uint64_t> members(nwords, 0);
  for (onto::ConceptId c : list) {
    members[static_cast<size_t>(c) / 64] |= uint64_t{1}
                                            << (static_cast<size_t>(c) % 64);
  }
  std::vector<onto::ConceptId> out;
  for (onto::ConceptId c : list) {
    if (!AnyAndWords(StrictDownWords(c), members.data(), nwords)) {
      out.push_back(c);
    }
  }
  return out;
}

LatticeChoice ChooseStrategy(SearchStrategy strategy,
                             const CandidateSpace& space,
                             size_t max_candidates,
                             onto::BoundOntology* bound,
                             LatticeHandle* handle,
                             std::unique_ptr<LatticeHandle>* local) {
  if (strategy == SearchStrategy::kOdometer) return {};
  bool over_budget = space.overflow() || space.total() > max_candidates;
  if (strategy == SearchStrategy::kAuto && !over_budget) return {};
  LatticeHandle* h = handle;
  if (h == nullptr) {
    *local = std::make_unique<LatticeHandle>(bound);
    h = local->get();
  }
  const ConceptLattice& lattice = h->Get();
  if (strategy == SearchStrategy::kAuto && !lattice.consistent()) return {};
  return {true, &lattice};
}

}  // namespace whynot::explain
