#include "whynot/explain/session.h"

#include <algorithm>
#include <utility>

#include "whynot/common/algorithm.h"
#include "whynot/relational/cq_eval.h"

namespace whynot::explain {

/// All warm state lives behind one heap allocation so the session is
/// cheaply movable while internal pointers (covers → answer vector,
/// covers → bound ontology) stay stable.
struct ExplainSession::State {
  const rel::Instance* instance = nullptr;
  const onto::FiniteOntology* ontology = nullptr;
  ExplainSessionOptions options;
  rel::UnionQuery query;
  bool has_query = false;
  uint64_t version = 0;

  /// The canonical answer vector lives in wni.answers; requests only swap
  /// the asked-about tuple, so Ans is never copied per request. wi keeps
  /// its own (equal) copy because the dual's instance struct owns one.
  WhyNotInstance wni;
  WhyInstance wi;

  // External-ontology warm state (null without an ontology).
  std::unique_ptr<onto::BoundOntology> bound;
  std::unique_ptr<ConceptAnswerCovers> covers;      // avoidance form
  std::unique_ptr<ConceptAnswerCovers> why_covers;  // counting (why dual)
  // Shared Hasse/downset state for the dominance-pruned searches. The
  // handle is lazy: Bind stays O(covers) and the O(|concepts|²) lattice
  // build runs only the first time a request actually escalates to the
  // frontier, after which every search on this binding reuses it.
  std::unique_ptr<LatticeHandle> lattice;

  // Derived-ontology (OI) warm state, shared across every request: the
  // lub context's canonical boxes, the eval cache's extension memo (whose
  // stable identities key the cover bitmaps), and the LS answer covers
  // over wni.answers.
  std::unique_ptr<ls::LubContext> lub;
  std::unique_ptr<ls::EvalCache> cache;
  std::unique_ptr<LsAnswerCovers> ls_covers;
  // The shared concept cache: every derived request publishes its lub+eval
  // results here and later requests start from the published tier. Entries
  // are dropped on rewarm (pure functions of the instance contents);
  // traffic counters survive.
  std::unique_ptr<ls::ConceptCache> concept_cache;
  // Persistent overlay for the *serial* searches (WhyNot / Why run on the
  // session thread): its private maps stay warm across requests, so a
  // repeated request's probes are raw local-map hits instead of
  // published-tier lookups that re-copy every concept into a fresh
  // overlay. Rebuilt on rewarm together with lub/cache it is bound to.
  // The parallel searches keep their own per-worker overlays.
  std::unique_ptr<ls::ConceptCacheOverlay> serial_overlay;

  /// Session-wide cancel flag, copied into every session-built request
  /// context so Cancel() from another thread reaches the request that is
  /// currently inside a search. Replaced wholesale by ResetCancel().
  exec::CancelToken cancel;
};

namespace {

/// The effective execution context of one request: an explicit caller
/// context wins verbatim (its own deadline, token, injector); otherwise
/// the session builds one from its default request deadline and its
/// cancel token. Always materialized — the per-probe cost of a default
/// context is one strided counter test.
exec::ExecContext MakeRequestExec(int64_t request_deadline_ms,
                                  const exec::CancelToken& cancel,
                                  const exec::ExecContext* exec) {
  if (exec != nullptr) return *exec;
  exec::ExecContext ctx;
  if (request_deadline_ms > 0) {
    ctx.deadline = exec::Deadline::After(request_deadline_ms);
  }
  ctx.cancel = cancel;
  return ctx;
}

}  // namespace

ExplainSession::ExplainSession(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

ExplainSession::ExplainSession(ExplainSession&&) noexcept = default;
ExplainSession& ExplainSession::operator=(ExplainSession&&) noexcept = default;
ExplainSession::~ExplainSession() = default;

std::unique_ptr<ExplainSession::State> ExplainSession::MakeState(
    const rel::Instance* instance, const onto::FiniteOntology* ontology,
    ExplainSessionOptions options) {
  auto state = std::make_unique<State>();
  state->instance = instance;
  state->ontology = ontology;
  // One shared LubContext serves every derived request, so both searches
  // must agree on its limits.
  options.incremental.lub = options.lub;
  options.enumerate.lub = options.lub;
  state->options = std::move(options);
  return state;
}

Result<ExplainSession> ExplainSession::Bind(const rel::Instance* instance,
                                            rel::UnionQuery query,
                                            const onto::FiniteOntology* ontology,
                                            ExplainSessionOptions options) {
  std::unique_ptr<State> state =
      MakeState(instance, ontology, std::move(options));
  state->query = std::move(query);
  state->has_query = true;
  state->wni.query = state->query;  // informational, as in the one-shot path
  ExplainSession session(std::move(state));
  WHYNOT_RETURN_IF_ERROR(session.Rewarm());
  return session;
}

Result<ExplainSession> ExplainSession::BindWithAnswers(
    const rel::Instance* instance, std::vector<Tuple> answers,
    const onto::FiniteOntology* ontology, ExplainSessionOptions options) {
  SortUnique(&answers);
  for (const Tuple& t : answers) {
    if (t.size() != answers.front().size()) {
      return Status::InvalidArgument("answer tuples have mixed arities");
    }
  }
  std::unique_ptr<State> state =
      MakeState(instance, ontology, std::move(options));
  state->has_query = false;
  state->wni.answers = std::move(answers);
  ExplainSession session(std::move(state));
  WHYNOT_RETURN_IF_ERROR(session.Rewarm());
  return session;
}

Status ExplainSession::Rewarm(const exec::ExecContext* exec) {
  State& s = *state_;
  if (s.has_query) {
    WHYNOT_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                            rel::Evaluate(s.query, *s.instance));
    s.wni.answers = std::move(answers);  // sorted, duplicate-free
  }
  s.wni.instance = s.instance;
  s.wi.instance = s.instance;
  s.wi.answers = s.wni.answers;

  // Force every lazy instance cache so request-time access — including
  // pool-worker reads inside the parallel searches — is read-only.
  s.instance->WarmForConcurrentReads();

  // Derived-ontology state. Build order matters: the covers index the
  // answer vector assigned above (its address inside this State is
  // stable; contents were just refreshed).
  s.lub = std::make_unique<ls::LubContext>(s.instance, s.options.lub);
  s.cache = std::make_unique<ls::EvalCache>(s.instance);
  s.ls_covers = std::make_unique<LsAnswerCovers>(s.instance, &s.wni.answers);
  if (s.concept_cache == nullptr) {
    s.concept_cache = std::make_unique<ls::ConceptCache>(
        s.instance, s.options.concept_cache);
  } else {
    s.concept_cache->Clear();
  }
  // After the Clear: stale overlay memos would otherwise outlive the
  // instance contents they were computed from.
  s.serial_overlay = std::make_unique<ls::ConceptCacheOverlay>(
      s.concept_cache.get(), s.options.incremental.with_selections,
      s.lub.get(), s.cache.get());

  s.covers.reset();
  s.why_covers.reset();
  s.lattice.reset();
  s.bound.reset();
  if (s.ontology != nullptr) {
    s.bound = std::make_unique<onto::BoundOntology>(s.ontology, s.instance);
    // A stop (or injected warm fault) aborts the rewarm before the covers
    // are rebuilt; s.version stays behind, so the next request retries the
    // warm-up from the concepts already cached.
    WHYNOT_RETURN_IF_ERROR(s.bound->WarmExtensions(exec));
    s.covers = std::make_unique<ConceptAnswerCovers>(
        s.bound.get(), InternAnswers(s.bound.get(), s.wni));
    s.why_covers = std::make_unique<ConceptAnswerCovers>(
        s.bound.get(), InternedUniqueAnswers(s.bound.get(), s.wi));
    s.lattice = std::make_unique<LatticeHandle>(s.bound.get());
  }
  s.version = s.instance->version();
  return Status::OK();
}

Status ExplainSession::RewarmIfStale(const exec::ExecContext* exec) {
  if (state_->version != state_->instance->version()) {
    WHYNOT_RETURN_IF_ERROR(Rewarm(exec));
  }
  return Status::OK();
}

Status ExplainSession::Prepare(const Tuple& tuple, bool expect_answer,
                               const exec::ExecContext* exec) {
  WHYNOT_RETURN_IF_ERROR(RewarmIfStale(exec));
  State& s = *state_;
  if (s.has_query && s.query.arity() != tuple.size()) {
    return Status::InvalidArgument(
        expect_answer ? "tuple arity does not match query arity"
                      : "missing tuple arity does not match query arity");
  }
  if (!s.has_query && !s.wni.answers.empty() &&
      s.wni.answers.front().size() != tuple.size()) {
    return Status::InvalidArgument(
        "answer arity does not match missing tuple arity");
  }
  bool in_answers = std::binary_search(s.wni.answers.begin(),
                                       s.wni.answers.end(), tuple);
  if (expect_answer) {
    if (!in_answers) {
      return Status::InvalidArgument(
          "tuple " + TupleToString(tuple) +
          " is not in the answer set; ask a why-not question instead");
    }
    s.wi.present = tuple;
  } else {
    if (in_answers) {
      return Status::InvalidArgument("tuple " + TupleToString(tuple) +
                                     " is in the answer set; nothing to "
                                     "explain");
    }
    s.wni.missing = tuple;
  }
  return Status::OK();
}

Status ExplainSession::RequireOntology() const {
  if (state_->ontology == nullptr) {
    return Status::Unsupported(
        "session was bound without an external ontology; only derived-"
        "ontology (OI) requests are available");
  }
  return Status::OK();
}

const std::vector<Tuple>& ExplainSession::answers() const {
  return state_->wni.answers;
}

bool ExplainSession::has_ontology() const {
  return state_->ontology != nullptr;
}

uint64_t ExplainSession::warmed_version() const { return state_->version; }

onto::BoundOntology* ExplainSession::bound_ontology() {
  return state_->bound.get();
}

void ExplainSession::Cancel() { state_->cancel.Cancel(); }

void ExplainSession::ResetCancel() { state_->cancel = exec::CancelToken(); }

Status ExplainSession::CheckConsistent() {
  WHYNOT_RETURN_IF_ERROR(RequireOntology());
  WHYNOT_RETURN_IF_ERROR(RewarmIfStale());
  return state_->bound->CheckConsistent();
}

ExplainSession::MemoryStats ExplainSession::MemoryUsage() const {
  const State& s = *state_;
  MemoryStats m;
  m.instance_bytes = s.instance->MemoryBytes();
  size_t ext_dense_equivalent = 0;
  size_t cover_dense_equivalent = 0;
  if (s.bound != nullptr) {
    onto::BoundOntology::MemoryStats es = s.bound->ExtMemoryStats();
    m.ext_bytes = es.ext_bytes;
    ext_dense_equivalent = es.dense_equivalent_bytes;
    m.hybrid_ext_sets = es.hybrid_sets;
    m.dense_ext_sets = es.dense_sets;
  }
  if (s.covers != nullptr) {
    m.cover_bytes += s.covers->MemoryBytes();
    cover_dense_equivalent += s.covers->DenseEquivalentBytes();
  }
  if (s.why_covers != nullptr) {
    m.cover_bytes += s.why_covers->MemoryBytes();
    cover_dense_equivalent += s.why_covers->DenseEquivalentBytes();
  }
  if (s.ls_covers != nullptr) {
    m.cover_bytes += s.ls_covers->MemoryBytes();
    cover_dense_equivalent += s.ls_covers->DenseEquivalentBytes();
  }
  if (s.cache != nullptr) m.eval_cache_bytes = s.cache->MemoryBytes();
  if (s.concept_cache != nullptr) {
    m.shared_cache_bytes = s.concept_cache->MemoryBytes();
  }
  m.total_bytes = m.instance_bytes + m.ext_bytes + m.cover_bytes +
                  m.eval_cache_bytes + m.shared_cache_bytes;
  m.dense_equivalent_total_bytes = m.instance_bytes + ext_dense_equivalent +
                                   cover_dense_equivalent +
                                   m.eval_cache_bytes + m.shared_cache_bytes;
  return m;
}

ls::ConceptCacheStats ExplainSession::CacheStats() const {
  if (state_->concept_cache == nullptr) return {};
  return state_->concept_cache->stats();
}

// --- Derived-ontology (OI) requests ---------------------------------------

Result<LsExplanation> ExplainSession::WhyNot(const Tuple& missing,
                                             const exec::ExecContext* exec) {
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  IncrementalOptions opts = s.options.incremental;
  opts.exec = &ctx;
  return IncrementalSearch(s.wni, opts, s.lub.get(), s.cache.get(),
                           s.ls_covers.get(), s.concept_cache.get(),
                           s.serial_overlay.get());
}

Result<std::vector<LsExplanation>> ExplainSession::EnumerateMges(
    const Tuple& missing, EnumerateStats* stats,
    const exec::ExecContext* exec) {
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  EnumerateOptions opts = s.options.enumerate;
  opts.exec = &ctx;
  return EnumerateAllMges(s.wni, opts, stats, s.lub.get(),
                          s.concept_cache.get());
}

Result<bool> ExplainSession::CheckMgeDerived(const Tuple& missing,
                                             const LsExplanation& candidate,
                                             const exec::ExecContext* exec) {
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  return explain::CheckMgeDerived(s.wni, candidate,
                                  s.options.incremental.with_selections,
                                  s.lub.get(), s.cache.get(),
                                  s.ls_covers.get(), s.concept_cache.get(),
                                  &ctx);
}

Result<LsExplanation> ExplainSession::Why(const Tuple& present,
                                          const exec::ExecContext* exec) {
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(present, /*expect_answer=*/true, &ctx));
  // ls_covers indexes wni.answers, which equals the sort-deduped answer
  // vector of wi (both come from the same evaluation).
  return IncrementalWhySearch(s.wi, s.options.incremental.with_selections,
                              s.lub.get(), s.cache.get(), s.ls_covers.get(),
                              s.concept_cache.get(), &ctx,
                              /*cert=*/nullptr, s.serial_overlay.get());
}

// --- External-ontology requests -------------------------------------------

Result<std::vector<Explanation>> ExplainSession::ExhaustiveMges(
    const Tuple& missing, const exec::ExecContext* exec) {
  WHYNOT_RETURN_IF_ERROR(RequireOntology());
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  ExhaustiveOptions opts = s.options.exhaustive;
  opts.exec = &ctx;
  return ExhaustiveSearchAllMge(s.bound.get(), s.wni, opts, s.covers.get(),
                                s.lattice.get());
}

Result<std::vector<Explanation>> ExplainSession::PrunedMges(
    const Tuple& missing, const exec::ExecContext* exec) {
  WHYNOT_RETURN_IF_ERROR(RequireOntology());
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  ExhaustiveOptions opts = s.options.exhaustive;
  opts.exec = &ctx;
  return PrunedSearchAllMge(s.bound.get(), s.wni, opts, s.covers.get(),
                            s.lattice.get());
}

Result<GradedMges> ExplainSession::MgesWithDegradation(
    const Tuple& missing, const exec::ExecContext* exec) {
  WHYNOT_RETURN_IF_ERROR(RequireOntology());
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  GradedMges graded;
  // Rung 1/2: the pruned exact search under the request context. With a
  // certificate attached a stop is not an error — the search returns the
  // deterministic prefix it had confirmed and records the cut.
  ExhaustiveOptions opts = s.options.exhaustive;
  opts.exec = &ctx;
  opts.cert = &graded.certificate;
  WHYNOT_ASSIGN_OR_RETURN(
      graded.explanations,
      PrunedSearchAllMge(s.bound.get(), s.wni, opts, s.covers.get(),
                         s.lattice.get()));
  if (graded.certificate.complete() || !graded.explanations.empty()) {
    return graded;  // kExact, or a non-empty kLowerBound prefix
  }
  // Rung 3: the stop left nothing confirmed. A cancelled caller asked for
  // no further work; a deadline/budget stop buys one greedy explanation
  // under a cancel-only grace context (no deadline, no injector — the
  // original deadline is already spent).
  if (graded.certificate.stop == exec::StopReason::kCancelled) return graded;
  exec::ExecContext grace;
  grace.cancel = ctx.cancel;
  exec::Certificate greedy_cert;
  WHYNOT_ASSIGN_OR_RETURN(
      std::optional<CardinalityResult> one,
      GreedyCardinalityClimb(s.bound.get(), s.wni, s.covers.get(), &grace,
                             &greedy_cert));
  if (one.has_value()) {
    graded.explanations.push_back(std::move(one->explanation));
    graded.certificate.quality = exec::Quality::kHeuristic;
    graded.certificate.progress.best_so_far = 1;
  }
  // The certificate keeps the original stop reason: it explains why the
  // answer is not exact, not how the fallback itself ended.
  return graded;
}

Result<bool> ExplainSession::Exists(const Tuple& missing, Explanation* witness,
                                    const exec::ExecContext* exec) {
  WHYNOT_RETURN_IF_ERROR(RequireOntology());
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  ExistenceOptions opts = s.options.existence;
  opts.exec = &ctx;
  return ExistsExplanation(s.bound.get(), s.wni, witness, opts, s.covers.get(),
                           s.lattice.get());
}

Result<std::optional<CardinalityResult>> ExplainSession::CardMaximal(
    const Tuple& missing, const exec::ExecContext* exec) {
  WHYNOT_RETURN_IF_ERROR(RequireOntology());
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  ExhaustiveOptions opts = s.options.exhaustive;
  opts.exec = &ctx;
  return ExactCardMaximal(s.bound.get(), s.wni, opts, s.covers.get(),
                          s.lattice.get());
}

Result<std::optional<CardinalityResult>> ExplainSession::GreedyCard(
    const Tuple& missing, const exec::ExecContext* exec) {
  WHYNOT_RETURN_IF_ERROR(RequireOntology());
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  return GreedyCardinalityClimb(s.bound.get(), s.wni, s.covers.get(), &ctx);
}

Result<bool> ExplainSession::CheckMge(const Tuple& missing,
                                      const Explanation& candidate,
                                      const exec::ExecContext* exec) {
  WHYNOT_RETURN_IF_ERROR(RequireOntology());
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(missing, /*expect_answer=*/false, &ctx));
  return CheckMgeExternal(s.bound.get(), s.wni, candidate, s.covers.get(),
                          &ctx);
}

Result<std::vector<Explanation>> ExplainSession::WhyMges(
    const Tuple& present, const exec::ExecContext* exec) {
  WHYNOT_RETURN_IF_ERROR(RequireOntology());
  State& s = *state_;
  exec::ExecContext ctx =
      MakeRequestExec(s.options.request_deadline_ms, s.cancel, exec);
  WHYNOT_RETURN_IF_ERROR(Prepare(present, /*expect_answer=*/true, &ctx));
  return AllMostGeneralWhyExplanations(
      s.bound.get(), s.wi, s.options.exhaustive.max_candidates,
      s.why_covers.get(), s.options.exhaustive.strategy, s.lattice.get(),
      s.options.exhaustive.prune_stats, &ctx);
}

}  // namespace whynot::explain
