#ifndef WHYNOT_EXPLAIN_STRONG_H_
#define WHYNOT_EXPLAIN_STRONG_H_

#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

/// Outcome of a strong-explanation check over a finite instance family.
struct StrongCheckResult {
  /// True iff some family instance witnesses that E is *not* strong.
  bool refuted = false;
  /// Description of the refuting instance and answer tuple, if any.
  std::string counterexample;
  /// Instances that were consistent with the ontology and actually checked.
  size_t instances_checked = 0;
};

/// Strong explanations (Section 6): E is strong iff for *every* instance I′
/// consistent with O, (ext(C1,I′) × ... × ext(Cm,I′)) ∩ q(I′) = ∅. The
/// paper leaves the theory as future work; deciding it ranges up to
/// undecidable depending on the ontology/query classes. This checker is a
/// refutation procedure over a caller-supplied finite family of instances:
/// `refuted == true` is a definitive "not strong"; `refuted == false` means
/// no counterexample exists *within the family* (a semi-decision).
///
/// Instances inconsistent with the ontology are skipped (they are outside
/// the quantifier's range).
Result<StrongCheckResult> CheckStrongExplanation(
    const onto::FiniteOntology& ontology, const rel::UnionQuery& query,
    const Explanation& candidate,
    const std::vector<const rel::Instance*>& family);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_STRONG_H_
