#ifndef WHYNOT_EXPLAIN_SCHEMA_MGE_H_
#define WHYNOT_EXPLAIN_SCHEMA_MGE_H_

#include <vector>

#include "whynot/common/status.h"
#include "whynot/concepts/materialize.h"
#include "whynot/explain/exhaustive.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

struct DerivedMgeOptions {
  ls::Fragment fragment = ls::Fragment::kMinimal;
  /// kSchema materializes OS[K] (Proposition 5.3; requires the schema to
  /// lie in a decidable Table 1 class); kInstance materializes OI[K]
  /// (the Proposition 5.1 route, used to cross-check Algorithm 2).
  ls::SubsumptionMode mode = ls::SubsumptionMode::kSchema;
  size_t max_concepts = 4096;
  ls::SchemaSubsumptionOptions schema_options;
  ExhaustiveOptions exhaustive;
};

/// COMPUTE-ONE-MGE W.R.T. OS (Definition 5.8) / W.R.T. OI (Definition 5.6)
/// via materialization: builds the finite restriction O_S[K] or O_I[K] with
/// K = adom(I) ∪ {a_1..a_m} (sufficient by Proposition 5.1) and runs
/// Algorithm 1 over it (Proposition 5.3: 2EXPTIME in general, PTIME for
/// LminS with fixed query arity and a PTIME-subsumption schema class).
/// Returns all most-general explanations as LS expressions.
Result<std::vector<LsExplanation>> ComputeAllMgeDerived(
    const WhyNotInstance& wni, const DerivedMgeOptions& options = {});

/// Convenience: the first (lexicographically least) MGE from
/// ComputeAllMgeDerived.
Result<LsExplanation> ComputeOneMgeDerived(
    const WhyNotInstance& wni, const DerivedMgeOptions& options = {});

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_SCHEMA_MGE_H_
