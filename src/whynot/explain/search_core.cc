#include "whynot/explain/search_core.h"

#include <algorithm>
#include <utility>

#include "whynot/common/dense_bitmap.h"

namespace whynot::explain {

CoverTable::CoverTable(ConceptAnswerCovers* covers,
                       const std::vector<std::vector<onto::ConceptId>>& lists)
    : num_answers_(covers->num_answers()),
      nwords_(covers->num_words()),
      table_(lists.size()) {
  for (size_t i = 0; i < lists.size(); ++i) {
    table_[i] = ResolveList(covers, lists[i], i);
  }
}

void CoverTable::ResolveSizes(
    onto::BoundOntology* bound,
    const std::vector<std::vector<onto::ConceptId>>& lists) {
  sizes_.resize(lists.size());
  is_all_.resize(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    sizes_[i].clear();
    is_all_[i].clear();
    sizes_[i].reserve(lists[i].size());
    is_all_[i].reserve(lists[i].size());
    for (onto::ConceptId c : lists[i]) {
      const onto::ExtSet& e = bound->Ext(c);
      is_all_[i].push_back(e.is_all() ? 1 : 0);
      sizes_[i].push_back(e.is_all() ? 0 : e.size());
    }
  }
}

std::vector<const uint64_t*> CoverTable::ResolveList(
    ConceptAnswerCovers* covers, const std::vector<onto::ConceptId>& list,
    size_t pos) {
  std::vector<const uint64_t*> out;
  out.reserve(list.size());
  for (onto::ConceptId c : list) out.push_back(covers->Cover(c, pos));
  return out;
}

}  // namespace whynot::explain
