#include "whynot/explain/search_core.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "whynot/common/dense_bitmap.h"

namespace whynot::explain {

namespace {

/// FNV-1a over the frontier node's list indices (the visited-set key).
struct NodeHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    size_t h = 0xcbf29ce484222325ull;
    for (uint32_t x : v) {
      h ^= x;
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// One query position's view of the lattice: the candidate list as a
/// concept-id bitmap, its ≼-maximal members (the frontier tops), and the
/// lazily memoized induced cover-children of every expanded member —
/// the ≼-maximal elements of (strict-downset ∩ list). Children are only
/// ever computed for concepts the walk actually expands, so the cost is
/// proportional to the explored frontier, not |list|².
class PositionFrontier {
 public:
  void Init(const ConceptLattice* lattice,
            const std::vector<onto::ConceptId>* list) {
    lattice_ = lattice;
    list_ = list;
    size_t nwords = lattice->words_per_row();
    list_words_.assign(nwords, 0);
    to_index_.assign(static_cast<size_t>(lattice->num_concepts()), -1);
    for (size_t i = 0; i < list->size(); ++i) {
      size_t c = static_cast<size_t>((*list)[i]);
      list_words_[c / 64] |= uint64_t{1} << (c % 64);
      to_index_[c] = static_cast<int32_t>(i);
    }
    tops_ = lattice->MaximalOf(*list);
  }

  const std::vector<uint32_t>& tops() const { return tops_; }

  const std::vector<uint32_t>& Children(uint32_t li) {
    auto it = children_.find(li);
    if (it != children_.end()) return it->second;
    size_t nwords = list_words_.size();
    scratch_.resize(nwords);
    const uint64_t* down = lattice_->StrictDownWords((*list_)[li]);
    for (size_t w = 0; w < nwords; ++w) {
      scratch_[w] = down[w] & list_words_[w];
    }
    std::vector<uint32_t> kids;
    for (size_t w = 0; w < nwords; ++w) {
      uint64_t word = scratch_[w];
      while (word != 0) {
        size_t c = w * 64 + static_cast<size_t>(__builtin_ctzll(word));
        word &= word - 1;
        // A member of the restricted downset is a cover-child iff nothing
        // of the restricted downset sits strictly above it.
        if (!ConceptAnswerCovers::AnyAnd(
                scratch_,
                lattice_->StrictUpWords(static_cast<onto::ConceptId>(c)))) {
          kids.push_back(static_cast<uint32_t>(to_index_[c]));
        }
      }
    }
    return children_.emplace(li, std::move(kids)).first->second;
  }

 private:
  const ConceptLattice* lattice_ = nullptr;
  const std::vector<onto::ConceptId>* list_ = nullptr;
  std::vector<uint64_t> list_words_;
  std::vector<int32_t> to_index_;
  std::vector<uint32_t> tops_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> children_;
  std::vector<uint64_t> scratch_;
};

}  // namespace

Status LatticeFilterSpace(
    const CandidateSpace& space, const ConceptLattice& lattice,
    const std::vector<std::vector<onto::ConceptId>>& lists, size_t max_tested,
    const LatticeFrontierHooks& hooks, PruneStats* stats,
    const exec::ExecContext* exec, exec::Stop* stop) {
  PruneStats ps;
  if (stop != nullptr) *stop = exec::Stop{};
  size_t m = space.arity();
  if (m == 0 || (!space.overflow() && space.total() == 0)) return Status::OK();

  auto exhausted = [] {
    return Status::ResourceExhausted(
        "dominance-pruned enumeration exceeded max_candidates even after "
        "downset pruning (the frontier of tested products is itself "
        "exponential in the query arity, Theorem 5.2)");
  };

  // When a partial result is requested, stops (the budget included) break
  // out to the antichain replay below instead of erroring; `halted`
  // carries the Stop. With no `stop` out-param every stop site returns
  // exactly the historical status, before any consume or stats write.
  std::optional<exec::Stop> halted;

  std::vector<PositionFrontier> pos(m);
  for (size_t i = 0; i < m; ++i) pos[i].Init(&lattice, &lists[i]);

  // ≼ on whole products, in list-index space.
  auto leq_prod = [&](const std::vector<uint32_t>& a,
                      const std::vector<uint32_t>& b) {
    for (size_t i = 0; i < m; ++i) {
      if (a[i] != b[i] && !lattice.Leq(lists[i][a[i]], lists[i][b[i]])) {
        return false;
      }
    }
    return true;
  };
  auto strictly_below = [&](const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b) {
    return leq_prod(a, b) && !leq_prod(b, a);
  };

  // Wave 0: the product of per-position tops, generated in linearization
  // order by a mini odometer. Budget-checked during generation — a flat
  // lattice degenerates to the full product right here.
  std::vector<std::vector<uint32_t>> frontier;
  {
    std::vector<size_t> ti(m, 0);
    std::vector<uint32_t> node(m);
    for (;;) {
      if (frontier.size() >= max_tested) {
        if (stop == nullptr) return exhausted();
        halted = exec::Stop{exec::StopReason::kBudget, frontier.size()};
        frontier.clear();  // nothing was tested; no partial to salvage
        break;
      }
      for (size_t i = 0; i < m; ++i) node[i] = pos[i].tops()[ti[i]];
      frontier.push_back(node);
      size_t i = 0;
      while (i < m && ++ti[i] == pos[i].tops().size()) {
        ti[i] = 0;
        ++i;
      }
      if (i == m) break;
    }
  }
  std::unordered_set<std::vector<uint32_t>, NodeHash> visited(frontier.begin(),
                                                              frontier.end());

  std::vector<std::vector<uint32_t>> kept;
  auto dominated_by_kept = [&](const std::vector<uint32_t>& node) {
    for (const auto& k : kept) {
      if (strictly_below(node, k)) return true;
    }
    return false;
  };

  std::vector<uint8_t> passed;
  std::vector<size_t> scratch_idx(m);
  auto to_idx = [&](const std::vector<uint32_t>& node) -> decltype(auto) {
    for (size_t i = 0; i < m; ++i) scratch_idx[i] = node[i];
    return (scratch_idx);
  };

  std::vector<std::vector<uint32_t>> next;
  while (!halted.has_value() && !frontier.empty()) {
    // Wave-start probe. products_enumerated only advances through the
    // serial wave merge, so the ordinal sequence — and with it any
    // injected stop and the antichain kept at that point — is identical
    // at every thread count.
    if (std::optional<exec::Stop> s =
            exec::Check(exec, ps.products_enumerated)) {
      if (stop == nullptr) {
        return exec::StopStatus(*s, "dominance-pruned enumeration");
      }
      halted = *s;
      break;
    }
    ++ps.waves;
    if (max_tested - ps.products_enumerated < frontier.size()) {
      if (stop == nullptr) return exhausted();
      halted = exec::Stop{exec::StopReason::kBudget, ps.products_enumerated};
      break;
    }
    passed.assign(frontier.size(), 0);
    if (par::NumThreads() > 1) {
      std::atomic<bool> abandon{false};
      par::ParallelFor(
          frontier.size(), 16, &abandon, [&](size_t begin, size_t end) {
            if (exec::ShouldAbandon(exec)) {
              abandon.store(true, std::memory_order_relaxed);
              return;
            }
            std::vector<size_t> idx(m);
            for (size_t i = begin; i < end; ++i) {
              for (size_t p = 0; p < m; ++p) idx[p] = frontier[i][p];
              passed[i] = hooks.pred(idx) ? 1 : 0;
            }
          });
      if (abandon.load(std::memory_order_relaxed)) {
        // Real cancel/deadline mid-wave: the wave is discarded whole (not
        // merged, not counted) and the antichain so far is the partial.
        exec::Stop s = exec->PollNow(ps.products_enumerated)
                           .value_or(exec::Stop{exec::StopReason::kCancelled,
                                                ps.products_enumerated});
        if (stop == nullptr) {
          return exec::StopStatus(s, "dominance-pruned enumeration");
        }
        halted = s;
        break;
      }
    } else {
      for (size_t i = 0; i < frontier.size(); ++i) {
        passed[i] = hooks.pred(to_idx(frontier[i])) ? 1 : 0;
      }
    }
    ps.products_enumerated += frontier.size();

    // Serial wave merge, in linearization order (the wave is sorted).
    next.clear();
    for (size_t i = 0; i < frontier.size() && !halted.has_value(); ++i) {
      const std::vector<uint32_t>& node = frontier[i];
      if (passed[i]) {
        if (hooks.on_pass) hooks.on_pass(to_idx(node));
        // ≼-maximal antichain maintenance. A passing node can arrive
        // already dominated (its dominator was kept after this node was
        // generated) or can dominate earlier keeps reached through a
        // shorter cover chain.
        if (dominated_by_kept(node)) {
          ++ps.downset_hits;
          continue;
        }
        kept.erase(std::remove_if(kept.begin(), kept.end(),
                                  [&](const std::vector<uint32_t>& k) {
                                    return strictly_below(k, node);
                                  }),
                   kept.end());
        kept.push_back(node);
        continue;
      }
      if (hooks.expand && !hooks.expand(to_idx(node))) continue;
      for (size_t p = 0; p < m && !halted.has_value(); ++p) {
        for (uint32_t child_li : pos[p].Children(node[p])) {
          std::vector<uint32_t> child = node;
          child[p] = child_li;
          if (visited.size() >= max_tested) {
            if (stop == nullptr) return exhausted();
            halted = exec::Stop{exec::StopReason::kBudget, visited.size()};
            break;
          }
          if (!visited.insert(child).second) continue;
          if (dominated_by_kept(child)) {
            ++ps.downset_hits;
            continue;
          }
          next.push_back(std::move(child));
        }
      }
    }
    if (halted.has_value()) break;
    std::sort(next.begin(), next.end(), LinearOrderLess<std::vector<uint32_t>>);
    frontier.swap(next);
  }

  // Replay the surviving antichain serially, in the serial odometer's
  // order — exactly where ParallelFilterSpace would have consumed them.
  // On a halt this is the sound partial prefix the certificate covers.
  std::sort(kept.begin(), kept.end(), LinearOrderLess<std::vector<uint32_t>>);
  for (const auto& node : kept) {
    if (!hooks.consume(to_idx(node))) break;
  }

  ps.products_skipped =
      space.overflow() ? SIZE_MAX : space.total() - ps.products_enumerated;
  if (stats != nullptr) {
    stats->products_enumerated += ps.products_enumerated;
    stats->downset_hits += ps.downset_hits;
    stats->waves += ps.waves;
    stats->products_skipped =
        ps.products_skipped == SIZE_MAX ||
                SIZE_MAX - stats->products_skipped < ps.products_skipped
            ? SIZE_MAX
            : stats->products_skipped + ps.products_skipped;
  }
  if (halted.has_value()) *stop = *halted;  // non-null by construction
  return Status::OK();
}

CoverTable::CoverTable(ConceptAnswerCovers* covers,
                       const std::vector<std::vector<onto::ConceptId>>& lists)
    : num_answers_(covers->num_answers()),
      nwords_(covers->num_words()),
      table_(lists.size()) {
  for (size_t i = 0; i < lists.size(); ++i) {
    table_[i] = ResolveList(covers, lists[i], i);
    for (const CoverView& v : table_[i]) {
      any_hybrid_ = any_hybrid_ || v.hybrid != nullptr;
    }
  }
  if (!any_hybrid_) {
    size_t entries = 0;
    for (const auto& t : table_) entries += t.size();
    const uint64_t** data;
    uint32_t* off;
    if (entries <= kInlineEntries && table_.size() <= kInlinePositions) {
      data = inline_data_.data();
      off = inline_off_.data();
    } else {
      flat_data_.resize(entries);
      flat_off_.resize(table_.size());
      data = flat_data_.data();
      off = flat_off_.data();
    }
    size_t k = 0;
    for (size_t i = 0; i < table_.size(); ++i) {
      off[i] = static_cast<uint32_t>(k);
      for (const CoverView& v : table_[i]) data[k++] = v.words;
    }
    flat_data_p_ = data;
    flat_off_p_ = off;
  }
}

void CoverTable::ResolveSizes(
    onto::BoundOntology* bound,
    const std::vector<std::vector<onto::ConceptId>>& lists) {
  sizes_.resize(lists.size());
  is_all_.resize(lists.size());
  for (size_t i = 0; i < lists.size(); ++i) {
    sizes_[i].clear();
    is_all_[i].clear();
    sizes_[i].reserve(lists[i].size());
    is_all_[i].reserve(lists[i].size());
    for (onto::ConceptId c : lists[i]) {
      const onto::ExtSet& e = bound->Ext(c);
      is_all_[i].push_back(e.is_all() ? 1 : 0);
      sizes_[i].push_back(e.is_all() ? 0 : e.size());
    }
  }
}

std::vector<CoverView> CoverTable::ResolveList(
    ConceptAnswerCovers* covers, const std::vector<onto::ConceptId>& list,
    size_t pos) {
  std::vector<CoverView> out;
  out.reserve(list.size());
  for (onto::ConceptId c : list) out.push_back(covers->Cover(c, pos));
  return out;
}

}  // namespace whynot::explain
