#include "whynot/explain/check_mge.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "whynot/common/parallel.h"

namespace whynot::explain {

Result<bool> CheckMgeExternal(onto::BoundOntology* bound,
                              const WhyNotInstance& wni,
                              const Explanation& candidate) {
  if (candidate.size() != wni.arity()) {
    return Status::InvalidArgument(
        "explanation arity does not match the missing tuple");
  }
  // Definition 3.2 inline (one answer interning, shared with the covers):
  // every aᵢ ∈ ext(Cᵢ), and the extension product avoids Ans.
  for (size_t i = 0; i < candidate.size(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    if (!bound->Ext(candidate[i]).Contains(id)) return false;
  }
  ConceptAnswerCovers covers(bound, InternAnswers(bound, wni));
  if (covers.ProductIntersects(candidate)) return false;
  const std::vector<std::vector<ValueId>>& answers = covers.answers();
  const bool parallel =
      par::NumThreads() > 1 && bound->NumConcepts() >= 64;
  // The replacement sweep below reads every concept's extension; warm them
  // all up front (sharded) so the parallel scan is read-only.
  if (parallel) bound->WarmExtensions();
  for (size_t i = 0; i < candidate.size(); ++i) {
    // The probe sweep only varies position i, so AND the other positions'
    // covers once and keep just the *alive* answers (those covered
    // everywhere else — the candidate being an explanation, its own
    // position covers none of them). Each replacement concept is probed
    // only against the alive answers, with early exit on the first hit;
    // a cover per replacement would be built for a single use, which is
    // exactly when the scalar probe wins.
    std::vector<uint64_t> base = covers.AndAllExcept(candidate, i);
    std::vector<uint32_t> alive;
    for (size_t a = 0; a < covers.num_answers(); ++a) {
      if ((base[a / 64] >> (a % 64)) & 1) alive.push_back(static_cast<uint32_t>(a));
    }
    if (!parallel) {
      for (onto::ConceptId d = 0; d < bound->NumConcepts(); ++d) {
        // Strictly more general replacement at position i.
        if (!bound->Subsumes(candidate[i], d) ||
            bound->Subsumes(d, candidate[i])) {
          continue;
        }
        // ext(candidate[i]) ⊆ ext(d) by consistency, so the missing tuple
        // stays inside; only the answer-avoidance condition can break.
        const onto::ExtSet& ext = bound->Ext(d);
        bool intersects = false;
        for (uint32_t a : alive) {
          if (ext.Contains(answers[a][i])) {
            intersects = true;
            break;
          }
        }
        if (!intersects) return false;  // strictly more general explanation
      }
      continue;
    }
    // "Some strictly-more-general replacement keeps avoiding Ans" is an
    // existence test over independent read-only probes, so it shards over
    // concept-id ranges; any thread finding a witness settles the result
    // (the boolean is order-independent) and flags the rest to stop.
    std::atomic<bool> found{false};
    par::ParallelFor(
        static_cast<size_t>(bound->NumConcepts()), 64,
        [&](size_t begin, size_t end) {
          for (size_t c = begin; c < end; ++c) {
            if (found.load(std::memory_order_relaxed)) return;
            onto::ConceptId d = static_cast<onto::ConceptId>(c);
            // Strictly more general replacement at position i.
            if (!bound->Subsumes(candidate[i], d) ||
                bound->Subsumes(d, candidate[i])) {
              continue;
            }
            // ext(candidate[i]) ⊆ ext(d) by consistency, so the missing
            // tuple stays inside; only answer-avoidance can break.
            const onto::ExtSet& ext = bound->Ext(d);
            bool intersects = false;
            for (uint32_t a : alive) {
              if (ext.Contains(answers[a][i])) {
                intersects = true;
                break;
              }
            }
            if (!intersects) {
              found.store(true, std::memory_order_relaxed);
              return;
            }
          }
        });
    if (found.load()) return false;  // strictly more general explanation
  }
  return true;
}

Result<bool> CheckMgeDerived(const WhyNotInstance& wni,
                             const LsExplanation& candidate,
                             bool with_selections,
                             ls::LubContext* lub_context) {
  ls::EvalCache cache(wni.instance);
  LsAnswerCovers covers(wni.instance, &wni.answers);
  if (!IsLsExplanation(wni, candidate, &cache, &covers)) return false;
  const ValuePool& pool = wni.instance->pool();
  const std::vector<Value>& adom = wni.instance->ActiveDomain();
  const std::vector<ValueId>& adom_ids = wni.instance->ActiveDomainIds();
  std::vector<const ls::Extension*> exts;
  exts.reserve(candidate.size());
  for (const ls::LsConcept& c : candidate) exts.push_back(&cache.Eval(c));
  const ls::Extension top_ext = ls::Extension::All();

  if (par::NumThreads() > 1 && adom.size() >= 4) {
    // Sharded maximality probes, mirroring CheckWhyMgeDerived: workers own
    // their lazy caches, the instance is pre-warmed, and the lex-smallest
    // (j, bi) outcome wins so results match the serial scan exactly.
    wni.instance->WarmForConcurrentReads();
    struct Worker {
      ls::LubContext lub;
      ls::EvalCache cache;
      LsAnswerCovers covers;
      std::vector<const ls::Extension*> exts;
      ls::Extension top_ext = ls::Extension::All();
      // Position whose boxed support is cached below: the copy of
      // exts[j]->values() happens once per (worker, position), not per
      // block.
      size_t support_pos = SIZE_MAX;
      std::vector<Value> support;
      Worker(const rel::Instance* instance, const std::vector<Tuple>* answers,
             const ls::LubOptions& options, const LsExplanation& candidate)
          : lub(instance, options), cache(instance), covers(instance, answers) {
        exts.reserve(candidate.size());
        for (const ls::LsConcept& c : candidate) exts.push_back(&cache.Eval(c));
      }
    };
    std::vector<std::unique_ptr<Worker>> workers(
        static_cast<size_t>(par::MaxWorkers()));
    auto worker_for = [&](int w) -> Worker& {
      size_t slot = static_cast<size_t>(w);
      if (workers[slot] == nullptr) {
        workers[slot] = std::make_unique<Worker>(
            wni.instance, &wni.answers, lub_context->options(), candidate);
      }
      return *workers[slot];
    };
    for (size_t j = 0; j < candidate.size(); ++j) {
      const ls::Extension& ext = *exts[j];
      if (ext.all) continue;  // already maximally general at this position

      // Generalization to ⊤ covers all constants outside adom(I) at once
      // (serial probe; one AND).
      if (!covers.ProductIntersects(exts, j, &top_ext)) return false;

      ValueId missing_id = pool.Lookup(wni.missing[j]);
      std::atomic<size_t> outcome_at{SIZE_MAX};
      std::mutex mutex;
      Status error = Status::OK();
      bool broken = false;
      par::ParallelForWorker(
          adom.size(), 8, [&](int w, size_t begin, size_t end) {
            if (begin > outcome_at.load(std::memory_order_relaxed)) return;
            Worker& wk = worker_for(w);
            if (wk.support_pos != j) {
              wk.support = wk.exts[j]->values();
              wk.support.push_back(wni.missing[j]);
              wk.support_pos = j;
            }
            for (size_t bi = begin; bi < end; ++bi) {
              if (bi > outcome_at.load(std::memory_order_relaxed)) return;
              if (wk.exts[j]->ContainsId(adom_ids[bi])) continue;
              std::vector<Value> extended = wk.support;
              extended.push_back(adom[bi]);
              Result<ls::LsConcept> generalized =
                  with_selections ? wk.lub.LubWithSelections(extended)
                                  : Result<ls::LsConcept>(
                                        wk.lub.LubSelectionFree(extended));
              bool breaks = false;
              if (generalized.ok()) {
                const ls::Extension& cand = wk.cache.Eval(generalized.value());
                breaks = cand.ContainsInterned(missing_id, wni.missing[j]) &&
                         !wk.covers.ProductIntersects(wk.exts, j, &cand);
                if (!breaks) continue;
              }
              std::lock_guard<std::mutex> lock(mutex);
              size_t seen = outcome_at.load(std::memory_order_relaxed);
              if (bi < seen) {
                outcome_at.store(bi, std::memory_order_relaxed);
                broken = breaks;
                error = breaks ? Status::OK() : generalized.status();
              }
              return;
            }
          });
      if (!error.ok()) return error;
      if (broken) return false;
    }
    return true;
  }

  for (size_t j = 0; j < candidate.size(); ++j) {
    const ls::Extension& ext = *exts[j];
    if (ext.all) continue;  // already maximally general at this position

    // Generalization to ⊤ covers all constants outside adom(I) at once:
    // the only LS concepts containing a non-adom constant besides its own
    // nominal are equivalent to ⊤. (⊤ keeps the missing tuple inside; only
    // the answer-avoidance condition decides.)
    if (!covers.ProductIntersects(exts, j, &top_ext)) return false;

    // lines 4-11 of Algorithm 2, used as a maximality test: lub-generalize
    // by each uncovered active-domain constant.
    std::vector<Value> support = ext.values();
    support.push_back(wni.missing[j]);
    ValueId missing_id = pool.Lookup(wni.missing[j]);
    for (size_t bi = 0; bi < adom.size(); ++bi) {
      if (ext.ContainsId(adom_ids[bi])) continue;
      std::vector<Value> extended = support;
      extended.push_back(adom[bi]);
      ls::LsConcept generalized;
      if (with_selections) {
        WHYNOT_ASSIGN_OR_RETURN(generalized,
                                lub_context->LubWithSelections(extended));
      } else {
        generalized = lub_context->LubSelectionFree(extended);
      }
      const ls::Extension& cand = cache.Eval(generalized);
      if (cand.ContainsInterned(missing_id, wni.missing[j]) &&
          !covers.ProductIntersects(exts, j, &cand)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace whynot::explain
