#include "whynot/explain/check_mge.h"

#include <algorithm>

namespace whynot::explain {

Result<bool> CheckMgeExternal(onto::BoundOntology* bound,
                              const WhyNotInstance& wni,
                              const Explanation& candidate) {
  WHYNOT_ASSIGN_OR_RETURN(bool is_expl, IsExplanation(bound, wni, candidate));
  if (!is_expl) return false;
  std::vector<std::vector<ValueId>> answers = InternAnswers(bound, wni);
  Explanation probe = candidate;
  for (size_t i = 0; i < candidate.size(); ++i) {
    for (onto::ConceptId d = 0; d < bound->NumConcepts(); ++d) {
      // Strictly more general replacement at position i.
      if (!bound->Subsumes(candidate[i], d) || bound->Subsumes(d, candidate[i])) {
        continue;
      }
      probe[i] = d;
      // ext(candidate[i]) ⊆ ext(d) by consistency, so the missing tuple
      // stays inside; only the answer-avoidance condition can break.
      if (!ProductIntersectsAnswers(bound, probe, answers)) {
        return false;  // a strictly more general explanation exists
      }
    }
    probe[i] = candidate[i];
  }
  return true;
}

Result<bool> CheckMgeDerived(const WhyNotInstance& wni,
                             const LsExplanation& candidate,
                             bool with_selections,
                             ls::LubContext* lub_context) {
  ls::EvalCache cache(wni.instance);
  if (!IsLsExplanation(wni, candidate, &cache)) return false;
  const std::vector<Value>& adom = wni.instance->ActiveDomain();
  LsExplanation probe = candidate;
  for (size_t j = 0; j < candidate.size(); ++j) {
    ls::Extension ext = cache.Eval(candidate[j]);
    if (ext.all) continue;  // already maximally general at this position

    // Generalization to ⊤ covers all constants outside adom(I) at once:
    // the only LS concepts containing a non-adom constant besides its own
    // nominal are equivalent to ⊤.
    probe[j] = ls::LsConcept::Top();
    if (IsLsExplanation(wni, probe, &cache)) return false;

    // lines 4-11 of Algorithm 2, used as a maximality test: lub-generalize
    // by each uncovered active-domain constant.
    std::vector<Value> support = ext.values;
    support.push_back(wni.missing[j]);
    for (const Value& b : adom) {
      if (ext.Contains(b)) continue;
      std::vector<Value> extended = support;
      extended.push_back(b);
      ls::LsConcept generalized;
      if (with_selections) {
        WHYNOT_ASSIGN_OR_RETURN(generalized,
                                lub_context->LubWithSelections(extended));
      } else {
        generalized = lub_context->LubSelectionFree(extended);
      }
      probe[j] = std::move(generalized);
      if (IsLsExplanation(wni, probe, &cache)) return false;
    }
    probe[j] = candidate[j];
  }
  return true;
}

}  // namespace whynot::explain
