#include "whynot/explain/check_mge.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>

#include "whynot/explain/search_core.h"

namespace whynot::explain {

Result<bool> CheckMgeExternal(onto::BoundOntology* bound,
                              const WhyNotInstance& wni,
                              const Explanation& candidate,
                              ConceptAnswerCovers* covers,
                              const exec::ExecContext* exec) {
  if (candidate.size() != wni.arity()) {
    return Status::InvalidArgument(
        "explanation arity does not match the missing tuple");
  }
  // Definition 3.2 inline (one answer interning, shared with the covers):
  // every aᵢ ∈ ext(Cᵢ), and the extension product avoids Ans.
  for (size_t i = 0; i < candidate.size(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    if (!bound->Ext(candidate[i]).Contains(id)) return false;
  }
  std::optional<ConceptAnswerCovers> local;
  if (covers == nullptr) {
    local.emplace(bound, InternAnswers(bound, wni));
    covers = &*local;
  }
  if (covers->ProductIntersects(candidate)) return false;
  const std::vector<std::vector<ValueId>>& answers = covers->answers();
  const bool parallel =
      par::NumThreads() > 1 && bound->NumConcepts() >= 64;
  // The replacement sweep below reads every concept's extension; warm them
  // all up front (sharded) so the parallel scan is read-only.
  if (parallel) WHYNOT_RETURN_IF_ERROR(bound->WarmExtensions(exec));
  for (size_t i = 0; i < candidate.size(); ++i) {
    // Position-granular probe at the same serial point on both paths: the
    // parallel existence scan below settles in a thread-dependent order,
    // so probes must not reach inside it. No partial result for a boolean
    // check — stops are always errors.
    if (std::optional<exec::Stop> s = exec::Check(exec, i)) {
      return exec::StopStatus(*s, "CHECK-MGE");
    }
    // The probe sweep only varies position i, so AND the other positions'
    // covers once and keep just the *alive* answers (those covered
    // everywhere else — the candidate being an explanation, its own
    // position covers none of them). Each replacement concept is probed
    // only against the alive answers, with early exit on the first hit;
    // a cover per replacement would be built for a single use, which is
    // exactly when the scalar probe wins.
    std::vector<uint64_t> base = covers->AndAllExcept(candidate, i);
    std::vector<uint32_t> alive;
    for (size_t a = 0; a < covers->num_answers(); ++a) {
      if ((base[a / 64] >> (a % 64)) & 1) alive.push_back(static_cast<uint32_t>(a));
    }
    if (!parallel) {
      for (onto::ConceptId d = 0; d < bound->NumConcepts(); ++d) {
        // Strictly more general replacement at position i.
        if (!bound->Subsumes(candidate[i], d) ||
            bound->Subsumes(d, candidate[i])) {
          continue;
        }
        // ext(candidate[i]) ⊆ ext(d) by consistency, so the missing tuple
        // stays inside; only the answer-avoidance condition can break.
        const onto::ExtSet& ext = bound->Ext(d);
        bool intersects = false;
        for (uint32_t a : alive) {
          if (ext.Contains(answers[a][i])) {
            intersects = true;
            break;
          }
        }
        if (!intersects) return false;  // strictly more general explanation
      }
      continue;
    }
    // "Some strictly-more-general replacement keeps avoiding Ans" is an
    // existence test over independent read-only probes, so it shards over
    // concept-id ranges; any thread finding a witness settles the result
    // (the boolean is order-independent) and flags the rest to stop.
    std::atomic<bool> found{false};
    par::ParallelFor(
        static_cast<size_t>(bound->NumConcepts()), 64,
        [&](size_t begin, size_t end) {
          for (size_t c = begin; c < end; ++c) {
            if (found.load(std::memory_order_relaxed)) return;
            onto::ConceptId d = static_cast<onto::ConceptId>(c);
            // Strictly more general replacement at position i.
            if (!bound->Subsumes(candidate[i], d) ||
                bound->Subsumes(d, candidate[i])) {
              continue;
            }
            // ext(candidate[i]) ⊆ ext(d) by consistency, so the missing
            // tuple stays inside; only answer-avoidance can break.
            const onto::ExtSet& ext = bound->Ext(d);
            bool intersects = false;
            for (uint32_t a : alive) {
              if (ext.Contains(answers[a][i])) {
                intersects = true;
                break;
              }
            }
            if (!intersects) {
              found.store(true, std::memory_order_relaxed);
              return;
            }
          }
        });
    if (found.load()) return false;  // strictly more general explanation
  }
  return true;
}

Result<bool> CheckMgeDerived(const WhyNotInstance& wni,
                             const LsExplanation& candidate,
                             bool with_selections,
                             ls::LubContext* lub_context,
                             ls::EvalCache* cache, LsAnswerCovers* covers,
                             ls::ConceptCache* concept_cache,
                             const exec::ExecContext* exec) {
  std::optional<ls::EvalCache> local_cache;
  if (cache == nullptr) {
    local_cache.emplace(wni.instance);
    cache = &*local_cache;
  }
  std::optional<LsAnswerCovers> local_covers;
  if (covers == nullptr) {
    local_covers.emplace(wni.instance, &wni.answers);
    covers = &*local_covers;
  }
  std::optional<ls::ConceptCache> local_cc;
  if (concept_cache == nullptr) {
    local_cc.emplace(wni.instance);
    concept_cache = &*local_cc;
  }
  if (!IsLsExplanation(wni, candidate, cache, covers)) return false;
  const ValuePool& pool = wni.instance->pool();
  const std::vector<Value>& adom = wni.instance->ActiveDomain();
  const std::vector<ValueId>& adom_ids = wni.instance->ActiveDomainIds();
  std::vector<const ls::Extension*> exts;
  exts.reserve(candidate.size());
  for (const ls::LsConcept& c : candidate) exts.push_back(&cache->Eval(c));
  const ls::Extension top_ext = ls::Extension::All();

  if (par::NumThreads() > 1 && adom.size() >= 4) {
    // Sharded maximality probes through the shared lex-min sweep
    // (search_core.h): workers own their lazy caches, the instance is
    // pre-warmed, and the outcome at the smallest (j, bi) wins so results
    // match the serial scan exactly.
    wni.instance->WarmForConcurrentReads();
    struct Worker {
      ls::LubContext lub;
      ls::EvalCache cache;
      LsAnswerCovers covers;
      // The worker's view of the shared concept cache: published-tier
      // reads during the sweep, misses kept worker-local until the
      // serial publish below. Declared after lub/cache — it drives both.
      ls::ConceptCacheOverlay overlay;
      std::vector<const ls::Extension*> exts;
      ls::Extension top_ext = ls::Extension::All();
      // Position whose boxed support is cached below: the copy of
      // exts[j]->values() happens once per (worker, position), not per
      // block.
      size_t support_pos = SIZE_MAX;
      std::vector<Value> support;
      Worker(const rel::Instance* instance, const std::vector<Tuple>* answers,
             const ls::LubOptions& options, const LsExplanation& candidate,
             ls::ConceptCache* shared, bool with_selections)
          : lub(instance, options), cache(instance), covers(instance, answers),
            overlay(shared, with_selections, &lub, &cache) {
        exts.reserve(candidate.size());
        for (const ls::LsConcept& c : candidate) exts.push_back(&cache.Eval(c));
      }
    };
    std::vector<std::unique_ptr<Worker>> workers(
        static_cast<size_t>(par::MaxWorkers()));
    auto make_worker = [&]() {
      return std::make_unique<Worker>(wni.instance, &wni.answers,
                                      lub_context->options(), candidate,
                                      concept_cache, with_selections);
    };
    for (size_t j = 0; j < candidate.size(); ++j) {
      // Position-granular probe, mirroring the serial loop's check below.
      if (std::optional<exec::Stop> s = exec::Check(exec, j)) {
        return exec::StopStatus(*s, "CHECK-MGE (derived)");
      }
      const ls::Extension& ext = *exts[j];
      if (ext.all) continue;  // already maximally general at this position

      // Generalization to ⊤ covers all constants outside adom(I) at once
      // (serial probe; one AND).
      if (!covers->ProductIntersects(exts, j, &top_ext)) return false;

      ValueId missing_id = pool.Lookup(wni.missing[j]);
      std::optional<ProbeOutcome> outcome = LexMinSweep<Worker, ProbeOutcome>(
          adom.size(), 8, &workers, make_worker,
          [&](Worker& wk, size_t bi) -> std::optional<ProbeOutcome> {
            if (wk.support_pos != j) {
              wk.support = wk.exts[j]->values();
              wk.support.push_back(wni.missing[j]);
              wk.support_pos = j;
            }
            if (wk.exts[j]->ContainsId(adom_ids[bi])) return std::nullopt;
            std::vector<Value> extended = wk.support;
            extended.push_back(adom[bi]);
            // Maximality probes never accept a candidate, so the keys are
            // looked up exactly once — the transient path serves warm
            // tiers but skips the support-tier record (the keys here are
            // whole extension value lists, expensive to copy and hash).
            Result<std::shared_ptr<const ls::Extension>> cand =
                wk.overlay.LubExtTransient(extended);
            if (!cand.ok()) {
              return ProbeOutcome{false, cand.status()};
            }
            if ((*cand)->ContainsInterned(missing_id, wni.missing[j]) &&
                !wk.covers.ProductIntersects(wk.exts, j, cand->get())) {
              return ProbeOutcome{true, Status::OK()};
            }
            return std::nullopt;
          },
          exec);
      // Publish-after-sweep: drain the worker overlays in slot order (a
      // thread-independent linearization) at this serial point, so later
      // positions — and later requests against a session cache — reuse
      // the lubs this sweep computed.
      for (std::unique_ptr<Worker>& wk : workers) {
        if (wk != nullptr) concept_cache->Publish(&wk->overlay);
      }
      // An abandoned sweep may have skipped ranges; resolve the stop
      // before trusting (or discarding) its outcome.
      if (exec::ShouldAbandon(exec)) {
        exec::Stop s = exec->PollNow(j).value_or(
            exec::Stop{exec::StopReason::kCancelled, j});
        return exec::StopStatus(s, "CHECK-MGE (derived)");
      }
      if (outcome.has_value()) {
        if (!outcome->error.ok()) return outcome->error;
        if (outcome->broken) return false;
      }
    }
    return true;
  }

  // Serial maximality probes through a single overlay over the shared
  // cache; published on every return path so later requests against a
  // session cache start warm.
  ls::ConceptCacheOverlay overlay(concept_cache, with_selections, lub_context,
                                  cache);
  ls::ScopedPublish publish(concept_cache, &overlay);
  for (size_t j = 0; j < candidate.size(); ++j) {
    if (std::optional<exec::Stop> s = exec::Check(exec, j)) {
      return exec::StopStatus(*s, "CHECK-MGE (derived)");
    }
    const ls::Extension& ext = *exts[j];
    if (ext.all) continue;  // already maximally general at this position

    // Generalization to ⊤ covers all constants outside adom(I) at once:
    // the only LS concepts containing a non-adom constant besides its own
    // nominal are equivalent to ⊤. (⊤ keeps the missing tuple inside; only
    // the answer-avoidance condition decides.)
    if (!covers->ProductIntersects(exts, j, &top_ext)) return false;

    // lines 4-11 of Algorithm 2, used as a maximality test: lub-generalize
    // by each uncovered active-domain constant.
    std::vector<Value> support = ext.values();
    support.push_back(wni.missing[j]);
    ValueId missing_id = pool.Lookup(wni.missing[j]);
    for (size_t bi = 0; bi < adom.size(); ++bi) {
      if (ext.ContainsId(adom_ids[bi])) continue;
      std::vector<Value> extended = support;
      extended.push_back(adom[bi]);
      // Probe-once keys (whole extension value lists): transient path,
      // no support-tier record — see the parallel branch above.
      WHYNOT_ASSIGN_OR_RETURN(std::shared_ptr<const ls::Extension> cand,
                              overlay.LubExtTransient(extended));
      if (cand->ContainsInterned(missing_id, wni.missing[j]) &&
          !covers->ProductIntersects(exts, j, cand.get())) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace whynot::explain
