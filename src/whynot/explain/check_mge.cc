#include "whynot/explain/check_mge.h"

#include <algorithm>

namespace whynot::explain {

Result<bool> CheckMgeExternal(onto::BoundOntology* bound,
                              const WhyNotInstance& wni,
                              const Explanation& candidate) {
  if (candidate.size() != wni.arity()) {
    return Status::InvalidArgument(
        "explanation arity does not match the missing tuple");
  }
  // Definition 3.2 inline (one answer interning, shared with the covers):
  // every aᵢ ∈ ext(Cᵢ), and the extension product avoids Ans.
  for (size_t i = 0; i < candidate.size(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    if (!bound->Ext(candidate[i]).Contains(id)) return false;
  }
  ConceptAnswerCovers covers(bound, InternAnswers(bound, wni));
  if (covers.ProductIntersects(candidate)) return false;
  const std::vector<std::vector<ValueId>>& answers = covers.answers();
  for (size_t i = 0; i < candidate.size(); ++i) {
    // The probe sweep only varies position i, so AND the other positions'
    // covers once and keep just the *alive* answers (those covered
    // everywhere else — the candidate being an explanation, its own
    // position covers none of them). Each replacement concept is probed
    // only against the alive answers, with early exit on the first hit;
    // a cover per replacement would be built for a single use, which is
    // exactly when the scalar probe wins.
    std::vector<uint64_t> base = covers.AndAllExcept(candidate, i);
    std::vector<uint32_t> alive;
    for (size_t a = 0; a < covers.num_answers(); ++a) {
      if ((base[a / 64] >> (a % 64)) & 1) alive.push_back(static_cast<uint32_t>(a));
    }
    for (onto::ConceptId d = 0; d < bound->NumConcepts(); ++d) {
      // Strictly more general replacement at position i.
      if (!bound->Subsumes(candidate[i], d) || bound->Subsumes(d, candidate[i])) {
        continue;
      }
      // ext(candidate[i]) ⊆ ext(d) by consistency, so the missing tuple
      // stays inside; only the answer-avoidance condition can break.
      const onto::ExtSet& ext = bound->Ext(d);
      bool intersects = false;
      for (uint32_t a : alive) {
        if (ext.Contains(answers[a][i])) {
          intersects = true;
          break;
        }
      }
      if (!intersects) return false;  // strictly more general explanation
    }
  }
  return true;
}

Result<bool> CheckMgeDerived(const WhyNotInstance& wni,
                             const LsExplanation& candidate,
                             bool with_selections,
                             ls::LubContext* lub_context) {
  ls::EvalCache cache(wni.instance);
  LsAnswerCovers covers(wni.instance, &wni.answers);
  if (!IsLsExplanation(wni, candidate, &cache, &covers)) return false;
  const ValuePool& pool = wni.instance->pool();
  const std::vector<Value>& adom = wni.instance->ActiveDomain();
  const std::vector<ValueId>& adom_ids = wni.instance->ActiveDomainIds();
  std::vector<const ls::Extension*> exts;
  exts.reserve(candidate.size());
  for (const ls::LsConcept& c : candidate) exts.push_back(&cache.Eval(c));
  const ls::Extension top_ext = ls::Extension::All();
  for (size_t j = 0; j < candidate.size(); ++j) {
    const ls::Extension& ext = *exts[j];
    if (ext.all) continue;  // already maximally general at this position

    // Generalization to ⊤ covers all constants outside adom(I) at once:
    // the only LS concepts containing a non-adom constant besides its own
    // nominal are equivalent to ⊤. (⊤ keeps the missing tuple inside; only
    // the answer-avoidance condition decides.)
    if (!covers.ProductIntersects(exts, j, &top_ext)) return false;

    // lines 4-11 of Algorithm 2, used as a maximality test: lub-generalize
    // by each uncovered active-domain constant.
    std::vector<Value> support = ext.values();
    support.push_back(wni.missing[j]);
    ValueId missing_id = pool.Lookup(wni.missing[j]);
    for (size_t bi = 0; bi < adom.size(); ++bi) {
      if (ext.ContainsId(adom_ids[bi])) continue;
      std::vector<Value> extended = support;
      extended.push_back(adom[bi]);
      ls::LsConcept generalized;
      if (with_selections) {
        WHYNOT_ASSIGN_OR_RETURN(generalized,
                                lub_context->LubWithSelections(extended));
      } else {
        generalized = lub_context->LubSelectionFree(extended);
      }
      const ls::Extension& cand = cache.Eval(generalized);
      if (cand.ContainsInterned(missing_id, wni.missing[j]) &&
          !covers.ProductIntersects(exts, j, &cand)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace whynot::explain
