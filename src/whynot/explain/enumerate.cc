#include "whynot/explain/enumerate.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <tuple>
#include <utility>

#include "whynot/common/parallel.h"
#include "whynot/concepts/ls_eval.h"
#include "whynot/explain/search_core.h"

namespace whynot::explain {

namespace {

// A ground element of the independence system: position j generalized by
// active-domain constant `adom[constant_index]`, or — when `constant_index
// == kTopIndex` — by ⊤.
constexpr int kTopIndex = -1;

struct GroundElement {
  int position;
  int constant_index;

  bool operator<(const GroundElement& o) const {
    return std::tie(position, constant_index) <
           std::tie(o.position, o.constant_index);
  }
  bool operator==(const GroundElement& o) const {
    return position == o.position && constant_index == o.constant_index;
  }
};

using ExclusionSet = std::set<GroundElement>;

// State of one greedy completion: per-position support sets, concepts,
// extensions, and the *decision* elements — accepted additions that
// changed an extension. Decisions are the only elements worth branching
// on: excluding an absorbed element cannot change the greedy trajectory.
// Extensions are pointers into the evaluator's lub cache (stable map
// nodes) or its shared ⊤ extension, so the answer-cover kernel can key
// cover bitmaps by identity across nodes.
struct GreedyState {
  std::vector<std::vector<Value>> support;  // constants fed to lub
  std::vector<bool> topped;                 // position generalized to ⊤
  LsExplanation concepts;
  std::vector<const ls::Extension*> exts;
  std::vector<GroundElement> decisions;
};

// Output-dedup key: extensions identified in id space (all extensions
// share the instance pool, so rank-sorted ids + boxed extras are
// canonical — integer comparisons, no values() materialization).
using ExtKey = std::tuple<bool, std::vector<ValueId>, std::vector<Value>>;

/// Evaluates one branch-tree node: deterministic greedy completion under
/// an exclusion set plus the unconstrained-maximality test. The evaluator
/// owns every lazily mutating structure a node touches — the lub context,
/// its concept-cache overlay, the answer covers — so the parallel
/// enumerator can give each pool worker its own evaluator and the serial
/// one can keep a single evaluator across all nodes; only the *published*
/// (frozen, read-only during a wave) tier of the concept cache is shared.
/// Node results are pure functions of the exclusion set, independent of
/// which evaluator computes them.
///
/// Probes use the shared GreedyAndCache (search_core.h): within a greedy
/// sweep the product check "replace position j's cover, AND with all
/// others" has a loop-invariant rest — the AND of the final covers below
/// j and the initial covers above j — so each candidate probe collapses
/// from an m-way AND to a single AND against the cached rest words. This
/// speeds the single-thread path as much as the parallel one.
class NodeEvaluator {
 public:
  NodeEvaluator(const WhyNotInstance& wni, const EnumerateOptions& options,
                ls::LubContext* lub, ls::ConceptCache* cache)
      : wni_(wni),
        options_(options),
        overlay_(cache, options.with_selections, lub),
        adom_(wni.instance->ActiveDomain()),
        adom_ids_(wni.instance->ActiveDomainIds()),
        covers_(wni.instance, &wni.answers),
        nwords_((wni.answers.size() + 63) / 64),
        top_ext_(ls::Extension::All()) {
    full_.assign(nwords_, ~uint64_t{0});
    size_t rest = wni.answers.size() % 64;
    if (nwords_ > 0 && rest != 0) full_.back() = (uint64_t{1} << rest) - 1;
  }

  // Deterministic greedy maximization under an exclusion set: start from
  // the nominal-pinned tuple and, in fixed (position, constant) order, add
  // every non-excluded generalization that keeps the tuple an explanation.
  Status GreedyComplete(const ExclusionSet& excluded, GreedyState* state) {
    size_t m = wni_.arity();
    state->support.resize(m);
    state->topped.assign(m, false);
    state->concepts.resize(m);
    state->exts.resize(m);
    for (size_t j = 0; j < m; ++j) {
      state->support[j] = {wni_.missing[j]};
      WHYNOT_ASSIGN_OR_RETURN(auto ce, LubAndEval(state->support[j]));
      state->concepts[j] = *ce.first;
      state->exts[j] = ce.second;
    }
    if (covers_.ProductIntersects(state->exts)) {
      return Status::Internal(
          "nominal-pinned tuple is not an explanation; contradicts "
          "Section 5.2");
    }

    // The cache snapshots the initial-suffix ANDs here (later positions
    // have not changed yet) and lazily absorbs each position's *final*
    // cover into its prefix as Rest moves past it — cover_at reads the
    // state's current extension at absorption time.
    auto cover_at = [this, state](size_t k) {
      return View(*state->exts[k], k);
    };
    and_cache_.Reset(m, nwords_, full_.data(), cover_at);

    for (size_t j = 0; j < m; ++j) {
      // Loop-invariant rest of the probe at position j: an accepted swap
      // only changes position j itself, so `rest` survives the whole
      // sweep of this position.
      const std::vector<uint64_t>& rest = and_cache_.Rest(j, cover_at);
      for (size_t bi = 0; bi < adom_.size() && !state->topped[j]; ++bi) {
        GroundElement e{static_cast<int>(j), static_cast<int>(bi)};
        if (excluded.count(e) > 0) continue;
        // Inside the current lub extension: adding b leaves the lub
        // unchanged (Lemma 5.1/5.2 minimality), so nothing to decide.
        if (state->exts[j]->ContainsId(adom_ids_[bi])) continue;
        std::vector<Value> extended = state->support[j];
        extended.push_back(adom_[bi]);
        WHYNOT_ASSIGN_OR_RETURN(auto cand, LubAndEval(extended));
        if (!AnyAnd(rest, View(*cand.second, j))) {
          state->support[j] = std::move(extended);
          state->concepts[j] = *cand.first;
          state->exts[j] = cand.second;
          state->decisions.push_back(e);
        }
      }
      if (options_.generalize_to_top && !state->exts[j]->all) {
        GroundElement top{static_cast<int>(j), kTopIndex};
        if (excluded.count(top) == 0 && !AnyAnd(rest, full_.data())) {
          state->topped[j] = true;
          state->concepts[j] = ls::LsConcept::Top();
          state->exts[j] = &top_ext_;
          state->decisions.push_back(top);
        }
      }
    }
    return Status::OK();
  }

  // True iff no *excluded* element can still be added: combined with
  // maximality within ground ∖ F (which the sweep guarantees), this makes
  // the output maximal in the unconstrained system.
  Result<bool> MaximalUnconstrained(const ExclusionSet& excluded,
                                    const GreedyState& state) {
    size_t m = wni_.arity();
    // The same prefix/suffix cache over the *final* covers (fixed during
    // this pass); the exclusion set iterates in ascending position order,
    // exactly the non-decreasing j the cache requires.
    auto cover_at = [this, &state](size_t k) {
      return View(*state.exts[k], k);
    };
    and_cache_.Reset(m, nwords_, full_.data(), cover_at);
    for (const GroundElement& e : excluded) {
      size_t j = static_cast<size_t>(e.position);
      if (state.topped[j] || state.exts[j]->all) continue;
      const std::vector<uint64_t>& rest = and_cache_.Rest(j, cover_at);
      if (e.constant_index == kTopIndex) {
        if (options_.generalize_to_top && !AnyAnd(rest, full_.data())) {
          return false;
        }
        continue;
      }
      size_t bi = static_cast<size_t>(e.constant_index);
      if (state.exts[j]->ContainsId(adom_ids_[bi])) continue;  // absorbed
      std::vector<Value> extended = state.support[j];
      extended.push_back(adom_[bi]);
      // Verification probes never accept, so these keys are probed once:
      // the transient path serves warm tiers without recording a
      // support-tier entry (the greedy sweep's candidates, which recur
      // across sibling nodes and requests, stay on the caching path).
      WHYNOT_ASSIGN_OR_RETURN(std::shared_ptr<const ls::Extension> cand,
                              overlay_.LubExtTransient(extended));
      if (!AnyAnd(rest, View(*cand, j))) return false;
    }
    return true;
  }

  /// The overlay to publish at serial points (the enumerator drains it
  /// wave by wave in worker-slot order).
  ls::ConceptCacheOverlay* overlay() { return &overlay_; }

 private:
  // Memoized lub + evaluation through the shared concept cache:
  // branch-tree nodes share long support-set prefixes, so the same lub is
  // requested many times across nodes — and, via the published tier,
  // across workers and requests. The returned pointers are address-stable
  // (shared_ptr-owned entries), which the answer-cover kernel keys its
  // bitmaps by.
  Result<std::pair<const ls::LsConcept*, const ls::Extension*>> LubAndEval(
      const std::vector<Value>& x) {
    WHYNOT_ASSIGN_OR_RETURN(const ls::ConceptCache::Entry* entry,
                            overlay_.LubAndEval(x));
    return std::make_pair<const ls::LsConcept*, const ls::Extension*>(
        &entry->concept, entry->ext.get());
  }

  CoverView View(const ls::Extension& ext, size_t pos) {
    // No answers: nothing to cover, every probe passes (the covers have no
    // per-position columns to index in that case).
    if (nwords_ == 0) return CoverView{full_.data(), nullptr};
    return covers_.Cover(ext, pos);
  }

  // The probe reuses the cover kernel's early-exit AnyAnd (view form for
  // cached cover rows, raw form for the all-alive words); the running
  // prefix/suffix ANDs live in the shared GreedyAndCache.
  static bool AnyAnd(const std::vector<uint64_t>& a, const CoverView& b) {
    return ConceptAnswerCovers::AnyAndView(a, b);
  }
  static bool AnyAnd(const std::vector<uint64_t>& a, const uint64_t* b) {
    return ConceptAnswerCovers::AnyAnd(a, b);
  }

  const WhyNotInstance& wni_;
  const EnumerateOptions& options_;
  ls::ConceptCacheOverlay overlay_;
  const std::vector<Value>& adom_;
  const std::vector<ValueId>& adom_ids_;
  LsAnswerCovers covers_;
  size_t nwords_;
  std::vector<uint64_t> full_;  // all answers alive, trailing bits zero
  GreedyAndCache and_cache_;
  const ls::Extension top_ext_;
};

/// Everything the deterministic merge needs from one evaluated node; a
/// plain value type so worker-local extension pointers never escape their
/// evaluator.
struct NodeResult {
  Status status = Status::OK();
  bool maximal = false;
  LsExplanation concepts;
  std::vector<ExtKey> ext_key;
  std::vector<GroundElement> decisions;
};

class Enumerator {
 public:
  Enumerator(const WhyNotInstance& wni, const EnumerateOptions& options,
             ls::LubContext* lub, ls::ConceptCache* cache,
             EnumerateStats* stats)
      : wni_(wni), options_(options), lub_(lub), cache_(cache),
        stats_(stats) {}

  // Exclusion-branching enumeration of maximal independent sets
  // (Lawler-style), specialized to this monotone system:
  //
  //   * One sweep in fixed (position, constant) order under exclusions F
  //     yields a set maximal within ground ∖ F: acceptance only ever makes
  //     later checks stricter, so a rejected element never becomes
  //     acceptable again.
  //   * The output is reported iff no excluded element can be re-added
  //     (then it is maximal unconstrained, i.e. a genuine MGE).
  //   * Children exclude, in turn, each decision element of the output.
  //     Completeness: for a target MGE M and a node with F ∩ M = ∅, if
  //     every decision lies inside M's support then induction over the
  //     sweep shows the output's extensions equal M's (every element of
  //     M's support is attempted and accepted, every acceptance stays
  //     inside M), so the node reports M; otherwise some decision e ∉ M
  //     gives a child with F ∪ {e} still disjoint from M.
  //
  // With more than one pool thread the branch tree expands in FIFO waves:
  // every queued node evaluates in parallel (each worker owns a
  // NodeEvaluator — node results do not depend on which one), then a
  // serial merge consumes the results *in queue order*, replaying the
  // serial loop's accounting — node budget, dedup, delay stats, child
  // discovery — exactly. Outputs and stats are therefore identical for
  // every thread count; nodes past a mid-wave stopping point are wasted
  // speculation, nothing more.
  //
  // This enumeration deliberately stays outside the dominance-pruned
  // frontier machinery (explain/lattice.h) the external-ontology searches
  // share: the frontier needs a finite, pre-enumerated concept space with
  // a closed subsumption matrix to build downset bitmaps over, while the
  // derived ontology OI materializes its concepts on demand as lubs of
  // support sets — the candidate "lists" here are implicit in the
  // exponentially many subsets of the active domain, and maximality is
  // decided by lub probes, not matrix rows. Lawler-style exclusion
  // branching *is* the lattice walk for that implicit space: each sweep
  // lands exactly on a maximal element, and children step down only
  // through explicit exclusions.
  Result<std::vector<LsExplanation>> Run() {
    if (par::NumThreads() > 1) {
      wni_.instance->WarmForConcurrentReads();
      return RunParallel();
    }
    NodeEvaluator evaluator(wni_, options_, lub_, cache_);
    // Whatever this run computes becomes visible to the next request
    // against the same cache (session reuse), on success and error paths
    // alike.
    ls::ScopedPublish publish(cache_, evaluator.overlay());
    std::vector<LsExplanation> results;
    std::set<std::vector<ExtKey>> seen_outputs;
    std::set<ExclusionSet> visited;
    std::deque<ExclusionSet> queue;
    queue.push_back({});
    visited.insert({});
    size_t nodes_since_last_output = 0;

    while (!queue.empty()) {
      if (stats_->nodes_expanded >= options_.max_nodes) {
        if (options_.cert == nullptr) {
          return Status::ResourceExhausted(
              "MGE enumeration exceeded max_nodes = " +
              std::to_string(options_.max_nodes));
        }
        halted_ = exec::Stop{exec::StopReason::kBudget, options_.max_nodes};
        remaining_ = queue.size();
        break;
      }
      // Probe = node ordinal (nodes expanded so far) — the wave merge in
      // RunParallel consumes nodes in the same order, so the ordinal at
      // any stop is thread-invariant.
      if (std::optional<exec::Stop> s =
              exec::Check(options_.exec, stats_->nodes_expanded)) {
        if (options_.cert == nullptr) {
          return exec::StopStatus(*s, "MGE enumeration");
        }
        halted_ = *s;
        remaining_ = queue.size();
        break;
      }
      ExclusionSet excluded = std::move(queue.front());
      queue.pop_front();
      ++stats_->nodes_expanded;
      ++nodes_since_last_output;

      GreedyState state;
      WHYNOT_RETURN_IF_ERROR(evaluator.GreedyComplete(excluded, &state));

      WHYNOT_ASSIGN_OR_RETURN(bool maximal,
                              evaluator.MaximalUnconstrained(excluded, state));
      bool fresh_output = false;
      if (maximal) {
        std::vector<ExtKey> ext_key;
        ext_key.reserve(state.exts.size());
        for (const ls::Extension* ext : state.exts) {
          ext_key.emplace_back(ext->all, ext->ids(), ext->extras());
        }
        if (seen_outputs.insert(std::move(ext_key)).second) {
          fresh_output = true;
          stats_->max_delay =
              std::max(stats_->max_delay, nodes_since_last_output);
          nodes_since_last_output = 0;
          results.push_back(state.concepts);
          if (results.size() >= options_.max_results) {
            if (options_.cert != nullptr) {
              halted_ = exec::Stop{exec::StopReason::kBudget,
                                   stats_->nodes_expanded};
              remaining_ = queue.size();
            }
            return Finish(std::move(results));
          }
        } else {
          ++stats_->duplicate_outputs;
        }
      }
      if (!fresh_output && !options_.expand_duplicate_nodes) continue;

      for (const GroundElement& e : state.decisions) {
        ExclusionSet child = excluded;
        child.insert(e);
        if (visited.insert(child).second) {
          queue.push_back(std::move(child));
        } else {
          ++stats_->visited_hits;
        }
      }
    }
    return Finish(std::move(results));
  }

 private:
  // Certifies a (possibly partial) result set: quality is kExact only for
  // an uninterrupted run; any stop downgrades to kLowerBound — every
  // reported element is a verified MGE, but the antichain may be
  // incomplete. `remaining_` counts the branch-tree nodes still queued at
  // the stop, a thread-invariant measure of the unexplored frontier.
  Result<std::vector<LsExplanation>> Finish(
      std::vector<LsExplanation> results) {
    if (options_.cert != nullptr) {
      exec::Progress progress;
      progress.tested = stats_->nodes_expanded;
      progress.remaining = remaining_;
      exec::FillCertificate(options_.cert, halted_.value_or(exec::Stop{}),
                            progress, results.size());
    }
    return results;
  }

  Result<std::vector<LsExplanation>> RunParallel() {
    std::vector<LsExplanation> results;
    std::set<std::vector<ExtKey>> seen_outputs;
    std::set<ExclusionSet> visited;
    std::vector<ExclusionSet> frontier;
    frontier.push_back({});
    visited.insert({});
    size_t nodes_since_last_output = 0;
    std::vector<std::unique_ptr<NodeEvaluator>> workers(
        static_cast<size_t>(par::MaxWorkers()));
    std::vector<std::unique_ptr<ls::LubContext>> worker_lubs(workers.size());

    while (!frontier.empty()) {
      // Only nodes inside the remaining budget can ever be consumed: the
      // merge errors out the moment nodes_expanded hits max_nodes, exactly
      // like the serial pop loop, so evaluating past the budget would be
      // pure wasted work (a wave can exceed it by the full branch
      // fan-out).
      size_t budget = options_.max_nodes > stats_->nodes_expanded
                          ? options_.max_nodes - stats_->nodes_expanded
                          : 0;
      size_t n_eval = std::min(frontier.size(), budget);
      std::vector<NodeResult> evaluated(n_eval);
      // Workers poll for abandonment (real deadline/cancellation only —
      // never fault injection) at node granularity; an abandoned wave is
      // discarded whole below, so skipped nodes cannot leak into results.
      std::atomic<bool> abandon{false};
      par::ParallelForWorker(
          n_eval, 1, &abandon, [&](int w, size_t begin, size_t end) {
            if (exec::ShouldAbandon(options_.exec)) {
              abandon.store(true, std::memory_order_relaxed);
              return;
            }
            size_t slot = static_cast<size_t>(w);
            if (workers[slot] == nullptr) {
              worker_lubs[slot] = std::make_unique<ls::LubContext>(
                  wni_.instance, options_.lub);
              workers[slot] = std::make_unique<NodeEvaluator>(
                  wni_, options_, worker_lubs[slot].get(), cache_);
            }
            NodeEvaluator& evaluator = *workers[slot];
            for (size_t i = begin; i < end; ++i) {
              NodeResult& nr = evaluated[i];
              GreedyState state;
              nr.status = evaluator.GreedyComplete(frontier[i], &state);
              if (!nr.status.ok()) continue;
              Result<bool> maximal =
                  evaluator.MaximalUnconstrained(frontier[i], state);
              if (!maximal.ok()) {
                nr.status = maximal.status();
                continue;
              }
              nr.maximal = maximal.value();
              nr.concepts = std::move(state.concepts);
              nr.decisions = std::move(state.decisions);
              if (nr.maximal) {
                nr.ext_key.reserve(state.exts.size());
                for (const ls::Extension* ext : state.exts) {
                  nr.ext_key.emplace_back(ext->all, ext->ids(), ext->extras());
                }
              }
            }
          });
      // Publish-after-wave: drain every live overlay in worker-slot order
      // (a thread-independent linearization) at this serial point, so the
      // lubs one worker computed are published-tier hits for every worker
      // of the next wave. Publishing is sound even for an abandoned wave —
      // entries are pure functions of the instance.
      for (std::unique_ptr<NodeEvaluator>& worker : workers) {
        if (worker != nullptr) cache_->Publish(worker->overlay());
      }
      if (abandon.load(std::memory_order_relaxed)) {
        // The wave may have holes, so none of it is consumed: the partial
        // result is everything merged through the end of the previous
        // wave. Both abandon conditions are monotone, so PollNow resolves
        // the reason; the fallback covers a cancel raced against its own
        // observation.
        exec::Stop s =
            options_.exec->PollNow(stats_->nodes_expanded)
                .value_or(exec::Stop{exec::StopReason::kCancelled,
                                     stats_->nodes_expanded});
        if (options_.cert == nullptr) {
          return exec::StopStatus(s, "MGE enumeration");
        }
        halted_ = s;
        remaining_ = frontier.size();
        break;
      }

      std::vector<ExclusionSet> next;
      for (size_t i = 0; i < frontier.size(); ++i) {
        if (stats_->nodes_expanded >= options_.max_nodes) {
          if (options_.cert == nullptr) {
            return Status::ResourceExhausted(
                "MGE enumeration exceeded max_nodes = " +
                std::to_string(options_.max_nodes));
          }
          halted_ = exec::Stop{exec::StopReason::kBudget, options_.max_nodes};
          remaining_ = (frontier.size() - i) + next.size();
          break;
        }
        // Same probe ordinals, same check order as the serial pop loop.
        if (std::optional<exec::Stop> s =
                exec::Check(options_.exec, stats_->nodes_expanded)) {
          if (options_.cert == nullptr) {
            return exec::StopStatus(*s, "MGE enumeration");
          }
          halted_ = *s;
          remaining_ = (frontier.size() - i) + next.size();
          break;
        }
        ++stats_->nodes_expanded;
        ++nodes_since_last_output;
        NodeResult& nr = evaluated[i];
        if (!nr.status.ok()) return nr.status;
        bool fresh_output = false;
        if (nr.maximal) {
          if (seen_outputs.insert(std::move(nr.ext_key)).second) {
            fresh_output = true;
            stats_->max_delay =
                std::max(stats_->max_delay, nodes_since_last_output);
            nodes_since_last_output = 0;
            results.push_back(std::move(nr.concepts));
            if (results.size() >= options_.max_results) {
              if (options_.cert != nullptr) {
                halted_ = exec::Stop{exec::StopReason::kBudget,
                                     stats_->nodes_expanded};
                remaining_ = (frontier.size() - 1 - i) + next.size();
              }
              return Finish(std::move(results));
            }
          } else {
            ++stats_->duplicate_outputs;
          }
        }
        if (!fresh_output && !options_.expand_duplicate_nodes) continue;
        for (const GroundElement& e : nr.decisions) {
          ExclusionSet child = frontier[i];
          child.insert(e);
          if (visited.insert(child).second) {
            next.push_back(std::move(child));
          } else {
            ++stats_->visited_hits;
          }
        }
      }
      if (halted_.has_value()) break;
      frontier = std::move(next);
    }
    return Finish(std::move(results));
  }

  const WhyNotInstance& wni_;
  const EnumerateOptions& options_;
  ls::LubContext* lub_;
  ls::ConceptCache* cache_;
  EnumerateStats* stats_;
  std::optional<exec::Stop> halted_;
  size_t remaining_ = 0;
};

}  // namespace

Result<std::vector<LsExplanation>> EnumerateAllMges(
    const WhyNotInstance& wni, const EnumerateOptions& options,
    EnumerateStats* stats, ls::LubContext* lub_context,
    ls::ConceptCache* concept_cache) {
  EnumerateStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = EnumerateStats{};
  std::optional<ls::LubContext> local_lub;
  if (lub_context == nullptr) {
    local_lub.emplace(wni.instance, options.lub);
    lub_context = &*local_lub;
  }
  std::optional<ls::ConceptCache> local_cache;
  if (concept_cache == nullptr) {
    local_cache.emplace(wni.instance);
    concept_cache = &*local_cache;
  }
  const ls::ConceptCacheStats before = concept_cache->stats();
  Enumerator enumerator(wni, options, lub_context, concept_cache, stats);
  Result<std::vector<LsExplanation>> result = enumerator.Run();
  // Attribute this run's cache traffic (a session cache accumulates
  // across requests; the stats block reports per-call deltas).
  const ls::ConceptCacheStats& after = concept_cache->stats();
  stats->cache_shared_hits = after.shared_hits - before.shared_hits;
  stats->cache_local_hits = after.local_hits - before.local_hits;
  stats->cache_misses = after.misses - before.misses;
  stats->cache_publishes = after.publishes - before.publishes;
  stats->cache_evictions = after.evictions - before.evictions;
  return result;
}

}  // namespace whynot::explain
