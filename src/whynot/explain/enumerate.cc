#include "whynot/explain/enumerate.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "whynot/concepts/ls_eval.h"

namespace whynot::explain {

namespace {

// A ground element of the independence system: position j generalized by
// active-domain constant `adom[constant_index]`, or — when `constant_index
// == kTopIndex` — by ⊤.
constexpr int kTopIndex = -1;

struct GroundElement {
  int position;
  int constant_index;

  bool operator<(const GroundElement& o) const {
    return std::tie(position, constant_index) <
           std::tie(o.position, o.constant_index);
  }
  bool operator==(const GroundElement& o) const {
    return position == o.position && constant_index == o.constant_index;
  }
};

using ExclusionSet = std::set<GroundElement>;

// State of one greedy completion: per-position support sets, concepts,
// extensions, and the *decision* elements — accepted additions that
// changed an extension. Decisions are the only elements worth branching
// on: excluding an absorbed element cannot change the greedy trajectory.
// Extensions are pointers into the enumerator's lub cache (stable map
// nodes) or its shared ⊤ extension, so the answer-cover kernel can key
// cover bitmaps by identity across nodes.
struct GreedyState {
  std::vector<std::vector<Value>> support;  // constants fed to lub
  std::vector<bool> topped;                 // position generalized to ⊤
  LsExplanation concepts;
  std::vector<const ls::Extension*> exts;
  std::vector<GroundElement> decisions;
};

class Enumerator {
 public:
  Enumerator(const WhyNotInstance& wni, const EnumerateOptions& options,
             ls::LubContext* lub, EnumerateStats* stats)
      : wni_(wni),
        options_(options),
        lub_(lub),
        stats_(stats),
        adom_(wni.instance->ActiveDomain()),
        adom_ids_(wni.instance->ActiveDomainIds()),
        covers_(wni.instance, &wni.answers),
        top_ext_(ls::Extension::All()) {}

  // Exclusion-branching enumeration of maximal independent sets
  // (Lawler-style), specialized to this monotone system:
  //
  //   * One sweep in fixed (position, constant) order under exclusions F
  //     yields a set maximal within ground ∖ F: acceptance only ever makes
  //     later checks stricter, so a rejected element never becomes
  //     acceptable again.
  //   * The output is reported iff no excluded element can be re-added
  //     (then it is maximal unconstrained, i.e. a genuine MGE).
  //   * Children exclude, in turn, each decision element of the output.
  //     Completeness: for a target MGE M and a node with F ∩ M = ∅, if
  //     every decision lies inside M's support then induction over the
  //     sweep shows the output's extensions equal M's (every element of
  //     M's support is attempted and accepted, every acceptance stays
  //     inside M), so the node reports M; otherwise some decision e ∉ M
  //     gives a child with F ∪ {e} still disjoint from M.
  // Output-dedup key: extensions identified in id space (all extensions
  // share the instance pool, so rank-sorted ids + boxed extras are
  // canonical — integer comparisons, no values() materialization).
  using ExtKey = std::tuple<bool, std::vector<ValueId>, std::vector<Value>>;

  Result<std::vector<LsExplanation>> Run() {
    std::vector<LsExplanation> results;
    std::set<std::vector<ExtKey>> seen_outputs;
    std::set<ExclusionSet> visited;
    std::deque<ExclusionSet> queue;
    queue.push_back({});
    visited.insert({});
    size_t nodes_since_last_output = 0;

    while (!queue.empty()) {
      if (stats_->nodes_expanded >= options_.max_nodes) {
        return Status::ResourceExhausted(
            "MGE enumeration exceeded max_nodes = " +
            std::to_string(options_.max_nodes));
      }
      ExclusionSet excluded = std::move(queue.front());
      queue.pop_front();
      ++stats_->nodes_expanded;
      ++nodes_since_last_output;

      GreedyState state;
      WHYNOT_RETURN_IF_ERROR(GreedyComplete(excluded, &state));

      WHYNOT_ASSIGN_OR_RETURN(bool maximal,
                              MaximalUnconstrained(excluded, state));
      bool fresh_output = false;
      if (maximal) {
        std::vector<ExtKey> ext_key;
        ext_key.reserve(state.exts.size());
        for (const ls::Extension* ext : state.exts) {
          ext_key.emplace_back(ext->all, ext->ids(), ext->extras());
        }
        if (seen_outputs.insert(std::move(ext_key)).second) {
          fresh_output = true;
          stats_->max_delay =
              std::max(stats_->max_delay, nodes_since_last_output);
          nodes_since_last_output = 0;
          results.push_back(state.concepts);
          if (results.size() >= options_.max_results) return results;
        } else {
          ++stats_->duplicate_outputs;
        }
      }
      if (!fresh_output && !options_.expand_duplicate_nodes) continue;

      for (const GroundElement& e : state.decisions) {
        ExclusionSet child = excluded;
        child.insert(e);
        if (visited.insert(child).second) {
          queue.push_back(std::move(child));
        } else {
          ++stats_->visited_hits;
        }
      }
    }
    return results;
  }

 private:
  // Deterministic greedy maximization under an exclusion set: start from
  // the nominal-pinned tuple and, in fixed (position, constant) order, add
  // every non-excluded generalization that keeps the tuple an explanation.
  Status GreedyComplete(const ExclusionSet& excluded, GreedyState* state) {
    size_t m = wni_.arity();
    state->support.resize(m);
    state->topped.assign(m, false);
    state->concepts.resize(m);
    state->exts.resize(m);
    for (size_t j = 0; j < m; ++j) {
      state->support[j] = {wni_.missing[j]};
      WHYNOT_ASSIGN_OR_RETURN(auto ce, LubAndEval(state->support[j]));
      state->concepts[j] = *ce.first;
      state->exts[j] = ce.second;
    }
    if (covers_.ProductIntersects(state->exts)) {
      return Status::Internal(
          "nominal-pinned tuple is not an explanation; contradicts "
          "Section 5.2");
    }

    for (size_t j = 0; j < m; ++j) {
      for (size_t bi = 0; bi < adom_.size() && !state->topped[j]; ++bi) {
        GroundElement e{static_cast<int>(j), static_cast<int>(bi)};
        if (excluded.count(e) > 0) continue;
        // Inside the current lub extension: adding b leaves the lub
        // unchanged (Lemma 5.1/5.2 minimality), so nothing to decide.
        if (state->exts[j]->ContainsId(adom_ids_[bi])) continue;
        std::vector<Value> extended = state->support[j];
        extended.push_back(adom_[bi]);
        WHYNOT_ASSIGN_OR_RETURN(auto cand, LubAndEval(extended));
        if (StaysExplanation(*state, j, *cand.second)) {
          state->support[j] = std::move(extended);
          state->concepts[j] = *cand.first;
          state->exts[j] = cand.second;
          state->decisions.push_back(e);
        }
      }
      if (options_.generalize_to_top && !state->exts[j]->all) {
        GroundElement top{static_cast<int>(j), kTopIndex};
        if (excluded.count(top) == 0 &&
            StaysExplanation(*state, j, top_ext_)) {
          state->topped[j] = true;
          state->concepts[j] = ls::LsConcept::Top();
          state->exts[j] = &top_ext_;
          state->decisions.push_back(top);
        }
      }
    }
    return Status::OK();
  }

  // True iff no *excluded* element can still be added: combined with
  // maximality within ground ∖ F (which the sweep guarantees), this makes
  // the output maximal in the unconstrained system.
  Result<bool> MaximalUnconstrained(const ExclusionSet& excluded,
                                    const GreedyState& state) {
    for (const GroundElement& e : excluded) {
      size_t j = static_cast<size_t>(e.position);
      if (state.topped[j] || state.exts[j]->all) continue;
      if (e.constant_index == kTopIndex) {
        if (options_.generalize_to_top &&
            StaysExplanation(state, j, top_ext_)) {
          return false;
        }
        continue;
      }
      size_t bi = static_cast<size_t>(e.constant_index);
      if (state.exts[j]->ContainsId(adom_ids_[bi])) continue;  // absorbed
      std::vector<Value> extended = state.support[j];
      extended.push_back(adom_[bi]);
      WHYNOT_ASSIGN_OR_RETURN(auto cand, LubAndEval(extended));
      if (StaysExplanation(state, j, *cand.second)) return false;
    }
    return true;
  }

  Result<ls::LsConcept> Lub(const std::vector<Value>& x) {
    if (options_.with_selections) return lub_->LubWithSelections(x);
    return lub_->LubSelectionFree(x);
  }

  // Memoized lub + evaluation: branch-tree nodes share long support-set
  // prefixes, so the same lub is requested many times across nodes. The
  // returned pointers reference the cache's map nodes (stable), which the
  // answer-cover kernel keys its bitmaps by.
  Result<std::pair<const ls::LsConcept*, const ls::Extension*>> LubAndEval(
      const std::vector<Value>& x) {
    std::vector<Value> key = x;
    std::sort(key.begin(), key.end());
    key.erase(std::unique(key.begin(), key.end()), key.end());
    auto it = lub_cache_.find(key);
    if (it == lub_cache_.end()) {
      WHYNOT_ASSIGN_OR_RETURN(ls::LsConcept concept_expr, Lub(x));
      ls::Extension ext = ls::Eval(concept_expr, *wni_.instance);
      it = lub_cache_
               .emplace(std::move(key), std::make_pair(std::move(concept_expr),
                                                       std::move(ext)))
               .first;
    }
    return std::make_pair<const ls::LsConcept*, const ls::Extension*>(
        &it->second.first, &it->second.second);
  }

  // Would replacing position j's extension with `cand` keep the product
  // disjoint from Ans? One word-parallel AND over cover bitmaps.
  bool StaysExplanation(const GreedyState& state, size_t j,
                        const ls::Extension& cand) {
    return !covers_.ProductIntersects(state.exts, j, &cand);
  }

  const WhyNotInstance& wni_;
  const EnumerateOptions& options_;
  ls::LubContext* lub_;
  EnumerateStats* stats_;
  const std::vector<Value>& adom_;
  const std::vector<ValueId>& adom_ids_;
  LsAnswerCovers covers_;
  const ls::Extension top_ext_;
  std::map<std::vector<Value>, std::pair<ls::LsConcept, ls::Extension>>
      lub_cache_;
};

}  // namespace

Result<std::vector<LsExplanation>> EnumerateAllMges(
    const WhyNotInstance& wni, const EnumerateOptions& options,
    EnumerateStats* stats) {
  EnumerateStats local;
  if (stats == nullptr) stats = &local;
  *stats = EnumerateStats{};
  ls::LubContext lub(wni.instance, options.lub);
  Enumerator enumerator(wni, options, &lub, stats);
  return enumerator.Run();
}

}  // namespace whynot::explain
