#include "whynot/explain/explanation.h"

#include "whynot/common/strings.h"

namespace whynot::explain {

std::vector<std::vector<ValueId>> InternAnswers(onto::BoundOntology* bound,
                                                const WhyNotInstance& wni) {
  std::vector<std::vector<ValueId>> out;
  out.reserve(wni.answers.size());
  for (const Tuple& t : wni.answers) {
    std::vector<ValueId> ids;
    ids.reserve(t.size());
    for (const Value& v : t) ids.push_back(bound->pool().Intern(v));
    out.push_back(std::move(ids));
  }
  return out;
}

bool ProductIntersectsAnswers(
    onto::BoundOntology* bound, const std::vector<onto::ConceptId>& concepts,
    const std::vector<std::vector<ValueId>>& interned_answers) {
  for (const std::vector<ValueId>& ans : interned_answers) {
    bool inside = true;
    for (size_t i = 0; i < concepts.size() && inside; ++i) {
      inside = bound->Ext(concepts[i]).Contains(ans[i]);
    }
    if (inside) return true;
  }
  return false;
}

Result<bool> IsExplanation(onto::BoundOntology* bound,
                           const WhyNotInstance& wni, const Explanation& e) {
  if (e.size() != wni.arity()) {
    return Status::InvalidArgument(
        "explanation arity does not match the missing tuple");
  }
  for (size_t i = 0; i < e.size(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    if (!bound->Ext(e[i]).Contains(id)) return false;
  }
  std::vector<std::vector<ValueId>> answers = InternAnswers(bound, wni);
  return !ProductIntersectsAnswers(bound, e, answers);
}

bool LessGeneral(const onto::BoundOntology& bound, const Explanation& e,
                 const Explanation& other) {
  for (size_t i = 0; i < e.size(); ++i) {
    if (!bound.Subsumes(e[i], other[i])) return false;
  }
  return true;
}

bool StrictlyLessGeneral(const onto::BoundOntology& bound,
                         const Explanation& e, const Explanation& other) {
  return LessGeneral(bound, e, other) && !LessGeneral(bound, other, e);
}

std::string ExplanationToString(const onto::BoundOntology& bound,
                                const Explanation& e) {
  std::vector<std::string> parts;
  parts.reserve(e.size());
  for (onto::ConceptId c : e) parts.push_back(bound.ConceptName(c));
  return "(" + Join(parts, ", ") + ")";
}

namespace {

bool IsLsExplanationImpl(const WhyNotInstance& wni, const LsExplanation& e,
                         ls::EvalCache* cache, LsAnswerCovers* covers) {
  if (e.size() != wni.arity()) return false;
  const ValuePool& pool = wni.instance->pool();
  std::vector<const ls::Extension*> exts;
  exts.reserve(e.size());
  for (size_t i = 0; i < e.size(); ++i) {
    const ls::Extension& ext = cache->Eval(e[i]);
    if (!ext.ContainsInterned(pool.Lookup(wni.missing[i]), wni.missing[i])) {
      return false;
    }
    exts.push_back(&ext);
  }
  return !covers->ProductIntersects(exts);
}

}  // namespace

bool IsLsExplanation(const WhyNotInstance& wni, const LsExplanation& e) {
  ls::EvalCache cache(wni.instance);
  LsAnswerCovers covers(wni.instance, &wni.answers);
  return IsLsExplanationImpl(wni, e, &cache, &covers);
}

bool IsLsExplanation(const WhyNotInstance& wni, const LsExplanation& e,
                     ls::EvalCache* cache) {
  LsAnswerCovers covers(wni.instance, &wni.answers);
  return IsLsExplanationImpl(wni, e, cache, &covers);
}

bool IsLsExplanation(const WhyNotInstance& wni, const LsExplanation& e,
                     ls::EvalCache* cache, LsAnswerCovers* covers) {
  return IsLsExplanationImpl(wni, e, cache, covers);
}

bool LessGeneralI(const rel::Instance& instance, const LsExplanation& e,
                  const LsExplanation& other) {
  for (size_t i = 0; i < e.size(); ++i) {
    if (!ls::SubsumedI(e[i], other[i], instance)) return false;
  }
  return true;
}

bool StrictlyLessGeneralI(const rel::Instance& instance,
                          const LsExplanation& e, const LsExplanation& other) {
  return LessGeneralI(instance, e, other) && !LessGeneralI(instance, other, e);
}

std::string LsExplanationToString(const rel::Schema& schema,
                                  const LsExplanation& e) {
  std::vector<std::string> parts;
  parts.reserve(e.size());
  for (const ls::LsConcept& c : e) parts.push_back(c.ToString(&schema));
  return "(" + Join(parts, ",  ") + ")";
}

}  // namespace whynot::explain
