#include "whynot/explain/setcover.h"

#include <algorithm>

#include "whynot/explain/whynot_instance.h"

namespace whynot::explain {

bool BruteForceSetCover(const SetCoverInstance& sc) {
  size_t k = sc.sets.size();
  if (sc.universe == 0) return true;
  // Enumerate all subsets of size <= bound (k is small in tests).
  std::vector<size_t> chosen;
  auto recurse = [&](auto&& self, size_t start, std::vector<bool> covered,
                     size_t covered_count) -> bool {
    if (covered_count == sc.universe) return true;
    if (chosen.size() == sc.bound) return false;
    for (size_t s = start; s < k; ++s) {
      std::vector<bool> next = covered;
      size_t count = covered_count;
      for (int e : sc.sets[s]) {
        if (!next[static_cast<size_t>(e)]) {
          next[static_cast<size_t>(e)] = true;
          ++count;
        }
      }
      chosen.push_back(s);
      if (self(self, s + 1, std::move(next), count)) return true;
      chosen.pop_back();
    }
    return false;
  };
  return recurse(recurse, 0, std::vector<bool>(sc.universe, false), 0);
}

Result<std::unique_ptr<SetCoverWhyNot>> ReduceSetCoverToWhyNot(
    const SetCoverInstance& sc) {
  if (sc.bound == 0) {
    return Status::InvalidArgument("cover bound must be positive");
  }
  auto out = std::make_unique<SetCoverWhyNot>();
  out->schema = std::make_unique<rel::Schema>();
  WHYNOT_RETURN_IF_ERROR(out->schema->AddRelation("U", {"elem"}));
  out->instance = std::make_unique<rel::Instance>(out->schema.get());

  auto elem_name = [](int i) { return Value("u" + std::to_string(i)); };
  const Value star("star");
  for (size_t i = 0; i < sc.universe; ++i) {
    WHYNOT_RETURN_IF_ERROR(
        out->instance->AddFact("U", {elem_name(static_cast<int>(i))}));
  }

  out->ontology = std::make_unique<onto::ExplicitOntology>();
  for (size_t s = 0; s < sc.sets.size(); ++s) {
    std::vector<Value> ext;
    ext.push_back(star);
    std::vector<bool> in_set(sc.universe, false);
    for (int e : sc.sets[s]) in_set[static_cast<size_t>(e)] = true;
    for (size_t i = 0; i < sc.universe; ++i) {
      if (!in_set[i]) ext.push_back(elem_name(static_cast<int>(i)));
    }
    std::string name = "C_set" + std::to_string(s);
    out->ontology->AddConcept(name);
    out->ontology->SetExtension(name, std::move(ext));
  }
  WHYNOT_RETURN_IF_ERROR(out->ontology->Finalize());

  std::vector<Tuple> answers;
  for (size_t i = 0; i < sc.universe; ++i) {
    answers.push_back(Tuple(sc.bound, elem_name(static_cast<int>(i))));
  }
  Tuple missing(sc.bound, star);
  WHYNOT_ASSIGN_OR_RETURN(
      out->wni, MakeWhyNotInstanceFromAnswers(out->instance.get(),
                                              std::move(answers),
                                              std::move(missing)));
  return out;
}

SetCoverInstance RandomSetCover(size_t universe, size_t num_sets,
                                size_t set_size, size_t bound,
                                uint64_t seed) {
  SetCoverInstance sc;
  sc.universe = universe;
  sc.bound = bound;
  uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (size_t s = 0; s < num_sets; ++s) {
    std::vector<int> set;
    for (size_t j = 0; j < set_size; ++j) {
      set.push_back(static_cast<int>(next() % universe));
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    sc.sets.push_back(std::move(set));
  }
  return sc;
}

}  // namespace whynot::explain
