#ifndef WHYNOT_EXPLAIN_SETCOVER_H_
#define WHYNOT_EXPLAIN_SETCOVER_H_

#include <memory>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/explain/explanation.h"
#include "whynot/ontology/explicit_ontology.h"
#include "whynot/relational/schema.h"

namespace whynot::explain {

/// A SET COVER instance: can `bound` of the `sets` cover {0..universe-1}?
struct SetCoverInstance {
  size_t universe = 0;
  std::vector<std::vector<int>> sets;
  size_t bound = 0;
};

/// Reference decision procedure (exponential; for cross-checking the
/// reduction in tests).
bool BruteForceSetCover(const SetCoverInstance& sc);

/// The reduction behind Theorem 5.1.2 (EXISTENCE-OF-EXPLANATION is
/// NP-complete; the query arity is the cover bound, the schema arity is 1):
///
///  * constants: u_0..u_{n-1} for the universe elements plus a fresh ★;
///  * instance: a single unary relation U holding every u_i;
///  * ontology: one concept C_S per set S with fixed extension
///    {★} ∪ {u_i | i ∉ S} and no non-trivial subsumptions;
///  * why-not question: a = (★, ..., ★) (arity = bound) with
///    Ans = {(u_i, ..., u_i) | i < n}.
///
/// A tuple (C_{S1}, ..., C_{Sb}) avoids the answer (u_i,...,u_i) iff some
/// chosen set contains i, so an explanation exists iff `bound` sets cover
/// the universe.
struct SetCoverWhyNot {
  std::unique_ptr<rel::Schema> schema;
  std::unique_ptr<rel::Instance> instance;
  std::unique_ptr<onto::ExplicitOntology> ontology;
  WhyNotInstance wni;
};

Result<std::unique_ptr<SetCoverWhyNot>> ReduceSetCoverToWhyNot(
    const SetCoverInstance& sc);

/// Deterministic pseudo-random SET COVER instances for tests/benchmarks.
SetCoverInstance RandomSetCover(size_t universe, size_t num_sets,
                                size_t set_size, size_t bound, uint64_t seed);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_SETCOVER_H_
