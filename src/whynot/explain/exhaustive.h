#ifndef WHYNOT_EXPLAIN_EXHAUSTIVE_H_
#define WHYNOT_EXPLAIN_EXHAUSTIVE_H_

#include <vector>

#include "whynot/common/exec_control.h"
#include "whynot/common/status.h"
#include "whynot/explain/explanation.h"
#include "whynot/explain/lattice.h"

namespace whynot::explain {

struct ExhaustiveOptions {
  /// Cap on candidate tuples enumerated (the candidate space is
  /// |C(a_1)| × ... × |C(a_m)|, exponential in the query arity —
  /// Theorem 5.2). Under the frontier strategy the cap budgets products
  /// actually *tested* — dominance-skipped downsets are free — which is
  /// what lets the same default serve products orders of magnitude
  /// larger.
  size_t max_candidates = 20000000;
  /// Odometer vs dominance-pruned frontier (see SearchStrategy). The
  /// default escalates to the frontier exactly when the odometer would
  /// return ResourceExhausted and the binding is consistent, so
  /// in-budget behavior is unchanged.
  SearchStrategy strategy = SearchStrategy::kAuto;
  /// When non-null, frontier enumerations accumulate pruning counters
  /// here (left untouched on the odometer path).
  PruneStats* prune_stats = nullptr;
  /// Optional execution control (deadline / cancellation / fault
  /// injection), observed only at serial merge points so interrupted
  /// output stays bit-identical at every thread count. Null = none.
  const exec::ExecContext* exec = nullptr;
  /// When non-null, a stop (deadline / cancellation / budget) returns OK
  /// with the deterministic partial prefix covered so far and fills this
  /// certificate (Quality::kLowerBound: every returned tuple is a genuine
  /// explanation, maximality only certified up to the covered prefix).
  /// When null, stops return the matching error status and budget
  /// exhaustion keeps its historical ResourceExhausted report.
  exec::Certificate* cert = nullptr;
};

/// Algorithm 1 (EXHAUSTIVE SEARCH): computes the set of *all* most-general
/// explanations for the why-not instance w.r.t. the bound finite ontology.
/// Runs in EXPTIME in general and PTIME for fixed query arity
/// (Theorem 5.2). The result is an antichain under ≤_O containing, modulo
/// equivalence, every most-general explanation; explanations are returned
/// in lexicographic concept-id order.
///
/// `covers`, when non-null, must be the answer-cover table of
/// (bound, InternAnswers(bound, wni)); a prepared ExplainSession passes
/// its warm table so repeated requests skip the per-call cover rebuild.
/// Results are identical either way (covers are a pure function of the
/// bound extensions and the answer set). `lattice`, when non-null, is a
/// (possibly still unbuilt) LatticeHandle over the same binding, consulted
/// only when the strategy resolves to the frontier path; results are
/// identical to a locally built lattice.
Result<std::vector<Explanation>> ExhaustiveSearchAllMge(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options = {},
    ConceptAnswerCovers* covers = nullptr, LatticeHandle* lattice = nullptr);

/// Optimized variant of Algorithm 1 used as an ablation baseline: maintains
/// the maximal antichain incrementally while enumerating (instead of
/// generating all explanations first and filtering pairwise afterwards) and
/// skips candidates already dominated. Produces exactly the same set as
/// ExhaustiveSearchAllMge. Same `covers` and `lattice` contracts as above.
Result<std::vector<Explanation>> PrunedSearchAllMge(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options = {},
    ConceptAnswerCovers* covers = nullptr, LatticeHandle* lattice = nullptr);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_EXHAUSTIVE_H_
