#ifndef WHYNOT_EXPLAIN_EXHAUSTIVE_H_
#define WHYNOT_EXPLAIN_EXHAUSTIVE_H_

#include <vector>

#include "whynot/common/status.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

struct ExhaustiveOptions {
  /// Cap on candidate tuples enumerated (the candidate space is
  /// |C(a_1)| × ... × |C(a_m)|, exponential in the query arity —
  /// Theorem 5.2).
  size_t max_candidates = 20000000;
};

/// Algorithm 1 (EXHAUSTIVE SEARCH): computes the set of *all* most-general
/// explanations for the why-not instance w.r.t. the bound finite ontology.
/// Runs in EXPTIME in general and PTIME for fixed query arity
/// (Theorem 5.2). The result is an antichain under ≤_O containing, modulo
/// equivalence, every most-general explanation; explanations are returned
/// in lexicographic concept-id order.
///
/// `covers`, when non-null, must be the answer-cover table of
/// (bound, InternAnswers(bound, wni)); a prepared ExplainSession passes
/// its warm table so repeated requests skip the per-call cover rebuild.
/// Results are identical either way (covers are a pure function of the
/// bound extensions and the answer set).
Result<std::vector<Explanation>> ExhaustiveSearchAllMge(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options = {},
    ConceptAnswerCovers* covers = nullptr);

/// Optimized variant of Algorithm 1 used as an ablation baseline: maintains
/// the maximal antichain incrementally while enumerating (instead of
/// generating all explanations first and filtering pairwise afterwards) and
/// skips candidates already dominated. Produces exactly the same set as
/// ExhaustiveSearchAllMge. Same `covers` contract as above.
Result<std::vector<Explanation>> PrunedSearchAllMge(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options = {},
    ConceptAnswerCovers* covers = nullptr);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_EXHAUSTIVE_H_
