#ifndef WHYNOT_EXPLAIN_WHY_EXPLANATION_H_
#define WHYNOT_EXPLAIN_WHY_EXPLANATION_H_

#include <vector>

#include "whynot/common/exec_control.h"
#include "whynot/common/status.h"
#include "whynot/concepts/concept_cache.h"
#include "whynot/concepts/lub.h"
#include "whynot/explain/explanation.h"
#include "whynot/explain/lattice.h"

namespace whynot::explain {

/// The paper's Section 7 sketches *why* explanations as future work: the
/// dual question "why IS the tuple a in q(I)?" answered at concept level.
/// We realize the natural dual of Definition 3.2: a tuple of concepts
/// (C1, ..., Cm) is a why-explanation for a ∈ q(I) iff
///
///   * aᵢ ∈ ext(Cᵢ, I) for every i, and
///   * ext(C1, I) × ... × ext(Cm, I) ⊆ q(I) — every tuple of the product
///     is an answer ("all European cities reach all European cities").
///
/// Most-general why-explanations are defined exactly as in Definition 3.3;
/// the same antichain machinery applies because only the second condition
/// changed (⊆ Ans instead of ∩ Ans = ∅).
struct WhyInstance {
  const rel::Instance* instance = nullptr;
  std::vector<Tuple> answers;  // q(I), sorted
  Tuple present;               // a ∈ q(I)

  size_t arity() const { return present.size(); }
};

/// Builds a why instance; fails unless `present` ∈ q(I).
Result<WhyInstance> MakeWhyInstance(const rel::Instance* instance,
                                    const rel::UnionQuery& query,
                                    Tuple present);

/// The why-dual's answer rows interned against the bound pool and
/// sort-deduped — the vector the external why covers index (the counting
/// form needs Ans duplicate-free). Shared with ExplainSession's warm
/// cover table.
std::vector<std::vector<ValueId>> InternedUniqueAnswers(
    onto::BoundOntology* bound, const WhyInstance& wi);

/// Checks the dual Definition 3.2 above. `covers`, when non-null, must be
/// the answer-cover table of (bound, InternedUniqueAnswers(bound, wi)) —
/// a prepared ExplainSession's warm table; results are identical.
Result<bool> IsWhyExplanation(onto::BoundOntology* bound,
                              const WhyInstance& wi, const Explanation& e,
                              ConceptAnswerCovers* covers = nullptr);

/// All most-general why-explanations, by the Algorithm 1 scheme (enumerate
/// candidates per position, keep product-inside-answers tuples, reduce to
/// the maximal antichain). Same complexity envelope as Theorem 5.2, and
/// the same `covers` contract as IsWhyExplanation. The containment
/// condition is ≼-downward closed exactly like avoidance, so the search
/// dispatches through the same strategy machinery as
/// ExhaustiveSearchAllMge: `strategy`/`lattice`/`prune_stats` follow the
/// ExhaustiveOptions contracts, and the frontier path returns the
/// identical antichain. `exec`/`cert` follow the engine-wide contract
/// (ExhaustiveOptions): with `cert`, a stop returns the deterministic
/// partial antichain (Quality::kLowerBound) instead of an error, and
/// max_candidates becomes a certified budget stop.
Result<std::vector<Explanation>> AllMostGeneralWhyExplanations(
    onto::BoundOntology* bound, const WhyInstance& wi,
    size_t max_candidates = 20000000, ConceptAnswerCovers* covers = nullptr,
    SearchStrategy strategy = SearchStrategy::kAuto,
    LatticeHandle* lattice = nullptr, PruneStats* prune_stats = nullptr,
    const exec::ExecContext* exec = nullptr, exec::Certificate* cert = nullptr);

// --- Why-explanations w.r.t. the derived ontology OI ----------------------

/// The dual Definition 3.2 against OI: every aᵢ ∈ ⟦Cᵢ⟧ᴵ and the extension
/// product is contained in the answers. A ⊤-valued position always fails
/// (infinite product vs. finite Ans), so — unlike the why-not case — no
/// ⊤-generalization sweep exists.
///
/// The trailing cache parameters follow the session convention used
/// throughout this header: `cache` is an extension memo bound to
/// wi.instance, `covers` an LsAnswerCovers over the *sort-deduped* answer
/// vector fed by the same cache; both are created per call when null, and
/// results are bit-identical either way. Passing `covers` additionally
/// asserts that wi.answers is itself sorted and duplicate-free (an
/// ExplainSession guarantees this) — the one-shot path sort-dedups a
/// local copy defensively, but warm covers and a hand-filled,
/// duplicate-carrying wi.answers would disagree on answer indexing.
bool IsLsWhyExplanation(const WhyInstance& wi, const LsExplanation& e,
                        ls::EvalCache* cache = nullptr,
                        LsAnswerCovers* covers = nullptr);

/// Algorithm 2's scheme applied to the dual problem: start from the
/// nominal-pinned tuple (whose product is {a} ⊆ Ans) and greedily grow
/// each position's support with active-domain constants while the product
/// stays inside the answers. The "stays inside" condition is
/// downward-closed in the supports, so one sweep in fixed order yields a
/// most-general why-explanation w.r.t. OI (selection-free LS, or full LS
/// with `with_selections`). PTIME for selection-free LS by the Theorem 5.3
/// argument (the product of a why-explanation has at most |Ans| tuples, so
/// every acceptance check is answer-bounded).
///
/// `exec`/`cert` follow the IncrementalOptions contract: probes are
/// per generalization candidate in the fixed sweep order; with `cert` a
/// stop returns the tuple generalized so far — a sound why-explanation,
/// possibly not most general (Quality::kHeuristic).
/// `concept_cache` is the shared lub/eval cache (session convention: null
/// uses a call-local one; output is bit-identical either way).
/// `session_overlay` follows the IncrementalSearch contract: a session's
/// persistent overlay bound to (concept_cache, with_selections,
/// lub_context, cache), keeping probe memos warm across requests.
Result<LsExplanation> IncrementalWhySearch(
    const WhyInstance& wi, bool with_selections = false,
    ls::LubContext* lub_context = nullptr, ls::EvalCache* cache = nullptr,
    LsAnswerCovers* covers = nullptr,
    ls::ConceptCache* concept_cache = nullptr,
    const exec::ExecContext* exec = nullptr,
    exec::Certificate* cert = nullptr,
    ls::ConceptCacheOverlay* session_overlay = nullptr);

/// CHECK-MGE for the dual problem w.r.t. OI: no single-position
/// lub-generalization keeps the product inside the answers. Same trailing
/// cache convention as IsLsWhyExplanation, with `concept_cache` the shared
/// lub/eval cache (published-tier reads during a sharded sweep, misses
/// published at its serial end). `exec` is observed once per candidate
/// position (the same serial points on the serial and sharded paths); the
/// boolean verdict admits no meaningful partial result, so a stop always
/// returns the matching error status.
Result<bool> CheckWhyMgeDerived(const WhyInstance& wi,
                                const LsExplanation& candidate,
                                bool with_selections,
                                ls::LubContext* lub_context,
                                ls::EvalCache* cache = nullptr,
                                LsAnswerCovers* covers = nullptr,
                                ls::ConceptCache* concept_cache = nullptr,
                                const exec::ExecContext* exec = nullptr);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_WHY_EXPLANATION_H_
