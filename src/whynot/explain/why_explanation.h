#ifndef WHYNOT_EXPLAIN_WHY_EXPLANATION_H_
#define WHYNOT_EXPLAIN_WHY_EXPLANATION_H_

#include <vector>

#include "whynot/common/status.h"
#include "whynot/concepts/lub.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

/// The paper's Section 7 sketches *why* explanations as future work: the
/// dual question "why IS the tuple a in q(I)?" answered at concept level.
/// We realize the natural dual of Definition 3.2: a tuple of concepts
/// (C1, ..., Cm) is a why-explanation for a ∈ q(I) iff
///
///   * aᵢ ∈ ext(Cᵢ, I) for every i, and
///   * ext(C1, I) × ... × ext(Cm, I) ⊆ q(I) — every tuple of the product
///     is an answer ("all European cities reach all European cities").
///
/// Most-general why-explanations are defined exactly as in Definition 3.3;
/// the same antichain machinery applies because only the second condition
/// changed (⊆ Ans instead of ∩ Ans = ∅).
struct WhyInstance {
  const rel::Instance* instance = nullptr;
  std::vector<Tuple> answers;  // q(I), sorted
  Tuple present;               // a ∈ q(I)

  size_t arity() const { return present.size(); }
};

/// Builds a why instance; fails unless `present` ∈ q(I).
Result<WhyInstance> MakeWhyInstance(const rel::Instance* instance,
                                    const rel::UnionQuery& query,
                                    Tuple present);

/// Checks the dual Definition 3.2 above.
Result<bool> IsWhyExplanation(onto::BoundOntology* bound,
                              const WhyInstance& wi, const Explanation& e);

/// All most-general why-explanations, by the Algorithm 1 scheme (enumerate
/// candidates per position, keep product-inside-answers tuples, reduce to
/// the maximal antichain). Same complexity envelope as Theorem 5.2.
Result<std::vector<Explanation>> AllMostGeneralWhyExplanations(
    onto::BoundOntology* bound, const WhyInstance& wi,
    size_t max_candidates = 20000000);

// --- Why-explanations w.r.t. the derived ontology OI ----------------------

/// The dual Definition 3.2 against OI: every aᵢ ∈ ⟦Cᵢ⟧ᴵ and the extension
/// product is contained in the answers. A ⊤-valued position always fails
/// (infinite product vs. finite Ans), so — unlike the why-not case — no
/// ⊤-generalization sweep exists.
bool IsLsWhyExplanation(const WhyInstance& wi, const LsExplanation& e);

/// Algorithm 2's scheme applied to the dual problem: start from the
/// nominal-pinned tuple (whose product is {a} ⊆ Ans) and greedily grow
/// each position's support with active-domain constants while the product
/// stays inside the answers. The "stays inside" condition is
/// downward-closed in the supports, so one sweep in fixed order yields a
/// most-general why-explanation w.r.t. OI (selection-free LS, or full LS
/// with `with_selections`). PTIME for selection-free LS by the Theorem 5.3
/// argument (the product of a why-explanation has at most |Ans| tuples, so
/// every acceptance check is answer-bounded).
Result<LsExplanation> IncrementalWhySearch(const WhyInstance& wi,
                                           bool with_selections = false);

/// CHECK-MGE for the dual problem w.r.t. OI: no single-position
/// lub-generalization keeps the product inside the answers.
Result<bool> CheckWhyMgeDerived(const WhyInstance& wi,
                                const LsExplanation& candidate,
                                bool with_selections,
                                ls::LubContext* lub_context);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_WHY_EXPLANATION_H_
