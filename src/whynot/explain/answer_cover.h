#ifndef WHYNOT_EXPLAIN_ANSWER_COVER_H_
#define WHYNOT_EXPLAIN_ANSWER_COVER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "whynot/common/dense_bitmap.h"
#include "whynot/common/hybrid_bitmap.h"
#include "whynot/common/value.h"
#include "whynot/concepts/ls_eval.h"
#include "whynot/ontology/ontology.h"

namespace whynot::explain {

/// Word-parallel answer-cover kernel (the PR-3 inner loop of every
/// explanation search). For a fixed answer set Ans, the *cover* of an
/// extension at position i is the bitmap over answer indices
///   Cover(x, i) = { a : Ans[a][i] ∈ ext(x) },
/// and both product conditions of Definitions 3.2 / the why dual reduce to
/// an AND over positions:
///
///   ext(e_1) × ... × ext(e_m) ∩ Ans ≠ ∅  iff  ⋀_i Cover(e_i, i) ≠ 0;
///   |ext(e_1) × ... × ext(e_m) ∩ Ans|    =    popcount(⋀_i Cover(e_i, i)).
///
/// One O(|Ans|) cover build per (concept, position) — each probe O(1) via
/// the extension bitmaps — replaces a scalar membership probe per
/// (answer, position) per *candidate*; candidate checks drop to
/// m · ⌈|Ans|/64⌉ word ANDs with early exit. An All/⊤ extension covers
/// every answer (the full-prefix bitmap), an empty one covers none, so the
/// kernel needs no special-casing at the call sites for the intersection
/// form; the counting (containment) form keeps its finite/overflow
/// pre-checks at the caller.
///
/// Rows freeze adaptively (ChooseHybridRep over the |Ans| universe): flat
/// arena rows below the sparsity crossover, chunked HybridBitmap rows
/// above it. A CoverView names either form and the m-way kernels accept
/// mixed operand sets — the all-dense case runs the exact word loops of
/// the flat kernel, any hybrid operand switches to driving from the
/// sparsest hybrid's elements and probing the rest.

/// One answer-cover row: exactly one of `words` (flat, num_words() words)
/// or `hybrid` is set. Trivially copyable; the underlying storage is owned
/// by the covers object and stable for its lifetime.
struct CoverView {
  const uint64_t* words = nullptr;
  const HybridBitmap* hybrid = nullptr;
};

/// Covers for an external finite ontology bound to an instance: keyed by
/// ConceptId. `answers` are id rows interned against bound->pool()
/// (InternAnswers), captured by value; `bound` must outlive the covers.
///
/// Dense storage is a per-position chunked *arena*: covers live in
/// contiguous kChunkConcepts × words(|Ans|) word blocks allocated on
/// demand, covers are pointers into them — a handful of allocations per
/// position instead of one per cover, without committing
/// NumConcepts × |Ans| memory when only a few concepts are ever probed at
/// a position (chunk buffers never move once allocated, so handed-out
/// pointers stay valid). Rows past the sparsity crossover skip the arena
/// and box a HybridBitmap instead.
class ConceptAnswerCovers {
 public:
  /// Concepts per arena chunk; bounds slack at 32 covers' worth of words.
  static constexpr size_t kChunkConcepts = 32;

  /// built_[pos][concept] states.
  static constexpr uint8_t kRepUnbuilt = 0;
  static constexpr uint8_t kRepDense = 1;
  static constexpr uint8_t kRepHybrid = 2;

  ConceptAnswerCovers(onto::BoundOntology* bound,
                      std::vector<std::vector<ValueId>> answers);

  const std::vector<std::vector<ValueId>>& answers() const { return answers_; }
  size_t num_answers() const { return answers_.size(); }
  /// Words per cover (= ⌈|Ans|/64⌉).
  size_t num_words() const { return num_words_; }
  /// The all-ones cover (trailing bits zero).
  const std::vector<uint64_t>& full_words() const { return full_; }

  /// Cover(c, pos), built on first use (two array loads on the warm path,
  /// no tree/hash walk). A null-words dense view iff Ans is empty (zero
  /// words).
  CoverView Cover(onto::ConceptId c, size_t pos) {
    // built_[pos] stays empty until the first build at this position
    // (positions can be touched out of order), so guard before indexing.
    if (pos < built_.size() && !built_[pos].empty()) {
      size_t idx = static_cast<size_t>(c);
      uint8_t rep = built_[pos][idx];
      if (rep == kRepDense) {
        return CoverView{chunks_[pos][idx / kChunkConcepts].data() +
                             (idx % kChunkConcepts) * num_words_,
                         nullptr};
      }
      if (rep == kRepHybrid) {
        return CoverView{nullptr, hybrids_[pos][idx].get()};
      }
    }
    return BuildCover(c, pos);
  }

  /// ⋀_i Cover(e_i, i) ≠ 0 : the candidate product intersects Ans.
  bool ProductIntersects(const std::vector<onto::ConceptId>& e);

  /// popcount(⋀_i Cover(e_i, i)) : answers covered componentwise.
  size_t CountCovered(const std::vector<onto::ConceptId>& e);

  /// ⋀_{i != skip} Cover(e_i, i) — the loop-invariant part of a probe
  /// sweep that varies one position. All ones (over |Ans|) when every
  /// position is skipped.
  std::vector<uint64_t> AndAllExcept(const std::vector<onto::ConceptId>& e,
                                     size_t skip);

  /// (words ∧ cover) ≠ 0 without materializing the AND.
  static bool AnyAnd(const std::vector<uint64_t>& words,
                     const uint64_t* cover) {
    for (size_t w = 0; w < words.size(); ++w) {
      if (words[w] & cover[w]) return true;
    }
    return false;
  }

  /// The view forms of the probe primitives: a flat row runs the word
  /// loop / SIMD dispatch, a hybrid row folds through the mixed
  /// hybrid × raw-word kernels without materializing a dense copy.
  static bool AnyAndView(const std::vector<uint64_t>& words,
                         const CoverView& v) {
    if (v.hybrid != nullptr) {
      return v.hybrid->AnyAndWith(words.data(), words.size());
    }
    return AnyAnd(words, v.words);
  }
  static void AndViewInPlace(uint64_t* acc, const CoverView& v, size_t n) {
    if (v.hybrid != nullptr) {
      v.hybrid->AndWith(acc, acc, n);
    } else {
      DenseBitmap::AndWordsInPlace(acc, v.words, n);
    }
  }
  /// Membership of answer index `bit` in a row of either representation.
  static bool ViewTestBit(const CoverView& v, size_t bit) {
    if (v.hybrid != nullptr) return v.hybrid->Test(static_cast<ValueId>(bit));
    return (v.words[bit / 64] >> (bit % 64)) & 1u;
  }

  /// The shared m-way word-AND kernels: `cover_at(i)` yields position i's
  /// cover (all covers num_words() long). Any: early-exits on the first
  /// surviving word; Count: popcount of the full AND. Used by the product
  /// checks here and by the enumeration odometers in exhaustive.cc /
  /// cardinality.cc so the kernel exists exactly once.
  template <typename CoverAt>
  static bool ProductAny(size_t m, size_t nwords, CoverAt cover_at) {
    for (size_t w = 0; w < nwords; ++w) {
      uint64_t acc = cover_at(0)[w];
      for (size_t i = 1; i < m && acc != 0; ++i) acc &= cover_at(i)[w];
      if (acc != 0) return true;
    }
    return false;
  }
  /// The one- and two-cover forms route through the SIMD dispatch: a lone
  /// cover is a straight popcount, a pair uses the fused AND+popcount
  /// kernel (no intermediate bitmap); wider products keep the word-outer
  /// scalar loop whose running AND early-exits on a zero accumulator.
  template <typename CoverAt>
  static size_t ProductCount(size_t m, size_t nwords, CoverAt cover_at) {
    if (m == 1) return DenseBitmap::PopcountWords(cover_at(0), nwords);
    if (m == 2) {
      return DenseBitmap::AndCountWords(cover_at(0), cover_at(1), nwords);
    }
    size_t count = 0;
    for (size_t w = 0; w < nwords; ++w) {
      uint64_t acc = cover_at(0)[w];
      for (size_t i = 1; i < m && acc != 0; ++i) acc &= cover_at(i)[w];
      count += static_cast<size_t>(__builtin_popcountll(acc));
    }
    return count;
  }

  /// Mixed-representation m-way kernels: `view_at(i)` yields position i's
  /// row as a CoverView. All-dense operand sets fall through to the flat
  /// kernels above (byte-identical work); otherwise the sparsest hybrid
  /// operand drives — its elements are visited in ascending answer order
  /// and probed against every other row, so cost is O(smallest hybrid
  /// cardinality × m) instead of O(m × nwords).
  template <typename ViewAt>
  static bool ProductAnyViews(size_t m, size_t nwords, ViewAt view_at) {
    size_t driver = SIZE_MAX;
    size_t driver_card = SIZE_MAX;
    for (size_t i = 0; i < m; ++i) {
      const CoverView v = view_at(i);
      if (v.hybrid != nullptr && v.hybrid->Count() < driver_card) {
        driver = i;
        driver_card = v.hybrid->Count();
      }
    }
    if (driver == SIZE_MAX) {
      return ProductAny(m, nwords, [&](size_t i) { return view_at(i).words; });
    }
    return !view_at(driver).hybrid->ForEachIdUntil([&](ValueId a) {
      for (size_t i = 0; i < m; ++i) {
        if (i == driver) continue;
        if (!ViewTestBit(view_at(i), static_cast<size_t>(a))) return true;
      }
      return false;  // survivor found — stop the scan
    });
  }
  template <typename ViewAt>
  static size_t ProductCountViews(size_t m, size_t nwords, ViewAt view_at) {
    size_t driver = SIZE_MAX;
    size_t driver_card = SIZE_MAX;
    for (size_t i = 0; i < m; ++i) {
      const CoverView v = view_at(i);
      if (v.hybrid != nullptr && v.hybrid->Count() < driver_card) {
        driver = i;
        driver_card = v.hybrid->Count();
      }
    }
    if (driver == SIZE_MAX) {
      return ProductCount(m, nwords,
                          [&](size_t i) { return view_at(i).words; });
    }
    if (m == 1) return driver_card;
    size_t count = 0;
    view_at(driver).hybrid->ForEachIdUntil([&](ValueId a) {
      for (size_t i = 0; i < m; ++i) {
        if (i == driver) continue;
        if (!ViewTestBit(view_at(i), static_cast<size_t>(a))) return true;
      }
      ++count;
      return true;
    });
    return count;
  }

  // The pre-resolved per-candidate-list cover table lives in
  // search_core.h (explain::CoverTable), next to the chunked candidate
  // filter that probes it.

  /// Heap + object bytes resident across arenas, hybrid rows, and
  /// bookkeeping.
  size_t MemoryBytes() const;
  /// Counterfactual bytes had every built row been a flat arena slot (the
  /// pre-hybrid behavior); the BENCH memory column's reduction baseline.
  size_t DenseEquivalentBytes() const;
  /// Rows currently stored hybrid (stats/tests).
  size_t NumHybridCovers() const;

 private:
  CoverView BuildCover(onto::ConceptId c, size_t pos);

  onto::BoundOntology* bound_;
  std::vector<std::vector<ValueId>> answers_;
  size_t num_words_;
  // chunks_[pos][chunk]: kChunkConcepts × num_words_ words (empty until a
  // dense cover of that chunk is built); built_[pos][concept] is a kRep*
  // code; hybrids_[pos][concept] boxes the hybrid rows.
  std::vector<std::vector<std::vector<uint64_t>>> chunks_;
  std::vector<std::vector<uint8_t>> built_;
  std::vector<std::vector<std::unique_ptr<HybridBitmap>>> hybrids_;
  std::vector<uint64_t> full_;
  std::vector<uint64_t> scratch_row_;
  std::vector<CoverView> scratch_views_;
};

/// Covers for the derived ontology O_I: keyed by ls::Extension *identity*.
/// Extensions passed to Cover must be stable for the covers' lifetime —
/// references into an ls::EvalCache (node-based maps) or locals owned by
/// the search; All() extensions are recognized by flag, not address.
/// `instance` and `answers` must outlive the covers and stay fixed.
class LsAnswerCovers {
 public:
  LsAnswerCovers(const rel::Instance* instance,
                 const std::vector<Tuple>* answers);

  size_t num_answers() const { return answers_->size(); }
  size_t num_words() const { return full_.num_words(); }

  /// Cover(ext, pos), built on first use (identity-cached); flat or
  /// hybrid per the freeze rule over the |Ans| universe.
  CoverView Cover(const ls::Extension& ext, size_t pos);

  /// ⋀_i Cover(exts_i, i) ≠ 0, with position `swap_pos` (if != SIZE_MAX)
  /// read from `repl` instead of exts[swap_pos] — the probe form of the
  /// greedy searches, no vector copies.
  bool ProductIntersects(const std::vector<const ls::Extension*>& exts,
                         size_t swap_pos = SIZE_MAX,
                         const ls::Extension* repl = nullptr);

  /// popcount of the AND, same swap convention.
  size_t CountCovered(const std::vector<const ls::Extension*>& exts,
                      size_t swap_pos = SIZE_MAX,
                      const ls::Extension* repl = nullptr);

  /// Heap + object bytes across columns and cached cover rows.
  size_t MemoryBytes() const;
  /// Counterfactual bytes with every cached row flat (pre-hybrid
  /// behavior): columns plus one |Ans|-universe DenseBitmap per row.
  size_t DenseEquivalentBytes() const;

 private:
  /// One cached row: exactly one representation is populated.
  struct StoredCover {
    DenseBitmap dense;
    std::unique_ptr<HybridBitmap> hybrid;
  };
  struct KeyHash {
    size_t operator()(const std::pair<const ls::Extension*, size_t>& k) const {
      uintptr_t p = reinterpret_cast<uintptr_t>(k.first);
      return (p >> 4) * 1099511628211ull ^ k.second;
    }
  };

  const std::vector<Tuple>* answers_;
  const ValuePool* pool_;
  // columns_[pos][a] = pool id of (*answers_)[a][pos], -1 if not interned.
  std::vector<std::vector<ValueId>> columns_;
  std::unordered_map<std::pair<const ls::Extension*, size_t>, StoredCover,
                     KeyHash>
      covers_;
  DenseBitmap full_;
  std::vector<CoverView> scratch_views_;
};

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_ANSWER_COVER_H_
