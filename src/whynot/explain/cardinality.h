#ifndef WHYNOT_EXPLAIN_CARDINALITY_H_
#define WHYNOT_EXPLAIN_CARDINALITY_H_

#include <optional>

#include "whynot/common/status.h"
#include "whynot/explain/exhaustive.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

/// The degree of generality of an explanation (Section 6, cardinality-based
/// preference): |ext(C1, I)| + ... + |ext(Cm, I)|, possibly infinite.
struct Degree {
  bool infinite = false;
  size_t finite = 0;

  bool operator>(const Degree& o) const {
    if (infinite != o.infinite) return infinite;
    return finite > o.finite;
  }
  bool operator==(const Degree& o) const {
    return infinite == o.infinite && (infinite || finite == o.finite);
  }
  std::string ToString() const {
    return infinite ? "inf" : std::to_string(finite);
  }
};

Degree DegreeOf(onto::BoundOntology* bound, const Explanation& e);

struct CardinalityResult {
  Explanation explanation;
  Degree degree;
};

/// A >card-maximal explanation by exhaustive enumeration of all
/// explanations (exponential; Proposition 6.4 shows no PTIME algorithm
/// exists unless P=NP, and no PTIME constant-factor approximation either).
/// Returns nullopt when no explanation exists. Among equal-degree
/// explanations the witness is the first, in the serial odometer's order,
/// that no other maximum-degree explanation strictly dominates — a
/// canonical choice both search strategies produce identically. `covers`,
/// when non-null, must be the answer-cover table of
/// (bound, InternAnswers(bound, wni)) (a prepared ExplainSession's warm
/// table); results are identical. `lattice` follows the
/// ExhaustiveSearchAllMge contract; the frontier path additionally
/// branch-and-bounds on the degree (a failing product strictly beaten by
/// the best passing degree prunes its whole downset). Candidate lists
/// containing an All-extension concept pin the search to the odometer:
/// the degree order compares finite parts even between infinite degrees,
/// which breaks the ≼-monotonicity the pruning relies on.
Result<std::optional<CardinalityResult>> ExactCardMaximal(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options = {},
    ConceptAnswerCovers* covers = nullptr, LatticeHandle* lattice = nullptr);

/// Greedy hill-climbing heuristic: starts from any explanation and
/// repeatedly applies the single-position replacement that increases the
/// degree most. Fast, but only reaches a local optimum — the
/// bench_cardinality benchmark exhibits the approximation gap on
/// set-cover-shaped families, illustrating Proposition 6.4's
/// inapproximability. Returns nullopt when no explanation exists.
/// Same `covers` contract as ExactCardMaximal.
///
/// `exec` / `cert` follow the engine-wide contract (ExhaustiveOptions):
/// probes are per climb candidate, and with `cert` a stop returns the
/// current sound explanation instead of an error. Greedy certificates are
/// always Quality::kHeuristic — complete() only says the climb converged
/// to its local optimum, never that the degree is maximal.
Result<std::optional<CardinalityResult>> GreedyCardinalityClimb(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    ConceptAnswerCovers* covers = nullptr,
    const exec::ExecContext* exec = nullptr,
    exec::Certificate* cert = nullptr);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_CARDINALITY_H_
