#ifndef WHYNOT_EXPLAIN_ENUMERATE_H_
#define WHYNOT_EXPLAIN_ENUMERATE_H_

#include <cstddef>
#include <vector>

#include "whynot/common/exec_control.h"
#include "whynot/common/status.h"
#include "whynot/concepts/concept_cache.h"
#include "whynot/concepts/lub.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

struct EnumerateOptions {
  /// false: enumerate over selection-free LS (the fragment for which the
  /// paper's Section 7 poses the polynomial-delay enumeration question).
  /// true: enumerate over full LS via lubσ (Lemma 5.2).
  bool with_selections = false;

  /// Allow positions to generalize all the way to ⊤ (see
  /// IncrementalOptions::generalize_to_top for why this is needed for
  /// maximality over the full language, which contains ⊤).
  bool generalize_to_top = true;

  /// Stop after this many distinct most-general explanations.
  size_t max_results = 100000;

  /// Cap on branch-tree nodes expanded (the enumeration is output-
  /// sensitive in practice but has no known polynomial-delay bound; the
  /// paper leaves that question open).
  size_t max_nodes = 1000000;

  /// true (default): expand children of every node, including nodes whose
  /// greedy output duplicates an already-reported MGE — required for the
  /// completeness guarantee (a duplicate node's exclusion set can still be
  /// the only gateway to an unreported MGE). false: stop at duplicate
  /// outputs — a heuristic that explores far fewer nodes; every output is
  /// still a verified MGE, but rare MGEs may be missed. The benchmark
  /// bench_enumerate measures the gap.
  bool expand_duplicate_nodes = true;

  ls::LubOptions lub;

  /// Optional execution control, observed once per branch-tree node at the
  /// serial consumption point (queue pop / wave merge), so node ordinals —
  /// and hence any injected stop — are identical for every thread count.
  const exec::ExecContext* exec = nullptr;

  /// When non-null, a stop (deadline, cancellation, or the max_nodes /
  /// max_results budgets) returns OK with the MGEs reported so far — every
  /// one a verified most-general explanation, but possibly not all of them
  /// (Quality::kLowerBound) — and the certificate records where the
  /// enumeration was cut. When null, deadline/cancellation return the
  /// matching error status and max_nodes keeps its historical
  /// ResourceExhausted.
  exec::Certificate* cert = nullptr;
};

/// Counters exposed for the enumeration benchmarks (delay behaviour).
struct EnumerateStats {
  /// Branch-tree nodes whose greedy completion was computed.
  size_t nodes_expanded = 0;
  /// Nodes whose greedy completion duplicated an already-reported MGE.
  size_t duplicate_outputs = 0;
  /// Nodes skipped because their exclusion set was already visited.
  size_t visited_hits = 0;
  /// Largest number of nodes expanded between two successive new outputs
  /// (the empirical "delay" of the enumeration).
  size_t max_delay = 0;

  // Shared concept-cache traffic attributable to this run (deltas of the
  // cache's cumulative counters). Unlike the fields above, these are
  // observability only and NOT thread-invariant: which lookups land on the
  // published tier versus a worker-local overlay depends on the wave
  // structure. The served values are identical everywhere.
  size_t cache_shared_hits = 0;
  size_t cache_local_hits = 0;
  size_t cache_misses = 0;
  size_t cache_publishes = 0;
  size_t cache_evictions = 0;
};

/// Enumerates *all* most-general explanations for the why-not instance
/// w.r.t. the instance-derived ontology OI, modulo equivalence ≡_OI
/// (Section 7 poses this as an open problem for selection-free LS; this is
/// a correct — but not provably polynomial-delay — solution).
///
/// Method. Being an explanation is monotone-decreasing in the per-position
/// support sets: growing a support set grows the lub extension and hence
/// the product, so explanations form an independence system over the
/// ground set {(position j, b) | b ∈ adom(I)} ∪ {(position j, ⊤)}. Every
/// most-general explanation corresponds to exactly one *maximal*
/// independent set (its full support: by Lemmas 5.1/5.2, adding a constant
/// already inside the lub extension leaves the lub unchanged). Maximal
/// independent sets are enumerated by deterministic greedy completion with
/// exclusion-set branching (Lawler-style): report greedy(∅); for each
/// reported set E and each ground element e ∈ E, branch on excluding e.
/// For any maximal M, greedy(ground ∖ M) = M and each branching step can
/// stay inside ground ∖ M, so every MGE is reached; a visited-set on
/// exclusion sets and result deduplication bound re-exploration.
///
/// The result is an antichain w.r.t. ≤_OI; each element passes CHECK-MGE
/// w.r.t. OI. Ordering is deterministic (discovery order of the
/// deterministic branching).
///
/// `lub_context`, when non-null, is reused for the serial evaluator
/// (a prepared ExplainSession keeps its canonical boxes warm across
/// requests; with more than one pool thread the wave workers still build
/// their own contexts, as in the one-shot call). Results, ordering, and
/// stats are bit-identical either way.
///
/// `concept_cache`, when non-null, is the shared lub/eval cache: node
/// evaluators (serial and per-worker alike) probe its published tier
/// during waves and publish their misses at the wave-end serial point, so
/// lubs computed by one worker are shared by all workers of later waves —
/// and, when the cache belongs to an ExplainSession, by later requests.
/// Null runs against a run-local cache. Either way the output, the
/// deterministic stats, and errors are bit-identical (cache entries are
/// pure functions of the instance).
Result<std::vector<LsExplanation>> EnumerateAllMges(
    const WhyNotInstance& wni, const EnumerateOptions& options = {},
    EnumerateStats* stats = nullptr, ls::LubContext* lub_context = nullptr,
    ls::ConceptCache* concept_cache = nullptr);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_ENUMERATE_H_
