#include "whynot/explain/shorten.h"

#include <algorithm>

#include "whynot/concepts/lub.h"
#include "whynot/concepts/materialize.h"

namespace whynot::explain {

ls::LsConcept MakeIrredundant(const ls::LsConcept& concept_expr,
                              const rel::Instance& instance) {
  ls::Extension target = ls::Eval(concept_expr, instance);
  std::vector<ls::Conjunct> kept(concept_expr.conjuncts());
  // Greedy removal: drop a conjunct whenever the extension is unchanged.
  // The result is irredundant because extensions grow monotonically as
  // conjuncts are removed: if some subset of the survivors were still
  // equivalent, the greedy pass would have removed the difference.
  for (size_t i = 0; i < kept.size();) {
    std::vector<ls::Conjunct> without = kept;
    without.erase(without.begin() + static_cast<long>(i));
    if (ls::Eval(ls::LsConcept(without), instance) == target) {
      kept = std::move(without);
    } else {
      ++i;
    }
  }
  return ls::LsConcept(std::move(kept));
}

LsExplanation MakeIrredundant(const LsExplanation& explanation,
                              const rel::Instance& instance) {
  LsExplanation out;
  out.reserve(explanation.size());
  for (const ls::LsConcept& c : explanation) {
    out.push_back(MakeIrredundant(c, instance));
  }
  return out;
}

Result<ls::LsConcept> MinimizeEquivalent(const ls::LsConcept& concept_expr,
                                         const rel::Instance& instance,
                                         const MinimizeOptions& options) {
  ls::Extension target = ls::Eval(concept_expr, instance);
  if (target.all) return ls::LsConcept::Top();

  // Candidate pool: single conjuncts whose extension contains the target
  // (only those can appear in an equivalent intersection).
  std::vector<Value> constants = instance.ActiveDomain();
  for (const Value& v : concept_expr.Constants()) constants.push_back(v);
  WHYNOT_ASSIGN_OR_RETURN(
      std::vector<ls::LsConcept> pool_raw,
      ls::EnumerateConjunctConcepts(instance, constants,
                                    options.with_selections
                                        ? ls::Fragment::kFull
                                        : ls::Fragment::kSelectionFree,
                                    options.max_nodes));
  struct Candidate {
    ls::LsConcept concept_expr;
    ls::Extension ext;
  };
  std::vector<Candidate> pool;
  for (ls::LsConcept& c : pool_raw) {
    ls::Extension e = ls::Eval(c, instance);
    if (target.SubsetOf(e)) pool.push_back({std::move(c), std::move(e)});
  }
  // Cheapest-first: sort by expression length.
  std::sort(pool.begin(), pool.end(), [](const Candidate& a,
                                         const Candidate& b) {
    return a.concept_expr.Length() < b.concept_expr.Length();
  });

  // Iterative-deepening subset search on total length.
  size_t nodes = 0;
  std::vector<const Candidate*> best;
  bool found = false;
  size_t best_len = concept_expr.Length() + 1;

  std::vector<const Candidate*> chosen;
  auto search = [&](auto&& self, size_t start, const ls::Extension& current,
                    size_t length) -> Status {
    if (++nodes > options.max_nodes) {
      return Status::ResourceExhausted(
          "minimized-explanation search exceeded max_nodes (the problem is "
          "NP-hard, Proposition 6.3)");
    }
    if (current == target) {
      if (!found || length < best_len) {
        best = chosen;
        best_len = length;
        found = true;
      }
      return Status::OK();
    }
    if (length >= best_len) return Status::OK();
    for (size_t i = start; i < pool.size(); ++i) {
      size_t next_len = length + pool[i].concept_expr.Length();
      if (next_len >= best_len) continue;
      ls::Extension next = current.Intersect(pool[i].ext);
      if (next == current) continue;  // no progress
      chosen.push_back(&pool[i]);
      WHYNOT_RETURN_IF_ERROR(self(self, i + 1, next, next_len));
      chosen.pop_back();
    }
    return Status::OK();
  };
  WHYNOT_RETURN_IF_ERROR(search(search, 0, ls::Extension::All(), 0));
  if (!found) return MakeIrredundant(concept_expr, instance);
  std::vector<ls::Conjunct> conjuncts;
  for (const Candidate* c : best) {
    for (const ls::Conjunct& cj : c->concept_expr.conjuncts()) {
      conjuncts.push_back(cj);
    }
  }
  return ls::LsConcept(std::move(conjuncts));
}

}  // namespace whynot::explain
