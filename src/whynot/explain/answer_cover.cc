#include "whynot/explain/answer_cover.h"

#include <algorithm>

namespace whynot::explain {

// ---- ConceptAnswerCovers --------------------------------------------------

ConceptAnswerCovers::ConceptAnswerCovers(
    onto::BoundOntology* bound, std::vector<std::vector<ValueId>> answers)
    : bound_(bound),
      answers_(std::move(answers)),
      num_words_((answers_.size() + 63) / 64) {
  full_.assign(num_words_, ~uint64_t{0});
  size_t rest = answers_.size() % 64;
  if (num_words_ > 0 && rest != 0) {
    full_.back() = (uint64_t{1} << rest) - 1;
  }
}

CoverView ConceptAnswerCovers::BuildCover(onto::ConceptId c, size_t pos) {
  size_t n = static_cast<size_t>(bound_->NumConcepts());
  if (pos >= chunks_.size()) {
    chunks_.resize(pos + 1);
    built_.resize(pos + 1);
    hybrids_.resize(pos + 1);
  }
  if (built_[pos].empty()) {
    chunks_[pos].resize((n + kChunkConcepts - 1) / kChunkConcepts);
    built_[pos].assign(n, kRepUnbuilt);
    // hybrids_[pos] stays empty until the first hybrid row at this
    // position: throwaway covers objects (per-call locals on tiny
    // searches) must not pay an O(NumConcepts) allocation per position
    // for rows that all freeze flat.
  }
  size_t idx = static_cast<size_t>(c);
  const onto::ExtSet& ext = bound_->Ext(c);
  // Card 0 is the most hybrid-permissive input, so a false here means no
  // cardinality can freeze hybrid at this universe (small |Ans|, or
  // kForceDense) — build straight into the arena slot, the pre-hybrid
  // fast path.
  if (!ChooseHybridRep(0, num_words_)) {
    std::vector<uint64_t>& chunk = chunks_[pos][idx / kChunkConcepts];
    if (chunk.empty()) chunk.assign(kChunkConcepts * num_words_, 0);
    uint64_t* slot = chunk.data() + (idx % kChunkConcepts) * num_words_;
    if (ext.is_all()) {
      std::copy(full_.begin(), full_.end(), slot);
    } else {
      for (size_t a = 0; a < answers_.size(); ++a) {
        if (ext.Contains(answers_[a][pos])) {
          slot[a / 64] |= uint64_t{1} << (a % 64);
        }
      }
    }
    built_[pos][idx] = kRepDense;
    return CoverView{slot, nullptr};
  }
  // Build into the scratch row first: representation choice needs the
  // cardinality, and a hybrid row must not commit an arena chunk.
  scratch_row_.assign(num_words_, 0);
  size_t card = 0;
  if (ext.is_all()) {
    std::copy(full_.begin(), full_.end(), scratch_row_.begin());
    card = answers_.size();
  } else {
    for (size_t a = 0; a < answers_.size(); ++a) {
      if (ext.Contains(answers_[a][pos])) {
        scratch_row_[a / 64] |= uint64_t{1} << (a % 64);
        ++card;
      }
    }
  }
  if (ChooseHybridRep(card, num_words_)) {
    if (hybrids_[pos].empty()) hybrids_[pos].resize(n);
    hybrids_[pos][idx] = std::make_unique<HybridBitmap>(
        HybridBitmap::FromWords(scratch_row_.data(), num_words_));
    built_[pos][idx] = kRepHybrid;
    return CoverView{nullptr, hybrids_[pos][idx].get()};
  }
  std::vector<uint64_t>& chunk = chunks_[pos][idx / kChunkConcepts];
  if (chunk.empty()) chunk.assign(kChunkConcepts * num_words_, 0);
  uint64_t* slot = chunk.data() + (idx % kChunkConcepts) * num_words_;
  std::copy(scratch_row_.begin(), scratch_row_.end(), slot);
  built_[pos][idx] = kRepDense;
  return CoverView{slot, nullptr};
}

std::vector<uint64_t> ConceptAnswerCovers::AndAllExcept(
    const std::vector<onto::ConceptId>& e, size_t skip) {
  std::vector<uint64_t> out = full_;
  for (size_t i = 0; i < e.size(); ++i) {
    if (i == skip) continue;
    AndViewInPlace(out.data(), Cover(e[i], i), out.size());
  }
  return out;
}

bool ConceptAnswerCovers::ProductIntersects(
    const std::vector<onto::ConceptId>& e) {
  if (answers_.empty() || e.empty()) return false;
  // Word-outer AND over the (equally sized) covers: no scratch writes.
  scratch_views_.clear();
  bool any_hybrid = false;
  for (size_t i = 0; i < e.size(); ++i) {
    scratch_views_.push_back(Cover(e[i], i));
    any_hybrid = any_hybrid || scratch_views_.back().hybrid != nullptr;
  }
  if (!any_hybrid) {
    return ProductAny(e.size(), num_words_,
                      [this](size_t i) { return scratch_views_[i].words; });
  }
  return ProductAnyViews(e.size(), num_words_,
                         [this](size_t i) { return scratch_views_[i]; });
}

size_t ConceptAnswerCovers::CountCovered(
    const std::vector<onto::ConceptId>& e) {
  if (answers_.empty() || e.empty()) return 0;
  scratch_views_.clear();
  bool any_hybrid = false;
  for (size_t i = 0; i < e.size(); ++i) {
    scratch_views_.push_back(Cover(e[i], i));
    any_hybrid = any_hybrid || scratch_views_.back().hybrid != nullptr;
  }
  if (!any_hybrid) {
    return ProductCount(e.size(), num_words_,
                        [this](size_t i) { return scratch_views_[i].words; });
  }
  return ProductCountViews(e.size(), num_words_,
                           [this](size_t i) { return scratch_views_[i]; });
}

size_t ConceptAnswerCovers::MemoryBytes() const {
  size_t bytes = sizeof(*this) + full_.capacity() * sizeof(uint64_t) +
                 scratch_row_.capacity() * sizeof(uint64_t) +
                 scratch_views_.capacity() * sizeof(CoverView);
  for (const auto& pos_chunks : chunks_) {
    bytes += pos_chunks.capacity() * sizeof(std::vector<uint64_t>);
    for (const auto& chunk : pos_chunks) {
      bytes += chunk.capacity() * sizeof(uint64_t);
    }
  }
  for (const auto& b : built_) bytes += b.capacity();
  for (const auto& pos_hybrids : hybrids_) {
    bytes += pos_hybrids.capacity() * sizeof(std::unique_ptr<HybridBitmap>);
    for (const auto& h : pos_hybrids) {
      if (h != nullptr) bytes += h->MemoryBytes();
    }
  }
  return bytes;
}

size_t ConceptAnswerCovers::DenseEquivalentBytes() const {
  // Every built row flat: one arena slot (num_words_ words) per row, plus
  // the bookkeeping that exists either way.
  size_t bytes = sizeof(*this) + full_.capacity() * sizeof(uint64_t);
  for (const auto& b : built_) {
    bytes += b.capacity();
    for (uint8_t rep : b) {
      if (rep != kRepUnbuilt) bytes += num_words_ * sizeof(uint64_t);
    }
  }
  return bytes;
}

size_t ConceptAnswerCovers::NumHybridCovers() const {
  size_t n = 0;
  for (const auto& b : built_) {
    for (uint8_t rep : b) n += rep == kRepHybrid ? 1 : 0;
  }
  return n;
}

// ---- LsAnswerCovers -------------------------------------------------------

LsAnswerCovers::LsAnswerCovers(const rel::Instance* instance,
                               const std::vector<Tuple>* answers)
    : answers_(answers),
      pool_(&instance->pool()),
      full_(DenseBitmap::AllSet(static_cast<int32_t>(answers->size()))) {
  size_t arity = answers_->empty() ? 0 : answers_->front().size();
  columns_.resize(arity);
  for (size_t pos = 0; pos < arity; ++pos) {
    columns_[pos].reserve(answers_->size());
    for (const Tuple& ans : *answers_) {
      columns_[pos].push_back(pool_->Lookup(ans[pos]));
    }
  }
}

CoverView LsAnswerCovers::Cover(const ls::Extension& ext, size_t pos) {
  if (ext.all) return CoverView{full_.words().data(), nullptr};
  auto key = std::make_pair(&ext, pos);
  auto it = covers_.find(key);
  if (it == covers_.end()) {
    DenseBitmap cover({}, static_cast<int32_t>(answers_->size()));
    const std::vector<ValueId>& column = columns_[pos];
    size_t card = 0;
    for (size_t a = 0; a < column.size(); ++a) {
      if (ext.ContainsInterned(column[a], (*answers_)[a][pos])) {
        cover.Set(static_cast<ValueId>(a));
        ++card;
      }
    }
    StoredCover stored;
    if (ChooseHybridRep(card, full_.num_words())) {
      stored.hybrid = std::make_unique<HybridBitmap>(HybridBitmap::FromWords(
          cover.words().data(), cover.num_words()));
    } else {
      stored.dense = std::move(cover);
    }
    it = covers_.emplace(key, std::move(stored)).first;
  }
  const StoredCover& stored = it->second;
  if (stored.hybrid != nullptr) return CoverView{nullptr, stored.hybrid.get()};
  return CoverView{stored.dense.words().data(), nullptr};
}

bool LsAnswerCovers::ProductIntersects(
    const std::vector<const ls::Extension*>& exts, size_t swap_pos,
    const ls::Extension* repl) {
  if (answers_->empty() || exts.empty()) return false;
  scratch_views_.clear();
  bool any_hybrid = false;
  for (size_t i = 0; i < exts.size(); ++i) {
    const ls::Extension& ext = i == swap_pos ? *repl : *exts[i];
    scratch_views_.push_back(Cover(ext, i));
    any_hybrid = any_hybrid || scratch_views_.back().hybrid != nullptr;
  }
  if (!any_hybrid) {
    return ConceptAnswerCovers::ProductAny(
        exts.size(), full_.num_words(),
        [this](size_t i) { return scratch_views_[i].words; });
  }
  return ConceptAnswerCovers::ProductAnyViews(
      exts.size(), full_.num_words(),
      [this](size_t i) { return scratch_views_[i]; });
}

size_t LsAnswerCovers::CountCovered(
    const std::vector<const ls::Extension*>& exts, size_t swap_pos,
    const ls::Extension* repl) {
  if (answers_->empty() || exts.empty()) return 0;
  scratch_views_.clear();
  bool any_hybrid = false;
  for (size_t i = 0; i < exts.size(); ++i) {
    const ls::Extension& ext = i == swap_pos ? *repl : *exts[i];
    scratch_views_.push_back(Cover(ext, i));
    any_hybrid = any_hybrid || scratch_views_.back().hybrid != nullptr;
  }
  if (!any_hybrid) {
    return ConceptAnswerCovers::ProductCount(
        exts.size(), full_.num_words(),
        [this](size_t i) { return scratch_views_[i].words; });
  }
  return ConceptAnswerCovers::ProductCountViews(
      exts.size(), full_.num_words(),
      [this](size_t i) { return scratch_views_[i]; });
}

size_t LsAnswerCovers::DenseEquivalentBytes() const {
  size_t bytes = sizeof(*this);
  bytes += full_.MemoryBytes() - sizeof(DenseBitmap);
  for (const auto& col : columns_) bytes += col.capacity() * sizeof(ValueId);
  bytes += columns_.capacity() * sizeof(std::vector<ValueId>);
  bytes += covers_.bucket_count() * sizeof(void*);
  bytes += covers_.size() *
           (sizeof(std::pair<const ls::Extension*, size_t>) +
            sizeof(StoredCover) + full_.num_words() * sizeof(uint64_t));
  return bytes;
}

size_t LsAnswerCovers::MemoryBytes() const {
  size_t bytes = sizeof(*this) + scratch_views_.capacity() * sizeof(CoverView);
  bytes += full_.MemoryBytes() - sizeof(DenseBitmap);
  for (const auto& col : columns_) bytes += col.capacity() * sizeof(ValueId);
  bytes += columns_.capacity() * sizeof(std::vector<ValueId>);
  bytes += covers_.bucket_count() * sizeof(void*);
  for (const auto& [key, stored] : covers_) {
    bytes += sizeof(key) + sizeof(StoredCover) +
             (stored.dense.MemoryBytes() - sizeof(DenseBitmap));
    if (stored.hybrid != nullptr) bytes += stored.hybrid->MemoryBytes();
  }
  return bytes;
}

}  // namespace whynot::explain
