#include "whynot/explain/answer_cover.h"

#include <algorithm>

namespace whynot::explain {

// ---- ConceptAnswerCovers --------------------------------------------------

ConceptAnswerCovers::ConceptAnswerCovers(
    onto::BoundOntology* bound, std::vector<std::vector<ValueId>> answers)
    : bound_(bound),
      answers_(std::move(answers)),
      num_words_((answers_.size() + 63) / 64) {
  full_.assign(num_words_, ~uint64_t{0});
  size_t rest = answers_.size() % 64;
  if (num_words_ > 0 && rest != 0) {
    full_.back() = (uint64_t{1} << rest) - 1;
  }
}

const uint64_t* ConceptAnswerCovers::BuildCover(onto::ConceptId c,
                                                size_t pos) {
  size_t n = static_cast<size_t>(bound_->NumConcepts());
  if (pos >= chunks_.size()) {
    chunks_.resize(pos + 1);
    built_.resize(pos + 1);
  }
  if (built_[pos].empty()) {
    chunks_[pos].resize((n + kChunkConcepts - 1) / kChunkConcepts);
    built_[pos].assign(n, 0);
  }
  size_t idx = static_cast<size_t>(c);
  std::vector<uint64_t>& chunk = chunks_[pos][idx / kChunkConcepts];
  if (chunk.empty()) chunk.assign(kChunkConcepts * num_words_, 0);
  uint64_t* slot = chunk.data() + (idx % kChunkConcepts) * num_words_;
  const onto::ExtSet& ext = bound_->Ext(c);
  if (ext.is_all()) {
    std::copy(full_.begin(), full_.end(), slot);
  } else {
    for (size_t a = 0; a < answers_.size(); ++a) {
      if (ext.Contains(answers_[a][pos])) {
        slot[a / 64] |= uint64_t{1} << (a % 64);
      }
    }
  }
  built_[pos][idx] = 1;
  return slot;
}

std::vector<uint64_t> ConceptAnswerCovers::AndAllExcept(
    const std::vector<onto::ConceptId>& e, size_t skip) {
  std::vector<uint64_t> out = full_;
  for (size_t i = 0; i < e.size(); ++i) {
    if (i == skip) continue;
    const uint64_t* cover = Cover(e[i], i);
    for (size_t w = 0; w < out.size(); ++w) out[w] &= cover[w];
  }
  return out;
}

bool ConceptAnswerCovers::ProductIntersects(
    const std::vector<onto::ConceptId>& e) {
  if (answers_.empty() || e.empty()) return false;
  // Word-outer AND over the (equally sized) covers: no scratch writes.
  scratch_ptrs_.clear();
  for (size_t i = 0; i < e.size(); ++i) {
    scratch_ptrs_.push_back(Cover(e[i], i));
  }
  return ProductAny(e.size(), num_words_,
                    [this](size_t i) { return scratch_ptrs_[i]; });
}

size_t ConceptAnswerCovers::CountCovered(
    const std::vector<onto::ConceptId>& e) {
  if (answers_.empty() || e.empty()) return 0;
  scratch_ptrs_.clear();
  for (size_t i = 0; i < e.size(); ++i) {
    scratch_ptrs_.push_back(Cover(e[i], i));
  }
  return ProductCount(e.size(), num_words_,
                      [this](size_t i) { return scratch_ptrs_[i]; });
}

// ---- LsAnswerCovers -------------------------------------------------------

LsAnswerCovers::LsAnswerCovers(const rel::Instance* instance,
                               const std::vector<Tuple>* answers)
    : answers_(answers),
      pool_(&instance->pool()),
      full_(DenseBitmap::AllSet(static_cast<int32_t>(answers->size()))) {
  size_t arity = answers_->empty() ? 0 : answers_->front().size();
  columns_.resize(arity);
  for (size_t pos = 0; pos < arity; ++pos) {
    columns_[pos].reserve(answers_->size());
    for (const Tuple& ans : *answers_) {
      columns_[pos].push_back(pool_->Lookup(ans[pos]));
    }
  }
}

const DenseBitmap& LsAnswerCovers::Cover(const ls::Extension& ext,
                                         size_t pos) {
  if (ext.all) return full_;
  auto key = std::make_pair(&ext, pos);
  auto it = covers_.find(key);
  if (it != covers_.end()) return it->second;
  DenseBitmap cover({}, static_cast<int32_t>(answers_->size()));
  const std::vector<ValueId>& column = columns_[pos];
  for (size_t a = 0; a < column.size(); ++a) {
    if (ext.ContainsInterned(column[a], (*answers_)[a][pos])) {
      cover.Set(static_cast<ValueId>(a));
    }
  }
  return covers_.emplace(key, std::move(cover)).first->second;
}

bool LsAnswerCovers::ProductIntersects(
    const std::vector<const ls::Extension*>& exts, size_t swap_pos,
    const ls::Extension* repl) {
  if (answers_->empty() || exts.empty()) return false;
  scratch_ptrs_.clear();
  for (size_t i = 0; i < exts.size(); ++i) {
    const ls::Extension& ext = i == swap_pos ? *repl : *exts[i];
    scratch_ptrs_.push_back(Cover(ext, i).words().data());
  }
  return ConceptAnswerCovers::ProductAny(
      exts.size(), full_.num_words(),
      [this](size_t i) { return scratch_ptrs_[i]; });
}

size_t LsAnswerCovers::CountCovered(
    const std::vector<const ls::Extension*>& exts, size_t swap_pos,
    const ls::Extension* repl) {
  if (answers_->empty() || exts.empty()) return 0;
  scratch_ptrs_.clear();
  for (size_t i = 0; i < exts.size(); ++i) {
    const ls::Extension& ext = i == swap_pos ? *repl : *exts[i];
    scratch_ptrs_.push_back(Cover(ext, i).words().data());
  }
  return ConceptAnswerCovers::ProductCount(
      exts.size(), full_.num_words(),
      [this](size_t i) { return scratch_ptrs_[i]; });
}

}  // namespace whynot::explain
