#ifndef WHYNOT_EXPLAIN_WHYNOT_INSTANCE_H_
#define WHYNOT_EXPLAIN_WHYNOT_INSTANCE_H_

#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/relational/cq.h"
#include "whynot/relational/instance.h"

namespace whynot::explain {

/// A why-not instance (S, I, q, Ans, a) (Definition 5.1): a schema, an
/// instance over it, an m-ary query, the precomputed answer set Ans = q(I),
/// and a missing tuple a ∉ Ans.
///
/// Per the paper, Ans is part of the input (the query has already been
/// evaluated when the user asks "why not?"), and the query itself is not
/// consulted by the explanation algorithms.
struct WhyNotInstance {
  const rel::Instance* instance = nullptr;
  rel::UnionQuery query;           // informational; may be empty
  std::vector<Tuple> answers;      // Ans = q(I), sorted
  Tuple missing;                   // a, with a ∉ Ans

  size_t arity() const { return missing.size(); }
  const rel::Schema& schema() const { return instance->schema(); }

  /// "why-not (Amsterdam, New York)? Ans has 4 tuples".
  std::string ToString() const;
};

/// Builds a why-not instance by evaluating `query` over `instance`.
/// Fails if `missing` is in the answer set or arities mismatch.
Result<WhyNotInstance> MakeWhyNotInstance(const rel::Instance* instance,
                                          rel::UnionQuery query,
                                          Tuple missing);

/// Builds a why-not instance from a precomputed answer set (for external
/// Ans or tests). Fails if `missing` ∈ `answers` or arities mismatch.
Result<WhyNotInstance> MakeWhyNotInstanceFromAnswers(
    const rel::Instance* instance, std::vector<Tuple> answers, Tuple missing);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_WHYNOT_INSTANCE_H_
