#include "whynot/explain/existence.h"

#include <set>

namespace whynot::explain {

namespace {

/// Backtracking state: at position i with a set of still-alive answers
/// (answers not yet excluded at any earlier position). An explanation
/// exists below this state iff every alive answer can be excluded at some
/// remaining position.
class Search {
 public:
  Search(onto::BoundOntology* bound, const WhyNotInstance& wni,
         const ExistenceOptions& options)
      : bound_(bound), options_(options) {
    m_ = wni.arity();
    candidates_.resize(m_);
    for (size_t i = 0; i < m_; ++i) {
      ValueId id = bound->pool().Intern(wni.missing[i]);
      candidates_[i] = bound->ConceptsContaining(id);
    }
    answers_ = InternAnswers(bound, wni);
    chosen_.resize(m_);
  }

  Result<bool> Run(Explanation* witness) {
    for (const auto& list : candidates_) {
      if (list.empty()) return false;
    }
    std::vector<uint32_t> alive(answers_.size());
    for (uint32_t i = 0; i < answers_.size(); ++i) alive[i] = i;
    bool found = false;
    WHYNOT_RETURN_IF_ERROR(Descend(0, alive, &found));
    if (found && witness != nullptr) *witness = chosen_;
    return found;
  }

 private:
  Status Descend(size_t pos, const std::vector<uint32_t>& alive, bool* found) {
    if (*found) return Status::OK();
    if (++nodes_ > options_.max_nodes) {
      return Status::ResourceExhausted(
          "existence search exceeded max_nodes (the problem is NP-complete, "
          "Theorem 5.1.2)");
    }
    if (pos == m_) {
      if (alive.empty()) *found = true;
      return Status::OK();
    }
    // Memoize defeated (pos, alive) states.
    auto key = std::make_pair(pos, alive);
    if (defeated_.count(key) > 0) return Status::OK();

    for (onto::ConceptId c : candidates_[pos]) {
      std::vector<uint32_t> next;
      for (uint32_t a : alive) {
        if (bound_->Ext(c).Contains(answers_[a][pos])) next.push_back(a);
      }
      chosen_[pos] = c;
      WHYNOT_RETURN_IF_ERROR(Descend(pos + 1, next, found));
      if (*found) return Status::OK();
    }
    defeated_.emplace(std::move(key));
    return Status::OK();
  }

  onto::BoundOntology* bound_;
  ExistenceOptions options_;
  size_t m_ = 0;
  std::vector<std::vector<onto::ConceptId>> candidates_;
  std::vector<std::vector<ValueId>> answers_;
  Explanation chosen_;
  std::set<std::pair<size_t, std::vector<uint32_t>>> defeated_;
  size_t nodes_ = 0;
};

}  // namespace

Result<bool> ExistsExplanation(onto::BoundOntology* bound,
                               const WhyNotInstance& wni,
                               Explanation* witness,
                               const ExistenceOptions& options) {
  Search search(bound, wni, options);
  return search.Run(witness);
}

}  // namespace whynot::explain
