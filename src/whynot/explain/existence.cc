#include "whynot/explain/existence.h"

#include <algorithm>
#include <optional>
#include <set>

#include "whynot/explain/search_core.h"

namespace whynot::explain {

namespace {

/// Minimum AND work (candidates × words) at a node before the narrowing
/// sweep is worth sharding across the pool.
constexpr size_t kMinParallelAndWords = 4096;

/// Backtracking state: at position i with a bitmap of still-alive answers
/// (answers not yet excluded at any earlier position). An explanation
/// exists below this state iff every alive answer can be excluded at some
/// remaining position. Narrowing the alive set by a candidate concept is
/// one word-parallel AND with its answer-cover bitmap.
class Search {
 public:
  Search(onto::BoundOntology* bound, const WhyNotInstance& wni,
         const ExistenceOptions& options, ConceptAnswerCovers* covers,
         LatticeHandle* lattice)
      : options_(options), covers_(covers) {
    if (covers_ == nullptr) {
      local_covers_.emplace(bound, InternAnswers(bound, wni));
      covers_ = &*local_covers_;
    }
    m_ = wni.arity();
    candidates_.resize(m_);
    for (size_t i = 0; i < m_; ++i) {
      ValueId id = bound->pool().Intern(wni.missing[i]);
      candidates_[i] = bound->ConceptsContaining(id);
    }
    if (options.strategy == SearchStrategy::kLattice) {
      // Keep only ≼-minimal candidates per position: a minimal concept's
      // cover narrows the alive set at least as much as anything above
      // it, so an explanation exists iff one over minimal concepts does.
      // The restriction preserves per-position candidate order, so the
      // traversal stays deterministic — but the witness can differ from
      // the unrestricted backtracker's.
      std::unique_ptr<LatticeHandle> local_lattice;
      LatticeHandle* h = lattice;
      if (h == nullptr) {
        local_lattice = std::make_unique<LatticeHandle>(bound);
        h = local_lattice.get();
      }
      const ConceptLattice& lat = h->Get();
      for (size_t i = 0; i < m_; ++i) {
        candidates_[i] = lat.MinimalOf(candidates_[i]);
      }
    }
    chosen_.resize(m_);
  }

  Result<bool> Run(Explanation* witness) {
    for (const auto& list : candidates_) {
      if (list.empty()) {
        exec::FillCertificate(options_.cert, exec::Stop{}, exec::Progress{},
                              0);
        return false;
      }
    }
    // Parallel configuration: per-position cover tables are resolved
    // lazily on first descent into a position (an easy instance that
    // finds its witness in a few nodes should not pay for covers the
    // search never probes). The search itself (descent order,
    // memoization, node budget) is untouched — only the per-candidate
    // ANDs at a node run in parallel — so the traversal, the witness,
    // and the node counts are identical for every thread count.
    if (par::NumThreads() > 1) cover_table_.resize(m_);
    bool found = false;
    WHYNOT_RETURN_IF_ERROR(Descend(0, covers_->full_words(), &found));
    if (found && witness != nullptr) *witness = chosen_;
    if (options_.cert != nullptr) {
      // A stop and a found witness are mutually exclusive (descent
      // unwinds on either), so a witness is always definitive.
      exec::Stop stop = halted_.value_or(exec::Stop{});
      exec::Progress progress;
      progress.tested = halted_.has_value() ? halted_->at : nodes_;
      exec::FillCertificate(options_.cert, stop, progress, found ? 1 : 0);
    }
    return found;
  }

 private:
  static bool Any(const std::vector<uint64_t>& words) {
    for (uint64_t w : words) {
      if (w != 0) return true;
    }
    return false;
  }

  Status Descend(size_t pos, const std::vector<uint64_t>& alive,
                 bool* found) {
    if (*found || halted_.has_value()) return Status::OK();
    size_t probe = nodes_;  // 0-based node ordinal, thread-invariant
    if (++nodes_ > options_.max_nodes) {
      if (options_.cert == nullptr) {
        return Status::ResourceExhausted(
            "existence search exceeded max_nodes (the problem is "
            "NP-complete, Theorem 5.1.2)");
      }
      halted_ = exec::Stop{exec::StopReason::kBudget, options_.max_nodes};
      return Status::OK();
    }
    if (std::optional<exec::Stop> s = exec::Check(options_.exec, probe)) {
      if (options_.cert == nullptr) {
        return exec::StopStatus(*s, "existence search");
      }
      halted_ = *s;  // unwind the whole descent via the guard above
      return Status::OK();
    }
    if (pos == m_) {
      if (!Any(alive)) *found = true;
      return Status::OK();
    }
    // Memoize defeated (pos, alive) states.
    auto key = std::make_pair(pos, alive);
    if (defeated_.count(key) > 0) return Status::OK();

    const std::vector<onto::ConceptId>& cands = candidates_[pos];
    size_t nwords = alive.size();
    if (!cover_table_.empty() &&
        cands.size() * nwords >= kMinParallelAndWords) {
      // Shard the narrowing ANDs (the node's hot loop) over the candidate
      // list; recursion then consumes the per-candidate alive sets in the
      // exact serial order.
      if (cover_table_[pos].empty()) {
        // First descent into this position: resolve its covers serially
        // (Cover builds lazily; the sharded loop below must be read-only).
        cover_table_[pos] = CoverTable::ResolveList(covers_, cands, pos);
      }
      std::vector<std::vector<uint64_t>> nexts(cands.size());
      const std::vector<CoverView>& table = cover_table_[pos];
      size_t grain = std::max<size_t>(1, 2048 / std::max<size_t>(1, nwords));
      par::ParallelFor(cands.size(), grain, [&](size_t begin, size_t end) {
        for (size_t c = begin; c < end; ++c) {
          nexts[c].resize(nwords);
          const CoverView& cover = table[c];
          if (cover.hybrid != nullptr) {
            cover.hybrid->AndWith(alive.data(), nexts[c].data(), nwords);
          } else {
            for (size_t w = 0; w < nwords; ++w) {
              nexts[c][w] = alive[w] & cover.words[w];
            }
          }
        }
      });
      for (size_t c = 0; c < cands.size(); ++c) {
        chosen_[pos] = cands[c];
        WHYNOT_RETURN_IF_ERROR(Descend(pos + 1, nexts[c], found));
        // Release this candidate's alive set before recursing into the
        // next: otherwise the whole level's buffers stay live under the
        // entire subtree (O(|candidates| × words) instead of one level).
        std::vector<uint64_t>().swap(nexts[c]);
        if (*found || halted_.has_value()) return Status::OK();
      }
    } else {
      std::vector<uint64_t> next(nwords);
      for (onto::ConceptId c : cands) {
        CoverView cover = covers_->Cover(c, pos);
        if (cover.hybrid != nullptr) {
          cover.hybrid->AndWith(alive.data(), next.data(), nwords);
        } else {
          for (size_t w = 0; w < nwords; ++w) next[w] = alive[w] & cover.words[w];
        }
        chosen_[pos] = c;
        WHYNOT_RETURN_IF_ERROR(Descend(pos + 1, next, found));
        if (*found || halted_.has_value()) return Status::OK();
      }
    }
    defeated_.emplace(std::move(key));
    return Status::OK();
  }

  ExistenceOptions options_;
  size_t m_ = 0;
  std::vector<std::vector<onto::ConceptId>> candidates_;
  ConceptAnswerCovers* covers_;
  std::optional<ConceptAnswerCovers> local_covers_;
  // Pre-resolved cover views per position (parallel runs only; empty
  // in the serial configuration, which keeps the lazy one-at-a-time path).
  std::vector<std::vector<CoverView>> cover_table_;
  Explanation chosen_;
  std::set<std::pair<size_t, std::vector<uint64_t>>> defeated_;
  size_t nodes_ = 0;
  std::optional<exec::Stop> halted_;
};

}  // namespace

Result<bool> ExistsExplanation(onto::BoundOntology* bound,
                               const WhyNotInstance& wni,
                               Explanation* witness,
                               const ExistenceOptions& options,
                               ConceptAnswerCovers* covers,
                               LatticeHandle* lattice) {
  Search search(bound, wni, options, covers, lattice);
  return search.Run(witness);
}

}  // namespace whynot::explain
