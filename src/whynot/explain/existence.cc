#include "whynot/explain/existence.h"

#include <set>

namespace whynot::explain {

namespace {

/// Backtracking state: at position i with a bitmap of still-alive answers
/// (answers not yet excluded at any earlier position). An explanation
/// exists below this state iff every alive answer can be excluded at some
/// remaining position. Narrowing the alive set by a candidate concept is
/// one word-parallel AND with its answer-cover bitmap.
class Search {
 public:
  Search(onto::BoundOntology* bound, const WhyNotInstance& wni,
         const ExistenceOptions& options)
      : options_(options), covers_(bound, InternAnswers(bound, wni)) {
    m_ = wni.arity();
    candidates_.resize(m_);
    for (size_t i = 0; i < m_; ++i) {
      ValueId id = bound->pool().Intern(wni.missing[i]);
      candidates_[i] = bound->ConceptsContaining(id);
    }
    chosen_.resize(m_);
  }

  Result<bool> Run(Explanation* witness) {
    for (const auto& list : candidates_) {
      if (list.empty()) return false;
    }
    bool found = false;
    WHYNOT_RETURN_IF_ERROR(Descend(0, covers_.full_words(), &found));
    if (found && witness != nullptr) *witness = chosen_;
    return found;
  }

 private:
  static bool Any(const std::vector<uint64_t>& words) {
    for (uint64_t w : words) {
      if (w != 0) return true;
    }
    return false;
  }

  Status Descend(size_t pos, const std::vector<uint64_t>& alive,
                 bool* found) {
    if (*found) return Status::OK();
    if (++nodes_ > options_.max_nodes) {
      return Status::ResourceExhausted(
          "existence search exceeded max_nodes (the problem is NP-complete, "
          "Theorem 5.1.2)");
    }
    if (pos == m_) {
      if (!Any(alive)) *found = true;
      return Status::OK();
    }
    // Memoize defeated (pos, alive) states.
    auto key = std::make_pair(pos, alive);
    if (defeated_.count(key) > 0) return Status::OK();

    std::vector<uint64_t> next(alive.size());
    for (onto::ConceptId c : candidates_[pos]) {
      const uint64_t* cover = covers_.Cover(c, pos);
      for (size_t w = 0; w < alive.size(); ++w) next[w] = alive[w] & cover[w];
      chosen_[pos] = c;
      WHYNOT_RETURN_IF_ERROR(Descend(pos + 1, next, found));
      if (*found) return Status::OK();
    }
    defeated_.emplace(std::move(key));
    return Status::OK();
  }

  ExistenceOptions options_;
  size_t m_ = 0;
  std::vector<std::vector<onto::ConceptId>> candidates_;
  ConceptAnswerCovers covers_;
  Explanation chosen_;
  std::set<std::pair<size_t, std::vector<uint64_t>>> defeated_;
  size_t nodes_ = 0;
};

}  // namespace

Result<bool> ExistsExplanation(onto::BoundOntology* bound,
                               const WhyNotInstance& wni,
                               Explanation* witness,
                               const ExistenceOptions& options) {
  Search search(bound, wni, options);
  return search.Run(witness);
}

}  // namespace whynot::explain
