#ifndef WHYNOT_EXPLAIN_LATTICE_H_
#define WHYNOT_EXPLAIN_LATTICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "whynot/explain/candidate_space.h"
#include "whynot/ontology/ontology.h"
#include "whynot/ontology/preorder.h"

namespace whynot::explain {

/// Which enumeration path serves a candidate-product search.
enum class SearchStrategy {
  /// The serial-order odometer while the product fits the candidate
  /// budget; the dominance-pruned frontier (LatticeFilterSpace) when it
  /// does not *and* the binding is consistent (Definition 3.1) — the only
  /// regime where the pruned walk is provably bit-identical to the
  /// odometer. Over-budget inconsistent bindings keep the odometer's
  /// ResourceExhausted report.
  kAuto,
  /// Always the full-product odometer (ParallelFilterSpace).
  kOdometer,
  /// Always the dominance-pruned frontier. On an inconsistent binding
  /// maximality is judged under the effective order (⊑ ∩ ext-inclusion),
  /// which can differ from the odometer's pure-⊑ antichain there.
  kLattice,
};

/// Counters of one dominance-pruned frontier enumeration
/// (LatticeFilterSpace). `products_enumerated` counts candidates whose
/// avoidance/containment predicate actually ran; `products_skipped` is the
/// rest of the raw product (SIZE_MAX when the product overflows a word);
/// `downset_hits` counts generated candidates discarded because a kept
/// survivor's downset already covers them; `waves` is the number of
/// frontier generations walked.
struct PruneStats {
  size_t products_enumerated = 0;
  size_t products_skipped = 0;
  size_t downset_hits = 0;
  size_t waves = 0;
};

/// Accumulates one enumeration's counters into a running total
/// (products_skipped saturates at SIZE_MAX, its overflow sentinel).
inline void AccumulatePruneStats(PruneStats* into, const PruneStats& from) {
  into->products_enumerated += from.products_enumerated;
  into->downset_hits += from.downset_hits;
  into->waves += from.waves;
  into->products_skipped =
      from.products_skipped == SIZE_MAX ||
              SIZE_MAX - into->products_skipped < from.products_skipped
          ? SIZE_MAX
          : into->products_skipped + from.products_skipped;
}

/// The subsumption lattice of one BoundOntology, in concept-id space: the
/// reflexive-transitive ⊑ rows intersected with extension inclusion (the
/// *effective* order ≼), plus its strict upset/downset row bitmaps and the
/// topological rank of every concept.
///
/// Why ≼ and not plain ⊑: candidate lists C(a) = ConceptsContaining(a) are
/// upward closed under ≼ *unconditionally* (ext(C) ⊆ ext(D) preserves
/// membership of a), and both search predicates — "product avoids Ans" and
/// the why dual's "product ⊆ Ans" — are downward closed along ≼ because
/// they only read the extension product. Under Definition 3.1 consistency
/// ⊑ implies ext-inclusion, so ≼ coincides with ⊑ (`consistent()` reports
/// exactly that, as a free byproduct of the build) and frontier results
/// match the pure-⊑ odometer bit for bit.
///
/// The build is two row-parallel O(n²) passes over warm extensions
/// (subsumption probes gate the word-parallel SubsetOf tests), which is
/// why sessions hold the lattice behind a lazy LatticeHandle instead of
/// paying for it at Bind time.
class ConceptLattice {
 public:
  explicit ConceptLattice(onto::BoundOntology* bound);

  int32_t num_concepts() const { return n_; }

  /// Definition 3.1 consistency of the binding: every ontology pair
  /// c ⊑ d satisfied ext(c) ⊆ ext(d) during the build.
  bool consistent() const { return consistent_; }

  /// a ≼ b: a ⊑ b and ext(a) ⊆ ext(b). Reflexive.
  bool Leq(onto::ConceptId a, onto::ConceptId b) const {
    return leq_.Get(a, b);
  }
  /// a ≺ b: a ≼ b and not b ≼ a.
  bool StrictlyBelow(onto::ConceptId a, onto::ConceptId b) const {
    return strict_down_.Get(b, a);
  }

  /// Row bitmap of {d : d ≺ c} — the strict downset of c.
  const uint64_t* StrictDownWords(onto::ConceptId c) const {
    return strict_down_.RowWords(c);
  }
  /// Row bitmap of {d : c ≺ d} — the strict upset of c.
  const uint64_t* StrictUpWords(onto::ConceptId c) const {
    return strict_up_.RowWords(c);
  }
  size_t words_per_row() const { return leq_.words_per_row(); }

  /// Longest strict ≼-chain above c (0 for ≼-maximal concepts);
  /// equivalent concepts share a rank.
  int32_t rank(onto::ConceptId c) const {
    return ranks_[static_cast<size_t>(c)];
  }
  /// max rank + 1 — the number of frontier levels of the whole lattice
  /// (0 for an empty ontology). Surfaced in benchmark context.
  size_t depth() const { return depth_; }

  /// The ≼-maximal elements of `list` (the frontier tops of one query
  /// position), as indices into `list`, in list order.
  std::vector<uint32_t> MaximalOf(
      const std::vector<onto::ConceptId>& list) const;
  /// The ≼-minimal elements of `list`. Restricting a candidate list to
  /// them preserves the *existence* boolean unconditionally: any
  /// explanation is ≽ one built from list-minimal concepts, whose
  /// extension product is componentwise smaller and therefore still
  /// avoids Ans.
  std::vector<onto::ConceptId> MinimalOf(
      const std::vector<onto::ConceptId>& list) const;

 private:
  int32_t n_;
  bool consistent_ = true;
  size_t depth_ = 0;
  onto::BoolMatrix leq_;          // leq_(a, b) = a ≼ b
  onto::BoolMatrix strict_up_;    // strict_up_(a, b) = a ≺ b
  onto::BoolMatrix strict_down_;  // strict_down_(a, b) = b ≺ a
  std::vector<int32_t> ranks_;
};

/// Lazily-built ConceptLattice shared across searches over one binding.
/// An ExplainSession keeps one per warm-up so repeated over-budget
/// requests reuse the matrices; one-shot entry points build a local
/// handle only when a search actually escalates to the frontier path —
/// in-budget traffic never pays for the lattice.
class LatticeHandle {
 public:
  explicit LatticeHandle(onto::BoundOntology* bound) : bound_(bound) {}

  /// Builds on first call (warms the bound extensions), then caches.
  const ConceptLattice& Get() {
    if (lattice_ == nullptr) {
      lattice_ = std::make_unique<ConceptLattice>(bound_);
    }
    return *lattice_;
  }

 private:
  onto::BoundOntology* bound_;
  std::unique_ptr<ConceptLattice> lattice_;
};

/// Resolution of a SearchStrategy for one concrete candidate space.
struct LatticeChoice {
  bool use_lattice = false;
  const ConceptLattice* lattice = nullptr;  // set iff use_lattice
};

/// Applies the strategy semantics documented on SearchStrategy. `handle`
/// may be null; when the choice needs a lattice and no handle was passed,
/// one is materialized into `*local` (which must outlive the returned
/// pointer).
LatticeChoice ChooseStrategy(SearchStrategy strategy,
                             const CandidateSpace& space,
                             size_t max_candidates,
                             onto::BoundOntology* bound,
                             LatticeHandle* handle,
                             std::unique_ptr<LatticeHandle>* local);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_LATTICE_H_
