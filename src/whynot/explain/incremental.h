#ifndef WHYNOT_EXPLAIN_INCREMENTAL_H_
#define WHYNOT_EXPLAIN_INCREMENTAL_H_

#include "whynot/common/exec_control.h"
#include "whynot/common/status.h"
#include "whynot/concepts/concept_cache.h"
#include "whynot/concepts/lub.h"
#include "whynot/explain/explanation.h"

namespace whynot::explain {

struct IncrementalOptions {
  /// false: Algorithm 2 with selection-free lub (Lemma 5.1, Theorem 5.3 —
  /// PTIME). true: INCREMENTAL SEARCH WITH SELECTIONS using lubσ
  /// (Lemma 5.2, Theorem 5.4 — EXPTIME, PTIME for bounded schema arity).
  bool with_selections = false;

  /// After the lub-generalization sweep, additionally try generalizing
  /// each position to ⊤. The paper's pseudocode only generalizes over
  /// adom(I); when a column covers the whole active domain, ⊤ is still a
  /// strictly more general concept (its extension is all of Const), so
  /// this extra step is required for the output to be most general with
  /// respect to the full language LS, which contains ⊤. Disable to follow
  /// the paper's pseudocode to the letter.
  bool generalize_to_top = true;

  ls::LubOptions lub;

  /// Optional execution control, observed once per generalization
  /// candidate (position, constant) in the fixed sweep order — the search
  /// is serial, so probe ordinals are trivially deterministic.
  const exec::ExecContext* exec = nullptr;

  /// When non-null, a stop returns OK with the tuple generalized so far —
  /// always a sound explanation (the nominal-pinned tuple is one and every
  /// accepted swap preserves that), but possibly not most general
  /// (Quality::kHeuristic) — and the certificate records the cut. When
  /// null, stops return the matching error status.
  exec::Certificate* cert = nullptr;
};

/// Algorithm 2 (INCREMENTAL SEARCH): computes one most-general explanation
/// for the why-not instance w.r.t. the instance-derived ontology OI
/// (Section 5.2). Starts from the tuple of lub({a_j}) (the nominal-pinned,
/// most specific explanation, which always exists) and greedily grows each
/// position's support set by active-domain constants while the tuple
/// remains an explanation.
Result<LsExplanation> IncrementalSearch(const WhyNotInstance& wni,
                                        const IncrementalOptions& options = {});

/// Same, reusing a caller-provided lub context (amortizes the canonical-box
/// construction across repeated calls; used by benchmarks). `cache` /
/// `covers`, when non-null, are a prepared ExplainSession's warm extension
/// memo and answer-cover table over (wni.instance, wni.answers);
/// `concept_cache` the shared lub/eval cache the greedy sweep runs through
/// (the search is serial, so entries publish once on return — a session
/// cache carries them to later requests). Per-call locals are created for
/// any null parameter, with bit-identical results.
///
/// `session_overlay`, when non-null, must be an overlay bound to exactly
/// (concept_cache, options.with_selections, lub_context, cache); the
/// search then probes through it instead of a per-call overlay, so its
/// private maps stay warm across a session's requests (repeat probes
/// become raw local-map hits instead of published-tier lookups that
/// re-copy each concept into a fresh overlay). Results are bit-identical
/// either way — only timing and served-from counters move.
Result<LsExplanation> IncrementalSearch(
    const WhyNotInstance& wni, const IncrementalOptions& options,
    ls::LubContext* lub_context, ls::EvalCache* cache = nullptr,
    LsAnswerCovers* covers = nullptr,
    ls::ConceptCache* concept_cache = nullptr,
    ls::ConceptCacheOverlay* session_overlay = nullptr);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_INCREMENTAL_H_
