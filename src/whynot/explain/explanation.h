#ifndef WHYNOT_EXPLAIN_EXPLANATION_H_
#define WHYNOT_EXPLAIN_EXPLANATION_H_

#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/concepts/ls_concept.h"
#include "whynot/concepts/ls_eval.h"
#include "whynot/explain/answer_cover.h"
#include "whynot/explain/whynot_instance.h"
#include "whynot/ontology/ontology.h"

namespace whynot::explain {

/// An explanation over a finite S-ontology: a tuple of concepts, one per
/// position of the missing tuple (Definition 3.2).
using Explanation = std::vector<onto::ConceptId>;

/// An explanation whose concepts are LS expressions (used with the derived
/// ontologies OI / OS of Section 4.2, which are not materialized).
using LsExplanation = std::vector<ls::LsConcept>;

/// Answers interned against a BoundOntology's value pool, for fast product
/// intersection tests.
std::vector<std::vector<ValueId>> InternAnswers(onto::BoundOntology* bound,
                                                const WhyNotInstance& wni);

/// True iff (ext(C1) × ... × ext(Cm)) ∩ Ans ≠ ∅ for the candidate tuple of
/// concepts (the second condition of Definition 3.2, negated).
bool ProductIntersectsAnswers(
    onto::BoundOntology* bound, const std::vector<onto::ConceptId>& concepts,
    const std::vector<std::vector<ValueId>>& interned_answers);

/// Checks Definition 3.2: every aᵢ ∈ ext(Cᵢ, I), and the extension product
/// avoids Ans.
Result<bool> IsExplanation(onto::BoundOntology* bound,
                           const WhyNotInstance& wni, const Explanation& e);

/// E ≤_O E' (Definition 3.3): pointwise subsumption.
bool LessGeneral(const onto::BoundOntology& bound, const Explanation& e,
                 const Explanation& other);

/// E <_O E': E ≤_O E' and E' ≰_O E.
bool StrictlyLessGeneral(const onto::BoundOntology& bound,
                         const Explanation& e, const Explanation& other);

/// "(EU-City, N.A.-City)".
std::string ExplanationToString(const onto::BoundOntology& bound,
                                const Explanation& e);

// --- LS-expression explanations (w.r.t. OI) -------------------------------

/// Definition 3.2 against the derived ontology OI: extensions are ⟦·⟧ᴵ.
bool IsLsExplanation(const WhyNotInstance& wni, const LsExplanation& e);

/// As above, with per-conjunct extension memoization (`cache` must be
/// bound to wni.instance). The greedy searches call this once per
/// candidate probe; the cache makes each call an intersection of already-
/// evaluated conjuncts instead of fresh relation scans.
bool IsLsExplanation(const WhyNotInstance& wni, const LsExplanation& e,
                     ls::EvalCache* cache);

/// The fully hoisted form: `covers` must be an LsAnswerCovers over
/// (wni.instance, wni.answers) fed by the same `cache`. The answer-product
/// condition is then one word-parallel AND over cached cover bitmaps.
bool IsLsExplanation(const WhyNotInstance& wni, const LsExplanation& e,
                     ls::EvalCache* cache, LsAnswerCovers* covers);

/// Pointwise ⊑_I.
bool LessGeneralI(const rel::Instance& instance, const LsExplanation& e,
                  const LsExplanation& other);

bool StrictlyLessGeneralI(const rel::Instance& instance,
                          const LsExplanation& e, const LsExplanation& other);

std::string LsExplanationToString(const rel::Schema& schema,
                                  const LsExplanation& e);

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_EXPLANATION_H_
