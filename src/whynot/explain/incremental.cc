#include "whynot/explain/incremental.h"

#include <algorithm>
#include <optional>

namespace whynot::explain {

Result<LsExplanation> IncrementalSearch(const WhyNotInstance& wni,
                                        const IncrementalOptions& options,
                                        ls::LubContext* lub_context,
                                        ls::EvalCache* cache,
                                        LsAnswerCovers* covers,
                                        ls::ConceptCache* concept_cache,
                                        ls::ConceptCacheOverlay* session_overlay) {
  size_t m = wni.arity();
  std::optional<ls::EvalCache> local_cache;
  if (cache == nullptr) {
    local_cache.emplace(wni.instance);
    cache = &*local_cache;
  }
  std::optional<LsAnswerCovers> local_covers;
  if (covers == nullptr) {
    local_covers.emplace(wni.instance, &wni.answers);
    covers = &*local_covers;
  }
  std::optional<ls::ConceptCache> local_cc;
  if (concept_cache == nullptr) {
    local_cc.emplace(wni.instance);
    concept_cache = &*local_cc;
  }
  const ValuePool& pool = wni.instance->pool();

  // The whole greedy sweep is serial, so one overlay over the shared cache
  // suffices; published on every return path (including certified stops)
  // so a session cache carries the lubs to later requests. A session's
  // persistent overlay (warm private maps) is used when it matches this
  // search's flavor.
  std::optional<ls::ConceptCacheOverlay> local_overlay;
  if (session_overlay == nullptr ||
      session_overlay->with_selections() != options.with_selections) {
    local_overlay.emplace(concept_cache, options.with_selections, lub_context,
                          cache);
  }
  ls::ConceptCacheOverlay& overlay =
      local_overlay.has_value() ? *local_overlay : *session_overlay;
  ls::ScopedPublish publish(concept_cache, &overlay);

  // Lines 2-3: support sets X_j = {a_j}; first candidate explanation
  // E = (lub(X_1), ..., lub(X_m)). Extensions are held as pointers to
  // overlay entries (stable for the overlay's lifetime) so the cover
  // bitmaps cache by identity.
  std::vector<std::vector<Value>> support(m);
  LsExplanation e(m);
  std::vector<const ls::Extension*> exts(m);
  std::vector<ValueId> missing_ids(m);
  for (size_t j = 0; j < m; ++j) {
    support[j] = {wni.missing[j]};
    WHYNOT_ASSIGN_OR_RETURN(const ls::ConceptCache::Entry* entry,
                            overlay.LubAndEval(support[j]));
    e[j] = entry->concept;
    exts[j] = entry->ext.get();
    missing_ids[j] = pool.Lookup(wni.missing[j]);
  }
  bool initial_ok = true;
  for (size_t j = 0; j < m && initial_ok; ++j) {
    initial_ok = exts[j]->ContainsInterned(missing_ids[j], wni.missing[j]);
  }
  if (initial_ok) initial_ok = !covers->ProductIntersects(exts);
  if (!initial_ok) {
    return Status::Internal(
        "initial nominal-pinned tuple is not an explanation; this "
        "contradicts Section 5.2 (the trivial explanation always exists)");
  }

  // Execution control: one probe per generalization candidate, counted in
  // the fixed sweep order (including skipped candidates, so ordinals
  // depend only on the instance). A stop leaves `e` a sound explanation —
  // just not necessarily most general.
  size_t probes = 0;
  std::optional<exec::Stop> halted;
  auto check = [&]() -> Status {
    size_t probe = probes++;
    if (std::optional<exec::Stop> s = exec::Check(options.exec, probe)) {
      if (options.cert == nullptr) {
        return exec::StopStatus(*s, "incremental search");
      }
      halted = *s;
    }
    return Status::OK();
  };

  // Lines 4-11: for every position and every uncovered active-domain
  // constant, try the lub-generalized tuple; keep it if it remains an
  // explanation. The probe is one word-parallel AND over the cover
  // bitmaps with position j swapped to the candidate.
  const std::vector<Value>& adom = wni.instance->ActiveDomain();
  const std::vector<ValueId>& adom_ids = wni.instance->ActiveDomainIds();
  for (size_t j = 0; j < m && !halted.has_value(); ++j) {
    for (size_t bi = 0; bi < adom.size(); ++bi) {
      WHYNOT_RETURN_IF_ERROR(check());
      if (halted.has_value()) break;
      if (exts[j]->ContainsId(adom_ids[bi])) continue;
      std::vector<Value> extended = support[j];
      extended.push_back(adom[bi]);
      // Probe-once candidates go through the transient path (no
      // support-tier record — the sweep rejects almost all of them);
      // an accepted candidate is promoted in place, reusing the lub and
      // extension the probe just computed, so the session cache carries
      // it to later requests.
      WHYNOT_ASSIGN_OR_RETURN(std::shared_ptr<const ls::Extension> cand,
                              overlay.LubExtTransient(extended));
      if (cand->ContainsInterned(missing_ids[j], wni.missing[j]) &&
          !covers->ProductIntersects(exts, j, cand.get())) {
        const ls::ConceptCache::Entry* entry = overlay.PromoteLastProbe();
        e[j] = entry->concept;
        exts[j] = entry->ext.get();
        support[j] = std::move(extended);
      }
    }
  }

  // Final sweep: ⊤ is strictly more general than any concept whose
  // extension is finite; accept it where the tuple stays an explanation.
  if (options.generalize_to_top && !halted.has_value()) {
    const ls::Extension top_ext = ls::Extension::All();
    for (size_t j = 0; j < m; ++j) {
      WHYNOT_RETURN_IF_ERROR(check());
      if (halted.has_value()) break;
      if (exts[j]->all) continue;
      if (!covers->ProductIntersects(exts, j, &top_ext)) {
        e[j] = ls::LsConcept::Top();
        exts[j] = &cache->Eval(e[j]);
      }
    }
  }
  if (options.cert != nullptr) {
    size_t total = m * adom.size() + (options.generalize_to_top ? m : 0);
    exec::Progress progress;
    progress.tested = halted.has_value() ? halted->at : total;
    progress.remaining = total - progress.tested;
    // An interrupted sweep is kHeuristic: the tuple is a sound explanation
    // but candidates after the cut were never offered, so most-generality
    // is not certified.
    exec::FillCertificate(options.cert, halted.value_or(exec::Stop{}),
                          progress, 1, exec::Quality::kHeuristic);
  }
  return e;
}

Result<LsExplanation> IncrementalSearch(const WhyNotInstance& wni,
                                        const IncrementalOptions& options) {
  ls::LubContext ctx(wni.instance, options.lub);
  return IncrementalSearch(wni, options, &ctx, nullptr, nullptr, nullptr);
}

}  // namespace whynot::explain
