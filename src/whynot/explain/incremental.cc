#include "whynot/explain/incremental.h"

#include <algorithm>

namespace whynot::explain {

namespace {

Result<ls::LsConcept> Lub(ls::LubContext* ctx, bool with_selections,
                          const std::vector<Value>& x) {
  if (with_selections) return ctx->LubWithSelections(x);
  return ctx->LubSelectionFree(x);
}

}  // namespace

Result<LsExplanation> IncrementalSearch(const WhyNotInstance& wni,
                                        const IncrementalOptions& options,
                                        ls::LubContext* lub_context) {
  size_t m = wni.arity();
  ls::EvalCache cache(wni.instance);

  // Lines 2-3: support sets X_j = {a_j}; first candidate explanation
  // E = (lub(X_1), ..., lub(X_m)).
  std::vector<std::vector<Value>> support(m);
  LsExplanation e(m);
  for (size_t j = 0; j < m; ++j) {
    support[j] = {wni.missing[j]};
    WHYNOT_ASSIGN_OR_RETURN(
        e[j], Lub(lub_context, options.with_selections, support[j]));
  }
  if (!IsLsExplanation(wni, e, &cache)) {
    return Status::Internal(
        "initial nominal-pinned tuple is not an explanation; this "
        "contradicts Section 5.2 (the trivial explanation always exists)");
  }

  // Lines 4-11: for every position and every uncovered active-domain
  // constant, try the lub-generalized tuple; keep it if it remains an
  // explanation.
  const std::vector<Value>& adom = wni.instance->ActiveDomain();
  for (size_t j = 0; j < m; ++j) {
    for (const Value& b : adom) {
      ls::Extension ext = cache.Eval(e[j]);
      if (ext.Contains(b)) continue;
      std::vector<Value> extended = support[j];
      extended.push_back(b);
      WHYNOT_ASSIGN_OR_RETURN(
          ls::LsConcept generalized,
          Lub(lub_context, options.with_selections, extended));
      LsExplanation probe = e;
      probe[j] = generalized;
      if (IsLsExplanation(wni, probe, &cache)) {
        e = std::move(probe);
        support[j] = std::move(extended);
      }
    }
  }

  // Final sweep: ⊤ is strictly more general than any concept whose
  // extension is finite; accept it where the tuple stays an explanation.
  if (options.generalize_to_top) {
    for (size_t j = 0; j < m; ++j) {
      if (cache.Eval(e[j]).all) continue;
      LsExplanation probe = e;
      probe[j] = ls::LsConcept::Top();
      if (IsLsExplanation(wni, probe, &cache)) e = std::move(probe);
    }
  }
  return e;
}

Result<LsExplanation> IncrementalSearch(const WhyNotInstance& wni,
                                        const IncrementalOptions& options) {
  ls::LubContext ctx(wni.instance, options.lub);
  return IncrementalSearch(wni, options, &ctx);
}

}  // namespace whynot::explain
