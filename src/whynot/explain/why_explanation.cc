#include "whynot/explain/why_explanation.h"

#include <algorithm>
#include <set>

#include "whynot/concepts/ls_eval.h"
#include "whynot/relational/cq_eval.h"

namespace whynot::explain {

Result<WhyInstance> MakeWhyInstance(const rel::Instance* instance,
                                    const rel::UnionQuery& query,
                                    Tuple present) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                          rel::Evaluate(query, *instance));
  if (query.arity() != present.size()) {
    return Status::InvalidArgument("tuple arity does not match query arity");
  }
  if (!std::binary_search(answers.begin(), answers.end(), present)) {
    return Status::InvalidArgument(
        "tuple " + TupleToString(present) +
        " is not in the answer set; ask a why-not question instead");
  }
  WhyInstance wi;
  wi.instance = instance;
  wi.answers = std::move(answers);
  wi.present = std::move(present);
  return wi;
}

namespace {

/// ext(C1) × ... × ext(Cm) ⊆ Ans. An All extension at any position makes
/// the product infinite, hence never ⊆ the finite answer set (unless the
/// product is empty, which cannot happen since a is inside).
bool ProductInsideAnswers(onto::BoundOntology* bound,
                          const std::vector<onto::ConceptId>& concepts,
                          const std::set<std::vector<ValueId>>& answers) {
  std::vector<const onto::ExtSet*> exts;
  exts.reserve(concepts.size());
  for (onto::ConceptId c : concepts) {
    const onto::ExtSet& e = bound->Ext(c);
    if (e.is_all()) return false;
    exts.push_back(&e);
  }
  std::vector<ValueId> current(concepts.size());
  auto recurse = [&](auto&& self, size_t pos) -> bool {
    if (pos == concepts.size()) return answers.count(current) > 0;
    for (ValueId id : exts[pos]->ids()) {
      current[pos] = id;
      if (!self(self, pos + 1)) return false;
    }
    return true;
  };
  return recurse(recurse, 0);
}

}  // namespace

Result<bool> IsWhyExplanation(onto::BoundOntology* bound,
                              const WhyInstance& wi, const Explanation& e) {
  if (e.size() != wi.arity()) {
    return Status::InvalidArgument(
        "explanation arity does not match the tuple");
  }
  for (size_t i = 0; i < e.size(); ++i) {
    ValueId id = bound->pool().Intern(wi.present[i]);
    if (!bound->Ext(e[i]).Contains(id)) return false;
  }
  std::set<std::vector<ValueId>> answers;
  for (const Tuple& t : wi.answers) {
    std::vector<ValueId> ids;
    ids.reserve(t.size());
    for (const Value& v : t) ids.push_back(bound->pool().Intern(v));
    answers.insert(std::move(ids));
  }
  return ProductInsideAnswers(bound, e, answers);
}

Result<std::vector<Explanation>> AllMostGeneralWhyExplanations(
    onto::BoundOntology* bound, const WhyInstance& wi,
    size_t max_candidates) {
  size_t m = wi.arity();
  std::vector<std::vector<onto::ConceptId>> lists(m);
  for (size_t i = 0; i < m; ++i) {
    ValueId id = bound->pool().Intern(wi.present[i]);
    for (onto::ConceptId c = 0; c < bound->NumConcepts(); ++c) {
      if (bound->Ext(c).Contains(id)) lists[i].push_back(c);
    }
    if (lists[i].empty()) return std::vector<Explanation>{};
  }
  std::set<std::vector<ValueId>> answers;
  for (const Tuple& t : wi.answers) {
    std::vector<ValueId> ids;
    ids.reserve(t.size());
    for (const Value& v : t) ids.push_back(bound->pool().Intern(v));
    answers.insert(std::move(ids));
  }

  std::vector<Explanation> antichain;
  std::vector<size_t> idx(m, 0);
  Explanation current(m);
  size_t count = 0;
  while (true) {
    if (++count > max_candidates) {
      return Status::ResourceExhausted(
          "why-explanation enumeration exceeded max_candidates");
    }
    for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
    bool dominated = false;
    for (const Explanation& kept : antichain) {
      if (LessGeneral(*bound, current, kept)) {
        dominated = true;
        break;
      }
    }
    if (!dominated && ProductInsideAnswers(bound, current, answers)) {
      antichain.erase(
          std::remove_if(antichain.begin(), antichain.end(),
                         [&](const Explanation& kept) {
                           return StrictlyLessGeneral(*bound, kept, current);
                         }),
          antichain.end());
      antichain.push_back(current);
    }
    size_t i = 0;
    while (i < m && ++idx[i] == lists[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == m) break;
  }
  std::sort(antichain.begin(), antichain.end());
  return antichain;
}

// --- Why-explanations w.r.t. the derived ontology OI ----------------------

namespace {

/// ext(C1) × ... × ext(Cm) ⊆ Ans over LS extensions; early exit on the
/// first non-answer combination (a successful product has at most |Ans|
/// tuples, so the walk is answer-bounded).
bool LsProductInsideAnswers(const std::vector<ls::Extension>& exts,
                            const std::set<Tuple>& answers) {
  for (const ls::Extension& e : exts) {
    if (e.all) return false;
  }
  Tuple current(exts.size());
  auto recurse = [&](auto&& self, size_t pos) -> bool {
    if (pos == exts.size()) return answers.count(current) > 0;
    for (const Value& v : exts[pos].values) {
      current[pos] = v;
      if (!self(self, pos + 1)) return false;
    }
    return true;
  };
  return recurse(recurse, 0);
}

std::set<Tuple> AnswerSet(const WhyInstance& wi) {
  return std::set<Tuple>(wi.answers.begin(), wi.answers.end());
}

Result<ls::LsConcept> WhyLub(ls::LubContext* ctx, bool with_selections,
                             const std::vector<Value>& x) {
  if (with_selections) return ctx->LubWithSelections(x);
  return ctx->LubSelectionFree(x);
}

}  // namespace

bool IsLsWhyExplanation(const WhyInstance& wi, const LsExplanation& e) {
  if (e.size() != wi.arity()) return false;
  std::vector<ls::Extension> exts;
  exts.reserve(e.size());
  for (size_t i = 0; i < e.size(); ++i) {
    exts.push_back(ls::Eval(e[i], *wi.instance));
    if (!exts.back().Contains(wi.present[i])) return false;
  }
  return LsProductInsideAnswers(exts, AnswerSet(wi));
}

Result<LsExplanation> IncrementalWhySearch(const WhyInstance& wi,
                                           bool with_selections) {
  ls::LubContext ctx(wi.instance);
  size_t m = wi.arity();
  std::set<Tuple> answers = AnswerSet(wi);

  std::vector<std::vector<Value>> support(m);
  LsExplanation e(m);
  std::vector<ls::Extension> exts(m);
  for (size_t j = 0; j < m; ++j) {
    support[j] = {wi.present[j]};
    WHYNOT_ASSIGN_OR_RETURN(e[j], WhyLub(&ctx, with_selections, support[j]));
    exts[j] = ls::Eval(e[j], *wi.instance);
  }
  // Unlike the why-not case, the nominal-pinned start can already fail:
  // lub({a_j}) may denote more than {a_j} only through columns, but the
  // nominal conjunct pins it, so the product here is exactly {a} ⊆ Ans.
  if (!LsProductInsideAnswers(exts, answers)) {
    return Status::Internal(
        "nominal-pinned tuple is not a why-explanation; the product of "
        "nominals is {a} which must be inside Ans");
  }

  std::vector<Value> adom = wi.instance->ActiveDomain();
  for (size_t j = 0; j < m; ++j) {
    for (const Value& b : adom) {
      if (exts[j].Contains(b)) continue;
      std::vector<Value> extended = support[j];
      extended.push_back(b);
      WHYNOT_ASSIGN_OR_RETURN(ls::LsConcept cand,
                              WhyLub(&ctx, with_selections, extended));
      ls::Extension cand_ext = ls::Eval(cand, *wi.instance);
      std::vector<ls::Extension> probe = exts;
      probe[j] = cand_ext;
      if (LsProductInsideAnswers(probe, answers)) {
        support[j] = std::move(extended);
        e[j] = std::move(cand);
        exts[j] = std::move(cand_ext);
      }
    }
  }
  return e;
}

Result<bool> CheckWhyMgeDerived(const WhyInstance& wi,
                                const LsExplanation& candidate,
                                bool with_selections,
                                ls::LubContext* lub_context) {
  if (!IsLsWhyExplanation(wi, candidate)) return false;
  std::set<Tuple> answers = AnswerSet(wi);
  std::vector<ls::Extension> exts;
  exts.reserve(candidate.size());
  for (const ls::LsConcept& c : candidate) {
    exts.push_back(ls::Eval(c, *wi.instance));
  }
  std::vector<Value> adom = wi.instance->ActiveDomain();
  for (size_t j = 0; j < candidate.size(); ++j) {
    for (const Value& b : adom) {
      if (exts[j].Contains(b)) continue;
      std::vector<Value> extended = exts[j].values;
      extended.push_back(b);
      WHYNOT_ASSIGN_OR_RETURN(ls::LsConcept cand,
                              WhyLub(lub_context, with_selections, extended));
      ls::Extension cand_ext = ls::Eval(cand, *wi.instance);
      // lub(ext ∪ {b}) is strictly more general than the candidate's
      // position (it contains b); if the tuple stays a why-explanation,
      // the candidate is not most general.
      std::vector<ls::Extension> probe = exts;
      probe[j] = std::move(cand_ext);
      if (LsProductInsideAnswers(probe, answers)) return false;
    }
  }
  return true;
}

}  // namespace whynot::explain
