#include "whynot/explain/why_explanation.h"

#include <algorithm>

#include "whynot/common/algorithm.h"
#include "whynot/concepts/ls_eval.h"
#include "whynot/relational/cq_eval.h"

namespace whynot::explain {

Result<WhyInstance> MakeWhyInstance(const rel::Instance* instance,
                                    const rel::UnionQuery& query,
                                    Tuple present) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                          rel::Evaluate(query, *instance));
  if (query.arity() != present.size()) {
    return Status::InvalidArgument("tuple arity does not match query arity");
  }
  if (!std::binary_search(answers.begin(), answers.end(), present)) {
    return Status::InvalidArgument(
        "tuple " + TupleToString(present) +
        " is not in the answer set; ask a why-not question instead");
  }
  WhyInstance wi;
  wi.instance = instance;
  wi.answers = std::move(answers);
  wi.present = std::move(present);
  return wi;
}

namespace {

/// The counting formulations below require Ans to be duplicate-free.
/// MakeWhyInstance guarantees that (rel::Evaluate sort-dedups), but
/// WhyInstance is a plain struct that callers may fill by hand, so the
/// answer vectors are defensively sort-deduped where they are built.
std::vector<Tuple> SortedUniqueAnswers(const WhyInstance& wi) {
  std::vector<Tuple> answers = wi.answers;
  SortUnique(&answers);
  return answers;
}

/// Shared counting core of the "product ⊆ Ans" checks: the product tuples
/// are pairwise distinct and Ans is duplicate-free, so the product is
/// inside Ans iff |product| equals the number of answers whose every
/// component lies in the corresponding extension. That replaces the
/// exponential product walk (with a set probe per tuple) by one pass over
/// Ans with O(1)/logarithmic membership tests. An All extension at any
/// position makes the product infinite, hence never ⊆ the finite answer
/// set — unless some other position is empty, making the product empty
/// and vacuously inside.
///
/// `is_all(ext)`, `size(ext)` (finite case only) and
/// `contains(ext, row, i)` adapt the two extension representations.
template <typename Ext, typename Row, typename IsAllFn, typename SizeFn,
          typename ContainsFn>
bool CountingProductInside(const std::vector<Ext>& exts,
                           const std::vector<Row>& answers, IsAllFn is_all,
                           SizeFn size, ContainsFn contains) {
  for (const Ext& e : exts) {
    if (!is_all(e) && size(e) == 0) return true;  // vacuously inside
  }
  for (const Ext& e : exts) {
    if (is_all(e)) return false;
  }
  size_t product_size = 1;
  for (const Ext& e : exts) {
    // |product| > |Ans| can never be covered; bail before overflow.
    if (product_size > answers.size() / size(e)) return false;
    product_size *= size(e);
  }
  size_t inside = 0;
  for (const Row& ans : answers) {
    bool covered = true;
    for (size_t i = 0; i < exts.size() && covered; ++i) {
      covered = contains(exts[i], ans, i);
    }
    inside += covered ? 1 : 0;
  }
  return inside == product_size;
}

/// ext(C1) × ... × ext(Cm) ⊆ Ans over a bound finite ontology.
bool ProductInsideAnswers(onto::BoundOntology* bound,
                          const std::vector<onto::ConceptId>& concepts,
                          const std::vector<std::vector<ValueId>>& answers) {
  std::vector<const onto::ExtSet*> exts;
  exts.reserve(concepts.size());
  for (onto::ConceptId c : concepts) exts.push_back(&bound->Ext(c));
  return CountingProductInside(
      exts, answers, [](const onto::ExtSet* e) { return e->is_all(); },
      [](const onto::ExtSet* e) { return e->size(); },
      [](const onto::ExtSet* e, const std::vector<ValueId>& ans, size_t i) {
        return e->Contains(ans[i]);
      });
}

/// Answers interned against the pool, sort-deduped for the counting check.
std::vector<std::vector<ValueId>> InternedUniqueAnswers(
    onto::BoundOntology* bound, const WhyInstance& wi) {
  std::vector<std::vector<ValueId>> answers;
  answers.reserve(wi.answers.size());
  for (const Tuple& t : wi.answers) {
    std::vector<ValueId> ids;
    ids.reserve(t.size());
    for (const Value& v : t) ids.push_back(bound->pool().Intern(v));
    answers.push_back(std::move(ids));
  }
  SortUnique(&answers);
  return answers;
}

}  // namespace

Result<bool> IsWhyExplanation(onto::BoundOntology* bound,
                              const WhyInstance& wi, const Explanation& e) {
  if (e.size() != wi.arity()) {
    return Status::InvalidArgument(
        "explanation arity does not match the tuple");
  }
  for (size_t i = 0; i < e.size(); ++i) {
    ValueId id = bound->pool().Intern(wi.present[i]);
    if (!bound->Ext(e[i]).Contains(id)) return false;
  }
  return ProductInsideAnswers(bound, e, InternedUniqueAnswers(bound, wi));
}

Result<std::vector<Explanation>> AllMostGeneralWhyExplanations(
    onto::BoundOntology* bound, const WhyInstance& wi,
    size_t max_candidates) {
  size_t m = wi.arity();
  std::vector<std::vector<onto::ConceptId>> lists(m);
  for (size_t i = 0; i < m; ++i) {
    ValueId id = bound->pool().Intern(wi.present[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) return std::vector<Explanation>{};
  }
  std::vector<std::vector<ValueId>> answers = InternedUniqueAnswers(bound, wi);

  std::vector<Explanation> antichain;
  std::vector<size_t> idx(m, 0);
  Explanation current(m);
  size_t count = 0;
  while (true) {
    if (++count > max_candidates) {
      return Status::ResourceExhausted(
          "why-explanation enumeration exceeded max_candidates");
    }
    for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
    bool dominated = false;
    for (const Explanation& kept : antichain) {
      if (LessGeneral(*bound, current, kept)) {
        dominated = true;
        break;
      }
    }
    if (!dominated && ProductInsideAnswers(bound, current, answers)) {
      antichain.erase(
          std::remove_if(antichain.begin(), antichain.end(),
                         [&](const Explanation& kept) {
                           return StrictlyLessGeneral(*bound, kept, current);
                         }),
          antichain.end());
      antichain.push_back(current);
    }
    size_t i = 0;
    while (i < m && ++idx[i] == lists[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == m) break;
  }
  std::sort(antichain.begin(), antichain.end());
  return antichain;
}

// --- Why-explanations w.r.t. the derived ontology OI ----------------------

namespace {

/// ext(C1) × ... × ext(Cm) ⊆ Ans over LS extensions — the same counting
/// core, with binary-search membership over sorted Value vectors. Requires
/// a sort-deduped answer vector (SortedUniqueAnswers).
bool LsProductInsideAnswers(const std::vector<ls::Extension>& exts,
                            const std::vector<Tuple>& answers) {
  return CountingProductInside(
      exts, answers, [](const ls::Extension& e) { return e.all; },
      [](const ls::Extension& e) { return e.values.size(); },
      [](const ls::Extension& e, const Tuple& ans, size_t i) {
        return e.Contains(ans[i]);
      });
}

Result<ls::LsConcept> WhyLub(ls::LubContext* ctx, bool with_selections,
                             const std::vector<Value>& x) {
  if (with_selections) return ctx->LubWithSelections(x);
  return ctx->LubSelectionFree(x);
}

/// `answers` must be the sort-deduped answer vector of `wi`.
bool IsLsWhyExplanationImpl(const WhyInstance& wi, const LsExplanation& e,
                            const std::vector<Tuple>& answers,
                            ls::EvalCache* cache) {
  if (e.size() != wi.arity()) return false;
  std::vector<ls::Extension> exts;
  exts.reserve(e.size());
  for (size_t i = 0; i < e.size(); ++i) {
    exts.push_back(cache != nullptr ? cache->Eval(e[i])
                                    : ls::Eval(e[i], *wi.instance));
    if (!exts.back().Contains(wi.present[i])) return false;
  }
  return LsProductInsideAnswers(exts, answers);
}

}  // namespace

bool IsLsWhyExplanation(const WhyInstance& wi, const LsExplanation& e) {
  return IsLsWhyExplanationImpl(wi, e, SortedUniqueAnswers(wi), nullptr);
}

Result<LsExplanation> IncrementalWhySearch(const WhyInstance& wi,
                                           bool with_selections) {
  ls::LubContext ctx(wi.instance);
  ls::EvalCache cache(wi.instance);
  size_t m = wi.arity();
  const std::vector<Tuple> answers = SortedUniqueAnswers(wi);

  std::vector<std::vector<Value>> support(m);
  LsExplanation e(m);
  std::vector<ls::Extension> exts(m);
  for (size_t j = 0; j < m; ++j) {
    support[j] = {wi.present[j]};
    WHYNOT_ASSIGN_OR_RETURN(e[j], WhyLub(&ctx, with_selections, support[j]));
    exts[j] = cache.Eval(e[j]);
  }
  // Unlike the why-not case, the nominal-pinned start can already fail:
  // lub({a_j}) may denote more than {a_j} only through columns, but the
  // nominal conjunct pins it, so the product here is exactly {a} ⊆ Ans.
  if (!LsProductInsideAnswers(exts, answers)) {
    return Status::Internal(
        "nominal-pinned tuple is not a why-explanation; the product of "
        "nominals is {a} which must be inside Ans");
  }

  const std::vector<Value>& adom = wi.instance->ActiveDomain();
  for (size_t j = 0; j < m; ++j) {
    for (const Value& b : adom) {
      if (exts[j].Contains(b)) continue;
      std::vector<Value> extended = support[j];
      extended.push_back(b);
      WHYNOT_ASSIGN_OR_RETURN(ls::LsConcept cand,
                              WhyLub(&ctx, with_selections, extended));
      ls::Extension cand_ext = cache.Eval(cand);
      std::vector<ls::Extension> probe = exts;
      probe[j] = cand_ext;
      if (LsProductInsideAnswers(probe, answers)) {
        support[j] = std::move(extended);
        e[j] = std::move(cand);
        exts[j] = std::move(cand_ext);
      }
    }
  }
  return e;
}

Result<bool> CheckWhyMgeDerived(const WhyInstance& wi,
                                const LsExplanation& candidate,
                                bool with_selections,
                                ls::LubContext* lub_context) {
  ls::EvalCache cache(wi.instance);
  const std::vector<Tuple> answers = SortedUniqueAnswers(wi);
  if (!IsLsWhyExplanationImpl(wi, candidate, answers, &cache)) return false;
  std::vector<ls::Extension> exts;
  exts.reserve(candidate.size());
  for (const ls::LsConcept& c : candidate) {
    exts.push_back(cache.Eval(c));
  }
  const std::vector<Value>& adom = wi.instance->ActiveDomain();
  for (size_t j = 0; j < candidate.size(); ++j) {
    for (const Value& b : adom) {
      if (exts[j].Contains(b)) continue;
      std::vector<Value> extended = exts[j].values;
      extended.push_back(b);
      WHYNOT_ASSIGN_OR_RETURN(ls::LsConcept cand,
                              WhyLub(lub_context, with_selections, extended));
      ls::Extension cand_ext = cache.Eval(cand);
      // lub(ext ∪ {b}) is strictly more general than the candidate's
      // position (it contains b); if the tuple stays a why-explanation,
      // the candidate is not most general.
      std::vector<ls::Extension> probe = exts;
      probe[j] = std::move(cand_ext);
      if (LsProductInsideAnswers(probe, answers)) return false;
    }
  }
  return true;
}

}  // namespace whynot::explain
