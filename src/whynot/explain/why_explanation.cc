#include "whynot/explain/why_explanation.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "whynot/common/algorithm.h"
#include "whynot/concepts/ls_eval.h"
#include "whynot/explain/search_core.h"
#include "whynot/relational/cq_eval.h"

namespace whynot::explain {

Result<WhyInstance> MakeWhyInstance(const rel::Instance* instance,
                                    const rel::UnionQuery& query,
                                    Tuple present) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                          rel::Evaluate(query, *instance));
  if (query.arity() != present.size()) {
    return Status::InvalidArgument("tuple arity does not match query arity");
  }
  if (!std::binary_search(answers.begin(), answers.end(), present)) {
    return Status::InvalidArgument(
        "tuple " + TupleToString(present) +
        " is not in the answer set; ask a why-not question instead");
  }
  WhyInstance wi;
  wi.instance = instance;
  wi.answers = std::move(answers);
  wi.present = std::move(present);
  return wi;
}

namespace {

/// The counting formulations below require Ans to be duplicate-free.
/// MakeWhyInstance guarantees that (rel::Evaluate sort-dedups), but
/// WhyInstance is a plain struct that callers may fill by hand, so the
/// answer vectors are defensively sort-deduped where they are built.
std::vector<Tuple> SortedUniqueAnswers(const WhyInstance& wi) {
  std::vector<Tuple> answers = wi.answers;
  SortUnique(&answers);
  return answers;
}

/// "product ⊆ Ans" in counting form over the answer-cover kernel: the
/// product tuples are pairwise distinct and Ans is duplicate-free, so the
/// product is inside Ans iff |product| equals the number of answers whose
/// every component lies in the corresponding extension — and that number
/// is popcount(⋀_i Cover(e_i, i)), one word-parallel AND instead of a
/// scalar membership pass per (answer, position). An All extension at any
/// position makes the product infinite, hence never ⊆ the finite answer
/// set — unless some other position is empty, making the product empty
/// and vacuously inside.
///
/// ext(C1) × ... × ext(Cm) ⊆ Ans over a bound finite ontology.
bool ProductInsideAnswers(onto::BoundOntology* bound,
                          const std::vector<onto::ConceptId>& concepts,
                          ConceptAnswerCovers* covers) {
  for (onto::ConceptId c : concepts) {
    const onto::ExtSet& e = bound->Ext(c);
    if (!e.is_all() && e.size() == 0) return true;  // vacuously inside
  }
  size_t product_size = 1;
  for (onto::ConceptId c : concepts) {
    const onto::ExtSet& e = bound->Ext(c);
    if (e.is_all()) return false;
    // |product| > |Ans| can never be covered; bail before overflow.
    if (product_size > covers->num_answers() / e.size()) return false;
    product_size *= e.size();
  }
  return covers->CountCovered(concepts) == product_size;
}

}  // namespace

std::vector<std::vector<ValueId>> InternedUniqueAnswers(
    onto::BoundOntology* bound, const WhyInstance& wi) {
  std::vector<std::vector<ValueId>> answers;
  answers.reserve(wi.answers.size());
  for (const Tuple& t : wi.answers) {
    std::vector<ValueId> ids;
    ids.reserve(t.size());
    for (const Value& v : t) ids.push_back(bound->pool().Intern(v));
    answers.push_back(std::move(ids));
  }
  SortUnique(&answers);
  return answers;
}

Result<bool> IsWhyExplanation(onto::BoundOntology* bound,
                              const WhyInstance& wi, const Explanation& e,
                              ConceptAnswerCovers* covers) {
  if (e.size() != wi.arity()) {
    return Status::InvalidArgument(
        "explanation arity does not match the tuple");
  }
  for (size_t i = 0; i < e.size(); ++i) {
    ValueId id = bound->pool().Intern(wi.present[i]);
    if (!bound->Ext(e[i]).Contains(id)) return false;
  }
  std::optional<ConceptAnswerCovers> local;
  if (covers == nullptr) {
    local.emplace(bound, InternedUniqueAnswers(bound, wi));
    covers = &*local;
  }
  return ProductInsideAnswers(bound, e, covers);
}

Result<std::vector<Explanation>> AllMostGeneralWhyExplanations(
    onto::BoundOntology* bound, const WhyInstance& wi, size_t max_candidates,
    ConceptAnswerCovers* covers, SearchStrategy strategy,
    LatticeHandle* lattice, PruneStats* prune_stats,
    const exec::ExecContext* exec, exec::Certificate* cert) {
  size_t m = wi.arity();
  std::vector<std::vector<onto::ConceptId>> lists(m);
  for (size_t i = 0; i < m; ++i) {
    ValueId id = bound->pool().Intern(wi.present[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) {
      exec::FillCertificate(cert, exec::Stop{}, exec::Progress{}, 0);
      return std::vector<Explanation>{};
    }
  }
  std::optional<ConceptAnswerCovers> local;
  if (covers == nullptr) {
    local.emplace(bound, InternedUniqueAnswers(bound, wi));
    covers = &*local;
  }
  CandidateSpace space(lists);
  // "product ⊆ Ans" is ≼-downward closed just like avoidance (a smaller
  // product stays inside Ans), so the strategy dispatch is the
  // exhaustive search's verbatim.
  std::unique_ptr<LatticeHandle> local_lattice;
  LatticeChoice choice = ChooseStrategy(strategy, space, max_candidates, bound,
                                        lattice, &local_lattice);
  if (!choice.use_lattice && cert == nullptr &&
      (space.overflow() || space.total() > max_candidates)) {
    return Status::ResourceExhausted(
        "why-explanation enumeration exceeded max_candidates");
  }

  // The product-containment test — the counting AND with its finite-size
  // pre-checks, by far the dominant cost — is a pure function of the
  // candidate, so it shards through the shared candidate filter against a
  // pre-resolved cover table; the antichain pass replays serially over
  // the survivors in candidate order. A candidate the filter admits but a
  // kept explanation dominates is dropped at the replay (domination is
  // checked before insertion), so the antichain is exactly the serial
  // reference's. The table resolves covers for *every* list concept up
  // front — worth it only when workers will hammer it; the serial
  // odometer path keeps the lazy per-probe covers (most candidates never
  // get probed past the domination prefilter below). The frontier path
  // always resolves the table: its predicate shards per wave regardless
  // of thread count.
  std::optional<CoverTable> table;
  if (choice.use_lattice || par::NumThreads() > 1) {
    table.emplace(covers, lists);
    table->ResolveSizes(bound, lists);
  }

  std::vector<Explanation> antichain;
  Explanation current(m);
  auto dominated = [&](const Explanation& e) {
    for (const Explanation& kept : antichain) {
      if (LessGeneral(*bound, e, kept)) return true;
    }
    return false;
  };
  auto pred = [&](const std::vector<size_t>& idx) {
    if (table.has_value()) return table->ProductInsideAt(idx);
    for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
    return ProductInsideAnswers(bound, current, covers);
  };
  auto consume = [&](const std::vector<size_t>& idx) {
    for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
    if (dominated(current)) return true;
    antichain.erase(
        std::remove_if(antichain.begin(), antichain.end(),
                       [&](const Explanation& kept) {
                         return StrictlyLessGeneral(*bound, kept, current);
                       }),
        antichain.end());
    antichain.push_back(current);
    return true;
  };
  const bool certified = cert != nullptr;
  exec::Stop stop;
  exec::Progress progress;
  exec::Stop* stop_p = certified ? &stop : nullptr;
  if (choice.use_lattice) {
    LatticeFrontierHooks hooks;
    hooks.pred = pred;
    hooks.consume = consume;
    PruneStats local_ps;
    PruneStats* ps = certified ? &local_ps : prune_stats;
    WHYNOT_RETURN_IF_ERROR(LatticeFilterSpace(space, *choice.lattice, lists,
                                              max_candidates, hooks, ps, exec,
                                              stop_p));
    if (certified) {
      progress.tested = local_ps.products_enumerated;
      progress.remaining = local_ps.products_skipped;
      if (prune_stats != nullptr) AccumulatePruneStats(prune_stats, local_ps);
    }
  } else {
    WHYNOT_RETURN_IF_ERROR(ParallelFilterSpace(
        space, exec, stop_p, certified ? max_candidates : SIZE_MAX, pred,
        consume,
        // Serial prefilter: the domination check is two subsumption matrix
        // probes against a short antichain — far cheaper than the counting
        // containment test it saves (the parallel path filters first and
        // re-checks domination at the replay above, same output).
        [&](const std::vector<size_t>& idx) {
          for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
          return dominated(current);
        }));
    if (certified) {
      size_t total = space.overflow() ? SIZE_MAX : space.total();
      progress.tested =
          stop.reason != exec::StopReason::kNone ? stop.at : total;
      progress.remaining = total - progress.tested;
    }
  }
  std::sort(antichain.begin(), antichain.end());
  exec::FillCertificate(cert, stop, progress, antichain.size());
  return antichain;
}

// --- Why-explanations w.r.t. the derived ontology OI ----------------------

namespace {

/// ext(C1) × ... × ext(Cm) ⊆ Ans over LS extensions — the same counting
/// core over the LS answer-cover kernel. `covers` must be built over the
/// sort-deduped answer vector; position `swap_pos` (if set) is read from
/// `repl` instead of exts[swap_pos], the probe form of the greedy search.
bool LsProductInsideAnswers(LsAnswerCovers* covers,
                            const std::vector<const ls::Extension*>& exts,
                            size_t swap_pos = SIZE_MAX,
                            const ls::Extension* repl = nullptr) {
  auto ext_at = [&](size_t i) -> const ls::Extension& {
    return i == swap_pos ? *repl : *exts[i];
  };
  for (size_t i = 0; i < exts.size(); ++i) {
    const ls::Extension& e = ext_at(i);
    if (!e.all && e.CardinalityOrInfinite() == 0) return true;
  }
  size_t product_size = 1;
  for (size_t i = 0; i < exts.size(); ++i) {
    const ls::Extension& e = ext_at(i);
    if (e.all) return false;
    size_t size = e.CardinalityOrInfinite();
    if (product_size > covers->num_answers() / size) return false;
    product_size *= size;
  }
  return covers->CountCovered(exts, swap_pos, repl) == product_size;
}

/// `covers` must be over the sort-deduped answer vector of `wi`.
bool IsLsWhyExplanationImpl(const WhyInstance& wi, const LsExplanation& e,
                            LsAnswerCovers* covers, ls::EvalCache* cache) {
  if (e.size() != wi.arity()) return false;
  const ValuePool& pool = wi.instance->pool();
  std::vector<const ls::Extension*> exts;
  exts.reserve(e.size());
  for (size_t i = 0; i < e.size(); ++i) {
    const ls::Extension& ext = cache->Eval(e[i]);
    if (!ext.ContainsInterned(pool.Lookup(wi.present[i]), wi.present[i])) {
      return false;
    }
    exts.push_back(&ext);
  }
  return LsProductInsideAnswers(covers, exts);
}

/// Per-call fallbacks for the prepared-session cache parameters: the
/// session passes its warm EvalCache / LsAnswerCovers (over its sorted
/// answer vector); one-shot calls materialize locals here. `sorted`
/// stores the defensively sort-deduped answers the local covers index.
struct WhyScratch {
  std::optional<std::vector<Tuple>> sorted;
  std::optional<ls::EvalCache> cache;
  std::optional<LsAnswerCovers> covers;
};

void ResolveWhyCaches(const WhyInstance& wi, ls::EvalCache** cache,
                      LsAnswerCovers** covers, WhyScratch* scratch) {
  if (*cache == nullptr) {
    scratch->cache.emplace(wi.instance);
    *cache = &*scratch->cache;
  }
  if (*covers == nullptr) {
    scratch->sorted.emplace(SortedUniqueAnswers(wi));
    scratch->covers.emplace(wi.instance, &*scratch->sorted);
    *covers = &*scratch->covers;
  }
}

}  // namespace

bool IsLsWhyExplanation(const WhyInstance& wi, const LsExplanation& e,
                        ls::EvalCache* cache, LsAnswerCovers* covers) {
  WhyScratch scratch;
  ResolveWhyCaches(wi, &cache, &covers, &scratch);
  return IsLsWhyExplanationImpl(wi, e, covers, cache);
}

Result<LsExplanation> IncrementalWhySearch(const WhyInstance& wi,
                                           bool with_selections,
                                           ls::LubContext* lub_context,
                                           ls::EvalCache* cache,
                                           LsAnswerCovers* covers,
                                           ls::ConceptCache* concept_cache,
                                           const exec::ExecContext* exec,
                                           exec::Certificate* cert,
                                           ls::ConceptCacheOverlay* session_overlay) {
  std::optional<ls::LubContext> local_ctx;
  if (lub_context == nullptr) {
    local_ctx.emplace(wi.instance);
    lub_context = &*local_ctx;
  }
  WhyScratch scratch;
  ResolveWhyCaches(wi, &cache, &covers, &scratch);
  std::optional<ls::ConceptCache> local_cc;
  if (concept_cache == nullptr) {
    local_cc.emplace(wi.instance);
    concept_cache = &*local_cc;
  }
  size_t m = wi.arity();
  const ValuePool& pool = wi.instance->pool();

  // The whole greedy sweep is serial, so one overlay over the shared cache
  // suffices; published on every return path (including certified stops)
  // so a session cache carries the lubs to later requests. A session's
  // persistent overlay (warm private maps) is used when it matches this
  // search's flavor.
  std::optional<ls::ConceptCacheOverlay> local_overlay;
  if (session_overlay == nullptr ||
      session_overlay->with_selections() != with_selections) {
    local_overlay.emplace(concept_cache, with_selections, lub_context, cache);
  }
  ls::ConceptCacheOverlay& overlay =
      local_overlay.has_value() ? *local_overlay : *session_overlay;
  ls::ScopedPublish publish(concept_cache, &overlay);

  std::vector<std::vector<Value>> support(m);
  LsExplanation e(m);
  std::vector<const ls::Extension*> exts(m);
  for (size_t j = 0; j < m; ++j) {
    support[j] = {wi.present[j]};
    WHYNOT_ASSIGN_OR_RETURN(const ls::ConceptCache::Entry* entry,
                            overlay.LubAndEval(support[j]));
    e[j] = entry->concept;
    exts[j] = entry->ext.get();
  }
  // Unlike the why-not case, the nominal-pinned start can already fail:
  // lub({a_j}) may denote more than {a_j} only through columns, but the
  // nominal conjunct pins it, so the product here is exactly {a} ⊆ Ans.
  if (!LsProductInsideAnswers(covers, exts)) {
    return Status::Internal(
        "nominal-pinned tuple is not a why-explanation; the product of "
        "nominals is {a} which must be inside Ans");
  }

  // One probe per generalization candidate in fixed sweep order, exactly
  // the IncrementalSearch convention; a stop leaves `e` a sound
  // why-explanation (every acceptance preserves product ⊆ Ans).
  size_t probes = 0;
  std::optional<exec::Stop> halted;
  const std::vector<Value>& adom = wi.instance->ActiveDomain();
  const std::vector<ValueId>& adom_ids = wi.instance->ActiveDomainIds();
  for (size_t j = 0; j < m && !halted.has_value(); ++j) {
    ValueId present_id = pool.Lookup(wi.present[j]);
    for (size_t bi = 0; bi < adom.size(); ++bi) {
      size_t probe = probes++;
      if (std::optional<exec::Stop> s = exec::Check(exec, probe)) {
        if (cert == nullptr) {
          return exec::StopStatus(*s, "incremental why search");
        }
        halted = *s;
        break;
      }
      if (exts[j]->ContainsId(adom_ids[bi])) continue;
      std::vector<Value> extended = support[j];
      extended.push_back(adom[bi]);
      // Probe-once candidates take the transient path (no support-tier
      // record); an acceptance is promoted in place, reusing the lub and
      // extension the probe just computed, so the session cache carries
      // it to later requests.
      WHYNOT_ASSIGN_OR_RETURN(std::shared_ptr<const ls::Extension> cand_ext,
                              overlay.LubExtTransient(extended));
      if (cand_ext->ContainsInterned(present_id, wi.present[j]) &&
          LsProductInsideAnswers(covers, exts, j, cand_ext.get())) {
        const ls::ConceptCache::Entry* entry = overlay.PromoteLastProbe();
        support[j] = std::move(extended);
        e[j] = entry->concept;
        exts[j] = entry->ext.get();
      }
    }
  }
  if (cert != nullptr) {
    size_t total = m * adom.size();
    exec::Progress progress;
    progress.tested = halted.has_value() ? halted->at : total;
    progress.remaining = total - progress.tested;
    exec::FillCertificate(cert, halted.value_or(exec::Stop{}), progress, 1,
                          exec::Quality::kHeuristic);
  }
  return e;
}

Result<bool> CheckWhyMgeDerived(const WhyInstance& wi,
                                const LsExplanation& candidate,
                                bool with_selections,
                                ls::LubContext* lub_context,
                                ls::EvalCache* cache,
                                LsAnswerCovers* covers,
                                ls::ConceptCache* concept_cache,
                                const exec::ExecContext* exec) {
  WhyScratch scratch;
  ResolveWhyCaches(wi, &cache, &covers, &scratch);
  std::optional<ls::ConceptCache> local_cc;
  if (concept_cache == nullptr) {
    local_cc.emplace(wi.instance);
    concept_cache = &*local_cc;
  }
  // The parallel workers build their own covers, which must index the
  // same answer vector the shared `covers` do: the local sort-deduped
  // copy on the one-shot path, or wi.answers itself when the caller
  // passed warm covers — the covers contract (see the header) then
  // guarantees wi.answers is already sorted and duplicate-free, so both
  // definitions coincide.
  const std::vector<Tuple>& answers =
      scratch.sorted.has_value() ? *scratch.sorted : wi.answers;
  if (!IsLsWhyExplanationImpl(wi, candidate, covers, cache)) return false;
  std::vector<const ls::Extension*> exts;
  exts.reserve(candidate.size());
  for (const ls::LsConcept& c : candidate) {
    exts.push_back(&cache->Eval(c));
  }
  const std::vector<Value>& adom = wi.instance->ActiveDomain();
  const std::vector<ValueId>& adom_ids = wi.instance->ActiveDomainIds();

  if (par::NumThreads() > 1 && adom.size() >= 4) {
    // The per-constant probes — lub, eval, counting AND — are independent
    // reads of a fixed instance, so each position's sweep shards over adom
    // ranges through the shared lex-min sweep (search_core.h). Workers
    // keep their own LubContext / EvalCache / covers (all three have lazy
    // single-threaded caches); the instance itself is pre-warmed. The
    // serial loop returns at the *smallest* bi that either errors or
    // breaks maximality, which is exactly the sweep's winning outcome —
    // identical for every thread count.
    wi.instance->WarmForConcurrentReads();
    struct Worker {
      ls::LubContext lub;
      ls::EvalCache cache;
      LsAnswerCovers covers;
      // The worker's view of the shared concept cache: published-tier
      // reads during the sweep, misses kept worker-local until the serial
      // publish below. Declared after lub/cache — it drives both.
      ls::ConceptCacheOverlay overlay;
      std::vector<const ls::Extension*> exts;
      Worker(const rel::Instance* instance, const std::vector<Tuple>* answers,
             const ls::LubOptions& options, const LsExplanation& candidate,
             ls::ConceptCache* shared, bool with_selections)
          : lub(instance, options), cache(instance), covers(instance, answers),
            overlay(shared, with_selections, &lub, &cache) {
        exts.reserve(candidate.size());
        for (const ls::LsConcept& c : candidate) exts.push_back(&cache.Eval(c));
      }
    };
    std::vector<std::unique_ptr<Worker>> workers(
        static_cast<size_t>(par::MaxWorkers()));
    auto make_worker = [&]() {
      return std::make_unique<Worker>(wi.instance, &answers,
                                      lub_context->options(), candidate,
                                      concept_cache, with_selections);
    };
    for (size_t j = 0; j < candidate.size(); ++j) {
      // Position-granular probe at the same serial point as the serial
      // loop below: the sweep's internal schedule is thread-dependent, so
      // probes must not depend on it. A boolean check has no partial
      // result — stops are always errors here.
      if (std::optional<exec::Stop> s = exec::Check(exec, j)) {
        return exec::StopStatus(*s, "why CHECK-MGE");
      }
      std::optional<ProbeOutcome> outcome = LexMinSweep<Worker, ProbeOutcome>(
          adom.size(), 8, &workers, make_worker,
          [&](Worker& wk, size_t bi) -> std::optional<ProbeOutcome> {
            if (wk.exts[j]->ContainsId(adom_ids[bi])) return std::nullopt;
            std::vector<Value> extended = wk.exts[j]->values();
            extended.push_back(adom[bi]);
            // Maximality probes never accept a candidate — transient
            // path, no support-tier record (the keys are whole extension
            // value lists, expensive to copy and hash).
            Result<std::shared_ptr<const ls::Extension>> cand =
                wk.overlay.LubExtTransient(extended);
            if (!cand.ok()) return ProbeOutcome{false, cand.status()};
            if (LsProductInsideAnswers(&wk.covers, wk.exts, j, cand->get())) {
              return ProbeOutcome{true, Status::OK()};
            }
            return std::nullopt;
          },
          exec);
      // Publish-after-sweep: drain the worker overlays in slot order (a
      // thread-independent linearization) at this serial point, so later
      // positions — and later requests against a session cache — reuse
      // the lubs this sweep computed.
      for (std::unique_ptr<Worker>& wk : workers) {
        if (wk != nullptr) concept_cache->Publish(&wk->overlay);
      }
      // An abandoned sweep may have skipped ranges; resolve the stop
      // before trusting (or discarding) its outcome.
      if (exec::ShouldAbandon(exec)) {
        exec::Stop s = exec->PollNow(j).value_or(
            exec::Stop{exec::StopReason::kCancelled, j});
        return exec::StopStatus(s, "why CHECK-MGE");
      }
      if (outcome.has_value()) {
        if (!outcome->error.ok()) return outcome->error;
        if (outcome->broken) return false;
      }
    }
  } else {
    // Serial maximality probes through a single overlay over the shared
    // cache; published on every return path so later requests against a
    // session cache start warm.
    ls::ConceptCacheOverlay overlay(concept_cache, with_selections,
                                    lub_context, cache);
    ls::ScopedPublish publish(concept_cache, &overlay);
    for (size_t j = 0; j < candidate.size(); ++j) {
      if (std::optional<exec::Stop> s = exec::Check(exec, j)) {
        return exec::StopStatus(*s, "why CHECK-MGE");
      }
      for (size_t bi = 0; bi < adom.size(); ++bi) {
        if (exts[j]->ContainsId(adom_ids[bi])) continue;
        std::vector<Value> extended = exts[j]->values();
        extended.push_back(adom[bi]);
        // Probe-once keys: transient path, no support-tier record — see
        // the parallel branch above.
        WHYNOT_ASSIGN_OR_RETURN(std::shared_ptr<const ls::Extension> cand_ext,
                                overlay.LubExtTransient(extended));
        // lub(ext ∪ {b}) is strictly more general than the candidate's
        // position (it contains b); if the tuple stays a why-explanation,
        // the candidate is not most general.
        if (LsProductInsideAnswers(covers, exts, j, cand_ext.get())) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace whynot::explain
